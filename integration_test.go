package flattree_test

import (
	"context"
	"math"
	"testing"

	"flattree/internal/core"
	"flattree/internal/fattree"
	"flattree/internal/graph"
	"flattree/internal/mcf"
	"flattree/internal/metrics"
	"flattree/internal/pktsim"
	"flattree/internal/routing"
	"flattree/internal/traffic"
)

// TestClosModeThroughputEqualsFatTree: flat-tree in Clos mode is
// link-identical to fat-tree, so the whole pipeline — placement, commodity
// generation, MCF — must produce identical throughput on both.
func TestClosModeThroughputEqualsFatTree(t *testing.T) {
	k := 6
	ft, err := core.Build(core.Params{K: k})
	if err != nil {
		t.Fatal(err)
	}
	fat, err := fattree.New(k)
	if err != nil {
		t.Fatal(err)
	}
	clusters1, err := traffic.MakeClusters(ft.Net(), ft.Net().Servers(), traffic.Spec{
		ClusterSize: 20, Placement: traffic.Locality, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	clusters2, err := traffic.MakeClusters(fat.Net, fat.Net.Servers(), traffic.Spec{
		ClusterSize: 20, Placement: traffic.Locality, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	r1, err := mcf.MaxConcurrentFlow(context.Background(), ft.Net(), traffic.AllToAllCommodities(clusters1, 20), mcf.Options{Epsilon: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := mcf.MaxConcurrentFlow(context.Background(), fat.Net, traffic.AllToAllCommodities(clusters2, 20), mcf.Options{Epsilon: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r1.Lambda-r2.Lambda) > 1e-12 {
		t.Errorf("Clos-mode flat-tree λ %g != fat-tree λ %g", r1.Lambda, r2.Lambda)
	}
}

// TestPacketLatencyMatchesPathLength: at near-zero load, mean packet
// latency must equal (mean switch hops) × (transmission + propagation), and
// the simulator's mean hop count must match the analytic server-pair
// distance (APL − 2 access hops) within sampling error — three independent
// subsystems (metrics BFS, routing tables, packet simulation) agreeing.
func TestPacketLatencyMatchesPathLength(t *testing.T) {
	ft, err := core.Build(core.Params{K: 8})
	if err != nil {
		t.Fatal(err)
	}
	if err := ft.SetUniformMode(core.ModeGlobalRandom); err != nil {
		t.Fatal(err)
	}
	nw := ft.Net()
	st, err := metrics.ServerPathLengths(nw)
	if err != nil {
		t.Fatal(err)
	}
	wantHops := st.Global - 2

	rng := graph.NewRNG(9)
	servers := nw.Servers()
	// One packet at a time (rate so low nothing queues), uniform pairs.
	pkts := pktsim.PoissonPackets(servers, 0.01, 3000, 1, rng)
	res, err := pktsim.Simulate(nw, routing.BuildTable(nw), pkts, pktsim.Config{PropDelay: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	if res.Dropped != 0 {
		t.Fatalf("drops at idle load: %+v", res)
	}
	if math.Abs(res.MeanHops-wantHops) > 0.1 {
		t.Errorf("pktsim mean hops %.3f vs metrics %.3f", res.MeanHops, wantHops)
	}
	// Latency per hop = 1 (transmission) + 0.25 (propagation).
	if math.Abs(res.MeanLatency-res.MeanHops*1.25) > 1e-6 {
		t.Errorf("latency %.4f != hops %.4f x 1.25", res.MeanLatency, res.MeanHops)
	}
}

// TestMCFRespectsCutBound: for a hot-spot workload, λ × total demand can
// never exceed the hot-spot switch's degree (a cut bound computable from
// the topology alone), and the FPTAS dual bound must also respect it.
func TestMCFRespectsCutBound(t *testing.T) {
	ft, err := core.Build(core.Params{K: 8})
	if err != nil {
		t.Fatal(err)
	}
	if err := ft.SetUniformMode(core.ModeGlobalRandom); err != nil {
		t.Fatal(err)
	}
	nw := ft.Net()
	servers := nw.Servers()
	hot := servers[0]
	var comms []mcf.Commodity
	for _, sv := range servers[1:100] {
		comms = append(comms, mcf.Commodity{Src: hot, Dst: sv, Demand: 1})
	}
	res, err := mcf.MaxConcurrentFlow(context.Background(), nw, comms, mcf.Options{Epsilon: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	// The hot server's host switch degree (switch-switch links) bounds
	// the total egress.
	host := nw.HostSwitch(hot)
	degree := 0.0
	for _, l := range nw.Links {
		if (l.A == host || l.B == host) &&
			nw.Nodes[l.A].Kind.IsSwitch() && nw.Nodes[l.B].Kind.IsSwitch() {
			degree++
		}
	}
	// Demands whose destination shares the hot switch don't cross the cut;
	// all 99 here are spread across the fabric, at most a few co-located.
	if res.Lambda*99 > degree+5 {
		t.Errorf("λ·demand %.2f exceeds cut bound ~%g", res.Lambda*99, degree)
	}
	if res.UpperBound*99 > degree+10 {
		t.Errorf("dual bound %.4f inconsistent with cut bound", res.UpperBound)
	}
}

// TestConversionPreservesEquipment: converting through every mode and back
// to Clos returns exactly the fat-tree link multiset (no drift across
// repeated conversions).
func TestConversionPreservesEquipment(t *testing.T) {
	k := 8
	ft, err := core.Build(core.Params{K: k})
	if err != nil {
		t.Fatal(err)
	}
	fat, err := fattree.New(k)
	if err != nil {
		t.Fatal(err)
	}
	for cycle := 0; cycle < 3; cycle++ {
		for _, mode := range []core.Mode{core.ModeGlobalRandom, core.ModeLocalRandom, core.ModeClos} {
			if err := ft.SetUniformMode(mode); err != nil {
				t.Fatal(err)
			}
		}
	}
	got := make(map[[2]int]int)
	for _, l := range ft.Net().Links {
		a, b := l.A, l.B
		if a > b {
			a, b = b, a
		}
		got[[2]int{a, b}]++
	}
	for _, l := range fat.Net.Links {
		a, b := l.A, l.B
		if a > b {
			a, b = b, a
		}
		got[[2]int{a, b}]--
	}
	for link, c := range got {
		if c != 0 {
			t.Fatalf("link %v drifted after conversion cycles (count %d)", link, c)
		}
	}
}
