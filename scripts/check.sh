#!/usr/bin/env bash
# check.sh is the repository's tier-1 verification gate: build, go vet,
# gofmt, the custom flatlint static-analysis pass, the unit tests, and the
# race detector on the concurrent packages (the ctrl control plane spawns
# per-connection goroutines; dynsim drives it under load; parallel is the
# deterministic fan-out runner; graph, metrics, faults, and experiments fan
# their sweeps out through it). CI and local development both run exactly
# this script:
#
#	./scripts/check.sh
#
# Every step must pass; the first failure stops the run.
#
# check.sh verifies correctness only. Performance is tracked separately by
# ./scripts/bench.sh, which runs the solver microbenchmarks and refreshes
# the BENCH_mcf.json baseline; run it when touching internal/graph or
# internal/mcf hot paths and compare against the checked-in numbers.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== go build"
go build ./...

echo "== go vet"
go vet ./...

echo "== gofmt"
unformatted=$(gofmt -l . | grep -v '^internal/flatlint/testdata/' || true)
if [ -n "$unformatted" ]; then
    echo "gofmt: the following files need formatting:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== flatlint"
go run ./cmd/flatlint ./...

echo "== go test"
go test ./...

echo "== go test -race (concurrent packages)"
go test -race ./internal/ctrl/... ./internal/dynsim/... \
    ./internal/parallel/... ./internal/graph/... ./internal/metrics/... \
    ./internal/faults/... ./internal/experiments/...

echo "ok: all checks passed"
