#!/usr/bin/env bash
# check.sh is the repository's tier-1 verification gate: build, go vet,
# gofmt, the custom flatlint static-analysis pass, the unit tests, and the
# race detector on the concurrent packages (the ctrl control plane spawns
# per-connection goroutines; dynsim drives it under load; parallel is the
# deterministic fan-out runner; graph, metrics, faults, chaos, and
# experiments fan their sweeps out through it; flatlint parses and
# type-checks packages concurrently; serve multiplexes HTTP requests over
# a bounded solver pool and store takes concurrent Put/Get). The unit-test
# leg runs with -shuffle=on so inter-test ordering dependencies surface,
# and the flatlint leg archives its -json findings as FLATLINT.json next
# to the benchmark baselines. CI and local development both run exactly
# this script:
#
#	./scripts/check.sh
#
# Every step must pass; the first failure stops the run.
#
# check.sh verifies correctness only. Performance is gated separately:
# ./scripts/bench.sh --check is the pre-merge perf gate — it reruns the
# solver benchmarks (AblationEpsilon, SolverSequence, SolverCrossK,
# Fleischer) and exits non-zero on a >15% ns/op regression (tolerance
# configurable: --tolerance / BENCH_TOLERANCE) against the checked-in
# BENCH_mcf.json.
# Run it when touching internal/graph or internal/mcf hot paths; a justified
# regression is recorded by regenerating the baseline (./scripts/bench.sh)
# in the same PR.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== go build"
go build ./...

echo "== go vet"
go vet ./...

echo "== gofmt"
unformatted=$(gofmt -l . | grep -v '^internal/flatlint/testdata/' || true)
if [ -n "$unformatted" ]; then
    echo "gofmt: the following files need formatting:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== flatlint"
# The -json artifact is archived next to the benchmark baselines so a CI
# run leaves a machine-readable record ([] when clean). flatlint exits 1
# on findings, which stops the run after the artifact is written.
go run ./cmd/flatlint -json ./... > FLATLINT.json || {
    echo "flatlint: findings (see FLATLINT.json):" >&2
    go run ./cmd/flatlint ./... >&2 || true
    exit 1
}

echo "== go test"
go test -shuffle=on ./...

echo "== go test -race (concurrent packages)"
go test -race ./internal/ctrl/... ./internal/dynsim/... \
    ./internal/parallel/... ./internal/graph/... ./internal/metrics/... \
    ./internal/faults/... ./internal/chaos/... ./internal/experiments/... \
    ./internal/flatlint/... ./internal/serve/... ./internal/store/...

echo "== store crash-recovery (kill -9 mid-write, then reopen)"
# The child-process fault-injection test: a writer is SIGKILLed mid-Put
# and the reopened store must quarantine torn state and verify every
# surviving entry byte-exactly. Run explicitly so the suite's one
# non-deterministic-by-design test is visible as its own leg.
go test -run 'TestKill9MidWriteRecovery' -count=1 ./internal/store

echo "== serve smoke (build the binary, cold/warm cell, SIGTERM drain)"
# End-to-end through the built flatsim binary: start `flatsim serve` on
# an ephemeral port, issue a cold then warm request (miss then hit,
# byte-identical), SIGTERM, and require a clean drain with the cell
# persisted.
go test -run 'TestServeSmokeEndToEnd' -count=1 ./cmd/flatsim

echo "== soak smoke (bounded chaos soak, fixed seed)"
# A tiny end-to-end soak through the real CLI: small k, short virtual
# horizon, fixed seed. Proves the subcommand wiring (flag validation,
# warm-stats reset, table emission) against a live control plane; the
# determinism and overlap guarantees are pinned by the chaos and
# experiments test suites above.
go run ./cmd/flatsim -kmax 4 -eps 0.3 -rate 2 -horizon 3 -seed 1 \
    -tsv soak > /dev/null

echo "== bench smoke (1 iteration; compiles and runs the kernel benches)"
# One pinned iteration of the SSSP kernel benchmarks: not a perf
# measurement (that is ./scripts/bench.sh --check), just proof the bench
# harness still builds and both kernels still run. Catches bit-rot in
# bench-only code paths that go test -run never executes.
go test -run '^$' -bench 'BenchmarkDijkstra|BenchmarkDeltaStep' \
    -benchtime 1x ./internal/graph > /dev/null

echo "ok: all checks passed"
