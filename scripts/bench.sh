#!/usr/bin/env bash
# bench.sh measures the throughput-solver hot path and records the numbers
# as the repository's benchmark baseline, BENCH_mcf.json. It runs:
#
#   - BenchmarkAblationEpsilon (repo root): the FPTAS on the fig7-style
#     broadcast workload at three accuracies — the headline solver cost,
#     with lambda / dual gap / Dijkstra counts as accuracy witnesses;
#   - BenchmarkFleischer (internal/mcf): fat-tree hot-spot solves;
#   - BenchmarkDijkstra, BenchmarkDijkstraK32Scale, BenchmarkKShortestPaths
#     (internal/graph): the shortest-path kernel alone.
#
# Usage:
#
#	./scripts/bench.sh [output.json]      # default output: BENCH_mcf.json
#
# The JSON carries ns/op, B/op, allocs/op, and every custom go-bench metric
# per benchmark, plus a frozen "baseline" section with the pre-kernel
# numbers (commit 4a7d409) so the perf trajectory of later PRs has a fixed
# origin. Compare a fresh run against the checked-in file before replacing
# it; a regression in ns/op or allocs/op on the solver benchmarks needs a
# justification in the PR that introduces it.
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-BENCH_mcf.json}"
# Iteration-pinned benchtime for the solver benches keeps the wall time of
# this script bounded; the microbenchmarks use a time budget for stable
# per-op numbers.
SOLVER_BENCHTIME="${SOLVER_BENCHTIME:-5x}"
MICRO_BENCHTIME="${MICRO_BENCHTIME:-0.5s}"

tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

echo "== solver benchmarks (benchtime $SOLVER_BENCHTIME)"
go test -run '^$' -bench 'BenchmarkAblationEpsilon' -benchmem \
    -benchtime "$SOLVER_BENCHTIME" . | tee -a "$tmp"
go test -run '^$' -bench 'BenchmarkFleischer' -benchmem \
    -benchtime "$SOLVER_BENCHTIME" ./internal/mcf | tee -a "$tmp"

echo "== kernel microbenchmarks (benchtime $MICRO_BENCHTIME)"
go test -run '^$' -bench 'BenchmarkDijkstra|BenchmarkKShortestPaths' \
    -benchmem -benchtime "$MICRO_BENCHTIME" ./internal/graph | tee -a "$tmp"

# Render "BenchmarkX  N  v1 unit1  v2 unit2 ..." lines as JSON objects.
# Units become keys: ns/op -> ns_op, B/op -> bytes_op, allocs/op ->
# allocs_op, custom metrics keep their names.
benchjson() {
    awk '
        /^Benchmark/ {
            sub(/-[0-9]+$/, "", $1) # strip the -GOMAXPROCS suffix
            printf "        \"%s\": {\"iterations\": %s", $1, $2
            for (i = 3; i < NF; i += 2) {
                unit = $(i + 1)
                gsub(/^B\/op$/, "bytes_op", unit)
                gsub(/\//, "_", unit)
                printf ", \"%s\": %s", unit, $i
            }
            print "},"
        }
    ' "$1" | sed '$ s/,$//'
}

{
    echo '{'
    echo '  "description": "solver benchmark baseline; regenerate with ./scripts/bench.sh",'
    echo "  \"go\": \"$(go env GOVERSION) $(go env GOOS)/$(go env GOARCH)\","
    echo "  \"solver_benchtime\": \"$SOLVER_BENCHTIME\","
    echo '  "baseline": {'
    echo '    "commit": "4a7d409 (pre zero-allocation kernel)",'
    echo '    "results": {'
    cat <<'EOF'
        "BenchmarkAblationEpsilon/eps=0.05": {"iterations": 2, "ns_op": 512491830, "dijkstras": 18601, "dual_gap": 0.06685, "lambda": 0.006875, "bytes_op": 101939504, "allocs_op": 3706159},
        "BenchmarkAblationEpsilon/eps=0.1": {"iterations": 2, "ns_op": 138700254, "dijkstras": 4584, "dual_gap": 0.1388, "lambda": 0.006735, "bytes_op": 28515408, "allocs_op": 1018188},
        "BenchmarkAblationEpsilon/eps=0.2": {"iterations": 2, "ns_op": 32430988, "dijkstras": 1106, "dual_gap": 0.2982, "lambda": 0.006435, "bytes_op": 7200592, "allocs_op": 254300},
        "BenchmarkFleischer/k=8": {"iterations": 2, "ns_op": 53794670, "bytes_op": 15204208, "allocs_op": 566676},
        "BenchmarkFleischer/k=12": {"iterations": 2, "ns_op": 193049999, "bytes_op": 70029800, "allocs_op": 2226981},
        "BenchmarkDijkstra/n=256": {"iterations": 38342, "ns_op": 32395, "bytes_op": 16376, "allocs_op": 521},
        "BenchmarkDijkstra/n=1024": {"iterations": 8282, "ns_op": 139230, "bytes_op": 62712, "allocs_op": 2059},
        "BenchmarkKShortestPaths": {"iterations": 1126, "ns_op": 1043646, "bytes_op": 417984, "allocs_op": 13076}
EOF
    echo '    }'
    echo '  },'
    echo '  "baseline_prepool": {'
    echo '    "commit": "5b61e31 (zero-allocation kernel, pre arena pooling)",'
    echo '    "results": {'
    cat <<'EOF'
        "BenchmarkAblationEpsilon/eps=0.05": {"iterations": 5, "ns_op": 139876030, "dijkstras": 15946, "dual_gap": 0.06636, "lambda": 0.006873, "bytes_op": 45217, "allocs_op": 382},
        "BenchmarkAblationEpsilon/eps=0.1": {"iterations": 5, "ns_op": 41391379, "dijkstras": 3952, "dual_gap": 0.1312, "lambda": 0.006733, "bytes_op": 45217, "allocs_op": 382},
        "BenchmarkAblationEpsilon/eps=0.2": {"iterations": 5, "ns_op": 9830942, "dijkstras": 964.0, "dual_gap": 0.2830, "lambda": 0.006432, "bytes_op": 45217, "allocs_op": 382},
        "BenchmarkFleischer/k=8": {"iterations": 5, "ns_op": 14483237, "bytes_op": 34209, "allocs_op": 344},
        "BenchmarkFleischer/k=12": {"iterations": 5, "ns_op": 78130372, "bytes_op": 135201, "allocs_op": 893}
EOF
    echo '    }'
    echo '  },'
    echo '  "benchmarks": {'
    echo '    "results": {'
    benchjson "$tmp"
    echo '    }'
    echo '  }'
    echo '}'
} > "$OUT"

echo "wrote $OUT"
