#!/usr/bin/env bash
# bench.sh measures the throughput-solver hot path and records the numbers
# as the repository's benchmark baseline, BENCH_mcf.json. It runs:
#
#   - BenchmarkAblationEpsilon (repo root): the FPTAS on the fig7-style
#     broadcast workload at three accuracies — the headline solver cost,
#     with lambda / dual gap / Dijkstra counts as accuracy witnesses;
#   - BenchmarkSolverSequence (repo root): a failure -> dark-window ->
#     repair chain of near-identical instances, cold vs warm-started
#     (mcf.Solver), with dual-gap / warm-start counts as witnesses;
#   - BenchmarkFleischer (internal/mcf): fat-tree hot-spot solves;
#   - BenchmarkDijkstra, BenchmarkDijkstraK32Scale, BenchmarkKShortestPaths
#     (internal/graph): the shortest-path kernel alone.
#
# Usage:
#
#	./scripts/bench.sh [output.json]      # regenerate (default: BENCH_mcf.json)
#	./scripts/bench.sh --check            # pre-merge perf gate
#
# JSON assembly is delegated to cmd/benchjson. When regenerating, every
# frozen "baseline*" section is carried forward from the checked-in
# BENCH_mcf.json — the historical perf trajectory lives only in that file,
# and benchjson fails loudly if it (or its frozen sections) is missing
# rather than silently dropping history. --check reruns only the solver
# benchmarks and exits non-zero on a >15% ns/op regression against the
# checked-in "benchmarks" section; a justified regression is recorded by
# regenerating the baseline in the same PR.
set -euo pipefail
cd "$(dirname "$0")/.."

CHECK=0
if [[ "${1:-}" == "--check" ]]; then
    CHECK=1
    shift
fi
OUT="${1:-BENCH_mcf.json}"
# Iteration-pinned benchtime for the solver benches keeps the wall time of
# this script bounded; the microbenchmarks use a time budget for stable
# per-op numbers. The sequence bench solves 7 instances per op, so it gets
# a smaller pin of its own.
SOLVER_BENCHTIME="${SOLVER_BENCHTIME:-5x}"
SEQUENCE_BENCHTIME="${SEQUENCE_BENCHTIME:-3x}"
MICRO_BENCHTIME="${MICRO_BENCHTIME:-0.5s}"

tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

echo "== solver benchmarks (benchtime $SOLVER_BENCHTIME, sequence $SEQUENCE_BENCHTIME)"
go test -run '^$' -bench 'BenchmarkAblationEpsilon' -benchmem \
    -benchtime "$SOLVER_BENCHTIME" . | tee -a "$tmp"
go test -run '^$' -bench 'BenchmarkSolverSequence' -benchmem \
    -benchtime "$SEQUENCE_BENCHTIME" . | tee -a "$tmp"
go test -run '^$' -bench 'BenchmarkFleischer' -benchmem \
    -benchtime "$SOLVER_BENCHTIME" ./internal/mcf | tee -a "$tmp"

if [[ "$CHECK" == 1 ]]; then
    go run ./cmd/benchjson -bench "$tmp" -in BENCH_mcf.json -check
    exit 0
fi

echo "== kernel microbenchmarks (benchtime $MICRO_BENCHTIME)"
go test -run '^$' -bench 'BenchmarkDijkstra|BenchmarkKShortestPaths' \
    -benchmem -benchtime "$MICRO_BENCHTIME" ./internal/graph | tee -a "$tmp"

go run ./cmd/benchjson -bench "$tmp" -in BENCH_mcf.json -out "$OUT" \
    -benchtime "$SOLVER_BENCHTIME"
