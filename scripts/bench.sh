#!/usr/bin/env bash
# bench.sh measures the throughput-solver hot path and records the numbers
# as the repository's benchmark baseline, BENCH_mcf.json. It runs:
#
#   - BenchmarkAblationEpsilon (repo root): the FPTAS on the fig7-style
#     broadcast workload at three accuracies — the headline solver cost,
#     with lambda / dual gap / Dijkstra counts as accuracy witnesses;
#   - BenchmarkSolverSequence (repo root): a failure -> dark-window ->
#     repair chain of related instances with re-drawn per-stage demands,
#     cold vs warm-started (mcf.Solver), with dual-gap / warm-start counts
#     as witnesses;
#   - BenchmarkSolverCrossK (repo root): the fig8 fat-tree column chain,
#     cold vs warm-started down the k axis (cross-k seeding);
#   - BenchmarkFleischer (internal/mcf): fat-tree hot-spot solves;
#   - BenchmarkDijkstra, BenchmarkDijkstraK32Scale, BenchmarkDeltaStep,
#     BenchmarkDeltaStepK32Scale, BenchmarkKShortestPaths (internal/graph):
#     the shortest-path kernels alone, heap vs bucket queue.
#
# Usage:
#
#	./scripts/bench.sh [output.json]          # regenerate (default: BENCH_mcf.json)
#	./scripts/bench.sh --check                # pre-merge perf gate
#	./scripts/bench.sh --check --tolerance 0.25   # looser gate (noisy host)
#	BENCH_TOLERANCE=0.25 ./scripts/bench.sh --check   # same, via env
#
# JSON assembly is delegated to cmd/benchjson. When regenerating, every
# frozen "baseline*" section is carried forward from the checked-in
# BENCH_mcf.json — the historical perf trajectory lives only in that file,
# and benchjson fails loudly if it (or its frozen sections) is missing
# rather than silently dropping history. --check reruns only the solver
# benchmarks and exits non-zero on a ns/op regression beyond the tolerance
# (default 15%) against the checked-in "benchmarks" section; a justified
# regression is recorded by regenerating the baseline in the same PR.
set -euo pipefail
cd "$(dirname "$0")/.."

CHECK=0
TOLERANCE="${BENCH_TOLERANCE:-0.15}"
while [[ $# -gt 0 ]]; do
    case "$1" in
        --check) CHECK=1; shift ;;
        --tolerance) TOLERANCE="${2:?--tolerance needs a value}"; shift 2 ;;
        *) break ;;
    esac
done
OUT="${1:-BENCH_mcf.json}"
# Iteration-pinned benchtime for the solver benches keeps the wall time of
# this script bounded; the microbenchmarks use a time budget for stable
# per-op numbers. The sequence bench solves 7 instances per op, so it gets
# a smaller pin of its own.
SOLVER_BENCHTIME="${SOLVER_BENCHTIME:-5x}"
SEQUENCE_BENCHTIME="${SEQUENCE_BENCHTIME:-3x}"
MICRO_BENCHTIME="${MICRO_BENCHTIME:-0.5s}"

tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

echo "== solver benchmarks (benchtime $SOLVER_BENCHTIME, sequence $SEQUENCE_BENCHTIME)"
go test -run '^$' -bench 'BenchmarkAblationEpsilon' -benchmem \
    -benchtime "$SOLVER_BENCHTIME" . | tee -a "$tmp"
go test -run '^$' -bench 'BenchmarkSolverSequence|BenchmarkSolverCrossK' -benchmem \
    -benchtime "$SEQUENCE_BENCHTIME" . | tee -a "$tmp"
go test -run '^$' -bench 'BenchmarkFleischer' -benchmem \
    -benchtime "$SOLVER_BENCHTIME" ./internal/mcf | tee -a "$tmp"

if [[ "$CHECK" == 1 ]]; then
    go run ./cmd/benchjson -bench "$tmp" -in BENCH_mcf.json -check -tolerance "$TOLERANCE"
    exit 0
fi

echo "== kernel microbenchmarks (benchtime $MICRO_BENCHTIME)"
go test -run '^$' -bench 'BenchmarkDijkstra|BenchmarkDeltaStep|BenchmarkKShortestPaths' \
    -benchmem -benchtime "$MICRO_BENCHTIME" ./internal/graph | tee -a "$tmp"

go run ./cmd/benchjson -bench "$tmp" -in BENCH_mcf.json -out "$OUT" \
    -benchtime "$SOLVER_BENCHTIME"
