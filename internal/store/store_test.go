package store

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func testKey(s string) string {
	sum := sha256.Sum256([]byte(s))
	return hex.EncodeToString(sum[:])
}

func TestPutGetRoundtrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key, body := testKey("a"), []byte("# table\nk\tv\n4\t1.0\n")
	if _, ok, err := s.Get(key); err != nil || ok {
		t.Fatalf("expected clean miss, got ok=%v err=%v", ok, err)
	}
	if err := s.Put(key, body); err != nil {
		t.Fatal(err)
	}
	got, ok, err := s.Get(key)
	if err != nil || !ok || !bytes.Equal(got, body) {
		t.Fatalf("Get = %q, %v, %v; want stored body", got, ok, err)
	}
	st := s.Stats()
	if st.Entries != 1 || st.Hits != 1 || st.Misses != 1 {
		t.Errorf("stats = %+v; want 1 entry, 1 hit, 1 miss", st)
	}

	// A fresh Open of the same directory serves the same bytes.
	s2, err := Open(s.Dir())
	if err != nil {
		t.Fatal(err)
	}
	got, ok, err = s2.Get(key)
	if err != nil || !ok || !bytes.Equal(got, body) {
		t.Fatalf("reopened Get = %q, %v, %v", got, ok, err)
	}
	if st := s2.Stats(); st.Entries != 1 {
		t.Errorf("reopened stats = %+v; want 1 entry", st)
	}
}

func TestBadKeysRejected(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{
		"", "short", strings.Repeat("g", 64), strings.Repeat("A", 64),
		"../../../../etc/passwd" + strings.Repeat("0", 42),
	} {
		if err := s.Put(key, []byte("x")); !errors.Is(err, ErrBadKey) {
			t.Errorf("Put(%q) = %v; want ErrBadKey", key, err)
		}
		if _, _, err := s.Get(key); !errors.Is(err, ErrBadKey) {
			t.Errorf("Get(%q) = %v; want ErrBadKey", key, err)
		}
	}
}

// TestOpenRecoversTornAndCorrupt plants the two crash artifacts by hand —
// a leftover temp file and a committed entry whose bytes no longer verify
// — and pins Open's sweep: temp deleted, corrupt quarantined, good entry
// kept.
func TestOpenRecoversTornAndCorrupt(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	good, bad := testKey("good"), testKey("bad")
	if err := s.Put(good, []byte("good body")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(bad, []byte("bad body")); err != nil {
		t.Fatal(err)
	}
	// Corrupt one entry in place (flip a payload byte past the header).
	path := filepath.Join(dir, bad+entrySuffix)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	// A torn write: temp file that never reached its rename.
	if err := os.WriteFile(filepath.Join(dir, good+".123.tmp"), []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	// And a truncated entry (crash mid-write would leave this only under
	// a .tmp name, but disk corruption can truncate committed files too).
	trunc := testKey("trunc")
	if err := os.WriteFile(filepath.Join(dir, trunc+entrySuffix), []byte("flatstore1 "), 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	st := s2.Stats()
	if st.Entries != 1 || st.TornRemoved != 1 || st.Quarantined != 2 {
		t.Fatalf("recovery stats = %+v; want 1 entry, 1 torn removed, 2 quarantined", st)
	}
	if _, ok, err := s2.Get(good); err != nil || !ok {
		t.Errorf("good entry lost: ok=%v err=%v", ok, err)
	}
	for _, key := range []string{bad, trunc} {
		if _, ok, err := s2.Get(key); err != nil || ok {
			t.Errorf("corrupt entry %s still serves: ok=%v err=%v", key[:8], ok, err)
		}
	}
	// The quarantined bytes are preserved for postmortems.
	if _, err := os.Stat(filepath.Join(dir, quarantineDir, bad+entrySuffix)); err != nil {
		t.Errorf("quarantined entry missing: %v", err)
	}
	// Recompute-and-re-Put restores service for the quarantined address.
	if err := s2.Put(bad, []byte("bad body")); err != nil {
		t.Fatal(err)
	}
	if got, ok, err := s2.Get(bad); err != nil || !ok || string(got) != "bad body" {
		t.Errorf("re-put entry: %q, %v, %v", got, ok, err)
	}
}

// TestGetQuarantinesCorruptEntry covers corruption detected after Open:
// the poisoned entry turns into a miss, not an error or wrong bytes.
func TestGetQuarantinesCorruptEntry(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := testKey("x")
	if err := s.Put(key, []byte("body")); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, key+entrySuffix)
	if err := os.WriteFile(path, []byte("flatstore1 deadbeef 4\nbody"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := s.Get(key); err != nil || ok {
		t.Fatalf("corrupt Get = ok=%v err=%v; want miss", ok, err)
	}
	if _, err := os.Stat(path); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("corrupt entry still in place: %v", err)
	}
	if st := s.Stats(); st.Quarantined != 1 || st.Entries != 0 {
		t.Errorf("stats = %+v; want 1 quarantined, 0 entries", st)
	}
}

// TestConcurrentPutGet exercises the store under the race detector:
// concurrent writers and readers over a small key space must never see an
// error or a torn read.
func TestConcurrentPutGet(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	keys := make([]string, 4)
	bodies := make([][]byte, len(keys))
	for i := range keys {
		keys[i] = testKey(fmt.Sprint(i))
		bodies[i] = bytes.Repeat([]byte{byte('a' + i)}, 1024)
	}
	done := make(chan error, 8)
	for w := 0; w < 4; w++ {
		go func(w int) {
			for i := 0; i < 16; i++ {
				if err := s.Put(keys[(w+i)%len(keys)], bodies[(w+i)%len(keys)]); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}(w)
		go func(w int) {
			for i := 0; i < 64; i++ {
				ki := (w + i) % len(keys)
				got, ok, err := s.Get(keys[ki])
				if err != nil {
					done <- err
					return
				}
				if ok && !bytes.Equal(got, bodies[ki]) {
					done <- fmt.Errorf("torn read on key %d", ki)
					return
				}
			}
			done <- nil
		}(w)
	}
	for i := 0; i < 8; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
