package store

import (
	"bytes"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// childDirEnv re-enters this test binary as a writer child; see
// TestKill9MidWriteRecovery.
const childDirEnv = "FLATSTORE_KILL9_CHILD_DIR"

// kill9Payload derives the deterministic ~256KB payload for write index i,
// so the parent can verify surviving entries byte-for-byte without any
// channel back from the killed child.
func kill9Payload(i int) []byte {
	return bytes.Repeat([]byte(fmt.Sprintf("cell %04d|", i)), 256*1024/10)
}

// TestKill9MidWriteRecovery is the fault-injection test the store's crash
// safety contract rests on: a child process writes entries in a tight loop
// and is SIGKILLed mid-stream — no defers, no cleanup, the closest a test
// gets to a power cut. The parent then reopens the directory and requires
// that recovery is total: no temp files survive the sweep, and every
// committed entry verifies and serves exactly the bytes its key implies.
func TestKill9MidWriteRecovery(t *testing.T) {
	if dir := os.Getenv(childDirEnv); dir != "" {
		kill9Child(dir)
		return
	}
	if testing.Short() {
		t.Skip("child-process fault injection; skipped in -short")
	}
	dir := filepath.Join(t.TempDir(), "store")
	cmd := exec.Command(os.Args[0], "-test.run=TestKill9MidWriteRecovery$", "-test.v")
	cmd.Env = append(os.Environ(), childDirEnv+"="+dir)
	var childOut bytes.Buffer
	cmd.Stdout, cmd.Stderr = &childOut, &childOut
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}

	// Let the child commit a few entries, then kill it mid-stream. The
	// child never stops on its own, so whenever the signal lands it is
	// either inside a Put or between two — both must recover.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if time.Now().After(deadline) {
			_ = cmd.Process.Kill()
			_ = cmd.Wait()
			t.Fatalf("child never committed 3 entries; output:\n%s", childOut.String())
		}
		entries, _ := filepath.Glob(filepath.Join(dir, "*"+entrySuffix))
		if len(entries) >= 3 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := cmd.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	err := cmd.Wait()
	if ee, ok := err.(*exec.ExitError); !ok || ee.ProcessState.Sys().(syscall.WaitStatus).Signal() != syscall.SIGKILL {
		t.Fatalf("child exit = %v; want SIGKILL", err)
	}

	s, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen after kill -9: %v", err)
	}
	if tmps, _ := filepath.Glob(filepath.Join(dir, "*"+tmpSuffix)); len(tmps) != 0 {
		t.Errorf("temp files survived recovery: %v", tmps)
	}
	names, err := filepath.Glob(filepath.Join(dir, "*"+entrySuffix))
	if err != nil || len(names) < 3 {
		t.Fatalf("expected >= 3 recovered entries, have %d (%v)", len(names), err)
	}
	// Every surviving entry must serve exactly the payload its write index
	// implies — recovery may drop the in-flight write, never alter a
	// committed one.
	verified := 0
	for i := 0; ; i++ {
		payload := kill9Payload(i)
		got, ok, err := s.Get(testKey(fmt.Sprintf("kill9-%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break // the killed write and everything after it
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("entry %d corrupted after recovery", i)
		}
		verified++
	}
	if verified != len(names) {
		t.Errorf("verified %d sequential entries but %d files on disk", verified, len(names))
	}
	if st := s.Stats(); st.Entries != len(names) {
		t.Errorf("stats = %+v; want %d entries", st, len(names))
	}
	t.Logf("recovered %d entries, %d torn writes removed (child output: %d bytes)",
		verified, s.Stats().TornRemoved, childOut.Len())
	if strings.Contains(childOut.String(), "FAIL") {
		t.Errorf("child logged a failure before the kill:\n%s", childOut.String())
	}
}

// kill9Child writes entries forever; it only exits by signal.
func kill9Child(dir string) {
	s, err := Open(dir)
	if err != nil {
		fmt.Printf("FAIL: child open: %v\n", err)
		os.Exit(1)
	}
	for i := 0; ; i++ {
		if err := s.Put(testKey(fmt.Sprintf("kill9-%d", i)), kill9Payload(i)); err != nil {
			fmt.Printf("FAIL: child put %d: %v\n", i, err)
			os.Exit(1)
		}
	}
}
