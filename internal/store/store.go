// Package store is a crash-safe, content-addressed result store for
// experiment cells. Keys are SHA-256 hex strings (the content address of a
// request: canonical config + seed + code version); values are the exact
// bytes a cold computation produced, so a cache hit is byte-identical to a
// recompute by construction.
//
// Crash safety is the point, not a feature: writes go to a temp file in
// the store directory, are fsynced, and only then renamed into place, so a
// reader never observes a half-written entry under its final name. Every
// entry carries a header with the payload's own SHA-256 and length;
// entries that fail verification — torn by a crash that raced the rename,
// or corrupted on disk afterwards — are quarantined (moved aside, never
// silently served) and simply miss, so the caller recomputes them. Open
// sweeps the directory, deletes leftover temp files, and verifies every
// entry, which is what makes kill -9 at any instant recoverable.
package store

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
)

const (
	// entrySuffix marks committed entries; tmpPattern names in-flight
	// writes (os.CreateTemp replaces the "*").
	entrySuffix = ".cell"
	tmpPattern  = ".*.tmp"
	tmpSuffix   = ".tmp"
	// quarantineDir collects entries that failed verification, for
	// postmortems; the store never reads them back.
	quarantineDir = "quarantine"
	// magic versions the entry format. The header line is
	// "flatstore1 <64-hex payload sha256> <decimal payload length>\n".
	magic = "flatstore1"
)

// Stats counts what the store has seen since Open.
type Stats struct {
	// Entries is the number of committed entries currently on disk.
	Entries int
	// TornRemoved counts leftover temp files deleted at Open — writes a
	// crash interrupted before their rename.
	TornRemoved int
	// Quarantined counts entries moved aside after failing checksum or
	// header verification, at Open or on a later Get.
	Quarantined int
	// Hits and Misses count Get outcomes.
	Hits, Misses int
}

// Store is a directory of verified entries. Methods are safe for
// concurrent use; Put is atomic (temp file + fsync + rename), so a crash
// at any instant leaves only entries that verify.
type Store struct {
	dir string

	mu    sync.Mutex
	stats Stats
}

// ErrBadKey rejects keys that are not 64-character lowercase SHA-256 hex —
// anything else could escape the store directory or collide with its
// bookkeeping names.
var ErrBadKey = errors.New("store: key must be 64 lowercase hex characters")

// validKey reports whether key is a well-formed content address.
func validKey(key string) bool {
	if len(key) != 64 {
		return false
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// Open creates dir if needed and recovers it: leftover temp files from
// interrupted writes are deleted, and every committed entry is verified
// against its embedded checksum, with failures quarantined. After Open
// returns, every entry on disk is known-good.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(filepath.Join(dir, quarantineDir), 0o755); err != nil {
		return nil, fmt.Errorf("store: open %s: %w", dir, err)
	}
	s := &Store{dir: dir}
	names, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("store: open %s: %w", dir, err)
	}
	for _, de := range names {
		name := de.Name()
		switch {
		case de.IsDir():
			// quarantine/ and anything else a user dropped in.
		case strings.HasSuffix(name, tmpSuffix):
			if err := os.Remove(filepath.Join(dir, name)); err != nil {
				return nil, fmt.Errorf("store: removing torn write %s: %w", name, err)
			}
			s.stats.TornRemoved++
		case strings.HasSuffix(name, entrySuffix):
			key := strings.TrimSuffix(name, entrySuffix)
			if !validKey(key) {
				if err := s.quarantine(name); err != nil {
					return nil, err
				}
				continue
			}
			if _, err := s.readVerified(key); err != nil {
				if errors.Is(err, errCorrupt) {
					if err := s.quarantine(name); err != nil {
						return nil, err
					}
					continue
				}
				return nil, err
			}
			s.stats.Entries++
		}
	}
	return s, nil
}

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

// errCorrupt marks an entry whose bytes do not verify; it never escapes
// the package — corrupt entries surface as misses after quarantine.
var errCorrupt = errors.New("store: entry failed verification")

// readVerified loads an entry and checks its header and payload hash. It
// returns errCorrupt for any malformed or mismatching entry and the
// underlying error for I/O failures; fs.ErrNotExist passes through.
func (s *Store) readVerified(key string) ([]byte, error) {
	raw, err := os.ReadFile(filepath.Join(s.dir, key+entrySuffix))
	if err != nil {
		return nil, err
	}
	nl := bytes.IndexByte(raw, '\n')
	if nl < 0 {
		return nil, errCorrupt
	}
	fields := strings.Fields(string(raw[:nl]))
	if len(fields) != 3 || fields[0] != magic || len(fields[1]) != 64 {
		return nil, errCorrupt
	}
	n, err := strconv.Atoi(fields[2])
	if err != nil || n < 0 {
		return nil, errCorrupt
	}
	payload := raw[nl+1:]
	if len(payload) != n {
		return nil, errCorrupt
	}
	sum := sha256.Sum256(payload)
	if hex.EncodeToString(sum[:]) != fields[1] {
		return nil, errCorrupt
	}
	return payload, nil
}

// quarantine moves a bad entry into the quarantine subdirectory.
func (s *Store) quarantine(name string) error {
	dst := filepath.Join(s.dir, quarantineDir, name)
	if err := os.Rename(filepath.Join(s.dir, name), dst); err != nil {
		return fmt.Errorf("store: quarantining %s: %w", name, err)
	}
	s.stats.Quarantined++
	return nil
}

// Get returns the entry's payload, or (nil, false, nil) on a miss. An
// entry that fails verification is quarantined and reported as a miss —
// the caller recomputes and re-Puts it.
func (s *Store) Get(key string) ([]byte, bool, error) {
	if !validKey(key) {
		return nil, false, ErrBadKey
	}
	payload, err := s.readVerified(key)
	switch {
	case err == nil:
		s.count(func(st *Stats) { st.Hits++ })
		return payload, true, nil
	case errors.Is(err, fs.ErrNotExist):
		s.count(func(st *Stats) { st.Misses++ })
		return nil, false, nil
	case errors.Is(err, errCorrupt):
		s.mu.Lock()
		defer s.mu.Unlock()
		// Re-check under the lock: a concurrent Get may have quarantined
		// (or a concurrent Put replaced) the entry already.
		if _, err := s.readVerified(key); errors.Is(err, errCorrupt) {
			if err := s.quarantine(key + entrySuffix); err != nil && !errors.Is(err, fs.ErrNotExist) {
				return nil, false, err
			}
			s.stats.Entries--
		}
		s.stats.Misses++
		return nil, false, nil
	default:
		return nil, false, fmt.Errorf("store: get %s: %w", key, err)
	}
}

// Put atomically commits payload under key: temp file in the store
// directory, fsync, rename into place, directory fsync. A concurrent or
// crashed duplicate Put is harmless — content addressing means both wrote
// the same bytes, and rename is atomic.
func (s *Store) Put(key string, payload []byte) error {
	if !validKey(key) {
		return ErrBadKey
	}
	f, err := os.CreateTemp(s.dir, key+tmpPattern)
	if err != nil {
		return fmt.Errorf("store: put %s: %w", key, err)
	}
	tmp := f.Name()
	fail := func(err error) error {
		_ = f.Close()      //flatlint:ignore ignorederr best-effort cleanup on the error path; the Open sweep deletes stragglers
		_ = os.Remove(tmp) //flatlint:ignore ignorederr best-effort cleanup on the error path; the Open sweep deletes stragglers
		return fmt.Errorf("store: put %s: %w", key, err)
	}
	sum := sha256.Sum256(payload)
	if _, err := fmt.Fprintf(f, "%s %s %d\n", magic, hex.EncodeToString(sum[:]), len(payload)); err != nil {
		return fail(err)
	}
	if _, err := f.Write(payload); err != nil {
		return fail(err)
	}
	if err := f.Sync(); err != nil {
		return fail(err)
	}
	if err := f.Close(); err != nil {
		return fail(err)
	}
	if err := os.Rename(tmp, filepath.Join(s.dir, key+entrySuffix)); err != nil {
		_ = os.Remove(tmp) //flatlint:ignore ignorederr best-effort cleanup on the error path; the Open sweep deletes stragglers
		return fmt.Errorf("store: put %s: %w", key, err)
	}
	if err := s.syncDir(); err != nil {
		return fmt.Errorf("store: put %s: %w", key, err)
	}
	s.count(func(st *Stats) { st.Entries++ })
	return nil
}

// syncDir fsyncs the store directory so the rename itself is durable.
func (s *Store) syncDir() error {
	d, err := os.Open(s.dir)
	if err != nil {
		return err
	}
	syncErr := d.Sync()
	if err := d.Close(); err != nil {
		return err
	}
	return syncErr
}

// count applies a stats mutation under the lock.
func (s *Store) count(f func(*Stats)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	f(&s.stats)
}

// Stats snapshots the counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}
