// Package fattree builds the canonical three-layer fat-tree topology of
// Al-Fares et al. (SIGCOMM'08), the Clos baseline the flat-tree paper
// evaluates against and the equipment template every other topology in this
// repository reuses: k pods of k/2 edge and k/2 aggregation switches,
// (k/2)^2 core switches, k-port switches throughout, and k^3/4 servers.
package fattree

import (
	"fmt"

	"flattree/internal/topo"
)

// FatTree is a constructed fat-tree with index tables into its network.
type FatTree struct {
	K   int
	Net *topo.Network

	// Cores[c] is the node ID of core switch c, c in [0, (k/2)^2).
	Cores []int
	// Edges[p][j] / Aggs[p][i] are node IDs of pod p's switches.
	Edges [][]int
	Aggs  [][]int
	// ServerIDs[s] is the node ID of global server s, ordered so that
	// consecutive indices share edge switches and pods (the paper's
	// "continuous" locality placement walks this order).
	ServerIDs []int
}

// NumPods returns k.
func (f *FatTree) NumPods() int { return f.K }

// NumServers returns k^3/4.
func (f *FatTree) NumServers() int { return f.K * f.K * f.K / 4 }

// New constructs a fat-tree with parameter k (even, >= 4).
func New(k int) (*FatTree, error) {
	if k < 4 || k%2 != 0 {
		return nil, fmt.Errorf("fattree: k must be even and >= 4, got %d", k)
	}
	half := k / 2
	b := topo.NewBuilder(fmt.Sprintf("fattree(k=%d)", k))
	f := &FatTree{K: k}

	// Core switches.
	f.Cores = make([]int, half*half)
	for c := range f.Cores {
		f.Cores[c] = b.AddNode(topo.CoreSwitch, -1, c, k)
	}
	// Pod switches.
	f.Edges = make([][]int, k)
	f.Aggs = make([][]int, k)
	for p := 0; p < k; p++ {
		f.Edges[p] = make([]int, half)
		f.Aggs[p] = make([]int, half)
		for i := 0; i < half; i++ {
			f.Aggs[p][i] = b.AddNode(topo.AggSwitch, p, i, k)
		}
		for j := 0; j < half; j++ {
			f.Edges[p][j] = b.AddNode(topo.EdgeSwitch, p, j, k)
		}
	}
	// Servers, ordered pod-major then edge-major for locality placement.
	f.ServerIDs = make([]int, 0, k*half*half)
	for p := 0; p < k; p++ {
		for j := 0; j < half; j++ {
			for s := 0; s < half; s++ {
				idx := len(f.ServerIDs)
				sv := b.AddNode(topo.Server, p, idx, 1)
				f.ServerIDs = append(f.ServerIDs, sv)
				b.AddLink(sv, f.Edges[p][j], topo.TagClos)
			}
		}
	}
	// Edge-aggregation full bipartite mesh within each pod.
	for p := 0; p < k; p++ {
		for j := 0; j < half; j++ {
			for i := 0; i < half; i++ {
				b.AddLink(f.Edges[p][j], f.Aggs[p][i], topo.TagClos)
			}
		}
	}
	// Aggregation-core: agg switch i in every pod connects to core group
	// [i*k/2, (i+1)*k/2).
	for p := 0; p < k; p++ {
		for i := 0; i < half; i++ {
			for u := 0; u < half; u++ {
				b.AddLink(f.Aggs[p][i], f.Cores[i*half+u], topo.TagClos)
			}
		}
	}
	f.Net = b.Build()
	return f, nil
}
