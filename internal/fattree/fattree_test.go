package fattree

import (
	"testing"

	"flattree/internal/topo"
)

func TestCounts(t *testing.T) {
	for _, k := range []int{4, 6, 8, 16} {
		f, err := New(k)
		if err != nil {
			t.Fatal(err)
		}
		st := f.Net.Stats()
		if st.Servers != k*k*k/4 {
			t.Errorf("k=%d: %d servers, want %d", k, st.Servers, k*k*k/4)
		}
		if st.CoreSwitches != k*k/4 {
			t.Errorf("k=%d: %d cores, want %d", k, st.CoreSwitches, k*k/4)
		}
		if st.EdgeSwitches != k*k/2 || st.AggSwitches != k*k/2 {
			t.Errorf("k=%d: edge/agg %d/%d, want %d", k, st.EdgeSwitches, st.AggSwitches, k*k/2)
		}
		if st.Links != 3*k*k*k/4 {
			t.Errorf("k=%d: %d links, want %d", k, st.Links, 3*k*k*k/4)
		}
		if err := f.Net.Validate(); err != nil {
			t.Errorf("k=%d: %v", k, err)
		}
	}
}

func TestRejectsBadK(t *testing.T) {
	for _, k := range []int{0, 2, 3, 5, 7} {
		if _, err := New(k); err == nil {
			t.Errorf("New(%d) should fail", k)
		}
	}
}

func TestPortSaturation(t *testing.T) {
	f, err := New(8)
	if err != nil {
		t.Fatal(err)
	}
	// Every switch uses all k ports, every server exactly 1.
	for _, n := range f.Net.Nodes {
		want := 8
		if n.Kind == topo.Server {
			want = 1
		}
		if got := f.Net.PortsUsed(n.ID); got != want {
			t.Fatalf("node %d (%s) uses %d ports, want %d", n.ID, n.Kind, got, want)
		}
	}
}

func TestStructure(t *testing.T) {
	k := 6
	f, err := New(k)
	if err != nil {
		t.Fatal(err)
	}
	// Agg i of every pod connects to core group [i*k/2, (i+1)*k/2).
	adj := make(map[int]map[int]bool)
	for _, l := range f.Net.Links {
		if adj[l.A] == nil {
			adj[l.A] = map[int]bool{}
		}
		if adj[l.B] == nil {
			adj[l.B] = map[int]bool{}
		}
		adj[l.A][l.B] = true
		adj[l.B][l.A] = true
	}
	for p := 0; p < k; p++ {
		for i := 0; i < k/2; i++ {
			for u := 0; u < k/2; u++ {
				if !adj[f.Aggs[p][i]][f.Cores[i*k/2+u]] {
					t.Fatalf("agg %d/%d not connected to core %d", p, i, i*k/2+u)
				}
			}
		}
		// Pod-internal full mesh.
		for j := 0; j < k/2; j++ {
			for i := 0; i < k/2; i++ {
				if !adj[f.Edges[p][j]][f.Aggs[p][i]] {
					t.Fatalf("edge %d/%d not connected to agg %d/%d", p, j, p, i)
				}
			}
		}
	}
	// Servers are grouped k/2 per edge switch, in index order.
	for s, sv := range f.ServerIDs {
		pod := s / (k * k / 4)
		edge := (s / (k / 2)) % (k / 2)
		if f.Net.HostSwitch(sv) != f.Edges[pod][edge] {
			t.Fatalf("server %d on switch %d, want %d", s, f.Net.HostSwitch(sv), f.Edges[pod][edge])
		}
	}
}
