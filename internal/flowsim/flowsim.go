// Package flowsim is a flow-level network simulator: commodities are
// spread over a fixed candidate path set (from a routing.Scheme) and rates
// are assigned by progressive-filling max-min fairness. It complements the
// optimal-routing LP throughput of internal/mcf: the paper's §2.6 proposes
// k-shortest-paths routing for the random-graph modes, and comparing
// flowsim's λ against mcf's quantifies how much of the optimal-routing
// throughput that practical scheme actually achieves (an ablation the
// benchmarks exercise).
package flowsim

import (
	"fmt"
	"math"

	"flattree/internal/routing"
	"flattree/internal/topo"
)

// Commodity is a demand between two nodes (servers or switches).
type Commodity struct {
	Src, Dst int
	Demand   float64
}

// Result summarizes a simulation.
type Result struct {
	// Lambda is min over commodities of rate/demand under max-min fair
	// sharing — directly comparable with mcf.Result.Lambda.
	Lambda float64
	// MeanLambda averages rate/demand over commodities.
	MeanLambda float64
	// Subflows is the number of (commodity, path) pairs simulated.
	Subflows int
}

// subflow is one commodity's share on one path.
type subflow struct {
	commodity int
	links     []int32 // switch-level link indices
	rate      float64
	frozen    bool
}

// MaxMin computes max-min fair rates for the commodities, each split over
// the candidate paths the scheme returns for its switch pair. Every
// switch-switch link has unit capacity; server links are uncapacitated,
// matching the paper's throughput methodology.
//
// Progressive filling: all unfrozen subflows grow at equal rate; when a
// link saturates, its subflows freeze at the current fill level. A
// commodity's rate is the sum over its subflows.
func MaxMin(nw *topo.Network, scheme routing.Scheme, commodities []Commodity) (Result, error) {
	if len(commodities) == 0 {
		return Result{Lambda: math.Inf(1), MeanLambda: math.Inf(1)}, nil
	}
	// Index switch-switch links by endpoint pair for path translation.
	type pair struct{ a, b int32 }
	linkIdx := make(map[pair]int32)
	var capacity []float64
	for _, l := range nw.Links {
		if !nw.Nodes[l.A].Kind.IsSwitch() || !nw.Nodes[l.B].Kind.IsSwitch() {
			continue
		}
		a, b := int32(l.A), int32(l.B)
		if a > b {
			a, b = b, a
		}
		if _, ok := linkIdx[pair{a, b}]; ok {
			// Parallel links pool their capacity for path-level routing.
			capacity[linkIdx[pair{a, b}]]++
			continue
		}
		linkIdx[pair{a, b}] = int32(len(capacity))
		capacity = append(capacity, 1)
	}

	hostOf := func(v int) (int, error) {
		if nw.Nodes[v].Kind.IsSwitch() {
			return v, nil
		}
		h := nw.HostSwitch(v)
		if h < 0 {
			return 0, fmt.Errorf("flowsim: server %d detached", v)
		}
		return h, nil
	}

	var flows []subflow
	commRate := make([]float64, len(commodities))
	pathCache := make(map[pair][][]int32)
	for ci, c := range commodities {
		if c.Demand <= 0 {
			return Result{}, fmt.Errorf("flowsim: non-positive demand %g", c.Demand)
		}
		s, err := hostOf(c.Src)
		if err != nil {
			return Result{}, err
		}
		d, err := hostOf(c.Dst)
		if err != nil {
			return Result{}, err
		}
		if s == d {
			commRate[ci] = math.Inf(1) // local, uncapacitated
			continue
		}
		key := pair{int32(s), int32(d)}
		paths, ok := pathCache[key]
		if !ok {
			ps, err := scheme.Paths(s, d)
			if err != nil {
				return Result{}, err
			}
			for _, p := range ps {
				var links []int32
				valid := true
				for i := 0; i+1 < len(p.Nodes); i++ {
					a, b := p.Nodes[i], p.Nodes[i+1]
					if a > b {
						a, b = b, a
					}
					li, ok := linkIdx[pair{a, b}]
					if !ok {
						valid = false
						break
					}
					links = append(links, li)
				}
				if valid {
					paths = append(paths, links)
				}
			}
			if len(paths) == 0 {
				return Result{}, fmt.Errorf("flowsim: no usable path %d->%d", s, d)
			}
			pathCache[key] = paths
		}
		for _, links := range paths {
			flows = append(flows, subflow{commodity: ci, links: links})
		}
	}

	// Progressive filling.
	linkFlows := make([][]int32, len(capacity))
	for fi, f := range flows {
		for _, li := range f.links {
			linkFlows[li] = append(linkFlows[li], int32(fi))
		}
	}
	used := make([]float64, len(capacity))
	unfrozen := make([]int, len(capacity))
	for li, fs := range linkFlows {
		unfrozen[li] = len(fs)
	}
	level := 0.0
	for {
		// Next saturating link: minimal (cap - used)/unfrozen increment.
		best := math.Inf(1)
		bestLink := -1
		for li := range capacity {
			if unfrozen[li] == 0 {
				continue
			}
			inc := (capacity[li] - used[li]) / float64(unfrozen[li])
			if inc < best {
				best = inc
				bestLink = li
			}
		}
		if bestLink < 0 {
			break // everything frozen
		}
		level += best
		// Raise all unfrozen subflows by best, then freeze those through
		// any now-saturated link.
		for li := range capacity {
			used[li] += best * float64(unfrozen[li])
		}
		for li := range capacity {
			if unfrozen[li] == 0 || capacity[li]-used[li] > 1e-12 {
				continue
			}
			for _, fi := range linkFlows[li] {
				f := &flows[fi]
				if f.frozen {
					continue
				}
				f.frozen = true
				f.rate = level
				for _, l2 := range f.links {
					unfrozen[l2]--
				}
			}
		}
	}
	for _, f := range flows {
		rate := f.rate
		if !f.frozen {
			rate = level
		}
		commRate[f.commodity] += rate
	}

	res := Result{Lambda: math.Inf(1), Subflows: len(flows)}
	sum := 0.0
	for ci, c := range commodities {
		v := commRate[ci] / c.Demand
		if v < res.Lambda {
			res.Lambda = v
		}
		if !math.IsInf(v, 1) {
			sum += v
		}
	}
	res.MeanLambda = sum / float64(len(commodities))
	return res, nil
}
