package flowsim

import (
	"math"
	"testing"

	"flattree/internal/fattree"
	"flattree/internal/mcf"
	"flattree/internal/routing"
	"flattree/internal/topo"
)

func linNet(n int) *topo.Network {
	b := topo.NewBuilder("line")
	sw := make([]int, n)
	for i := range sw {
		sw[i] = b.AddNode(topo.EdgeSwitch, 0, i, 8)
	}
	for i := 0; i+1 < n; i++ {
		b.AddLink(sw[i], sw[i+1], topo.TagClos)
	}
	for i := range sw {
		s := b.AddNode(topo.Server, 0, i, 1)
		b.AddLink(s, sw[i], topo.TagClos)
	}
	return b.Build()
}

func TestSingleFlowLine(t *testing.T) {
	nw := linNet(3)
	servers := nw.Servers()
	res, err := MaxMin(nw, routing.NewKSP(nw, 2), []Commodity{
		{Src: servers[0], Dst: servers[2], Demand: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Lambda-1) > 1e-9 {
		t.Errorf("lambda = %g, want 1 (single flow fills the line)", res.Lambda)
	}
}

func TestFairShareOnSharedLink(t *testing.T) {
	nw := linNet(2)
	servers := nw.Servers()
	comms := []Commodity{
		{Src: servers[0], Dst: servers[1], Demand: 1},
		{Src: servers[0], Dst: servers[1], Demand: 1},
	}
	res, err := MaxMin(nw, routing.NewKSP(nw, 1), comms)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Lambda-0.5) > 1e-9 {
		t.Errorf("lambda = %g, want 0.5 (two flows share one unit link)", res.Lambda)
	}
}

func TestLocalCommodityUnconstrained(t *testing.T) {
	b := topo.NewBuilder("one")
	sw := b.AddNode(topo.EdgeSwitch, 0, 0, 4)
	sw2 := b.AddNode(topo.EdgeSwitch, 0, 1, 4)
	b.AddLink(sw, sw2, topo.TagClos)
	s0 := b.AddNode(topo.Server, 0, 0, 1)
	s1 := b.AddNode(topo.Server, 0, 1, 1)
	b.AddLink(s0, sw, topo.TagClos)
	b.AddLink(s1, sw, topo.TagClos)
	nw := b.Build()
	res, err := MaxMin(nw, routing.NewKSP(nw, 1), []Commodity{{Src: s0, Dst: s1, Demand: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(res.Lambda, 1) {
		t.Errorf("same-switch flow should be unconstrained, got %g", res.Lambda)
	}
}

// TestMaxMinNeverExceedsOptimal: flow-level max-min over ECMP paths is
// always a lower bound on the optimal-routing LP throughput.
func TestMaxMinNeverExceedsOptimal(t *testing.T) {
	f, err := fattree.New(4)
	if err != nil {
		t.Fatal(err)
	}
	comms := []Commodity{
		{Src: f.ServerIDs[0], Dst: f.ServerIDs[8], Demand: 1},
		{Src: f.ServerIDs[1], Dst: f.ServerIDs[12], Demand: 1},
		{Src: f.ServerIDs[4], Dst: f.ServerIDs[15], Demand: 1},
	}
	res, err := MaxMin(f.Net, routing.NewECMP(f.Net, 0), comms)
	if err != nil {
		t.Fatal(err)
	}
	mcfComms := make([]mcf.Commodity, len(comms))
	for i, c := range comms {
		mcfComms[i] = mcf.Commodity{Src: c.Src, Dst: c.Dst, Demand: c.Demand}
	}
	exact, err := mcf.MaxConcurrentFlowExact(f.Net, mcfComms)
	if err != nil {
		t.Fatal(err)
	}
	if res.Lambda > exact+1e-9 {
		t.Errorf("max-min %g exceeds optimal %g", res.Lambda, exact)
	}
	if res.Lambda <= 0 {
		t.Errorf("lambda = %g, want > 0", res.Lambda)
	}
	if res.Subflows == 0 || res.MeanLambda < res.Lambda {
		t.Errorf("result inconsistent: %+v", res)
	}
}

// TestECMPSpreadsLoad: with enough ECMP paths, cross-pod hot-spot flows in
// a fat-tree should get more than a single path's share.
func TestECMPSpreadsLoad(t *testing.T) {
	f, err := fattree.New(4)
	if err != nil {
		t.Fatal(err)
	}
	// One source edge switch to 3 different pods: each commodity has 4
	// ECMP paths; aggregate capacity out of the edge is 2.
	comms := []Commodity{
		{Src: f.ServerIDs[0], Dst: f.ServerIDs[4], Demand: 1},
		{Src: f.ServerIDs[0], Dst: f.ServerIDs[8], Demand: 1},
		{Src: f.ServerIDs[0], Dst: f.ServerIDs[12], Demand: 1},
	}
	res, err := MaxMin(f.Net, routing.NewECMP(f.Net, 0), comms)
	if err != nil {
		t.Fatal(err)
	}
	// Fair share of 2 uplinks across 3 commodities = 2/3 each.
	if res.Lambda < 0.5 {
		t.Errorf("lambda = %g, want >= 0.5", res.Lambda)
	}
}

func TestErrors(t *testing.T) {
	nw := linNet(2)
	servers := nw.Servers()
	if _, err := MaxMin(nw, routing.NewKSP(nw, 1), []Commodity{
		{Src: servers[0], Dst: servers[1], Demand: -1},
	}); err == nil {
		t.Error("negative demand accepted")
	}
	res, err := MaxMin(nw, routing.NewKSP(nw, 1), nil)
	if err != nil || !math.IsInf(res.Lambda, 1) {
		t.Errorf("empty commodities: %+v, %v", res, err)
	}
}
