package graph

// RNG is a small deterministic pseudo-random generator (splitmix64 core).
// Experiments in this repository must be reproducible bit-for-bit across
// platforms and Go releases, so we avoid math/rand's unspecified evolution
// and carry our own generator. It is not cryptographic and does not need to
// be.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed. Two generators with the same
// seed produce identical streams.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed + 0x9e3779b97f4a7c15}
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		//flatlint:ignore nopanic mirrors math/rand.Intn's contract; a non-positive bound is a programmer error
		panic("graph: Intn with non-positive bound")
	}
	// Lemire's nearly-divisionless bounded generation is overkill here;
	// modulo bias is negligible for the bounds we use (n << 2^64), but we
	// still reject the biased tail for exactness.
	bound := uint64(n)
	threshold := -bound % bound
	for {
		v := r.Uint64()
		if v >= threshold {
			return int(v % bound)
		}
	}
}

// Float64 returns a uniform float in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Shuffle permutes the first n elements using swap, Fisher-Yates style.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(n, func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}
