package graph

import "math"

// Workspace holds all scratch state a shortest-path computation needs:
// distance and predecessor vectors plus an index-addressable d-ary heap
// with decrease-key. Allocate one per goroutine (it is not safe for
// concurrent use) and reuse it across calls; after the first call on a
// given graph every subsequent Dijkstra is allocation-free. This is the
// kernel under the FPTAS throughput solver, which runs thousands of
// single-source solves per instance.
//
// Ties in the heap order are broken by node id, so the pop sequence — and
// therefore the shortest-path tree in Prev — is a deterministic function
// of (graph, lengths) alone, not of heap internals or insertion history.
type Workspace struct {
	g *Graph
	// Dist and Prev hold the result of the most recent Dijkstra call:
	// Dist[v] is the distance from the source (+Inf when unreachable) and
	// Prev[v] the edge index used to reach v (-1 at the source and at
	// unreachable nodes). Callers must treat both as read-only.
	Dist []float64
	Prev []int32

	key  []float64 // distance slice ordering the heap during a run
	heap []int32   // node ids, 4-ary min-heap by (key, id)
	pos  []int32   // node -> heap slot, -1 when absent

	tmark  []uint64 // target marks for DijkstraTargets, epoch-stamped
	tepoch uint64   // current target epoch; bumping it clears all marks

	// Bucket arena for the delta-stepping kernel (deltastep.go). Invariant
	// between runs: every bucket empty, bnum[v] = -1 everywhere.
	bkt  [][]int32 // circular array of buckets holding queued node ids
	bnum []int32   // node -> absolute bucket number, -1 when not queued
	bpos []int32   // node -> slot within its bucket
}

// NewWorkspace returns a Workspace sized for g. The graph must not gain
// nodes while the workspace is in use.
func (g *Graph) NewWorkspace() *Workspace {
	n := g.N()
	w := &Workspace{
		g:    g,
		Dist: make([]float64, n),
		Prev: make([]int32, n),
		heap: make([]int32, 0, n),
		pos:  make([]int32, n),
	}
	for i := range w.pos {
		w.pos[i] = -1
	}
	return w
}

// Rebind retargets the workspace at g, reusing the existing backing
// arrays whenever they have the capacity. This is what makes pooling
// workspaces across solver invocations worthwhile: each invocation
// aggregates its own switch-level graph, but the sizes recur, so a
// rebound workspace allocates nothing. The heap invariant (empty heap,
// pos[v] = -1 everywhere) is re-established here because the node count
// may change.
func (w *Workspace) Rebind(g *Graph) {
	n := g.N()
	w.g = g
	if cap(w.Dist) < n {
		w.Dist = make([]float64, n)
		w.Prev = make([]int32, n)
		w.pos = make([]int32, n)
		w.heap = make([]int32, 0, n)
	} else {
		w.Dist = w.Dist[:n]
		w.Prev = w.Prev[:n]
		w.pos = w.pos[:n]
	}
	for i := range w.pos {
		w.pos[i] = -1
	}
	w.heap = w.heap[:0]
	w.key = nil
}

// Dijkstra computes shortest distances from src under per-edge lengths
// length[e] (which must be non-negative) into w.Dist and w.Prev.
func (w *Workspace) Dijkstra(src int, length []float64) {
	w.run(int32(src), length, w.Dist, w.Prev, nil, nil, nil)
}

// DijkstraTargets is the batched oracle under the FPTAS throughput solver:
// one source-grouped pass that serves every commodity of a source at once.
// It runs Dijkstra from src but stops as soon as all the given target nodes
// have been settled, instead of exhausting the whole graph. On return,
// Dist/Prev are exact for every settled node — in particular for every
// reachable target and for every node on a shortest path to one (strictly
// positive lengths mean path predecessors settle before the target) — so
// walking Prev from a target yields the same tree edges a full Dijkstra
// would. Unreachable targets are reported at +Inf: the search exhausts
// their component before it can stop, which is exactly the full-run
// behavior. Unsettled nodes hold only tentative distances (or +Inf if
// never reached); callers must not read them.
//
// Because the settled pop sequence of the early-stopped run is a prefix of
// the full run's pop sequence (same heap, same deterministic tie-break),
// results for targets are bit-identical to Dijkstra's — callers trade no
// reproducibility for the saved work.
func (w *Workspace) DijkstraTargets(src int, length []float64, targets []int32) {
	w.run(int32(src), length, w.Dist, w.Prev, nil, nil, targets)
}

// DijkstraBanned is Dijkstra with Yen's spur machinery: bannedEdge (len M)
// marks edges that must not be used and bannedNode (len N) nodes that must
// not be traversed. Either may be nil.
func (w *Workspace) DijkstraBanned(src int, length []float64, bannedEdge, bannedNode []bool) {
	w.run(int32(src), length, w.Dist, w.Prev, bannedEdge, bannedNode, nil)
}

// ShortestPath returns one shortest path from src to dst under the given
// edge lengths, or ok=false if dst is unreachable. With deterministic
// tie-breaking the returned path depends only on the graph and lengths.
func (w *Workspace) ShortestPath(src, dst int, length []float64) (Path, bool) {
	w.Dijkstra(src, length)
	if math.IsInf(w.Dist[dst], 1) {
		return Path{}, false
	}
	return w.g.extractPath(src, dst, w.Dist[dst], w.Prev), true
}

// run is the kernel: a textbook Dijkstra over an indexed 4-ary heap.
// Every node enters the heap at most once (improvements are decrease-key
// sift-ups rather than lazy re-insertions), so the heap slice never grows
// past N and the whole call allocates nothing after the first targeted
// call sizes the mark vector. dist and prev must have length N; prev is
// always filled (the write is one int32 store per edge relaxation, cheaper
// than a branch). A non-nil targets slice ends the run once every listed
// node has been popped; the heap is drained (pos reset) so the workspace
// invariant survives the early exit.
// prepare resets dist/prev for a fresh run and epoch-stamps the target
// marks, counting duplicates once. It returns the (possibly nil-ed) target
// slice and the number of distinct targets still to settle; an empty target
// list degenerates to a full run. Shared by the heap and bucket kernels so
// their early-exit accounting cannot drift apart.
func (w *Workspace) prepare(dist []float64, prev []int32, targets []int32) ([]int32, int) {
	for i := range dist {
		dist[i] = math.Inf(1)
		prev[i] = -1
	}
	remaining := 0
	if targets != nil {
		if len(w.tmark) < len(dist) {
			w.tmark = make([]uint64, len(dist))
		}
		w.tepoch++
		for _, t := range targets {
			if w.tmark[t] != w.tepoch {
				w.tmark[t] = w.tepoch
				remaining++
			}
		}
		if remaining == 0 {
			targets = nil
		}
	}
	return targets, remaining
}

func (w *Workspace) run(src int32, length []float64, dist []float64, prev []int32, bannedEdge, bannedNode []bool, targets []int32) {
	targets, remaining := w.prepare(dist, prev, targets)
	w.key = dist
	w.heap = w.heap[:0]
	if bannedNode != nil && bannedNode[src] {
		return
	}
	dist[src] = 0
	w.push(src)
	for len(w.heap) > 0 {
		v := w.pop()
		if targets != nil && w.tmark[v] == w.tepoch {
			remaining--
			if remaining == 0 {
				for _, u := range w.heap {
					w.pos[u] = -1
				}
				w.heap = w.heap[:0]
				return
			}
		}
		dv := dist[v]
		for _, h := range w.g.adj[v] {
			if bannedEdge != nil && bannedEdge[h.Edge] {
				continue
			}
			if bannedNode != nil && bannedNode[h.Peer] {
				continue
			}
			nd := dv + length[h.Edge]
			if nd < dist[h.Peer] {
				dist[h.Peer] = nd
				prev[h.Peer] = h.Edge
				if p := w.pos[h.Peer]; p >= 0 {
					w.siftUp(int(p)) // decrease-key
				} else {
					w.push(h.Peer)
				}
			}
		}
	}
}

// The heap invariant after every exported call: empty, with pos[v] = -1
// for all v (every pushed node gets popped), so runs never need to reset
// pos. The arity-4 layout trades slightly more comparisons per sift-down
// for half the tree depth — a win when decrease-key sift-ups dominate, as
// they do on the dense relaxation pattern of the FPTAS length updates.

const heapArity = 4

// less orders the heap by (distance, node id); the id tie-break is what
// makes the pop order, and hence the shortest-path tree, deterministic.
func (w *Workspace) less(a, b int32) bool {
	if w.key[a] != w.key[b] { //flatlint:ignore floatcmp exact equality picks the id tie-break branch; either branch is correct
		return w.key[a] < w.key[b]
	}
	return a < b
}

func (w *Workspace) push(v int32) {
	w.pos[v] = int32(len(w.heap))
	w.heap = append(w.heap, v)
	w.siftUp(len(w.heap) - 1)
}

func (w *Workspace) pop() int32 {
	root := w.heap[0]
	w.pos[root] = -1
	last := len(w.heap) - 1
	if last > 0 {
		v := w.heap[last]
		w.heap[0] = v
		w.pos[v] = 0
	}
	w.heap = w.heap[:last]
	if last > 1 {
		w.siftDown(0)
	}
	return root
}

func (w *Workspace) siftUp(i int) {
	v := w.heap[i]
	for i > 0 {
		parent := (i - 1) / heapArity
		p := w.heap[parent]
		if !w.less(v, p) {
			break
		}
		w.heap[i] = p
		w.pos[p] = int32(i)
		i = parent
	}
	w.heap[i] = v
	w.pos[v] = int32(i)
}

func (w *Workspace) siftDown(i int) {
	n := len(w.heap)
	v := w.heap[i]
	for {
		first := i*heapArity + 1
		if first >= n {
			break
		}
		best := first
		end := first + heapArity
		if end > n {
			end = n
		}
		for c := first + 1; c < end; c++ {
			if w.less(w.heap[c], w.heap[best]) {
				best = c
			}
		}
		if !w.less(w.heap[best], v) {
			break
		}
		w.heap[i] = w.heap[best]
		w.pos[w.heap[i]] = int32(i)
		i = best
	}
	w.heap[i] = v
	w.pos[v] = int32(i)
}
