// Package graph provides the generic graph substrate used by every topology
// in this repository: compact undirected adjacency structures, breadth-first
// shortest paths, Dijkstra, Yen's k-shortest-paths, connectivity checks, and
// a random graph builder for arbitrary degree sequences (the Jellyfish
// construction).
//
// Graphs are node-indexed with dense integer IDs in [0, N). Parallel edges
// are permitted (they arise naturally in super-node constructions); self
// loops are not.
package graph

import (
	"fmt"
	"sort"
)

// Half is one endpoint's view of an edge: the peer node and the edge index.
type Half struct {
	Peer int32 // node on the other side
	Edge int32 // index into the graph's edge list
}

// Edge is an undirected edge between nodes A and B.
type Edge struct {
	A, B int32
}

// Other returns the endpoint of e that is not x.
func (e Edge) Other(x int32) int32 {
	if e.A == x {
		return e.B
	}
	return e.A
}

// Graph is an undirected multigraph with dense node IDs.
// The zero value is an empty graph; use New or AddNodes to size it.
type Graph struct {
	adj   [][]Half
	edges []Edge
}

// New returns a graph with n isolated nodes.
func New(n int) *Graph {
	return &Graph{adj: make([][]Half, n)}
}

// Reset returns g to n isolated nodes, keeping the adjacency and edge
// storage so a graph rebuilt with a recurring shape (the pooled FPTAS
// solver re-aggregates a same-sized switch graph every solve) stops
// allocating once warm.
func (g *Graph) Reset(n int) {
	if cap(g.adj) < n {
		g.adj = make([][]Half, n)
	} else {
		g.adj = g.adj[:n]
	}
	for i := range g.adj {
		g.adj[i] = g.adj[i][:0]
	}
	g.edges = g.edges[:0]
}

// N returns the number of nodes.
func (g *Graph) N() int { return len(g.adj) }

// M returns the number of edges.
func (g *Graph) M() int { return len(g.edges) }

// Edges returns the edge list. The caller must not modify it.
func (g *Graph) Edges() []Edge { return g.edges }

// Edge returns edge i.
func (g *Graph) Edge(i int) Edge { return g.edges[i] }

// AddNodes appends k isolated nodes and returns the ID of the first.
func (g *Graph) AddNodes(k int) int {
	first := len(g.adj)
	g.adj = append(g.adj, make([][]Half, k)...)
	return first
}

// AddEdge inserts an undirected edge between a and b and returns its index.
// It panics on self loops or out-of-range nodes; topology builders are
// expected to be correct by construction and a silent error return would
// hide wiring bugs.
func (g *Graph) AddEdge(a, b int) int {
	if a == b {
		//flatlint:ignore nopanic documented construction invariant: a silent error return would hide wiring bugs
		panic(fmt.Sprintf("graph: self loop at node %d", a))
	}
	if a < 0 || b < 0 || a >= len(g.adj) || b >= len(g.adj) {
		//flatlint:ignore nopanic documented construction invariant: a silent error return would hide wiring bugs
		panic(fmt.Sprintf("graph: edge (%d,%d) out of range [0,%d)", a, b, len(g.adj)))
	}
	id := len(g.edges)
	g.edges = append(g.edges, Edge{int32(a), int32(b)})
	g.adj[a] = append(g.adj[a], Half{Peer: int32(b), Edge: int32(id)})
	g.adj[b] = append(g.adj[b], Half{Peer: int32(a), Edge: int32(id)})
	return id
}

// Neighbors returns the adjacency list of node v (peers with edge indices).
// The caller must not modify it.
func (g *Graph) Neighbors(v int) []Half { return g.adj[v] }

// Degree returns the degree of node v, counting parallel edges.
func (g *Graph) Degree(v int) int { return len(g.adj[v]) }

// HasEdge reports whether at least one edge connects a and b.
func (g *Graph) HasEdge(a, b int) bool {
	// Scan the smaller adjacency list.
	if len(g.adj[a]) > len(g.adj[b]) {
		a, b = b, a
	}
	for _, h := range g.adj[a] {
		if h.Peer == int32(b) {
			return true
		}
	}
	return false
}

// Clone returns a deep copy of g.
func (g *Graph) Clone() *Graph {
	c := &Graph{
		adj:   make([][]Half, len(g.adj)),
		edges: append([]Edge(nil), g.edges...),
	}
	for i, l := range g.adj {
		c.adj[i] = append([]Half(nil), l...)
	}
	return c
}

// BFS computes hop distances from src to every node. Unreachable nodes get
// distance -1. The result slice has length N().
func (g *Graph) BFS(src int) []int32 {
	dist := make([]int32, len(g.adj))
	g.BFSInto(src, dist, make([]int32, len(g.adj)))
	return dist
}

// BFSInto is an allocation-free BFS: dist and queue must have length N().
// On return dist holds hop counts (-1 if unreachable).
func (g *Graph) BFSInto(src int, dist, queue []int32) {
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue[0] = int32(src)
	head, tail := 0, 1
	for head < tail {
		v := queue[head]
		head++
		dv := dist[v]
		for _, h := range g.adj[v] {
			if dist[h.Peer] < 0 {
				dist[h.Peer] = dv + 1
				queue[tail] = h.Peer
				tail++
			}
		}
	}
}

// Connected reports whether all nodes with at least one incident edge plus
// node 0 form a single connected component. Isolated nodes are ignored so
// that switch-only reachability checks are not confused by, e.g., spare
// nodes with zero configured ports.
func (g *Graph) Connected() bool {
	n := len(g.adj)
	if n == 0 {
		return true
	}
	start := -1
	for v := 0; v < n; v++ {
		if len(g.adj[v]) > 0 {
			start = v
			break
		}
	}
	if start < 0 {
		return true // no edges at all
	}
	dist := g.BFS(start)
	for v := 0; v < n; v++ {
		if len(g.adj[v]) > 0 && dist[v] < 0 {
			return false
		}
	}
	return true
}

// Diameter returns the longest shortest-path distance over all reachable
// node pairs, or -1 for an empty graph.
func (g *Graph) Diameter() int {
	n := len(g.adj)
	if n == 0 {
		return -1
	}
	dist := make([]int32, n)
	queue := make([]int32, n)
	best := 0
	for v := 0; v < n; v++ {
		if len(g.adj[v]) == 0 {
			continue
		}
		g.BFSInto(v, dist, queue)
		for _, d := range dist {
			if int(d) > best {
				best = int(d)
			}
		}
	}
	return best
}

// DegreeHistogram returns a map from degree to node count.
func (g *Graph) DegreeHistogram() map[int]int {
	h := make(map[int]int)
	for v := range g.adj {
		h[len(g.adj[v])]++
	}
	return h
}

// SortAdjacency orders every adjacency list by (peer, edge). Builders call
// it to make iteration order — and thus every downstream deterministic
// algorithm — independent of construction order.
func (g *Graph) SortAdjacency() {
	for _, l := range g.adj {
		sort.Slice(l, func(i, j int) bool {
			if l[i].Peer != l[j].Peer {
				return l[i].Peer < l[j].Peer
			}
			return l[i].Edge < l[j].Edge
		})
	}
}
