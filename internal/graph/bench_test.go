package graph

import (
	"fmt"
	"testing"
)

func regular(b *testing.B, n, d int, seed uint64) *Graph {
	b.Helper()
	degrees := make([]int, n)
	for i := range degrees {
		degrees[i] = d
	}
	g, err := BuildConnected(degrees, NewRNG(seed))
	if err != nil {
		b.Fatal(err)
	}
	return g
}

func BenchmarkBFS(b *testing.B) {
	for _, n := range []int{256, 1024} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			g := regular(b, n, 8, 1)
			dist := make([]int32, n)
			queue := make([]int32, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				g.BFSInto(i%n, dist, queue)
			}
		})
	}
}

func BenchmarkDijkstra(b *testing.B) {
	for _, n := range []int{256, 1024} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			g := regular(b, n, 8, 1)
			length := g.UnitLengths()
			dist := make([]float64, n)
			prev := make([]int32, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				g.Dijkstra(i%n, length, dist, prev, nil, nil)
			}
		})
	}
}

func BenchmarkKShortestPaths(b *testing.B) {
	g := regular(b, 256, 8, 1)
	length := g.UnitLengths()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if paths := g.KShortestPaths(0, 128, 8, length); len(paths) == 0 {
			b.Fatal("no paths")
		}
	}
}

func BenchmarkRandomDegree(b *testing.B) {
	degrees := make([]int, 512)
	for i := range degrees {
		degrees[i] = 12
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RandomDegree(degrees, NewRNG(uint64(i))); err != nil {
			b.Fatal(err)
		}
	}
}
