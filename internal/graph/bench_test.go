package graph

import (
	"fmt"
	"testing"
)

func regular(b *testing.B, n, d int, seed uint64) *Graph {
	b.Helper()
	degrees := make([]int, n)
	for i := range degrees {
		degrees[i] = d
	}
	g, err := BuildConnected(degrees, NewRNG(seed))
	if err != nil {
		b.Fatal(err)
	}
	return g
}

func BenchmarkBFS(b *testing.B) {
	for _, n := range []int{256, 1024} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			g := regular(b, n, 8, 1)
			dist := make([]int32, n)
			queue := make([]int32, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				g.BFSInto(i%n, dist, queue)
			}
		})
	}
}

func BenchmarkDijkstra(b *testing.B) {
	for _, n := range []int{256, 1024} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			g := regular(b, n, 8, 1)
			length := g.UnitLengths()
			ws := g.NewWorkspace()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ws.Dijkstra(i%n, length)
			}
		})
	}
}

// BenchmarkDijkstraK32Scale runs the workspace kernel at the node count of
// the paper's largest experiments: a flat-tree(32) has 5·32²/4 = 1280
// switches of degree up to 32. This is the per-call cost the FPTAS pays
// thousands of times per solve.
func BenchmarkDijkstraK32Scale(b *testing.B) {
	const n, d = 1280, 16
	g := regular(b, n, d, 1)
	length := g.UnitLengths()
	ws := g.NewWorkspace()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ws.Dijkstra(i%n, length)
	}
}

func BenchmarkDeltaStep(b *testing.B) {
	for _, n := range []int{256, 1024} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			g := regular(b, n, 8, 1)
			length := g.UnitLengths()
			ws := g.NewWorkspace()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ws.DeltaStep(i%n, length)
			}
		})
	}
}

// BenchmarkDeltaStepK32Scale is BenchmarkDijkstraK32Scale on the bucket
// kernel — the head-to-head at the paper's largest switch count.
func BenchmarkDeltaStepK32Scale(b *testing.B) {
	const n, d = 1280, 16
	g := regular(b, n, d, 1)
	length := g.UnitLengths()
	ws := g.NewWorkspace()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ws.DeltaStep(i%n, length)
	}
}

func BenchmarkKShortestPaths(b *testing.B) {
	g := regular(b, 256, 8, 1)
	length := g.UnitLengths()
	s := g.NewKSPSolver()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if paths := s.KShortestPaths(0, 128, 8, length); len(paths) == 0 {
			b.Fatal("no paths")
		}
	}
}

func BenchmarkRandomDegree(b *testing.B) {
	degrees := make([]int, 512)
	for i := range degrees {
		degrees[i] = 12
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RandomDegree(degrees, NewRNG(uint64(i))); err != nil {
			b.Fatal(err)
		}
	}
}
