package graph

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDijkstraMatchesBFSOnUnitLengths(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		n := 24
		degrees := make([]int, n)
		for i := range degrees {
			degrees[i] = 4
		}
		g, err := BuildConnected(degrees, NewRNG(seed))
		if err != nil {
			return false
		}
		bfs := g.BFS(0)
		dist := make([]float64, n)
		g.Dijkstra(0, g.UnitLengths(), dist, nil)
		for v := 0; v < n; v++ {
			if int32(dist[v]) != bfs[v] {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 30})
	if err != nil {
		t.Error(err)
	}
}

func TestShortestPathWeighted(t *testing.T) {
	// 0-1-3 costs 1+1=2; 0-2-3 costs 5+1=6; direct 0-3 costs 10.
	g := New(4)
	e01 := g.AddEdge(0, 1)
	e13 := g.AddEdge(1, 3)
	e02 := g.AddEdge(0, 2)
	e23 := g.AddEdge(2, 3)
	e03 := g.AddEdge(0, 3)
	length := make([]float64, g.M())
	length[e01], length[e13] = 1, 1
	length[e02], length[e23] = 5, 1
	length[e03] = 10
	p, ok := g.ShortestPath(0, 3, length)
	if !ok {
		t.Fatal("no path")
	}
	if p.Cost != 2 || len(p.Nodes) != 3 || p.Nodes[1] != 1 {
		t.Errorf("path = %+v", p)
	}
}

func TestShortestPathUnreachable(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1)
	if _, ok := g.ShortestPath(0, 2, g.UnitLengths()); ok {
		t.Error("found path to isolated node")
	}
}

func TestKShortestPathsSimple(t *testing.T) {
	// Diamond: 0-1-3, 0-2-3, plus a long way 0-1-2-3.
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 3)
	g.AddEdge(0, 2)
	g.AddEdge(2, 3)
	g.AddEdge(1, 2)
	paths := g.KShortestPaths(0, 3, 4, g.UnitLengths())
	if len(paths) != 4 {
		t.Fatalf("got %d paths, want 4", len(paths))
	}
	if paths[0].Cost != 2 || paths[1].Cost != 2 {
		t.Errorf("two shortest should cost 2: %v %v", paths[0], paths[1])
	}
	if paths[2].Cost != 3 || paths[3].Cost != 3 {
		t.Errorf("next two should cost 3: %v %v", paths[2], paths[3])
	}
	for _, p := range paths {
		if p.Nodes[0] != 0 || p.Nodes[len(p.Nodes)-1] != 3 {
			t.Errorf("path endpoints wrong: %v", p.Nodes)
		}
		seen := map[int32]bool{}
		for _, v := range p.Nodes {
			if seen[v] {
				t.Errorf("path has a loop: %v", p.Nodes)
			}
			seen[v] = true
		}
	}
}

// TestKShortestPathsProperties: costs non-decreasing, loopless, unique.
func TestKShortestPathsProperties(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		n := 16
		degrees := make([]int, n)
		for i := range degrees {
			degrees[i] = 4
		}
		g, err := BuildConnected(degrees, NewRNG(seed))
		if err != nil {
			return false
		}
		paths := g.KShortestPaths(0, n-1, 6, g.UnitLengths())
		if len(paths) == 0 {
			return false
		}
		seen := make(map[string]bool)
		last := math.Inf(-1)
		for _, p := range paths {
			if p.Cost < last-1e-12 {
				return false
			}
			last = p.Cost
			key := ""
			visited := make(map[int32]bool)
			for _, v := range p.Nodes {
				if visited[v] {
					return false // loop
				}
				visited[v] = true
				key += string(rune(v)) + ","
			}
			if seen[key] {
				return false // duplicate
			}
			seen[key] = true
		}
		return true
	}, &quick.Config{MaxCount: 25})
	if err != nil {
		t.Error(err)
	}
}

func TestKShortestPathsParallelEdges(t *testing.T) {
	g := New(2)
	g.AddEdge(0, 1)
	g.AddEdge(0, 1)
	paths := g.KShortestPaths(0, 1, 3, g.UnitLengths())
	// Loopless node sequences are identical for parallel edges, so only
	// one distinct path exists.
	if len(paths) != 1 {
		t.Errorf("got %d paths, want 1", len(paths))
	}
}
