package graph

import "testing"

// triangleWithSpare builds a triangle a-b-c (nodes 0,1,2) plus an isolated
// node 3, returning the graph and a free-port vector giving node 3 two
// ports. Pairing alone cannot consume them (a single active node), so the
// augmentation is forced into a type-1 edge swap.
func triangleWithSpare() (*Graph, []int) {
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(0, 2)
	return g, []int{0, 0, 0, 2}
}

func TestAugmentRandomPairsFreePorts(t *testing.T) {
	g := New(6)
	g.AddEdge(0, 1)
	free := []int{0, 0, 1, 1, 1, 1}
	res, err := AugmentRandom(g, free, nil, NewRNG(7))
	if err != nil {
		t.Fatal(err)
	}
	if res.Leftover != 0 {
		t.Errorf("leftover = %d, want 0", res.Leftover)
	}
	if len(res.Added) != 2 {
		t.Fatalf("added %d edges, want 2: %v", len(res.Added), res.Added)
	}
	if len(res.Broken) != 0 {
		t.Errorf("broke edges %v with no swap needed", res.Broken)
	}
	deg := make([]int, g.N())
	for _, e := range g.Edges() {
		deg[e.A]++
		deg[e.B]++
	}
	want := []int{1, 1, 1, 1, 1, 1}
	for v, d := range deg {
		if d != want[v] {
			t.Errorf("node %d degree %d, want %d", v, d, want[v])
		}
	}
}

func TestAugmentRandomSwapBreaksEdge(t *testing.T) {
	g, free := triangleWithSpare()
	res, err := AugmentRandom(g, free, nil, NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Leftover != 0 {
		t.Fatalf("leftover = %d, want 0 (swap should consume both ports)", res.Leftover)
	}
	if len(res.Broken) != 1 || len(res.Added) != 2 {
		t.Fatalf("broken=%v added=%v, want one break and two new edges", res.Broken, res.Added)
	}
	if g.Degree(3) != 2 {
		t.Errorf("spare node degree %d, want 2", g.Degree(3))
	}
	if g.M() != 4 {
		t.Errorf("edge count %d, want 4", g.M())
	}
	for _, e := range res.Added {
		if e.A != 3 && e.B != 3 {
			t.Errorf("added edge %v does not touch the spare node", e)
		}
	}
}

func TestAugmentRandomCanBreakVeto(t *testing.T) {
	g, free := triangleWithSpare()
	res, err := AugmentRandom(g, free, func(int) bool { return false }, NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Broken) != 0 || len(res.Added) != 0 {
		t.Errorf("veto ignored: broken=%v added=%v", res.Broken, res.Added)
	}
	if res.Leftover != 2 {
		t.Errorf("leftover = %d, want 2", res.Leftover)
	}
	if g.M() != 3 {
		t.Errorf("edge count %d, want the untouched triangle", g.M())
	}
}

func TestAugmentRandomDeterministic(t *testing.T) {
	build := func() *Graph {
		g, err := RandomDegree([]int{4, 4, 4, 4, 4, 4, 4, 4}, NewRNG(11))
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	run := func() (*Graph, AugmentResult) {
		g := build()
		// Free two ports each on half the nodes, as if their peers died.
		free := []int{2, 2, 2, 2, 0, 0, 0, 0}
		res, err := AugmentRandom(g, free, func(id int) bool { return id%2 == 0 }, NewRNG(99))
		if err != nil {
			t.Fatal(err)
		}
		return g, res
	}
	g1, r1 := run()
	g2, r2 := run()
	e1, e2 := g1.Edges(), g2.Edges()
	if len(e1) != len(e2) {
		t.Fatalf("edge counts differ: %d vs %d", len(e1), len(e2))
	}
	for i := range e1 {
		if e1[i] != e2[i] {
			t.Fatalf("edge %d differs: %v vs %v", i, e1[i], e2[i])
		}
	}
	if len(r1.Added) != len(r2.Added) || len(r1.Broken) != len(r2.Broken) || r1.Leftover != r2.Leftover {
		t.Errorf("results differ: %+v vs %+v", r1, r2)
	}
}

func TestAugmentRandomValidation(t *testing.T) {
	g := New(3)
	if _, err := AugmentRandom(g, []int{1, 1}, nil, NewRNG(1)); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := AugmentRandom(g, []int{1, -1, 0}, nil, NewRNG(1)); err == nil {
		t.Error("negative free count accepted")
	}
}

func TestAugmentRandomNoSelfLoopsOrParallel(t *testing.T) {
	g, err := RandomDegree([]int{3, 3, 3, 3, 3, 3, 3, 3, 3, 3}, NewRNG(5))
	if err != nil {
		t.Fatal(err)
	}
	free := make([]int, g.N())
	for v := range free {
		free[v] = 2
	}
	if _, err := AugmentRandom(g, free, nil, NewRNG(17)); err != nil {
		t.Fatal(err)
	}
	seen := make(map[[2]int32]bool)
	for _, e := range g.Edges() {
		if e.A == e.B {
			t.Fatalf("self loop at %d", e.A)
		}
		k := [2]int32{e.A, e.B}
		if e.A > e.B {
			k = [2]int32{e.B, e.A}
		}
		if seen[k] {
			t.Fatalf("parallel edge %v", e)
		}
		seen[k] = true
	}
}
