package graph

import (
	"math"
	"testing"
)

// deltaLengths draws per-edge lengths from one of three distributions the
// FPTAS oracle actually presents: uniform (probe-like), clamped into the
// warm-seed ratio band [1, m^¼] (warm-start lengths), and power-law with a
// spread wide enough to cross the kernel's heap-fallback threshold on some
// seeds (late-phase lengths).
func deltaLengths(rng *RNG, m int, dist int) []float64 {
	length := make([]float64, m)
	switch dist {
	case 0: // uniform
		for i := range length {
			length[i] = 0.1 + rng.Float64()
		}
	case 1: // clamped band, ratios in [1, m^¼] over a common floor
		rmax := math.Pow(float64(m), 0.25)
		for i := range length {
			length[i] = 0.01 * (1 + rng.Float64()*(rmax-1))
		}
	default: // power-law, spreads up to 2^16 (past deltaMaxSpread)
		for i := range length {
			length[i] = math.Pow(2, rng.Float64()*16)
		}
	}
	return length
}

// TestDeltaStepBitIdenticalToDijkstra is the 40-seed differential suite: on
// random multigraphs under uniform/clamped/power-law lengths, the bucket
// kernel's entire Dist/Prev state — settled *and* tentative, full runs and
// early-exited target runs alike — must be bit-identical to the heap
// kernel's. One workspace per kernel is reused across all runs so stale
// bucket-arena or heap state cannot hide.
func TestDeltaStepBitIdenticalToDijkstra(t *testing.T) {
	for seed := uint64(0); seed < 40; seed++ {
		rng := NewRNG(seed)
		g, _ := randomMultigraph(rng)
		n := g.N()
		length := deltaLengths(rng, g.M(), int(seed%3))
		// Zero-length parallel edges: zero out a few edges, then duplicate
		// one of them so a zero-length parallel pair always exists.
		if seed%2 == 0 {
			for j := 0; j < 3; j++ {
				length[rng.Intn(g.M())] = 0
			}
			e := g.Edge(rng.Intn(g.M()))
			g.AddEdge(int(e.A), int(e.B))
			g.SortAdjacency()
			length = append(length, 0)
			length[rng.Intn(g.M())] = 0
		}
		heap := g.NewWorkspace()
		bucket := g.NewWorkspace()

		check := func(what string) {
			t.Helper()
			for v := 0; v < n; v++ {
				if heap.Dist[v] != bucket.Dist[v] || heap.Prev[v] != bucket.Prev[v] { //flatlint:ignore floatcmp the kernels must agree bit for bit, tentative state included
					t.Fatalf("seed %d %s: kernels diverge at node %d: dist %g vs %g, prev %d vs %d",
						seed, what, v, heap.Dist[v], bucket.Dist[v], heap.Prev[v], bucket.Prev[v])
				}
			}
		}

		for _, src := range []int{0, rng.Intn(n)} {
			heap.Dijkstra(src, length)
			bucket.DeltaStep(src, length)
			check("full")

			// Early-exited target runs: duplicates must count once, and the
			// stop-point state must match the heap's exactly (same settle
			// order means the same nodes hold tentative values).
			targets := []int32{int32(rng.Intn(n)), int32(rng.Intn(n))}
			targets = append(targets, targets[0])
			heap.DijkstraTargets(src, length, targets)
			bucket.DeltaStepTargets(src, length, targets)
			check("targets")

			// Both workspaces must be clean after the early exit: a full
			// run right after must match a fresh workspace's.
			heap.Dijkstra(src, length)
			bucket.DeltaStep(src, length)
			fresh := g.NewWorkspace()
			fresh.Dijkstra(src, length)
			for v := 0; v < n; v++ {
				if bucket.Dist[v] != fresh.Dist[v] || bucket.Prev[v] != fresh.Prev[v] { //flatlint:ignore floatcmp reuse after early exit must be bit-identical
					t.Fatalf("seed %d: bucket workspace dirty after early exit at node %d", seed, v)
				}
			}
			check("post-exit")
		}
	}
}

// TestDeltaStepUnreachableTargets pins the unreachable-target contract to
// DijkstraTargets': the search exhausts the component and reports +Inf.
func TestDeltaStepUnreachableTargets(t *testing.T) {
	g := New(5)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(3, 4) // separate component
	g.SortAdjacency()
	length := []float64{1, 1, 1}
	ws := g.NewWorkspace()
	ws.DeltaStepTargets(0, length, []int32{2, 3})
	if ws.Dist[2] != 2 { //flatlint:ignore floatcmp unit lengths sum exactly
		t.Errorf("dist[2] = %g, want 2", ws.Dist[2])
	}
	if !math.IsInf(ws.Dist[3], 1) {
		t.Errorf("dist[3] = %g, want +Inf (unreachable)", ws.Dist[3])
	}
	// The workspace must be reusable after exhausting a component.
	ws.DeltaStep(3, length)
	if ws.Dist[4] != 1 || !math.IsInf(ws.Dist[0], 1) { //flatlint:ignore floatcmp unit lengths sum exactly
		t.Errorf("reuse after exhaustion: dist[4] = %g, dist[0] = %g", ws.Dist[4], ws.Dist[0])
	}
}

// TestDeltaStepAllZeroLengths covers the degenerate single-bucket case:
// every edge at length zero means every reachable node is at distance 0 and
// the (dist, id) scan decides the whole tree.
func TestDeltaStepAllZeroLengths(t *testing.T) {
	rng := NewRNG(11)
	g, _ := randomMultigraph(rng)
	length := make([]float64, g.M())
	heap := g.NewWorkspace()
	bucket := g.NewWorkspace()
	heap.Dijkstra(0, length)
	bucket.DeltaStep(0, length)
	for v := 0; v < g.N(); v++ {
		if heap.Dist[v] != bucket.Dist[v] || heap.Prev[v] != bucket.Prev[v] { //flatlint:ignore floatcmp the kernels must agree bit for bit
			t.Fatalf("all-zero lengths: kernels diverge at node %d: prev %d vs %d",
				v, heap.Prev[v], bucket.Prev[v])
		}
		if bucket.Dist[v] != 0 { //flatlint:ignore floatcmp zero-length edges sum exactly
			t.Fatalf("dist[%d] = %g, want 0 on a connected zero-length graph", v, bucket.Dist[v])
		}
	}
}
