package graph

import (
	"testing"
)

// TestAllPairsBFSMatchesSequential checks the fan-out against plain BFS on
// a random regular graph, for several worker counts including the
// sequential one.
func TestAllPairsBFSMatchesSequential(t *testing.T) {
	degrees := make([]int, 60)
	for i := range degrees {
		degrees[i] = 4
	}
	g, err := BuildConnected(degrees, NewRNG(5))
	if err != nil {
		t.Fatal(err)
	}
	sources := make([]int, g.N())
	for i := range sources {
		sources[i] = i
	}
	want := make([][]int32, len(sources))
	for i, s := range sources {
		want[i] = g.BFS(s)
	}
	for _, workers := range []int{1, 2, 7, 64} {
		got, err := g.AllPairsBFS(sources, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range want {
			for v := range want[i] {
				if got[i][v] != want[i][v] {
					t.Fatalf("workers=%d: dist[%d][%d] = %d, want %d",
						workers, i, v, got[i][v], want[i][v])
				}
			}
		}
	}
}

func TestAllPairsBFSRejectsBadSource(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1)
	for _, src := range []int{-1, 4} {
		if _, err := g.AllPairsBFS([]int{0, src}, 2); err == nil {
			t.Errorf("source %d: expected range error", src)
		}
	}
}

func TestAllPairsBFSEmptySources(t *testing.T) {
	g := New(3)
	rows, err := g.AllPairsBFS(nil, 4)
	if err != nil || len(rows) != 0 {
		t.Errorf("rows=%v err=%v", rows, err)
	}
}
