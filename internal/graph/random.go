package graph

import "fmt"

// RandomDegree builds a simple (no self loops, no parallel edges) random
// graph on len(degrees) nodes where node v receives at most degrees[v]
// incident edges, leaving as few ports unused as possible. This is the
// Jellyfish construction [Singla et al., NSDI'12]: repeatedly join random
// non-adjacent node pairs with free ports; when the process gets stuck with
// free ports remaining, break an existing edge (u,w) and reconnect through a
// node x that still has two or more free ports (x-u, x-w), which strictly
// consumes free ports while preserving degrees elsewhere.
//
// The result is connected with overwhelming probability for the degree
// sequences used in data-center topologies; callers that require
// connectivity should check Connected() and retry with a different seed
// (BuildConnected does this).
func RandomDegree(degrees []int, rng *RNG) (*Graph, error) {
	n := len(degrees)
	g := New(n)
	free := make([]int, n)
	total := 0
	for v, d := range degrees {
		if d < 0 {
			return nil, fmt.Errorf("graph: negative degree %d at node %d", d, v)
		}
		free[v] = d
		total += d
	}
	// Active list of nodes with free ports.
	active := make([]int, 0, n)
	for v := 0; v < n; v++ {
		if free[v] > 0 {
			active = append(active, v)
		}
	}
	removeInactive := func() {
		w := 0
		for _, v := range active {
			if free[v] > 0 {
				active[w] = v
				w++
			}
		}
		active = active[:w]
	}

	stuck := 0
	for len(active) >= 2 || (len(active) == 1 && free[active[0]] >= 2) {
		// Try random pairs a bounded number of times before declaring the
		// phase stuck.
		paired := false
		for try := 0; try < 32 && len(active) >= 2; try++ {
			i := rng.Intn(len(active))
			j := rng.Intn(len(active))
			if i == j {
				continue
			}
			a, b := active[i], active[j]
			if free[a] == 0 || free[b] == 0 {
				removeInactive()
				continue
			}
			if g.HasEdge(a, b) {
				continue
			}
			g.AddEdge(a, b)
			free[a]--
			free[b]--
			paired = true
			break
		}
		if paired {
			stuck = 0
			removeInactive()
			continue
		}
		// Stuck: every remaining free-port pair is already adjacent (or a
		// single node remains). Do a Jellyfish edge swap: pick x with
		// free[x] >= 2, a random existing edge (u,w) with u,w not adjacent
		// to x, replace it with (x,u) and (x,w).
		removeInactive()
		if len(active) == 0 {
			break
		}
		x := -1
		for _, v := range active {
			if free[v] >= 2 {
				x = v
				break
			}
		}
		if g.M() == 0 {
			break
		}
		swapped := false
		if x >= 0 {
			// Swap type 1: x has two free ports; splice it into a random
			// existing edge (u,w) not touching x.
			for try := 0; try < 256; try++ {
				e := g.Edge(rng.Intn(g.M()))
				u, w := int(e.A), int(e.B)
				if u == x || w == x || g.HasEdge(x, u) || g.HasEdge(x, w) {
					continue
				}
				g.removeEdgeBetween(u, w)
				g.AddEdge(x, u)
				g.AddEdge(x, w)
				free[x] -= 2
				swapped = true
				break
			}
		} else if len(active) >= 2 {
			// Swap type 2: the remaining free ports sit one-per-node on
			// mutually adjacent nodes; break an edge (u,w) disjoint from
			// two of them (x, y) and reconnect x-u, y-w.
			y := -1
			x = active[0]
			for _, v := range active[1:] {
				if v != x {
					y = v
					break
				}
			}
			if y >= 0 {
				for try := 0; try < 256 && !swapped; try++ {
					e := g.Edge(rng.Intn(g.M()))
					for _, or := range [2][2]int{{int(e.A), int(e.B)}, {int(e.B), int(e.A)}} {
						u, w := or[0], or[1]
						if u == x || u == y || w == x || w == y ||
							g.HasEdge(x, u) || g.HasEdge(y, w) {
							continue
						}
						g.removeEdgeBetween(u, w)
						g.AddEdge(x, u)
						g.AddEdge(y, w)
						free[x]--
						free[y]--
						swapped = true
						break
					}
				}
			}
		}
		if !swapped {
			stuck++
			if stuck > 8 {
				break // give up; leftover free ports stay unused
			}
			continue
		}
		stuck = 0
		removeInactive()
	}
	g.SortAdjacency()
	return g, nil
}

// BuildConnected calls RandomDegree with successive seeds derived from rng
// until the result is connected, trying at most 32 times.
func BuildConnected(degrees []int, rng *RNG) (*Graph, error) {
	for try := 0; try < 32; try++ {
		g, err := RandomDegree(degrees, NewRNG(rng.Uint64()))
		if err != nil {
			return nil, err
		}
		if g.Connected() {
			return g, nil
		}
	}
	return nil, fmt.Errorf("graph: could not build a connected random graph in 32 attempts")
}

// removeEdgeBetween deletes one edge between u and w. Edge indices of other
// edges are preserved by swapping the last edge into the vacated slot, so
// callers must not hold edge indices across a removal.
func (g *Graph) removeEdgeBetween(u, w int) {
	var id int32 = -1
	for _, h := range g.adj[u] {
		if h.Peer == int32(w) {
			id = h.Edge
			break
		}
	}
	if id < 0 {
		//flatlint:ignore nopanic internal invariant: callers pass endpoints read from the adjacency lists
		panic(fmt.Sprintf("graph: removeEdgeBetween(%d,%d): no such edge", u, w))
	}
	g.removeEdgeAt(id)
}

// removeEdgeAt deletes the edge at index id. Edge indices of other edges
// are preserved by swapping the last edge into the vacated slot, so callers
// must not hold edge indices across a removal.
func (g *Graph) removeEdgeAt(id int32) {
	e := g.edges[id]
	g.dropHalf(int(e.A), id)
	g.dropHalf(int(e.B), id)
	last := int32(len(g.edges) - 1)
	if id != last {
		moved := g.edges[last]
		g.edges[id] = moved
		g.retargetHalf(int(moved.A), last, id)
		g.retargetHalf(int(moved.B), last, id)
	}
	g.edges = g.edges[:last]
}

func (g *Graph) dropHalf(v int, edge int32) {
	l := g.adj[v]
	for i, h := range l {
		if h.Edge == edge {
			l[i] = l[len(l)-1]
			g.adj[v] = l[:len(l)-1]
			return
		}
	}
	//flatlint:ignore nopanic internal invariant: the half-edge was just located via the edge table
	panic("graph: dropHalf: edge not found")
}

func (g *Graph) retargetHalf(v int, from, to int32) {
	l := g.adj[v]
	for i, h := range l {
		if h.Edge == from {
			l[i].Edge = to
			return
		}
	}
	//flatlint:ignore nopanic internal invariant: the half-edge was just located via the edge table
	panic("graph: retargetHalf: edge not found")
}
