package graph

import (
	"fmt"
	"sync"

	"flattree/internal/parallel"
)

// AllPairsBFS runs a breadth-first search from every source node across
// parallel.Workers(workers) goroutines and returns the hop-distance vectors
// in source order: result[i][v] is the distance from sources[i] to node v,
// or -1 if unreachable. BFS only reads the adjacency structure, so any
// number of searches may run concurrently; the index-ordered merge makes
// the result identical for every worker count.
//
// This is the hot loop behind every average-path-length table (one BFS per
// server-hosting switch, O(S·(N+M)) total); at the paper's k=32 scale the
// sweep dominates Figure 5/6 generation.
func (g *Graph) AllPairsBFS(sources []int, workers int) ([][]int32, error) {
	n := g.N()
	for _, s := range sources {
		if s < 0 || s >= n {
			return nil, fmt.Errorf("graph: BFS source %d out of range [0,%d)", s, n)
		}
	}
	// The distance vectors are the result and must be allocated, but the
	// BFS queue is pure scratch: a pool bounds queue allocations by the
	// worker count instead of the source count.
	queues := sync.Pool{New: func() any {
		q := make([]int32, n)
		return &q
	}}
	return parallel.Map(len(sources), workers, func(i int) ([]int32, error) {
		dist := make([]int32, n)
		q := queues.Get().(*[]int32)
		g.BFSInto(sources[i], dist, *q)
		queues.Put(q)
		return dist, nil
	})
}
