package graph

import "fmt"

// AugmentResult reports what AugmentRandom did to the graph.
type AugmentResult struct {
	// Added holds the edges created by the augmentation. It is recomputed
	// from the final edge table in index order, so it is deterministic for
	// a fixed (graph, free, rng) input.
	Added []Edge
	// Broken holds the indices — in the caller's pre-augmentation edge
	// numbering — of original edges that swap moves removed. Surviving
	// original edges may occupy different indices afterwards; only the
	// pre-augmentation numbering is stable, which is also what the
	// canBreak callback receives.
	Broken []int
	// Leftover is the number of free ports the augmentation could not
	// consume (odd port counts, or swap moves exhausted).
	Leftover int
}

// AugmentRandom wires the free ports of an existing graph together using
// the same randomized procedure as RandomDegree: join random non-adjacent
// port-owning pairs, and when stuck, break an existing edge and splice a
// free-port node into it (the Jellyfish edge swap). free[v] is the number
// of additional edges node v may receive; g is modified in place, so pass
// a Clone to keep the original.
//
// canBreak, if non-nil, restricts which pre-existing edges swap moves may
// remove; it is called with an edge index in the pre-augmentation
// numbering. Edges created by the augmentation itself are always fair game
// for later swaps. The procedure is deterministic for a fixed rng and
// never adds self loops or parallel edges.
//
// This is the self-recovery primitive from §5 of the flat-tree paper: the
// ports freed by failed peers are rewired into the surviving fabric the
// same way the random (Jellyfish) topology was built in the first place.
func AugmentRandom(g *Graph, free []int, canBreak func(edgeID int) bool, rng *RNG) (AugmentResult, error) {
	var res AugmentResult
	n := g.N()
	if len(free) != n {
		return res, fmt.Errorf("graph: AugmentRandom: len(free)=%d, graph has %d nodes", len(free), n)
	}
	for v, f := range free {
		if f < 0 {
			return res, fmt.Errorf("graph: AugmentRandom: negative free port count %d at node %d", f, v)
		}
	}
	fr := append([]int(nil), free...)

	// orig maps the current edge index to the caller's pre-augmentation
	// edge index, or -1 for edges we added. removeEdgeAt swaps the last
	// edge into the vacated slot, so the mapping mirrors that move.
	orig := make([]int32, g.M())
	for i := range orig {
		orig[i] = int32(i)
	}
	addEdge := func(a, b int) {
		g.AddEdge(a, b)
		orig = append(orig, -1)
	}
	removeAt := func(idx int) {
		if o := orig[idx]; o >= 0 {
			res.Broken = append(res.Broken, int(o))
		}
		last := len(orig) - 1
		orig[idx] = orig[last]
		orig = orig[:last]
		g.removeEdgeAt(int32(idx))
	}
	breakable := func(idx int) bool {
		o := orig[idx]
		return o < 0 || canBreak == nil || canBreak(int(o))
	}

	active := make([]int, 0, n)
	for v := 0; v < n; v++ {
		if fr[v] > 0 {
			active = append(active, v)
		}
	}
	removeInactive := func() {
		w := 0
		for _, v := range active {
			if fr[v] > 0 {
				active[w] = v
				w++
			}
		}
		active = active[:w]
	}

	stuck := 0
	for len(active) >= 2 || (len(active) == 1 && fr[active[0]] >= 2) {
		paired := false
		for try := 0; try < 32 && len(active) >= 2; try++ {
			i := rng.Intn(len(active))
			j := rng.Intn(len(active))
			if i == j {
				continue
			}
			a, b := active[i], active[j]
			if fr[a] == 0 || fr[b] == 0 {
				removeInactive()
				continue
			}
			if g.HasEdge(a, b) {
				continue
			}
			addEdge(a, b)
			fr[a]--
			fr[b]--
			paired = true
			break
		}
		if paired {
			stuck = 0
			removeInactive()
			continue
		}
		removeInactive()
		if len(active) == 0 {
			break
		}
		x := -1
		for _, v := range active {
			if fr[v] >= 2 {
				x = v
				break
			}
		}
		if g.M() == 0 {
			break
		}
		swapped := false
		if x >= 0 {
			// Swap type 1: x has two free ports; splice it into a random
			// breakable edge (u,w) not touching x.
			for try := 0; try < 256; try++ {
				idx := rng.Intn(g.M())
				e := g.Edge(idx)
				u, w := int(e.A), int(e.B)
				if u == x || w == x || g.HasEdge(x, u) || g.HasEdge(x, w) || !breakable(idx) {
					continue
				}
				removeAt(idx)
				addEdge(x, u)
				addEdge(x, w)
				fr[x] -= 2
				swapped = true
				break
			}
		} else if len(active) >= 2 {
			// Swap type 2: the remaining free ports sit one-per-node on
			// mutually adjacent nodes; break a breakable edge (u,w)
			// disjoint from two of them (x, y) and reconnect x-u, y-w.
			y := -1
			x = active[0]
			for _, v := range active[1:] {
				if v != x {
					y = v
					break
				}
			}
			if y >= 0 {
				for try := 0; try < 256 && !swapped; try++ {
					idx := rng.Intn(g.M())
					e := g.Edge(idx)
					if !breakable(idx) {
						continue
					}
					for _, or := range [2][2]int{{int(e.A), int(e.B)}, {int(e.B), int(e.A)}} {
						u, w := or[0], or[1]
						if u == x || u == y || w == x || w == y ||
							g.HasEdge(x, u) || g.HasEdge(y, w) {
							continue
						}
						removeAt(idx)
						addEdge(x, u)
						addEdge(y, w)
						fr[x]--
						fr[y]--
						swapped = true
						break
					}
				}
			}
		}
		if !swapped {
			stuck++
			if stuck > 8 {
				break // give up; leftover free ports stay unused
			}
			continue
		}
		stuck = 0
		removeInactive()
	}

	for _, f := range fr {
		res.Leftover += f
	}
	for idx, o := range orig {
		if o < 0 {
			res.Added = append(res.Added, g.Edge(idx))
		}
	}
	g.SortAdjacency()
	return res, nil
}
