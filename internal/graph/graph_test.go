package graph

import (
	"testing"
	"testing/quick"
)

func ring(n int) *Graph {
	g := New(n)
	for i := 0; i < n; i++ {
		g.AddEdge(i, (i+1)%n)
	}
	return g
}

func TestBFSRing(t *testing.T) {
	g := ring(10)
	dist := g.BFS(0)
	want := []int32{0, 1, 2, 3, 4, 5, 4, 3, 2, 1}
	for i, d := range dist {
		if d != want[i] {
			t.Errorf("dist[%d] = %d, want %d", i, d, want[i])
		}
	}
}

func TestBFSUnreachable(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1)
	// 2 and 3 isolated.
	dist := g.BFS(0)
	if dist[1] != 1 || dist[2] != -1 || dist[3] != -1 {
		t.Errorf("dist = %v", dist)
	}
}

func TestConnected(t *testing.T) {
	g := ring(6)
	if !g.Connected() {
		t.Error("ring should be connected")
	}
	h := New(5)
	h.AddEdge(0, 1)
	h.AddEdge(2, 3)
	if h.Connected() {
		t.Error("two components should not be connected")
	}
	// Isolated nodes are ignored.
	i := New(3)
	i.AddEdge(0, 1)
	if !i.Connected() {
		t.Error("isolated node must not break connectivity")
	}
	if !New(0).Connected() || !New(3).Connected() {
		t.Error("edgeless graphs are trivially connected")
	}
}

func TestDiameter(t *testing.T) {
	if d := ring(10).Diameter(); d != 5 {
		t.Errorf("ring(10) diameter = %d, want 5", d)
	}
	path := New(4)
	path.AddEdge(0, 1)
	path.AddEdge(1, 2)
	path.AddEdge(2, 3)
	if d := path.Diameter(); d != 3 {
		t.Errorf("path diameter = %d, want 3", d)
	}
}

func TestSelfLoopPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("self loop should panic")
		}
	}()
	New(2).AddEdge(1, 1)
}

func TestHasEdgeAndParallel(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1)
	g.AddEdge(0, 1) // parallel edge allowed
	if g.M() != 2 {
		t.Fatalf("M = %d, want 2", g.M())
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) || g.HasEdge(0, 2) {
		t.Error("HasEdge wrong")
	}
	if g.Degree(0) != 2 || g.Degree(2) != 0 {
		t.Error("Degree wrong with parallel edges")
	}
}

func TestRemoveEdgeBetween(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	g.removeEdgeBetween(1, 2)
	if g.M() != 2 {
		t.Fatalf("M = %d, want 2", g.M())
	}
	if g.HasEdge(1, 2) {
		t.Error("edge 1-2 still present")
	}
	// Remaining edges intact and consistent with adjacency.
	for _, e := range g.Edges() {
		found := false
		for _, h := range g.Neighbors(int(e.A)) {
			if h.Peer == e.B {
				found = true
			}
		}
		if !found {
			t.Errorf("edge %v missing from adjacency", e)
		}
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRNG(43)
	same := 0
	a = NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("different seeds matched %d/100 draws", same)
	}
}

func TestRNGIntnBounds(t *testing.T) {
	r := NewRNG(7)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn(10) = %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Errorf("Intn(10) hit only %d values", len(seen))
	}
}

func TestPermIsPermutation(t *testing.T) {
	err := quick.Check(func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%64) + 1
		p := NewRNG(seed).Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

// TestRandomDegreeProperties: for regular degree sequences the builder must
// return a simple graph respecting every degree bound, with at most a
// handful of unused ports.
func TestRandomDegreeProperties(t *testing.T) {
	err := quick.Check(func(seed uint64, nRaw, dRaw uint8) bool {
		n := int(nRaw%40) + 8
		d := int(dRaw%6) + 3
		if d >= n {
			d = n - 1
		}
		degrees := make([]int, n)
		for i := range degrees {
			degrees[i] = d
		}
		g, err := RandomDegree(degrees, NewRNG(seed))
		if err != nil {
			return false
		}
		// Simple graph: no self loops (AddEdge panics on those), no
		// parallel edges.
		seen := make(map[[2]int32]bool)
		for _, e := range g.Edges() {
			a, b := e.A, e.B
			if a > b {
				a, b = b, a
			}
			if seen[[2]int32{a, b}] {
				return false
			}
			seen[[2]int32{a, b}] = true
		}
		// Degree bounds respected, few wasted ports.
		wasted := 0
		for v := 0; v < n; v++ {
			if g.Degree(v) > d {
				return false
			}
			wasted += d - g.Degree(v)
		}
		return wasted <= 4
	}, &quick.Config{MaxCount: 60})
	if err != nil {
		t.Error(err)
	}
}

func TestBuildConnected(t *testing.T) {
	degrees := make([]int, 30)
	for i := range degrees {
		degrees[i] = 4
	}
	g, err := BuildConnected(degrees, NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	if !g.Connected() {
		t.Error("BuildConnected returned a disconnected graph")
	}
}

func TestRandomDegreeZeroAndNegative(t *testing.T) {
	if _, err := RandomDegree([]int{2, -1}, NewRNG(1)); err == nil {
		t.Error("negative degree should error")
	}
	g, err := RandomDegree([]int{0, 0, 0}, NewRNG(1))
	if err != nil || g.M() != 0 {
		t.Errorf("all-zero degrees: g.M()=%d err=%v", g.M(), err)
	}
}

func TestDegreeHistogram(t *testing.T) {
	g := ring(5)
	h := g.DegreeHistogram()
	if h[2] != 5 || len(h) != 1 {
		t.Errorf("histogram = %v", h)
	}
}

func TestClone(t *testing.T) {
	g := ring(4)
	c := g.Clone()
	c.AddEdge(0, 2)
	if g.M() != 4 || c.M() != 5 {
		t.Errorf("clone not independent: %d, %d", g.M(), c.M())
	}
}
