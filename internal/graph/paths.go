package graph

import (
	"math"
)

// Path is a node sequence from source to destination (inclusive).
type Path struct {
	Nodes []int32
	Cost  float64
}

// Len returns the hop count of the path (edges, not nodes).
func (p Path) Len() int { return len(p.Nodes) - 1 }

// Dijkstra computes shortest distances from src under per-edge lengths
// length[e] (which must be non-negative). It fills dist (len N, +Inf when
// unreachable) and prev (len N, -1 at roots/unreachable; otherwise the edge
// index used to reach the node). Passing nil for prev skips predecessor
// tracking.
//
// This is the convenience entry point: it allocates a fresh Workspace per
// call. Hot loops (the FPTAS oracle, Yen's spur solves) should hold a
// Workspace and call its methods instead, which is allocation-free.
func (g *Graph) Dijkstra(src int, length []float64, dist []float64, prev []int32) {
	w := g.NewWorkspace()
	if prev == nil {
		prev = w.Prev
	}
	w.run(int32(src), length, dist, prev, nil, nil, nil)
}

// ShortestPath returns one shortest path from src to dst under the given
// edge lengths, or ok=false if dst is unreachable.
func (g *Graph) ShortestPath(src, dst int, length []float64) (Path, bool) {
	return g.NewWorkspace().ShortestPath(src, dst, length)
}

func (g *Graph) extractPath(src, dst int, cost float64, prev []int32) Path {
	hops := 0
	for v := int32(dst); v != int32(src); hops++ {
		v = g.edges[prev[v]].Other(v)
	}
	nodes := make([]int32, hops+1)
	nodes[0] = int32(src)
	for v, i := int32(dst), hops; v != int32(src); i-- {
		nodes[i] = v
		v = g.edges[prev[v]].Other(v)
	}
	return Path{Nodes: nodes, Cost: cost}
}

// KShortestPaths returns up to k loopless shortest paths from src to dst in
// non-decreasing cost order using Yen's algorithm over Dijkstra. Parallel
// edges are handled by banning edge indices rather than node pairs.
//
// This is the convenience entry point; repeated pair queries should reuse a
// KSPSolver.
func (g *Graph) KShortestPaths(src, dst, k int, length []float64) []Path {
	return g.NewKSPSolver().KShortestPaths(src, dst, k, length)
}

// candidate is a Yen spur path awaiting selection. seq is the insertion
// counter: among equal costs the earliest-generated candidate wins, which
// both matches the pre-heap linear-scan behaviour and keeps the output a
// deterministic function of the graph.
type candidate struct {
	cost  float64
	seq   int32
	nodes []int32
}

// KSPSolver computes k-shortest paths with reusable scratch: one Dijkstra
// Workspace, dense ban vectors for Yen's spur machinery, a candidate
// min-heap (replacing an O(k) linear scan per selection), and a
// path-signature set (replacing O(paths²) sequence comparisons). It is not
// safe for concurrent use; allocate one per goroutine.
type KSPSolver struct {
	g          *Graph
	ws         *Workspace
	bannedEdge []bool  // len M, Yen spur edge bans
	banList    []int32 // edges currently banned, for O(bans) reset
	bannedNode []bool  // len N, Yen root-node bans
	cand       []candidate
	seen       map[string]bool
	sigBuf     []byte
	seq        int32
}

// NewKSPSolver returns a solver sized for g.
func (g *Graph) NewKSPSolver() *KSPSolver {
	return &KSPSolver{
		g:          g,
		ws:         g.NewWorkspace(),
		bannedEdge: make([]bool, g.M()),
		bannedNode: make([]bool, g.N()),
		seen:       make(map[string]bool),
	}
}

// sigOf renders a node sequence into the solver's signature buffer. The
// map operations below convert it with string(...) in the index expression,
// which Go performs without allocating on lookup.
func (s *KSPSolver) sigOf(nodes []int32) []byte {
	buf := s.sigBuf[:0]
	for _, v := range nodes {
		buf = append(buf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
	}
	s.sigBuf = buf
	return buf
}

// KShortestPaths returns up to k loopless shortest paths from src to dst
// in non-decreasing cost order.
func (s *KSPSolver) KShortestPaths(src, dst, k int, length []float64) []Path {
	if k <= 0 {
		return nil
	}
	first, ok := s.ws.ShortestPath(src, dst, length)
	if !ok {
		return nil
	}
	g := s.g
	result := []Path{first}
	s.cand = s.cand[:0]
	s.seq = 0
	clear(s.seen)
	s.seen[string(s.sigOf(first.Nodes))] = true

	for len(result) < k {
		last := result[len(result)-1]
		// Cost of the first i edges of last, via the cheapest parallel edge
		// per hop — computed once per outer iteration instead of per spur.
		prefix := make([]float64, len(last.Nodes))
		for i := 1; i < len(last.Nodes); i++ {
			prefix[i] = prefix[i-1] + g.minEdgeLen(last.Nodes[i-1], last.Nodes[i], length)
		}
		// Each node on the previous path except the terminal is a potential
		// spur node.
		for spurIdx := 0; spurIdx < len(last.Nodes)-1; spurIdx++ {
			spur := last.Nodes[spurIdx]
			rootNodes := last.Nodes[:spurIdx+1]
			// Ban edges that would recreate any already-found path sharing
			// this root.
			for _, p := range result {
				if len(p.Nodes) > spurIdx+1 && sameNodes(p.Nodes[:spurIdx+1], rootNodes) {
					a, b := p.Nodes[spurIdx], p.Nodes[spurIdx+1]
					for _, h := range g.adj[a] {
						if h.Peer == b && !s.bannedEdge[h.Edge] {
							s.bannedEdge[h.Edge] = true
							s.banList = append(s.banList, h.Edge)
						}
					}
				}
			}
			// Ban root nodes (except the spur) to keep paths loopless.
			for _, v := range rootNodes[:len(rootNodes)-1] {
				s.bannedNode[v] = true
			}
			s.ws.DijkstraBanned(int(spur), length, s.bannedEdge, s.bannedNode)
			if !math.IsInf(s.ws.Dist[dst], 1) {
				spurPath := g.extractPath(int(spur), dst, s.ws.Dist[dst], s.ws.Prev)
				total := make([]int32, 0, spurIdx+len(spurPath.Nodes))
				total = append(total, rootNodes...)
				total = append(total, spurPath.Nodes[1:]...)
				if sig := s.sigOf(total); !s.seen[string(sig)] {
					s.seen[string(sig)] = true
					s.pushCand(candidate{cost: spurPath.Cost + prefix[spurIdx], seq: s.seq, nodes: total})
					s.seq++
				}
			}
			for _, v := range rootNodes[:len(rootNodes)-1] {
				s.bannedNode[v] = false
			}
			for _, e := range s.banList {
				s.bannedEdge[e] = false
			}
			s.banList = s.banList[:0]
		}
		if len(s.cand) == 0 {
			break
		}
		best := s.popCand()
		result = append(result, Path{Nodes: best.nodes, Cost: best.cost})
	}
	return result
}

// candLess orders candidates by (cost, insertion order).
func candLess(a, b candidate) bool {
	if a.cost != b.cost { //flatlint:ignore floatcmp exact equality picks the insertion-order tie-break branch; either branch is correct
		return a.cost < b.cost
	}
	return a.seq < b.seq
}

func (s *KSPSolver) pushCand(c candidate) {
	s.cand = append(s.cand, c)
	i := len(s.cand) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !candLess(s.cand[i], s.cand[parent]) {
			break
		}
		s.cand[i], s.cand[parent] = s.cand[parent], s.cand[i]
		i = parent
	}
}

func (s *KSPSolver) popCand() candidate {
	top := s.cand[0]
	n := len(s.cand) - 1
	s.cand[0] = s.cand[n]
	s.cand[n] = candidate{} // drop the nodes reference
	s.cand = s.cand[:n]
	i := 0
	for {
		c := 2*i + 1
		if c >= n {
			break
		}
		if c+1 < n && candLess(s.cand[c+1], s.cand[c]) {
			c++
		}
		if !candLess(s.cand[c], s.cand[i]) {
			break
		}
		s.cand[i], s.cand[c] = s.cand[c], s.cand[i]
		i = c
	}
	return top
}

func (g *Graph) minEdgeLen(a, b int32, length []float64) float64 {
	best := math.Inf(1)
	for _, h := range g.adj[a] {
		if h.Peer == b && length[h.Edge] < best {
			best = length[h.Edge]
		}
	}
	return best
}

func sameNodes(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// UnitLengths returns a length vector assigning 1.0 to every edge, for
// hop-count shortest paths through the weighted machinery.
func (g *Graph) UnitLengths() []float64 {
	l := make([]float64, g.M())
	for i := range l {
		l[i] = 1
	}
	return l
}
