package graph

import (
	"container/heap"
	"math"
)

// Path is a node sequence from source to destination (inclusive).
type Path struct {
	Nodes []int32
	Cost  float64
}

// Len returns the hop count of the path (edges, not nodes).
func (p Path) Len() int { return len(p.Nodes) - 1 }

type pqItem struct {
	node int32
	dist float64
}

type priorityQueue []pqItem

func (q priorityQueue) Len() int            { return len(q) }
func (q priorityQueue) Less(i, j int) bool  { return q[i].dist < q[j].dist }
func (q priorityQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *priorityQueue) Push(x interface{}) { *q = append(*q, x.(pqItem)) }
func (q *priorityQueue) Pop() interface{} {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

// Dijkstra computes shortest distances from src under per-edge lengths
// length[e] (which must be non-negative). It fills dist (len N, +Inf when
// unreachable) and prev (len N, -1 at roots/unreachable; otherwise the edge
// index used to reach the node). Passing nil for prev skips predecessor
// tracking.
//
// banned, if non-nil, marks edges (by index) that must not be used, and
// bannedNode marks nodes that must not be traversed; both are Yen's spur
// machinery and may be nil for plain shortest paths.
func (g *Graph) Dijkstra(src int, length []float64, dist []float64, prev []int32, banned map[int32]bool, bannedNode []bool) {
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	if prev != nil {
		for i := range prev {
			prev[i] = -1
		}
	}
	if bannedNode != nil && bannedNode[src] {
		return
	}
	dist[src] = 0
	q := priorityQueue{{int32(src), 0}}
	for len(q) > 0 {
		it := heap.Pop(&q).(pqItem)
		v := it.node
		if it.dist > dist[v] {
			continue
		}
		for _, h := range g.adj[v] {
			if banned != nil && banned[h.Edge] {
				continue
			}
			if bannedNode != nil && bannedNode[h.Peer] {
				continue
			}
			nd := it.dist + length[h.Edge]
			if nd < dist[h.Peer] {
				dist[h.Peer] = nd
				if prev != nil {
					prev[h.Peer] = h.Edge
				}
				heap.Push(&q, pqItem{h.Peer, nd})
			}
		}
	}
}

// ShortestPath returns one shortest path from src to dst under the given
// edge lengths, or ok=false if dst is unreachable.
func (g *Graph) ShortestPath(src, dst int, length []float64) (Path, bool) {
	dist := make([]float64, g.N())
	prev := make([]int32, g.N())
	g.Dijkstra(src, length, dist, prev, nil, nil)
	if math.IsInf(dist[dst], 1) {
		return Path{}, false
	}
	return g.extractPath(src, dst, dist[dst], prev), true
}

func (g *Graph) extractPath(src, dst int, cost float64, prev []int32) Path {
	var rev []int32
	v := int32(dst)
	for v != int32(src) {
		rev = append(rev, v)
		e := g.edges[prev[v]]
		v = e.Other(v)
	}
	nodes := make([]int32, 0, len(rev)+1)
	nodes = append(nodes, int32(src))
	for i := len(rev) - 1; i >= 0; i-- {
		nodes = append(nodes, rev[i])
	}
	return Path{Nodes: nodes, Cost: cost}
}

// KShortestPaths returns up to k loopless shortest paths from src to dst in
// non-decreasing cost order using Yen's algorithm over Dijkstra. Parallel
// edges are handled by banning edge indices rather than node pairs.
func (g *Graph) KShortestPaths(src, dst, k int, length []float64) []Path {
	if k <= 0 {
		return nil
	}
	first, ok := g.ShortestPath(src, dst, length)
	if !ok {
		return nil
	}
	result := []Path{first}
	var candidates []Path
	dist := make([]float64, g.N())
	prev := make([]int32, g.N())
	bannedNode := make([]bool, g.N())

	for len(result) < k {
		last := result[len(result)-1]
		// Each node on the previous path except the terminal is a potential
		// spur node.
		for spurIdx := 0; spurIdx < len(last.Nodes)-1; spurIdx++ {
			spur := last.Nodes[spurIdx]
			rootNodes := last.Nodes[:spurIdx+1]
			banned := make(map[int32]bool)
			// Ban edges that would recreate any already-found path sharing
			// this root.
			for _, p := range result {
				if len(p.Nodes) > spurIdx+1 && sameNodes(p.Nodes[:spurIdx+1], rootNodes) {
					a, b := p.Nodes[spurIdx], p.Nodes[spurIdx+1]
					for _, h := range g.adj[a] {
						if h.Peer == b {
							banned[h.Edge] = true
						}
					}
				}
			}
			// Ban root nodes (except the spur) to keep paths loopless.
			for _, v := range rootNodes[:len(rootNodes)-1] {
				bannedNode[v] = true
			}
			g.Dijkstra(int(spur), length, dist, prev, banned, bannedNode)
			if !math.IsInf(dist[dst], 1) {
				spurPath := g.extractPath(int(spur), dst, dist[dst], prev)
				total := make([]int32, 0, spurIdx+len(spurPath.Nodes))
				total = append(total, rootNodes...)
				total = append(total, spurPath.Nodes[1:]...)
				cost := spurPath.Cost
				for i := 0; i < spurIdx; i++ {
					cost += g.minEdgeLen(last.Nodes[i], last.Nodes[i+1], length)
				}
				cand := Path{Nodes: total, Cost: cost}
				if !containsPath(candidates, cand) && !containsPath(result, cand) {
					candidates = append(candidates, cand)
				}
			}
			for _, v := range rootNodes[:len(rootNodes)-1] {
				bannedNode[v] = false
			}
		}
		if len(candidates) == 0 {
			break
		}
		best := 0
		for i := 1; i < len(candidates); i++ {
			if candidates[i].Cost < candidates[best].Cost {
				best = i
			}
		}
		result = append(result, candidates[best])
		candidates = append(candidates[:best], candidates[best+1:]...)
	}
	return result
}

func (g *Graph) minEdgeLen(a, b int32, length []float64) float64 {
	best := math.Inf(1)
	for _, h := range g.adj[a] {
		if h.Peer == b && length[h.Edge] < best {
			best = length[h.Edge]
		}
	}
	return best
}

func sameNodes(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func containsPath(list []Path, p Path) bool {
	for _, q := range list {
		if sameNodes(q.Nodes, p.Nodes) {
			return true
		}
	}
	return false
}

// UnitLengths returns a length vector assigning 1.0 to every edge, for
// hop-count shortest paths through the weighted machinery.
func (g *Graph) UnitLengths() []float64 {
	l := make([]float64, g.M())
	for i := range l {
		l[i] = 1
	}
	return l
}
