package graph

import (
	"math"
	"slices"
)

// Delta-stepping SSSP: a bucket-queue kernel that replaces the 4-ary heap's
// O(log n) pops and decrease-key sift-ups with O(1) bucket moves. Nodes are
// binned by floor(dist/Δ) into a circular array of buckets and the frontier
// advances bucket by bucket.
//
// Determinism is the load-bearing property. Δ is fixed at the minimum edge
// length, which freezes the active bucket: a relaxation out of a node in
// bucket cur lands at nd = dv + l ≥ cur·Δ + Δ, i.e. in a strictly later
// bucket, so by the time a bucket becomes current its membership and
// distances are final. Sorting it once by (dist, node-id) and settling in
// that order therefore reproduces the heap kernel's (key, id) pop order
// exactly — equal distances always share a bucket (same floor), every
// earlier bucket is empty, and every later bucket holds strictly larger
// distances. Both kernels then relax each adjacency list in the same order
// under the same `nd < dist` predicate, so the full sequence of Dist/Prev
// writes — and every λ table the FPTAS derives from them — is bit-identical
// to Dijkstra/DijkstraTargets. The bucket width is purely a performance
// knob, never a correctness one.
//
// The frozen-bucket argument needs strictly positive lengths (a zero-length
// edge re-enters the current bucket) and a bucket count within the arena
// cap (maxLen/Δ slots). Length functions outside that envelope — any zero
// length, or max/min spread beyond deltaMaxBuckets — delegate to the heap
// kernel, which is invisible to callers because the results are
// bit-identical either way. The FPTAS is the intended caller and sits well
// inside the envelope: its warm-started lengths are δ/cap_e times a ratio
// clamped into [1, ((1+ε)m)^¼] (see mcf's warm seeding), so the spread is
// small by construction, while late-phase length functions whose used edges
// have grown far above the floor fall back seamlessly.
const (
	// deltaMaxBuckets caps the circular bucket array; length spreads that
	// would need more slots than this run on the heap instead.
	deltaMaxBuckets = 1024
)

// DeltaStep computes shortest distances from src under per-edge lengths
// (which must be non-negative) into w.Dist and w.Prev, exactly like
// Dijkstra — same results bit for bit — via the bucket queue.
func (w *Workspace) DeltaStep(src int, length []float64) {
	w.runDelta(int32(src), length, nil)
}

// DeltaStepTargets is DeltaStep with DijkstraTargets' early exit: the run
// stops once every listed target has settled. Settled results, and in fact
// the entire tentative Dist/Prev state at the stop point, are bit-identical
// to DijkstraTargets' (both kernels settle nodes in the same (dist, id)
// order and relax edges in the same adjacency order).
func (w *Workspace) DeltaStepTargets(src int, length []float64, targets []int32) {
	w.runDelta(int32(src), length, targets)
}

func (w *Workspace) runDelta(src int32, length []float64, targets []int32) {
	minPos, maxLen := math.Inf(1), 0.0
	positive := true
	for _, l := range length {
		if l > maxLen {
			maxLen = l
		}
		if l > 0 {
			if l < minPos {
				minPos = l
			}
		} else {
			positive = false
		}
	}
	if !positive || maxLen > minPos*float64(deltaMaxBuckets-3) {
		// Outside the bucket envelope; same results on the heap.
		w.run(src, length, w.Dist, w.Prev, nil, nil, targets)
		return
	}
	delta := minPos // may be +Inf on an edgeless graph: one bucket, no relaxations
	// Queued distances live in [curΔ, (cur+1)Δ + maxLen), so
	// floor(maxLen/Δ)+3 circular slots always cover the live window.
	nb := int(maxLen/delta) + 3

	dist, prev := w.Dist, w.Prev
	targets, remaining := w.prepare(dist, prev, targets)
	if len(w.bnum) < len(dist) {
		w.bnum = make([]int32, len(dist))
		w.bpos = make([]int32, len(dist))
		for i := range w.bnum {
			w.bnum[i] = -1
		}
	}
	for len(w.bkt) < nb {
		w.bkt = append(w.bkt, nil)
	}

	dist[src] = 0
	w.bput(src, 0, nb)
	for queued, cur := 1, 0; queued > 0; cur++ {
		slot := cur % nb
		if len(w.bkt[slot]) == 0 {
			continue
		}
		// Settle the current bucket in (dist, id) order. Because bucketing
		// by floor(dist/Δ) is monotone in dist (float division by a positive
		// constant is monotone), every other bucket holds strictly larger
		// distances, so the bucket-local order is exactly the heap kernel's
		// global pop order. With Δ ≤ every edge length a relaxation out of
		// this bucket lands in a strictly later one in exact arithmetic, so
		// one up-front sort normally suffices; division rounding can land an
		// update back in the current bucket (dirty), in which case the
		// unsettled tail — stale order and appended nodes alike — is
		// re-sorted before the next pop.
		dirty := true
		for i := 0; i < len(w.bkt[slot]); i++ {
			if dirty {
				slices.SortFunc(w.bkt[slot][i:], func(x, y int32) int {
					if dist[x] != dist[y] { //flatlint:ignore floatcmp exact equality picks the id tie-break branch; either branch is correct
						if dist[x] < dist[y] {
							return -1
						}
						return 1
					}
					return int(x - y)
				})
				dirty = false
			}
			v := w.bkt[slot][i]
			w.bnum[v] = -1
			queued--
			if targets != nil && w.tmark[v] == w.tepoch {
				remaining--
				if remaining == 0 {
					// Early exit: empty every bucket so the workspace
					// invariant (all buckets empty, bnum = -1) survives,
					// mirroring the heap drain. The current slot still
					// holds the settled prefix (bnum already -1) and is
					// cleared first so the queued-counted sweep can stop
					// as soon as it accounts for every queued node.
					for _, u := range w.bkt[slot][i+1:] {
						w.bnum[u] = -1
						queued--
					}
					w.bkt[slot] = w.bkt[slot][:0]
					for j := 0; queued > 0 && j < nb; j++ {
						for _, u := range w.bkt[j] {
							w.bnum[u] = -1
							queued--
						}
						w.bkt[j] = w.bkt[j][:0]
					}
					return
				}
			}
			dv := dist[v]
			for _, h := range w.g.adj[v] {
				nd := dv + length[h.Edge]
				if nd < dist[h.Peer] {
					dist[h.Peer] = nd
					prev[h.Peer] = h.Edge
					// Monotone division keeps nbk ≥ cur always; nbk == cur
					// (rounding) dirties the current bucket's tail order.
					nbk := int32(nd / delta)
					if w.bnum[h.Peer] != nbk {
						if w.bnum[h.Peer] >= 0 {
							w.bremove(h.Peer, nb)
						} else {
							queued++
						}
						w.bput(h.Peer, nbk, nb)
					}
					if nbk == int32(cur) {
						dirty = true
					}
				}
			}
		}
		w.bkt[slot] = w.bkt[slot][:0]
	}
}

// bput appends v to the bucket for absolute bucket number num.
func (w *Workspace) bput(v, num int32, nb int) {
	slot := int(num) % nb
	w.bnum[v] = num
	w.bpos[v] = int32(len(w.bkt[slot]))
	w.bkt[slot] = append(w.bkt[slot], v)
}

// bremove swap-removes v from its current bucket (order within a pending
// bucket is irrelevant: it is sorted when it becomes current).
func (w *Workspace) bremove(v int32, nb int) {
	slot := int(w.bnum[v]) % nb
	b := w.bkt[slot]
	last := len(b) - 1
	if p := w.bpos[v]; int(p) != last {
		b[p] = b[last]
		w.bpos[b[p]] = p
	}
	w.bkt[slot] = b[:last]
}
