package graph

import (
	"math"
	"testing"
)

// randomMultigraph builds a connected multigraph with deliberate parallel
// edges and random lengths in [0.1, 1.1).
func randomMultigraph(rng *RNG) (*Graph, []float64) {
	n := 12 + rng.Intn(12)
	g := New(n)
	// Connected base: every node links to an earlier one.
	for i := 1; i < n; i++ {
		g.AddEdge(i, rng.Intn(i))
	}
	for j := 0; j < n; j++ {
		a, b := rng.Intn(n), rng.Intn(n)
		if a != b {
			g.AddEdge(a, b)
		}
	}
	// Duplicate a few existing edges so parallel edges are always present.
	for j := 0; j < 4; j++ {
		e := g.Edge(rng.Intn(g.M()))
		g.AddEdge(int(e.A), int(e.B))
	}
	g.SortAdjacency()
	length := make([]float64, g.M())
	for i := range length {
		length[i] = 0.1 + rng.Float64()
	}
	return g, length
}

// bellmanFord is the reference shortest-distance oracle for the
// differential test: O(N·M), no heap, trivially correct, honoring the same
// banned-edge/banned-node semantics as the workspace kernel.
func bellmanFord(g *Graph, src int, length []float64, bannedEdge, bannedNode []bool) []float64 {
	dist := make([]float64, g.N())
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	if bannedNode != nil && bannedNode[src] {
		return dist
	}
	dist[src] = 0
	for iter := 0; iter < g.N(); iter++ {
		changed := false
		for e, ed := range g.Edges() {
			if bannedEdge != nil && bannedEdge[e] {
				continue
			}
			if bannedNode != nil && (bannedNode[ed.A] || bannedNode[ed.B]) {
				continue
			}
			if d := dist[ed.A] + length[e]; d < dist[ed.B] {
				dist[ed.B] = d
				changed = true
			}
			if d := dist[ed.B] + length[e]; d < dist[ed.A] {
				dist[ed.A] = d
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return dist
}

// TestWorkspaceDijkstraMatchesBellmanFord pins the heap kernel against the
// reference oracle on random multigraphs, with and without banned edges and
// nodes, reusing one workspace across every run to catch stale-state bugs.
func TestWorkspaceDijkstraMatchesBellmanFord(t *testing.T) {
	for seed := uint64(0); seed < 40; seed++ {
		rng := NewRNG(seed)
		g, length := randomMultigraph(rng)
		n := g.N()
		ws := g.NewWorkspace()

		var bannedEdge, bannedNode []bool
		if seed%2 == 1 {
			bannedEdge = make([]bool, g.M())
			for e := range bannedEdge {
				bannedEdge[e] = rng.Intn(6) == 0
			}
			bannedNode = make([]bool, n)
			for v := 1; v < n; v++ {
				bannedNode[v] = rng.Intn(8) == 0
			}
		}

		for _, src := range []int{0, rng.Intn(n)} {
			ws.DijkstraBanned(src, length, bannedEdge, bannedNode)
			want := bellmanFord(g, src, length, bannedEdge, bannedNode)
			for v := 0; v < n; v++ {
				got := ws.Dist[v]
				if math.IsInf(got, 1) != math.IsInf(want[v], 1) {
					t.Fatalf("seed %d src %d: reachability of %d differs: dijkstra %v, bellman-ford %v",
						seed, src, v, got, want[v])
				}
				if !math.IsInf(got, 1) && math.Abs(got-want[v]) > 1e-9 {
					t.Fatalf("seed %d src %d: dist[%d] = %g, bellman-ford %g",
						seed, src, v, got, want[v])
				}
			}
			// The predecessor tree must be consistent with the distances
			// and must not use banned edges or traverse banned nodes.
			for v := 0; v < n; v++ {
				e := ws.Prev[v]
				if e < 0 {
					continue
				}
				u := g.Edge(int(e)).Other(int32(v))
				if bannedEdge != nil && bannedEdge[e] {
					t.Fatalf("seed %d: prev[%d] uses banned edge %d", seed, v, e)
				}
				if bannedNode != nil && (bannedNode[u] || bannedNode[v]) {
					t.Fatalf("seed %d: prev[%d] traverses a banned node", seed, v)
				}
				if math.Abs(ws.Dist[u]+length[e]-ws.Dist[v]) > 1e-9 {
					t.Fatalf("seed %d: prev tree inconsistent at %d: %g + %g != %g",
						seed, v, ws.Dist[u], length[e], ws.Dist[v])
				}
			}
		}
	}
}

// TestWorkspaceDeterministicTree checks that the shortest-path tree is a
// function of the graph alone: a reused workspace mid-stream and a fresh
// one must produce identical Prev vectors, even on unit lengths where
// almost every pop is a tie.
func TestWorkspaceDeterministicTree(t *testing.T) {
	for seed := uint64(0); seed < 10; seed++ {
		rng := NewRNG(seed)
		g, _ := randomMultigraph(rng)
		unit := g.UnitLengths()
		ws := g.NewWorkspace()
		ws.Dijkstra(int(rng.Intn(g.N())), unit) // dirty the scratch
		ws.Dijkstra(0, unit)
		fresh := g.NewWorkspace()
		fresh.Dijkstra(0, unit)
		for v := range fresh.Prev {
			if ws.Prev[v] != fresh.Prev[v] || ws.Dist[v] != fresh.Dist[v] { //flatlint:ignore floatcmp determinism test demands bit-identical distances
				t.Fatalf("seed %d: reused workspace diverged at node %d: prev %d vs %d, dist %g vs %g",
					seed, v, ws.Prev[v], fresh.Prev[v], ws.Dist[v], fresh.Dist[v])
			}
		}
	}
}

// TestWorkspaceDijkstraTargetsMatchesFullRun pins the early-stopped batched
// oracle against the full kernel: for random target sets, the targets'
// distances, their shortest-path trees (walked through Prev), and the heap
// invariant after the early exit must all be bit-identical to a full run.
func TestWorkspaceDijkstraTargetsMatchesFullRun(t *testing.T) {
	for seed := uint64(0); seed < 40; seed++ {
		rng := NewRNG(seed)
		g, length := randomMultigraph(rng)
		n := g.N()
		full := g.NewWorkspace()
		ws := g.NewWorkspace()
		src := rng.Intn(n)
		full.Dijkstra(src, length)

		// Random target set, sometimes with duplicates, sometimes every node.
		var targets []int32
		switch seed % 3 {
		case 0:
			for i := 0; i < 1+rng.Intn(4); i++ {
				targets = append(targets, int32(rng.Intn(n)))
			}
			targets = append(targets, targets[0]) // duplicate must count once
		case 1:
			targets = []int32{int32(rng.Intn(n))}
		default:
			for v := 0; v < n; v++ {
				targets = append(targets, int32(v))
			}
		}
		ws.DijkstraTargets(src, length, targets)

		for _, dst := range targets {
			if ws.Dist[dst] != full.Dist[dst] { //flatlint:ignore floatcmp the early-stopped run must be bit-identical on settled targets
				t.Fatalf("seed %d: dist[%d] = %g, full run %g", seed, dst, ws.Dist[dst], full.Dist[dst])
			}
			// Walk the tree back to src: every hop must match the full run.
			for v := dst; int(v) != src && ws.Prev[v] >= 0; {
				if ws.Prev[v] != full.Prev[v] {
					t.Fatalf("seed %d: prev[%d] = %d, full run %d", seed, v, ws.Prev[v], full.Prev[v])
				}
				v = g.Edge(int(ws.Prev[v])).Other(v)
			}
		}
		// The workspace must be reusable after the early exit: heap empty,
		// pos reset, and a fresh full Dijkstra must match a clean one.
		ws.Dijkstra(src, length)
		for v := 0; v < n; v++ {
			if ws.Dist[v] != full.Dist[v] || ws.Prev[v] != full.Prev[v] { //flatlint:ignore floatcmp reuse after early exit must be bit-identical
				t.Fatalf("seed %d: workspace dirty after DijkstraTargets: node %d dist %g/%g prev %d/%d",
					seed, v, ws.Dist[v], full.Dist[v], ws.Prev[v], full.Prev[v])
			}
		}
	}
}

// TestWorkspaceDijkstraTargetsUnreachable checks that a target in another
// component is reported at +Inf rather than hanging or mis-stopping.
func TestWorkspaceDijkstraTargetsUnreachable(t *testing.T) {
	g := New(5)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(3, 4) // separate component
	g.SortAdjacency()
	length := []float64{1, 1, 1}
	ws := g.NewWorkspace()
	ws.DijkstraTargets(0, length, []int32{2, 3})
	if ws.Dist[2] != 2 { //flatlint:ignore floatcmp unit lengths sum exactly
		t.Errorf("dist[2] = %g, want 2", ws.Dist[2])
	}
	if !math.IsInf(ws.Dist[3], 1) {
		t.Errorf("dist[3] = %g, want +Inf (unreachable)", ws.Dist[3])
	}
}

// TestWorkspaceShortestPathMatchesGraphAPI pins the convenience wrappers to
// the workspace kernel.
func TestWorkspaceShortestPathMatchesGraphAPI(t *testing.T) {
	rng := NewRNG(7)
	g, length := randomMultigraph(rng)
	ws := g.NewWorkspace()
	for dst := 1; dst < g.N(); dst++ {
		p1, ok1 := g.ShortestPath(0, dst, length)
		p2, ok2 := ws.ShortestPath(0, dst, length)
		if ok1 != ok2 || !sameNodes(p1.Nodes, p2.Nodes) || p1.Cost != p2.Cost { //flatlint:ignore floatcmp both paths come from the same deterministic kernel
			t.Fatalf("dst %d: wrapper %v/%v, workspace %v/%v", dst, p1, ok1, p2, ok2)
		}
	}
}
