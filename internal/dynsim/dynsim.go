// Package dynsim is an event-driven fluid (flow-level) network simulator:
// flows arrive over time, each is pinned to a path chosen from a
// routing.Scheme's candidates, active flows share switch-switch links by
// progressive-filling max-min fairness, and the simulator advances from
// event to event (arrival or completion), re-solving rates at each one.
//
// It complements the static LP throughput of internal/mcf with the dynamic
// metric operators actually watch — flow completion time — and gives the
// §2.6 controller's "adaptive manner through network measurement" something
// concrete to measure: the adaptive example converts the topology when the
// measured FCT of the current mode falls behind.
package dynsim

import (
	"context"
	"fmt"
	"math"
	"sort"

	"flattree/internal/graph"
	"flattree/internal/routing"
	"flattree/internal/topo"
)

// Arrival is one flow entering the system.
type Arrival struct {
	Time     float64
	Src, Dst int // server node IDs
	Size     float64
}

// FlowRecord is a completed flow.
type FlowRecord struct {
	Arrival
	Finish float64
}

// FCT returns the flow completion time.
func (f FlowRecord) FCT() float64 { return f.Finish - f.Time }

// Result summarizes a simulation run.
type Result struct {
	Completed []FlowRecord
	// MeanFCT, P99FCT summarize completion times.
	MeanFCT, P99FCT float64
	// Events is the number of simulation events processed.
	Events int
	// Unfinished counts flows still active when the arrival list was
	// exhausted and the drain limit hit.
	Unfinished int
}

type activeFlow struct {
	id        int
	remaining float64
	links     []int32
	rate      float64
	arr       Arrival
}

// Simulate runs the fluid simulation of the given arrivals (they will be
// processed in time order) on the network under the routing scheme. Each
// flow is routed on the least-loaded (by active flow count) of its
// candidate paths at arrival — the practical KSP load-balancing §2.6
// implies. Switch-switch links have unit capacity; flows between servers on
// the same switch complete at infinite rate (uncapacitated access links,
// matching the rest of the repository).
//
// maxConcurrent bounds the number of simultaneously active flows as a
// safety valve against overload workloads that would never drain (0 means
// 4096); when it is hit, the simulation returns an error, which is a
// finding about the offered load rather than a simulator limit.
//
// Cancelling ctx aborts the event loop between events and returns the
// partial Result accumulated so far (finalized over the flows that did
// complete) together with the context's error, so a SIGINT mid-sweep still
// yields usable partial data.
func Simulate(ctx context.Context, nw *topo.Network, scheme routing.Scheme, arrivals []Arrival, maxConcurrent int) (Result, error) {
	if maxConcurrent <= 0 {
		maxConcurrent = 4096
	}
	sorted := append([]Arrival(nil), arrivals...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Time < sorted[j].Time })

	// Link index over switch-switch links (parallel links pool capacity).
	type pair struct{ a, b int32 }
	linkIdx := make(map[pair]int32)
	var capacity []float64
	for _, l := range nw.Links {
		if !nw.Nodes[l.A].Kind.IsSwitch() || !nw.Nodes[l.B].Kind.IsSwitch() {
			continue
		}
		a, b := int32(l.A), int32(l.B)
		if a > b {
			a, b = b, a
		}
		if li, ok := linkIdx[pair{a, b}]; ok {
			capacity[li]++
			continue
		}
		linkIdx[pair{a, b}] = int32(len(capacity))
		capacity = append(capacity, 1)
	}
	activeOnLink := make([]int, len(capacity))

	hostOf := func(v int) (int, error) {
		if v < 0 || v >= nw.N() {
			return 0, fmt.Errorf("dynsim: node %d out of range", v)
		}
		if nw.Nodes[v].Kind.IsSwitch() {
			return v, nil
		}
		h := nw.HostSwitch(v)
		if h < 0 {
			return 0, fmt.Errorf("dynsim: server %d detached", v)
		}
		return h, nil
	}

	pathCache := make(map[pair][][]int32)
	pathsFor := func(s, d int) ([][]int32, error) {
		key := pair{int32(s), int32(d)}
		if ps, ok := pathCache[key]; ok {
			return ps, nil
		}
		cand, err := scheme.Paths(s, d)
		if err != nil {
			return nil, err
		}
		var out [][]int32
		for _, p := range cand {
			var links []int32
			ok := true
			for i := 0; i+1 < len(p.Nodes); i++ {
				a, b := p.Nodes[i], p.Nodes[i+1]
				if a > b {
					a, b = b, a
				}
				li, found := linkIdx[pair{a, b}]
				if !found {
					ok = false
					break
				}
				links = append(links, li)
			}
			if ok {
				out = append(out, links)
			}
		}
		if len(out) == 0 {
			return nil, fmt.Errorf("dynsim: no usable path %d->%d", s, d)
		}
		pathCache[key] = out
		return out, nil
	}

	var (
		active []*activeFlow
		res    Result
		now    float64
		nextID int
	)

	// recompute assigns max-min fair rates to all active flows.
	recompute := func() {
		for i := range activeOnLink {
			activeOnLink[i] = 0
		}
		for _, f := range active {
			f.rate = 0
			for _, li := range f.links {
				activeOnLink[li]++
			}
		}
		used := make([]float64, len(capacity))
		unfrozen := append([]int(nil), activeOnLink...)
		frozen := make(map[int]bool, len(active))
		level := 0.0
		for len(frozen) < len(active) {
			best := math.Inf(1)
			for li := range capacity {
				if unfrozen[li] == 0 {
					continue
				}
				if inc := (capacity[li] - used[li]) / float64(unfrozen[li]); inc < best {
					best = inc
				}
			}
			if math.IsInf(best, 1) {
				// Remaining flows traverse no capacitated link.
				for _, f := range active {
					if !frozen[f.id] {
						f.rate = math.Inf(1)
						frozen[f.id] = true
					}
				}
				break
			}
			level += best
			for li := range capacity {
				used[li] += best * float64(unfrozen[li])
			}
			for _, f := range active {
				if frozen[f.id] {
					continue
				}
				for _, li := range f.links {
					if capacity[li]-used[li] <= 1e-12 {
						f.rate = level
						frozen[f.id] = true
						for _, l2 := range f.links {
							unfrozen[l2]--
						}
						break
					}
				}
			}
		}
	}

	// advance progresses active flows to time t and completes any that
	// finish exactly at t.
	advance := func(t float64) {
		dt := t - now
		for _, f := range active {
			if math.IsInf(f.rate, 1) {
				f.remaining = 0
			} else if dt > 0 {
				f.remaining -= f.rate * dt
			}
		}
		now = t
		w := 0
		for _, f := range active {
			if f.remaining <= 1e-9 {
				res.Completed = append(res.Completed, FlowRecord{Arrival: f.arr, Finish: now})
				continue
			}
			active[w] = f
			w++
		}
		active = active[:w]
	}

	nextCompletion := func() float64 {
		t := math.Inf(1)
		for _, f := range active {
			if math.IsInf(f.rate, 1) {
				return now
			}
			if f.rate > 0 {
				if c := now + f.remaining/f.rate; c < t {
					t = c
				}
			}
		}
		return t
	}

	ai := 0
	for ai < len(sorted) || len(active) > 0 {
		if err := ctx.Err(); err != nil {
			res.Unfinished = len(active)
			finalize(&res)
			return res, fmt.Errorf("dynsim: %w with %d flows active", err, len(active))
		}
		res.Events++
		if res.Events > 200*len(sorted)+1000 {
			res.Unfinished = len(active)
			return res, fmt.Errorf("dynsim: event budget exhausted with %d flows active (offered load exceeds capacity?)", len(active))
		}
		tc := nextCompletion()
		if ai < len(sorted) && sorted[ai].Time <= tc {
			arr := sorted[ai]
			ai++
			advance(math.Max(arr.Time, now))
			s, err := hostOf(arr.Src)
			if err != nil {
				return res, err
			}
			d, err := hostOf(arr.Dst)
			if err != nil {
				return res, err
			}
			if s == d {
				// Same-switch flow: completes instantly at fluid scale.
				res.Completed = append(res.Completed, FlowRecord{Arrival: arr, Finish: now})
				continue
			}
			paths, err := pathsFor(s, d)
			if err != nil {
				return res, err
			}
			// Least-loaded candidate by current active flow count.
			bestPath, bestLoad := 0, math.Inf(1)
			for pi, links := range paths {
				load := 0.0
				for _, li := range links {
					load += float64(activeOnLink[li])
				}
				load /= float64(len(links))
				if load < bestLoad {
					bestLoad, bestPath = load, pi
				}
			}
			if len(active) >= maxConcurrent {
				res.Unfinished = len(active)
				return res, fmt.Errorf("dynsim: %d concurrent flows exceeds limit %d", len(active)+1, maxConcurrent)
			}
			active = append(active, &activeFlow{
				id: nextID, remaining: arr.Size, links: paths[bestPath], arr: arr,
			})
			nextID++
			recompute()
			continue
		}
		if math.IsInf(tc, 1) {
			break
		}
		advance(tc)
		recompute()
	}

	finalize(&res)
	return res, nil
}

func finalize(res *Result) {
	if len(res.Completed) == 0 {
		return
	}
	fcts := make([]float64, len(res.Completed))
	sum := 0.0
	for i, f := range res.Completed {
		fcts[i] = f.FCT()
		sum += fcts[i]
	}
	sort.Float64s(fcts)
	res.MeanFCT = sum / float64(len(fcts))
	res.P99FCT = fcts[int(0.99*float64(len(fcts)-1))]
}

// PoissonHotspot generates count flows from a hot-spot server to uniformly
// random peers in the given server set, with exponential inter-arrivals at
// the given rate and fixed size.
func PoissonHotspot(servers []int, hotspot int, rate, size float64, count int, rng *graph.RNG) []Arrival {
	arr := make([]Arrival, 0, count)
	t := 0.0
	for i := 0; i < count; i++ {
		t += expInterval(rate, rng)
		dst := servers[rng.Intn(len(servers))]
		for dst == hotspot {
			dst = servers[rng.Intn(len(servers))]
		}
		arr = append(arr, Arrival{Time: t, Src: hotspot, Dst: dst, Size: size})
	}
	return arr
}

// PoissonPairs generates count flows between uniformly random server pairs.
func PoissonPairs(servers []int, rate, size float64, count int, rng *graph.RNG) []Arrival {
	arr := make([]Arrival, 0, count)
	t := 0.0
	for i := 0; i < count; i++ {
		t += expInterval(rate, rng)
		s := servers[rng.Intn(len(servers))]
		d := servers[rng.Intn(len(servers))]
		for d == s {
			d = servers[rng.Intn(len(servers))]
		}
		arr = append(arr, Arrival{Time: t, Src: s, Dst: d, Size: size})
	}
	return arr
}

func expInterval(rate float64, rng *graph.RNG) float64 {
	u := rng.Float64()
	for u == 0 { //flatlint:ignore floatcmp rejects the exact 0.0 Float64 can return, so Log is finite
		u = rng.Float64()
	}
	return -math.Log(u) / rate
}
