package dynsim

import (
	"context"
	"errors"
	"math"
	"testing"

	"flattree/internal/core"
	"flattree/internal/fattree"
	"flattree/internal/graph"
	"flattree/internal/routing"
	"flattree/internal/topo"
)

func lineNet(t testing.TB) (*topo.Network, []int) {
	b := topo.NewBuilder("line")
	s0 := b.AddNode(topo.EdgeSwitch, 0, 0, 4)
	s1 := b.AddNode(topo.EdgeSwitch, 0, 1, 4)
	b.AddLink(s0, s1, topo.TagClos)
	var servers []int
	for i, sw := range []int{s0, s1} {
		sv := b.AddNode(topo.Server, 0, i, 1)
		b.AddLink(sv, sw, topo.TagClos)
		servers = append(servers, sv)
	}
	return b.Build(), servers
}

func TestSingleFlowFCT(t *testing.T) {
	nw, servers := lineNet(t)
	res, err := Simulate(context.Background(), nw, routing.NewKSP(nw, 1), []Arrival{
		{Time: 1, Src: servers[0], Dst: servers[1], Size: 5},
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Completed) != 1 {
		t.Fatalf("completed %d flows", len(res.Completed))
	}
	// Unit capacity, size 5 -> FCT 5, finishing at t=6.
	if math.Abs(res.Completed[0].FCT()-5) > 1e-9 || math.Abs(res.Completed[0].Finish-6) > 1e-9 {
		t.Errorf("record = %+v", res.Completed[0])
	}
}

func TestTwoFlowsShareLink(t *testing.T) {
	nw, servers := lineNet(t)
	res, err := Simulate(context.Background(), nw, routing.NewKSP(nw, 1), []Arrival{
		{Time: 0, Src: servers[0], Dst: servers[1], Size: 2},
		{Time: 0, Src: servers[0], Dst: servers[1], Size: 2},
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Both share a unit link at rate 1/2: both finish at t=4.
	for _, f := range res.Completed {
		if math.Abs(f.Finish-4) > 1e-9 {
			t.Errorf("finish = %g, want 4", f.Finish)
		}
	}
}

func TestSequentialFlowsDontShare(t *testing.T) {
	nw, servers := lineNet(t)
	res, err := Simulate(context.Background(), nw, routing.NewKSP(nw, 1), []Arrival{
		{Time: 0, Src: servers[0], Dst: servers[1], Size: 1},
		{Time: 10, Src: servers[0], Dst: servers[1], Size: 1},
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range res.Completed {
		if math.Abs(f.FCT()-1) > 1e-9 {
			t.Errorf("FCT = %g, want 1 (no overlap)", f.FCT())
		}
	}
	if res.MeanFCT != 1 || res.P99FCT != 1 {
		t.Errorf("stats = %+v", res)
	}
}

func TestSameSwitchFlowInstant(t *testing.T) {
	b := topo.NewBuilder("one")
	sw := b.AddNode(topo.EdgeSwitch, 0, 0, 4)
	sw2 := b.AddNode(topo.EdgeSwitch, 0, 1, 4)
	b.AddLink(sw, sw2, topo.TagClos)
	s0 := b.AddNode(topo.Server, 0, 0, 1)
	s1 := b.AddNode(topo.Server, 0, 1, 1)
	b.AddLink(s0, sw, topo.TagClos)
	b.AddLink(s1, sw, topo.TagClos)
	nw := b.Build()
	res, err := Simulate(context.Background(), nw, routing.NewKSP(nw, 1), []Arrival{
		{Time: 3, Src: s0, Dst: s1, Size: 100},
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Completed) != 1 || res.Completed[0].FCT() != 0 {
		t.Errorf("res = %+v", res)
	}
}

// TestDeparturesFreeCapacity: a short flow arriving alongside a long one
// finishes early, and the long one speeds up afterward.
func TestDeparturesFreeCapacity(t *testing.T) {
	nw, servers := lineNet(t)
	res, err := Simulate(context.Background(), nw, routing.NewKSP(nw, 1), []Arrival{
		{Time: 0, Src: servers[0], Dst: servers[1], Size: 10},
		{Time: 0, Src: servers[0], Dst: servers[1], Size: 1},
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	var short, long FlowRecord
	for _, f := range res.Completed {
		if f.Size == 1 {
			short = f
		} else {
			long = f
		}
	}
	// Short: shares at 1/2 until done at t=2. Long: 1 unit sent by t=2,
	// remaining 9 at rate 1 -> finishes t=11.
	if math.Abs(short.Finish-2) > 1e-9 {
		t.Errorf("short finish = %g, want 2", short.Finish)
	}
	if math.Abs(long.Finish-11) > 1e-9 {
		t.Errorf("long finish = %g, want 11", long.Finish)
	}
}

// TestConservation: total bytes delivered equals total bytes offered on a
// fat-tree with a random workload.
func TestFatTreeWorkload(t *testing.T) {
	f, err := fattree.New(4)
	if err != nil {
		t.Fatal(err)
	}
	rng := graph.NewRNG(5)
	arr := PoissonPairs(f.ServerIDs, 2.0, 1.0, 60, rng)
	res, err := Simulate(context.Background(), f.Net, routing.NewKSP(f.Net, 4), arr, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Completed) != 60 || res.Unfinished != 0 {
		t.Fatalf("completed %d, unfinished %d", len(res.Completed), res.Unfinished)
	}
	if res.MeanFCT < 1 {
		t.Errorf("mean FCT %g below serialization bound 1", res.MeanFCT)
	}
	if res.P99FCT < res.MeanFCT {
		t.Errorf("p99 %g < mean %g", res.P99FCT, res.MeanFCT)
	}
	// FCTs must be monotone-consistent: finish >= arrival for every flow.
	for _, fr := range res.Completed {
		if fr.Finish < fr.Time-1e-9 {
			t.Fatalf("flow finished before it arrived: %+v", fr)
		}
	}
}

// TestHotspotFasterOnGlobalRandom: the convertibility payoff on a dynamic
// metric — the same hot-spot flow sequence completes faster after
// converting the flat-tree from Clos to global-random mode.
func TestHotspotFasterOnGlobalRandom(t *testing.T) {
	ft, err := core.Build(core.Params{K: 8})
	if err != nil {
		t.Fatal(err)
	}
	run := func(mode core.Mode) float64 {
		if err := ft.SetUniformMode(mode); err != nil {
			t.Fatal(err)
		}
		nw := ft.Net()
		servers := nw.Servers()
		rng := graph.NewRNG(11)
		arr := PoissonHotspot(servers, servers[0], 4.0, 1.0, 150, rng)
		res, err := Simulate(context.Background(), nw, routing.NewKSP(nw, 8), arr, 0)
		if err != nil {
			t.Fatal(err)
		}
		return res.MeanFCT
	}
	clos := run(core.ModeClos)
	global := run(core.ModeGlobalRandom)
	if global >= clos {
		t.Errorf("global-random mean FCT %g not better than Clos %g", global, clos)
	}
}

func TestErrors(t *testing.T) {
	nw, servers := lineNet(t)
	if _, err := Simulate(context.Background(), nw, routing.NewKSP(nw, 1), []Arrival{
		{Time: 0, Src: -5, Dst: servers[1], Size: 1},
	}, 0); err == nil {
		t.Error("bad src accepted")
	}
	// Concurrency limit.
	var arr []Arrival
	for i := 0; i < 5; i++ {
		arr = append(arr, Arrival{Time: 0, Src: servers[0], Dst: servers[1], Size: 1e9})
	}
	if _, err := Simulate(context.Background(), nw, routing.NewKSP(nw, 1), arr, 3); err == nil {
		t.Error("concurrency limit not enforced")
	}
}

func TestGenerators(t *testing.T) {
	rng := graph.NewRNG(1)
	servers := []int{10, 11, 12, 13}
	hs := PoissonHotspot(servers, 10, 1.0, 2.0, 50, rng)
	if len(hs) != 50 {
		t.Fatalf("len = %d", len(hs))
	}
	last := 0.0
	for _, a := range hs {
		if a.Src != 10 || a.Dst == 10 || a.Size != 2 {
			t.Fatalf("bad arrival %+v", a)
		}
		if a.Time <= last {
			t.Fatal("arrival times not increasing")
		}
		last = a.Time
	}
	pp := PoissonPairs(servers, 1.0, 1.0, 50, rng)
	for _, a := range pp {
		if a.Src == a.Dst {
			t.Fatal("self flow generated")
		}
	}
}

// TestSimulateCancelled: a cancelled context aborts the event loop with a
// wrapped ctx error and a partial (still internally consistent) result,
// instead of silently returning a complete-looking one.
func TestSimulateCancelled(t *testing.T) {
	nw, servers := lineNet(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := Simulate(ctx, nw, routing.NewKSP(nw, 1), []Arrival{
		{Time: 1, Src: servers[0], Dst: servers[1], Size: 5},
	}, 0)
	if err == nil {
		t.Fatal("cancelled simulation returned nil error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("error %v does not wrap context.Canceled", err)
	}
	if len(res.Completed) != 0 {
		t.Errorf("cancelled-at-start run completed %d flows", len(res.Completed))
	}
}
