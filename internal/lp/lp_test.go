package lp

import (
	"math"
	"testing"
)

func solve(t *testing.T, p *Problem) Solution {
	t.Helper()
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	return sol
}

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-6 }

func TestSimpleMaximize(t *testing.T) {
	// max 3x+2y st x+y<=4, x+3y<=6 => x=4,y=0, obj=12? Check: x+y<=4 binds
	// at (4,0): 4<=4 ok, 4<=6 ok, obj=12. Try (3,1): 11. Yes 12.
	p := NewProblem(2)
	p.Maximize()
	p.SetObjectiveCoef(0, 3)
	p.SetObjectiveCoef(1, 2)
	p.AddConstraint(map[int]float64{0: 1, 1: 1}, LE, 4)
	p.AddConstraint(map[int]float64{0: 1, 1: 3}, LE, 6)
	sol := solve(t, p)
	if sol.Status != Optimal || !almost(sol.Objective, 12) {
		t.Errorf("sol = %+v, want objective 12", sol)
	}
}

func TestMinimizeWithGE(t *testing.T) {
	// min 2x+3y st x+y>=10, x<=6 => y>=4, best x=6,y=4: 24.
	p := NewProblem(2)
	p.SetObjectiveCoef(0, 2)
	p.SetObjectiveCoef(1, 3)
	p.AddConstraint(map[int]float64{0: 1, 1: 1}, GE, 10)
	p.AddConstraint(map[int]float64{0: 1}, LE, 6)
	sol := solve(t, p)
	if sol.Status != Optimal || !almost(sol.Objective, 24) {
		t.Errorf("sol = %+v, want objective 24", sol)
	}
	if !almost(sol.X[0], 6) || !almost(sol.X[1], 4) {
		t.Errorf("x = %v, want [6 4]", sol.X)
	}
}

func TestEquality(t *testing.T) {
	// max x+y st x+2y=8, x<=4 => x=4, y=2, obj=6.
	p := NewProblem(2)
	p.Maximize()
	p.SetObjectiveCoef(0, 1)
	p.SetObjectiveCoef(1, 1)
	p.AddConstraint(map[int]float64{0: 1, 1: 2}, EQ, 8)
	p.AddConstraint(map[int]float64{0: 1}, LE, 4)
	sol := solve(t, p)
	if sol.Status != Optimal || !almost(sol.Objective, 6) {
		t.Errorf("sol = %+v, want objective 6", sol)
	}
}

func TestInfeasible(t *testing.T) {
	p := NewProblem(1)
	p.AddConstraint(map[int]float64{0: 1}, GE, 5)
	p.AddConstraint(map[int]float64{0: 1}, LE, 3)
	sol := solve(t, p)
	if sol.Status != Infeasible {
		t.Errorf("status = %s, want infeasible", sol.Status)
	}
}

func TestUnbounded(t *testing.T) {
	p := NewProblem(2)
	p.Maximize()
	p.SetObjectiveCoef(0, 1)
	p.AddConstraint(map[int]float64{1: 1}, LE, 3)
	sol := solve(t, p)
	if sol.Status != Unbounded {
		t.Errorf("status = %s, want unbounded", sol.Status)
	}
}

func TestNegativeRHS(t *testing.T) {
	// x - y <= -2 with x,y>=0: y >= x+2. min y => x=0, y=2.
	p := NewProblem(2)
	p.SetObjectiveCoef(1, 1)
	p.AddConstraint(map[int]float64{0: 1, 1: -1}, LE, -2)
	sol := solve(t, p)
	if sol.Status != Optimal || !almost(sol.Objective, 2) {
		t.Errorf("sol = %+v, want objective 2", sol)
	}
}

func TestRedundantEqualities(t *testing.T) {
	// Duplicate constraints (redundant rows must not break phase 1).
	p := NewProblem(2)
	p.Maximize()
	p.SetObjectiveCoef(0, 1)
	p.AddConstraint(map[int]float64{0: 1, 1: 1}, EQ, 5)
	p.AddConstraint(map[int]float64{0: 1, 1: 1}, EQ, 5)
	p.AddConstraint(map[int]float64{0: 2, 1: 2}, EQ, 10)
	sol := solve(t, p)
	if sol.Status != Optimal || !almost(sol.Objective, 5) {
		t.Errorf("sol = %+v, want objective 5", sol)
	}
}

func TestDegenerateVertex(t *testing.T) {
	// Classic degeneracy: multiple constraints meet at the optimum; Bland's
	// rule must still terminate.
	p := NewProblem(3)
	p.Maximize()
	p.SetObjectiveCoef(0, 10)
	p.SetObjectiveCoef(1, -57)
	p.SetObjectiveCoef(2, -9)
	p.AddConstraint(map[int]float64{0: 0.5, 1: -5.5, 2: -2.5}, LE, 0)
	p.AddConstraint(map[int]float64{0: 0.5, 1: -1.5, 2: -0.5}, LE, 0)
	p.AddConstraint(map[int]float64{0: 1}, LE, 1)
	sol := solve(t, p)
	if sol.Status != Optimal || !almost(sol.Objective, 1) {
		t.Errorf("sol = %+v, want objective 1 (x=1,y=0,z=0... )", sol)
	}
}

func TestMaxFlowAsLP(t *testing.T) {
	// Max flow 0->3 on the diamond with unit capacities = 2.
	// Vars: f01, f02, f13, f23 (arcs), v = flow value.
	p := NewProblem(5)
	p.Maximize()
	p.SetObjectiveCoef(4, 1)
	// Conservation at 1: f01 = f13; at 2: f02 = f23.
	p.AddConstraint(map[int]float64{0: 1, 2: -1}, EQ, 0)
	p.AddConstraint(map[int]float64{1: 1, 3: -1}, EQ, 0)
	// Source: f01 + f02 = v.
	p.AddConstraint(map[int]float64{0: 1, 1: 1, 4: -1}, EQ, 0)
	// Capacities.
	for v := 0; v < 4; v++ {
		p.AddConstraint(map[int]float64{v: 1}, LE, 1)
	}
	sol := solve(t, p)
	if sol.Status != Optimal || !almost(sol.Objective, 2) {
		t.Errorf("max flow = %+v, want 2", sol)
	}
}

func TestConstraintVarOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewProblem(1).AddConstraint(map[int]float64{3: 1}, LE, 1)
}
