// Package lp is a small dense linear-programming solver: a two-phase
// primal simplex with Bland's anti-cycling rule. The flat-tree paper
// computes throughput by solving the maximum concurrent multi-commodity
// flow LP with "a linear programming solver" (§3.1); this package plays
// that role for small instances and validates the approximation scheme in
// internal/mcf that handles paper-scale instances.
//
// The solver is deliberately simple (dense tableau, O(m·n) per pivot) —
// it is a reference implementation, not a production barrier method — but
// it is exact up to floating-point tolerance and handles <=, >=, and =
// constraints with free or non-negative variables.
package lp

import (
	"fmt"
	"math"
	"sort"
)

// Sense is a constraint relation.
type Sense int8

const (
	// LE is <=.
	LE Sense = iota
	// GE is >=.
	GE
	// EQ is =.
	EQ
)

// Status reports the outcome of a solve.
type Status int8

const (
	// Optimal means an optimal solution was found.
	Optimal Status = iota
	// Infeasible means no point satisfies the constraints.
	Infeasible
	// Unbounded means the objective can grow without limit.
	Unbounded
)

// String returns the status name.
func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	}
	return fmt.Sprintf("status(%d)", int8(s))
}

type constraint struct {
	coefs map[int]float64
	sense Sense
	rhs   float64
}

// Problem is an LP under construction. All variables are non-negative.
type Problem struct {
	numVars     int
	objective   []float64
	maximize    bool
	constraints []constraint
}

// NewProblem creates a problem with numVars non-negative variables,
// initially with a zero objective.
func NewProblem(numVars int) *Problem {
	return &Problem{numVars: numVars, objective: make([]float64, numVars)}
}

// NumVars returns the number of variables.
func (p *Problem) NumVars() int { return p.numVars }

// SetObjectiveCoef sets the objective coefficient of variable v.
func (p *Problem) SetObjectiveCoef(v int, c float64) { p.objective[v] = c }

// Maximize selects maximization (default is minimization).
func (p *Problem) Maximize() { p.maximize = true }

// AddConstraint appends sum(coefs[v]*x[v]) sense rhs.
func (p *Problem) AddConstraint(coefs map[int]float64, sense Sense, rhs float64) {
	// Visit variables in sorted order so that when several indices are out
	// of range, the panic always names the smallest one.
	vars := make([]int, 0, len(coefs))
	for v := range coefs {
		vars = append(vars, v)
	}
	sort.Ints(vars)
	cp := make(map[int]float64, len(coefs))
	for _, v := range vars {
		c := coefs[v]
		if v < 0 || v >= p.numVars {
			//flatlint:ignore nopanic out-of-range variable index is a programmer error in problem construction
			panic(fmt.Sprintf("lp: constraint references variable %d of %d", v, p.numVars))
		}
		if c != 0 { //flatlint:ignore floatcmp prunes coefficients that are structurally absent (exact zero)
			cp[v] = c
		}
	}
	p.constraints = append(p.constraints, constraint{coefs: cp, sense: sense, rhs: rhs})
}

// Solution is the result of a successful solve.
type Solution struct {
	Status    Status
	X         []float64
	Objective float64
}

const eps = 1e-9

// Solve runs the two-phase simplex.
func (p *Problem) Solve() (Solution, error) {
	m := len(p.constraints)
	n := p.numVars

	// Count auxiliary columns: one slack/surplus per inequality, one
	// artificial per GE/EQ (and per LE with negative rhs after flip —
	// handled by flipping rows so rhs >= 0 first).
	type rowSpec struct {
		coefs map[int]float64
		sense Sense
		rhs   float64
	}
	rows := make([]rowSpec, m)
	for i, c := range p.constraints {
		r := rowSpec{coefs: c.coefs, sense: c.sense, rhs: c.rhs}
		if r.rhs < 0 {
			flipped := make(map[int]float64, len(r.coefs))
			for v, cf := range r.coefs {
				flipped[v] = -cf
			}
			r.coefs = flipped
			r.rhs = -r.rhs
			switch r.sense {
			case LE:
				r.sense = GE
			case GE:
				r.sense = LE
			}
		}
		rows[i] = r
	}

	slackCols := 0
	artCols := 0
	for _, r := range rows {
		if r.sense != EQ {
			slackCols++
		}
		if r.sense != LE {
			artCols++
		}
	}
	total := n + slackCols + artCols
	// Tableau: m rows of total+1 (last column is RHS).
	t := make([][]float64, m)
	basis := make([]int, m)
	isArtificial := make([]bool, total)
	slackAt := n
	artAt := n + slackCols
	for i, r := range rows {
		row := make([]float64, total+1)
		for v, cf := range r.coefs {
			row[v] = cf
		}
		row[total] = r.rhs
		switch r.sense {
		case LE:
			row[slackAt] = 1
			basis[i] = slackAt
			slackAt++
		case GE:
			row[slackAt] = -1
			slackAt++
			row[artAt] = 1
			isArtificial[artAt] = true
			basis[i] = artAt
			artAt++
		case EQ:
			row[artAt] = 1
			isArtificial[artAt] = true
			basis[i] = artAt
			artAt++
		}
		t[i] = row
	}

	// pivot makes column col basic in row r.
	pivot := func(r, col int) {
		pr := t[r]
		pv := pr[col]
		for j := range pr {
			pr[j] /= pv
		}
		for i := range t {
			if i == r {
				continue
			}
			f := t[i][col]
			if f == 0 { //flatlint:ignore floatcmp skipping exact zeros is a sparsity optimization, not a tolerance
				continue
			}
			ri := t[i]
			for j := range ri {
				ri[j] -= f * pr[j]
			}
		}
		basis[r] = col
	}

	// simplexMin minimizes cost'x from the current basic feasible point.
	// forbid marks columns that may not enter. Returns the status.
	simplexMin := func(cost []float64, forbid []bool) Status {
		// y[i] = cost of basic var in row i; reduced cost r_j = cost_j -
		// sum_i y_i * t[i][j].
		for iter := 0; ; iter++ {
			if iter > 50000 {
				// Bland's rule precludes cycling; this guards against
				// numerical stalls on pathological inputs.
				return Infeasible
			}
			enter := -1
			for j := 0; j < total; j++ {
				if forbid != nil && forbid[j] {
					continue
				}
				rc := cost[j]
				for i := 0; i < m; i++ {
					cb := cost[basis[i]]
					if cb != 0 { //flatlint:ignore floatcmp skipping exact zeros is a sparsity optimization, not a tolerance
						rc -= cb * t[i][j]
					}
				}
				if rc < -eps {
					enter = j // Bland: first improving column
					break
				}
			}
			if enter < 0 {
				return Optimal
			}
			leave := -1
			bestRatio := math.Inf(1)
			for i := 0; i < m; i++ {
				a := t[i][enter]
				if a > eps {
					ratio := t[i][total] / a
					if ratio < bestRatio-eps ||
						(ratio < bestRatio+eps && (leave < 0 || basis[i] < basis[leave])) {
						bestRatio = ratio
						leave = i
					}
				}
			}
			if leave < 0 {
				return Unbounded
			}
			pivot(leave, enter)
		}
	}

	// Phase 1: minimize the sum of artificials.
	if artCols > 0 {
		cost := make([]float64, total)
		for j := n + slackCols; j < total; j++ {
			cost[j] = 1
		}
		st := simplexMin(cost, nil)
		if st == Unbounded {
			return Solution{}, fmt.Errorf("lp: phase 1 unbounded (internal error)")
		}
		sum := 0.0
		for i := 0; i < m; i++ {
			if isArtificial[basis[i]] {
				sum += t[i][total]
			}
		}
		if sum > 1e-7 {
			return Solution{Status: Infeasible}, nil
		}
		// Drive remaining artificials out of the basis where possible.
		for i := 0; i < m; i++ {
			if !isArtificial[basis[i]] {
				continue
			}
			done := false
			for j := 0; j < n+slackCols && !done; j++ {
				if math.Abs(t[i][j]) > eps {
					pivot(i, j)
					done = true
				}
			}
			// A fully zero row is a redundant constraint; the artificial
			// stays basic at value 0, which is harmless as long as it
			// never re-enters (forbidden below).
		}
	}

	// Phase 2.
	cost := make([]float64, total)
	for j := 0; j < n; j++ {
		if p.maximize {
			cost[j] = -p.objective[j]
		} else {
			cost[j] = p.objective[j]
		}
	}
	forbid := make([]bool, total)
	for j := range forbid {
		forbid[j] = isArtificial[j]
	}
	st := simplexMin(cost, forbid)
	if st == Unbounded {
		return Solution{Status: Unbounded}, nil
	}

	x := make([]float64, n)
	for i := 0; i < m; i++ {
		if basis[i] < n {
			x[basis[i]] = t[i][total]
		}
	}
	obj := 0.0
	for j := 0; j < n; j++ {
		obj += p.objective[j] * x[j]
	}
	return Solution{Status: Optimal, X: x, Objective: obj}, nil
}
