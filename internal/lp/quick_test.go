package lp

import (
	"testing"
	"testing/quick"

	"flattree/internal/graph"
)

// TestRandomLPFeasibilityAndOptimality: generate random bounded LPs, solve,
// and check (a) the solution satisfies every constraint, and (b) no
// randomly sampled feasible point beats the reported optimum.
func TestRandomLPFeasibilityAndOptimality(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		rng := graph.NewRNG(seed)
		nVars := 2 + rng.Intn(4)
		nCons := 1 + rng.Intn(5)

		p := NewProblem(nVars)
		p.Maximize()
		obj := make([]float64, nVars)
		for v := range obj {
			obj[v] = float64(rng.Intn(11) - 5)
			p.SetObjectiveCoef(v, obj[v])
		}
		type con struct {
			coefs map[int]float64
			rhs   float64
		}
		var cons []con
		// Box constraints keep the LP bounded.
		for v := 0; v < nVars; v++ {
			c := map[int]float64{v: 1}
			rhs := float64(1 + rng.Intn(10))
			p.AddConstraint(c, LE, rhs)
			cons = append(cons, con{c, rhs})
		}
		for i := 0; i < nCons; i++ {
			c := make(map[int]float64)
			for v := 0; v < nVars; v++ {
				if rng.Intn(2) == 0 {
					c[v] = float64(rng.Intn(7) - 2)
				}
			}
			if len(c) == 0 {
				continue
			}
			rhs := float64(rng.Intn(12))
			p.AddConstraint(c, LE, rhs)
			cons = append(cons, con{c, rhs})
		}

		sol, err := p.Solve()
		if err != nil {
			return false
		}
		if sol.Status == Infeasible {
			// x = 0 satisfies every constraint we built (rhs >= 0), so
			// infeasibility would be a bug.
			return false
		}
		if sol.Status != Optimal {
			return false // boxed, so never unbounded
		}
		// (a) Feasibility of the reported solution.
		for _, c := range cons {
			lhs := 0.0
			for v, cf := range c.coefs {
				lhs += cf * sol.X[v]
			}
			if lhs > c.rhs+1e-6 {
				return false
			}
		}
		for _, x := range sol.X {
			if x < -1e-9 {
				return false
			}
		}
		// (b) Sampled feasible points never beat the optimum.
		for trial := 0; trial < 50; trial++ {
			x := make([]float64, nVars)
			for v := range x {
				x[v] = rng.Float64() * 10
			}
			feasible := true
			for _, c := range cons {
				lhs := 0.0
				for v, cf := range c.coefs {
					lhs += cf * x[v]
				}
				if lhs > c.rhs {
					feasible = false
					break
				}
			}
			if !feasible {
				continue
			}
			val := 0.0
			for v := range x {
				val += obj[v] * x[v]
			}
			if val > sol.Objective+1e-6 {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 60})
	if err != nil {
		t.Error(err)
	}
}
