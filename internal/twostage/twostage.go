// Package twostage builds the two-stage random graph baseline of the
// flat-tree paper (§3.1): each pod internally forms a random graph with the
// same number of links and the same server distribution as flat-tree in
// local-random mode, and a second random graph connects the pods — treated
// as super nodes — together with the core switches.
package twostage

import (
	"fmt"

	"flattree/internal/graph"
	"flattree/internal/topo"
)

// TwoStage is a constructed two-stage random graph.
type TwoStage struct {
	K int
	// N is the number of servers relocated from each edge switch to its
	// paired aggregation switch (flat-tree's n); it fixes the server
	// distribution the intra-pod stage must match.
	N         int
	Net       *topo.Network
	Edges     [][]int
	Aggs      [][]int
	Cores     []int
	ServerIDs []int
}

// New constructs a two-stage random graph with fat-tree(k) equipment,
// matching flat-tree(m, n) local-random mode resource-for-resource:
//   - pod switches host the same server counts (edge: k/2-n, agg: n),
//   - each pod has (k/2)^2 internal links (every switch has intra-degree
//     k/2, randomly wired),
//   - pod uplink budgets equal flat-tree's (edge: n, agg: k/2-n),
//   - the super-node stage wires pods (k^2/4 stubs each) and cores (k stubs
//     each) by a configuration-model random matching.
func New(k, n int, seed uint64) (*TwoStage, error) {
	if k < 4 || k%2 != 0 {
		return nil, fmt.Errorf("twostage: k must be even and >= 4, got %d", k)
	}
	half := k / 2
	if n < 0 || n > half {
		return nil, fmt.Errorf("twostage: n=%d out of range [0,%d]", n, half)
	}
	rng := graph.NewRNG(seed)
	for try := 0; try < 32; try++ {
		ts, err := build(k, n, graph.NewRNG(rng.Uint64()))
		if err != nil {
			return nil, err
		}
		if err := ts.Net.Validate(); err == nil {
			return ts, nil
		}
	}
	return nil, fmt.Errorf("twostage: could not build a connected instance in 32 attempts")
}

func build(k, n int, rng *graph.RNG) (*TwoStage, error) {
	half := k / 2
	b := topo.NewBuilder(fmt.Sprintf("twostage(k=%d,n=%d)", k, n))
	ts := &TwoStage{K: k, N: n}

	ts.Cores = make([]int, half*half)
	for c := range ts.Cores {
		ts.Cores[c] = b.AddNode(topo.CoreSwitch, -1, c, k)
	}
	ts.Edges = make([][]int, k)
	ts.Aggs = make([][]int, k)
	for p := 0; p < k; p++ {
		ts.Aggs[p] = make([]int, half)
		ts.Edges[p] = make([]int, half)
		for i := 0; i < half; i++ {
			ts.Aggs[p][i] = b.AddNode(topo.AggSwitch, p, i, k)
		}
		for j := 0; j < half; j++ {
			ts.Edges[p][j] = b.AddNode(topo.EdgeSwitch, p, j, k)
		}
	}
	// Servers: edge switch j hosts k/2-n, agg switch j hosts n, matching
	// flat-tree local-random mode. Server index order is pod-major then
	// pair-major so "continuous" placement fills pods in turn.
	ts.ServerIDs = make([]int, 0, k*half*half)
	for p := 0; p < k; p++ {
		for j := 0; j < half; j++ {
			for s := 0; s < half-n; s++ {
				idx := len(ts.ServerIDs)
				sv := b.AddNode(topo.Server, p, idx, 1)
				ts.ServerIDs = append(ts.ServerIDs, sv)
				b.AddLink(sv, ts.Edges[p][j], topo.TagClos)
			}
			for s := 0; s < n; s++ {
				idx := len(ts.ServerIDs)
				sv := b.AddNode(topo.Server, p, idx, 1)
				ts.ServerIDs = append(ts.ServerIDs, sv)
				b.AddLink(sv, ts.Aggs[p][j], topo.TagClos)
			}
		}
	}

	// Stage 1: a random k/2-regular graph inside each pod (k switches,
	// (k/2)^2 links — the same count as flat-tree's intra-pod edge-agg
	// mesh).
	for p := 0; p < k; p++ {
		podSw := make([]int, 0, k)
		podSw = append(podSw, ts.Edges[p]...)
		podSw = append(podSw, ts.Aggs[p]...)
		deg := make([]int, k)
		for i := range deg {
			deg[i] = half
		}
		rg, err := graph.BuildConnected(deg, rng)
		if err != nil {
			return nil, fmt.Errorf("twostage: pod %d stage-1: %w", p, err)
		}
		for _, e := range rg.Edges() {
			b.AddLink(podSw[e.A], podSw[e.B], topo.TagRandom)
		}
	}

	// Stage 2: configuration-model matching over super-node stubs. Pods
	// have k^2/4 stubs, core switches have k stubs. Self pairs are repaired
	// by re-shuffling the tail; parallel super edges are legitimate (two
	// distinct physical links between the same super nodes).
	numPods := k
	numCores := half * half
	var stubs []int // super-node id: pods are 0..k-1, cores are k..k+numCores-1
	for p := 0; p < numPods; p++ {
		for t := 0; t < k*k/4; t++ {
			stubs = append(stubs, p)
		}
	}
	for c := 0; c < numCores; c++ {
		for t := 0; t < k; t++ {
			stubs = append(stubs, numPods+c)
		}
	}
	rng.Shuffle(len(stubs), func(i, j int) { stubs[i], stubs[j] = stubs[j], stubs[i] })
	for rounds := 0; rounds < 64; rounds++ {
		clean := true
		for i := 0; i+1 < len(stubs); i += 2 {
			if stubs[i] == stubs[i+1] {
				j := rng.Intn(len(stubs))
				stubs[i+1], stubs[j] = stubs[j], stubs[i+1]
				clean = false
			}
		}
		if clean {
			break
		}
	}

	// Pod-side uplink budgets mirror flat-tree local mode: edge j has n
	// uplink ports, agg j has k/2-n.
	type slot struct {
		sw   int
		free int
	}
	podSlots := make([][]slot, numPods)
	for p := 0; p < numPods; p++ {
		for j := 0; j < half; j++ {
			if n > 0 {
				podSlots[p] = append(podSlots[p], slot{ts.Edges[p][j], n})
			}
			if half-n > 0 {
				podSlots[p] = append(podSlots[p], slot{ts.Aggs[p][j], half - n})
			}
		}
	}
	claim := func(super int) int {
		if super >= numPods {
			return ts.Cores[super-numPods]
		}
		slots := podSlots[super]
		i := rng.Intn(len(slots))
		slots[i].free--
		sw := slots[i].sw
		if slots[i].free == 0 {
			slots[i] = slots[len(slots)-1]
			podSlots[super] = slots[:len(slots)-1]
		}
		return sw
	}
	for i := 0; i+1 < len(stubs); i += 2 {
		a, c := stubs[i], stubs[i+1]
		if a == c {
			continue // unrepaired self pair: drop the link (negligible, see tests)
		}
		sa, sc := claim(a), claim(c)
		if sa == sc {
			continue
		}
		b.AddLink(sa, sc, topo.TagRandom)
	}

	ts.Net = b.Build()
	return ts, nil
}
