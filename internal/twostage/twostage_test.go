package twostage

import (
	"testing"

	"flattree/internal/core"
	"flattree/internal/topo"
)

func TestEquipmentAndServerDistribution(t *testing.T) {
	for _, k := range []int{8, 12, 16} {
		_, n := core.DefaultMN(k)
		ts, err := New(k, n, 5)
		if err != nil {
			t.Fatal(err)
		}
		st := ts.Net.Stats()
		if st.Servers != k*k*k/4 {
			t.Errorf("k=%d: %d servers", k, st.Servers)
		}
		if st.CoreSwitches != k*k/4 || st.EdgeSwitches != k*k/2 || st.AggSwitches != k*k/2 {
			t.Errorf("k=%d: switch counts %+v", k, st)
		}
		// Server distribution matches flat-tree local mode exactly.
		for p := 0; p < k; p++ {
			for j := 0; j < k/2; j++ {
				if c := len(ts.Net.HostedServers(ts.Edges[p][j])); c != k/2-n {
					t.Fatalf("k=%d: edge %d/%d hosts %d, want %d", k, p, j, c, k/2-n)
				}
				if c := len(ts.Net.HostedServers(ts.Aggs[p][j])); c != n {
					t.Fatalf("k=%d: agg %d/%d hosts %d, want %d", k, p, j, c, n)
				}
			}
		}
		if err := ts.Net.Validate(); err != nil {
			t.Errorf("k=%d: %v", k, err)
		}
	}
}

func TestIntraPodLinkBudget(t *testing.T) {
	k := 8
	_, n := core.DefaultMN(k)
	ts, err := New(k, n, 9)
	if err != nil {
		t.Fatal(err)
	}
	// Each pod must contain exactly (k/2)^2 internal switch-switch links —
	// the same as flat-tree's edge-agg mesh.
	intra := make(map[int]int)
	for _, l := range ts.Net.Links {
		na, nb := ts.Net.Nodes[l.A], ts.Net.Nodes[l.B]
		if na.Kind.IsSwitch() && nb.Kind.IsSwitch() && na.Pod >= 0 && na.Pod == nb.Pod {
			intra[na.Pod]++
		}
	}
	for p := 0; p < k; p++ {
		if intra[p] != k*k/4 {
			t.Errorf("pod %d has %d internal links, want %d", p, intra[p], k*k/4)
		}
	}
}

func TestUplinkBudget(t *testing.T) {
	k := 8
	_, n := core.DefaultMN(k)
	ts, err := New(k, n, 11)
	if err != nil {
		t.Fatal(err)
	}
	// Links leaving a pod: at most the flat-tree budget k^2/4 per pod
	// (self pairs dropped during stub matching may lose a couple).
	up := make(map[int]int)
	for _, l := range ts.Net.Links {
		na, nb := ts.Net.Nodes[l.A], ts.Net.Nodes[l.B]
		if !na.Kind.IsSwitch() || !nb.Kind.IsSwitch() {
			continue
		}
		if na.Pod != nb.Pod {
			if na.Pod >= 0 {
				up[na.Pod]++
			}
			if nb.Pod >= 0 {
				up[nb.Pod]++
			}
		}
	}
	for p := 0; p < k; p++ {
		if up[p] > k*k/4 || up[p] < k*k/4-4 {
			t.Errorf("pod %d has %d uplinks, want ~%d", p, up[p], k*k/4)
		}
	}
}

func TestDeterministicBySeed(t *testing.T) {
	a, _ := New(8, 2, 4)
	b, _ := New(8, 2, 4)
	if len(a.Net.Links) != len(b.Net.Links) {
		t.Fatal("same seed differs")
	}
	for i := range a.Net.Links {
		if a.Net.Links[i] != b.Net.Links[i] {
			t.Fatal("same seed diverged")
		}
	}
}

func TestRejectsBadParams(t *testing.T) {
	if _, err := New(5, 1, 1); err == nil {
		t.Error("odd k should fail")
	}
	if _, err := New(8, 5, 1); err == nil {
		t.Error("n > k/2 should fail")
	}
	if _, err := New(8, -1, 1); err == nil {
		t.Error("negative n should fail")
	}
}

func TestCoresHostNoServers(t *testing.T) {
	ts, err := New(8, 2, 6)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range ts.Cores {
		if len(ts.Net.HostedServers(c)) != 0 {
			t.Errorf("core %d hosts servers", c)
		}
	}
	_ = topo.CoreSwitch
}
