package faults

import (
	"fmt"

	"flattree/internal/topo"
)

// Report quantifies a degraded network.
type Report struct {
	// Servers surviving and total switch-switch links remaining.
	Servers, SwitchLinks int
	// Connected reports whether all surviving servers can still reach
	// each other.
	Connected bool
	// LargestComponentFrac is the fraction of surviving servers in the
	// largest connected component.
	LargestComponentFrac float64
	// APL is the average path length over server pairs in the largest
	// component (NaN if fewer than 2 servers survive connected).
	APL float64
}

// Analyze computes a degradation report.
func Analyze(nw *topo.Network) (Report, error) {
	r := Report{Servers: len(nw.Servers())}
	for _, l := range nw.Links {
		if nw.Nodes[l.A].Kind.IsSwitch() && nw.Nodes[l.B].Kind.IsSwitch() {
			r.SwitchLinks++
		}
	}
	if r.Servers == 0 {
		return r, nil
	}

	// Component analysis over the full node graph.
	g := nw.Graph()
	comp := make([]int32, g.N())
	for i := range comp {
		comp[i] = -1
	}
	queue := make([]int32, g.N())
	numComp := int32(0)
	for v := 0; v < g.N(); v++ {
		if comp[v] >= 0 || g.Degree(v) == 0 {
			continue
		}
		comp[v] = numComp
		queue[0] = int32(v)
		head, tail := 0, 1
		for head < tail {
			u := queue[head]
			head++
			for _, h := range g.Neighbors(int(u)) {
				if comp[h.Peer] < 0 {
					comp[h.Peer] = numComp
					queue[tail] = h.Peer
					tail++
				}
			}
		}
		numComp++
	}
	serversPerComp := make(map[int32]int)
	for _, sv := range nw.Servers() {
		serversPerComp[comp[sv]]++
	}
	best, bestComp := 0, int32(-1)
	for cpt, cnt := range serversPerComp {
		if cnt > best {
			best, bestComp = cnt, cpt
		}
	}
	r.LargestComponentFrac = float64(best) / float64(r.Servers)
	r.Connected = len(serversPerComp) == 1 && best == r.Servers

	// APL inside the largest component.
	if best < 2 {
		return r, nil
	}
	var hostSwitches []int
	counts := make(map[int]int64)
	for _, sv := range nw.Servers() {
		if comp[sv] != bestComp {
			continue
		}
		sw := nw.HostSwitch(sv)
		if counts[sw] == 0 {
			hostSwitches = append(hostSwitches, sw)
		}
		counts[sw]++
	}
	dist := make([]int32, g.N())
	var sum, pairs float64
	for _, s := range hostSwitches {
		g.BFSInto(s, dist, queue)
		cs := counts[s]
		same := cs * (cs - 1) / 2
		sum += float64(same) * 2
		pairs += float64(same)
		for _, t := range hostSwitches {
			if t <= s {
				continue
			}
			if dist[t] < 0 {
				return r, fmt.Errorf("faults: component analysis inconsistent")
			}
			cnt := cs * counts[t]
			sum += float64(cnt) * float64(int(dist[t])+2)
			pairs += float64(cnt)
		}
	}
	if pairs > 0 {
		r.APL = sum / pairs
	}
	return r, nil
}
