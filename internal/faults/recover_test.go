package faults

import (
	"fmt"
	"testing"

	"flattree/internal/core"
	"flattree/internal/fattree"
	"flattree/internal/topo"
)

func globalRandomFlatTree(t *testing.T, k int) *topo.Network {
	t.Helper()
	ft, err := core.Build(core.Params{K: k})
	if err != nil {
		t.Fatal(err)
	}
	if err := ft.SetUniformMode(core.ModeGlobalRandom); err != nil {
		t.Fatal(err)
	}
	return ft.Net()
}

func TestDuplicateSwitchesRejected(t *testing.T) {
	f, err := fattree.New(4)
	if err != nil {
		t.Fatal(err)
	}
	sw := f.Net.Switches()[0]
	if _, err := Degrade(f.Net, Scenario{Switches: []int{sw, sw}}); err == nil {
		t.Error("duplicate switch IDs accepted")
	}
	if _, err := Degrade(f.Net, Scenario{Switches: []int{sw}}); err != nil {
		t.Errorf("single listing rejected: %v", err)
	}
}

func TestScenarioFractionValidation(t *testing.T) {
	f, err := fattree.New(4)
	if err != nil {
		t.Fatal(err)
	}
	bad := []Scenario{
		{SwitchFraction: -0.1},
		{SwitchFraction: 1},
		{BurstPods: 1, BurstLinkFraction: 1.5},
		{BurstPods: -1},
		{ConverterFraction: -2},
	}
	for i, sc := range bad {
		if _, err := Degrade(f.Net, sc); err == nil {
			t.Errorf("scenario %d (%+v) accepted", i, sc)
		}
	}
}

func TestSwitchFractionFailsSwitches(t *testing.T) {
	f, err := fattree.New(8)
	if err != nil {
		t.Fatal(err)
	}
	total := len(f.Net.Switches())
	out, err := Fail(f.Net, Scenario{SwitchFraction: 0.25, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	want := total / 4
	if out.FailedSwitches != want {
		t.Errorf("failed %d switches, want %d of %d", out.FailedSwitches, want, total)
	}
	if got := len(out.Net.Switches()); got != total-want {
		t.Errorf("surviving switches %d, want %d", got, total-want)
	}
	// Explicit switches count against the fraction's draw pool but not
	// its quota: both stack.
	sw := f.Net.Switches()[0]
	out2, err := Fail(f.Net, Scenario{SwitchFraction: 0.25, Switches: []int{sw}, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if out2.FailedSwitches != want+1 {
		t.Errorf("explicit+fraction failed %d, want %d", out2.FailedSwitches, want+1)
	}
}

func TestBurstIsPodScoped(t *testing.T) {
	f, err := fattree.New(8)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Fail(f.Net, Scenario{BurstPods: 1, BurstLinkFraction: 0.5, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if out.FailedLinks == 0 {
		t.Fatal("burst failed no links")
	}
	// Every freed port must sit on a switch in (or adjacent to) exactly
	// one pod: collect the pods of freed pod-resident switches.
	pods := make(map[int]bool)
	for v, tags := range out.Freed {
		if len(tags) == 0 {
			continue
		}
		if p := out.Net.Nodes[v].Pod; p >= 0 {
			pods[p] = true
		}
	}
	if len(pods) != 1 {
		t.Errorf("burst damage touches pods %v, want exactly one", pods)
	}
	if _, err := Fail(f.Net, Scenario{BurstPods: 100, BurstLinkFraction: 0.5}); err == nil {
		t.Error("burst across more pods than exist accepted")
	}
}

func TestConverterFailurePinsLinks(t *testing.T) {
	nw := globalRandomFlatTree(t, 8)
	out, err := Fail(nw, Scenario{ConverterFraction: 0.5, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if out.PinnedLinks == 0 {
		t.Fatal("no links pinned")
	}
	if len(out.Net.Links) != len(nw.Links) {
		t.Errorf("converter failure removed links: %d -> %d", len(nw.Links), len(out.Net.Links))
	}
	for id, pinned := range out.Pinned {
		if !pinned {
			continue
		}
		if tag := out.Net.Links[id].Tag; tag != topo.TagConverter && tag != topo.TagSide {
			t.Errorf("pinned link %d has tag %v", id, tag)
		}
	}
	// Pinned links must survive a recovery pass untouched.
	rec, rep, err := Recover(out, RecoverOptions{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if rep.FreedPorts != 0 {
		t.Errorf("pinning alone freed %d ports", rep.FreedPorts)
	}
	if len(rec.Links) != len(out.Net.Links) {
		t.Errorf("recovery changed a failure-free network: %d -> %d links", len(out.Net.Links), len(rec.Links))
	}
}

func TestRecoverImprovesDegradedRandomGraph(t *testing.T) {
	nw := globalRandomFlatTree(t, 8)
	out, err := Fail(nw, Scenario{LinkFraction: 0.2, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	before, err := Analyze(out.Net)
	if err != nil {
		t.Fatal(err)
	}
	rec, rep, err := Recover(out, RecoverOptions{Seed: 22})
	if err != nil {
		t.Fatal(err)
	}
	after, err := Analyze(rec)
	if err != nil {
		t.Fatal(err)
	}
	if rep.AddedLinks == 0 {
		t.Fatal("recovery added no links")
	}
	if after.SwitchLinks <= before.SwitchLinks {
		t.Errorf("recovery did not add capacity: %d -> %d links", before.SwitchLinks, after.SwitchLinks)
	}
	if after.APL >= before.APL {
		t.Errorf("recovery did not shorten paths: APL %.3f -> %.3f", before.APL, after.APL)
	}
	if after.LargestComponentFrac < before.LargestComponentFrac {
		t.Errorf("recovery shrank the largest component: %.3f -> %.3f",
			before.LargestComponentFrac, after.LargestComponentFrac)
	}
	// Port budgets must stay respected in the rebuilt network (Builder
	// panics otherwise, but assert the accounting explicitly).
	for _, n := range rec.Nodes {
		if used := rec.PortsUsed(n.ID); used > n.Ports {
			t.Errorf("node %d uses %d of %d ports", n.ID, used, n.Ports)
		}
	}
}

func TestRecoverDeterministic(t *testing.T) {
	nw := globalRandomFlatTree(t, 8)
	wiring := func() string {
		out, err := Fail(nw, Scenario{LinkFraction: 0.15, SwitchFraction: 0.05, Seed: 33})
		if err != nil {
			t.Fatal(err)
		}
		rec, _, err := Recover(out, RecoverOptions{Seed: 34})
		if err != nil {
			t.Fatal(err)
		}
		s := ""
		for _, l := range rec.Links {
			s += fmt.Sprintf("%d-%d:%d;", l.A, l.B, l.Tag)
		}
		return s
	}
	if w1, w2 := wiring(), wiring(); w1 != w2 {
		t.Error("same seeds produced different recovery wiring")
	}
}

func TestRecoverRewirableNoneIsNoOp(t *testing.T) {
	f, err := fattree.New(8)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Fail(f.Net, Scenario{LinkFraction: 0.2, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	rec, rep, err := Recover(out, RecoverOptions{Seed: 22, Rewirable: RewirableNone})
	if err != nil {
		t.Fatal(err)
	}
	if rep.FreedPorts != 0 || rep.AddedLinks != 0 || rep.BrokenLinks != 0 {
		t.Errorf("static topology recovered anyway: %+v", rep)
	}
	if len(rec.Links) != len(out.Net.Links) {
		t.Errorf("no-op recovery changed the link count")
	}
	// A fat-tree's links are all TagClos, so even the default policy
	// finds nothing to rewire — the §5 asymmetry.
	_, rep2, err := Recover(out, RecoverOptions{Seed: 22})
	if err != nil {
		t.Fatal(err)
	}
	if rep2.AddedLinks != 0 {
		t.Errorf("default policy rewired a fat-tree: %+v", rep2)
	}
}
