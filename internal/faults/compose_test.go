package faults

import (
	"testing"

	"flattree/internal/topo"
)

// TestComposeEqualsFailOnFreshNetwork: composing onto an undamaged outcome
// is exactly Fail.
func TestComposeEqualsFailOnFreshNetwork(t *testing.T) {
	nw := globalRandomFlatTree(t, 6)
	sc := Scenario{LinkFraction: 0.1, Seed: 5}
	direct, err := Fail(nw, sc)
	if err != nil {
		t.Fatal(err)
	}
	composed, err := Compose(&Outcome{Net: nw}, sc)
	if err != nil {
		t.Fatal(err)
	}
	if direct.Net.N() != composed.Net.N() || len(direct.Net.Links) != len(composed.Net.Links) {
		t.Fatalf("compose(%d nodes, %d links) != fail(%d nodes, %d links)",
			composed.Net.N(), len(composed.Net.Links), direct.Net.N(), len(direct.Net.Links))
	}
	if direct.FailedLinks != composed.FailedLinks || direct.FailedSwitches != composed.FailedSwitches {
		t.Errorf("damage counts differ: fail=%d/%d compose=%d/%d",
			direct.FailedSwitches, direct.FailedLinks, composed.FailedSwitches, composed.FailedLinks)
	}
}

// TestComposeAccumulatesDamage: a second episode composed onto the first
// sees the already-degraded network, accumulates the damage counters, and
// carries the first episode's freed ports forward on surviving switches.
func TestComposeAccumulatesDamage(t *testing.T) {
	nw := globalRandomFlatTree(t, 6)
	first, err := Fail(nw, Scenario{LinkFraction: 0.1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if first.FailedLinks == 0 {
		t.Fatal("first episode failed no links; test needs damage")
	}
	freedBefore := 0
	for _, tags := range first.Freed {
		freedBefore += len(tags)
	}
	if freedBefore == 0 {
		t.Fatal("first episode freed no ports")
	}

	second, err := Compose(first, Scenario{LinkFraction: 0.1, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if second.FailedLinks <= first.FailedLinks {
		t.Errorf("FailedLinks did not accumulate: %d -> %d", first.FailedLinks, second.FailedLinks)
	}
	if len(second.Net.Links) >= len(first.Net.Links) {
		t.Errorf("links did not drop: %d -> %d", len(first.Net.Links), len(second.Net.Links))
	}
	freedAfter := 0
	for _, tags := range second.Freed {
		freedAfter += len(tags)
	}
	if freedAfter <= freedBefore {
		t.Errorf("freed ports did not carry forward and grow: %d -> %d", freedBefore, freedAfter)
	}
	// No switches died, so node IDs are stable and the carried tags must
	// lead each node's list.
	for v, tags := range first.Freed {
		if len(tags) == 0 {
			continue
		}
		got := second.Freed[v]
		if len(got) < len(tags) {
			t.Fatalf("node %d lost carried freed ports: had %v, now %v", v, tags, got)
		}
		for i, tag := range tags {
			if got[i] != tag {
				t.Fatalf("node %d carried tags reordered: had %v, now %v", v, tags, got)
			}
		}
	}
}

// TestComposeCarriesPinsAcrossEpisodes: links pinned by a converter death
// in episode 1 stay pinned after episode 2 rebuilds the network, and a
// pinned link that dies frees no ports.
func TestComposeCarriesPinsAcrossEpisodes(t *testing.T) {
	nw := globalRandomFlatTree(t, 6)
	first, err := Fail(nw, Scenario{ConverterFraction: 0.5, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if first.PinnedLinks == 0 {
		t.Fatal("no links pinned; test needs a dead converter block")
	}

	// Collect the endpoint pairs of pinned links so they can be found in
	// the recomposed network (IDs shift when switches die).
	type pair struct{ a, b int }
	key := func(n *topo.Network, a, b int) pair {
		ka := pair{n.Nodes[a].Pod, n.Nodes[a].Index}
		kb := pair{n.Nodes[b].Pod, n.Nodes[b].Index}
		if kb.a < ka.a || (kb.a == ka.a && kb.b < ka.b) {
			ka, kb = kb, ka
		}
		return pair{ka.a*1_000_000 + ka.b, kb.a*1_000_000 + kb.b}
	}
	pinnedPairs := make(map[pair]bool)
	for id, pin := range first.Pinned {
		if pin {
			l := first.Net.Links[id]
			pinnedPairs[key(first.Net, l.A, l.B)] = true
		}
	}

	second, err := Compose(first, Scenario{SwitchFraction: 0.1, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	survivingPinned := 0
	for id, pin := range second.Pinned {
		if !pin {
			continue
		}
		survivingPinned++
		l := second.Net.Links[id]
		if !pinnedPairs[key(second.Net, l.A, l.B)] {
			t.Errorf("link %d pinned in episode 2 was not pinned in episode 1", id)
		}
	}
	if survivingPinned == 0 {
		t.Error("no pinned link survived episode 2; pins were dropped")
	}
	if second.PinnedLinks != survivingPinned {
		t.Errorf("PinnedLinks = %d, counted %d", second.PinnedLinks, survivingPinned)
	}

	// A pinned link that is killed must not free its ports: fail every
	// link, then check no freed tag belongs to a pinned pair.
	third, err := Compose(first, Scenario{LinkFraction: 0.99, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	freed := 0
	for _, tags := range third.Freed {
		freed += len(tags)
	}
	// Every unpinned dead switch-switch link frees two ports; pinned dead
	// links free none, so the total must be strictly less than twice the
	// number of dead links.
	if newDead := third.FailedLinks - first.FailedLinks; freed >= 2*newDead {
		t.Errorf("freed %d ports for %d dead links; pinned deaths must strand their ports", freed, newDead)
	}
}

// TestComposeValidatesBookkeeping: malformed outcomes are rejected rather
// than silently misindexed.
func TestComposeValidatesBookkeeping(t *testing.T) {
	nw := globalRandomFlatTree(t, 4)
	if _, err := Compose(&Outcome{Net: nw, Pinned: make([]bool, 1)}, Scenario{}); err == nil {
		t.Error("short Pinned slice accepted")
	}
	if _, err := Compose(&Outcome{Net: nw, Freed: make([][]topo.LinkTag, 1)}, Scenario{}); err == nil {
		t.Error("short Freed slice accepted")
	}
	if _, err := Compose(&Outcome{Net: nw}, Scenario{LinkFraction: -1}); err == nil {
		t.Error("invalid scenario accepted")
	}
}

// TestComposeDeterministic: the same episode chain replays byte-identically
// from its seeds.
func TestComposeDeterministic(t *testing.T) {
	nw := globalRandomFlatTree(t, 6)
	chain := func() *Outcome {
		out, err := Fail(nw, Scenario{LinkFraction: 0.1, ConverterFraction: 0.3, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		out, err = Compose(out, Scenario{BurstPods: 1, BurstLinkFraction: 0.4, Seed: 8})
		if err != nil {
			t.Fatal(err)
		}
		out, err = Compose(out, Scenario{SwitchFraction: 0.1, Seed: 9})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	a, b := chain(), chain()
	if a.Net.N() != b.Net.N() || len(a.Net.Links) != len(b.Net.Links) ||
		a.FailedLinks != b.FailedLinks || a.FailedSwitches != b.FailedSwitches ||
		a.PinnedLinks != b.PinnedLinks {
		t.Fatalf("chain not deterministic: %+v vs %+v", a, b)
	}
	for i := range a.Net.Links {
		la, lb := a.Net.Links[i], b.Net.Links[i]
		if la.A != lb.A || la.B != lb.B || la.Tag != lb.Tag {
			t.Fatalf("link %d differs: %+v vs %+v", i, la, lb)
		}
	}
}
