// Package faults injects equipment failures into constructed networks and
// measures the degradation, supporting the robustness analysis that §5 of
// the flat-tree paper motivates ("self-recovery of the topology from
// failures"): how gracefully each topology's path length and throughput
// degrade as links or switches fail, and how much a flat-tree recovers by
// rewiring its surviving converter-attached ports after a failure.
//
// The failure model is layered: uniform random link failures, uniform
// random and explicit switch failures, pod-scoped correlated bursts, and
// converter failures. A dead converter does not take its links down — it
// pins them to the current wiring, so the block keeps carrying traffic but
// can no longer convert, which means recovery must not rewire those ports.
package faults

import (
	"fmt"
	"sort"

	"flattree/internal/graph"
	"flattree/internal/topo"
)

// Scenario selects equipment to fail. All random draws are driven by Seed;
// the same scenario applied to the same network always fails the same
// equipment.
type Scenario struct {
	// LinkFraction fails this fraction of switch-switch links, chosen
	// uniformly at random (server access links never fail here; a failed
	// access link is equivalent to removing the server).
	LinkFraction float64
	// SwitchFraction fails this fraction of switches, chosen uniformly at
	// random across all switch kinds. Validation mirrors LinkFraction:
	// the value must be in [0,1).
	SwitchFraction float64
	// Switches fails these specific switch IDs outright (all their links
	// go down; hosted servers become unreachable and are removed).
	// Duplicate IDs are rejected: a duplicate would silently double-book
	// the same switch against the caller's intended failure count.
	Switches []int
	// BurstPods applies a correlated burst to this many randomly chosen
	// pods: in each, BurstLinkFraction of the switch-switch links with an
	// endpoint in the pod fail together (a shared power feed or top-level
	// patch panel going down).
	BurstPods int
	// BurstLinkFraction is the fraction of each burst pod's links that
	// fail. Must be in [0,1); ignored when BurstPods is zero.
	BurstLinkFraction float64
	// ConverterFraction kills this fraction of converter blocks. A block
	// is the set of converter-created effective links (TagConverter /
	// TagSide) anchored in one pod; a dead block's surviving links are
	// pinned — still forwarding, but frozen in the current wiring and
	// unavailable to Recover.
	ConverterFraction float64
	// Seed drives every random choice above.
	Seed uint64
}

func (sc Scenario) validate() error {
	// A fixed-order slice, not a map literal: the first offending field
	// decides the error message, so iteration order must be deterministic
	// (this was flatlint's first real maporder catch).
	for _, fr := range []struct {
		name string
		f    float64
	}{
		{"link", sc.LinkFraction}, {"switch", sc.SwitchFraction},
		{"burst link", sc.BurstLinkFraction}, {"converter", sc.ConverterFraction},
	} {
		if fr.f < 0 || fr.f >= 1 {
			return fmt.Errorf("faults: %s fraction %g out of [0,1)", fr.name, fr.f)
		}
	}
	if sc.BurstPods < 0 {
		return fmt.Errorf("faults: negative burst pod count %d", sc.BurstPods)
	}
	return nil
}

// Outcome is the result of applying a Scenario: the degraded network plus
// the bookkeeping Recover needs to rewire around the damage.
type Outcome struct {
	// Net is the degraded network. Node IDs are remapped (failed switches
	// and their servers disappear); Pod and Index are preserved.
	Net *topo.Network
	// Pinned, indexed by Net link ID, marks links frozen by a dead
	// converter: they survive and carry traffic but must not be broken
	// by recovery swaps.
	Pinned []bool
	// Freed, indexed by Net node ID, lists the tags of the links each
	// surviving switch lost. Each entry is one physical port freed by the
	// failure; Recover turns the rewirable ones into new random links.
	Freed [][]topo.LinkTag
	// FailedSwitches, FailedLinks, PinnedLinks count the damage:
	// switches removed, switch-switch links removed (not counting links
	// that died with a failed switch), and surviving links pinned by dead
	// converters.
	FailedSwitches, FailedLinks, PinnedLinks int
}

// Fail applies the scenario's failures and returns the degraded network
// with recovery bookkeeping. The draws are ordered: explicit switches,
// then the random switch fraction, then pod bursts, then uniform link
// failures, then converter blocks — so adding a later stage to a scenario
// never changes what an earlier stage fails.
func Fail(nw *topo.Network, sc Scenario) (*Outcome, error) {
	return Compose(&Outcome{Net: nw}, sc)
}

// Compose applies a new failure episode on top of an already-degraded
// Outcome, as a long-horizon soak needs when faults arrive as a stream:
// the previous episode's bookkeeping is carried forward instead of being
// recomputed from an undamaged network. Specifically:
//
//   - links pinned by earlier converter deaths stay pinned in the new
//     outcome (remapped to the rebuilt network's link IDs);
//   - freed ports recorded on surviving switches stay freed (a repair may
//     not have consumed them yet), and the new episode's freed ports are
//     appended after them;
//   - a dead link that was pinned frees no ports — the converter that
//     would re-aim them is itself dead, so the ports are dead metal;
//   - damage counters accumulate across episodes.
//
// prev is not modified. A fresh network is the degenerate case: Fail is
// exactly Compose onto an Outcome with no prior damage.
func Compose(prev *Outcome, sc Scenario) (*Outcome, error) {
	if err := sc.validate(); err != nil {
		return nil, err
	}
	nw := prev.Net
	if prev.Pinned != nil && len(prev.Pinned) != len(nw.Links) {
		return nil, fmt.Errorf("faults: outcome has %d pinned flags for %d links", len(prev.Pinned), len(nw.Links))
	}
	if prev.Freed != nil && len(prev.Freed) != nw.N() {
		return nil, fmt.Errorf("faults: outcome has %d freed entries for %d nodes", len(prev.Freed), nw.N())
	}
	prevPinned := func(id int) bool { return prev.Pinned != nil && prev.Pinned[id] }
	failedSwitch := make(map[int]bool, len(sc.Switches))
	for _, s := range sc.Switches {
		if s < 0 || s >= nw.N() || !nw.Nodes[s].Kind.IsSwitch() {
			return nil, fmt.Errorf("faults: node %d is not a switch", s)
		}
		if failedSwitch[s] {
			return nil, fmt.Errorf("faults: switch %d listed twice in Scenario.Switches", s)
		}
		failedSwitch[s] = true
	}
	rng := graph.NewRNG(sc.Seed)

	// Random switch fraction, drawn over all switches in ID order,
	// skipping the explicitly failed ones.
	if sc.SwitchFraction > 0 {
		switches := nw.Switches()
		numFail := int(sc.SwitchFraction * float64(len(switches)))
		for _, pi := range rng.Perm(len(switches)) {
			if numFail == 0 {
				break
			}
			if s := switches[pi]; !failedSwitch[s] {
				failedSwitch[s] = true
				numFail--
			}
		}
	}

	// Switch-switch link pool, and the pod each link is anchored in (the
	// first endpoint with a pod; -1 for pure core links).
	var ssLinks []int
	linkPod := make(map[int]int)
	for _, l := range nw.Links {
		if !nw.Nodes[l.A].Kind.IsSwitch() || !nw.Nodes[l.B].Kind.IsSwitch() {
			continue
		}
		ssLinks = append(ssLinks, l.ID)
		pod := nw.Nodes[l.A].Pod
		if pod < 0 {
			pod = nw.Nodes[l.B].Pod
		}
		linkPod[l.ID] = pod
	}
	failedLink := make(map[int]bool)

	// Pod-scoped bursts.
	if sc.BurstPods > 0 {
		var pods []int
		seen := make(map[int]bool)
		for _, s := range nw.Switches() {
			if p := nw.Nodes[s].Pod; p >= 0 && !seen[p] {
				seen[p] = true
				pods = append(pods, p)
			}
		}
		sort.Ints(pods)
		if sc.BurstPods > len(pods) {
			return nil, fmt.Errorf("faults: burst wants %d pods, network has %d", sc.BurstPods, len(pods))
		}
		perm := rng.Perm(len(pods))
		for bi := 0; bi < sc.BurstPods; bi++ {
			pod := pods[perm[bi]]
			var pool []int
			for _, id := range ssLinks {
				if linkPod[id] == pod && !failedLink[id] {
					pool = append(pool, id)
				}
			}
			numFail := int(sc.BurstLinkFraction * float64(len(pool)))
			pperm := rng.Perm(len(pool))
			for i := 0; i < numFail; i++ {
				failedLink[pool[pperm[i]]] = true
			}
		}
	}

	// Uniform link failures on top, skipping links already down.
	if sc.LinkFraction > 0 {
		numFail := int(sc.LinkFraction * float64(len(ssLinks)))
		for _, pi := range rng.Perm(len(ssLinks)) {
			if numFail == 0 {
				break
			}
			if id := ssLinks[pi]; !failedLink[id] {
				failedLink[id] = true
				numFail--
			}
		}
	}

	// Converter blocks: converter-created links grouped by anchor pod.
	pinnedOld := make(map[int]bool)
	if sc.ConverterFraction > 0 {
		var blocks []int
		members := make(map[int][]int)
		for _, l := range nw.Links {
			if l.Tag != topo.TagConverter && l.Tag != topo.TagSide {
				continue
			}
			pod := linkPod[l.ID]
			if members[pod] == nil {
				blocks = append(blocks, pod)
			}
			members[pod] = append(members[pod], l.ID)
		}
		sort.Ints(blocks)
		numDead := int(sc.ConverterFraction * float64(len(blocks)))
		perm := rng.Perm(len(blocks))
		for i := 0; i < numDead; i++ {
			for _, id := range members[blocks[perm[i]]] {
				pinnedOld[id] = true
			}
		}
	}

	// Rebuild. Node IDs shift because failed switches and their servers
	// disappear; Index and Pod are preserved.
	b := topo.NewBuilder(nw.Name + "+faults")
	remap := make([]int, nw.N())
	for i := range remap {
		remap[i] = -1
	}
	for _, n := range nw.Nodes {
		if failedSwitch[n.ID] {
			continue
		}
		if n.Kind == topo.Server {
			host := nw.HostSwitch(n.ID)
			if host >= 0 && failedSwitch[host] {
				continue
			}
		}
		remap[n.ID] = b.AddNode(n.Kind, n.Pod, n.Index, n.Ports)
	}
	out := &Outcome{
		Freed:          make([][]topo.LinkTag, b.NumNodes()),
		FailedSwitches: prev.FailedSwitches + len(failedSwitch),
		FailedLinks:    prev.FailedLinks,
	}
	// Unconsumed freed ports from earlier episodes ride along on their
	// surviving switches, ahead of this episode's ports.
	if prev.Freed != nil {
		for v, tags := range prev.Freed {
			if remap[v] >= 0 && len(tags) > 0 {
				out.Freed[remap[v]] = append([]topo.LinkTag(nil), tags...)
			}
		}
	}
	var pinnedNew []bool
	for _, l := range nw.Links {
		a, bb := remap[l.A], remap[l.B]
		dead := failedLink[l.ID] || a < 0 || bb < 0
		if !dead {
			b.AddLink(a, bb, l.Tag)
			pin := pinnedOld[l.ID] || prevPinned(l.ID)
			pinnedNew = append(pinnedNew, pin)
			if pin {
				out.PinnedLinks++
			}
			continue
		}
		if !nw.Nodes[l.A].Kind.IsSwitch() || !nw.Nodes[l.B].Kind.IsSwitch() {
			continue
		}
		if failedLink[l.ID] && a >= 0 && bb >= 0 {
			out.FailedLinks++
		}
		if prevPinned(l.ID) || pinnedOld[l.ID] {
			// The converter that would re-aim these ports is dead; a
			// pinned link's death strands its ports instead of freeing
			// them.
			continue
		}
		// Each surviving endpoint gains a freed port.
		if a >= 0 {
			out.Freed[a] = append(out.Freed[a], l.Tag)
		}
		if bb >= 0 {
			out.Freed[bb] = append(out.Freed[bb], l.Tag)
		}
	}
	out.Net = b.Build()
	out.Pinned = pinnedNew
	return out, nil
}

// Degrade returns a copy of the network with the scenario's failures
// applied. Servers hosted by failed switches are removed along with the
// switch. The result may be disconnected; Report quantifies that rather
// than failing. Degrade is Fail without the recovery bookkeeping.
func Degrade(nw *topo.Network, sc Scenario) (*topo.Network, error) {
	out, err := Fail(nw, sc)
	if err != nil {
		return nil, err
	}
	return out.Net, nil
}
