// Package faults injects equipment failures into constructed networks and
// measures the degradation, supporting the robustness analysis that §5 of
// the flat-tree paper motivates ("self-recovery of the topology from
// failures"): how gracefully each topology's path length and throughput
// degrade as links or switches fail, and how much a flat-tree recovers by
// converting modes after a failure.
package faults

import (
	"fmt"

	"flattree/internal/graph"
	"flattree/internal/topo"
)

// Scenario selects equipment to fail.
type Scenario struct {
	// LinkFraction fails this fraction of switch-switch links, chosen
	// uniformly at random (server access links never fail here; a failed
	// access link is equivalent to removing the server).
	LinkFraction float64
	// Switches fails these specific switch IDs outright (all their links
	// go down; hosted servers become unreachable and are removed).
	Switches []int
	// Seed drives the random link choice.
	Seed uint64
}

// Degrade returns a copy of the network with the scenario's failures
// applied. Servers hosted by failed switches are removed along with the
// switch. The result may be disconnected; Report quantifies that rather
// than failing.
func Degrade(nw *topo.Network, sc Scenario) (*topo.Network, error) {
	if sc.LinkFraction < 0 || sc.LinkFraction >= 1 {
		return nil, fmt.Errorf("faults: link fraction %g out of [0,1)", sc.LinkFraction)
	}
	failedSwitch := make(map[int]bool, len(sc.Switches))
	for _, s := range sc.Switches {
		if s < 0 || s >= nw.N() || !nw.Nodes[s].Kind.IsSwitch() {
			return nil, fmt.Errorf("faults: node %d is not a switch", s)
		}
		failedSwitch[s] = true
	}

	// Pick failed switch-switch links.
	var ssLinks []int
	for _, l := range nw.Links {
		if nw.Nodes[l.A].Kind.IsSwitch() && nw.Nodes[l.B].Kind.IsSwitch() {
			ssLinks = append(ssLinks, l.ID)
		}
	}
	numFail := int(sc.LinkFraction * float64(len(ssLinks)))
	failedLink := make(map[int]bool, numFail)
	rng := graph.NewRNG(sc.Seed)
	perm := rng.Perm(len(ssLinks))
	for i := 0; i < numFail; i++ {
		failedLink[ssLinks[perm[i]]] = true
	}

	// Rebuild. Node IDs shift because failed switches and their servers
	// disappear; Index and Pod are preserved.
	b := topo.NewBuilder(nw.Name + "+faults")
	remap := make([]int, nw.N())
	for i := range remap {
		remap[i] = -1
	}
	for _, n := range nw.Nodes {
		if failedSwitch[n.ID] {
			continue
		}
		if n.Kind == topo.Server {
			host := nw.HostSwitch(n.ID)
			if host >= 0 && failedSwitch[host] {
				continue
			}
		}
		remap[n.ID] = b.AddNode(n.Kind, n.Pod, n.Index, n.Ports)
	}
	for _, l := range nw.Links {
		if failedLink[l.ID] || remap[l.A] < 0 || remap[l.B] < 0 {
			continue
		}
		b.AddLink(remap[l.A], remap[l.B], l.Tag)
	}
	return b.Build(), nil
}

// Report quantifies a degraded network.
type Report struct {
	// Servers surviving and total switch-switch links remaining.
	Servers, SwitchLinks int
	// Connected reports whether all surviving servers can still reach
	// each other.
	Connected bool
	// LargestComponentFrac is the fraction of surviving servers in the
	// largest connected component.
	LargestComponentFrac float64
	// APL is the average path length over server pairs in the largest
	// component (NaN if fewer than 2 servers survive connected).
	APL float64
}

// Analyze computes a degradation report.
func Analyze(nw *topo.Network) (Report, error) {
	r := Report{Servers: len(nw.Servers())}
	for _, l := range nw.Links {
		if nw.Nodes[l.A].Kind.IsSwitch() && nw.Nodes[l.B].Kind.IsSwitch() {
			r.SwitchLinks++
		}
	}
	if r.Servers == 0 {
		return r, nil
	}

	// Component analysis over the full node graph.
	g := nw.Graph()
	comp := make([]int32, g.N())
	for i := range comp {
		comp[i] = -1
	}
	queue := make([]int32, g.N())
	numComp := int32(0)
	for v := 0; v < g.N(); v++ {
		if comp[v] >= 0 || g.Degree(v) == 0 {
			continue
		}
		comp[v] = numComp
		queue[0] = int32(v)
		head, tail := 0, 1
		for head < tail {
			u := queue[head]
			head++
			for _, h := range g.Neighbors(int(u)) {
				if comp[h.Peer] < 0 {
					comp[h.Peer] = numComp
					queue[tail] = h.Peer
					tail++
				}
			}
		}
		numComp++
	}
	serversPerComp := make(map[int32]int)
	for _, sv := range nw.Servers() {
		serversPerComp[comp[sv]]++
	}
	best, bestComp := 0, int32(-1)
	for cpt, cnt := range serversPerComp {
		if cnt > best {
			best, bestComp = cnt, cpt
		}
	}
	r.LargestComponentFrac = float64(best) / float64(r.Servers)
	r.Connected = len(serversPerComp) == 1 && best == r.Servers

	// APL inside the largest component.
	if best < 2 {
		return r, nil
	}
	var hostSwitches []int
	counts := make(map[int]int64)
	for _, sv := range nw.Servers() {
		if comp[sv] != bestComp {
			continue
		}
		sw := nw.HostSwitch(sv)
		if counts[sw] == 0 {
			hostSwitches = append(hostSwitches, sw)
		}
		counts[sw]++
	}
	dist := make([]int32, g.N())
	var sum, pairs float64
	for _, s := range hostSwitches {
		g.BFSInto(s, dist, queue)
		cs := counts[s]
		same := cs * (cs - 1) / 2
		sum += float64(same) * 2
		pairs += float64(same)
		for _, t := range hostSwitches {
			if t <= s {
				continue
			}
			if dist[t] < 0 {
				return r, fmt.Errorf("faults: component analysis inconsistent")
			}
			cnt := cs * counts[t]
			sum += float64(cnt) * float64(int(dist[t])+2)
			pairs += float64(cnt)
		}
	}
	if pairs > 0 {
		r.APL = sum / pairs
	}
	return r, nil
}
