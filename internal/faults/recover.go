package faults

import (
	"flattree/internal/graph"
	"flattree/internal/topo"
)

// DefaultRewirable is the recovery policy for convertible topologies:
// converter-created effective links (TagConverter, TagSide) and random
// links (TagRandom) can be torn down and re-aimed, because the underlying
// port sits behind a converter or was placed by a randomized construction
// in the first place. Original Clos wiring (TagClos) is fixed cabling and
// stays put.
func DefaultRewirable(t topo.LinkTag) bool {
	return t == topo.TagConverter || t == topo.TagSide || t == topo.TagRandom
}

// RewirableNone is the recovery policy for static topologies such as the
// fat-tree: no link can be rewired, so Recover is a no-op. Comparing this
// against DefaultRewirable on the same failures is exactly the §5
// self-recovery argument for convertibility.
func RewirableNone(topo.LinkTag) bool { return false }

// RecoverOptions configures a recovery pass.
type RecoverOptions struct {
	// Seed drives the randomized rewiring. The same (Outcome, Seed)
	// always produces the same recovered network.
	Seed uint64
	// Rewirable decides, by tag, which freed ports may be re-aimed and
	// which surviving links a recovery swap may break. Nil means
	// DefaultRewirable.
	Rewirable func(topo.LinkTag) bool
}

// RecoverReport quantifies what a recovery pass did.
type RecoverReport struct {
	// FreedPorts is how many rewirable ports the failure left behind on
	// surviving switches.
	FreedPorts int
	// AddedLinks and BrokenLinks count the new random links wired in and
	// the surviving links the edge swaps consumed while doing so.
	AddedLinks, BrokenLinks int
	// Added lists each new link's endpoint node IDs (in the degraded
	// network's numbering, which the recovered network shares). An online
	// repair driver needs these to schedule the rewiring pod by pod.
	Added [][2]int
	// BrokenIDs lists the degraded-network link IDs the swaps consumed,
	// in the same order the swaps happened.
	BrokenIDs []int
	// Leftover is the number of freed ports recovery could not consume.
	Leftover int
}

// Recover rewires the ports that a failure freed on surviving switches,
// using the same randomized edge-swap machinery that builds Jellyfish
// graphs (graph.AugmentRandom): freed rewirable ports are joined pairwise,
// and when the process gets stuck an existing rewirable, unpinned
// switch-switch link is broken to splice a stranded port in. New links are
// tagged TagRandom. The input Outcome is not modified; the returned
// network is a rebuilt copy with identical node IDs.
//
// This models §5 of the flat-tree paper: after equipment failure the
// converter fabric re-aims its surviving ports to patch the topology,
// something a fixed-cable Clos cannot do (pass RewirableNone to model
// that).
func Recover(out *Outcome, opt RecoverOptions) (*topo.Network, RecoverReport, error) {
	nw := out.Net
	rewirable := opt.Rewirable
	if rewirable == nil {
		rewirable = DefaultRewirable
	}
	var rep RecoverReport
	free := make([]int, nw.N())
	for v, tags := range out.Freed {
		if !nw.Nodes[v].Kind.IsSwitch() {
			continue
		}
		for _, t := range tags {
			if rewirable(t) {
				free[v]++
				rep.FreedPorts++
			}
		}
	}
	if rep.FreedPorts < 2 {
		rep.Leftover = rep.FreedPorts
		return nw, rep, nil
	}

	canBreak := func(id int) bool {
		l := nw.Links[id]
		return nw.Nodes[l.A].Kind.IsSwitch() && nw.Nodes[l.B].Kind.IsSwitch() &&
			!out.Pinned[id] && rewirable(l.Tag)
	}
	// Link IDs and graph edge indices coincide (Builder.Build adds graph
	// edges in link order), so AugmentRandom's edge bookkeeping maps
	// straight back to links.
	g := nw.Graph().Clone()
	res, err := graph.AugmentRandom(g, free, canBreak, graph.NewRNG(opt.Seed))
	if err != nil {
		return nil, rep, err
	}
	rep.AddedLinks = len(res.Added)
	rep.BrokenLinks = len(res.Broken)
	rep.Leftover = res.Leftover
	rep.Added = make([][2]int, len(res.Added))
	for i, e := range res.Added {
		rep.Added[i] = [2]int{int(e.A), int(e.B)}
	}
	rep.BrokenIDs = append([]int(nil), res.Broken...)

	broken := make(map[int]bool, len(res.Broken))
	for _, id := range res.Broken {
		broken[id] = true
	}
	b := topo.NewBuilder(nw.Name + "+recovered")
	for _, n := range nw.Nodes {
		b.AddNode(n.Kind, n.Pod, n.Index, n.Ports)
	}
	for _, l := range nw.Links {
		if broken[l.ID] {
			continue
		}
		b.AddLink(l.A, l.B, l.Tag)
	}
	for _, e := range res.Added {
		b.AddLink(int(e.A), int(e.B), topo.TagRandom)
	}
	return b.Build(), rep, nil
}
