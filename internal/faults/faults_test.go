package faults

import (
	"math"
	"testing"
	"testing/quick"

	"flattree/internal/core"
	"flattree/internal/fattree"
	"flattree/internal/metrics"
)

func TestNoFaultsIsIdentity(t *testing.T) {
	f, err := fattree.New(6)
	if err != nil {
		t.Fatal(err)
	}
	d, err := Degrade(f.Net, Scenario{})
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Links) != len(f.Net.Links) || d.N() != f.Net.N() {
		t.Errorf("identity degrade changed the network: %d links vs %d", len(d.Links), len(f.Net.Links))
	}
	r, err := Analyze(d)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Connected || r.LargestComponentFrac != 1 {
		t.Errorf("report = %+v", r)
	}
	apl, err := metrics.AveragePathLength(f.Net)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.APL-apl) > 1e-9 {
		t.Errorf("APL %g != metrics %g", r.APL, apl)
	}
}

func TestLinkFailuresDegradeAPL(t *testing.T) {
	f, err := fattree.New(8)
	if err != nil {
		t.Fatal(err)
	}
	base, err := Analyze(f.Net)
	if err != nil {
		t.Fatal(err)
	}
	d, err := Degrade(f.Net, Scenario{LinkFraction: 0.2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	r, err := Analyze(d)
	if err != nil {
		t.Fatal(err)
	}
	if r.SwitchLinks >= base.SwitchLinks {
		t.Errorf("links did not drop: %d -> %d", base.SwitchLinks, r.SwitchLinks)
	}
	want := base.SwitchLinks - int(0.2*float64(base.SwitchLinks))
	if r.SwitchLinks != want {
		t.Errorf("links = %d, want %d", r.SwitchLinks, want)
	}
	if r.LargestComponentFrac > 0 && r.APL < base.APL {
		t.Errorf("APL improved under failures: %g -> %g", base.APL, r.APL)
	}
}

func TestSwitchFailureRemovesServers(t *testing.T) {
	f, err := fattree.New(4)
	if err != nil {
		t.Fatal(err)
	}
	// Fail one edge switch: its k/2=2 servers disappear.
	d, err := Degrade(f.Net, Scenario{Switches: []int{f.Edges[0][0]}})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(d.Servers()); got != 14 {
		t.Errorf("%d servers survive, want 14", got)
	}
	r, err := Analyze(d)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Connected {
		t.Error("fat-tree should survive one edge switch failure")
	}
}

func TestDegradeErrors(t *testing.T) {
	f, err := fattree.New(4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Degrade(f.Net, Scenario{LinkFraction: 1.0}); err == nil {
		t.Error("fraction 1.0 accepted")
	}
	if _, err := Degrade(f.Net, Scenario{Switches: []int{f.ServerIDs[0]}}); err == nil {
		t.Error("failing a server accepted")
	}
	if _, err := Degrade(f.Net, Scenario{Switches: []int{-1}}); err == nil {
		t.Error("bad switch ID accepted")
	}
}

// TestDegradeProperties: for random fractions and seeds, the degraded
// network never gains links or servers, and the largest-component fraction
// is in (0, 1].
func TestDegradeProperties(t *testing.T) {
	f, err := fattree.New(6)
	if err != nil {
		t.Fatal(err)
	}
	base, err := Analyze(f.Net)
	if err != nil {
		t.Fatal(err)
	}
	err = quick.Check(func(seed uint64, fracRaw uint8) bool {
		frac := float64(fracRaw%60) / 100
		d, err := Degrade(f.Net, Scenario{LinkFraction: frac, Seed: seed})
		if err != nil {
			return false
		}
		r, err := Analyze(d)
		if err != nil {
			return false
		}
		return r.SwitchLinks <= base.SwitchLinks &&
			r.Servers == base.Servers &&
			r.LargestComponentFrac > 0 && r.LargestComponentFrac <= 1
	}, &quick.Config{MaxCount: 30})
	if err != nil {
		t.Error(err)
	}
}

// TestFlatTreeSurvivesModerateFailures: in global-random mode, 10% random
// link failures leave the network overwhelmingly connected (random-graph
// robustness, one of the motivations for converting away from Clos).
func TestFlatTreeSurvivesModerateFailures(t *testing.T) {
	ft, err := core.Build(core.Params{K: 8})
	if err != nil {
		t.Fatal(err)
	}
	if err := ft.SetUniformMode(core.ModeGlobalRandom); err != nil {
		t.Fatal(err)
	}
	d, err := Degrade(ft.Net(), Scenario{LinkFraction: 0.1, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	r, err := Analyze(d)
	if err != nil {
		t.Fatal(err)
	}
	if r.LargestComponentFrac < 0.95 {
		t.Errorf("largest component only %.2f of servers", r.LargestComponentFrac)
	}
}
