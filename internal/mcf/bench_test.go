package mcf

import (
	"context"
	"fmt"
	"testing"

	"flattree/internal/fattree"
	"flattree/internal/graph"
)

// BenchmarkFleischer measures the FPTAS on a fat-tree hot-spot instance.
func BenchmarkFleischer(b *testing.B) {
	for _, k := range []int{8, 12} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			ft, err := fattree.New(k)
			if err != nil {
				b.Fatal(err)
			}
			rng := graph.NewRNG(1)
			var comms []Commodity
			hot := ft.ServerIDs[0]
			for i := 0; i < 64; i++ {
				dst := ft.ServerIDs[1+rng.Intn(len(ft.ServerIDs)-1)]
				comms = append(comms, Commodity{Src: hot, Dst: dst, Demand: 1})
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := MaxConcurrentFlow(context.Background(), ft.Net, comms, Options{Epsilon: 0.1}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkExactLP measures the simplex backend on a tiny instance.
func BenchmarkExactLP(b *testing.B) {
	ft, err := fattree.New(4)
	if err != nil {
		b.Fatal(err)
	}
	comms := []Commodity{
		{Src: ft.ServerIDs[0], Dst: ft.ServerIDs[15], Demand: 1},
		{Src: ft.ServerIDs[4], Dst: ft.ServerIDs[11], Demand: 1},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := MaxConcurrentFlowExact(ft.Net, comms); err != nil {
			b.Fatal(err)
		}
	}
}
