// Package mcf solves the maximum concurrent multi-commodity flow problem
// the flat-tree paper uses as its throughput metric (§3.1, citing Leighton
// & Rao): maximize λ such that every commodity (src, dst, demand) can ship
// λ·demand simultaneously over a network whose switch-switch links have one
// unit of capacity each. Per the paper, server access links are relaxed
// (uncapacitated), so commodities are aggregated to host-switch pairs and
// routing is optimal (not restricted to any path system).
//
// Two solvers are provided:
//
//   - MaxConcurrentFlow: the Fleischer/Garg-Könemann FPTAS with a
//     source-grouped shortest-path-tree oracle. This is the workhorse at
//     paper scale (k up to 32: thousands of switches, tens of thousands of
//     aggregated commodities). It reports both a feasible primal λ and an
//     LP-dual upper bound, so every experiment knows its true accuracy.
//   - MaxConcurrentFlowExact: the edge-based LP solved with internal/lp,
//     usable on small instances and used by tests to validate the FPTAS.
package mcf

import (
	"context"
	"fmt"
	"math"
	"slices"
	"sync"
	"time"

	"flattree/internal/graph"
	"flattree/internal/lp"
	"flattree/internal/topo"
)

// Commodity is a demand between two nodes of the network. Src and Dst may
// be servers (aggregated to their host switches) or switches.
type Commodity struct {
	Src, Dst int
	Demand   float64
}

// SSSPKernel selects the shortest-path kernel under the FPTAS oracle. Both
// kernels produce bit-identical results (distances, shortest-path trees,
// and therefore every λ and every table); the choice is purely about speed.
type SSSPKernel int

const (
	// KernelAuto (the default) runs the delta-stepping bucket queue, which
	// itself falls back to the heap per call whenever the edge-length
	// spread leaves its envelope — early, warm-seeded phases ride the
	// buckets, late phases whose lengths have fanned out ride the heap.
	KernelAuto SSSPKernel = iota
	// KernelHeap forces the 4-ary heap everywhere.
	KernelHeap
	// KernelDelta asks for the bucket queue explicitly. Today this is the
	// same dispatch as KernelAuto (the envelope fallback is a correctness
	// requirement — zero-length edges break the frozen-bucket argument —
	// so it cannot be disabled); the name exists so callers can pin the
	// bucket path independently of what auto may later learn to do.
	KernelDelta
)

// ParseSSSPKernel maps the flatsim -sssp flag values to a kernel.
func ParseSSSPKernel(s string) (SSSPKernel, bool) {
	switch s {
	case "auto":
		return KernelAuto, true
	case "heap":
		return KernelHeap, true
	case "delta":
		return KernelDelta, true
	}
	return KernelAuto, false
}

// String returns the flag spelling of k.
func (k SSSPKernel) String() string {
	switch k {
	case KernelHeap:
		return "heap"
	case KernelDelta:
		return "delta"
	}
	return "auto"
}

// Options tunes the approximation.
type Options struct {
	// Epsilon is the FPTAS accuracy parameter (default 0.08). Smaller is
	// more accurate and slower; the reported DualGap tells the truth
	// regardless.
	Epsilon float64
	// MaxPhases bounds the outer loop as a safety valve (default 1<<20).
	MaxPhases int
	// SkipDualBound disables the once-per-phase dual bound computation
	// (roughly halves runtime; UpperBound is then +Inf).
	SkipDualBound bool
	// TimeBudget bounds the solver's wall-clock time (0 means unbounded).
	// On exhaustion the solver degrades gracefully: the flow accumulated
	// so far is scaled down to feasibility and returned as a valid — but
	// possibly well-below-optimal — Lambda, with Approximate set. This is
	// a budget, not a cancellation: use the context to abort outright.
	// A context deadline additionally caps the budget (minus a small
	// safety margin), so a client timeout degrades to an approximate λ
	// rather than erroring — deadline propagation for serving paths.
	TimeBudget time.Duration
	// SSSP selects the shortest-path kernel (default KernelAuto). Results
	// are bit-identical across kernels; only speed differs.
	SSSP SSSPKernel
}

// Result reports a solve.
type Result struct {
	// Lambda is a feasible concurrent throughput: every commodity can ship
	// Lambda × its demand simultaneously.
	Lambda float64
	// UpperBound is an LP-dual certificate: no feasible solution exceeds
	// it. +Inf when not computed.
	UpperBound float64
	// Phases counts *completed* phases: full passes over every source in
	// which each commodity shipped one round of its demand. A solve cut
	// short by TimeBudget or a mid-phase convergence break does not count
	// the partial phase. Dijkstras counts every shortest-path pass the
	// solve ran, including the demand-scaling probe's.
	Phases    int
	Dijkstras int
	// Approximate reports that the solver stopped on a budget (TimeBudget
	// or MaxPhases) before reaching its ε guarantee. Lambda is still
	// feasible, and DualGap still tells the truth about how far off it
	// might be; the flag only says the usual (1-ε)-optimality promise no
	// longer applies.
	Approximate bool
	// WarmStarted reports that the solve was seeded with the previous
	// instance's edge-length function (Solver only). The ε contract is
	// unchanged: Lambda is feasible and DualGap remains a true certificate.
	WarmStarted bool
	// WarmHits and WarmMisses count warm and cold solves over the owning
	// Solver's chain so far, this solve included; both are zero for
	// MaxConcurrentFlow and after Solver.Reset. WarmReject names the gate's
	// rejection reason when this solve ran cold (one of the WarmReject*
	// constants; empty when warm-started or when no warm state was in play).
	WarmHits, WarmMisses int
	WarmReject           string
}

// DualGap returns UpperBound/Lambda - 1, the proven relative optimality
// gap, or +Inf when the bound was not computed.
func (r Result) DualGap() float64 {
	//flatlint:ignore floatcmp Lambda is exactly 0 iff the solver routed nothing
	if math.IsInf(r.UpperBound, 1) || r.Lambda == 0 {
		return math.Inf(1)
	}
	return r.UpperBound/r.Lambda - 1
}

type aggCommodity struct {
	dst    int32
	demand float64
	id     int32
}

// spair is a pre-merge (source, destination, demand) triple.
type spair struct {
	s, t   int32
	demand float64
}

// problem is the aggregated switch-level instance. Its storage is flat
// slices grouped by source (no maps) precisely so a pooled instance can be
// refilled without allocating: experiment sweeps solve thousands of
// same-shaped instances back to back.
type problem struct {
	g       *graph.Graph // switch-level graph
	cap     []float64    // per-edge capacity
	node    []int        // problem node -> network node
	coord   []int64      // problem node -> canonical coordinate (see coordOf)
	srcs    []int32      // commodity sources in ascending order
	srcOff  []int32      // comms offsets per source; len(srcs)+1 entries
	comms   []aggCommodity
	numComm int

	idx   []int32 // scratch: network node -> switch index, -1 for servers
	pairs []spair // scratch: pre-merge triples
}

// commsOf returns the aggregated commodities of the si-th source.
func (p *problem) commsOf(si int) []aggCommodity {
	return p.comms[p.srcOff[si]:p.srcOff[si+1]]
}

// aggregate maps commodities to switch pairs and merges duplicates,
// refilling pr in place. Same-switch commodities are dropped: with
// uncapacitated server links they are satisfiable at any λ and never bind.
//
// Duplicate (src, dst) pairs are merged by a stable sort followed by an
// adjacent sum, so demands accumulate in input order — the same order the
// map-based predecessor of this code used — keeping solves bit-identical.
func aggregate(nw *topo.Network, commodities []Commodity, pr *problem) error {
	pr.node = nw.AppendSwitches(pr.node[:0])
	sw := pr.node
	pr.coord = pr.coord[:0]
	for _, s := range sw {
		pr.coord = append(pr.coord, coordOf(nw.Nodes[s]))
	}
	if cap(pr.idx) < nw.N() {
		pr.idx = make([]int32, nw.N())
	}
	idx := pr.idx[:nw.N()]
	for i := range idx {
		idx[i] = -1
	}
	for i, s := range sw {
		idx[s] = int32(i)
	}
	if pr.g == nil {
		pr.g = graph.New(len(sw))
	} else {
		pr.g.Reset(len(sw))
	}
	pr.cap = pr.cap[:0]
	for _, l := range nw.Links {
		if nw.Nodes[l.A].Kind.IsSwitch() && nw.Nodes[l.B].Kind.IsSwitch() {
			pr.g.AddEdge(int(idx[l.A]), int(idx[l.B]))
			pr.cap = append(pr.cap, 1)
		}
	}
	toSwitch := func(v int) (int32, error) {
		if v < 0 || v >= nw.N() {
			return 0, fmt.Errorf("mcf: node %d out of range", v)
		}
		if nw.Nodes[v].Kind.IsSwitch() {
			return idx[v], nil
		}
		h := nw.HostSwitch(v)
		if h < 0 {
			return 0, fmt.Errorf("mcf: server %d has no host switch", v)
		}
		return idx[h], nil
	}
	pr.pairs = pr.pairs[:0]
	for _, c := range commodities {
		if c.Demand <= 0 {
			return fmt.Errorf("mcf: non-positive demand %g", c.Demand)
		}
		s, err := toSwitch(c.Src)
		if err != nil {
			return err
		}
		t, err := toSwitch(c.Dst)
		if err != nil {
			return err
		}
		if s == t {
			continue
		}
		pr.pairs = append(pr.pairs, spair{s: s, t: t, demand: c.Demand})
	}
	slices.SortStableFunc(pr.pairs, func(a, b spair) int {
		if a.s != b.s {
			return int(a.s) - int(b.s)
		}
		return int(a.t) - int(b.t)
	})
	pr.srcs, pr.srcOff, pr.comms = pr.srcs[:0], pr.srcOff[:0], pr.comms[:0]
	pr.numComm = 0
	for i := 0; i < len(pr.pairs); {
		p := pr.pairs[i]
		d := p.demand
		j := i + 1
		for ; j < len(pr.pairs) && pr.pairs[j].s == p.s && pr.pairs[j].t == p.t; j++ {
			d += pr.pairs[j].demand
		}
		if len(pr.srcs) == 0 || pr.srcs[len(pr.srcs)-1] != p.s {
			pr.srcs = append(pr.srcs, p.s)
			pr.srcOff = append(pr.srcOff, int32(len(pr.comms)))
		}
		pr.comms = append(pr.comms, aggCommodity{dst: p.t, demand: d, id: int32(pr.numComm)})
		pr.numComm++
		i = j
	}
	pr.srcOff = append(pr.srcOff, int32(len(pr.comms)))
	return nil
}

// arena is the per-solve scratch reused across every phase, iteration, and
// the probe pass: one Dijkstra workspace plus dense per-edge, per-commodity,
// and per-destination state with touched stacks. Nothing in the steady-state
// FPTAS loop allocates, and arenas themselves are pooled across solves —
// experiment sweeps run thousands of same-shaped instances back to back, so
// after warm-up a whole solve allocates only its Result.
type arena struct {
	ws      *graph.Workspace
	kern    SSSPKernel // shortest-path kernel for this solve
	req     []float64  // per-edge flow requested this iteration (len M)
	length  []float64  // per-edge FPTAS length function (len M)
	touched []int32    // edges with req != 0
	rem     []float64  // per-destination demand left this phase (len N)
	remID   []int32    // per-destination commodity id for the current source
	active  []int32    // destinations with remaining demand, ascending
	routed  []float64  // per-commodity flow accumulated so far (len numComm)
}

// solveState pairs an aggregated problem with its arena; the two are
// pooled as a unit because the arena's workspace stays bound to the
// problem's (reused) graph.
type solveState struct {
	pr problem
	ar arena
}

var statePool sync.Pool

// getState pops a pooled solve state (or builds an empty one). Pooling
// cannot affect results: aggregate refills every problem slice it reads
// and bind zeroes every arena slice the solver accumulates into, so a
// recycled state is indistinguishable from a fresh one.
func getState() *solveState {
	st, ok := statePool.Get().(*solveState)
	if !ok {
		st = &solveState{}
	}
	return st
}

func putState(st *solveState) { statePool.Put(st) }

// bind sizes the arena for pr, reusing backing arrays whose capacity
// suffices. req, length, and routed are accumulated into with += by the
// solver and must start zero; rem and remID are fully written before each
// read, so stale values there are harmless.
func (ar *arena) bind(pr *problem) {
	n, m := pr.g.N(), pr.g.M()
	if ar.ws == nil {
		ar.ws = pr.g.NewWorkspace()
	} else {
		ar.ws.Rebind(pr.g)
	}
	ar.req = zeroed(ar.req, m)
	ar.length = zeroed(ar.length, m)
	ar.routed = zeroed(ar.routed, pr.numComm)
	ar.rem = resized(ar.rem, n)
	if cap(ar.remID) < n {
		ar.remID = make([]int32, n)
	} else {
		ar.remID = ar.remID[:n]
	}
	if cap(ar.touched) < m {
		ar.touched = make([]int32, 0, m)
	}
	ar.touched = ar.touched[:0]
	ar.active = ar.active[:0]
}

// oracle runs one early-stopped single-source shortest-path pass on the
// solve's selected kernel. The kernels are bit-identical in results, so the
// dispatch can never change a solve — only its speed.
func (ar *arena) oracle(src int32, length []float64, targets []int32) {
	if ar.kern == KernelHeap {
		ar.ws.DijkstraTargets(int(src), length, targets)
	} else {
		ar.ws.DeltaStepTargets(int(src), length, targets)
	}
}

// zeroed returns s resized to n with every element zero, reusing the
// backing array when it is large enough.
func zeroed(s []float64, n int) []float64 {
	s = resized(s, n)
	for i := range s {
		s[i] = 0
	}
	return s
}

// resized returns s with length n, reusing capacity; contents are
// unspecified.
func resized(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

// MaxConcurrentFlow runs the FPTAS. All commodity endpoints must be
// connected; disconnected pairs yield an error.
//
// The context is checked between shortest-path iterations (including the
// demand-scaling probe's): cancellation aborts the solve and returns
// ctx.Err(). Options.TimeBudget instead ends the phase loop early with the
// best feasible λ found so far (flagged Approximate).
//
// Every call solves cold. Repeated solves over near-identical instances
// should hold a Solver, which warm-starts the length function from the
// previous solve.
func MaxConcurrentFlow(ctx context.Context, nw *topo.Network, commodities []Commodity, opt Options) (Result, error) {
	st := getState()
	defer putState(st)
	return st.solve(ctx, nw, commodities, opt, nil)
}

// solve runs one FPTAS solve on st. A non-nil warm is consumed to seed the
// length function (when the gate allows) and refreshed with the final
// lengths on success; any error leaves it invalidated, because an aborted
// solve has no trustworthy length function to hand forward.
//
// A warm solve that "converged" without completing a single phase is redone
// cold: that shape only occurs when the transferred normalizer overshot
// this instance's OPT by orders of magnitude (normalized OPT ≪ 1), which
// quantizes λ to garbage — possibly 0, when the stop condition fired before
// late sources routed anything. The retry costs one cold solve, exactly
// what a conservative gate would have paid anyway, and its Dijkstra count
// carries the wasted warm work so the accounting stays honest.
func (st *solveState) solve(ctx context.Context, nw *topo.Network, commodities []Commodity, opt Options, warm *warmState) (Result, error) {
	res, err := st.fptas(ctx, nw, commodities, opt, warm, false)
	if err == nil && res.WarmStarted && !res.Approximate && res.Phases == 0 {
		wasted := res.Dijkstras
		res, err = st.fptas(ctx, nw, commodities, opt, warm, true)
		if err == nil {
			res.Dijkstras += wasted
		}
	}
	if warm != nil && err != nil {
		warm.valid = false
	}
	return res, err
}

func (st *solveState) fptas(ctx context.Context, nw *topo.Network, commodities []Commodity, opt Options, warm *warmState, forceCold bool) (Result, error) {
	if opt.Epsilon <= 0 {
		opt.Epsilon = 0.08
	}
	if opt.Epsilon >= 0.5 {
		return Result{}, fmt.Errorf("mcf: epsilon %g too large (need < 0.5)", opt.Epsilon)
	}
	if opt.MaxPhases <= 0 {
		opt.MaxPhases = 1 << 20
	}
	pr := &st.pr
	if err := aggregate(nw, commodities, pr); err != nil {
		return Result{}, err
	}
	if pr.numComm == 0 {
		return Result{Lambda: math.Inf(1), UpperBound: math.Inf(1)}, nil
	}

	ar := &st.ar
	ar.bind(pr)
	ar.kern = opt.SSSP
	res := Result{UpperBound: math.Inf(1)}

	eps := opt.Epsilon
	mode := warmNone
	if warm != nil {
		if forceCold {
			res.WarmReject = WarmRejectColdRetry
		} else {
			var reject string
			mode, reject = warm.gate(pr, eps)
			res.WarmReject = reject
		}
		// Fingerprint the commodities before normalization rescales the
		// demands in place; capture promotes it if the solve succeeds.
		warm.snapshot(pr)
	}

	// Demand pre-scaling: the Garg-Könemann phase count is ~OPT·log(m)/ε²
	// *after* normalization, so an instance with tiny OPT (e.g. one hot
	// spot against a whole fabric) would stop after a fraction of a phase,
	// quantizing λ badly and leaving late sources unrouted. A one-sweep
	// shortest-path load probe estimates OPT within the path-stretch
	// factor; scaling demands by it normalizes OPT to Θ(1). A warm start
	// does better: the previous solve's λ estimates this instance's OPT
	// within the (small) topology drift plus the ε gap — no stretch
	// inflation — so normalized OPT lands at ~1 and the phase count drops
	// by the stretch factor. Either normalizer is just a change of units,
	// undone when λ is scaled back at the end, so this affects work and λ
	// quantization granularity, never correctness. A related (not
	// identical) instance's λ is first rescaled by the aggregate-demand
	// ratio: λ·ΣD is roughly the shippable flow, so same-fabric demand
	// redraws track OPT almost exactly and adjacent-k hops are off only by
	// the capacity growth factor — still far tighter than the probe's
	// stretch inflation, and the cold retry in solve catches any
	// pathological overshoot.
	var lambdaHat float64
	switch {
	case mode == warmIdentical && warm.lambda > 0:
		lambdaHat = warm.lambda
	case mode == warmRescaled && warm.lambda > 0 && warm.demand > 0:
		newDem := 0.0
		for i := range pr.comms {
			newDem += pr.comms[i].demand
		}
		lambdaHat = warm.lambda * warm.demand / newDem
	default:
		var err error
		if lambdaHat, err = pr.probeScale(ctx, ar, &res); err != nil {
			return Result{}, err
		}
	}
	for i := range pr.comms {
		pr.comms[i].demand *= lambdaHat
	}

	m := pr.g.M()
	delta := (1 + eps) * math.Pow((1+eps)*float64(m), -1/eps)
	length := ar.length
	sumLC := 0.0 // D(l) = sum_e length_e * cap_e
	if mode != warmNone {
		sumLC = warm.seed(pr, length, delta, eps)
		res.WarmStarted = true
	} else {
		for e := 0; e < m; e++ {
			length[e] = delta / pr.cap[e]
			sumLC += length[e] * pr.cap[e]
		}
	}

	routed := ar.routed
	var deadline time.Time
	if opt.TimeBudget > 0 {
		deadline = time.Now().Add(opt.TimeBudget) //flatlint:ignore clockwall TimeBudget is an explicit wall-clock cap; it bounds work, never the answer for a converged run
	}
	// Deadline propagation: a context deadline also arms (or tightens) the
	// budget deadline, so a client timeout degrades the solve to a valid
	// approximate λ instead of tearing it down mid-phase with a hard
	// error. A margin is reserved ahead of the context deadline so the
	// degrade path wins the race against the ctx.Err() check — shrinking
	// with the remaining time so chained solves under one request deadline
	// each still get a positive budget. (The demand-scaling probe above is
	// context-checked but unbudgeted: a deadline shorter than the probe
	// still surfaces as a context error.)
	if d, ok := ctx.Deadline(); ok {
		//flatlint:ignore clockwall converting the context's wall-clock deadline into a budget deadline; bounds work, never the answer for a converged run
		remaining := time.Until(d)
		margin := remaining / 8
		if margin > 100*time.Millisecond {
			margin = 100 * time.Millisecond
		}
		if margin < 200*time.Microsecond {
			margin = 200 * time.Microsecond
		}
		if cd := d.Add(-margin); deadline.IsZero() || cd.Before(deadline) {
			deadline = cd
		}
	}
	converged := false

phases:
	for phase := 1; phase <= opt.MaxPhases; phase++ {
		dualAlpha := 0.0
		for si, src := range pr.srcs {
			comms := pr.commsOf(si)
			ar.active = ar.active[:0]
			for _, c := range comms {
				ar.rem[c.dst] = c.demand
				ar.remID[c.dst] = c.id
				ar.active = append(ar.active, c.dst)
			}
			firstIteration := true
			for len(ar.active) > 0 {
				if err := ctx.Err(); err != nil {
					return Result{}, err
				}
				//flatlint:ignore clockwall checking the explicit TimeBudget deadline; degrades to best-so-far, never changes a converged result
				if !deadline.IsZero() && time.Now().After(deadline) {
					break phases // budget spent: degrade to best-so-far λ
				}
				if sumLC >= 1 {
					converged = true
					break phases
				}
				// Batched oracle: one pass serves every remaining commodity
				// of the source and stops once all of them have settled.
				// Settled results are bit-identical to a full Dijkstra, so
				// the early stop is pure savings.
				ar.oracle(src, length, ar.active)
				res.Dijkstras++
				dist, prev := ar.ws.Dist, ar.ws.Prev
				if firstIteration && !opt.SkipDualBound {
					for _, c := range comms {
						dualAlpha += c.demand * dist[c.dst]
					}
					firstIteration = false
				}
				// Requested flow per edge if every remaining demand were
				// sent fully along its shortest path. Destinations are
				// walked in ascending order, so the floating-point
				// accumulation order — and hence the solve — is
				// deterministic (the map-based predecessor of this loop
				// was not).
				ar.touched = ar.touched[:0]
				for _, dst := range ar.active {
					if math.IsInf(dist[dst], 1) {
						return Result{}, fmt.Errorf("mcf: commodity %d->%d disconnected",
							pr.node[src], pr.node[dst])
					}
					rem := ar.rem[dst]
					for v := dst; v != src; {
						e := prev[v]
						if ar.req[e] == 0 { //flatlint:ignore floatcmp req is exactly 0 iff the edge is untouched; demands are strictly positive
							ar.touched = append(ar.touched, e)
						}
						ar.req[e] += rem
						v = pr.g.Edge(int(e)).Other(v)
					}
				}
				// Largest uniform fraction that respects per-step capacity.
				alpha := 1.0
				for _, e := range ar.touched {
					if a := pr.cap[e] / ar.req[e]; a < alpha {
						alpha = a
					}
				}
				keep := ar.active[:0]
				for _, dst := range ar.active {
					f := alpha * ar.rem[dst]
					routed[ar.remID[dst]] += f
					if alpha < 1-1e-15 {
						ar.rem[dst] -= f
						keep = append(keep, dst)
					}
				}
				ar.active = keep
				for _, e := range ar.touched {
					sent := alpha * ar.req[e]
					old := length[e]
					length[e] = old * (1 + eps*sent/pr.cap[e])
					sumLC += (length[e] - old) * pr.cap[e]
					ar.req[e] = 0
				}
			}
		}
		// Count the phase only now that every source completed it: a budget
		// or convergence break above leaves the partial phase uncounted.
		res.Phases = phase
		if !opt.SkipDualBound && dualAlpha > 0 {
			// Weak duality: OPT <= D(l)/alpha(l). alpha was measured at
			// phase start; D only grows during the phase, so the
			// end-of-phase sumLC keeps the bound valid (just looser).
			if ub := sumLC / dualAlpha; ub < res.UpperBound {
				res.UpperBound = ub
			}
			// Early termination: the scaled-down flow is feasible at any
			// point, so once the feasible λ is within ε of the dual bound
			// there is nothing left to gain.
			cur := minRouted(pr, routed) / (math.Log((1+eps)/delta) / math.Log(1+eps))
			if cur > 0 && res.UpperBound <= cur*(1+eps) {
				converged = true
				break phases
			}
		}
	}
	res.Approximate = !converged

	// Scale the accumulated flow down to feasibility: an edge's length
	// multiplies by at least (1+eps) every time it carries cap_e total
	// flow, and final lengths are < (1+eps)/cap_e, so dividing by
	// log_{1+eps}((1+eps)/delta) certifies feasibility.
	scale := math.Log((1+eps)/delta) / math.Log(1+eps)
	res.Lambda = minRouted(pr, routed) / scale * lambdaHat
	if !math.IsInf(res.UpperBound, 1) {
		res.UpperBound *= lambdaHat
	}
	if warm != nil {
		warm.capture(pr, length, eps, res.Lambda)
	}
	return res, nil
}

// minRouted returns the minimum routed/demand ratio over all commodities.
func minRouted(pr *problem, routed []float64) float64 {
	lambda := math.Inf(1)
	for _, c := range pr.comms {
		if v := routed[c.id] / c.demand; v < lambda {
			lambda = v
		}
	}
	return lambda
}

// probeScale routes every demand once along unit-hop shortest paths and
// returns 1/(max edge load): a constant-factor estimate of the optimal
// concurrent throughput used only for demand normalization, never for
// results. It borrows the solve arena's workspace and per-edge scratch:
// ar.req doubles as the load accumulator and is handed back zeroed (on
// success; an aborted probe leaves it dirty, which is safe because bind
// re-zeroes it before the next solve), ar.length holds the unit lengths —
// the caller reinitializes it to the FPTAS length function right after the
// probe — and ar.active stages each source's target list.
//
// The context is checked once per source so cancellation stays responsive
// on large instances, and every pass is counted in res.Dijkstras: the probe
// is real solver work and the accounting must say so.
func (p *problem) probeScale(ctx context.Context, ar *arena, res *Result) (float64, error) {
	unit := ar.length
	for i := range unit {
		unit[i] = 1
	}
	load := ar.req
	for si, src := range p.srcs {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		ar.active = ar.active[:0]
		for _, c := range p.commsOf(si) {
			ar.active = append(ar.active, c.dst)
		}
		ar.oracle(src, unit, ar.active)
		res.Dijkstras++
		dist, prev := ar.ws.Dist, ar.ws.Prev
		for _, c := range p.commsOf(si) {
			if math.IsInf(dist[c.dst], 1) {
				continue // surfaced as an error during the main run
			}
			for v := c.dst; v != src; {
				e := prev[v]
				load[e] += c.demand
				v = p.g.Edge(int(e)).Other(v)
			}
		}
	}
	maxLoad := 0.0
	for e := range load {
		if r := load[e] / p.cap[e]; r > maxLoad {
			maxLoad = r
		}
		load[e] = 0
	}
	if maxLoad == 0 { //flatlint:ignore floatcmp exactly 0 iff no edge carries any flow; guards the division below
		return 1, nil
	}
	return 1 / maxLoad, nil
}

// MaxConcurrentFlowExact solves the instance exactly with the edge-based LP
// formulation. Intended for small instances (the variable count is
// 2·edges·commodities + 1); tests use it to validate MaxConcurrentFlow.
func MaxConcurrentFlowExact(nw *topo.Network, commodities []Commodity) (float64, error) {
	pr := &problem{}
	if err := aggregate(nw, commodities, pr); err != nil {
		return 0, err
	}
	if pr.numComm == 0 {
		return math.Inf(1), nil
	}
	n := pr.g.N()
	m := pr.g.M()
	// Variables: f[j][a] for commodity j and directed arc a (arc 2e is
	// A->B of edge e, arc 2e+1 is B->A), then lambda last.
	numVars := pr.numComm*2*m + 1
	lambdaVar := numVars - 1
	fvar := func(j, arc int) int { return j*2*m + arc }

	prob := lp.NewProblem(numVars)
	prob.Maximize()
	prob.SetObjectiveCoef(lambdaVar, 1)

	type cinfo struct {
		src, dst int32
		demand   float64
	}
	comms := make([]cinfo, pr.numComm)
	for si, src := range pr.srcs {
		for _, c := range pr.commsOf(si) {
			comms[c.id] = cinfo{src: src, dst: c.dst, demand: c.demand}
		}
	}

	// Flow conservation: for every commodity j and node v:
	// out(v) - in(v) - lambda*demand_j*(+1 at src, -1 at dst) = 0.
	for j := 0; j < pr.numComm; j++ {
		for v := 0; v < n; v++ {
			coefs := make(map[int]float64)
			for _, h := range pr.g.Neighbors(v) {
				e := int(h.Edge)
				if int32(v) == pr.g.Edge(e).A {
					coefs[fvar(j, 2*e)]++   // out A->B
					coefs[fvar(j, 2*e+1)]-- // in  B->A
				} else {
					coefs[fvar(j, 2*e+1)]++
					coefs[fvar(j, 2*e)]--
				}
			}
			switch int32(v) {
			case comms[j].src:
				coefs[lambdaVar] = -comms[j].demand
			case comms[j].dst:
				coefs[lambdaVar] = comms[j].demand
			}
			prob.AddConstraint(coefs, lp.EQ, 0)
		}
	}
	// Capacity: both directions of an edge, summed over commodities.
	for e := 0; e < m; e++ {
		coefs := make(map[int]float64)
		for j := 0; j < pr.numComm; j++ {
			coefs[fvar(j, 2*e)]++
			coefs[fvar(j, 2*e+1)]++
		}
		prob.AddConstraint(coefs, lp.LE, pr.cap[e])
	}

	sol, err := prob.Solve()
	if err != nil {
		return 0, err
	}
	if sol.Status != lp.Optimal {
		return 0, fmt.Errorf("mcf: exact LP status %s", sol.Status)
	}
	return sol.X[lambdaVar], nil
}
