package mcf

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"

	"flattree/internal/fattree"
)

// TestPhaseBudgetDegradesGracefully cross-checks the budget semantics
// against the exact LP on a small instance (three diameter demands on a
// 6-ring, optimum 2/3): an unbounded solve must meet its epsilon bound
// unflagged, and a phase-truncated solve must be flagged Approximate while
// staying feasible.
func TestPhaseBudgetDegradesGracefully(t *testing.T) {
	ring := ringNetwork(6)
	servers := ring.Servers()
	comms := []Commodity{
		{Src: servers[0], Dst: servers[3], Demand: 1},
		{Src: servers[1], Dst: servers[4], Demand: 1},
		{Src: servers[2], Dst: servers[5], Demand: 1},
	}
	exact, err := MaxConcurrentFlowExact(ring, comms)
	if err != nil {
		t.Fatal(err)
	}
	const eps = 0.05
	full, err := MaxConcurrentFlow(context.Background(), ring, comms, Options{Epsilon: eps})
	if err != nil {
		t.Fatal(err)
	}
	if full.Approximate {
		t.Fatalf("unbounded solve flagged Approximate (phases=%d)", full.Phases)
	}
	if full.Lambda < (1-2*eps)*exact || full.Lambda > exact+1e-9 {
		t.Fatalf("unbounded lambda %g outside epsilon bound of exact %g", full.Lambda, exact)
	}
	if full.Phases < 4 {
		t.Skipf("solver converged in %d phases; no room to truncate", full.Phases)
	}

	// Cut the phase budget well below convergence: the solver must flag
	// the result and still return a feasible (never above exact) lambda.
	cut, err := MaxConcurrentFlow(context.Background(), ring, comms, Options{Epsilon: eps, MaxPhases: full.Phases / 2})
	if err != nil {
		t.Fatal(err)
	}
	if !cut.Approximate {
		t.Errorf("truncated solve (phases=%d of %d) not flagged Approximate", cut.Phases, full.Phases)
	}
	if cut.Lambda > exact+1e-9 {
		t.Errorf("truncated lambda %g exceeds exact optimum %g — infeasible", cut.Lambda, exact)
	}
	if cut.Lambda <= 0 {
		t.Errorf("truncated solve routed nothing (lambda=%g) after %d phases", cut.Lambda, cut.Phases)
	}
	// The dual bound keeps telling the truth on the degraded result.
	if !math.IsInf(cut.UpperBound, 1) && cut.UpperBound < exact-1e-9 {
		t.Errorf("degraded dual bound %g below optimum %g", cut.UpperBound, exact)
	}
}

func TestTimeBudgetStopsSolve(t *testing.T) {
	// A larger instance so one phase cannot finish everything instantly.
	ft, err := fattree.New(8)
	if err != nil {
		t.Fatal(err)
	}
	servers := ft.Net.Servers()
	var comms []Commodity
	for i := 0; i < 32; i++ {
		for j := 0; j < 32; j++ {
			if i != j {
				comms = append(comms, Commodity{Src: servers[i], Dst: servers[j], Demand: 1})
			}
		}
	}
	res, err := MaxConcurrentFlow(context.Background(), ft.Net, comms, Options{Epsilon: 0.02, TimeBudget: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Approximate {
		t.Skip("solve finished inside 1ms; nothing to assert")
	}
	if res.Lambda < 0 {
		t.Errorf("degraded lambda %g negative", res.Lambda)
	}
}

// TestCtxDeadlineDerivesBudget pins deadline propagation: a context
// deadline alone (no TimeBudget) must degrade a long solve to an
// approximate λ rather than surfacing context.DeadlineExceeded — that is
// what lets a serving path turn client timeouts into `~` cells.
func TestCtxDeadlineDerivesBudget(t *testing.T) {
	ft, err := fattree.New(8)
	if err != nil {
		t.Fatal(err)
	}
	servers := ft.Net.Servers()
	var comms []Commodity
	for i := 0; i < 32; i++ {
		for j := 0; j < 32; j++ {
			if i != j {
				comms = append(comms, Commodity{Src: servers[i], Dst: servers[j], Demand: 1})
			}
		}
	}
	// Generous enough for the demand-scaling probe (which is unbudgeted),
	// far too short for the eps=0.02 solve.
	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	res, err := MaxConcurrentFlow(ctx, ft.Net, comms, Options{Epsilon: 0.02})
	if err != nil {
		t.Fatalf("deadline-bounded solve errored instead of degrading: %v", err)
	}
	if !res.Approximate {
		t.Skip("solve converged inside the deadline; nothing to assert")
	}
	if res.Lambda < 0 {
		t.Errorf("degraded lambda %g negative", res.Lambda)
	}
}

func TestCancellationAbortsSolve(t *testing.T) {
	ring := ringNetwork(6)
	servers := ring.Servers()
	comms := []Commodity{{Src: servers[0], Dst: servers[3], Demand: 1}}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := MaxConcurrentFlow(ctx, ring, comms, Options{})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}
