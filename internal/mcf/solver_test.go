package mcf

import (
	"context"
	"math"
	"strings"
	"testing"
	"time"

	"flattree/internal/fattree"
	"flattree/internal/topo"
)

// chordRing builds an n-switch ring with chords (i, i+n/2) for even i, one
// server per switch, optionally omitting one switch-switch link by index.
// Every variant adds its nodes in the identical order, so node ids are
// stable across variants — the same property pure link failures have on
// real networks, and the condition under which a Solver may warm-start.
func chordRing(n, omitLink int) *topo.Network {
	b := topo.NewBuilder("chordring")
	sw := make([]int, n)
	for i := range sw {
		sw[i] = b.AddNode(topo.EdgeSwitch, 0, i, 8)
	}
	link := 0
	add := func(a, c int) {
		if link != omitLink {
			b.AddLink(a, c, topo.TagRandom)
		}
		link++
	}
	for i := 0; i < n; i++ {
		add(sw[i], sw[(i+1)%n])
	}
	for i := 0; i < n/2; i += 2 {
		add(sw[i], sw[i+n/2])
	}
	for i := range sw {
		s := b.AddNode(topo.Server, 0, i, 1)
		b.AddLink(s, sw[i], topo.TagClos)
	}
	return b.Build()
}

// TestSolverWarmMatchesColdWithinEps chains a Solver through a
// failure→repair sequence (full ring+chords, minus a chord, minus a ring
// link, full again) and pins every warm-started solve against both the
// exact LP and a cold solve: λ must stay feasible, within the ε contract of
// optimal, and the dual bound must remain a true certificate.
func TestSolverWarmMatchesColdWithinEps(t *testing.T) {
	const n = 8
	const eps = 0.05
	variants := []int{-1, n, 2, -1} // link index to omit; -1 = intact
	s := NewSolver()
	comms := make([]Commodity, 0, n/2)
	for i := 0; i < n/2; i++ {
		comms = append(comms, Commodity{Src: n + i, Dst: n + i + n/2, Demand: 1})
	}
	for step, omit := range variants {
		nw := chordRing(n, omit)
		servers := nw.Servers()
		cs := make([]Commodity, len(comms))
		for i, c := range comms {
			cs[i] = Commodity{Src: servers[c.Src-n], Dst: servers[c.Dst-n], Demand: c.Demand}
		}
		exact, err := MaxConcurrentFlowExact(nw, cs)
		if err != nil {
			t.Fatal(err)
		}
		cold, err := MaxConcurrentFlow(context.Background(), nw, cs, Options{Epsilon: eps})
		if err != nil {
			t.Fatal(err)
		}
		warm, err := s.Solve(context.Background(), nw, cs, Options{Epsilon: eps})
		if err != nil {
			t.Fatal(err)
		}
		if want := step > 0; warm.WarmStarted != want {
			t.Fatalf("step %d: WarmStarted = %v, want %v", step, warm.WarmStarted, want)
		}
		if warm.Lambda > exact*(1+1e-9) {
			t.Errorf("step %d: warm lambda %g exceeds exact %g — infeasible", step, warm.Lambda, exact)
		}
		if warm.Lambda < (1-3*eps)*exact {
			t.Errorf("step %d: warm lambda %g breaks the ε contract vs exact %g", step, warm.Lambda, exact)
		}
		if warm.UpperBound < exact*(1-1e-9) {
			t.Errorf("step %d: warm dual bound %g below exact %g — certificate broken", step, warm.UpperBound, exact)
		}
		// Warm and cold agree within the combined ε tolerance (both are
		// (1±O(ε)) of the same optimum), and DualGap stays truthful on both.
		if rel := math.Abs(warm.Lambda-cold.Lambda) / cold.Lambda; rel > 3*eps {
			t.Errorf("step %d: warm lambda %g vs cold %g differ by %g > 3ε", step, warm.Lambda, cold.Lambda, rel)
		}
		if !warm.Approximate && warm.DualGap() > 3*eps {
			t.Errorf("step %d: converged warm solve has DualGap %g > 3ε", step, warm.DualGap())
		}
	}
}

// TestSolverWarmStartGate checks the gate's modes: an identical re-solve
// warm-starts with λ transferred directly; a different-size instance of the
// same family warm-starts through the relaxed gate (its switch coordinates
// and commodity sources overlap); an ε change runs cold, because δ and the
// feasibility scale depend on it. The per-chain hit/miss accounting rides
// along.
func TestSolverWarmStartGate(t *testing.T) {
	s := NewSolver()
	solveOn := func(nw *topo.Network, eps float64) Result {
		t.Helper()
		servers := nw.Servers()
		res, err := s.Solve(context.Background(), nw,
			[]Commodity{{Src: servers[0], Dst: servers[1], Demand: 1}}, Options{Epsilon: eps})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	if res := solveOn(ringNetwork(6), 0.1); res.WarmStarted || res.WarmReject != WarmRejectFirstSolve {
		t.Errorf("first solve: WarmStarted %v, WarmReject %q; want cold, %q",
			res.WarmStarted, res.WarmReject, WarmRejectFirstSolve)
	}
	if res := solveOn(ringNetwork(6), 0.1); !res.WarmStarted {
		t.Error("identical re-solve did not warm-start")
	}
	// A larger instance of the same family keeps every captured switch
	// coordinate and the same commodity source, so the relaxed gate
	// warm-starts it — the cross-k path fig7/fig8 columns ride.
	if res := solveOn(ringNetwork(8), 0.1); !res.WarmStarted {
		t.Error("adjacent-size instance did not warm-start through the relaxed gate")
	}
	// Mismatched ε must run cold regardless of overlap.
	res := solveOn(ringNetwork(8), 0.2)
	if res.WarmStarted || res.WarmReject != WarmRejectEpsilon {
		t.Errorf("ε change: WarmStarted %v, WarmReject %q; want cold, %q",
			res.WarmStarted, res.WarmReject, WarmRejectEpsilon)
	}
	if res.WarmHits != 2 || res.WarmMisses != 2 {
		t.Errorf("chain counters = %d/%d hits/misses, want 2/2", res.WarmHits, res.WarmMisses)
	}
	s.Reset()
	if res := solveOn(ringNetwork(8), 0.2); res.WarmStarted || res.WarmHits != 0 || res.WarmMisses != 1 {
		t.Errorf("post-Reset solve: WarmStarted %v, counters %d/%d; want cold, 0/1",
			res.WarmStarted, res.WarmHits, res.WarmMisses)
	}
}

// TestSolverGateCommodityDeltas pins the commodity half of the relaxed
// gate: a changed demand and a re-drawn destination warm-start through the
// demand-delta rescale (their source coordinates overlap fully), while a
// demand set from disjoint sources — a different traffic zone on the same
// fabric, whose λ can be orders of magnitude off this instance's OPT —
// runs cold, and an identical re-solve after the mismatch warm-starts.
func TestSolverGateCommodityDeltas(t *testing.T) {
	s := NewSolver()
	nw := ringNetwork(6)
	servers := nw.Servers()
	solve := func(cs []Commodity) Result {
		t.Helper()
		res, err := s.Solve(context.Background(), nw, cs, Options{Epsilon: 0.1})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	base := []Commodity{{Src: servers[0], Dst: servers[2], Demand: 1}}
	if res := solve(base); res.WarmStarted {
		t.Error("first solve claims WarmStarted")
	}
	if res := solve([]Commodity{{Src: servers[0], Dst: servers[2], Demand: 2}}); !res.WarmStarted {
		t.Error("changed demand did not warm-start — the λ rescale should absorb it")
	}
	if res := solve([]Commodity{{Src: servers[0], Dst: servers[4], Demand: 1}}); !res.WarmStarted {
		t.Error("re-drawn destination from the same source did not warm-start")
	}
	if res := solve([]Commodity{{Src: servers[1], Dst: servers[3], Demand: 1}}); res.WarmStarted || res.WarmReject != WarmRejectOverlap {
		t.Errorf("disjoint-source zone: WarmStarted %v, WarmReject %q; want cold, %q",
			res.WarmStarted, res.WarmReject, WarmRejectOverlap)
	}
	if res := solve([]Commodity{{Src: servers[1], Dst: servers[3], Demand: 1}}); !res.WarmStarted {
		t.Error("identical re-solve after a mismatch did not warm-start")
	}
}

// TestSolverCrossKWarmChain chains one Solver down a fat-tree k column the
// way fig7/fig8 trials do and pins the cross-k seeding path: the k=6 solve
// warm-starts from the k=4 capture (edges map by coordinate), stays within
// the combined ε tolerance of a cold solve, and keeps a truthful dual
// certificate.
func TestSolverCrossKWarmChain(t *testing.T) {
	const eps = 0.1
	s := NewSolver()
	for step, k := range []int{4, 6} {
		ft, err := fattree.New(k)
		if err != nil {
			t.Fatal(err)
		}
		srvs := ft.ServerIDs
		var comms []Commodity
		for i := 0; i < len(srvs)/2; i++ {
			comms = append(comms, Commodity{Src: srvs[i], Dst: srvs[len(srvs)-1-i], Demand: 1})
		}
		warm, err := s.Solve(context.Background(), ft.Net, comms, Options{Epsilon: eps})
		if err != nil {
			t.Fatal(err)
		}
		if want := step > 0; warm.WarmStarted != want {
			t.Fatalf("k=%d: WarmStarted = %v, want %v (reject %q)", k, warm.WarmStarted, want, warm.WarmReject)
		}
		cold, err := MaxConcurrentFlow(context.Background(), ft.Net, comms, Options{Epsilon: eps})
		if err != nil {
			t.Fatal(err)
		}
		if rel := math.Abs(warm.Lambda-cold.Lambda) / cold.Lambda; rel > 3*eps {
			t.Errorf("k=%d: warm λ %g vs cold %g differ by %g > 3ε", k, warm.Lambda, cold.Lambda, rel)
		}
		if warm.Lambda > warm.UpperBound*(1+1e-9) {
			t.Errorf("k=%d: warm λ %g exceeds its own dual bound %g", k, warm.Lambda, warm.UpperBound)
		}
		if !warm.Approximate && warm.DualGap() > 3*eps {
			t.Errorf("k=%d: converged warm solve has DualGap %g > 3ε", k, warm.DualGap())
		}
	}
}

// TestSolverColdRetryOnOvershoot pins the safety net under the relaxed
// gate: a transferred normalizer that overshoots OPT by orders of magnitude
// makes the FPTAS hit its stop condition inside phase 1 with a ruinously
// quantized λ; solve must detect the shape (converged with zero completed
// phases) and redo the solve cold. The sabotaged λ stands in for the
// pathological instance pair the rescale heuristic cannot anticipate.
func TestSolverColdRetryOnOvershoot(t *testing.T) {
	s := NewSolver()
	nw := ringNetwork(6)
	servers := nw.Servers()
	cs := []Commodity{{Src: servers[0], Dst: servers[3], Demand: 1}}
	if _, err := s.Solve(context.Background(), nw, cs, Options{Epsilon: 0.1}); err != nil {
		t.Fatal(err)
	}
	exact, err := MaxConcurrentFlowExact(nw, cs)
	if err != nil {
		t.Fatal(err)
	}
	s.warm.lambda *= 1e9 // sabotage: normalizer now overshoots OPT by 9 orders
	res, err := s.Solve(context.Background(), nw, cs, Options{Epsilon: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if res.WarmStarted || res.WarmReject != WarmRejectColdRetry {
		t.Errorf("overshot solve: WarmStarted %v, WarmReject %q; want cold retry (%q)",
			res.WarmStarted, res.WarmReject, WarmRejectColdRetry)
	}
	if res.Lambda > exact*(1+1e-9) || res.Lambda < (1-3*0.1)*exact {
		t.Errorf("retried λ %g outside ε contract of exact %g", res.Lambda, exact)
	}
}

// TestWarmStatsCounters pins the process-wide observability counters the
// flatsim sweep summary reads: Solver solves land in Hits or Misses with a
// reason, and MaxConcurrentFlow (no warm state in play) counts nowhere.
func TestWarmStatsCounters(t *testing.T) {
	nw := ringNetwork(6)
	servers := nw.Servers()
	cs := []Commodity{{Src: servers[0], Dst: servers[3], Demand: 1}}
	before := ReadWarmStats()
	s := NewSolver()
	for i := 0; i < 3; i++ {
		if _, err := s.Solve(context.Background(), nw, cs, Options{Epsilon: 0.1}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := MaxConcurrentFlow(context.Background(), nw, cs, Options{Epsilon: 0.1}); err != nil {
		t.Fatal(err)
	}
	after := ReadWarmStats()
	if d := after.Hits - before.Hits; d != 2 {
		t.Errorf("Hits grew by %d, want 2", d)
	}
	if d := after.Misses - before.Misses; d != 1 {
		t.Errorf("Misses grew by %d, want 1", d)
	}
	if d := after.FirstSolve - before.FirstSolve; d != 1 {
		t.Errorf("FirstSolve grew by %d, want 1", d)
	}
}

// TestSolverPoolResets pins the pooling contract: a Solver from GetSolver
// never carries a previous work item's warm state, so pooled reuse cannot
// make results depend on goroutine scheduling.
func TestSolverPoolResets(t *testing.T) {
	nw := ringNetwork(6)
	servers := nw.Servers()
	cs := []Commodity{{Src: servers[0], Dst: servers[3], Demand: 1}}
	s := GetSolver()
	if _, err := s.Solve(context.Background(), nw, cs, Options{Epsilon: 0.1}); err != nil {
		t.Fatal(err)
	}
	s.Release()
	s2 := GetSolver()
	defer s2.Release()
	res, err := s2.Solve(context.Background(), nw, cs, Options{Epsilon: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if res.WarmStarted {
		t.Error("pooled Solver leaked warm state across Get/Release")
	}
}

// TestProbeScaleTinyOPT pins the demand pre-scaling path: one hot pair with
// demand 1000 against a fabric quantizes λ to garbage without the probe
// (OPT ~ 1/250), so λ landing within ε of the exact LP is direct evidence
// lambdaHat normalized the instance.
func TestProbeScaleTinyOPT(t *testing.T) {
	ft, err := fattree.New(4)
	if err != nil {
		t.Fatal(err)
	}
	comms := []Commodity{
		{Src: ft.ServerIDs[0], Dst: ft.ServerIDs[15], Demand: 1000},
		{Src: ft.ServerIDs[4], Dst: ft.ServerIDs[11], Demand: 1},
	}
	exact, err := MaxConcurrentFlowExact(ft.Net, comms)
	if err != nil {
		t.Fatal(err)
	}
	const eps = 0.05
	res, err := MaxConcurrentFlow(context.Background(), ft.Net, comms, Options{Epsilon: eps})
	if err != nil {
		t.Fatal(err)
	}
	if res.Lambda > exact*(1+1e-9) || res.Lambda < (1-3*eps)*exact {
		t.Errorf("tiny-OPT lambda %g outside ε contract of exact %g", res.Lambda, exact)
	}
	if res.UpperBound < exact*(1-1e-9) {
		t.Errorf("tiny-OPT dual bound %g below exact %g", res.UpperBound, exact)
	}
}

// TestProbeDisconnectedCommodity: the probe must skip a disconnected
// commodity without crashing, and the main run must surface it as an error.
func TestProbeDisconnectedCommodity(t *testing.T) {
	b := topo.NewBuilder("islands")
	a0 := b.AddNode(topo.EdgeSwitch, 0, 0, 4)
	a1 := b.AddNode(topo.EdgeSwitch, 0, 1, 4)
	b.AddLink(a0, a1, topo.TagClos)
	c0 := b.AddNode(topo.EdgeSwitch, 1, 0, 4)
	c1 := b.AddNode(topo.EdgeSwitch, 1, 1, 4)
	b.AddLink(c0, c1, topo.TagClos)
	sa := b.AddNode(topo.Server, 0, 0, 1)
	sc := b.AddNode(topo.Server, 1, 0, 1)
	b.AddLink(sa, a0, topo.TagClos)
	b.AddLink(sc, c0, topo.TagClos)
	nw := b.Build()
	_, err := MaxConcurrentFlow(context.Background(), nw,
		[]Commodity{{Src: sa, Dst: sc, Demand: 1}}, Options{})
	if err == nil || !strings.Contains(err.Error(), "disconnected") {
		t.Fatalf("err = %v, want disconnected-commodity error", err)
	}
}

// TestPhasesCountsCompletedOnly is the regression test for the
// over-reporting bug: a solve whose TimeBudget expires before the first
// phase completes must report Phases == 0 (and only the probe's Dijkstra
// passes), and a MaxPhases-limited solve reports exactly the phases it
// completed.
func TestPhasesCountsCompletedOnly(t *testing.T) {
	ft, err := fattree.New(4)
	if err != nil {
		t.Fatal(err)
	}
	var comms []Commodity
	for i := 0; i < 8; i++ {
		comms = append(comms, Commodity{Src: ft.ServerIDs[i], Dst: ft.ServerIDs[15-i], Demand: 1})
	}
	// The 1ns budget is already spent when the first iteration checks the
	// deadline (the probe alone takes far longer), so zero phases complete.
	res, err := MaxConcurrentFlow(context.Background(), ft.Net, comms,
		Options{Epsilon: 0.05, TimeBudget: time.Nanosecond})
	if err != nil {
		t.Fatal(err)
	}
	if res.Phases != 0 {
		t.Errorf("budget-exhausted solve reports %d phases, want 0", res.Phases)
	}
	if !res.Approximate {
		t.Error("budget-exhausted solve not flagged Approximate")
	}
	// Exactly one probe pass per distinct source switch ran — this pins the
	// probe-accounting fix too (it used to report 0).
	srcSwitches := map[int]bool{}
	for _, c := range comms {
		srcSwitches[ft.Net.HostSwitch(c.Src)] = true
	}
	if res.Dijkstras != len(srcSwitches) {
		t.Errorf("Dijkstras = %d, want %d probe passes", res.Dijkstras, len(srcSwitches))
	}

	full, err := MaxConcurrentFlow(context.Background(), ft.Net, comms, Options{Epsilon: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if full.Phases < 2 {
		t.Skipf("converged in %d phases; no room to truncate", full.Phases)
	}
	cut, err := MaxConcurrentFlow(context.Background(), ft.Net, comms,
		Options{Epsilon: 0.05, MaxPhases: full.Phases / 2})
	if err != nil {
		t.Fatal(err)
	}
	if cut.Phases != full.Phases/2 {
		t.Errorf("MaxPhases-limited solve reports %d phases, want %d", cut.Phases, full.Phases/2)
	}
	if !cut.Approximate {
		t.Error("MaxPhases-limited solve not flagged Approximate")
	}
}
