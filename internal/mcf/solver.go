package mcf

import (
	"context"
	"math"
	"slices"
	"sync"
	"sync/atomic"

	"flattree/internal/topo"
)

// Solver runs repeated max-concurrent-flow solves while keeping the
// aggregated problem, the solve arena, and the final FPTAS edge-length
// function alive between calls. Consecutive instances warm-start from the
// previous solve in two ways: the previous λ replaces the shortest-path
// probe as the demand normalizer (the Garg-Könemann phase count scales with
// OPT-after-normalization, and the probe over-estimates OPT by its
// path-stretch factor, so the tighter normalizer cuts phases
// proportionally), and the final edge-length function, rescaled back into
// the valid δ band, replaces the flat δ/cap start.
//
// The warm gate admits two instance relations:
//
//   - Identical: same switch coordinate set and same commodity multiset —
//     the failure/repair/dark-window variants experiment drivers produce.
//     The previous λ transfers directly.
//   - Related: anything where at least warmOverlapMin of the demand rides
//     commodities with an endpoint coordinate the previous instance's
//     commodities touched — re-drawn traffic permutations on the same
//     fabric, and adjacent-k instances of the same topology family (edges
//     map across instance sizes by canonical (layer, pod, index) switch
//     coordinates, so a fig7/fig8 column chain warm-starts down the k
//     axis). The previous λ
//     is rescaled by the aggregate-demand ratio before normalizing, which
//     tracks OPT for same-fabric redraws exactly and within the capacity
//     growth factor across k; a mis-normalized start costs phases, never
//     correctness, and a pathological overshoot is caught by a cold retry
//     (see solveState.solve).
//
// Unrelated instances (endpoint overlap below warmOverlapMin, e.g. a
// different traffic zone on the same fabric) and ε changes run cold: a
// zone's λ can be orders of magnitude off the other zone's OPT, and δ and
// the feasibility scale depend on ε.
//
// The warm start never weakens the contract: the seeded lengths are
// rescaled back into the valid δ band (see warmState.seed), the returned
// Lambda is feasible, and UpperBound/DualGap remain true certificates
// recomputed from scratch each phase. Warm-started Lambda can differ from a
// cold solve's within the ε tolerance — never beyond it — so chains of
// warm-started solves are deterministic but not bit-identical to cold
// chains.
//
// A Solver is not safe for concurrent use. For deterministic experiment
// tables, own one Solver per independent work item (so the chain of solves
// it sees is a pure function of the item, not of goroutine scheduling).
type Solver struct {
	st           *solveState
	warm         warmState
	hits, misses int
}

// NewSolver returns an empty Solver whose first Solve runs cold.
func NewSolver() *Solver { return &Solver{st: getState()} }

// Solve runs one FPTAS solve, warm-starting from the previous successful
// Solve on this Solver when the gate allows it (see Result.WarmStarted and
// Result.WarmReject). Semantics otherwise match MaxConcurrentFlow exactly.
func (s *Solver) Solve(ctx context.Context, nw *topo.Network, commodities []Commodity, opt Options) (Result, error) {
	res, err := s.st.solve(ctx, nw, commodities, opt, &s.warm)
	if err != nil {
		return res, err
	}
	if res.WarmStarted {
		s.hits++
		warmCounters[statHit].Add(1)
	} else {
		s.misses++
		warmCounters[statMiss].Add(1)
		if i, ok := rejectStat[res.WarmReject]; ok {
			warmCounters[i].Add(1)
		}
	}
	res.WarmHits, res.WarmMisses = s.hits, s.misses
	return res, nil
}

// Reset drops the warm state and the hit/miss counters so the next Solve
// runs cold; pooled scratch is kept. Call it between unrelated instance
// chains when reusing one Solver for both — in particular when the relaxed
// gate would otherwise bleed one chain's λ into another (e.g. a zone solve
// followed by a joint solve over a superset of its commodities).
func (s *Solver) Reset() {
	s.warm.valid = false
	s.hits, s.misses = 0, 0
}

var solverPool sync.Pool

// GetSolver pops a pooled Solver (or builds one). The returned Solver is
// always Reset: pooled reuse must never leak one work item's warm state
// into another, which would make results depend on goroutine scheduling.
func GetSolver() *Solver {
	s, ok := solverPool.Get().(*Solver)
	if !ok {
		return NewSolver()
	}
	s.Reset()
	return s
}

// Release returns the Solver to the pool. The caller must not use it
// afterwards.
func (s *Solver) Release() { solverPool.Put(s) }

// Result.WarmReject values: why a Solver solve ran cold.
const (
	// WarmRejectFirstSolve: no previous successful solve to start from.
	WarmRejectFirstSolve = "first-solve"
	// WarmRejectEpsilon: ε differs from the captured solve's (δ and the
	// feasibility scale depend on it).
	WarmRejectEpsilon = "epsilon"
	// WarmRejectOverlap: the demand-weighted endpoint-coordinate overlap
	// with the captured commodities is below warmOverlapMin.
	WarmRejectOverlap = "overlap"
	// WarmRejectColdRetry: a warm attempt overshot its normalizer and was
	// redone cold (see solveState.solve).
	WarmRejectColdRetry = "cold-retry"
)

// WarmStats aggregates warm-gate outcomes across every Solver.Solve in the
// process since the last ResetWarmStats. Sweeps read it to print a warm
// rate without threading counters through their drivers; totals are
// deterministic for a fixed work set (per-item chains are
// scheduling-independent, and addition commutes).
type WarmStats struct {
	Hits, Misses int64
	// Miss breakdown by gate-rejection reason.
	FirstSolve, Epsilon, Overlap, ColdRetry int64
}

const (
	statHit = iota
	statMiss
	statFirst
	statEps
	statOverlap
	statRetry
	statCount
)

var warmCounters [statCount]atomic.Int64

var rejectStat = map[string]int{
	WarmRejectFirstSolve: statFirst,
	WarmRejectEpsilon:    statEps,
	WarmRejectOverlap:    statOverlap,
	WarmRejectColdRetry:  statRetry,
}

// ReadWarmStats returns the process-wide warm-gate counters.
func ReadWarmStats() WarmStats {
	return WarmStats{
		Hits:       warmCounters[statHit].Load(),
		Misses:     warmCounters[statMiss].Load(),
		FirstSolve: warmCounters[statFirst].Load(),
		Epsilon:    warmCounters[statEps].Load(),
		Overlap:    warmCounters[statOverlap].Load(),
		ColdRetry:  warmCounters[statRetry].Load(),
	}
}

// ResetWarmStats zeroes the process-wide warm-gate counters.
func ResetWarmStats() {
	for i := range warmCounters {
		warmCounters[i].Store(0)
	}
}

// coordOf packs a node's canonical coordinates — (layer, pod index, index
// within the (layer, pod) group) — into one comparable key. Unlike the raw
// network node id, the coordinate survives renumbering: the same physical
// switch has the same coordinate after a switch failure rebuilds the
// network, and across instance sizes of the same topology family (a
// fat-tree(6) contains every (layer, pod, index) position a fat-tree(4)
// has). Core switches carry Pod == -1; the +1 keeps the packed field
// non-negative.
func coordOf(n topo.Node) int64 {
	return int64(n.Kind)<<60 | int64(n.Pod+1)<<30 | int64(n.Index)
}

// edgeKey names one edge in coordinate terms: the canonical (smaller,
// larger) endpoint coordinate pair, plus an occurrence index to tell
// parallel edges between the same switch pair apart. Both solves enumerate
// their edges in network link order, so the k-th parallel edge of a pair
// maps to the k-th parallel edge of the same pair in the other instance.
type edgeKey struct {
	a, b int64
	occ  int32
}

// warmOverlapMin is the demand-weighted endpoint-coordinate overlap below
// which the relaxed gate refuses to transfer λ. Chains the rescale is built
// for sit far above it (re-drawn permutations on one fabric ≈ 1; adjacent-k
// fat-tree columns ≈ (k/k')³ ≥ 0.3 for one k-step, even when one side of
// the traffic is a single seeded hot spot); disjoint traffic zones on a
// shared fabric sit at 0.
const warmOverlapMin = 0.25

// warmState carries the final FPTAS edge-length function of one solve to
// the next. Lengths are keyed by coordinate edge identity (edgeKey), so
// both failure/repair deltas and adjacent-k instances map cleanly:
// surviving edges inherit their previous length ratio, edges only the new
// instance has seed at the ratio floor 1, and edges it lacks are simply
// never looked up.
type warmState struct {
	valid  bool
	eps    float64
	lambda float64           // previous solve's final Lambda (original demand units)
	demand float64           // previous solve's aggregate demand, pre-normalization
	coord  []int64           // switch index -> coordinate of the captured problem
	lc     []float64         // final length_e · cap_e per captured edge
	minLC  float64           // min over lc; ratios are measured relative to it
	idx    map[edgeKey]int32 // edge identity -> captured edge index
	occ    map[edgeKey]int32 // scratch: per-pair occurrence counter (occ field 0)
	endSet map[int64]bool    // captured commodity endpoint (src and dst) coordinates

	// Captured commodity fingerprint, in the problem's canonical aggregated
	// order: (src, dst) coordinate pairs and the original
	// (pre-normalization) demands. Snapshotted before demand scaling each
	// solve (next*) and promoted on success, because after scaling the
	// in-place demands are in the previous normalizer's units and no longer
	// comparable across solves.
	commS, commT []int64
	commDem      []float64
	nextS, nextT []int64
	nextDem      []float64
}

// edgeCoords returns the canonical endpoint-coordinate pair of problem
// edge e.
func edgeCoords(pr *problem, e int) (int64, int64) {
	ed := pr.g.Edge(e)
	a, b := pr.coord[ed.A], pr.coord[ed.B]
	if a > b {
		a, b = b, a
	}
	return a, b
}

// warmMode is the gate's verdict on one instance pair.
type warmMode int

const (
	warmNone      warmMode = iota // run cold
	warmIdentical                 // same coordinates and commodities: λ transfers directly
	warmRescaled                  // related instance: λ rescales by the aggregate-demand ratio
)

// gate classifies how the captured state may seed a solve of pr at eps,
// returning the mode and — when cold — the Result.WarmReject reason.
func (w *warmState) gate(pr *problem, eps float64) (warmMode, string) {
	if !w.valid {
		return warmNone, WarmRejectFirstSolve
	}
	//flatlint:ignore floatcmp warm reuse requires the identical ε the state was captured under
	if w.eps != eps {
		return warmNone, WarmRejectEpsilon
	}
	if slices.Equal(w.coord, pr.coord) && w.commsMatch(pr) {
		return warmIdentical, ""
	}
	if w.overlap(pr) >= warmOverlapMin {
		return warmRescaled, ""
	}
	return warmNone, WarmRejectOverlap
}

// commsMatch reports whether pr's commodities equal the captured
// fingerprint. Both sides are in the problem's canonical aggregated order
// (sources ascending, destinations ascending within a source, duplicates
// merged), so identical commodity multisets always compare equal
// element-wise regardless of the caller's input order.
func (w *warmState) commsMatch(pr *problem) bool {
	if len(w.commS) != pr.numComm {
		return false
	}
	i := 0
	for si, src := range pr.srcs {
		s := pr.coord[src]
		for _, c := range pr.commsOf(si) {
			if w.commS[i] != s || w.commT[i] != pr.coord[c.dst] {
				return false
			}
			//flatlint:ignore floatcmp demands must match exactly for the captured λ to transfer unrescaled
			if w.commDem[i] != c.demand {
				return false
			}
			i++
		}
	}
	return true
}

// overlap returns the fraction of pr's aggregate demand riding commodities
// with at least one endpoint coordinate the captured commodities touched.
// It is the gate's relatedness measure: cheap (one pass, no pairwise
// matching), demand-weighted so a hot spot dominates the verdict the way it
// dominates OPT, and exactly 0 for disjoint traffic zones. Either endpoint
// counts because broadcast/incast patterns concentrate one side on a single
// seeded hot spot whose coordinate moves between instances while the fanned-
// out side blankets the fabric — the side that carries the structure is the
// one that should vote.
func (w *warmState) overlap(pr *problem) float64 {
	total, hit := 0.0, 0.0
	for si, src := range pr.srcs {
		s := w.endSet[pr.coord[src]]
		for _, c := range pr.commsOf(si) {
			total += c.demand
			if s || w.endSet[pr.coord[c.dst]] {
				hit += c.demand
			}
		}
	}
	if total <= 0 {
		return 0
	}
	return hit / total
}

// snapshot records pr's commodity fingerprint before demand normalization
// mutates the demands in place. capture promotes it on success; a failed
// solve leaves the previous fingerprint in place alongside valid=false.
func (w *warmState) snapshot(pr *problem) {
	w.nextS, w.nextT, w.nextDem = w.nextS[:0], w.nextT[:0], w.nextDem[:0]
	for si, src := range pr.srcs {
		s := pr.coord[src]
		for _, c := range pr.commsOf(si) {
			w.nextS = append(w.nextS, s)
			w.nextT = append(w.nextT, pr.coord[c.dst])
			w.nextDem = append(w.nextDem, c.demand)
		}
	}
}

// capture records the final length function, λ, and commodity fingerprint
// of a successful solve on pr.
func (w *warmState) capture(pr *problem, length []float64, eps, lambda float64) {
	m := pr.g.M()
	w.coord = append(w.coord[:0], pr.coord...)
	w.lc = resized(w.lc, m)
	if w.idx == nil {
		w.idx = make(map[edgeKey]int32, m)
		w.occ = make(map[edgeKey]int32, m)
		w.endSet = make(map[int64]bool)
	} else {
		clear(w.idx)
	}
	clear(w.occ)
	w.minLC = math.Inf(1)
	for e := 0; e < m; e++ {
		a, b := edgeCoords(pr, e)
		cnt := edgeKey{a: a, b: b}
		w.idx[edgeKey{a: a, b: b, occ: w.occ[cnt]}] = int32(e)
		w.occ[cnt]++
		w.lc[e] = length[e] * pr.cap[e]
		if w.lc[e] < w.minLC {
			w.minLC = w.lc[e]
		}
	}
	w.commS, w.nextS = w.nextS, w.commS
	w.commT, w.nextT = w.nextT, w.commT
	w.commDem, w.nextDem = w.nextDem, w.commDem
	clear(w.endSet)
	w.demand = 0
	for i, s := range w.commS {
		w.endSet[s] = true
		w.endSet[w.commT[i]] = true
		w.demand += w.commDem[i]
	}
	w.eps = eps
	w.lambda = lambda
	w.valid = true
}

// seed initializes length from the captured state and returns the resulting
// D(l) = Σ length_e·cap_e. Each edge starts at δ/cap_e times its previous
// length·cap ratio (relative to the previous minimum), clamped into
// [1, ((1+ε)·m)^¼]; edges with no captured counterpart (a repaired link, or
// a position the previous, smaller-k instance did not have) start at the
// floor. δ — and with it the clamp floor δ/cap_e — is always re-derived
// from this instance's m and this solve's demand normalizer, so the
// understatement bound below holds unchanged when the normalizer is the
// rescaled λ of a related instance rather than the identical one's.
//
// Why this is sound: the FPTAS's feasibility certificate divides the
// accumulated flow by log_{1+ε}((1+ε)/δ), which is valid for any start
// lengths ≥ δ/cap_e — raising an edge's start length only shrinks the
// flow it can absorb before the stop condition, never the certificate. The
// clamp at R = ((1+ε)·m)^¼ = ((1+ε)/δ)^(ε/4) bounds the understatement:
// the lost headroom log_{1+ε}(R) is an ε/4 fraction of the full budget, so
// a warm-started λ sits within ~ε/4 of its cold value, one-sidedly low
// (measured on the BENCH_mcf.json sequence workload: ~3% at ε=0.1). The
// dual bound is recomputed from the actual lengths each phase (weak
// duality holds for any positive length function), so DualGap stays
// truthful.
func (w *warmState) seed(pr *problem, length []float64, delta, eps float64) float64 {
	m := pr.g.M()
	rmax := math.Pow((1+eps)*float64(m), 0.25)
	clear(w.occ)
	sumLC := 0.0
	for e := 0; e < m; e++ {
		a, b := edgeCoords(pr, e)
		cnt := edgeKey{a: a, b: b}
		ratio := 1.0
		if j, ok := w.idx[edgeKey{a: a, b: b, occ: w.occ[cnt]}]; ok {
			ratio = w.lc[j] / w.minLC
			if ratio < 1 {
				ratio = 1
			} else if ratio > rmax {
				ratio = rmax
			}
		}
		w.occ[cnt]++
		length[e] = delta / pr.cap[e] * ratio
		sumLC += length[e] * pr.cap[e]
	}
	return sumLC
}
