package mcf

import (
	"context"
	"math"
	"slices"
	"sync"

	"flattree/internal/topo"
)

// Solver runs repeated max-concurrent-flow solves while keeping the
// aggregated problem, the solve arena, and the final FPTAS edge-length
// function alive between calls. When consecutive instances are
// near-identical — the failure/repair/dark-window variants the experiment
// drivers produce, which share stable node identity and the same measured
// commodity set while the link set takes a small delta — the next solve
// warm-starts from the previous one in two ways: the previous λ replaces
// the shortest-path probe as the demand normalizer (the Garg-Könemann
// phase count scales with OPT-after-normalization, and the probe
// over-estimates OPT by its path-stretch factor, so the tighter normalizer
// cuts phases proportionally), and the final edge-length function, rescaled
// back into the valid δ band, replaces the flat δ/cap start.
//
// The warm start never weakens the contract: the seeded lengths are
// rescaled back into the valid δ band (see warmState.seed), the returned
// Lambda is feasible, and UpperBound/DualGap remain true certificates
// recomputed from scratch each phase. Warm-started Lambda can differ from a
// cold solve's within the ε tolerance — never beyond it — so chains of
// warm-started solves are deterministic but not bit-identical to cold
// chains.
//
// A Solver is not safe for concurrent use. For deterministic experiment
// tables, own one Solver per independent work item (so the chain of solves
// it sees is a pure function of the item, not of goroutine scheduling).
type Solver struct {
	st   *solveState
	warm warmState
}

// NewSolver returns an empty Solver whose first Solve runs cold.
func NewSolver() *Solver { return &Solver{st: getState()} }

// Solve runs one FPTAS solve, warm-starting from the previous successful
// Solve on this Solver when the instance allows it (same switch node set,
// same commodity set, same ε; see Result.WarmStarted). Semantics otherwise
// match MaxConcurrentFlow exactly.
func (s *Solver) Solve(ctx context.Context, nw *topo.Network, commodities []Commodity, opt Options) (Result, error) {
	return s.st.solve(ctx, nw, commodities, opt, &s.warm)
}

// Reset drops the warm state so the next Solve runs cold; pooled scratch
// is kept. Call it between unrelated instance chains when reusing one
// Solver for both.
func (s *Solver) Reset() { s.warm.valid = false }

var solverPool sync.Pool

// GetSolver pops a pooled Solver (or builds one). The returned Solver is
// always Reset: pooled reuse must never leak one work item's warm state
// into another, which would make results depend on goroutine scheduling.
func GetSolver() *Solver {
	s, ok := solverPool.Get().(*Solver)
	if !ok {
		return NewSolver()
	}
	s.Reset()
	return s
}

// Release returns the Solver to the pool. The caller must not use it
// afterwards.
func (s *Solver) Release() { solverPool.Put(s) }

// edgeKey names one edge in network-identity terms: the canonical
// (smaller, larger) network-node-id endpoint pair packed into pair, plus an
// occurrence index to tell parallel edges between the same switch pair
// apart. Both solves enumerate their edges in network link order, so the
// k-th parallel edge of a pair maps to the k-th parallel edge of the same
// pair in the other instance.
type edgeKey struct {
	pair int64
	occ  int32
}

// warmState carries the final FPTAS edge-length function of one solve to
// the next. Lengths are keyed by network edge identity (edgeKey), so a
// failure/repair delta maps cleanly: surviving edges inherit their previous
// length ratio, edges the delta added seed at the ratio floor 1, and edges
// it removed are simply never looked up.
type warmState struct {
	valid  bool
	eps    float64
	lambda float64           // previous solve's final Lambda (original demand units)
	node   []int             // switch index -> network node id of the captured problem
	lc     []float64         // final length_e · cap_e per captured edge
	minLC  float64           // min over lc; ratios are measured relative to it
	idx    map[edgeKey]int32 // edge identity -> captured edge index
	occ    map[int64]int32   // scratch: per-pair occurrence counter

	// Captured commodity fingerprint, in the problem's canonical aggregated
	// order: packed (src, dst) network-node pairs and the original
	// (pre-normalization) demands. Snapshotted before demand scaling each
	// solve (nextPair/nextDem) and promoted on success, because after
	// scaling the in-place demands are in the previous normalizer's units
	// and no longer comparable across solves.
	commPair []int64
	commDem  []float64
	nextPair []int64
	nextDem  []float64
}

// pairOf returns the canonical endpoint-pair key of problem edge e.
func pairOf(pr *problem, e int) int64 {
	ed := pr.g.Edge(e)
	a, b := pr.node[ed.A], pr.node[ed.B]
	if a > b {
		a, b = b, a
	}
	return int64(a)<<32 | int64(b)
}

// usable reports whether the captured state may seed a solve of pr at eps:
// it must exist, come from the identical ε (δ and the feasibility scale
// depend on it), describe the same switch node set in the same order —
// which link-only failure/repair deltas preserve, and switch failures
// (which renumber nodes) do not — and carry the identical commodity set.
// The commodity check guards the λ normalizer: λ of an unrelated demand
// set (e.g. a different traffic zone on the same fabric) can be orders of
// magnitude off this instance's OPT, and a mis-normalized instance costs
// exactly that factor in phases. Anything failing the gate falls back to a
// cold start.
func (w *warmState) usable(pr *problem, eps float64) bool {
	//flatlint:ignore floatcmp warm reuse requires the identical ε the state was captured under
	return w.valid && w.eps == eps && slices.Equal(w.node, pr.node) && w.commsMatch(pr)
}

// commsMatch reports whether pr's commodities equal the captured
// fingerprint. Both sides are in the problem's canonical aggregated order
// (sources ascending, destinations ascending within a source, duplicates
// merged), so identical commodity multisets always compare equal
// element-wise regardless of the caller's input order.
func (w *warmState) commsMatch(pr *problem) bool {
	if len(w.commPair) != pr.numComm {
		return false
	}
	i := 0
	for si, src := range pr.srcs {
		s := int64(pr.node[src]) << 32
		for _, c := range pr.commsOf(si) {
			if w.commPair[i] != s|int64(pr.node[c.dst]) {
				return false
			}
			//flatlint:ignore floatcmp demands must match exactly for the captured λ to transfer
			if w.commDem[i] != c.demand {
				return false
			}
			i++
		}
	}
	return true
}

// snapshot records pr's commodity fingerprint before demand normalization
// mutates the demands in place. capture promotes it on success; a failed
// solve leaves the previous fingerprint in place alongside valid=false.
func (w *warmState) snapshot(pr *problem) {
	w.nextPair = w.nextPair[:0]
	w.nextDem = w.nextDem[:0]
	for si, src := range pr.srcs {
		s := int64(pr.node[src]) << 32
		for _, c := range pr.commsOf(si) {
			w.nextPair = append(w.nextPair, s|int64(pr.node[c.dst]))
			w.nextDem = append(w.nextDem, c.demand)
		}
	}
}

// capture records the final length function and λ of a successful solve
// on pr.
func (w *warmState) capture(pr *problem, length []float64, eps, lambda float64) {
	m := pr.g.M()
	w.node = append(w.node[:0], pr.node...)
	w.lc = resized(w.lc, m)
	if w.idx == nil {
		w.idx = make(map[edgeKey]int32, m)
		w.occ = make(map[int64]int32, m)
	} else {
		clear(w.idx)
	}
	clear(w.occ)
	w.minLC = math.Inf(1)
	for e := 0; e < m; e++ {
		pk := pairOf(pr, e)
		w.idx[edgeKey{pair: pk, occ: w.occ[pk]}] = int32(e)
		w.occ[pk]++
		w.lc[e] = length[e] * pr.cap[e]
		if w.lc[e] < w.minLC {
			w.minLC = w.lc[e]
		}
	}
	w.commPair, w.nextPair = w.nextPair, w.commPair
	w.commDem, w.nextDem = w.nextDem, w.commDem
	w.eps = eps
	w.lambda = lambda
	w.valid = true
}

// seed initializes length from the captured state and returns the resulting
// D(l) = Σ length_e·cap_e. Each edge starts at δ/cap_e times its previous
// length·cap ratio (relative to the previous minimum), clamped into
// [1, ((1+ε)·m)^½].
//
// Why this is sound: the FPTAS's feasibility certificate divides the
// accumulated flow by log_{1+ε}((1+ε)/δ), which is valid for any start
// lengths ≥ δ/cap_e — raising an edge's start length only shrinks the
// flow it can absorb before the stop condition, never the certificate. The
// clamp at R = ((1+ε)·m)^¼ = ((1+ε)/δ)^(ε/4) bounds the understatement:
// the lost headroom log_{1+ε}(R) is an ε/4 fraction of the full budget, so
// a warm-started λ sits within ~ε/4 of its cold value, one-sidedly low
// (measured on the BENCH_mcf.json sequence workload: ~3% at ε=0.1). The
// dual bound is recomputed from the actual lengths each phase (weak
// duality holds for any positive length function), so DualGap stays
// truthful.
func (w *warmState) seed(pr *problem, length []float64, delta, eps float64) float64 {
	m := pr.g.M()
	rmax := math.Pow((1+eps)*float64(m), 0.25)
	clear(w.occ)
	sumLC := 0.0
	for e := 0; e < m; e++ {
		pk := pairOf(pr, e)
		ratio := 1.0
		if j, ok := w.idx[edgeKey{pair: pk, occ: w.occ[pk]}]; ok {
			ratio = w.lc[j] / w.minLC
			if ratio < 1 {
				ratio = 1
			} else if ratio > rmax {
				ratio = rmax
			}
		}
		w.occ[pk]++
		length[e] = delta / pr.cap[e] * ratio
		sumLC += length[e] * pr.cap[e]
	}
	return sumLC
}
