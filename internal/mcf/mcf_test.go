package mcf

import (
	"context"
	"math"
	"testing"

	"flattree/internal/fattree"
	"flattree/internal/graph"
	"flattree/internal/topo"
)

// lineNetwork builds sw0 - sw1 - ... - sw(n-1) with one server on each end.
func lineNetwork(n int) *topo.Network {
	b := topo.NewBuilder("line")
	sw := make([]int, n)
	for i := range sw {
		sw[i] = b.AddNode(topo.EdgeSwitch, 0, i, 8)
	}
	for i := 0; i+1 < n; i++ {
		b.AddLink(sw[i], sw[i+1], topo.TagClos)
	}
	s0 := b.AddNode(topo.Server, 0, 0, 1)
	s1 := b.AddNode(topo.Server, 0, 1, 1)
	b.AddLink(s0, sw[0], topo.TagClos)
	b.AddLink(s1, sw[n-1], topo.TagClos)
	return b.Build()
}

func TestSingleCommodityLine(t *testing.T) {
	nw := lineNetwork(4)
	servers := nw.Servers()
	comm := []Commodity{{Src: servers[0], Dst: servers[1], Demand: 2}}
	// Bottleneck capacity 1, demand 2 -> lambda = 0.5 exactly.
	exact, err := MaxConcurrentFlowExact(nw, comm)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(exact-0.5) > 1e-6 {
		t.Errorf("exact = %g, want 0.5", exact)
	}
	res, err := MaxConcurrentFlow(context.Background(), nw, comm, Options{Epsilon: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if res.Lambda > exact+1e-9 {
		t.Errorf("FPTAS lambda %g exceeds optimum %g", res.Lambda, exact)
	}
	if res.Lambda < 0.9*exact {
		t.Errorf("FPTAS lambda %g too far below optimum %g", res.Lambda, exact)
	}
	if res.UpperBound < exact-1e-9 {
		t.Errorf("dual bound %g below optimum %g", res.UpperBound, exact)
	}
}

// ringNetwork: n switches in a cycle, one server each.
func ringNetwork(n int) *topo.Network {
	b := topo.NewBuilder("ring")
	sw := make([]int, n)
	for i := range sw {
		sw[i] = b.AddNode(topo.EdgeSwitch, 0, i, 8)
	}
	for i := 0; i < n; i++ {
		b.AddLink(sw[i], sw[(i+1)%n], topo.TagClos)
	}
	for i := range sw {
		s := b.AddNode(topo.Server, 0, i, 1)
		b.AddLink(s, sw[i], topo.TagClos)
	}
	return b.Build()
}

func TestTwoCommoditiesSharedEdgeExactVsFPTAS(t *testing.T) {
	nw := ringNetwork(6)
	servers := nw.Servers()
	comms := []Commodity{
		{Src: servers[0], Dst: servers[3], Demand: 1},
		{Src: servers[1], Dst: servers[4], Demand: 1},
		{Src: servers[2], Dst: servers[5], Demand: 1},
	}
	exact, err := MaxConcurrentFlowExact(nw, comms)
	if err != nil {
		t.Fatal(err)
	}
	// Three diameter demands on a 6-ring: each can split both ways; total
	// capacity 6, each demand uses 3 hops -> lambda = 6/9 = 2/3.
	if math.Abs(exact-2.0/3) > 1e-6 {
		t.Errorf("exact = %g, want 2/3", exact)
	}
	res, err := MaxConcurrentFlow(context.Background(), nw, comms, Options{Epsilon: 0.03})
	if err != nil {
		t.Fatal(err)
	}
	if res.Lambda > exact+1e-9 || res.Lambda < 0.93*exact {
		t.Errorf("FPTAS lambda = %g, exact = %g", res.Lambda, exact)
	}
	if res.UpperBound < exact-1e-9 {
		t.Errorf("dual bound %g below optimum %g", res.UpperBound, exact)
	}
}

// TestFPTASMatchesExactOnRandomInstances cross-validates the two solvers on
// small random graphs with random commodities.
func TestFPTASMatchesExactOnRandomInstances(t *testing.T) {
	for seed := uint64(0); seed < 6; seed++ {
		rng := graph.NewRNG(seed)
		n := 8
		deg := make([]int, n)
		for i := range deg {
			deg[i] = 3
		}
		g, err := graph.BuildConnected(deg, rng)
		if err != nil {
			t.Fatal(err)
		}
		b := topo.NewBuilder("rand")
		sw := make([]int, n)
		for i := range sw {
			sw[i] = b.AddNode(topo.EdgeSwitch, 0, i, 8)
		}
		for _, e := range g.Edges() {
			b.AddLink(sw[e.A], sw[e.B], topo.TagRandom)
		}
		nw := b.Build()
		var comms []Commodity
		for c := 0; c < 3; c++ {
			s := rng.Intn(n)
			d := rng.Intn(n)
			if s == d {
				continue
			}
			comms = append(comms, Commodity{Src: sw[s], Dst: sw[d], Demand: float64(1 + rng.Intn(3))})
		}
		if len(comms) == 0 {
			continue
		}
		exact, err := MaxConcurrentFlowExact(nw, comms)
		if err != nil {
			t.Fatal(err)
		}
		res, err := MaxConcurrentFlow(context.Background(), nw, comms, Options{Epsilon: 0.02})
		if err != nil {
			t.Fatal(err)
		}
		if res.Lambda > exact*(1+1e-9) {
			t.Errorf("seed %d: FPTAS %g exceeds exact %g", seed, res.Lambda, exact)
		}
		if res.Lambda < exact*0.94 {
			t.Errorf("seed %d: FPTAS %g more than 6%% below exact %g", seed, res.Lambda, exact)
		}
		if res.UpperBound < exact*(1-1e-9) {
			t.Errorf("seed %d: dual %g below exact %g", seed, res.UpperBound, exact)
		}
	}
}

func TestAggregationMergesAndDropsLocal(t *testing.T) {
	nw := lineNetwork(2)
	servers := nw.Servers()
	// Duplicate commodities on the same switch pair must merge; a
	// same-switch commodity must be dropped (uncapacitated server links).
	comms := []Commodity{
		{Src: servers[0], Dst: servers[1], Demand: 1},
		{Src: servers[0], Dst: servers[1], Demand: 1},
	}
	exact, err := MaxConcurrentFlowExact(nw, comms)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(exact-0.5) > 1e-6 {
		t.Errorf("merged demand 2 over capacity 1: exact = %g, want 0.5", exact)
	}
	res, err := MaxConcurrentFlow(context.Background(), nw, []Commodity{{Src: servers[0], Dst: servers[0], Demand: 1}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(res.Lambda, 1) {
		t.Errorf("same-switch-only workload should be unconstrained, got %g", res.Lambda)
	}
}

func TestErrors(t *testing.T) {
	nw := lineNetwork(2)
	servers := nw.Servers()
	if _, err := MaxConcurrentFlow(context.Background(), nw, []Commodity{{Src: servers[0], Dst: servers[1], Demand: -1}}, Options{}); err == nil {
		t.Error("negative demand should error")
	}
	if _, err := MaxConcurrentFlow(context.Background(), nw, []Commodity{{Src: servers[0], Dst: servers[1], Demand: 1}}, Options{Epsilon: 0.7}); err == nil {
		t.Error("epsilon >= 0.5 should error")
	}
	if _, err := MaxConcurrentFlow(context.Background(), nw, []Commodity{{Src: -1, Dst: servers[1], Demand: 1}}, Options{}); err == nil {
		t.Error("bad node should error")
	}
}

// TestFatTreeBisection: all-to-all between two halves of a fat-tree has a
// known structure; sanity check the FPTAS against the exact LP at k=4.
func TestFatTreeK4CrossPodFlow(t *testing.T) {
	ft, err := fattree.New(4)
	if err != nil {
		t.Fatal(err)
	}
	// One commodity per pod pair hot spot.
	comms := []Commodity{
		{Src: ft.ServerIDs[0], Dst: ft.ServerIDs[15], Demand: 1},
		{Src: ft.ServerIDs[4], Dst: ft.ServerIDs[11], Demand: 1},
	}
	exact, err := MaxConcurrentFlowExact(ft.Net, comms)
	if err != nil {
		t.Fatal(err)
	}
	res, err := MaxConcurrentFlow(context.Background(), ft.Net, comms, Options{Epsilon: 0.03})
	if err != nil {
		t.Fatal(err)
	}
	if res.Lambda > exact*(1+1e-9) || res.Lambda < exact*0.9 {
		t.Errorf("FPTAS %g vs exact %g", res.Lambda, exact)
	}
	// Each fat-tree(4) edge switch has 2 uplinks; a single hot-spot pair
	// between distinct edge switches should push at least 2 units.
	if exact < 2-1e-6 {
		t.Errorf("exact = %g, want >= 2", exact)
	}
}

func TestDualGap(t *testing.T) {
	r := Result{Lambda: 1, UpperBound: 1.1}
	if math.Abs(r.DualGap()-0.1) > 1e-12 {
		t.Errorf("DualGap = %g", r.DualGap())
	}
	r2 := Result{Lambda: 1, UpperBound: math.Inf(1)}
	if !math.IsInf(r2.DualGap(), 1) {
		t.Error("DualGap should be +Inf without a bound")
	}
}
