package ctrl

import (
	"context"
	"fmt"
	"net"
	"sync"
	"time"

	"flattree/internal/converter"
)

// Agent is the pod-side endpoint of the control plane: the software model
// of a pod's converter switches. It connects to the controller, accepts
// staged configurations, and flips them atomically on commit — the role a
// converter driver (e.g. an optical switch's software interface, §2.6)
// plays in a real deployment.
type Agent struct {
	pod uint32

	mu      sync.Mutex
	active  map[uint32]converter.Config
	staged  map[uint32]converter.Config
	stagedE uint64
	commits int

	// wmu serializes frame writes: the heartbeat ticker and protocol
	// replies share one connection.
	wmu sync.Mutex

	// ApplyDelay simulates converter switching latency between commit
	// receipt and acknowledgment (the paper notes flat-tree "changes
	// topology infrequently", so converters may be slow and cheap).
	ApplyDelay time.Duration
	// RejectStage makes the agent refuse stages (failure injection for
	// controller tests).
	RejectStage bool
	// HeartbeatInterval is the period between liveness beacons to the
	// controller; zero selects DefaultHeartbeatInterval, negative disables
	// heartbeats (failure injection: the agent looks dead to the monitor).
	HeartbeatInterval time.Duration
}

// DefaultHeartbeatInterval is used when Agent.HeartbeatInterval is zero.
const DefaultHeartbeatInterval = 25 * time.Millisecond

// NewAgent creates an agent for a pod with its converters' current
// configurations (converter ID -> config).
func NewAgent(pod int, initial []ConfigEntry) *Agent {
	a := &Agent{pod: uint32(pod), active: make(map[uint32]converter.Config, len(initial))}
	for _, e := range initial {
		a.active[e.Converter] = e.Config
	}
	return a
}

// Pod returns the agent's pod index.
func (a *Agent) Pod() int { return int(a.pod) }

// Configs snapshots the active converter configurations.
func (a *Agent) Configs() map[uint32]converter.Config {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make(map[uint32]converter.Config, len(a.active))
	for k, v := range a.active {
		out[k] = v
	}
	return out
}

// Commits returns how many epochs this agent has committed.
func (a *Agent) Commits() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.commits
}

// write sends one frame under the agent's write lock so heartbeats and
// protocol replies never interleave on the wire.
func (a *Agent) write(conn net.Conn, t MsgType, payload []byte) error {
	a.wmu.Lock()
	defer a.wmu.Unlock()
	return WriteFrame(conn, t, payload)
}

// Run dials the controller and serves the protocol until the context is
// canceled or the connection drops, sending periodic heartbeats in the
// background. A nil error means the context ended the session.
func (a *Agent) Run(ctx context.Context, addr string) error {
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return err
	}
	defer conn.Close()
	// Cancellation closes the connection, which unblocks ReadFrame.
	defer context.AfterFunc(ctx, func() { conn.Close() })()

	a.mu.Lock()
	n := len(a.active)
	a.mu.Unlock()
	if err := a.write(conn, MsgHello, MarshalHello(Hello{Pod: a.pod, NumConverters: uint32(n)})); err != nil {
		return err
	}

	interval := a.HeartbeatInterval
	if interval == 0 {
		interval = DefaultHeartbeatInterval
	}
	if interval > 0 {
		hctx, cancelHB := context.WithCancel(ctx)
		defer cancelHB()
		go a.heartbeat(hctx, conn, interval)
	}

	for {
		t, payload, err := ReadFrame(conn)
		if err != nil {
			if ctx.Err() != nil {
				return nil
			}
			return err
		}
		if err := a.dispatch(conn, t, payload); err != nil {
			return err
		}
	}
}

// heartbeat sends liveness beacons every interval until the context ends
// or a write fails (the read loop will notice the dead connection itself).
func (a *Agent) heartbeat(ctx context.Context, conn net.Conn, interval time.Duration) {
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
			if err := a.write(conn, MsgHeartbeat, nil); err != nil {
				return
			}
		case <-ctx.Done():
			return
		}
	}
}

func (a *Agent) dispatch(conn net.Conn, t MsgType, payload []byte) error {
	switch t {
	case MsgStage:
		s, err := UnmarshalStage(payload)
		if err != nil {
			return err
		}
		if a.RejectStage {
			return a.write(conn, MsgError, MarshalError(ErrorMsg{
				Epoch: s.Epoch, Pod: a.pod, Text: "stage rejected (injected failure)"}))
		}
		a.mu.Lock()
		for _, e := range s.Entries {
			if _, ok := a.active[e.Converter]; !ok {
				a.mu.Unlock()
				return a.write(conn, MsgError, MarshalError(ErrorMsg{
					Epoch: s.Epoch, Pod: a.pod,
					Text: fmt.Sprintf("converter %d not in pod %d", e.Converter, a.pod)}))
			}
		}
		a.staged = make(map[uint32]converter.Config, len(s.Entries))
		for _, e := range s.Entries {
			a.staged[e.Converter] = e.Config
		}
		a.stagedE = s.Epoch
		a.mu.Unlock()
		return a.write(conn, MsgStaged, MarshalAck(Ack{Epoch: s.Epoch, Pod: a.pod}))

	case MsgCommit:
		cm, err := UnmarshalCommit(payload)
		if err != nil {
			return err
		}
		a.mu.Lock()
		if a.staged == nil || a.stagedE != cm.Epoch {
			a.mu.Unlock()
			return a.write(conn, MsgError, MarshalError(ErrorMsg{
				Epoch: cm.Epoch, Pod: a.pod, Text: "commit for unstaged epoch"}))
		}
		if a.ApplyDelay > 0 {
			a.mu.Unlock()
			time.Sleep(a.ApplyDelay)
			a.mu.Lock()
		}
		for id, cfg := range a.staged {
			a.active[id] = cfg
		}
		a.staged = nil
		a.commits++
		a.mu.Unlock()
		return a.write(conn, MsgCommitted, MarshalAck(Ack{Epoch: cm.Epoch, Pod: a.pod}))

	case MsgAbort:
		cm, err := UnmarshalCommit(payload)
		if err != nil {
			return err
		}
		a.mu.Lock()
		if a.staged != nil && a.stagedE == cm.Epoch {
			a.staged = nil
		}
		a.mu.Unlock()
		return nil

	default:
		return fmt.Errorf("ctrl: agent got unexpected %s", t)
	}
}
