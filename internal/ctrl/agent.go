package ctrl

import (
	"context"
	"fmt"
	"net"
	"sync"
	"time"

	"flattree/internal/converter"
)

// Agent is the pod-side endpoint of the control plane: the software model
// of a pod's converter switches. It connects to the controller, accepts
// staged configurations, and flips them atomically on commit — the role a
// converter driver (e.g. an optical switch's software interface, §2.6)
// plays in a real deployment.
type Agent struct {
	pod uint32

	mu      sync.Mutex
	active  map[uint32]converter.Config
	staged  map[uint32]converter.Config
	stagedE uint64
	commits int

	// ApplyDelay simulates converter switching latency between commit
	// receipt and acknowledgment (the paper notes flat-tree "changes
	// topology infrequently", so converters may be slow and cheap).
	ApplyDelay time.Duration
	// RejectStage makes the agent refuse stages (failure injection for
	// controller tests).
	RejectStage bool
}

// NewAgent creates an agent for a pod with its converters' current
// configurations (converter ID -> config).
func NewAgent(pod int, initial []ConfigEntry) *Agent {
	a := &Agent{pod: uint32(pod), active: make(map[uint32]converter.Config, len(initial))}
	for _, e := range initial {
		a.active[e.Converter] = e.Config
	}
	return a
}

// Pod returns the agent's pod index.
func (a *Agent) Pod() int { return int(a.pod) }

// Configs snapshots the active converter configurations.
func (a *Agent) Configs() map[uint32]converter.Config {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make(map[uint32]converter.Config, len(a.active))
	for k, v := range a.active {
		out[k] = v
	}
	return out
}

// Commits returns how many epochs this agent has committed.
func (a *Agent) Commits() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.commits
}

// Run dials the controller and serves the protocol until the context is
// canceled or the connection drops. A nil error means the context ended
// the session.
func (a *Agent) Run(ctx context.Context, addr string) error {
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return err
	}
	defer conn.Close()
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		select {
		case <-ctx.Done():
			conn.Close() // unblocks ReadFrame
		case <-stop:
		}
	}()

	a.mu.Lock()
	n := len(a.active)
	a.mu.Unlock()
	if err := WriteFrame(conn, MsgHello, MarshalHello(Hello{Pod: a.pod, NumConverters: uint32(n)})); err != nil {
		return err
	}
	for {
		t, payload, err := ReadFrame(conn)
		if err != nil {
			if ctx.Err() != nil {
				return nil
			}
			return err
		}
		if err := a.dispatch(conn, t, payload); err != nil {
			return err
		}
	}
}

func (a *Agent) dispatch(conn net.Conn, t MsgType, payload []byte) error {
	switch t {
	case MsgStage:
		s, err := UnmarshalStage(payload)
		if err != nil {
			return err
		}
		if a.RejectStage {
			return WriteFrame(conn, MsgError, MarshalError(ErrorMsg{
				Epoch: s.Epoch, Pod: a.pod, Text: "stage rejected (injected failure)"}))
		}
		a.mu.Lock()
		for _, e := range s.Entries {
			if _, ok := a.active[e.Converter]; !ok {
				a.mu.Unlock()
				return WriteFrame(conn, MsgError, MarshalError(ErrorMsg{
					Epoch: s.Epoch, Pod: a.pod,
					Text: fmt.Sprintf("converter %d not in pod %d", e.Converter, a.pod)}))
			}
		}
		a.staged = make(map[uint32]converter.Config, len(s.Entries))
		for _, e := range s.Entries {
			a.staged[e.Converter] = e.Config
		}
		a.stagedE = s.Epoch
		a.mu.Unlock()
		return WriteFrame(conn, MsgStaged, MarshalAck(Ack{Epoch: s.Epoch, Pod: a.pod}))

	case MsgCommit:
		cm, err := UnmarshalCommit(payload)
		if err != nil {
			return err
		}
		a.mu.Lock()
		if a.staged == nil || a.stagedE != cm.Epoch {
			a.mu.Unlock()
			return WriteFrame(conn, MsgError, MarshalError(ErrorMsg{
				Epoch: cm.Epoch, Pod: a.pod, Text: "commit for unstaged epoch"}))
		}
		if a.ApplyDelay > 0 {
			a.mu.Unlock()
			time.Sleep(a.ApplyDelay)
			a.mu.Lock()
		}
		for id, cfg := range a.staged {
			a.active[id] = cfg
		}
		a.staged = nil
		a.commits++
		a.mu.Unlock()
		return WriteFrame(conn, MsgCommitted, MarshalAck(Ack{Epoch: cm.Epoch, Pod: a.pod}))

	case MsgAbort:
		cm, err := UnmarshalCommit(payload)
		if err != nil {
			return err
		}
		a.mu.Lock()
		if a.staged != nil && a.stagedE == cm.Epoch {
			a.staged = nil
		}
		a.mu.Unlock()
		return nil

	default:
		return fmt.Errorf("ctrl: agent got unexpected %s", t)
	}
}
