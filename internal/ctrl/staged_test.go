package ctrl

import (
	"context"
	"testing"
	"time"

	"flattree/internal/core"
)

func TestStagedConvertBatches(t *testing.T) {
	k := 8
	c, agents, cleanup := startPlant(t, k)
	defer cleanup()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()

	reports, err := c.StagedConvert(ctx, uniformModes(k, core.ModeGlobalRandom), 2, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 4 {
		t.Fatalf("got %d batch reports, want 4", len(reports))
	}
	for i, r := range reports {
		if !r.Connected {
			t.Errorf("batch %d transition disconnected: %+v", i, r)
		}
	}
	// Four batches, four epochs.
	if c.Epoch() != 4 {
		t.Errorf("epoch = %d, want 4", c.Epoch())
	}
	// Hardware matches the model everywhere.
	want := c.FlatTree().Configs()
	for _, a := range agents {
		for id, cfg := range a.Configs() {
			if want[id] != cfg {
				t.Fatalf("pod %d converter %d: %s != %s", a.Pod(), id, cfg, want[id])
			}
		}
	}
	if c.FlatTree().Mode(7) != core.ModeGlobalRandom {
		t.Error("target mode not reached")
	}
}

// TestStagedConvertRefusesPartition: converting every pod in one batch at
// k=8's default (m, n) would partition the fabric during the switching
// window; with requireConnected the controller must refuse before touching
// any agent.
func TestStagedConvertRefusesPartition(t *testing.T) {
	k := 8
	c, agents, cleanup := startPlant(t, k)
	defer cleanup()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	_, err := c.StagedConvert(ctx, uniformModes(k, core.ModeGlobalRandom), k, true)
	if err == nil {
		t.Fatal("all-at-once staged conversion should be refused")
	}
	if c.Epoch() != 0 {
		t.Errorf("epoch advanced to %d on refused conversion", c.Epoch())
	}
	for _, a := range agents {
		if a.Commits() != 0 {
			t.Errorf("pod %d committed despite refusal", a.Pod())
		}
	}
	// Without the connectivity requirement it proceeds (operator's call).
	if _, err := c.StagedConvert(ctx, uniformModes(k, core.ModeGlobalRandom), k, false); err != nil {
		t.Fatalf("unchecked conversion failed: %v", err)
	}
	if c.FlatTree().Mode(0) != core.ModeGlobalRandom {
		t.Error("conversion did not land")
	}
}

func TestStagedConvertNoChanges(t *testing.T) {
	k := 4
	c, _, cleanup := startPlant(t, k)
	defer cleanup()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	reports, err := c.StagedConvert(ctx, uniformModes(k, core.ModeClos), 2, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 0 {
		t.Errorf("no-op conversion produced %d reports", len(reports))
	}
}
