package ctrl

import (
	"testing"
	"testing/quick"

	"flattree/internal/core"
)

func TestPlanZoneModesBasic(t *testing.T) {
	// k=8: pods hold 16 servers.
	modes, err := PlanZoneModes(8, ZoneRequest{GlobalServers: 40, LocalServers: 17, ClosServers: 16})
	if err != nil {
		t.Fatal(err)
	}
	// 40 -> 3 pods, 17 -> 2 pods, 16 -> 1 pod, 2 leftover Clos.
	want := []core.Mode{
		core.ModeGlobalRandom, core.ModeGlobalRandom, core.ModeGlobalRandom,
		core.ModeLocalRandom, core.ModeLocalRandom,
		core.ModeClos, core.ModeClos, core.ModeClos,
	}
	for i, m := range want {
		if modes[i] != m {
			t.Fatalf("pod %d = %s, want %s (modes %v)", i, modes[i], m, modes)
		}
	}
}

func TestPlanZoneModesErrors(t *testing.T) {
	if _, err := PlanZoneModes(7, ZoneRequest{}); err == nil {
		t.Error("odd k accepted")
	}
	if _, err := PlanZoneModes(8, ZoneRequest{GlobalServers: -1}); err == nil {
		t.Error("negative request accepted")
	}
	if _, err := PlanZoneModes(4, ZoneRequest{GlobalServers: 100}); err == nil {
		t.Error("oversized request accepted")
	}
}

// TestPlanZoneModesProperties: for any feasible request, the plan is
// feasible for SetModes, the global zone is one contiguous run, and zone
// capacities cover the requests.
func TestPlanZoneModesProperties(t *testing.T) {
	const k = 8
	ft, err := core.Build(core.Params{K: k})
	if err != nil {
		t.Fatal(err)
	}
	podSize := k * k / 4
	err = quick.Check(func(gRaw, lRaw, cRaw uint16) bool {
		req := ZoneRequest{
			GlobalServers: int(gRaw) % (3 * podSize),
			LocalServers:  int(lRaw) % (3 * podSize),
			ClosServers:   int(cRaw) % (2 * podSize),
		}
		modes, err := PlanZoneModes(k, req)
		if err != nil {
			return false
		}
		counts := map[core.Mode]int{}
		lastGlobal := -1
		firstNonGlobal := -1
		for p, m := range modes {
			counts[m]++
			if m == core.ModeGlobalRandom {
				lastGlobal = p
			} else if firstNonGlobal < 0 {
				firstNonGlobal = p
			}
		}
		// Contiguity: all global pods precede all non-global pods.
		if lastGlobal >= 0 && firstNonGlobal >= 0 && lastGlobal > firstNonGlobal {
			return false
		}
		if counts[core.ModeGlobalRandom]*podSize < req.GlobalServers ||
			counts[core.ModeLocalRandom]*podSize < req.LocalServers {
			return false
		}
		if err := ft.SetModes(modes); err != nil {
			return false
		}
		return ft.Net().Validate() == nil
	}, &quick.Config{MaxCount: 40})
	if err != nil {
		t.Error(err)
	}
}

// TestZoneOf: placement software sees the right zone per server.
func TestZoneOf(t *testing.T) {
	ft, err := core.Build(core.Params{K: 4})
	if err != nil {
		t.Fatal(err)
	}
	modes, err := PlanZoneModes(4, ZoneRequest{GlobalServers: 4, LocalServers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := ft.SetModes(modes); err != nil {
		t.Fatal(err)
	}
	nw := ft.Net()
	for _, sv := range nw.Servers() {
		zone, err := ZoneOf(ft, sv)
		if err != nil {
			t.Fatal(err)
		}
		if want := modes[nw.Nodes[sv].Pod]; zone != want {
			t.Fatalf("server %d: zone %s, want %s", sv, zone, want)
		}
	}
	if _, err := ZoneOf(ft, -1); err == nil {
		t.Error("bad node accepted")
	}
	if _, err := ZoneOf(ft, ft.Cores[0]); err == nil {
		t.Error("core switch (no pod) accepted")
	}
}
