package ctrl

import (
	"testing"

	"flattree/internal/core"
)

func buildK8(t *testing.T) *core.FlatTree {
	t.Helper()
	ft, err := core.Build(core.Params{K: 8})
	if err != nil {
		t.Fatal(err)
	}
	return ft
}

// serverInPod returns some server homed in the given pod.
func serverInPod(ft *core.FlatTree, pod, i int) int {
	podSize := ft.Params.K * ft.Params.K / 4
	return ft.ServerIDs[pod*podSize+i]
}

func TestAdviseClassifiesWorkloads(t *testing.T) {
	ft := buildK8(t)
	var obs []FlowObservation
	// Pods 0-2: hot-spot traffic crossing pods.
	hot := serverInPod(ft, 0, 0)
	for p := 1; p <= 2; p++ {
		for i := 0; i < 8; i++ {
			obs = append(obs, FlowObservation{Src: hot, Dst: serverInPod(ft, p, i), Bytes: 100})
		}
	}
	// Pods 3-4: small clusters inside each pod.
	for p := 3; p <= 4; p++ {
		for i := 0; i < 8; i++ {
			obs = append(obs, FlowObservation{
				Src: serverInPod(ft, p, i), Dst: serverInPod(ft, p, (i+1)%16), Bytes: 150,
			})
		}
	}
	// Pods 5-7: idle.
	modes, advice, err := Advise(ft, obs, AdviceThresholds{})
	if err != nil {
		t.Fatal(err)
	}
	want := []core.Mode{
		core.ModeGlobalRandom, core.ModeGlobalRandom, core.ModeGlobalRandom,
		core.ModeLocalRandom, core.ModeLocalRandom,
		core.ModeClos, core.ModeClos, core.ModeClos,
	}
	for p, m := range want {
		if modes[p] != m {
			t.Errorf("pod %d: advised %s, want %s (advice %+v)", p, modes[p], m, advice[p])
		}
	}
	// The advice must be applicable.
	if err := ft.SetModes(modes); err != nil {
		t.Fatal(err)
	}
	if err := ft.Net().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestAdviseEmptyObservations(t *testing.T) {
	ft := buildK8(t)
	modes, _, err := Advise(ft, nil, AdviceThresholds{})
	if err != nil {
		t.Fatal(err)
	}
	for p, m := range modes {
		if m != core.ModeClos {
			t.Errorf("idle pod %d advised %s", p, m)
		}
	}
}

func TestAdviseErrors(t *testing.T) {
	ft := buildK8(t)
	if _, _, err := Advise(ft, []FlowObservation{{Src: -1, Dst: 0, Bytes: 1}}, AdviceThresholds{}); err == nil {
		t.Error("bad node accepted")
	}
	if _, _, err := Advise(ft, []FlowObservation{{Src: ft.Cores[0], Dst: ft.ServerIDs[0], Bytes: 1}}, AdviceThresholds{}); err == nil {
		t.Error("podless node accepted")
	}
	if _, _, err := Advise(ft, []FlowObservation{
		{Src: ft.ServerIDs[0], Dst: ft.ServerIDs[1], Bytes: -4},
	}, AdviceThresholds{}); err == nil {
		t.Error("negative bytes accepted")
	}
}

// TestAdviseStableAcrossConversion: advice computed before and after a
// conversion is identical because pod membership is by home pod.
func TestAdviseStableAcrossConversion(t *testing.T) {
	ft := buildK8(t)
	obs := []FlowObservation{
		{Src: serverInPod(ft, 0, 0), Dst: serverInPod(ft, 5, 0), Bytes: 10},
		{Src: serverInPod(ft, 1, 0), Dst: serverInPod(ft, 1, 1), Bytes: 10},
	}
	before, _, err := Advise(ft, obs, AdviceThresholds{})
	if err != nil {
		t.Fatal(err)
	}
	if err := ft.SetUniformMode(core.ModeGlobalRandom); err != nil {
		t.Fatal(err)
	}
	after, _, err := Advise(ft, obs, AdviceThresholds{})
	if err != nil {
		t.Fatal(err)
	}
	for p := range before {
		if before[p] != after[p] {
			t.Errorf("pod %d: advice changed across conversion: %s -> %s", p, before[p], after[p])
		}
	}
}
