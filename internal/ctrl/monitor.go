package ctrl

import (
	"context"
	"fmt"
	"sort"
	"time"
)

// DeadPods returns the pods whose agents have gone silent: every pod that
// ever registered but whose last received message (heartbeat or protocol
// traffic) is older than the deadline. The result is sorted.
//
// A dropped TCP connection alone does not kill a pod — transient network
// blips and agent restarts are expected, and a reconnecting agent
// re-registers. Only the deadline decides death, which also means a
// reconnection within the deadline fully heals the verdict.
func (c *Controller) DeadPods(deadline time.Duration) []int {
	cutoff := time.Now().Add(-deadline) //flatlint:ignore clockwall the death verdict is defined against real elapsed time
	c.mu.Lock()
	defer c.mu.Unlock()
	var dead []int
	for pod, seen := range c.lastSeen {
		if seen.Before(cutoff) {
			dead = append(dead, int(pod))
		}
	}
	sort.Ints(dead)
	return dead
}

// WaitForFailures blocks until every listed pod has been silent for at
// least deadline, or ctx expires. It is the test/driver-side complement of
// DeadPods: after killing a set of agents, waiting here guarantees the
// monitor's verdict is stable before repair planning starts.
func (c *Controller) WaitForFailures(ctx context.Context, pods []int, deadline time.Duration) error {
	period := deadline / 8
	if period < time.Millisecond {
		period = time.Millisecond
	}
	tick := time.NewTicker(period)
	defer tick.Stop()
	for {
		dead := make(map[int]bool)
		for _, p := range c.DeadPods(deadline) {
			dead[p] = true
		}
		missing := 0
		for _, p := range pods {
			if !dead[p] {
				missing++
			}
		}
		if missing == 0 {
			return nil
		}
		select {
		case <-tick.C:
		case <-ctx.Done():
			return fmt.Errorf("ctrl: %w waiting for %d of %d pods to fail", ctx.Err(), missing, len(pods))
		}
	}
}
