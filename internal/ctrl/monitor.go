package ctrl

import (
	"context"
	"fmt"
	"sort"
	"time"
)

// DeadPods returns the pods whose agents have gone silent: every pod that
// ever registered but whose last received message (heartbeat or protocol
// traffic) is older than the deadline. The result is sorted.
//
// A dropped TCP connection alone does not kill a pod — transient network
// blips and agent restarts are expected, and a reconnecting agent
// re-registers. Only the deadline decides death, which also means a
// reconnection within the deadline fully heals the verdict.
func (c *Controller) DeadPods(deadline time.Duration) []int {
	cutoff := time.Now().Add(-deadline) //flatlint:ignore clockwall the death verdict is defined against real elapsed time
	c.mu.Lock()
	defer c.mu.Unlock()
	var dead []int
	for pod, seen := range c.lastSeen {
		if seen.Before(cutoff) {
			dead = append(dead, int(pod))
		}
	}
	sort.Ints(dead)
	return dead
}

// WaitForFailures blocks until every listed pod has been silent for at
// least deadline, or ctx expires. It is the test/driver-side complement of
// DeadPods: after killing a set of agents, waiting here guarantees the
// monitor's verdict is stable before repair planning starts.
//
// The poll period starts at an eighth of the heartbeat deadline and backs
// off exponentially, capped at the deadline itself — a soak loop calling
// this continuously must not spin faster than the verdict can change. On
// success the returned slice is nil; on cancellation it holds the sorted
// pods that were still live, so the caller knows which deaths never
// stabilized.
func (c *Controller) WaitForFailures(ctx context.Context, pods []int, deadline time.Duration) ([]int, error) {
	period := deadline / 8
	if period < time.Millisecond {
		period = time.Millisecond
	}
	for {
		dead := make(map[int]bool)
		for _, p := range c.DeadPods(deadline) {
			dead[p] = true
		}
		var live []int
		for _, p := range pods {
			if !dead[p] {
				live = append(live, p)
			}
		}
		if len(live) == 0 {
			return nil, nil
		}
		select {
		case <-time.After(period):
			if period *= 2; period > deadline {
				period = deadline
			}
		case <-ctx.Done():
			sort.Ints(live)
			return live, fmt.Errorf("ctrl: %w waiting for %d of %d pods to fail", ctx.Err(), len(live), len(pods))
		}
	}
}
