package ctrl

import (
	"context"
	"net"
	"testing"
	"time"

	"flattree/internal/core"
	"flattree/internal/faults"
)

// healPlant is startPlant with per-agent lifecycle control: every agent can
// be killed independently (its context cancelled, which closes its
// connection and stops its heartbeats), and a killed pod can later rejoin
// with a fresh agent.
type healPlant struct {
	t       *testing.T
	c       *Controller
	addr    string
	agentOf []*Agent
	cancels []context.CancelFunc // per-pod cancel for the CURRENT agent
	dones   []chan struct{}      // one per agent ever started
}

func startHealPlant(t *testing.T, k int) *healPlant {
	t.Helper()
	ft, err := core.Build(core.Params{K: k})
	if err != nil {
		t.Fatal(err)
	}
	c := NewController(ft)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go c.Serve(context.Background(), l)
	hp := &healPlant{
		t: t, c: c, addr: l.Addr().String(),
		agentOf: make([]*Agent, k),
		cancels: make([]context.CancelFunc, k),
	}
	for p := 0; p < k; p++ {
		hp.connect(p)
	}
	wctx, wcancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer wcancel()
	if err := c.WaitForAgents(wctx, k); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		for _, cancel := range hp.cancels {
			if cancel != nil {
				cancel()
			}
		}
		c.Close()
		for _, d := range hp.dones {
			<-d
		}
	})
	return hp
}

// connect starts a fresh heartbeating agent for pod p (replacing any prior
// registration server-side).
func (hp *healPlant) connect(p int) *Agent {
	hp.t.Helper()
	a := NewAgent(p, ConfigsForPod(hp.c.FlatTree(), p))
	a.HeartbeatInterval = 5 * time.Millisecond
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		_ = a.Run(ctx, hp.addr)
		close(done)
	}()
	hp.agentOf[p] = a
	hp.cancels[p] = cancel
	hp.dones = append(hp.dones, done)
	return a
}

// kill cancels pod p's current agent: connection closed, heartbeats stop.
func (hp *healPlant) kill(p int) {
	hp.cancels[p]()
	hp.cancels[p] = nil
}

// waitAllAlive polls until no pod is past the heartbeat deadline.
func (hp *healPlant) waitAllAlive(deadline time.Duration) {
	hp.t.Helper()
	stop := time.Now().Add(10 * time.Second)
	for len(hp.c.DeadPods(deadline)) > 0 {
		if time.Now().After(stop) {
			hp.t.Fatalf("pods never came back alive: %v", hp.c.DeadPods(deadline))
		}
		time.Sleep(5 * time.Millisecond)
	}
}

const testDeadline = 60 * time.Millisecond

// TestHeartbeatLivenessMonitor: live heartbeating pods are never declared
// dead; cancelled agents are, and only they are.
func TestHeartbeatLivenessMonitor(t *testing.T) {
	k := 4
	hp := startHealPlant(t, k)

	if dead := hp.c.DeadPods(testDeadline); len(dead) != 0 {
		t.Fatalf("fresh plant has dead pods: %v", dead)
	}

	hp.kill(2)
	hp.kill(1)
	wctx, wcancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer wcancel()
	if _, err := hp.c.WaitForFailures(wctx, []int{1, 2}, testDeadline); err != nil {
		t.Fatal(err)
	}
	dead := hp.c.DeadPods(testDeadline)
	if len(dead) != 2 || dead[0] != 1 || dead[1] != 2 {
		t.Fatalf("DeadPods = %v, want [1 2]", dead)
	}
}

// TestWaitForFailuresTimeout: waiting for a pod that keeps heartbeating
// expires with the context's error.
func TestWaitForFailuresTimeout(t *testing.T) {
	hp := startHealPlant(t, 4)
	wctx, wcancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer wcancel()
	live, err := hp.c.WaitForFailures(wctx, []int{0}, time.Hour)
	if err == nil {
		t.Fatal("WaitForFailures returned nil for a live pod")
	}
	if len(live) != 1 || live[0] != 0 {
		t.Fatalf("still-live pods = %v, want [0]", live)
	}
}

// TestSelfHealRepairsDeadPod drives the full loop over real TCP: convert to
// global-random, kill one pod's agent, detect the death via heartbeats, and
// let SelfHeal re-aim the survivors in staged dark windows. The repair must
// complete (no Partial, no exclusions), advance the epoch monotonically
// window by window, and leave a connected fabric.
func TestSelfHealRepairsDeadPod(t *testing.T) {
	k := 6
	hp := startHealPlant(t, k)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := hp.c.Convert(ctx, uniformModes(k, core.ModeGlobalRandom)); err != nil {
		t.Fatal(err)
	}

	hp.kill(4)
	if _, err := hp.c.WaitForFailures(ctx, []int{4}, testDeadline); err != nil {
		t.Fatal(err)
	}

	rep, err := hp.c.SelfHeal(ctx, []int{4, 4}, SelfHealOptions{
		Seed: 7, BatchSize: 2, RequireConnected: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.DeadPods) != 1 || rep.DeadPods[0] != 4 {
		t.Errorf("DeadPods = %v, want [4] (duplicates deduped)", rep.DeadPods)
	}
	if rep.Partial || len(rep.Excluded) != 0 {
		t.Errorf("repair degraded: partial=%v excluded=%v", rep.Partial, rep.Excluded)
	}
	if rep.AddedLinks == 0 {
		t.Error("repair planned no new links")
	}
	if len(rep.Windows) == 0 {
		t.Fatal("repair executed no dark windows")
	}
	last := hp.c.Epoch() - uint64(len(rep.Windows))
	for i, w := range rep.Windows {
		if w.Epoch <= last {
			t.Errorf("window %d epoch %d not monotone after %d", i, w.Epoch, last)
		}
		last = w.Epoch
		if w.Dark == nil {
			t.Errorf("window %d has no dark network", i)
		}
		if len(w.Pods) == 0 || len(w.Pods) > 2 {
			t.Errorf("window %d pods = %v, want 1..2", i, w.Pods)
		}
	}
	if rep.Healed == nil {
		t.Fatal("no healed network")
	}
	frep, err := faults.Analyze(rep.Healed)
	if err != nil {
		t.Fatal(err)
	}
	if !frep.Connected {
		t.Error("healed network is not connected")
	}
}

// TestSelfHealValidation: malformed dead-pod sets are plan-level errors.
func TestSelfHealValidation(t *testing.T) {
	hp := startHealPlant(t, 4)
	ctx := context.Background()
	if _, err := hp.c.SelfHeal(ctx, []int{99}, SelfHealOptions{}); err == nil {
		t.Error("out-of-range pod accepted")
	}
	if _, err := hp.c.SelfHeal(ctx, nil, SelfHealOptions{}); err == nil {
		t.Error("empty dead set accepted")
	}
}

// TestSelfHealExcludesRejectingPod: when a surviving pod's agent refuses
// its re-aim, the repair spends a retry to exclude that pod and carries the
// rest of the plan through — graceful degradation, not failure.
func TestSelfHealExcludesRejectingPod(t *testing.T) {
	k := 6
	hp := startHealPlant(t, k)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := hp.c.Convert(ctx, uniformModes(k, core.ModeGlobalRandom)); err != nil {
		t.Fatal(err)
	}

	hp.kill(0)
	if _, err := hp.c.WaitForFailures(ctx, []int{0}, testDeadline); err != nil {
		t.Fatal(err)
	}

	// A dry pass discovers which pods the (seed-deterministic) plan
	// actually re-aims; the repair is idempotent, so replaying it with the
	// same seed below drives the identical window sequence.
	dry, err := hp.c.SelfHeal(ctx, []int{0}, SelfHealOptions{Seed: 3, BatchSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(dry.Windows) == 0 {
		t.Fatal("plan has no windows to sabotage")
	}
	victim := dry.Windows[0].Pods[0]
	hp.agentOf[victim].RejectStage = true

	rep, err := hp.c.SelfHeal(ctx, []int{0}, SelfHealOptions{Seed: 3, BatchSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Excluded) != 1 || rep.Excluded[0] != victim {
		t.Fatalf("Excluded = %v, want [%d]", rep.Excluded, victim)
	}
	if rep.Partial {
		t.Error("one exclusion within the retry budget must not mark the repair partial")
	}
	if len(rep.Windows) == 0 {
		t.Error("no windows executed for the surviving pods")
	}
	for _, w := range rep.Windows {
		for _, p := range w.Pods {
			if p == victim {
				t.Errorf("excluded pod %d appears in committed window %v", victim, w.Pods)
			}
		}
	}
	if rep.Healed == nil {
		t.Fatal("no healed network")
	}
}

// TestStagedConvertChaosAgentDrop severs two agents mid-StagedConvert and
// asserts the control plane's invariants survive the chaos: epochs stay
// monotone (no agent ever commits more epochs than the controller issued),
// and once the pods rejoin, a follow-up conversion converges the fabric to
// the target state.
func TestStagedConvertChaosAgentDrop(t *testing.T) {
	k := 8
	hp := startHealPlant(t, k)
	for _, a := range hp.agentOf {
		a.ApplyDelay = 10 * time.Millisecond
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	type result struct {
		reports []core.TransitionReport
		err     error
	}
	resCh := make(chan result, 1)
	go func() {
		reports, err := hp.c.StagedConvert(ctx, uniformModes(k, core.ModeGlobalRandom), 1, false)
		resCh <- result{reports, err}
	}()
	time.Sleep(25 * time.Millisecond) // let a few batches commit
	hp.kill(3)
	hp.kill(6)
	res := <-resCh
	// Either outcome is legal — the conversion may have outrun the kills —
	// but the epoch bookkeeping must be consistent either way.
	epochMid := hp.c.Epoch()
	if n := uint64(len(res.reports)); epochMid > n {
		t.Errorf("controller epoch %d exceeds %d analyzed batches", epochMid, n)
	}
	for p, a := range hp.agentOf {
		if got := a.Commits(); uint64(got) > epochMid {
			t.Errorf("pod %d committed %d epochs, controller only issued %d", p, got, epochMid)
		}
	}

	// Rejoin the dead pods and converge.
	hp.connect(3)
	hp.connect(6)
	for _, a := range hp.agentOf {
		a.ApplyDelay = 0
	}
	hp.waitAllAlive(testDeadline)
	if err := hp.c.Convert(ctx, uniformModes(k, core.ModeGlobalRandom)); err != nil {
		t.Fatalf("recovery conversion failed: %v", err)
	}
	if hp.c.Epoch() <= epochMid {
		t.Errorf("epoch %d did not advance past %d", hp.c.Epoch(), epochMid)
	}
	if hp.c.FlatTree().Mode(0) != core.ModeGlobalRandom {
		t.Error("fabric did not converge to the target mode")
	}
	want := hp.c.FlatTree().Configs()
	for _, a := range hp.agentOf {
		for id, cfg := range a.Configs() {
			if want[id] != cfg {
				t.Fatalf("pod %d converter %d: agent has %s, model has %s",
					a.Pod(), id, cfg, want[id])
			}
		}
	}
}
