package ctrl

import (
	"bytes"
	"io"
	"testing"
	"testing/quick"

	"flattree/internal/converter"
)

func TestFrameRoundTrip(t *testing.T) {
	err := quick.Check(func(tRaw uint8, payload []byte) bool {
		if len(payload) > MaxPayload {
			payload = payload[:MaxPayload]
		}
		mt := MsgType(tRaw%7 + 1)
		var buf bytes.Buffer
		if err := WriteFrame(&buf, mt, payload); err != nil {
			return false
		}
		gotT, gotP, err := ReadFrame(&buf)
		if err != nil {
			return false
		}
		return gotT == mt && bytes.Equal(gotP, payload)
	}, &quick.Config{MaxCount: 50})
	if err != nil {
		t.Error(err)
	}
}

func TestReadFrameRejectsBadMagic(t *testing.T) {
	buf := bytes.NewBuffer([]byte{0xde, 0xad, 1, 1, 0, 0, 0, 0})
	if _, _, err := ReadFrame(buf); err == nil {
		t.Error("bad magic accepted")
	}
}

func TestReadFrameRejectsBadVersion(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, MsgHello, nil); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	b[2] = 99
	if _, _, err := ReadFrame(bytes.NewReader(b)); err == nil {
		t.Error("bad version accepted")
	}
}

func TestReadFrameRejectsOversizedLength(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, MsgHello, []byte{1}); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	// Corrupt the length field to a huge value.
	b[4], b[5], b[6], b[7] = 0xff, 0xff, 0xff, 0xff
	if _, _, err := ReadFrame(bytes.NewReader(b)); err == nil {
		t.Error("oversized length accepted")
	}
}

func TestReadFrameTruncated(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, MsgStage, []byte{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	if _, _, err := ReadFrame(bytes.NewReader(b[:len(b)-2])); err == nil {
		t.Error("truncated frame accepted")
	}
	if _, _, err := ReadFrame(bytes.NewReader(b[:3])); err != io.ErrUnexpectedEOF {
		t.Errorf("truncated header: err = %v", err)
	}
}

func TestHelloRoundTrip(t *testing.T) {
	h := Hello{Pod: 7, NumConverters: 42}
	got, err := UnmarshalHello(MarshalHello(h))
	if err != nil || got != h {
		t.Errorf("got %+v err %v", got, err)
	}
	if _, err := UnmarshalHello([]byte{1, 2}); err == nil {
		t.Error("short hello accepted")
	}
}

func TestStageRoundTrip(t *testing.T) {
	err := quick.Check(func(epoch uint64, n uint8) bool {
		s := Stage{Epoch: epoch}
		for i := 0; i < int(n%20); i++ {
			s.Entries = append(s.Entries, ConfigEntry{
				Converter: uint32(i * 3),
				Config:    converter.Config(i % 4),
			})
		}
		got, err := UnmarshalStage(MarshalStage(s))
		if err != nil || got.Epoch != s.Epoch || len(got.Entries) != len(s.Entries) {
			return false
		}
		for i := range s.Entries {
			if got.Entries[i] != s.Entries[i] {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 40})
	if err != nil {
		t.Error(err)
	}
	if _, err := UnmarshalStage([]byte{1}); err == nil {
		t.Error("short stage accepted")
	}
	// Inconsistent count vs payload length.
	b := MarshalStage(Stage{Epoch: 1, Entries: []ConfigEntry{{Converter: 1}}})
	if _, err := UnmarshalStage(b[:len(b)-1]); err == nil {
		t.Error("truncated stage accepted")
	}
}

func TestAckCommitErrorRoundTrip(t *testing.T) {
	a := Ack{Epoch: 9, Pod: 3}
	if got, err := UnmarshalAck(MarshalAck(a)); err != nil || got != a {
		t.Errorf("ack: %+v %v", got, err)
	}
	c := Commit{Epoch: 12}
	if got, err := UnmarshalCommit(MarshalCommit(c)); err != nil || got != c {
		t.Errorf("commit: %+v %v", got, err)
	}
	e := ErrorMsg{Epoch: 4, Pod: 2, Text: "boom"}
	if got, err := UnmarshalError(MarshalError(e)); err != nil || got != e {
		t.Errorf("error: %+v %v", got, err)
	}
	if _, err := UnmarshalAck([]byte{1}); err == nil {
		t.Error("short ack accepted")
	}
	if _, err := UnmarshalCommit([]byte{1}); err == nil {
		t.Error("short commit accepted")
	}
	if _, err := UnmarshalError([]byte{1}); err == nil {
		t.Error("short error accepted")
	}
}

func TestMsgTypeStrings(t *testing.T) {
	for mt := MsgHello; mt <= MsgError; mt++ {
		if mt.String() == "" {
			t.Error("empty message type name")
		}
	}
}
