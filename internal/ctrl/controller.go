package ctrl

import (
	"context"
	"fmt"
	"net"
	"sync"

	"flattree/internal/core"
)

// Controller is the centralized network controller of §2.6. It owns the
// authoritative flat-tree model, plans converter reconfigurations for
// target per-pod modes, and drives registered pod agents through a
// two-phase stage/commit exchange so that a conversion is all-or-nothing.
type Controller struct {
	mu     sync.Mutex
	ft     *core.FlatTree
	epoch  uint64 // last committed epoch
	issued uint64 // last issued epoch (monotone across failed attempts)
	agents map[uint32]*agentConn
	inbox  chan event
	reg    chan struct{} // closed and re-made on each registration

	// abortErrs records the send failures from the most recent abort
	// broadcast. An unreachable agent may still hold a staged epoch, so
	// these must not vanish silently; monotone epoch issuance keeps the
	// stale stage from ever committing, but operators (and tests) can see
	// which pods missed the abort.
	abortErrs []error

	wg       sync.WaitGroup
	listener net.Listener
	closed   bool
}

type agentConn struct {
	pod  uint32
	conn net.Conn
	mu   sync.Mutex // serializes writes
}

func (a *agentConn) send(t MsgType, payload []byte) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	return WriteFrame(a.conn, t, payload)
}

type event struct {
	pod     uint32
	msgType MsgType
	payload []byte
	err     error
}

// NewController creates a controller owning the given flat-tree model.
func NewController(ft *core.FlatTree) *Controller {
	return &Controller{
		ft:     ft,
		agents: make(map[uint32]*agentConn),
		inbox:  make(chan event, 256),
		reg:    make(chan struct{}),
	}
}

// FlatTree returns the authoritative model.
func (c *Controller) FlatTree() *core.FlatTree {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ft
}

// Epoch returns the last committed epoch.
func (c *Controller) Epoch() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.epoch
}

// NumAgents returns the number of registered pod agents.
func (c *Controller) NumAgents() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.agents)
}

// Serve accepts agent connections on l until the listener is closed.
func (c *Controller) Serve(l net.Listener) {
	c.mu.Lock()
	c.listener = l
	c.mu.Unlock()
	for {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		c.wg.Add(1)
		go func() {
			defer c.wg.Done()
			c.handle(conn)
		}()
	}
}

// Close shuts the controller down: stops accepting and closes agent
// connections.
func (c *Controller) Close() {
	c.mu.Lock()
	c.closed = true
	if c.listener != nil {
		c.listener.Close()
	}
	for _, a := range c.agents {
		a.conn.Close()
	}
	c.mu.Unlock()
	c.wg.Wait()
}

func (c *Controller) handle(conn net.Conn) {
	t, payload, err := ReadFrame(conn)
	if err != nil || t != MsgHello {
		conn.Close()
		return
	}
	hello, err := UnmarshalHello(payload)
	if err != nil {
		conn.Close()
		return
	}
	a := &agentConn{pod: hello.Pod, conn: conn}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		conn.Close()
		return
	}
	if old, ok := c.agents[hello.Pod]; ok {
		old.conn.Close()
	}
	c.agents[hello.Pod] = a
	close(c.reg)
	c.reg = make(chan struct{})
	c.mu.Unlock()

	for {
		t, payload, err := ReadFrame(conn)
		if err != nil {
			c.inbox <- event{pod: hello.Pod, err: err}
			c.mu.Lock()
			if c.agents[hello.Pod] == a {
				delete(c.agents, hello.Pod)
			}
			c.mu.Unlock()
			conn.Close()
			return
		}
		c.inbox <- event{pod: hello.Pod, msgType: t, payload: payload}
	}
}

// WaitForAgents blocks until n agents are registered or ctx expires.
func (c *Controller) WaitForAgents(ctx context.Context, n int) error {
	for {
		c.mu.Lock()
		got := len(c.agents)
		ch := c.reg
		c.mu.Unlock()
		if got >= n {
			return nil
		}
		select {
		case <-ch:
		case <-ctx.Done():
			return fmt.Errorf("ctrl: %w waiting for %d agents (have %d)", ctx.Err(), n, got)
		}
	}
}

// AbortSendErrors returns the send failures recorded during the most
// recent abort broadcast, or nil if that abort reached every involved
// agent (or no abort has run). Each entry names the pod whose agent could
// not be told to discard its staged epoch.
func (c *Controller) AbortSendErrors() []error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]error(nil), c.abortErrs...)
}

// Plan computes the per-pod configuration diffs needed to move the model
// from its current modes to the target modes. Pods with no changes are
// omitted. Plan has no side effects and needs no network.
func (c *Controller) Plan(modes []core.Mode) (map[uint32][]ConfigEntry, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(modes) != c.ft.Params.K {
		return nil, fmt.Errorf("ctrl: %d modes for %d pods", len(modes), c.ft.Params.K)
	}
	current := c.ft.Configs()
	plan := make(map[uint32][]ConfigEntry)
	for id, ci := range c.ft.Convs {
		target := c.ft.ConfigFor(id, modes)
		if target != current[id] {
			plan[uint32(ci.Pod)] = append(plan[uint32(ci.Pod)], ConfigEntry{
				Converter: uint32(id),
				Config:    target,
			})
		}
	}
	return plan, nil
}

// Convert drives the two-phase reconfiguration to the target modes: stage
// the new configurations at every affected pod agent, and commit once all
// have staged. On any failure the staged epoch is aborted everywhere and
// the model is left unchanged. The supplied context bounds the whole
// exchange.
func (c *Controller) Convert(ctx context.Context, modes []core.Mode) error {
	plan, err := c.Plan(modes)
	if err != nil {
		return err
	}

	c.mu.Lock()
	// Epochs are issued monotonically even across failed attempts so that
	// stale acknowledgments from an aborted exchange can never satisfy a
	// later one.
	c.issued++
	epoch := c.issued
	involved := make(map[uint32]*agentConn, len(plan))
	for pod := range plan {
		a, ok := c.agents[pod]
		if !ok {
			c.mu.Unlock()
			return fmt.Errorf("ctrl: no agent registered for pod %d", pod)
		}
		involved[pod] = a
	}
	c.mu.Unlock()

	if len(plan) == 0 {
		// No converter changes; just update the model (mode labels may
		// still differ, e.g. all-Clos to all-Clos).
		return c.commitModel(modes, epoch)
	}

	abort := func() {
		var errs []error
		for pod, a := range involved {
			if err := a.send(MsgAbort, MarshalCommit(Commit{Epoch: epoch})); err != nil {
				errs = append(errs, fmt.Errorf("ctrl: abort of epoch %d to pod %d: %w", epoch, pod, err))
			}
		}
		c.mu.Lock()
		c.abortErrs = errs
		c.mu.Unlock()
	}

	// Phase 1: stage.
	for pod, a := range involved {
		if err := a.send(MsgStage, MarshalStage(Stage{Epoch: epoch, Entries: plan[pod]})); err != nil {
			abort()
			return fmt.Errorf("ctrl: stage to pod %d: %w", pod, err)
		}
	}
	if err := c.collectAcks(ctx, involved, epoch, MsgStaged); err != nil {
		abort()
		return fmt.Errorf("ctrl: stage phase: %w", err)
	}

	// Phase 2: commit.
	for pod, a := range involved {
		if err := a.send(MsgCommit, MarshalCommit(Commit{Epoch: epoch})); err != nil {
			return fmt.Errorf("ctrl: commit to pod %d: %w", pod, err)
		}
	}
	if err := c.collectAcks(ctx, involved, epoch, MsgCommitted); err != nil {
		return fmt.Errorf("ctrl: commit phase: %w", err)
	}

	return c.commitModel(modes, epoch)
}

func (c *Controller) commitModel(modes []core.Mode, epoch uint64) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.ft.SetModes(modes); err != nil {
		return err
	}
	c.epoch = epoch
	return nil
}

// collectAcks waits for the given ack type from every involved pod.
func (c *Controller) collectAcks(ctx context.Context, involved map[uint32]*agentConn, epoch uint64, want MsgType) error {
	pending := make(map[uint32]bool, len(involved))
	for pod := range involved {
		pending[pod] = true
	}
	for len(pending) > 0 {
		select {
		case ev := <-c.inbox:
			if ev.err != nil {
				if pending[ev.pod] {
					return fmt.Errorf("ctrl: agent for pod %d failed: %w", ev.pod, ev.err)
				}
				continue
			}
			switch ev.msgType {
			case want:
				ack, err := UnmarshalAck(ev.payload)
				if err != nil {
					return err
				}
				if ack.Epoch == epoch {
					delete(pending, ack.Pod)
				}
			case MsgError:
				em, err := UnmarshalError(ev.payload)
				if err != nil {
					return err
				}
				return fmt.Errorf("ctrl: pod %d rejected epoch %d: %s", em.Pod, em.Epoch, em.Text)
			default:
				// Stale message from a previous exchange; ignore.
			}
		case <-ctx.Done():
			var missing []uint32
			for pod := range pending {
				missing = append(missing, pod)
			}
			return fmt.Errorf("ctrl: %w awaiting %s from pods %v", ctx.Err(), want, missing)
		}
	}
	return nil
}

// ConfigsForPod extracts the model's current configuration entries for one
// pod, used to initialize agents.
func ConfigsForPod(ft *core.FlatTree, pod int) []ConfigEntry {
	var entries []ConfigEntry
	configs := ft.Configs()
	for id, ci := range ft.Convs {
		if ci.Pod == pod {
			entries = append(entries, ConfigEntry{Converter: uint32(id), Config: configs[id]})
		}
	}
	return entries
}
