package ctrl

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"flattree/internal/core"
)

// Default hardening parameters; see the corresponding Controller fields.
const (
	DefaultSendAttempts = 3
	DefaultSendTimeout  = 2 * time.Second
	DefaultSendBackoff  = 5 * time.Millisecond
)

// Controller is the centralized network controller of §2.6. It owns the
// authoritative flat-tree model, plans converter reconfigurations for
// target per-pod modes, and drives registered pod agents through a
// two-phase stage/commit exchange so that a conversion is all-or-nothing.
//
// Agents send periodic heartbeats (MsgHeartbeat); the controller records a
// last-seen timestamp per pod, and DeadPods/WaitForFailures turn those
// timestamps into a deadline-based liveness verdict that SelfHeal consumes.
type Controller struct {
	mu       sync.Mutex
	ft       *core.FlatTree
	epoch    uint64 // last committed epoch
	issued   uint64 // last issued epoch (monotone across failed attempts)
	agents   map[uint32]*agentConn
	lastSeen map[uint32]time.Time // pod -> last message receipt
	inbox    chan event           // raw events from connection readers
	xch      chan event           // non-heartbeat events, fed by the pump
	reg      chan struct{}        // closed and re-made on each registration

	// SendAttempts, SendTimeout and SendBackoff harden controller->agent
	// RPCs: each send gets a per-write deadline of SendTimeout and is
	// retried up to SendAttempts times with exponential backoff starting
	// at SendBackoff. Zero values select the Default* constants. Set them
	// before Serve; they are read without the lock.
	SendAttempts int
	SendTimeout  time.Duration
	SendBackoff  time.Duration

	// abortErrs records the send failures from the most recent abort
	// broadcast. An unreachable agent may still hold a staged epoch, so
	// these must not vanish silently; monotone epoch issuance keeps the
	// stale stage from ever committing, but operators (and tests) can see
	// which pods missed the abort.
	abortErrs []error

	wg       sync.WaitGroup
	listener net.Listener
	closed   bool
}

type agentConn struct {
	pod  uint32
	conn net.Conn
	mu   sync.Mutex // serializes writes
}

// send writes one frame, bounding the write by the given deadline window
// (zero means no deadline).
func (a *agentConn) send(t MsgType, payload []byte, timeout time.Duration) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if timeout > 0 {
		//flatlint:ignore clockwall write deadlines are wall-clock by definition; no simulated result depends on the value
		if err := a.conn.SetWriteDeadline(time.Now().Add(timeout)); err != nil {
			return err
		}
		defer a.conn.SetWriteDeadline(time.Time{}) // reset; failure only matters on the next write
	}
	return WriteFrame(a.conn, t, payload)
}

type event struct {
	pod     uint32
	msgType MsgType
	payload []byte
	err     error
}

// PodError wraps an exchange failure with the pod it is attributable to,
// so repair loops can exclude exactly the misbehaving pod and re-plan.
type PodError struct {
	Pod uint32
	Err error
}

func (e *PodError) Error() string { return e.Err.Error() }
func (e *PodError) Unwrap() error { return e.Err }

// NewController creates a controller owning the given flat-tree model.
func NewController(ft *core.FlatTree) *Controller {
	return &Controller{
		ft:       ft,
		agents:   make(map[uint32]*agentConn),
		lastSeen: make(map[uint32]time.Time),
		inbox:    make(chan event, 256),
		xch:      make(chan event, 256),
		reg:      make(chan struct{}),
	}
}

// FlatTree returns the authoritative model.
func (c *Controller) FlatTree() *core.FlatTree {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ft
}

// Epoch returns the last committed epoch.
func (c *Controller) Epoch() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.epoch
}

// NumAgents returns the number of registered pod agents. Registration is
// sticky: an agent whose connection drops stays registered (and goes stale
// by the liveness deadline) until a reconnection replaces it or the
// controller closes.
func (c *Controller) NumAgents() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.agents)
}

// Serve accepts agent connections on l until the listener is closed or ctx
// is canceled. It also runs the event pump that drains agent messages and
// maintains per-pod liveness, so conversions and the liveness monitor only
// work while Serve is running.
func (c *Controller) Serve(ctx context.Context, l net.Listener) {
	c.mu.Lock()
	c.listener = l
	c.mu.Unlock()
	ictx, cancel := context.WithCancel(ctx)
	defer cancel()
	defer context.AfterFunc(ctx, func() { l.Close() })()
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		c.pump(ictx)
	}()
	for {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		c.wg.Add(1)
		go func() {
			defer c.wg.Done()
			c.handle(ictx, conn)
		}()
	}
}

// Close shuts the controller down: stops accepting and closes agent
// connections.
func (c *Controller) Close() {
	c.mu.Lock()
	c.closed = true
	if c.listener != nil {
		c.listener.Close()
	}
	for _, a := range c.agents {
		a.conn.Close()
	}
	c.mu.Unlock()
	c.wg.Wait()
}

// pump is the always-on event loop: it drains the inbox so heartbeats can
// never clog it, stamps per-pod liveness, and forwards protocol events to
// the exchange channel that collectAcks reads. The exchange channel is
// bounded and lossy under pathological backlog (drop-oldest), which is
// safe: epochs are monotone, so a dropped stale ack can only delay — never
// corrupt — an exchange, and a live exchange drains the channel promptly.
func (c *Controller) pump(ctx context.Context) {
	for {
		select {
		case ev := <-c.inbox:
			if ev.err == nil {
				c.mu.Lock()
				c.lastSeen[ev.pod] = time.Now() //flatlint:ignore clockwall liveness stamps track real agents on a real network
				c.mu.Unlock()
			}
			if ev.msgType == MsgHeartbeat && ev.err == nil {
				continue
			}
			select {
			case c.xch <- ev:
			default:
				select {
				case <-c.xch:
				default:
				}
				select {
				case c.xch <- ev:
				default:
				}
			}
		case <-ctx.Done():
			return
		}
	}
}

func (c *Controller) handle(ctx context.Context, conn net.Conn) {
	t, payload, err := ReadFrame(conn)
	if err != nil || t != MsgHello {
		conn.Close()
		return
	}
	hello, err := UnmarshalHello(payload)
	if err != nil {
		conn.Close()
		return
	}
	a := &agentConn{pod: hello.Pod, conn: conn}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		conn.Close()
		return
	}
	if old, ok := c.agents[hello.Pod]; ok {
		old.conn.Close()
	}
	c.agents[hello.Pod] = a
	c.lastSeen[hello.Pod] = time.Now() //flatlint:ignore clockwall liveness stamps track real agents on a real network
	close(c.reg)
	c.reg = make(chan struct{})
	c.mu.Unlock()

	for {
		t, payload, err := ReadFrame(conn)
		ev := event{pod: hello.Pod, msgType: t, payload: payload, err: err}
		select {
		case c.inbox <- ev:
		case <-ctx.Done():
			conn.Close()
			return
		}
		if err != nil {
			// The registration stays: liveness is decided by the
			// heartbeat deadline, not by TCP teardown, and a stale
			// entry is replaced on reconnection or closed by Close.
			conn.Close()
			return
		}
	}
}

// WaitForAgents blocks until n agents are registered or ctx expires.
func (c *Controller) WaitForAgents(ctx context.Context, n int) error {
	for {
		c.mu.Lock()
		got := len(c.agents)
		ch := c.reg
		c.mu.Unlock()
		if got >= n {
			return nil
		}
		select {
		case <-ch:
		case <-ctx.Done():
			return fmt.Errorf("ctrl: %w waiting for %d agents (have %d)", ctx.Err(), n, got)
		}
	}
}

// AbortSendErrors returns the send failures recorded during the most
// recent abort broadcast, or nil if that abort reached every involved
// agent (or no abort has run). Each entry names the pod whose agent could
// not be told to discard its staged epoch.
func (c *Controller) AbortSendErrors() []error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]error(nil), c.abortErrs...)
}

// sendParams resolves the hardening knobs to effective values.
func (c *Controller) sendParams() (attempts int, timeout, backoff time.Duration) {
	attempts, timeout, backoff = c.SendAttempts, c.SendTimeout, c.SendBackoff
	if attempts <= 0 {
		attempts = DefaultSendAttempts
	}
	if timeout <= 0 {
		timeout = DefaultSendTimeout
	}
	if backoff <= 0 {
		backoff = DefaultSendBackoff
	}
	return attempts, timeout, backoff
}

// sendToPod delivers one frame to a pod's agent with per-write deadlines
// and bounded exponential-backoff retries. The agent is looked up freshly
// on every attempt so a reconnection mid-retry is picked up.
func (c *Controller) sendToPod(ctx context.Context, pod uint32, t MsgType, payload []byte) error {
	attempts, timeout, backoff := c.sendParams()
	var last error
	for try := 0; try < attempts; try++ {
		if try > 0 {
			select {
			case <-time.After(backoff << (try - 1)):
			case <-ctx.Done():
				return ctx.Err()
			}
		}
		c.mu.Lock()
		a, ok := c.agents[pod]
		c.mu.Unlock()
		if !ok {
			return fmt.Errorf("ctrl: no agent registered for pod %d", pod)
		}
		if last = a.send(t, payload, timeout); last == nil {
			return nil
		}
	}
	return fmt.Errorf("ctrl: %s to pod %d failed after %d attempts: %w", t, pod, attempts, last)
}

// Plan computes the per-pod configuration diffs needed to move the model
// from its current modes to the target modes. Pods with no changes are
// omitted. Plan has no side effects and needs no network.
func (c *Controller) Plan(modes []core.Mode) (map[uint32][]ConfigEntry, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(modes) != c.ft.Params.K {
		return nil, fmt.Errorf("ctrl: %d modes for %d pods", len(modes), c.ft.Params.K)
	}
	current := c.ft.Configs()
	plan := make(map[uint32][]ConfigEntry)
	for id, ci := range c.ft.Convs {
		target := c.ft.ConfigFor(id, modes)
		if target != current[id] {
			plan[uint32(ci.Pod)] = append(plan[uint32(ci.Pod)], ConfigEntry{
				Converter: uint32(id),
				Config:    target,
			})
		}
	}
	return plan, nil
}

// Convert drives the two-phase reconfiguration to the target modes: stage
// the new configurations at every affected pod agent, and commit once all
// have staged. On any failure the staged epoch is aborted everywhere and
// the model is left unchanged. The supplied context bounds the whole
// exchange.
func (c *Controller) Convert(ctx context.Context, modes []core.Mode) error {
	plan, err := c.Plan(modes)
	if err != nil {
		return err
	}
	epoch, err := c.convertEntries(ctx, plan)
	if err != nil {
		return err
	}
	return c.commitModel(modes, epoch)
}

// convertEntries runs one two-phase exchange delivering the given per-pod
// configuration entries, and returns the epoch it committed under. Epochs
// are issued monotonically even across failed attempts so that stale
// acknowledgments from an aborted exchange can never satisfy a later one.
// An empty plan just burns an epoch (mode labels may still change).
//
// Failures attributable to one pod are returned as *PodError so callers
// with a repair budget can exclude that pod and re-plan.
func (c *Controller) convertEntries(ctx context.Context, plan map[uint32][]ConfigEntry) (uint64, error) {
	c.mu.Lock()
	c.issued++
	epoch := c.issued
	// Pods are visited in sorted order everywhere below — registration
	// check, stage, commit, abort — so which pod a *PodError blames, and
	// the order of recorded abort errors, is a function of the plan alone.
	pods := make([]uint32, 0, len(plan))
	for pod := range plan {
		pods = append(pods, pod)
	}
	sort.Slice(pods, func(i, j int) bool { return pods[i] < pods[j] })
	involved := make(map[uint32]*agentConn, len(plan))
	for _, pod := range pods {
		a, ok := c.agents[pod]
		if !ok {
			c.mu.Unlock()
			return 0, &PodError{Pod: pod, Err: fmt.Errorf("ctrl: no agent registered for pod %d", pod)}
		}
		involved[pod] = a
	}
	c.mu.Unlock()

	if len(plan) == 0 {
		return epoch, nil
	}

	// Drain stale events from exchanges that ended after their collector
	// stopped reading; monotone epochs make them harmless, this just keeps
	// them from burning collector iterations.
	for {
		select {
		case <-c.xch:
			continue
		default:
		}
		break
	}

	_, timeout, _ := c.sendParams()
	abort := func() {
		var errs []error
		for _, pod := range pods {
			// Best-effort, direct to the captured connection: the agent
			// may have deregistered, but if it staged the epoch it must
			// still be told to discard it — or the failure recorded.
			if err := involved[pod].send(MsgAbort, MarshalCommit(Commit{Epoch: epoch}), timeout); err != nil {
				errs = append(errs, fmt.Errorf("ctrl: abort of epoch %d to pod %d: %w", epoch, pod, err))
			}
		}
		c.mu.Lock()
		c.abortErrs = errs
		c.mu.Unlock()
	}

	// Phase 1: stage.
	for _, pod := range pods {
		if err := c.sendToPod(ctx, pod, MsgStage, MarshalStage(Stage{Epoch: epoch, Entries: plan[pod]})); err != nil {
			abort()
			return 0, &PodError{Pod: pod, Err: fmt.Errorf("ctrl: stage to pod %d: %w", pod, err)}
		}
	}
	if err := c.collectAcks(ctx, involved, epoch, MsgStaged); err != nil {
		abort()
		return 0, wrapPhase("stage", err)
	}

	// Phase 2: commit.
	for _, pod := range pods {
		if err := c.sendToPod(ctx, pod, MsgCommit, MarshalCommit(Commit{Epoch: epoch})); err != nil {
			return 0, &PodError{Pod: pod, Err: fmt.Errorf("ctrl: commit to pod %d: %w", pod, err)}
		}
	}
	if err := c.collectAcks(ctx, involved, epoch, MsgCommitted); err != nil {
		return 0, wrapPhase("commit", err)
	}
	return epoch, nil
}

// wrapPhase labels a collector error with its phase while keeping any
// *PodError attribution intact for errors.As.
func wrapPhase(phase string, err error) error {
	var pe *PodError
	if errors.As(err, &pe) {
		return &PodError{Pod: pe.Pod, Err: fmt.Errorf("ctrl: %s phase: %w", phase, err)}
	}
	return fmt.Errorf("ctrl: %s phase: %w", phase, err)
}

func (c *Controller) commitModel(modes []core.Mode, epoch uint64) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.ft.SetModes(modes); err != nil {
		return err
	}
	c.epoch = epoch
	return nil
}

// collectAcks waits for the given ack type from every involved pod.
func (c *Controller) collectAcks(ctx context.Context, involved map[uint32]*agentConn, epoch uint64, want MsgType) error {
	pending := make(map[uint32]bool, len(involved))
	for pod := range involved {
		pending[pod] = true
	}
	for len(pending) > 0 {
		select {
		case ev := <-c.xch:
			if ev.err != nil {
				if pending[ev.pod] {
					return &PodError{Pod: ev.pod, Err: fmt.Errorf("ctrl: agent for pod %d failed: %w", ev.pod, ev.err)}
				}
				continue
			}
			switch ev.msgType {
			case want:
				ack, err := UnmarshalAck(ev.payload)
				if err != nil {
					return err
				}
				if ack.Epoch == epoch {
					delete(pending, ack.Pod)
				}
			case MsgError:
				em, err := UnmarshalError(ev.payload)
				if err != nil {
					return err
				}
				return &PodError{Pod: em.Pod, Err: fmt.Errorf("ctrl: pod %d rejected epoch %d: %s", em.Pod, em.Epoch, em.Text)}
			default:
				// Stale message from a previous exchange; ignore.
			}
		case <-ctx.Done():
			var missing []uint32
			for pod := range pending {
				missing = append(missing, pod)
			}
			sort.Slice(missing, func(i, j int) bool { return missing[i] < missing[j] })
			return fmt.Errorf("ctrl: %w awaiting %s from pods %v", ctx.Err(), want, missing)
		}
	}
	return nil
}

// ConfigsForPod extracts the model's current configuration entries for one
// pod, used to initialize agents.
func ConfigsForPod(ft *core.FlatTree, pod int) []ConfigEntry {
	var entries []ConfigEntry
	configs := ft.Configs()
	for id, ci := range ft.Convs {
		if ci.Pod == pod {
			entries = append(entries, ConfigEntry{Converter: uint32(id), Config: configs[id]})
		}
	}
	return entries
}
