package ctrl

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"flattree/internal/core"
	"flattree/internal/faults"
	"flattree/internal/topo"
)

// SelfHealOptions configures an online repair pass.
type SelfHealOptions struct {
	// Seed drives the randomized rewiring plan (faults.Recover). The same
	// (model, damage, Seed) always plans the same repair.
	Seed uint64
	// BatchSize bounds how many pods re-aim their converters per dark
	// window; <= 0 means 1 (most conservative, longest trajectory).
	BatchSize int
	// RequireConnected stops the repair before a window that would
	// partition the live servers, leaving the repair partial rather than
	// splitting the fabric (§2.7 staging discipline applied to recovery).
	RequireConnected bool
	// MaxRetries bounds how many failed windows the repair absorbs by
	// excluding the offending pod and re-planning before degrading to a
	// partial repair; zero selects DefaultMaxRetries, negative means no
	// retries at all (so a carried-over budget of zero can be expressed).
	MaxRetries int
	// Exclude seeds the excluded-pod set: these pods never re-aim, as when
	// a replanned repair inherits exclusions from its abandoned
	// predecessor. Seeded pods do not appear in RepairReport.Excluded,
	// which lists only pods dropped during this repair.
	Exclude []int
}

// DefaultMaxRetries is used when SelfHealOptions.MaxRetries is zero.
const DefaultMaxRetries = 2

// RepairWindow records one executed dark window of a repair: the pods
// whose converters went dark, the epoch the re-aim committed under, the
// §2.7 transition analysis of the window, and the effective network during
// it (for measuring λ mid-repair).
type RepairWindow struct {
	Pods   []int
	Epoch  uint64
	Report core.TransitionReport
	Dark   *topo.Network
}

// RepairReport is the outcome of one repair. Partial repairs are a
// result, not an error — mirroring mcf.Result.Approximate: the report
// says how far the repair got and flags that it stopped short.
type RepairReport struct {
	// DeadPods is the validated, sorted set of pods the repair routed
	// around (set by SelfHeal; empty for scenario- or outcome-driven
	// repairs, where the damage is not pod-shaped).
	DeadPods []int
	// FreedPorts/AddedLinks/BrokenLinks/Leftover summarize the rewiring
	// plan (see faults.RecoverReport).
	FreedPorts, AddedLinks, BrokenLinks, Leftover int
	// Windows lists the dark windows actually executed, in order.
	Windows []RepairWindow
	// Excluded lists pods dropped from the repair after their agents
	// failed an exchange; their share of the rewiring never activated.
	Excluded []int
	// Partial is set when the repair stopped short: retry budget
	// exhausted, or RequireConnected refused a window.
	Partial bool
	// Degraded is the network right after the failure, before any repair.
	// Healed is the network after the last executed window (equal to the
	// full faults.Recover result when nothing was excluded or refused).
	Degraded, Healed *topo.Network
}

// repairPlan is the model-side bookkeeping of a planned rewiring: which
// pods own which added/broken links, so the effective network at any point
// of the staged execution can be reconstructed.
type repairPlan struct {
	out   *faults.Outcome
	rec   faults.RecoverReport
	podOf []int // node -> pod in the degraded network (-1 for cores)
	// addOwners[i] / brkOwners[j] are the sorted owner pods of added link
	// i / broken link rec.BrokenIDs[j]. An added link activates once ALL
	// its owners have re-aimed (both endpoints must point at each other);
	// a broken link goes down as soon as ANY owner re-aims away from it.
	addOwners, brkOwners [][]int
}

func newRepairPlan(out *faults.Outcome, rec faults.RecoverReport) *repairPlan {
	p := &repairPlan{out: out, rec: rec}
	p.podOf = make([]int, out.Net.N())
	for i, n := range out.Net.Nodes {
		p.podOf[i] = n.Pod
	}
	owners := func(a, b int) []int {
		var o []int
		if pa := p.podOf[a]; pa >= 0 {
			o = append(o, pa)
		}
		if pb := p.podOf[b]; pb >= 0 && (len(o) == 0 || o[0] != pb) {
			o = append(o, pb)
		}
		sort.Ints(o)
		return o
	}
	p.addOwners = make([][]int, len(rec.Added))
	for i, e := range rec.Added {
		p.addOwners[i] = owners(e[0], e[1])
	}
	p.brkOwners = make([][]int, len(rec.BrokenIDs))
	for j, id := range rec.BrokenIDs {
		l := out.Net.Links[id]
		p.brkOwners[j] = owners(l.A, l.B)
	}
	return p
}

// affectedPods returns the sorted union of owner pods across the plan,
// minus any already-excluded pods: the pods whose converters must re-aim.
func (p *repairPlan) affectedPods(excluded map[int]bool) []int {
	seen := make(map[int]bool)
	for _, o := range p.addOwners {
		for _, pod := range o {
			seen[pod] = true
		}
	}
	for _, o := range p.brkOwners {
		for _, pod := range o {
			seen[pod] = true
		}
	}
	var pods []int
	for pod := range seen {
		if !excluded[pod] {
			pods = append(pods, pod)
		}
	}
	sort.Ints(pods)
	return pods
}

// downLinks returns the IDs of planned-broken links that are already down
// given which pods have re-aimed (ANY owner aimed takes the link down). A
// link with no owning pods — both endpoints core switches — needs no agent
// coordination, so it goes down immediately, mirroring activeAdds treating
// ownerless added links as up immediately; otherwise a spliced core-core
// add and the link it replaced would both claim the same core port in any
// intermediate state.
func (p *repairPlan) downLinks(aimed map[int]bool) map[int]bool {
	anyAimed := func(o []int) bool {
		if len(o) == 0 {
			return true
		}
		for _, pod := range o {
			if aimed[pod] {
				return true
			}
		}
		return false
	}
	down := make(map[int]bool)
	for j, id := range p.rec.BrokenIDs {
		if anyAimed(p.brkOwners[j]) {
			down[id] = true
		}
	}
	return down
}

// activeAdds returns the indices into rec.Added of links that are up:
// every owner has re-aimed (and none is excluded), and both endpoints have
// a port physically free given which planned breaks have executed (down).
// The second condition matters when ownership alone would activate an add
// early — an ownerless core-core add whose port is freed by an owned break
// that hasn't run yet must stay pending, or the intermediate state would
// wire two links into one port. Adds are considered in plan order, so the
// feasible subset is deterministic.
func (p *repairPlan) activeAdds(aimed, excluded, down map[int]bool) []int {
	nw := p.out.Net
	free := make([]int, nw.N())
	for i, n := range nw.Nodes {
		free[i] = n.Ports
	}
	for _, l := range nw.Links {
		if !down[l.ID] {
			free[l.A]--
			free[l.B]--
		}
	}
	var active []int
	for i, o := range p.addOwners {
		up := true
		for _, pod := range o {
			if !aimed[pod] || excluded[pod] {
				up = false
				break
			}
		}
		e := p.rec.Added[i]
		if !up || free[e[0]] <= 0 || free[e[1]] <= 0 {
			continue
		}
		free[e[0]]--
		free[e[1]]--
		active = append(active, i)
	}
	return active
}

// buildState builds the effective network given which pods have re-aimed
// (aimed), which are permanently excluded, and which are currently dark
// (mid-flip: all their rewirable-tagged links are absent, §2.7).
func (p *repairPlan) buildState(name string, aimed, excluded, dark map[int]bool) *topo.Network {
	nw := p.out.Net
	isDark := func(a, b int, tag topo.LinkTag) bool {
		if !faults.DefaultRewirable(tag) {
			return false
		}
		return dark[p.podOf[a]] || dark[p.podOf[b]]
	}
	down := p.downLinks(aimed)
	b := topo.NewBuilder(name)
	for _, n := range nw.Nodes {
		b.AddNode(n.Kind, n.Pod, n.Index, n.Ports)
	}
	for _, l := range nw.Links {
		if down[l.ID] || isDark(l.A, l.B, l.Tag) {
			continue
		}
		b.AddLink(l.A, l.B, l.Tag)
	}
	for _, i := range p.activeAdds(aimed, excluded, down) {
		e := p.rec.Added[i]
		if isDark(e[0], e[1], topo.TagRandom) {
			continue
		}
		b.AddLink(e[0], e[1], topo.TagRandom)
	}
	return b.Build()
}

// analyzeWindow reports a window network's health the same way
// core.AnalyzeTransition does: degree-0 servers are down (not
// partitioned), the rest must be mutually reachable.
func analyzeWindow(nw *topo.Network) core.TransitionReport {
	var rep core.TransitionReport
	for _, l := range nw.Links {
		if nw.Nodes[l.A].Kind.IsSwitch() && nw.Nodes[l.B].Kind.IsSwitch() {
			rep.SurvivingLinks++
		}
	}
	g := nw.Graph()
	first := -1
	for _, sv := range nw.Servers() {
		if g.Degree(sv) == 0 {
			rep.DetachedServers++
			continue
		}
		if first < 0 {
			first = sv
		}
	}
	rep.Connected = true
	if first >= 0 {
		dist := g.BFS(first)
		for _, sv := range nw.Servers() {
			if g.Degree(sv) > 0 && dist[sv] < 0 {
				rep.Connected = false
				break
			}
		}
	}
	return rep
}

// Repair is an in-flight online repair: a planned rewiring being driven
// through the surviving pods' agents one dark window at a time. It is the
// resumable form of SelfHeal — callers that interleave repair with other
// work (a chaos soak delivering new failures mid-repair) call Step per
// window, snapshot the current fabric via Outcome when a new episode
// lands, and hand the composed damage to a fresh PlanRepair.
type Repair struct {
	c        *Controller
	ft       *core.FlatTree
	opt      SelfHealOptions
	out      *faults.Outcome
	healed   *topo.Network // the atomic faults.Recover end state
	plan     *repairPlan   // nil when there was nothing to rewire
	aimed    map[int]bool
	excluded map[int]bool
	pending  []int
	retries  int
	rep      *RepairReport
	done     bool
}

// PlanRepair plans an online repair of arbitrary damage: it rewires the
// ports the failure freed (faults.Recover on the given outcome) and
// prepares the staged execution, without touching any agent yet. The
// outcome may carry several composed episodes (faults.Compose); the plan
// covers all of its unconsumed freed ports at once.
func (c *Controller) PlanRepair(out *faults.Outcome, opt SelfHealOptions) (*Repair, error) {
	retries := opt.MaxRetries
	if retries == 0 {
		retries = DefaultMaxRetries
	} else if retries < 0 {
		retries = 0
	}
	c.mu.Lock()
	ft := c.ft
	c.mu.Unlock()

	healed, rec, err := faults.Recover(out, faults.RecoverOptions{Seed: opt.Seed, Rewirable: faults.DefaultRewirable})
	if err != nil {
		return nil, err
	}
	r := &Repair{
		c: c, ft: ft, opt: opt, out: out, healed: healed,
		aimed:    make(map[int]bool),
		excluded: make(map[int]bool, len(opt.Exclude)),
		retries:  retries,
		rep: &RepairReport{
			FreedPorts: rec.FreedPorts, AddedLinks: rec.AddedLinks,
			BrokenLinks: rec.BrokenLinks, Leftover: rec.Leftover,
			Degraded: out.Net,
		},
	}
	for _, p := range opt.Exclude {
		r.excluded[p] = true
	}
	if rec.AddedLinks == 0 && rec.BrokenLinks == 0 {
		// Nothing to rewire (e.g. fewer than two freed rewirable ports).
		r.finish()
		return r, nil
	}
	r.plan = newRepairPlan(out, rec)
	r.pending = r.plan.affectedPods(r.excluded)
	if len(r.pending) == 0 {
		// Every affected pod was pre-excluded; the plan cannot execute.
		r.finish()
	}
	return r, nil
}

// Step executes at most one successful dark window over the control
// connections, returning it. Pod-attributable exchange failures are
// absorbed inside the call (exclude, re-plan, try the next window) while
// retry budget remains. A nil window with nil error means the repair is
// finished — either fully, or degraded to Partial (retry budget exhausted,
// or RequireConnected refused the window). Only context cancellation is
// returned as an error, with the repair left resumable.
func (r *Repair) Step(ctx context.Context) (*RepairWindow, error) {
	if r.done {
		return nil, nil
	}
	batch := r.opt.BatchSize
	if batch <= 0 {
		batch = 1
	}
	for len(r.pending) > 0 {
		n := batch
		if n > len(r.pending) {
			n = len(r.pending)
		}
		window := r.pending[:n]

		darkSet := make(map[int]bool, len(window))
		for _, p := range window {
			darkSet[p] = true
		}
		darkNet := r.plan.buildState(fmt.Sprintf("%s+window%d", r.out.Net.Name, len(r.rep.Windows)), r.aimed, r.excluded, darkSet)
		wrep := analyzeWindow(darkNet)
		if r.opt.RequireConnected && !wrep.Connected {
			r.rep.Partial = true
			r.finish()
			return nil, nil
		}

		// The re-aim command: each window pod's full current configuration.
		// Modes don't change during a repair — the pod re-aims its
		// converter ports at the planned peers under its existing config —
		// so the payload is the pod's config restated under a fresh epoch,
		// carried through the same stage/commit machinery (and the same
		// monotone-epoch guarantees) as a conversion.
		entries := make(map[uint32][]ConfigEntry, len(window))
		for _, p := range window {
			entries[uint32(p)] = ConfigsForPod(r.ft, p)
		}
		epoch, err := r.c.convertEntries(ctx, entries)
		if err != nil {
			if ctx.Err() != nil {
				return nil, fmt.Errorf("ctrl: self-heal: %w", err)
			}
			var pe *PodError
			if errors.As(err, &pe) && r.retries > 0 {
				r.retries--
				r.excluded[int(pe.Pod)] = true
				r.rep.Excluded = append(r.rep.Excluded, int(pe.Pod))
				r.pending = r.plan.affectedPods(joinSets(r.aimed, r.excluded))
				continue
			}
			r.rep.Partial = true
			r.finish()
			return nil, nil
		}

		for _, p := range window {
			r.aimed[p] = true
		}
		r.rep.Windows = append(r.rep.Windows, RepairWindow{
			Pods: append([]int(nil), window...), Epoch: epoch,
			Report: wrep, Dark: darkNet,
		})
		r.pending = r.pending[n:]
		if len(r.pending) == 0 {
			r.finish()
		}
		return &r.rep.Windows[len(r.rep.Windows)-1], nil
	}
	r.finish()
	return nil, nil
}

// finish freezes the repair and computes the Healed end state.
func (r *Repair) finish() {
	if r.done {
		return
	}
	r.done = true
	if r.plan == nil || (len(r.excluded) == 0 && !r.rep.Partial) {
		// Every owner re-aimed: the staged end state is exactly the
		// atomic faults.Recover result.
		r.rep.Healed = r.healed
	} else {
		r.rep.Healed = r.plan.buildState(r.out.Net.Name+"+recovered", r.aimed, r.excluded, nil)
	}
	sort.Ints(r.rep.Excluded)
}

// Done reports whether the repair has finished (fully or Partial).
func (r *Repair) Done() bool { return r.done }

// Report returns the repair's report. Healed is only set once Done.
func (r *Repair) Report() *RepairReport { return r.rep }

// Excluded returns the sorted union of pods excluded so far, including
// any seeded via SelfHealOptions.Exclude — the set to carry into a
// replanned successor repair.
func (r *Repair) Excluded() []int {
	var pods []int
	for p := range r.excluded {
		pods = append(pods, p)
	}
	sort.Ints(pods)
	return pods
}

// RetriesLeft returns the remaining retry budget, for carrying into a
// replanned successor repair (pass -MaxRetries semantics: a leftover of
// zero maps to MaxRetries: -1).
func (r *Repair) RetriesLeft() int { return r.retries }

// CurrentNet returns the effective fabric right now, between windows (no
// pod dark). After Done it equals Report().Healed.
func (r *Repair) CurrentNet() *topo.Network {
	if r.done {
		return r.rep.Healed
	}
	if r.plan == nil {
		return r.out.Net
	}
	return r.plan.buildState(r.out.Net.Name+"+partial", r.aimed, r.excluded, nil)
}

// Outcome snapshots the in-flight repair as a faults.Outcome so a new
// failure episode can land mid-repair: faults.Compose the new scenario
// onto it, then PlanRepair the composed damage (carrying Excluded and
// RetriesLeft). Executed windows are kept — their added links are real
// links of the snapshot — while the unexecuted remainder returns to the
// freed-port ledger: ports of already-broken planned links count as freed
// again, and each endpoint of an activated added link has consumed one
// rewirable freed port.
func (r *Repair) Outcome(name string) *faults.Outcome {
	o := &faults.Outcome{
		FailedSwitches: r.out.FailedSwitches,
		FailedLinks:    r.out.FailedLinks,
	}
	if r.plan == nil {
		o.Net = r.out.Net
		o.Pinned = r.out.Pinned
		o.Freed = r.out.Freed
		o.PinnedLinks = r.out.PinnedLinks
		return o
	}
	// buildState keeps node IDs, so the ledger carries index-for-index.
	freed := make([][]topo.LinkTag, r.out.Net.N())
	for v, tags := range r.out.Freed {
		if len(tags) > 0 {
			freed[v] = append([]topo.LinkTag(nil), tags...)
		}
	}
	down := r.plan.downLinks(r.aimed)
	downIDs := make([]int, 0, len(down))
	for id := range down {
		downIDs = append(downIDs, id)
	}
	sort.Ints(downIDs)
	for _, id := range downIDs {
		l := r.out.Net.Links[id]
		freed[l.A] = append(freed[l.A], l.Tag)
		freed[l.B] = append(freed[l.B], l.Tag)
	}
	consume := func(v int) {
		for i, tag := range freed[v] {
			if faults.DefaultRewirable(tag) {
				freed[v] = append(freed[v][:i:i], freed[v][i+1:]...)
				return
			}
		}
	}
	var pinned []bool
	for _, l := range r.out.Net.Links {
		if down[l.ID] {
			continue
		}
		pin := r.out.Pinned != nil && r.out.Pinned[l.ID]
		pinned = append(pinned, pin)
		if pin {
			o.PinnedLinks++
		}
	}
	for _, i := range r.plan.activeAdds(r.aimed, r.excluded, down) {
		e := r.plan.rec.Added[i]
		consume(e[0])
		consume(e[1])
		pinned = append(pinned, false)
	}
	o.Net = r.plan.buildState(name, r.aimed, r.excluded, nil)
	o.Pinned = pinned
	o.Freed = freed
	return o
}

// heal drives the repair to completion, window by window.
func (r *Repair) heal(ctx context.Context) (*RepairReport, error) {
	for !r.done {
		if _, err := r.Step(ctx); err != nil {
			return r.rep, err
		}
	}
	return r.rep, nil
}

// SelfHealScenario routes the fabric around arbitrary equipment damage,
// online: the scenario is applied to the controller's model network
// (faults.Fail) and the resulting repair plan is driven through the
// surviving pods' agents window by window, exactly as SelfHeal does for
// whole dead pods. This is the online path for partial-equipment death —
// single switches, converter blocks, pod-scoped link bursts.
func (c *Controller) SelfHealScenario(ctx context.Context, sc faults.Scenario, opt SelfHealOptions) (*RepairReport, error) {
	c.mu.Lock()
	ft := c.ft
	c.mu.Unlock()
	out, err := faults.Fail(ft.Net(), sc)
	if err != nil {
		return nil, err
	}
	r, err := c.PlanRepair(out, opt)
	if err != nil {
		return nil, err
	}
	return r.heal(ctx)
}

// SelfHeal routes the fabric around a set of dead pods, online: it plans a
// rewiring of the ports the failure freed (faults.Fail + faults.Recover),
// then drives the surviving pods' agents through the re-aim in batches of
// BatchSize dark windows, each a real two-phase epoch over the control
// connections. The §2.7 transition state during every window is analyzed
// and captured so the caller can measure throughput mid-repair.
//
// A window whose agent exchange fails in a way attributable to one pod
// (send failure, rejection, dead connection) consumes one retry: the pod
// is excluded and the remaining plan continues without it. When the retry
// budget runs out — or RequireConnected refuses a window — the repair
// degrades to a partial result with Partial set, rather than failing.
// Only plan-level errors and context cancellation are returned as errors.
//
// The dead pods are typically discovered via DeadPods/WaitForFailures;
// SelfHeal itself takes them as input so policy (how long to wait, how
// many concurrent failures to batch into one repair) stays with the
// caller.
func (c *Controller) SelfHeal(ctx context.Context, deadPods []int, opt SelfHealOptions) (*RepairReport, error) {
	c.mu.Lock()
	ft := c.ft
	c.mu.Unlock()
	k := ft.Params.K
	seen := make(map[int]bool, len(deadPods))
	dead := make([]int, 0, len(deadPods))
	for _, p := range deadPods {
		if p < 0 || p >= k {
			return nil, fmt.Errorf("ctrl: dead pod %d out of range [0,%d)", p, k)
		}
		if !seen[p] {
			seen[p] = true
			dead = append(dead, p)
		}
	}
	sort.Ints(dead)
	if len(dead) == 0 {
		return nil, errors.New("ctrl: self-heal needs at least one dead pod")
	}

	// Translate pod death into equipment failure: every switch of a dead
	// pod goes down (its servers go with it, and its cables free ports on
	// surviving peers).
	nw := ft.Net()
	var switches []int
	for _, s := range nw.Switches() {
		if seen[nw.Nodes[s].Pod] {
			switches = append(switches, s)
		}
	}
	out, err := faults.Fail(nw, faults.Scenario{Switches: switches, Seed: opt.Seed})
	if err != nil {
		return nil, err
	}
	r, err := c.PlanRepair(out, opt)
	if err != nil {
		return nil, err
	}
	r.rep.DeadPods = dead
	return r.heal(ctx)
}

// joinSets unions two pod sets (used to drop both already-aimed and
// excluded pods when re-planning after an exclusion).
func joinSets(a, b map[int]bool) map[int]bool {
	u := make(map[int]bool, len(a)+len(b))
	for k := range a {
		u[k] = true
	}
	for k := range b {
		u[k] = true
	}
	return u
}
