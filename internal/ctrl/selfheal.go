package ctrl

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"flattree/internal/core"
	"flattree/internal/faults"
	"flattree/internal/topo"
)

// SelfHealOptions configures an online repair pass.
type SelfHealOptions struct {
	// Seed drives the randomized rewiring plan (faults.Recover). The same
	// (model, dead pods, Seed) always plans the same repair.
	Seed uint64
	// BatchSize bounds how many pods re-aim their converters per dark
	// window; <= 0 means 1 (most conservative, longest trajectory).
	BatchSize int
	// RequireConnected stops the repair before a window that would
	// partition the live servers, leaving the repair partial rather than
	// splitting the fabric (§2.7 staging discipline applied to recovery).
	RequireConnected bool
	// MaxRetries bounds how many failed windows the repair absorbs by
	// excluding the offending pod and re-planning before degrading to a
	// partial repair; zero selects DefaultMaxRetries.
	MaxRetries int
}

// DefaultMaxRetries is used when SelfHealOptions.MaxRetries is zero.
const DefaultMaxRetries = 2

// RepairWindow records one executed dark window of a repair: the pods
// whose converters went dark, the epoch the re-aim committed under, the
// §2.7 transition analysis of the window, and the effective network during
// it (for measuring λ mid-repair).
type RepairWindow struct {
	Pods   []int
	Epoch  uint64
	Report core.TransitionReport
	Dark   *topo.Network
}

// RepairReport is the outcome of one SelfHeal pass. Partial repairs are a
// result, not an error — mirroring mcf.Result.Approximate: the report
// says how far the repair got and flags that it stopped short.
type RepairReport struct {
	// DeadPods is the validated, sorted set of pods the repair routed
	// around.
	DeadPods []int
	// FreedPorts/AddedLinks/BrokenLinks/Leftover summarize the rewiring
	// plan (see faults.RecoverReport).
	FreedPorts, AddedLinks, BrokenLinks, Leftover int
	// Windows lists the dark windows actually executed, in order.
	Windows []RepairWindow
	// Excluded lists pods dropped from the repair after their agents
	// failed an exchange; their share of the rewiring never activated.
	Excluded []int
	// Partial is set when the repair stopped short: retry budget
	// exhausted, or RequireConnected refused a window.
	Partial bool
	// Degraded is the network right after the failure, before any repair.
	// Healed is the network after the last executed window (equal to the
	// full faults.Recover result when nothing was excluded or refused).
	Degraded, Healed *topo.Network
}

// repairPlan is the model-side bookkeeping of a planned rewiring: which
// pods own which added/broken links, so the effective network at any point
// of the staged execution can be reconstructed.
type repairPlan struct {
	out   *faults.Outcome
	rec   faults.RecoverReport
	podOf []int // node -> pod in the degraded network (-1 for cores)
	// addOwners[i] / brkOwners[j] are the sorted owner pods of added link
	// i / broken link rec.BrokenIDs[j]. An added link activates once ALL
	// its owners have re-aimed (both endpoints must point at each other);
	// a broken link goes down as soon as ANY owner re-aims away from it.
	addOwners, brkOwners [][]int
}

func newRepairPlan(out *faults.Outcome, rec faults.RecoverReport) *repairPlan {
	p := &repairPlan{out: out, rec: rec}
	p.podOf = make([]int, out.Net.N())
	for i, n := range out.Net.Nodes {
		p.podOf[i] = n.Pod
	}
	owners := func(a, b int) []int {
		var o []int
		if pa := p.podOf[a]; pa >= 0 {
			o = append(o, pa)
		}
		if pb := p.podOf[b]; pb >= 0 && (len(o) == 0 || o[0] != pb) {
			o = append(o, pb)
		}
		sort.Ints(o)
		return o
	}
	p.addOwners = make([][]int, len(rec.Added))
	for i, e := range rec.Added {
		p.addOwners[i] = owners(e[0], e[1])
	}
	p.brkOwners = make([][]int, len(rec.BrokenIDs))
	for j, id := range rec.BrokenIDs {
		l := out.Net.Links[id]
		p.brkOwners[j] = owners(l.A, l.B)
	}
	return p
}

// affectedPods returns the sorted union of owner pods across the plan,
// minus any already-excluded pods: the pods whose converters must re-aim.
func (p *repairPlan) affectedPods(excluded map[int]bool) []int {
	seen := make(map[int]bool)
	for _, o := range p.addOwners {
		for _, pod := range o {
			seen[pod] = true
		}
	}
	for _, o := range p.brkOwners {
		for _, pod := range o {
			seen[pod] = true
		}
	}
	var pods []int
	for pod := range seen {
		if !excluded[pod] {
			pods = append(pods, pod)
		}
	}
	sort.Ints(pods)
	return pods
}

// buildState builds the effective network given which pods have re-aimed
// (aimed), which are permanently excluded, and which are currently dark
// (mid-flip: all their rewirable-tagged links are absent, §2.7).
func (p *repairPlan) buildState(name string, aimed, excluded, dark map[int]bool) *topo.Network {
	nw := p.out.Net
	allAimed := func(o []int) bool {
		for _, pod := range o {
			if !aimed[pod] || excluded[pod] {
				return false
			}
		}
		return true
	}
	anyAimed := func(o []int) bool {
		for _, pod := range o {
			if aimed[pod] {
				return true
			}
		}
		return false
	}
	isDark := func(a, b int, tag topo.LinkTag) bool {
		if !faults.DefaultRewirable(tag) {
			return false
		}
		return dark[p.podOf[a]] || dark[p.podOf[b]]
	}
	down := make(map[int]bool)
	for j, id := range p.rec.BrokenIDs {
		if anyAimed(p.brkOwners[j]) {
			down[id] = true
		}
	}
	b := topo.NewBuilder(name)
	for _, n := range nw.Nodes {
		b.AddNode(n.Kind, n.Pod, n.Index, n.Ports)
	}
	for _, l := range nw.Links {
		if down[l.ID] || isDark(l.A, l.B, l.Tag) {
			continue
		}
		b.AddLink(l.A, l.B, l.Tag)
	}
	for i, e := range p.rec.Added {
		if !allAimed(p.addOwners[i]) || isDark(e[0], e[1], topo.TagRandom) {
			continue
		}
		b.AddLink(e[0], e[1], topo.TagRandom)
	}
	return b.Build()
}

// analyzeWindow reports a window network's health the same way
// core.AnalyzeTransition does: degree-0 servers are down (not
// partitioned), the rest must be mutually reachable.
func analyzeWindow(nw *topo.Network) core.TransitionReport {
	var rep core.TransitionReport
	for _, l := range nw.Links {
		if nw.Nodes[l.A].Kind.IsSwitch() && nw.Nodes[l.B].Kind.IsSwitch() {
			rep.SurvivingLinks++
		}
	}
	g := nw.Graph()
	first := -1
	for _, sv := range nw.Servers() {
		if g.Degree(sv) == 0 {
			rep.DetachedServers++
			continue
		}
		if first < 0 {
			first = sv
		}
	}
	rep.Connected = true
	if first >= 0 {
		dist := g.BFS(first)
		for _, sv := range nw.Servers() {
			if g.Degree(sv) > 0 && dist[sv] < 0 {
				rep.Connected = false
				break
			}
		}
	}
	return rep
}

// SelfHeal routes the fabric around a set of dead pods, online: it plans a
// rewiring of the ports the failure freed (faults.Fail + faults.Recover),
// then drives the surviving pods' agents through the re-aim in batches of
// BatchSize dark windows, each a real two-phase epoch over the control
// connections. The §2.7 transition state during every window is analyzed
// and captured so the caller can measure throughput mid-repair.
//
// A window whose agent exchange fails in a way attributable to one pod
// (send failure, rejection, dead connection) consumes one retry: the pod
// is excluded and the remaining plan continues without it. When the retry
// budget runs out — or RequireConnected refuses a window — the repair
// degrades to a partial result with Partial set, rather than failing.
// Only plan-level errors and context cancellation are returned as errors.
//
// The dead pods are typically discovered via DeadPods/WaitForFailures;
// SelfHeal itself takes them as input so policy (how long to wait, how
// many concurrent failures to batch into one repair) stays with the
// caller.
func (c *Controller) SelfHeal(ctx context.Context, deadPods []int, opt SelfHealOptions) (*RepairReport, error) {
	batch := opt.BatchSize
	if batch <= 0 {
		batch = 1
	}
	retries := opt.MaxRetries
	if retries == 0 {
		retries = DefaultMaxRetries
	}

	c.mu.Lock()
	ft := c.ft
	c.mu.Unlock()
	k := ft.Params.K
	seen := make(map[int]bool, len(deadPods))
	dead := make([]int, 0, len(deadPods))
	for _, p := range deadPods {
		if p < 0 || p >= k {
			return nil, fmt.Errorf("ctrl: dead pod %d out of range [0,%d)", p, k)
		}
		if !seen[p] {
			seen[p] = true
			dead = append(dead, p)
		}
	}
	sort.Ints(dead)
	if len(dead) == 0 {
		return nil, errors.New("ctrl: self-heal needs at least one dead pod")
	}

	// Translate pod death into equipment failure: every switch of a dead
	// pod goes down (its servers go with it, and its cables free ports on
	// surviving peers).
	nw := ft.Net()
	var switches []int
	for _, s := range nw.Switches() {
		if seen[nw.Nodes[s].Pod] {
			switches = append(switches, s)
		}
	}
	out, err := faults.Fail(nw, faults.Scenario{Switches: switches, Seed: opt.Seed})
	if err != nil {
		return nil, err
	}
	healed, rec, err := faults.Recover(out, faults.RecoverOptions{Seed: opt.Seed, Rewirable: faults.DefaultRewirable})
	if err != nil {
		return nil, err
	}
	rep := &RepairReport{
		DeadPods:   dead,
		FreedPorts: rec.FreedPorts, AddedLinks: rec.AddedLinks,
		BrokenLinks: rec.BrokenLinks, Leftover: rec.Leftover,
		Degraded: out.Net,
	}
	if rec.AddedLinks == 0 && rec.BrokenLinks == 0 {
		// Nothing to rewire (e.g. fewer than two freed rewirable ports).
		rep.Healed = healed
		return rep, nil
	}

	plan := newRepairPlan(out, rec)
	aimed := make(map[int]bool)
	excluded := make(map[int]bool)
	pending := plan.affectedPods(excluded)

	for len(pending) > 0 {
		n := batch
		if n > len(pending) {
			n = len(pending)
		}
		window := pending[:n]

		darkSet := make(map[int]bool, len(window))
		for _, p := range window {
			darkSet[p] = true
		}
		darkNet := plan.buildState(fmt.Sprintf("%s+window%d", out.Net.Name, len(rep.Windows)), aimed, excluded, darkSet)
		wrep := analyzeWindow(darkNet)
		if opt.RequireConnected && !wrep.Connected {
			rep.Partial = true
			break
		}

		// The re-aim command: each window pod's full current configuration.
		// Modes don't change during a repair — the pod re-aims its
		// converter ports at the planned peers under its existing config —
		// so the payload is the pod's config restated under a fresh epoch,
		// carried through the same stage/commit machinery (and the same
		// monotone-epoch guarantees) as a conversion.
		entries := make(map[uint32][]ConfigEntry, len(window))
		for _, p := range window {
			entries[uint32(p)] = ConfigsForPod(ft, p)
		}
		epoch, err := c.convertEntries(ctx, entries)
		if err != nil {
			if ctx.Err() != nil {
				return rep, fmt.Errorf("ctrl: self-heal: %w", err)
			}
			var pe *PodError
			if errors.As(err, &pe) && retries > 0 {
				retries--
				excluded[int(pe.Pod)] = true
				rep.Excluded = append(rep.Excluded, int(pe.Pod))
				pending = plan.affectedPods(joinSets(aimed, excluded))
				continue
			}
			rep.Partial = true
			break
		}

		for _, p := range window {
			aimed[p] = true
		}
		rep.Windows = append(rep.Windows, RepairWindow{
			Pods: append([]int(nil), window...), Epoch: epoch,
			Report: wrep, Dark: darkNet,
		})
		pending = pending[n:]
	}

	if len(rep.Excluded) == 0 && !rep.Partial {
		// Every owner re-aimed: the staged end state is exactly the
		// atomic faults.Recover result.
		rep.Healed = healed
	} else {
		rep.Healed = plan.buildState(out.Net.Name+"+recovered", aimed, excluded, nil)
	}
	sort.Ints(rep.Excluded)
	return rep, nil
}

// joinSets unions two pod sets (used to drop both already-aimed and
// excluded pods when re-planning after an exclusion).
func joinSets(a, b map[int]bool) map[int]bool {
	u := make(map[int]bool, len(a)+len(b))
	for k := range a {
		u[k] = true
	}
	for k := range b {
		u[k] = true
	}
	return u
}
