package ctrl

import (
	"context"
	"net"
	"strings"
	"testing"
	"time"

	"flattree/internal/core"
)

// startPlant builds a flat-tree, a controller serving on loopback, and one
// agent per pod, all wired up and registered.
func startPlant(t *testing.T, k int) (*Controller, []*Agent, func()) {
	t.Helper()
	ft, err := core.Build(core.Params{K: k})
	if err != nil {
		t.Fatal(err)
	}
	c := NewController(ft)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go c.Serve(context.Background(), l)

	ctx, cancel := context.WithCancel(context.Background())
	agents := make([]*Agent, k)
	done := make(chan struct{}, k)
	for p := 0; p < k; p++ {
		agents[p] = NewAgent(p, ConfigsForPod(ft, p))
		go func(a *Agent) {
			_ = a.Run(ctx, l.Addr().String())
			done <- struct{}{}
		}(agents[p])
	}
	wctx, wcancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer wcancel()
	if err := c.WaitForAgents(wctx, k); err != nil {
		t.Fatal(err)
	}
	cleanup := func() {
		cancel()
		c.Close()
		for i := 0; i < k; i++ {
			<-done
		}
	}
	return c, agents, cleanup
}

func uniformModes(k int, m core.Mode) []core.Mode {
	modes := make([]core.Mode, k)
	for i := range modes {
		modes[i] = m
	}
	return modes
}

// TestConvertEndToEnd drives Clos -> global-random over real TCP and
// asserts every agent's hardware state matches the controller model.
func TestConvertEndToEnd(t *testing.T) {
	k := 8
	c, agents, cleanup := startPlant(t, k)
	defer cleanup()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := c.Convert(ctx, uniformModes(k, core.ModeGlobalRandom)); err != nil {
		t.Fatal(err)
	}
	if c.Epoch() != 1 {
		t.Errorf("epoch = %d, want 1", c.Epoch())
	}
	want := c.FlatTree().Configs()
	for _, a := range agents {
		for id, cfg := range a.Configs() {
			if want[id] != cfg {
				t.Fatalf("pod %d converter %d: agent has %s, model has %s",
					a.Pod(), id, cfg, want[id])
			}
		}
		if a.Commits() != 1 {
			t.Errorf("pod %d committed %d epochs, want 1", a.Pod(), a.Commits())
		}
	}
	// The model's effective network must now be the global-random one.
	if c.FlatTree().Mode(0) != core.ModeGlobalRandom {
		t.Error("model mode not updated")
	}
}

// TestConvertSequence runs several conversions including hybrid zones.
func TestConvertSequence(t *testing.T) {
	k := 6
	c, agents, cleanup := startPlant(t, k)
	defer cleanup()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()

	hybrid := uniformModes(k, core.ModeLocalRandom)
	for p := 0; p < k/2; p++ {
		hybrid[p] = core.ModeGlobalRandom
	}
	steps := [][]core.Mode{
		uniformModes(k, core.ModeGlobalRandom),
		uniformModes(k, core.ModeClos),
		hybrid,
	}
	for i, modes := range steps {
		if err := c.Convert(ctx, modes); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
	}
	if c.Epoch() != 3 {
		t.Errorf("epoch = %d, want 3", c.Epoch())
	}
	want := c.FlatTree().Configs()
	for _, a := range agents {
		for id, cfg := range a.Configs() {
			if want[id] != cfg {
				t.Fatalf("after sequence: pod %d converter %d: %s != %s", a.Pod(), id, cfg, want[id])
			}
		}
	}
}

// TestConvertNoChange: converting to the current modes touches no agent
// but still succeeds.
func TestConvertNoChange(t *testing.T) {
	k := 4
	c, _, cleanup := startPlant(t, k)
	defer cleanup()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := c.Convert(ctx, uniformModes(k, core.ModeClos)); err != nil {
		t.Fatal(err)
	}
}

// TestConvertRejectedStage: an agent that rejects its stage aborts the
// whole conversion; the model stays unchanged and other agents' staged
// state is discarded (a later conversion still works).
func TestConvertRejectedStage(t *testing.T) {
	k := 4
	c, agents, cleanup := startPlant(t, k)
	defer cleanup()
	agents[2].RejectStage = true

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	err := c.Convert(ctx, uniformModes(k, core.ModeGlobalRandom))
	if err == nil {
		t.Fatal("conversion should fail when an agent rejects")
	}
	if c.Epoch() != 0 {
		t.Errorf("epoch advanced to %d on failed conversion", c.Epoch())
	}
	if c.FlatTree().Mode(0) != core.ModeClos {
		t.Error("model changed on failed conversion")
	}
	// Recovery: clear the fault and convert again.
	agents[2].RejectStage = false
	if err := c.Convert(ctx, uniformModes(k, core.ModeGlobalRandom)); err != nil {
		t.Fatalf("recovery conversion: %v", err)
	}
	if c.Epoch() != 2 {
		// Epoch 1 was burned by the aborted attempt.
		t.Errorf("epoch = %d, want 2", c.Epoch())
	}
}

// TestConvertMissingAgent: converting without an agent for an affected pod
// fails fast.
func TestConvertMissingAgent(t *testing.T) {
	ft, err := core.Build(core.Params{K: 4})
	if err != nil {
		t.Fatal(err)
	}
	c := NewController(ft)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go c.Serve(context.Background(), l)
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := c.Convert(ctx, uniformModes(4, core.ModeGlobalRandom)); err == nil {
		t.Fatal("conversion without agents should fail")
	}
}

// TestApplyDelay: commits wait for converter switching latency.
func TestApplyDelay(t *testing.T) {
	k := 4
	c, agents, cleanup := startPlant(t, k)
	defer cleanup()
	for _, a := range agents {
		a.ApplyDelay = 30 * time.Millisecond
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	start := time.Now()
	if err := c.Convert(ctx, uniformModes(k, core.ModeLocalRandom)); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 30*time.Millisecond {
		t.Errorf("conversion finished in %v, before the apply delay", elapsed)
	}
}

// TestPlanOnlyChangedPods: a hybrid plan touching one zone leaves pods
// whose configurations are unchanged out of the plan.
func TestPlanOnlyChangedPods(t *testing.T) {
	ft, err := core.Build(core.Params{K: 8})
	if err != nil {
		t.Fatal(err)
	}
	c := NewController(ft)
	modes := uniformModes(8, core.ModeClos)
	modes[3] = core.ModeLocalRandom
	plan, err := c.Plan(modes)
	if err != nil {
		t.Fatal(err)
	}
	// Local-random only flips 4-port converters in pod 3; no other pod's
	// configs change (6-port stay Default, and side pairing is unaffected
	// by LocalRandom).
	if len(plan) != 1 {
		t.Fatalf("plan touches %d pods, want 1: %v", len(plan), podsOf(plan))
	}
	if _, ok := plan[3]; !ok {
		t.Fatal("plan misses pod 3")
	}
	if _, err := c.Plan([]core.Mode{core.ModeClos}); err == nil {
		t.Error("short mode slice accepted")
	}
}

func podsOf(plan map[uint32][]ConfigEntry) []uint32 {
	var out []uint32
	for p := range plan {
		out = append(out, p)
	}
	return out
}

// TestAgentReregistration: a reconnecting agent replaces its predecessor.
func TestAgentReregistration(t *testing.T) {
	k := 4
	c, _, cleanup := startPlant(t, k)
	defer cleanup()
	// Connect a second agent for pod 0.
	ft := c.FlatTree()
	a := NewAgent(0, ConfigsForPod(ft, 0))
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	addr := listenerAddr(c)
	go func() { done <- a.Run(ctx, addr) }()
	deadline := time.After(5 * time.Second)
	for c.NumAgents() != k {
		select {
		case <-deadline:
			t.Fatal("agent count never settled")
		case <-time.After(5 * time.Millisecond):
		}
	}
}

func listenerAddr(c *Controller) string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.listener.Addr().String()
}

// TestAbortSendErrorsRecorded: when an abort broadcast cannot reach an
// agent, the failure is recorded on the controller instead of being
// silently discarded — that agent may still hold a staged epoch, and
// operators need to see which pods missed the abort. (The stale stage can
// never commit because epochs are issued monotonically.)
func TestAbortSendErrorsRecorded(t *testing.T) {
	k := 4
	c, _, cleanup := startPlant(t, k)
	defer cleanup()

	if errs := c.AbortSendErrors(); errs != nil {
		t.Fatalf("fresh controller has abort errors: %v", errs)
	}

	// Sever pod 1's controller-side connection. The stage send to pod 1
	// then fails, triggering the abort broadcast, whose own send to pod 1
	// also fails and must be recorded.
	c.mu.Lock()
	c.agents[1].conn.Close()
	c.mu.Unlock()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := c.Convert(ctx, uniformModes(k, core.ModeGlobalRandom)); err == nil {
		t.Fatal("conversion over a severed connection should fail")
	}
	errs := c.AbortSendErrors()
	if len(errs) == 0 {
		t.Fatal("abort-send failure was not recorded")
	}
	for _, err := range errs {
		if !strings.Contains(err.Error(), "pod 1") {
			t.Errorf("abort error does not name the unreachable pod: %v", err)
		}
	}
	if c.Epoch() != 0 {
		t.Errorf("epoch advanced to %d on failed conversion", c.Epoch())
	}
}
