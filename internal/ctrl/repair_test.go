package ctrl

import (
	"context"
	"testing"
	"time"

	"flattree/internal/core"
	"flattree/internal/faults"
)

// podSwitches lists the switch node IDs of one pod in the controller's
// model network.
func podSwitches(c *Controller, pod int) []int {
	nw := c.FlatTree().Net()
	var switches []int
	for _, s := range nw.Switches() {
		if nw.Nodes[s].Pod == pod {
			switches = append(switches, s)
		}
	}
	return switches
}

// TestRepairStepperMatchesSelfHeal: driving PlanRepair window by window
// is the same repair SelfHeal runs in one call — same windows, same end
// state shape.
func TestRepairStepperMatchesSelfHeal(t *testing.T) {
	k := 6
	hp := startHealPlant(t, k)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := hp.c.Convert(ctx, uniformModes(k, core.ModeGlobalRandom)); err != nil {
		t.Fatal(err)
	}

	out, err := faults.Fail(hp.c.FlatTree().Net(), faults.Scenario{Switches: podSwitches(hp.c, 2), Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	r, err := hp.c.PlanRepair(out, SelfHealOptions{Seed: 9, BatchSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	steps := 0
	for !r.Done() {
		w, err := r.Step(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if w != nil {
			steps++
			if w.Dark == nil {
				t.Fatalf("step %d returned a window with no dark network", steps)
			}
		}
	}
	rep := r.Report()
	if steps == 0 || len(rep.Windows) != steps {
		t.Fatalf("stepper executed %d windows, report has %d", steps, len(rep.Windows))
	}
	if rep.Partial || len(rep.Excluded) != 0 {
		t.Errorf("clean stepper repair degraded: partial=%v excluded=%v", rep.Partial, rep.Excluded)
	}
	if rep.Healed == nil {
		t.Fatal("no healed network")
	}
	if r.CurrentNet() != rep.Healed {
		t.Error("CurrentNet after Done differs from Healed")
	}

	frep, err := faults.Analyze(rep.Healed)
	if err != nil {
		t.Fatal(err)
	}
	if !frep.Connected {
		t.Error("healed network is not connected")
	}
}

// TestRepairRetryExhaustionMidStream: a second failure lands after the
// first repair's opening window; the in-flight repair is snapshotted
// (Repair.Outcome), the new episode composed onto it, and the successor
// repair replanned with the carried (empty) retry budget. With every
// remaining agent rejecting its re-aim, the successor must degrade to
// Partial — retry budget exhausted — instead of erroring.
func TestRepairRetryExhaustionMidStream(t *testing.T) {
	k := 6
	hp := startHealPlant(t, k)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := hp.c.Convert(ctx, uniformModes(k, core.ModeGlobalRandom)); err != nil {
		t.Fatal(err)
	}

	out, err := faults.Fail(hp.c.FlatTree().Net(), faults.Scenario{Switches: podSwitches(hp.c, 0), Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	r, err := hp.c.PlanRepair(out, SelfHealOptions{Seed: 4, BatchSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	w, err := r.Step(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if w == nil {
		t.Fatal("plan had no first window to execute")
	}

	// Mid-repair, a pod-scoped link burst arrives. The executed window
	// must survive the snapshot; the remainder is replanned.
	snap := r.Outcome("mid")
	if len(snap.Pinned) != len(snap.Net.Links) {
		t.Fatalf("snapshot pinned ledger has %d flags for %d links", len(snap.Pinned), len(snap.Net.Links))
	}
	out2, err := faults.Compose(snap, faults.Scenario{BurstPods: 1, BurstLinkFraction: 0.5, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}

	for p, a := range hp.agentOf {
		if p != 0 {
			a.RejectStage = true
		}
	}
	retries := -1 // carried budget of zero: no retries left
	if left := r.RetriesLeft(); left != DefaultMaxRetries {
		t.Fatalf("RetriesLeft = %d before any failure, want %d", r.RetriesLeft(), DefaultMaxRetries)
	}
	r2, err := hp.c.PlanRepair(out2, SelfHealOptions{
		Seed: 4, BatchSize: 1, Exclude: r.Excluded(), MaxRetries: retries})
	if err != nil {
		t.Fatal(err)
	}
	for !r2.Done() {
		if _, err := r2.Step(ctx); err != nil {
			t.Fatal(err)
		}
	}
	rep2 := r2.Report()
	if !rep2.Partial {
		t.Error("successor repair with no retry budget and rejecting agents must be Partial")
	}
	if len(rep2.Windows) != 0 {
		t.Errorf("rejecting agents committed %d windows", len(rep2.Windows))
	}
	if len(rep2.Excluded) != 0 {
		t.Errorf("no retry budget, yet pods were excluded: %v", rep2.Excluded)
	}
	if rep2.Healed == nil {
		t.Fatal("partial repair has no Healed state")
	}
}

// TestRequireConnectedRefusesWindowOnDegradedFabric: a heavy uniform
// link failure partitions the live servers before any repair; the first
// dark window cannot restore connectivity (it only darkens further), so
// RequireConnected must refuse it and leave the repair Partial with
// nothing executed.
func TestRequireConnectedRefusesWindowOnDegradedFabric(t *testing.T) {
	k := 6
	hp := startHealPlant(t, k)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := hp.c.Convert(ctx, uniformModes(k, core.ModeGlobalRandom)); err != nil {
		t.Fatal(err)
	}

	rep, err := hp.c.SelfHealScenario(ctx, faults.Scenario{LinkFraction: 0.6, Seed: 21},
		SelfHealOptions{Seed: 21, BatchSize: 1, RequireConnected: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.AddedLinks == 0 {
		t.Fatal("heavy link failure planned no rewiring; nothing to refuse")
	}
	if !rep.Partial {
		t.Error("refused window must leave the repair Partial")
	}
	if len(rep.Windows) != 0 {
		t.Errorf("RequireConnected let %d windows through a partitioning dark set", len(rep.Windows))
	}
	if rep.Healed == nil {
		t.Fatal("partial repair has no Healed state")
	}
	// No window committed, so no pod-owned addition activated; only
	// ownerless core-core additions (which need no re-aim window) may
	// appear. The repair must have stopped well short of the full plan.
	if len(rep.Healed.Links) >= len(rep.Degraded.Links)+rep.AddedLinks {
		t.Errorf("refused repair activated the full plan: %d links -> %d (+%d planned)",
			len(rep.Degraded.Links), len(rep.Healed.Links), rep.AddedLinks)
	}
}
