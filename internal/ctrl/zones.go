package ctrl

import (
	"fmt"

	"flattree/internal/core"
)

// ZoneRequest describes how many servers each class of workload needs
// (§2.6: the controller "may coordinate with workload placement software to
// take advantage of the topologies"). Servers are requested, pods are
// allocated: each pod holds k^2/4 servers.
type ZoneRequest struct {
	// GlobalServers need the network-wide approximated random graph
	// (large clusters, broadcast/incast hot spots).
	GlobalServers int
	// LocalServers need per-pod local random graphs (small all-to-all
	// clusters).
	LocalServers int
	// ClosServers need Clos operation (rich equal-cost redundancy,
	// predictable path lengths, rack-level locality).
	ClosServers int
}

// PlanZoneModes turns a ZoneRequest into a per-pod mode assignment for a
// flat-tree(k).
//
// The global-random zone is always a single contiguous run of pods placed
// first: the 6-port side connectors only pair adjacent pods, so a
// fragmented global zone would lose its inter-pod links at every fragment
// boundary (ConfigFor falls back to Local there). Local-random and Clos
// pods have no inter-pod converter state and may sit anywhere; leftover
// pods default to Clos, the cheapest mode to convert away from later.
func PlanZoneModes(k int, req ZoneRequest) ([]core.Mode, error) {
	if k < 4 || k%2 != 0 {
		return nil, fmt.Errorf("ctrl: invalid k %d", k)
	}
	if req.GlobalServers < 0 || req.LocalServers < 0 || req.ClosServers < 0 {
		return nil, fmt.Errorf("ctrl: negative server request %+v", req)
	}
	podSize := k * k / 4
	podsFor := func(servers int) int {
		return (servers + podSize - 1) / podSize
	}
	g := podsFor(req.GlobalServers)
	l := podsFor(req.LocalServers)
	c := podsFor(req.ClosServers)
	if g+l+c > k {
		return nil, fmt.Errorf("ctrl: request needs %d pods (%d global + %d local + %d clos), have %d",
			g+l+c, g, l, c, k)
	}
	modes := make([]core.Mode, k)
	p := 0
	for i := 0; i < g; i++ {
		modes[p] = core.ModeGlobalRandom
		p++
	}
	for i := 0; i < l; i++ {
		modes[p] = core.ModeLocalRandom
		p++
	}
	for ; p < k; p++ {
		modes[p] = core.ModeClos
	}
	return modes, nil
}

// ZoneOf reports which zone a server's home pod belongs to under a mode
// assignment, for placement software steering workloads into the right
// zone.
func ZoneOf(ft *core.FlatTree, server int) (core.Mode, error) {
	nw := ft.Net()
	if server < 0 || server >= nw.N() {
		return 0, fmt.Errorf("ctrl: node %d out of range", server)
	}
	pod := nw.Nodes[server].Pod
	if pod < 0 || pod >= ft.Params.K {
		return 0, fmt.Errorf("ctrl: node %d has no home pod", server)
	}
	return ft.Mode(pod), nil
}
