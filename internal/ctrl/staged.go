package ctrl

import (
	"context"
	"fmt"
	"sort"

	"flattree/internal/core"
)

// StagedConvert converts the fabric to the target modes in batches of at
// most batchSize pods, committing each batch through the two-phase protocol
// before starting the next. Converter switching takes real time (§2.7),
// and while a pod's converters flip, every cable they tap is dark; staging
// bounds that blast radius.
//
// Before each batch the controller analyzes the transition window on its
// model: if requireConnected is set and the surviving fabric would
// partition the still-attached servers, the conversion stops before
// touching hardware, leaving earlier batches committed (each batch is a
// valid hybrid state, so stopping mid-way is safe).
//
// The per-batch transition reports are returned for operator visibility.
func (c *Controller) StagedConvert(ctx context.Context, modes []core.Mode, batchSize int, requireConnected bool) ([]core.TransitionReport, error) {
	if batchSize <= 0 {
		batchSize = 1
	}
	plan, err := c.Plan(modes)
	if err != nil {
		return nil, err
	}
	pods := make([]int, 0, len(plan))
	for pod := range plan {
		pods = append(pods, int(pod))
	}
	sort.Ints(pods)
	if len(pods) == 0 {
		return nil, c.Convert(ctx, modes) // mode labels only
	}

	var reports []core.TransitionReport
	for start := 0; start < len(pods); start += batchSize {
		end := start + batchSize
		if end > len(pods) {
			end = len(pods)
		}
		batch := pods[start:end]

		c.mu.Lock()
		rep, err := c.ft.AnalyzeTransition(batch)
		if err != nil {
			c.mu.Unlock()
			return reports, err
		}
		intermediate := c.ft.Modes()
		c.mu.Unlock()
		reports = append(reports, rep)
		if requireConnected && !rep.Connected {
			return reports, fmt.Errorf("ctrl: batch %v would partition live servers during switching", batch)
		}

		for _, p := range batch {
			intermediate[p] = modes[p]
		}
		if err := c.Convert(ctx, intermediate); err != nil {
			return reports, fmt.Errorf("ctrl: batch %v: %w", batch, err)
		}
	}
	return reports, nil
}
