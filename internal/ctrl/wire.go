// Package ctrl implements the flat-tree control plane of §2.6: a
// centralized controller that plans converter configurations for a target
// per-pod mode assignment and drives pod agents — the software face of the
// converter hardware — through a two-phase (stage, commit) reconfiguration
// over TCP. "The topology is changed by configuring converter switches, via
// specific control mechanisms depending on the realization technology";
// here the realization technology is a length-prefixed binary protocol and
// an in-process hardware model, with the same state machine a production
// deployment would drive optical switches with.
package ctrl

import (
	"encoding/binary"
	"fmt"
	"io"

	"flattree/internal/converter"
)

// Protocol constants.
const (
	// Magic opens every frame.
	Magic uint16 = 0xF1A7
	// Version is the protocol version.
	Version uint8 = 1
	// MaxPayload bounds a frame payload (1 MiB) so a corrupt length field
	// cannot trigger an unbounded allocation.
	MaxPayload = 1 << 20
	headerLen  = 8 // magic(2) version(1) type(1) len(4)
)

// MsgType identifies a frame.
type MsgType uint8

const (
	// MsgHello registers an agent for a pod (agent -> controller).
	MsgHello MsgType = iota + 1
	// MsgStage carries converter configurations for a pending epoch
	// (controller -> agent).
	MsgStage
	// MsgStaged acknowledges a stage (agent -> controller).
	MsgStaged
	// MsgCommit activates the staged epoch (controller -> agent).
	MsgCommit
	// MsgCommitted acknowledges a commit (agent -> controller).
	MsgCommitted
	// MsgAbort discards a staged epoch (controller -> agent).
	MsgAbort
	// MsgError reports a failure (either direction).
	MsgError
	// MsgHeartbeat is a periodic liveness beacon (agent -> controller).
	// The payload is empty; the pod is known from the registration. The
	// controller's liveness monitor declares a pod dead when its last
	// heartbeat is older than the caller's deadline.
	MsgHeartbeat
)

// String names the message type.
func (t MsgType) String() string {
	switch t {
	case MsgHello:
		return "hello"
	case MsgStage:
		return "stage"
	case MsgStaged:
		return "staged"
	case MsgCommit:
		return "commit"
	case MsgCommitted:
		return "committed"
	case MsgAbort:
		return "abort"
	case MsgError:
		return "error"
	case MsgHeartbeat:
		return "heartbeat"
	}
	return fmt.Sprintf("msgtype(%d)", uint8(t))
}

// Hello registers an agent.
type Hello struct {
	Pod           uint32
	NumConverters uint32
}

// ConfigEntry assigns one converter a configuration.
type ConfigEntry struct {
	Converter uint32
	Config    converter.Config
}

// Stage stages a set of converter configurations under an epoch.
type Stage struct {
	Epoch   uint64
	Entries []ConfigEntry
}

// Ack acknowledges a stage or commit for an epoch.
type Ack struct {
	Epoch uint64
	Pod   uint32
}

// Commit activates a staged epoch (also used for Abort).
type Commit struct {
	Epoch uint64
}

// ErrorMsg reports a failure.
type ErrorMsg struct {
	Epoch uint64
	Pod   uint32
	Text  string
}

// WriteFrame encodes one message with the standard header.
func WriteFrame(w io.Writer, t MsgType, payload []byte) error {
	if len(payload) > MaxPayload {
		return fmt.Errorf("ctrl: payload %d exceeds limit", len(payload))
	}
	hdr := make([]byte, headerLen)
	binary.BigEndian.PutUint16(hdr[0:2], Magic)
	hdr[2] = Version
	hdr[3] = uint8(t)
	binary.BigEndian.PutUint32(hdr[4:8], uint32(len(payload)))
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadFrame decodes one message header and payload.
func ReadFrame(r io.Reader) (MsgType, []byte, error) {
	hdr := make([]byte, headerLen)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return 0, nil, err
	}
	if binary.BigEndian.Uint16(hdr[0:2]) != Magic {
		return 0, nil, fmt.Errorf("ctrl: bad magic %#x", binary.BigEndian.Uint16(hdr[0:2]))
	}
	if hdr[2] != Version {
		return 0, nil, fmt.Errorf("ctrl: unsupported version %d", hdr[2])
	}
	t := MsgType(hdr[3])
	n := binary.BigEndian.Uint32(hdr[4:8])
	if n > MaxPayload {
		return 0, nil, fmt.Errorf("ctrl: payload length %d exceeds limit", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, err
	}
	return t, payload, nil
}

// Marshal/unmarshal helpers. All integers are big-endian.

// MarshalHello encodes a Hello payload.
func MarshalHello(h Hello) []byte {
	b := make([]byte, 8)
	binary.BigEndian.PutUint32(b[0:4], h.Pod)
	binary.BigEndian.PutUint32(b[4:8], h.NumConverters)
	return b
}

// UnmarshalHello decodes a Hello payload.
func UnmarshalHello(b []byte) (Hello, error) {
	if len(b) != 8 {
		return Hello{}, fmt.Errorf("ctrl: hello payload %d bytes, want 8", len(b))
	}
	return Hello{
		Pod:           binary.BigEndian.Uint32(b[0:4]),
		NumConverters: binary.BigEndian.Uint32(b[4:8]),
	}, nil
}

// MarshalStage encodes a Stage payload.
func MarshalStage(s Stage) []byte {
	b := make([]byte, 12+5*len(s.Entries))
	binary.BigEndian.PutUint64(b[0:8], s.Epoch)
	binary.BigEndian.PutUint32(b[8:12], uint32(len(s.Entries)))
	off := 12
	for _, e := range s.Entries {
		binary.BigEndian.PutUint32(b[off:off+4], e.Converter)
		b[off+4] = uint8(e.Config)
		off += 5
	}
	return b
}

// UnmarshalStage decodes a Stage payload.
func UnmarshalStage(b []byte) (Stage, error) {
	if len(b) < 12 {
		return Stage{}, fmt.Errorf("ctrl: stage payload %d bytes, want >= 12", len(b))
	}
	s := Stage{Epoch: binary.BigEndian.Uint64(b[0:8])}
	n := binary.BigEndian.Uint32(b[8:12])
	if uint32(len(b)-12) != 5*n {
		return Stage{}, fmt.Errorf("ctrl: stage payload %d bytes for %d entries", len(b), n)
	}
	s.Entries = make([]ConfigEntry, n)
	off := 12
	for i := range s.Entries {
		s.Entries[i] = ConfigEntry{
			Converter: binary.BigEndian.Uint32(b[off : off+4]),
			Config:    converter.Config(b[off+4]),
		}
		off += 5
	}
	return s, nil
}

// MarshalAck encodes an Ack payload.
func MarshalAck(a Ack) []byte {
	b := make([]byte, 12)
	binary.BigEndian.PutUint64(b[0:8], a.Epoch)
	binary.BigEndian.PutUint32(b[8:12], a.Pod)
	return b
}

// UnmarshalAck decodes an Ack payload.
func UnmarshalAck(b []byte) (Ack, error) {
	if len(b) != 12 {
		return Ack{}, fmt.Errorf("ctrl: ack payload %d bytes, want 12", len(b))
	}
	return Ack{
		Epoch: binary.BigEndian.Uint64(b[0:8]),
		Pod:   binary.BigEndian.Uint32(b[8:12]),
	}, nil
}

// MarshalCommit encodes a Commit payload.
func MarshalCommit(c Commit) []byte {
	b := make([]byte, 8)
	binary.BigEndian.PutUint64(b, c.Epoch)
	return b
}

// UnmarshalCommit decodes a Commit payload.
func UnmarshalCommit(b []byte) (Commit, error) {
	if len(b) != 8 {
		return Commit{}, fmt.Errorf("ctrl: commit payload %d bytes, want 8", len(b))
	}
	return Commit{Epoch: binary.BigEndian.Uint64(b)}, nil
}

// MarshalError encodes an ErrorMsg payload.
func MarshalError(e ErrorMsg) []byte {
	b := make([]byte, 12+len(e.Text))
	binary.BigEndian.PutUint64(b[0:8], e.Epoch)
	binary.BigEndian.PutUint32(b[8:12], e.Pod)
	copy(b[12:], e.Text)
	return b
}

// UnmarshalError decodes an ErrorMsg payload.
func UnmarshalError(b []byte) (ErrorMsg, error) {
	if len(b) < 12 {
		return ErrorMsg{}, fmt.Errorf("ctrl: error payload %d bytes, want >= 12", len(b))
	}
	return ErrorMsg{
		Epoch: binary.BigEndian.Uint64(b[0:8]),
		Pod:   binary.BigEndian.Uint32(b[8:12]),
		Text:  string(b[12:]),
	}, nil
}
