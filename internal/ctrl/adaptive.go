package ctrl

import (
	"fmt"

	"flattree/internal/core"
)

// FlowObservation is one measured flow: endpoints (server node IDs) and
// bytes carried. The controller consumes these from whatever measurement
// plane exists — internal/dynsim's FlowRecords in this repository.
type FlowObservation struct {
	Src, Dst int
	Bytes    float64
}

// AdviceThresholds tunes Advise. Zero values select defaults.
type AdviceThresholds struct {
	// CrossPodFraction above which a pod's workload is classified as
	// network-wide (global-random zone). Default 0.5.
	CrossPodFraction float64
	// IdleFraction of the mean per-pod traffic below which a pod is left
	// in (or converted back to) Clos, the cheapest mode to convert away
	// from later. Default 0.05.
	IdleFraction float64
}

// PodAdvice explains the recommendation for one pod.
type PodAdvice struct {
	Pod        int
	Bytes      float64 // bytes with >= 1 endpoint homed in this pod
	CrossFrac  float64 // fraction of those bytes crossing pods
	Recommends core.Mode
}

// Advise classifies measured traffic against the flat-tree's pod structure
// and recommends a per-pod mode assignment, the §2.6 controller's "adaptive
// manner through network measurement": pods whose traffic mostly crosses
// pods (large clusters, hot spots) want the approximated global random
// graph; pods whose traffic stays inside (small all-to-all clusters) want
// local random graphs; near-idle pods stay Clos.
//
// Pod membership is by the servers' home pods, which conversion never
// changes, so advice remains stable across reconfigurations. Note that a
// fragmented global zone loses side links at fragment boundaries
// (ConfigFor falls back to Local there); placement software that can
// migrate workloads should prefer packing global-zone tenants into
// adjacent pods, e.g. with PlanZoneModes.
func Advise(ft *core.FlatTree, obs []FlowObservation, th AdviceThresholds) ([]core.Mode, []PodAdvice, error) {
	if th.CrossPodFraction == 0 { //flatlint:ignore floatcmp zero value means unset; exact by construction
		th.CrossPodFraction = 0.5
	}
	if th.IdleFraction == 0 { //flatlint:ignore floatcmp zero value means unset; exact by construction
		th.IdleFraction = 0.05
	}
	k := ft.Params.K
	nw := ft.Net()
	podOf := func(v int) (int, error) {
		if v < 0 || v >= nw.N() {
			return 0, fmt.Errorf("ctrl: observation references node %d", v)
		}
		p := nw.Nodes[v].Pod
		if p < 0 || p >= k {
			return 0, fmt.Errorf("ctrl: node %d has no home pod", v)
		}
		return p, nil
	}

	bytesTotal := make([]float64, k)
	bytesCross := make([]float64, k)
	for _, o := range obs {
		if o.Bytes < 0 {
			return nil, nil, fmt.Errorf("ctrl: negative bytes in observation %+v", o)
		}
		ps, err := podOf(o.Src)
		if err != nil {
			return nil, nil, err
		}
		pd, err := podOf(o.Dst)
		if err != nil {
			return nil, nil, err
		}
		bytesTotal[ps] += o.Bytes
		if ps != pd {
			bytesCross[ps] += o.Bytes
			bytesTotal[pd] += o.Bytes
			bytesCross[pd] += o.Bytes
		}
	}
	mean := 0.0
	for _, b := range bytesTotal {
		mean += b
	}
	mean /= float64(k)

	modes := make([]core.Mode, k)
	advice := make([]PodAdvice, k)
	for p := 0; p < k; p++ {
		a := PodAdvice{Pod: p, Bytes: bytesTotal[p]}
		if bytesTotal[p] > 0 {
			a.CrossFrac = bytesCross[p] / bytesTotal[p]
		}
		switch {
		//flatlint:ignore floatcmp mean is exactly 0 iff no traffic was observed at all
		case mean == 0 || bytesTotal[p] < th.IdleFraction*mean:
			a.Recommends = core.ModeClos
		case a.CrossFrac > th.CrossPodFraction:
			a.Recommends = core.ModeGlobalRandom
		default:
			a.Recommends = core.ModeLocalRandom
		}
		modes[p] = a.Recommends
		advice[p] = a
	}
	return modes, advice, nil
}
