package topo

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// WriteDOT renders the network in Graphviz DOT form: switches as boxes
// colored by layer, servers as dots, links styled by provenance tag. The
// output of `flatsim export -format dot | dot -Tsvg` is the closest thing
// to the paper's Figure 2 this repository produces.
func (nw *Network) WriteDOT(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "graph %q {\n", nw.Name)
	fmt.Fprintln(bw, "  layout=neato; overlap=false; splines=true;")
	fmt.Fprintln(bw, "  node [fontsize=8];")
	for _, n := range nw.Nodes {
		var attrs string
		switch n.Kind {
		case CoreSwitch:
			attrs = "shape=box style=filled fillcolor=\"#b3c6ff\""
		case AggSwitch:
			attrs = "shape=box style=filled fillcolor=\"#c6e2c6\""
		case EdgeSwitch:
			attrs = "shape=box style=filled fillcolor=\"#f2d9b3\""
		case Server:
			attrs = "shape=point width=0.06"
		}
		label := fmt.Sprintf("%s%d", n.Kind, n.Index)
		if n.Pod >= 0 && n.Kind.IsSwitch() {
			label = fmt.Sprintf("p%d/%s%d", n.Pod, n.Kind, n.Index)
		}
		fmt.Fprintf(bw, "  n%d [label=%q %s];\n", n.ID, label, attrs)
	}
	for _, l := range nw.Links {
		style := ""
		switch l.Tag {
		case TagConverter:
			style = " [color=\"#cc4444\"]"
		case TagSide:
			style = " [color=\"#cc4444\" style=dashed]"
		case TagRandom:
			style = " [color=\"#888888\"]"
		}
		fmt.Fprintf(bw, "  n%d -- n%d%s;\n", l.A, l.B, style)
	}
	fmt.Fprintln(bw, "}")
	return bw.Flush()
}

// jsonNetwork is the stable JSON wire form of a Network.
type jsonNetwork struct {
	Name  string     `json:"name"`
	Nodes []jsonNode `json:"nodes"`
	Links []jsonLink `json:"links"`
}

type jsonNode struct {
	ID    int    `json:"id"`
	Kind  string `json:"kind"`
	Pod   int    `json:"pod"`
	Index int    `json:"index"`
	Ports int    `json:"ports"`
}

type jsonLink struct {
	A   int    `json:"a"`
	B   int    `json:"b"`
	Tag string `json:"tag"`
}

// WriteJSON serializes the network for external tooling.
func (nw *Network) WriteJSON(w io.Writer) error {
	out := jsonNetwork{Name: nw.Name}
	for _, n := range nw.Nodes {
		out.Nodes = append(out.Nodes, jsonNode{
			ID: n.ID, Kind: n.Kind.String(), Pod: n.Pod, Index: n.Index, Ports: n.Ports,
		})
	}
	for _, l := range nw.Links {
		out.Links = append(out.Links, jsonLink{A: l.A, B: l.B, Tag: l.Tag.String()})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// ReadJSON reconstructs a Network serialized by WriteJSON.
func ReadJSON(r io.Reader) (*Network, error) {
	var in jsonNetwork
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("topo: decode: %w", err)
	}
	kinds := map[string]Kind{
		"server": Server, "edge": EdgeSwitch, "agg": AggSwitch, "core": CoreSwitch,
	}
	tags := map[string]LinkTag{
		"clos": TagClos, "conv": TagConverter, "side": TagSide, "rand": TagRandom,
	}
	b := NewBuilder(in.Name)
	for i, n := range in.Nodes {
		k, ok := kinds[n.Kind]
		if !ok {
			return nil, fmt.Errorf("topo: node %d has unknown kind %q", n.ID, n.Kind)
		}
		if n.ID != i {
			return nil, fmt.Errorf("topo: node IDs must be dense and ordered (got %d at %d)", n.ID, i)
		}
		b.AddNode(k, n.Pod, n.Index, n.Ports)
	}
	for _, l := range in.Links {
		tag, ok := tags[l.Tag]
		if !ok {
			return nil, fmt.Errorf("topo: link %d-%d has unknown tag %q", l.A, l.B, l.Tag)
		}
		if l.A < 0 || l.A >= len(in.Nodes) || l.B < 0 || l.B >= len(in.Nodes) {
			return nil, fmt.Errorf("topo: link %d-%d out of range", l.A, l.B)
		}
		b.AddLink(l.A, l.B, tag)
	}
	return b.Build(), nil
}
