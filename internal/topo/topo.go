// Package topo models data-center networks at the level the flat-tree paper
// evaluates them: typed nodes (core, aggregation, and edge switches, plus
// servers), undirected unit-capacity links with provenance tags, pods, and
// strict port accounting. Every topology in this repository — fat-tree,
// Jellyfish random graph, two-stage random graph, and flat-tree in any of
// its operation modes — builds a *topo.Network, and every metric and solver
// consumes one.
package topo

import (
	"fmt"
	"sort"

	"flattree/internal/graph"
)

// Kind classifies a node.
type Kind uint8

const (
	// Server is an end host with a single network port.
	Server Kind = iota
	// EdgeSwitch is a top-of-rack (edge-layer) switch.
	EdgeSwitch
	// AggSwitch is an aggregation-layer switch.
	AggSwitch
	// CoreSwitch is a core-layer switch.
	CoreSwitch
)

// String returns a short human-readable kind name.
func (k Kind) String() string {
	switch k {
	case Server:
		return "server"
	case EdgeSwitch:
		return "edge"
	case AggSwitch:
		return "agg"
	case CoreSwitch:
		return "core"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// IsSwitch reports whether the kind is any switch layer.
func (k Kind) IsSwitch() bool { return k != Server }

// LinkTag records how a link came to exist. Tags drive the paper's
// Property 2 check (per-type link counts at core switches) and several
// ablation benchmarks; they do not affect routing or capacity.
type LinkTag uint8

const (
	// TagClos marks an original Clos link (edge-server, edge-agg, agg-core)
	// that is physically present and not spliced through a converter.
	TagClos LinkTag = iota
	// TagConverter marks an effective link created by a converter switch
	// configuration inside one pod (e.g. agg-server or core-edge splices).
	TagConverter
	// TagSide marks an effective inter-pod link created through the side
	// connectors of paired 6-port converters.
	TagSide
	// TagRandom marks a link placed by a randomized construction
	// (Jellyfish or two-stage random graph).
	TagRandom
)

// String returns a short tag name.
func (t LinkTag) String() string {
	switch t {
	case TagClos:
		return "clos"
	case TagConverter:
		return "conv"
	case TagSide:
		return "side"
	case TagRandom:
		return "rand"
	}
	return fmt.Sprintf("tag(%d)", uint8(t))
}

// Node is a device in the network.
type Node struct {
	ID   int
	Kind Kind
	// Pod is the pod index for pod-resident switches and for servers (a
	// server keeps its home pod even when a converter relocates its uplink
	// to a core switch). Core switches and pod-less topologies use -1.
	Pod int
	// Index is the node's index within its (kind, pod) group; for servers
	// it is the global server index.
	Index int
	// Ports is the port budget used for accounting (switch radix; 1 for
	// servers).
	Ports int
}

// Link is an undirected unit-capacity link.
type Link struct {
	ID  int
	A   int
	B   int
	Tag LinkTag
}

// Network is an immutable data-center network. Build one with a Builder.
type Network struct {
	Name  string
	Nodes []Node
	Links []Link

	g       *graph.Graph
	byKind  map[Kind][]int
	hostOf  []int32 // server ID -> attachment switch ID (-1 if detached)
	hosted  [][]int32
	portUse []int
}

// Graph returns the node-level graph (servers included) backing the network.
func (nw *Network) Graph() *graph.Graph { return nw.g }

// N returns the total node count.
func (nw *Network) N() int { return len(nw.Nodes) }

// NodesOf returns the IDs of all nodes of the given kind, ascending.
func (nw *Network) NodesOf(k Kind) []int { return nw.byKind[k] }

// Servers returns all server IDs, ascending.
func (nw *Network) Servers() []int { return nw.byKind[Server] }

// Switches returns all switch IDs (edge, agg, core), ascending.
func (nw *Network) Switches() []int {
	return nw.AppendSwitches(nil)
}

// AppendSwitches appends the ids of every switch node in ascending order
// to dst and returns the extended slice; pass dst[:0] to reuse a scratch
// buffer across calls.
func (nw *Network) AppendSwitches(dst []int) []int {
	dst = append(dst, nw.byKind[EdgeSwitch]...)
	dst = append(dst, nw.byKind[AggSwitch]...)
	dst = append(dst, nw.byKind[CoreSwitch]...)
	sort.Ints(dst)
	return dst
}

// HostSwitch returns the switch a server attaches to, or -1 if the server is
// detached (which ValidateConnected treats as an error).
func (nw *Network) HostSwitch(server int) int { return int(nw.hostOf[server]) }

// HostedServers returns the servers attached to the given switch.
func (nw *Network) HostedServers(sw int) []int32 { return nw.hosted[sw] }

// PortsUsed returns the number of ports consumed at node v.
func (nw *Network) PortsUsed(v int) int { return nw.portUse[v] }

// LinkEndpointKinds returns the endpoint kinds of link l ordered so the
// "higher" layer comes first (core > agg > edge > server).
func (nw *Network) LinkEndpointKinds(l Link) (Kind, Kind) {
	ka, kb := nw.Nodes[l.A].Kind, nw.Nodes[l.B].Kind
	if rank(ka) < rank(kb) {
		ka, kb = kb, ka
	}
	return ka, kb
}

func rank(k Kind) int {
	switch k {
	case CoreSwitch:
		return 3
	case AggSwitch:
		return 2
	case EdgeSwitch:
		return 1
	}
	return 0
}

// Builder assembles a Network with strict port accounting.
type Builder struct {
	name  string
	nodes []Node
	links []Link
	used  []int
}

// NewBuilder returns a builder for a network with the given name.
func NewBuilder(name string) *Builder { return &Builder{name: name} }

// AddNode adds a node and returns its ID.
func (b *Builder) AddNode(kind Kind, pod, index, ports int) int {
	id := len(b.nodes)
	b.nodes = append(b.nodes, Node{ID: id, Kind: kind, Pod: pod, Index: index, Ports: ports})
	b.used = append(b.used, 0)
	return id
}

// AddLink connects a and b, consuming one port on each. It panics if either
// node's port budget is exhausted or the endpoints are invalid — topology
// builders must be correct by construction.
func (b *Builder) AddLink(a, bb int, tag LinkTag) int {
	if a == bb {
		//flatlint:ignore nopanic documented construction invariant: builders must be correct by construction
		panic(fmt.Sprintf("topo: self link at node %d", a))
	}
	for _, v := range [2]int{a, bb} {
		if v < 0 || v >= len(b.nodes) {
			//flatlint:ignore nopanic documented construction invariant: builders must be correct by construction
			panic(fmt.Sprintf("topo: link endpoint %d out of range", v))
		}
		if b.used[v] >= b.nodes[v].Ports {
			//flatlint:ignore nopanic documented construction invariant: builders must be correct by construction
			panic(fmt.Sprintf("topo: node %d (%s pod=%d idx=%d) out of ports (%d)",
				v, b.nodes[v].Kind, b.nodes[v].Pod, b.nodes[v].Index, b.nodes[v].Ports))
		}
	}
	id := len(b.links)
	b.links = append(b.links, Link{ID: id, A: a, B: bb, Tag: tag})
	b.used[a]++
	b.used[bb]++
	return id
}

// FreePorts returns the remaining port budget at node v.
func (b *Builder) FreePorts(v int) int { return b.nodes[v].Ports - b.used[v] }

// NumNodes returns the number of nodes added so far.
func (b *Builder) NumNodes() int { return len(b.nodes) }

// Node returns a copy of node v's current record.
func (b *Builder) Node(v int) Node { return b.nodes[v] }

// Build freezes the builder into a Network.
func (b *Builder) Build() *Network {
	nw := &Network{
		Name:    b.name,
		Nodes:   b.nodes,
		Links:   b.links,
		byKind:  make(map[Kind][]int),
		portUse: b.used,
	}
	nw.g = graph.New(len(b.nodes))
	for _, l := range b.links {
		nw.g.AddEdge(l.A, l.B)
	}
	for _, n := range b.nodes {
		nw.byKind[n.Kind] = append(nw.byKind[n.Kind], n.ID)
	}
	nw.hostOf = make([]int32, len(b.nodes))
	for i := range nw.hostOf {
		nw.hostOf[i] = -1
	}
	nw.hosted = make([][]int32, len(b.nodes))
	for _, l := range b.links {
		sv, sw := -1, -1
		if b.nodes[l.A].Kind == Server && b.nodes[l.B].Kind.IsSwitch() {
			sv, sw = l.A, l.B
		} else if b.nodes[l.B].Kind == Server && b.nodes[l.A].Kind.IsSwitch() {
			sv, sw = l.B, l.A
		}
		if sv >= 0 {
			nw.hostOf[sv] = int32(sw)
			nw.hosted[sw] = append(nw.hosted[sw], int32(sv))
		}
	}
	nw.g.SortAdjacency()
	return nw
}

// Stats summarizes a network for display and sanity checks.
type Stats struct {
	Servers, EdgeSwitches, AggSwitches, CoreSwitches int
	Links                                            int
	LinksByTag                                       map[LinkTag]int
	SwitchSwitchLinks                                int
	ServerLinks                                      int
}

// Stats computes summary statistics.
func (nw *Network) Stats() Stats {
	s := Stats{
		Servers:      len(nw.byKind[Server]),
		EdgeSwitches: len(nw.byKind[EdgeSwitch]),
		AggSwitches:  len(nw.byKind[AggSwitch]),
		CoreSwitches: len(nw.byKind[CoreSwitch]),
		Links:        len(nw.Links),
		LinksByTag:   make(map[LinkTag]int),
	}
	for _, l := range nw.Links {
		s.LinksByTag[l.Tag]++
		if nw.Nodes[l.A].Kind.IsSwitch() && nw.Nodes[l.B].Kind.IsSwitch() {
			s.SwitchSwitchLinks++
		} else {
			s.ServerLinks++
		}
	}
	return s
}

// Validate checks structural invariants: every server has exactly one
// attachment, no port budget is exceeded (guaranteed by the builder but
// re-checked), and the switch fabric is connected.
func (nw *Network) Validate() error {
	for _, sv := range nw.byKind[Server] {
		deg := nw.g.Degree(sv)
		if deg != 1 {
			return fmt.Errorf("topo: server %d has %d links, want 1", sv, deg)
		}
		if nw.hostOf[sv] < 0 {
			return fmt.Errorf("topo: server %d attached to a non-switch", sv)
		}
	}
	for _, n := range nw.Nodes {
		if nw.portUse[n.ID] > n.Ports {
			return fmt.Errorf("topo: node %d exceeds port budget (%d > %d)", n.ID, nw.portUse[n.ID], n.Ports)
		}
	}
	if !nw.g.Connected() {
		return fmt.Errorf("topo: network %q is not connected", nw.Name)
	}
	return nil
}
