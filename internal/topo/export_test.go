package topo

import (
	"bytes"
	"strings"
	"testing"
)

func sampleNet() *Network {
	b := NewBuilder("sample")
	c := b.AddNode(CoreSwitch, -1, 0, 4)
	a := b.AddNode(AggSwitch, 0, 0, 4)
	e := b.AddNode(EdgeSwitch, 0, 0, 4)
	s := b.AddNode(Server, 0, 0, 1)
	b.AddLink(c, a, TagClos)
	b.AddLink(a, e, TagClos)
	b.AddLink(e, s, TagConverter)
	b.AddLink(c, e, TagSide)
	return b.Build()
}

func TestWriteDOT(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleNet().WriteDOT(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"graph \"sample\"", "n0 --", "style=dashed", "shape=point", "p0/agg0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT missing %q:\n%s", want, out)
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	nw := sampleNet()
	var buf bytes.Buffer
	if err := nw.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != nw.Name || got.N() != nw.N() || len(got.Links) != len(nw.Links) {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	for i, l := range nw.Links {
		if got.Links[i] != l {
			t.Errorf("link %d: %+v != %+v", i, got.Links[i], l)
		}
	}
	for i, n := range nw.Nodes {
		if got.Nodes[i] != n {
			t.Errorf("node %d: %+v != %+v", i, got.Nodes[i], n)
		}
	}
}

func TestReadJSONErrors(t *testing.T) {
	cases := []string{
		`{`,
		`{"name":"x","nodes":[{"id":0,"kind":"alien","pod":0,"index":0,"ports":1}]}`,
		`{"name":"x","nodes":[{"id":5,"kind":"edge","pod":0,"index":0,"ports":1}]}`,
		`{"name":"x","nodes":[{"id":0,"kind":"edge","pod":0,"index":0,"ports":4},
		  {"id":1,"kind":"edge","pod":0,"index":1,"ports":4}],
		  "links":[{"a":0,"b":9,"tag":"clos"}]}`,
		`{"name":"x","nodes":[{"id":0,"kind":"edge","pod":0,"index":0,"ports":4},
		  {"id":1,"kind":"edge","pod":0,"index":1,"ports":4}],
		  "links":[{"a":0,"b":1,"tag":"wormhole"}]}`,
	}
	for i, c := range cases {
		if _, err := ReadJSON(strings.NewReader(c)); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}
