package topo

import (
	"testing"
	"testing/quick"
)

func TestBuilderBasics(t *testing.T) {
	b := NewBuilder("t")
	sw := b.AddNode(EdgeSwitch, 0, 0, 2)
	s0 := b.AddNode(Server, 0, 0, 1)
	s1 := b.AddNode(Server, 0, 1, 1)
	b.AddLink(s0, sw, TagClos)
	b.AddLink(s1, sw, TagClos)
	nw := b.Build()
	if nw.HostSwitch(s0) != sw || nw.HostSwitch(s1) != sw {
		t.Error("host switches wrong")
	}
	if len(nw.HostedServers(sw)) != 2 {
		t.Error("hosted servers wrong")
	}
	if err := nw.Validate(); err != nil {
		t.Error(err)
	}
	if nw.PortsUsed(sw) != 2 {
		t.Error("port accounting wrong")
	}
}

func TestPortExhaustionPanics(t *testing.T) {
	b := NewBuilder("t")
	a := b.AddNode(EdgeSwitch, 0, 0, 1)
	c := b.AddNode(EdgeSwitch, 0, 1, 2)
	d := b.AddNode(EdgeSwitch, 0, 2, 2)
	b.AddLink(a, c, TagClos)
	defer func() {
		if recover() == nil {
			t.Error("expected panic on port exhaustion")
		}
	}()
	b.AddLink(a, d, TagClos)
}

func TestSelfLinkPanics(t *testing.T) {
	b := NewBuilder("t")
	a := b.AddNode(EdgeSwitch, 0, 0, 4)
	defer func() {
		if recover() == nil {
			t.Error("expected panic on self link")
		}
	}()
	b.AddLink(a, a, TagClos)
}

func TestValidateDetachedServer(t *testing.T) {
	b := NewBuilder("t")
	b.AddNode(Server, 0, 0, 1)
	sw := b.AddNode(EdgeSwitch, 0, 0, 2)
	s1 := b.AddNode(Server, 0, 1, 1)
	b.AddLink(s1, sw, TagClos)
	if err := b.Build().Validate(); err == nil {
		t.Error("detached server should fail validation")
	}
}

func TestValidateServerToServer(t *testing.T) {
	b := NewBuilder("t")
	s0 := b.AddNode(Server, 0, 0, 1)
	s1 := b.AddNode(Server, 0, 1, 1)
	b.AddLink(s0, s1, TagClos)
	if err := b.Build().Validate(); err == nil {
		t.Error("server-to-server link should fail validation")
	}
}

func TestStatsAndKinds(t *testing.T) {
	b := NewBuilder("t")
	core := b.AddNode(CoreSwitch, -1, 0, 4)
	agg := b.AddNode(AggSwitch, 0, 0, 4)
	edge := b.AddNode(EdgeSwitch, 0, 0, 4)
	sv := b.AddNode(Server, 0, 0, 1)
	b.AddLink(core, agg, TagClos)
	b.AddLink(agg, edge, TagClos)
	b.AddLink(edge, sv, TagClos)
	nw := b.Build()
	st := nw.Stats()
	if st.Links != 3 || st.SwitchSwitchLinks != 2 || st.ServerLinks != 1 {
		t.Errorf("stats = %+v", st)
	}
	ka, kb := nw.LinkEndpointKinds(nw.Links[0])
	if ka != CoreSwitch || kb != AggSwitch {
		t.Errorf("endpoint kinds = %s,%s", ka, kb)
	}
	ka, kb = nw.LinkEndpointKinds(nw.Links[2])
	if ka != EdgeSwitch || kb != Server {
		t.Errorf("endpoint kinds = %s,%s", ka, kb)
	}
	if !CoreSwitch.IsSwitch() || Server.IsSwitch() {
		t.Error("IsSwitch wrong")
	}
}

func TestNodesOfOrdering(t *testing.T) {
	err := quick.Check(func(seed uint8) bool {
		b := NewBuilder("q")
		// Interleave node kinds; NodesOf must return ascending IDs.
		kinds := []Kind{Server, EdgeSwitch, AggSwitch, CoreSwitch}
		for i := 0; i < 20; i++ {
			b.AddNode(kinds[(int(seed)+i)%4], 0, i, 8)
		}
		nw := b.Build()
		for _, k := range kinds {
			prev := -1
			for _, id := range nw.NodesOf(k) {
				if id <= prev {
					return false
				}
				prev = id
			}
		}
		sw := nw.Switches()
		prev := -1
		for _, id := range sw {
			if id <= prev || nw.Nodes[id].Kind == Server {
				return false
			}
			prev = id
		}
		return true
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestStringers(t *testing.T) {
	for _, k := range []Kind{Server, EdgeSwitch, AggSwitch, CoreSwitch, Kind(9)} {
		if k.String() == "" {
			t.Error("empty kind string")
		}
	}
	for _, tag := range []LinkTag{TagClos, TagConverter, TagSide, TagRandom, LinkTag(9)} {
		if tag.String() == "" {
			t.Error("empty tag string")
		}
	}
}
