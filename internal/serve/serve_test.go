package serve

import (
	"bytes"
	"context"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"testing"
	"time"

	"flattree/internal/experiments"
)

func testServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	if cfg.StoreDir == "" {
		cfg.StoreDir = t.TempDir()
	}
	if cfg.Defaults.KMax == 0 {
		cfg.Defaults = experiments.Config{KMin: 4, KMax: 6, KStep: 2, Seed: 1, Epsilon: 0.3, HybridK: 6}
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func get(t *testing.T, client *http.Client, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := client.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if err := resp.Body.Close(); err != nil {
		t.Fatal(err)
	}
	return resp, body
}

// TestColdWarmByteIdentical pins the cache correctness criterion: the warm
// response serves exactly the cold computation's bytes, and both match a
// direct library call.
func TestColdWarmByteIdentical(t *testing.T) {
	s := testServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	u := ts.URL + "/v1/cell?exp=fig5&col=fat-tree"
	cold, coldBody := get(t, ts.Client(), u)
	if cold.StatusCode != http.StatusOK {
		t.Fatalf("cold status %d: %s", cold.StatusCode, coldBody)
	}
	if c := cold.Header.Get("X-Flatsim-Cache"); c != "miss" {
		t.Errorf("cold cache header %q; want miss", c)
	}
	warm, warmBody := get(t, ts.Client(), u)
	if warm.StatusCode != http.StatusOK {
		t.Fatalf("warm status %d", warm.StatusCode)
	}
	if c := warm.Header.Get("X-Flatsim-Cache"); c != "hit" {
		t.Errorf("warm cache header %q; want hit", c)
	}
	if !bytes.Equal(coldBody, warmBody) {
		t.Errorf("warm response differs from cold:\n--- cold\n%s--- warm\n%s", coldBody, warmBody)
	}
	if warm.Header.Get("X-Flatsim-Key") != cold.Header.Get("X-Flatsim-Key") {
		t.Error("cold and warm keys differ")
	}

	tab, err := experiments.Cell(context.Background(), s.cfg.Defaults, experiments.CellSpec{Experiment: "fig5", Column: "fat-tree"})
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := tab.WriteTSV(&want); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(coldBody, want.Bytes()) {
		t.Errorf("served cell differs from direct computation:\n--- direct\n%s--- served\n%s", want.Bytes(), coldBody)
	}

	st := s.Counters()
	if st.Hits != 1 || st.Misses != 1 {
		t.Errorf("counters = %+v; want 1 hit, 1 miss", st)
	}

	// A fresh server over the same store directory serves the same bytes
	// — persistence across restart is the point of the store.
	s2 := testServer(t, Config{StoreDir: s.Store().Dir()})
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	restarted, restartedBody := get(t, ts2.Client(), ts2.URL+"/v1/cell?exp=fig5&col=fat-tree")
	if restarted.Header.Get("X-Flatsim-Cache") != "hit" || !bytes.Equal(restartedBody, coldBody) {
		t.Error("restarted server did not serve the persisted cell")
	}
}

// TestSingleflightSharesOneSolve pins the dedup criterion under -race:
// N concurrent identical requests run exactly one computation; the rest
// share its result.
func TestSingleflightSharesOneSolve(t *testing.T) {
	s := testServer(t, Config{})
	started := make(chan string, 1)
	release := make(chan struct{})
	s.beforeCompute = func(key string) {
		started <- key
		<-release
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const n = 6
	type result struct {
		cache string
		body  []byte
	}
	results := make(chan result, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, body := get(t, ts.Client(), ts.URL+"/v1/cell?exp=fig6&col=fat-tree")
			results <- result{resp.Header.Get("X-Flatsim-Cache"), body}
		}()
	}
	<-started
	// Hold the leader until every follower has joined its flight, so the
	// assertion below is deterministic, not a thundering-herd race.
	deadline := time.Now().Add(10 * time.Second)
	for s.flights.waiters.Load() != n-1 {
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d followers joined the flight", s.flights.waiters.Load(), n-1)
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()
	close(results)

	counts := map[string]int{}
	var first []byte
	for r := range results {
		counts[r.cache]++
		if first == nil {
			first = r.body
		} else if !bytes.Equal(first, r.body) {
			t.Error("concurrent identical requests returned different bodies")
		}
	}
	if counts["miss"] != 1 || counts["shared"] != n-1 {
		t.Errorf("cache outcomes = %v; want 1 miss, %d shared", counts, n-1)
	}
	st := s.Counters()
	if st.Misses != 1 || st.Shared != n-1 {
		t.Errorf("counters = %+v; want exactly one solve, %d shared", st, n-1)
	}
}

// TestOverloadSheds429 pins admission control: with one solver slot and a
// queue depth of one, the third distinct in-flight request is shed with
// 429 + Retry-After while the admitted two complete normally.
func TestOverloadSheds429(t *testing.T) {
	s := testServer(t, Config{Solvers: 1, QueueDepth: 1, RetryAfter: 7 * time.Second})
	started := make(chan string, 16)
	release := make(chan struct{})
	s.beforeCompute = func(key string) {
		started <- key
		<-release
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	urls := []string{
		ts.URL + "/v1/cell?exp=fig5&col=fat-tree",
		ts.URL + "/v1/cell?exp=fig5&col=random-graph",
		ts.URL + "/v1/cell?exp=fig6&col=fat-tree",
	}
	statuses := make(chan int, 2)
	var wg sync.WaitGroup
	for _, u := range urls[:2] {
		wg.Add(1)
		go func(u string) {
			defer wg.Done()
			resp, _ := get(t, ts.Client(), u)
			statuses <- resp.StatusCode
		}(u)
	}
	// First request holds the only slot (it reached beforeCompute); the
	// second is admitted and waiting for the slot.
	<-started
	deadline := time.Now().Add(10 * time.Second)
	for s.waiting.Load() != 2 {
		if time.Now().After(deadline) {
			t.Fatalf("second request never queued (waiting=%d)", s.waiting.Load())
		}
		time.Sleep(time.Millisecond)
	}

	resp, body := get(t, ts.Client(), urls[2])
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overload status = %d (%s); want 429", resp.StatusCode, body)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "7" {
		t.Errorf("Retry-After = %q; want 7", ra)
	}

	close(release)
	wg.Wait()
	close(statuses)
	for code := range statuses {
		if code != http.StatusOK {
			t.Errorf("admitted request finished with %d; want 200", code)
		}
	}
	st := s.Counters()
	if st.Sheds != 1 || st.Misses != 2 {
		t.Errorf("counters = %+v; want 1 shed, 2 misses", st)
	}
}

// TestDeadlineDegradesToApproximate pins deadline propagation end to end:
// a client timeout far below the solve time yields a 200 with a
// `~`-suffixed approximate cell — not an error — and the truncated result
// is never cached.
func TestDeadlineDegradesToApproximate(t *testing.T) {
	s := testServer(t, Config{
		Defaults: experiments.Config{KMin: 10, KMax: 10, KStep: 2, Seed: 1, Epsilon: 0.01, HybridK: 6},
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	u := ts.URL + "/v1/cell?exp=fig7&col=fat-tree/noloc&timeout=300ms"
	resp, body := get(t, ts.Client(), u)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if resp.Header.Get("X-Flatsim-Approximate") != "true" {
		t.Skipf("solve converged inside the deadline on this machine; body:\n%s", body)
	}
	if !strings.Contains(string(body), "~") {
		t.Errorf("approximate cell missing ~ marker:\n%s", body)
	}
	// Approximate results must not poison the store: the same request
	// without a timeout starts cold (miss), not from the truncated bytes.
	if st := s.Store().Stats(); st.Entries != 0 {
		t.Errorf("store has %d entries after an approximate-only run; want 0", st.Entries)
	}
	if st := s.Counters(); st.DeadlineDegrades != 1 {
		t.Errorf("counters = %+v; want 1 deadline degrade", st)
	}
}

// TestDrainFinishesInflightAndPersists pins graceful drain: cancelling
// Run's context closes the listener but lets the admitted request finish;
// its cell persists and Run returns nil.
func TestDrainFinishesInflightAndPersists(t *testing.T) {
	s := testServer(t, Config{DrainGrace: 30 * time.Second})
	started := make(chan string, 1)
	release := make(chan struct{})
	s.beforeCompute = func(key string) {
		started <- key
		<-release
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	runDone := make(chan error, 1)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		runDone <- s.Run(ctx, l)
	}()

	base := "http://" + l.Addr().String()
	respCh := make(chan *http.Response, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp, _ := get(t, http.DefaultClient, base+"/v1/cell?exp=fig5&col=fat-tree")
		respCh <- resp
	}()
	<-started

	cancel() // SIGTERM equivalent: stop accepting, drain in-flight
	// The drain must wait for the in-flight request, so Run cannot have
	// returned yet.
	select {
	case err := <-runDone:
		t.Fatalf("Run returned %v while a request was in flight", err)
	case <-time.After(50 * time.Millisecond):
	}
	close(release)

	if resp := <-respCh; resp.StatusCode != http.StatusOK {
		t.Errorf("in-flight request finished with %d; want 200", resp.StatusCode)
	}
	if err := <-runDone; err != nil {
		t.Errorf("Run = %v; want nil after clean drain", err)
	}
	wg.Wait()
	if st := s.Store().Stats(); st.Entries != 1 {
		t.Errorf("store has %d entries after drain; want the drained cell persisted", st.Entries)
	}
	// The listener is closed: new connections must fail.
	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Error("listener still accepting after drain")
	}
}

// TestBadRequests pins the 400 surface: unknown and invalid parameters
// fail loudly instead of silently computing a default cell.
func TestBadRequests(t *testing.T) {
	s := testServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	cases := []struct {
		query string
		want  string
	}{
		{"exp=nope", "unknown experiment"},
		{"exp=fig5&kMax=8", "unknown parameters"},
		{"exp=fig5&col=zzz", "no column"},
		{"exp=fig7&eps=0.9", "in (0,0.5)"},
		{"exp=fig7&trials=0", "> 0"},
		{"exp=selfheal&failfrac=1.5", "in (0,1)"},
		{"exp=soak&slo=2", "in (0,1]"},
		{"exp=fig5&timeout=-1s", "non-negative"},
		{"exp=fig5&kmin=8&kmax=4", "kmin=8 > kmax=4"},
		{"exp=faultsrecovery&k=7", ">= 4 and even"},
	}
	for _, c := range cases {
		resp, body := get(t, ts.Client(), ts.URL+"/v1/cell?"+c.query)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d; want 400", c.query, resp.StatusCode)
		}
		if !strings.Contains(string(body), c.want) {
			t.Errorf("%s: body %q does not mention %q", c.query, body, c.want)
		}
	}
}

// TestColumnsAndMetricsEndpoints covers the two discovery endpoints.
func TestColumnsAndMetricsEndpoints(t *testing.T) {
	s := testServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, body := get(t, ts.Client(), ts.URL+"/v1/columns?exp=fig7")
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "fat-tree/loc") {
		t.Errorf("columns: %d %s", resp.StatusCode, body)
	}
	resp, _ = get(t, ts.Client(), ts.URL+"/v1/columns?exp=nope")
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("columns for unknown experiment: %d; want 400", resp.StatusCode)
	}
	resp, body = get(t, ts.Client(), ts.URL+"/metricsz")
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "\"service\"") {
		t.Errorf("metricsz: %d %s", resp.StatusCode, body)
	}
	resp, body = get(t, ts.Client(), ts.URL+"/healthz")
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "ok") {
		t.Errorf("healthz: %d %s", resp.StatusCode, body)
	}
}

// TestAddressSeparatesIdentities pins the content address: every identity
// knob lands in a distinct key, and execution knobs do not.
func TestAddressSeparatesIdentities(t *testing.T) {
	base := func() cellRequest {
		req, err := parseCellRequest(experiments.Config{KMin: 4, KMax: 8, KStep: 2, Seed: 1, Epsilon: 0.1},
			url.Values{"exp": {"fig7"}, "col": {"fat-tree/loc"}})
		if err != nil {
			t.Fatal(err)
		}
		return req
	}
	keyOf := func(code string, req cellRequest) string {
		k, err := newAddress(code, req).key()
		if err != nil {
			t.Fatal(err)
		}
		return k
	}
	seen := map[string]string{}
	add := func(name, key string) {
		if prev, ok := seen[key]; ok {
			t.Errorf("%s collides with %s", name, prev)
		}
		seen[key] = name
	}
	req := base()
	add("base", keyOf("v1", req))
	add("code", keyOf("v2", base()))
	req = base()
	req.cfg.Seed = 2
	add("seed", keyOf("v1", req))
	req = base()
	req.spec.Column = "fat-tree/noloc"
	add("column", keyOf("v1", req))
	req = base()
	req.cfg.Epsilon = 0.15
	add("eps", keyOf("v1", req))
	req = base()
	req.spec.Scenario.SwitchFraction = 0.1
	add("scenario", keyOf("v1", req))

	// Execution knobs must NOT split the address.
	req = base()
	req.timeout = time.Second
	if keyOf("v1", req) != keyOf("v1", base()) {
		t.Error("timeout leaked into the content address")
	}
	req = base()
	req.cfg.Parallelism = 7
	req.cfg.SolveBudget = time.Second
	if keyOf("v1", req) != keyOf("v1", base()) {
		t.Error("parallelism/budget leaked into the content address")
	}
}
