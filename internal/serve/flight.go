package serve

import (
	"context"
	"sync"
	"sync/atomic"
)

// cellResult is what one computation produces and every request of the
// flight shares.
type cellResult struct {
	body        []byte
	approximate bool
}

// flightCall is one in-flight computation; done closes when body/err are
// final.
type flightCall struct {
	done chan struct{}
	res  *cellResult
	err  error
}

// flightGroup is a minimal singleflight: concurrent do calls with the same
// key share one execution of fn. The flight key includes the request
// timeout (not just the content address), so a short-deadline leader can
// never hand its truncated approximate result to a follower that asked for
// a full solve.
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flightCall
	// waiters counts followers currently blocked on a leader — tests use
	// it to sequence deterministically; it is not a metric.
	waiters atomic.Int64
}

// do runs fn once per key among concurrent callers. The second return is
// true for followers that shared a leader's result. A follower whose ctx
// ends stops waiting and returns the ctx error; the leader's computation
// continues for the remaining followers.
func (g *flightGroup) do(ctx context.Context, key string, fn func() (*cellResult, error)) (*cellResult, bool, error) {
	g.mu.Lock()
	if g.m == nil {
		g.m = make(map[string]*flightCall)
	}
	if c, ok := g.m[key]; ok {
		g.mu.Unlock()
		g.waiters.Add(1)
		defer g.waiters.Add(-1)
		select {
		case <-c.done:
			return c.res, true, c.err
		case <-ctx.Done():
			return nil, true, ctx.Err()
		}
	}
	c := &flightCall{done: make(chan struct{})}
	g.m[key] = c
	g.mu.Unlock()

	c.res, c.err = fn()
	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	close(c.done)
	return c.res, false, c.err
}
