// Package serve is the experiment service behind `flatsim serve`: a
// long-running HTTP server answering experiment-cell requests from a
// crash-safe content-addressed store, computing misses on a bounded solver
// pool.
//
// The robustness posture, end to end:
//
//   - Results are keyed by content address — a SHA-256 over the canonical
//     (config, seed, code-version) identity — and the determinism contract
//     (cells are byte-identical at any parallelism) is what makes serving
//     a stored cell indistinguishable from recomputing it.
//   - Admission control bounds memory and goroutines: at most Solvers
//     cells compute concurrently, at most QueueDepth more may wait, and
//     everything beyond that is shed with 429 + Retry-After.
//   - Client deadlines propagate: the timeout parameter bounds the request
//     context, mcf turns the context deadline into a solve budget, and the
//     response degrades to a `~`-suffixed approximate λ — served, flagged,
//     and never cached.
//   - Concurrent identical requests share one computation (singleflight),
//     keyed by content address plus timeout so short-deadline truncations
//     never leak into full-solve responses.
//   - SIGTERM drains: the listener closes, in-flight cells get DrainGrace
//     to finish (completed ones persist), then their contexts cancel.
package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"flattree/internal/experiments"
	"flattree/internal/metrics"
	"flattree/internal/parallel"
	"flattree/internal/store"
)

// Config shapes a Server.
type Config struct {
	// StoreDir is the result store's directory.
	StoreDir string
	// Solvers caps concurrently computing cells (0 = GOMAXPROCS);
	// QueueDepth caps how many more may wait for a slot before new work
	// is shed with 429 (0 = 2×Solvers).
	Solvers    int
	QueueDepth int
	// JobParallelism is the worker count inside one cell computation
	// (experiments.Config.Parallelism); 0 inherits Defaults.Parallelism.
	JobParallelism int
	// RetryAfter is the backoff hint sent with 429 responses (default 1s).
	RetryAfter time.Duration
	// DrainGrace is how long in-flight computations may run after Run's
	// context ends before their contexts cancel (default 10s).
	DrainGrace time.Duration
	// ReadHeaderTimeout bounds header reads on accepted connections
	// (default 5s) — a slowloris client must not pin a connection.
	ReadHeaderTimeout time.Duration
	// CodeVersion is the code component of every content address; results
	// computed by different code must never collide (default "dev").
	CodeVersion string
	// Defaults seeds each request's experiments.Config; requests override
	// the identity fields (kmin, seed, ...) per query.
	Defaults experiments.Config
}

// withDefaults resolves the zero values.
func (c Config) withDefaults() Config {
	c.Solvers = parallel.Workers(c.Solvers)
	if c.QueueDepth <= 0 {
		c.QueueDepth = 2 * c.Solvers
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.DrainGrace <= 0 {
		c.DrainGrace = 10 * time.Second
	}
	if c.ReadHeaderTimeout <= 0 {
		c.ReadHeaderTimeout = 5 * time.Second
	}
	if c.CodeVersion == "" {
		c.CodeVersion = "dev"
	}
	return c
}

// Server answers experiment-cell requests. Create with New, serve with Run.
type Server struct {
	cfg      Config
	st       *store.Store
	counters metrics.ServiceCounters
	// slots is the solver-pool semaphore; waiting counts requests holding
	// or waiting for a slot, so admission can shed at a hard bound.
	slots   chan struct{}
	waiting atomic.Int64
	flights flightGroup
	// beforeCompute, when set, runs after admission and before the cell
	// computes — a test seam to hold a leader in place deterministically.
	beforeCompute func(key string)
}

// errShed marks a request rejected at admission.
var errShed = errors.New("serve: solver pool saturated")

// New opens (and recovers) the store and builds the server.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	st, err := store.Open(cfg.StoreDir)
	if err != nil {
		return nil, err
	}
	return &Server{
		cfg:   cfg,
		st:    st,
		slots: make(chan struct{}, cfg.Solvers),
	}, nil
}

// Store exposes the underlying result store (tests and drain logging).
func (s *Server) Store() *store.Store { return s.st }

// Counters snapshots the service counters.
func (s *Server) Counters() metrics.ServiceStats { return s.counters.Read() }

// Handler builds the route table.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/cell", s.handleCell)
	mux.HandleFunc("GET /v1/columns", s.handleColumns)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metricsz", s.handleMetricsz)
	return mux
}

// handleCell is the request path described in the package comment: content
// address → store → singleflight'd admission-controlled compute.
func (s *Server) handleCell(w http.ResponseWriter, r *http.Request) {
	req, err := parseCellRequest(s.cfg.Defaults, r.URL.Query())
	if err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	key, err := newAddress(s.cfg.CodeVersion, req).key()
	if err != nil {
		s.counters.Error()
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}

	if body, ok, err := s.st.Get(key); err != nil {
		s.counters.Error()
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	} else if ok {
		s.counters.Hit()
		writeCell(w, key, "hit", false, body)
		return
	}

	ctx := r.Context()
	if req.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, req.timeout)
		defer cancel()
	}
	// The flight key carries the timeout so a truncated solve is only ever
	// shared among requests that asked for that truncation.
	flightKey := key + "|" + req.timeout.String()
	res, shared, err := s.flights.do(ctx, flightKey, func() (*cellResult, error) {
		return s.compute(ctx, key, req)
	})
	switch {
	case errors.Is(err, errShed):
		s.counters.Shed()
		w.Header().Set("Retry-After", strconv.Itoa(int((s.cfg.RetryAfter+time.Second-1)/time.Second)))
		http.Error(w, "solver pool saturated, retry later", http.StatusTooManyRequests)
		return
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		s.counters.Error()
		http.Error(w, "computation cancelled: "+err.Error(), http.StatusServiceUnavailable)
		return
	case err != nil:
		s.counters.Error()
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	cache := "miss"
	if shared {
		cache = "shared"
		s.counters.Share()
	}
	writeCell(w, key, cache, res.approximate, res.body)
}

// compute runs one cold cell under admission control; it is the flight
// leader's body, executed once per (address, timeout) among concurrent
// identical requests.
func (s *Server) compute(ctx context.Context, key string, req cellRequest) (*cellResult, error) {
	// Admission: the pool holds Solvers computing + QueueDepth waiting;
	// anyone past that is shed immediately rather than queued into
	// unbounded memory.
	if s.waiting.Add(1) > int64(s.cfg.Solvers+s.cfg.QueueDepth) {
		s.waiting.Add(-1)
		return nil, errShed
	}
	defer s.waiting.Add(-1)
	select {
	case s.slots <- struct{}{}:
		defer func() { <-s.slots }()
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	if s.beforeCompute != nil {
		s.beforeCompute(key)
	}
	s.counters.Miss()

	cfg := req.cfg
	cfg.Parallelism = s.cfg.JobParallelism
	if cfg.Parallelism == 0 {
		cfg.Parallelism = s.cfg.Defaults.Parallelism
	}
	tab, err := experiments.Cell(ctx, cfg, req.spec)
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if err := tab.WriteTSV(&buf); err != nil {
		return nil, err
	}
	res := &cellResult{body: buf.Bytes(), approximate: tab.Approximate()}
	if res.approximate {
		// A deadline-truncated cell is served but never persisted: the
		// bytes depend on machine speed, and the next cold request should
		// get the chance to converge.
		if req.timeout > 0 {
			s.counters.DeadlineDegrade()
		}
		return res, nil
	}
	if err := s.st.Put(key, res.body); err != nil {
		return nil, err
	}
	return res, nil
}

// writeCell writes a cell response with its provenance headers.
func writeCell(w http.ResponseWriter, key, cache string, approximate bool, body []byte) {
	h := w.Header()
	h.Set("Content-Type", "text/tab-separated-values; charset=utf-8")
	h.Set("X-Flatsim-Key", key)
	h.Set("X-Flatsim-Cache", cache)
	h.Set("X-Flatsim-Approximate", strconv.FormatBool(approximate))
	h.Set("Content-Length", strconv.Itoa(len(body)))
	_, _ = w.Write(body) //flatlint:ignore ignorederr a failed response write means the client went away; nothing to do server-side
}

// handleColumns lists an experiment's selectable columns as JSON; a
// whole-table experiment lists none.
func (s *Server) handleColumns(w http.ResponseWriter, r *http.Request) {
	exp := r.URL.Query().Get("exp")
	cols, err := experiments.Columns(exp)
	if err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	writeJSON(w, struct {
		Experiment string   `json:"experiment"`
		Columns    []string `json:"columns"`
	}{exp, cols})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// handleMetricsz reports the service and store counters as JSON.
func (s *Server) handleMetricsz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, struct {
		Service metrics.ServiceStats `json:"service"`
		Store   store.Stats          `json:"store"`
	}{s.counters.Read(), s.st.Stats()})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v) //flatlint:ignore ignorederr a failed response write means the client went away; nothing to do server-side
}

// Run serves until ctx ends, then drains: stop accepting, give in-flight
// requests DrainGrace to finish (their completed cells persist via the
// normal path), cancel whatever remains, and return nil on a clean drain.
// The compute context handed to requests via BaseContext outlives ctx by
// DrainGrace — cancellation of ctx means "stop serving", not "abandon
// work already admitted".
func (s *Server) Run(ctx context.Context, l net.Listener) error {
	computeCtx, cancelCompute := context.WithCancel(context.Background())
	defer cancelCompute()
	hs := &http.Server{
		Handler:           s.Handler(),
		ReadHeaderTimeout: s.cfg.ReadHeaderTimeout,
		BaseContext:       func(net.Listener) context.Context { return computeCtx },
	}
	var wg sync.WaitGroup
	wg.Add(1)
	serveErr := make(chan error, 1)
	go func() {
		defer wg.Done()
		serveErr <- hs.Serve(l)
	}()

	select {
	case err := <-serveErr:
		// Listener failure before any shutdown was asked for.
		wg.Wait()
		return err
	case <-ctx.Done():
	}

	// Drain: Shutdown closes the listener and waits for in-flight
	// requests; the grace timer cancels their compute contexts if they
	// overstay, which budget-degrades or aborts the solves and lets
	// Shutdown complete.
	timer := time.AfterFunc(s.cfg.DrainGrace, cancelCompute)
	defer timer.Stop()
	shutCtx, cancel := context.WithTimeout(context.Background(), s.cfg.DrainGrace+5*time.Second)
	defer cancel()
	err := hs.Shutdown(shutCtx)
	wg.Wait()
	if err != nil {
		_ = hs.Close() //flatlint:ignore ignorederr forced close after a failed drain; the error to surface is Shutdown's
		return fmt.Errorf("serve: drain: %w", err)
	}
	return nil
}
