package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net/url"
	"sort"
	"strconv"
	"time"

	"flattree/internal/experiments"
)

// cellRequest is one parsed /v1/cell request: the result identity (spec +
// config) plus the execution knobs that must never reach the content
// address (timeout — it shapes when a solve stops, and approximate results
// are never cached, so admitting it into the key would only split identical
// cells across addresses).
type cellRequest struct {
	spec    experiments.CellSpec
	cfg     experiments.Config
	timeout time.Duration
}

// address is the canonical identity of a cell result. It is marshaled as
// JSON with a fixed field set — struct order makes the encoding canonical —
// and hashed to the store key. Every field either changes the bytes a cell
// prints or versions the code that prints them; execution knobs
// (parallelism, SSSP kernel, timeouts, solve budgets) are deliberately
// absent. Bump the "v" constant in newAddress when cell bytes change
// meaning without any field changing.
type address struct {
	Format     int     `json:"v"`
	Code       string  `json:"code"`
	Experiment string  `json:"experiment"`
	Column     string  `json:"column"`
	KMin       int     `json:"kmin"`
	KMax       int     `json:"kmax"`
	KStep      int     `json:"kstep"`
	Seed       uint64  `json:"seed"`
	Epsilon    float64 `json:"eps"`
	HybridK    int     `json:"hybridk"`
	Trials     int     `json:"trials"`
	K          int     `json:"k"`
	ProfileK   int     `json:"profilek"`
	FailFrac   float64 `json:"failfrac"`
	Batch      int     `json:"batch"`
	Load       float64 `json:"load"`
	SwitchFrac float64 `json:"switchfrac"`
	BurstPods  int     `json:"burstpods"`
	BurstFrac  float64 `json:"burstfrac"`
	ConvFrac   float64 `json:"convfrac"`
	Rate       float64 `json:"rate"`
	Horizon    float64 `json:"horizon"`
	Episodes   int     `json:"episodes"`
	WindowCost float64 `json:"windowcost"`
	SLO        float64 `json:"slo"`
}

// newAddress folds a request's identity into the canonical struct.
func newAddress(code string, req cellRequest) address {
	return address{
		Format:     1,
		Code:       code,
		Experiment: req.spec.Experiment,
		Column:     req.spec.Column,
		KMin:       req.cfg.KMin,
		KMax:       req.cfg.KMax,
		KStep:      req.cfg.KStep,
		Seed:       req.cfg.Seed,
		Epsilon:    req.cfg.Epsilon,
		HybridK:    req.cfg.HybridK,
		Trials:     req.cfg.Trials,
		K:          req.spec.K,
		ProfileK:   req.spec.ProfileK,
		FailFrac:   req.spec.FailFrac,
		Batch:      req.spec.Batch,
		Load:       req.spec.Load,
		SwitchFrac: req.spec.Scenario.SwitchFraction,
		BurstPods:  req.spec.Scenario.BurstPods,
		BurstFrac:  req.spec.Scenario.BurstLinkFraction,
		ConvFrac:   req.spec.Scenario.ConverterFraction,
		Rate:       req.spec.Soak.Rate,
		Horizon:    req.spec.Soak.Horizon,
		Episodes:   req.spec.Soak.MaxEpisodes,
		WindowCost: req.spec.Soak.WindowCost,
		SLO:        req.spec.Soak.SLOThreshold,
	}
}

// key hashes the canonical encoding to the 64-hex store key.
func (a address) key() (string, error) {
	b, err := json.Marshal(a)
	if err != nil {
		return "", fmt.Errorf("serve: encoding content address: %w", err)
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}

// cellParams enumerates every accepted /v1/cell query parameter; anything
// else is a 400 so client typos ("kMax", "epsilon") fail loudly instead of
// silently computing the default cell.
var cellParams = map[string]bool{
	"exp": true, "col": true,
	"kmin": true, "kmax": true, "kstep": true, "seed": true, "eps": true,
	"hybridk": true, "trials": true,
	"k": true, "profilek": true,
	"failfrac": true, "batch": true, "load": true,
	"switchfrac": true, "burstpods": true, "burstfrac": true, "convfrac": true,
	"rate": true, "horizon": true, "episodes": true, "windowcost": true, "slo": true,
	"timeout": true,
}

// parseCellRequest validates a /v1/cell query against defaults. Every
// error is a client error (http 400).
func parseCellRequest(defaults experiments.Config, q url.Values) (cellRequest, error) {
	var unknown []string
	for name := range q {
		if !cellParams[name] {
			unknown = append(unknown, name)
		}
	}
	if len(unknown) > 0 {
		sort.Strings(unknown)
		return cellRequest{}, fmt.Errorf("unknown parameters %v", unknown)
	}

	req := cellRequest{cfg: defaults}
	var err error
	getInt := func(name string, dst *int, ok func(int) bool, domain string) {
		if err != nil || !q.Has(name) {
			return
		}
		v, convErr := strconv.Atoi(q.Get(name))
		if convErr != nil || !ok(v) {
			err = fmt.Errorf("%s=%q must be an integer %s", name, q.Get(name), domain)
			return
		}
		*dst = v
	}
	getFloat := func(name string, dst *float64, ok func(float64) bool, domain string) {
		if err != nil || !q.Has(name) {
			return
		}
		v, convErr := strconv.ParseFloat(q.Get(name), 64)
		if convErr != nil || !ok(v) {
			err = fmt.Errorf("%s=%q must be a number %s", name, q.Get(name), domain)
			return
		}
		*dst = v
	}

	req.spec.Experiment = q.Get("exp")
	if _, expErr := experiments.Columns(req.spec.Experiment); expErr != nil {
		return cellRequest{}, expErr
	}
	req.spec.Column = q.Get("col")

	any := func(int) bool { return true }
	pos := func(v int) bool { return v > 0 }
	nonNeg := func(v int) bool { return v >= 0 }
	frac01 := func(v float64) bool { return v >= 0 && v < 1 }
	getInt("kmin", &req.cfg.KMin, any, "")
	getInt("kmax", &req.cfg.KMax, any, "")
	getInt("kstep", &req.cfg.KStep, pos, "> 0")
	if err == nil && q.Has("seed") {
		v, convErr := strconv.ParseUint(q.Get("seed"), 10, 64)
		if convErr != nil {
			err = fmt.Errorf("seed=%q must be a uint64", q.Get("seed"))
		} else {
			req.cfg.Seed = v
		}
	}
	getFloat("eps", &req.cfg.Epsilon, func(v float64) bool { return v > 0 && v < 0.5 }, "in (0,0.5)")
	getInt("hybridk", &req.cfg.HybridK, pos, "> 0")
	getInt("trials", &req.cfg.Trials, pos, "> 0")
	getInt("k", &req.spec.K, func(v int) bool { return v >= 4 && v%2 == 0 }, ">= 4 and even")
	getInt("profilek", &req.spec.ProfileK, func(v int) bool { return v >= 4 && v%2 == 0 }, ">= 4 and even")
	getFloat("failfrac", &req.spec.FailFrac, func(v float64) bool { return v > 0 && v < 1 }, "in (0,1)")
	getInt("batch", &req.spec.Batch, pos, "> 0")
	getFloat("load", &req.spec.Load, func(v float64) bool { return v >= 0 }, ">= 0")
	getFloat("switchfrac", &req.spec.Scenario.SwitchFraction, frac01, "in [0,1)")
	getInt("burstpods", &req.spec.Scenario.BurstPods, nonNeg, ">= 0")
	getFloat("burstfrac", &req.spec.Scenario.BurstLinkFraction, frac01, "in [0,1)")
	getFloat("convfrac", &req.spec.Scenario.ConverterFraction, frac01, "in [0,1)")
	getFloat("rate", &req.spec.Soak.Rate, func(v float64) bool { return v > 0 }, "> 0")
	getFloat("horizon", &req.spec.Soak.Horizon, func(v float64) bool { return v > 0 }, "> 0")
	getInt("episodes", &req.spec.Soak.MaxEpisodes, nonNeg, ">= 0")
	getFloat("windowcost", &req.spec.Soak.WindowCost, func(v float64) bool { return v > 0 }, "> 0")
	getFloat("slo", &req.spec.Soak.SLOThreshold, func(v float64) bool { return v > 0 && v <= 1 }, "in (0,1]")
	if err == nil && q.Has("timeout") {
		d, convErr := time.ParseDuration(q.Get("timeout"))
		if convErr != nil || d < 0 {
			err = fmt.Errorf("timeout=%q must be a non-negative Go duration", q.Get("timeout"))
		} else {
			req.timeout = d
		}
	}
	if err != nil {
		return cellRequest{}, err
	}
	if req.cfg.KMin > req.cfg.KMax {
		return cellRequest{}, fmt.Errorf("kmin=%d > kmax=%d", req.cfg.KMin, req.cfg.KMax)
	}
	if req.spec.Column != "" {
		cols, _ := experiments.Columns(req.spec.Experiment)
		if cols != nil {
			found := false
			for _, c := range cols {
				found = found || c == req.spec.Column
			}
			if !found {
				return cellRequest{}, fmt.Errorf("exp=%s has no column %q (have %v)", req.spec.Experiment, req.spec.Column, cols)
			}
		}
	}
	return req, nil
}
