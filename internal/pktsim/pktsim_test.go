package pktsim

import (
	"math"
	"testing"

	"flattree/internal/core"
	"flattree/internal/fattree"
	"flattree/internal/graph"
	"flattree/internal/routing"
	"flattree/internal/topo"
)

// lineNet: sw0 - sw1 - sw2 with a server on each end.
func lineNet() (*topo.Network, []int) {
	b := topo.NewBuilder("line")
	var sw [3]int
	for i := range sw {
		sw[i] = b.AddNode(topo.EdgeSwitch, 0, i, 4)
	}
	b.AddLink(sw[0], sw[1], topo.TagClos)
	b.AddLink(sw[1], sw[2], topo.TagClos)
	var servers []int
	for i, s := range []int{sw[0], sw[2]} {
		sv := b.AddNode(topo.Server, 0, i, 1)
		b.AddLink(sv, s, topo.TagClos)
		servers = append(servers, sv)
	}
	return b.Build(), servers
}

func TestSinglePacketLatency(t *testing.T) {
	nw, servers := lineNet()
	table := routing.BuildTable(nw)
	res, err := Simulate(nw, table, []Packet{
		{Time: 0, Src: servers[0], Dst: servers[1], Flow: 1},
	}, Config{PropDelay: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered != 1 || res.Dropped != 0 {
		t.Fatalf("res = %+v", res)
	}
	// Two switch hops: 2 transmissions (1 each) + 2 propagations (0.5).
	if math.Abs(res.MeanLatency-3.0) > 1e-9 {
		t.Errorf("latency = %g, want 3.0", res.MeanLatency)
	}
	if res.MeanHops != 2 {
		t.Errorf("hops = %g, want 2", res.MeanHops)
	}
}

func TestQueueingDelay(t *testing.T) {
	nw, servers := lineNet()
	table := routing.BuildTable(nw)
	// Two simultaneous packets on the same path: the second waits one
	// transmission time at the first link.
	res, err := Simulate(nw, table, []Packet{
		{Time: 0, Src: servers[0], Dst: servers[1], Flow: 1},
		{Time: 0, Src: servers[0], Dst: servers[1], Flow: 2},
	}, Config{PropDelay: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered != 2 {
		t.Fatalf("delivered %d", res.Delivered)
	}
	// Latencies 3.0 and 4.0 -> mean 3.5 (pipelining hides nothing at the
	// bottleneck first link; the second link is idle when pkt2 arrives).
	if math.Abs(res.MeanLatency-3.5) > 1e-9 {
		t.Errorf("mean latency = %g, want 3.5", res.MeanLatency)
	}
	if res.MaxQueue != 2 {
		t.Errorf("max queue = %d, want 2", res.MaxQueue)
	}
}

func TestQueueOverflowDrops(t *testing.T) {
	nw, servers := lineNet()
	table := routing.BuildTable(nw)
	var pkts []Packet
	for i := 0; i < 5; i++ {
		pkts = append(pkts, Packet{Time: 0, Src: servers[0], Dst: servers[1], Flow: uint64(i)})
	}
	res, err := Simulate(nw, table, pkts, Config{QueueLimit: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Dropped != 3 || res.Delivered != 2 {
		t.Errorf("res = %+v, want 2 delivered / 3 dropped", res)
	}
	if res.Sent != 5 || res.Delivered+res.Dropped != res.Sent {
		t.Errorf("conservation violated: %+v", res)
	}
}

func TestSameSwitchDeliveryInstant(t *testing.T) {
	b := topo.NewBuilder("one")
	sw := b.AddNode(topo.EdgeSwitch, 0, 0, 4)
	sw2 := b.AddNode(topo.EdgeSwitch, 0, 1, 4)
	b.AddLink(sw, sw2, topo.TagClos)
	s0 := b.AddNode(topo.Server, 0, 0, 1)
	s1 := b.AddNode(topo.Server, 0, 1, 1)
	b.AddLink(s0, sw, topo.TagClos)
	b.AddLink(s1, sw, topo.TagClos)
	nw := b.Build()
	res, err := Simulate(nw, routing.BuildTable(nw), []Packet{
		{Time: 1, Src: s0, Dst: s1, Flow: 9},
	}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered != 1 || res.MeanLatency != 0 || res.MeanHops != 0 {
		t.Errorf("res = %+v", res)
	}
}

// TestECMPFlowConsistency: packets of one flow take one path (no
// reordering across equal-cost paths); packets of many flows spread.
func TestECMPFlowConsistency(t *testing.T) {
	f, err := fattree.New(4)
	if err != nil {
		t.Fatal(err)
	}
	table := routing.BuildTable(f.Net)
	// Single flow, many packets: deliveries must be in order (FIFO along
	// a single path).
	var pkts []Packet
	for i := 0; i < 20; i++ {
		pkts = append(pkts, Packet{Time: float64(i) * 0.1, Src: f.ServerIDs[0], Dst: f.ServerIDs[12], Flow: 7})
	}
	res, err := Simulate(f.Net, table, pkts, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered != 20 {
		t.Fatalf("delivered %d/20", res.Delivered)
	}
	// All packets of one flow share the path, so hop counts are equal:
	// mean is an integer.
	if res.MeanHops != math.Trunc(res.MeanHops) {
		t.Errorf("single flow took multiple paths: mean hops %g", res.MeanHops)
	}
}

// TestFatTreeUniformTraffic: conservation and sane latency under load.
func TestFatTreeUniformTraffic(t *testing.T) {
	f, err := fattree.New(4)
	if err != nil {
		t.Fatal(err)
	}
	rng := graph.NewRNG(3)
	pkts := PoissonPackets(f.ServerIDs, 5.0, 400, 4, rng)
	res, err := Simulate(f.Net, routing.BuildTable(f.Net), pkts, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered+res.Dropped != res.Sent {
		t.Fatalf("conservation violated: %+v", res)
	}
	if res.Delivered < res.Sent*9/10 {
		t.Errorf("too many drops at light load: %+v", res)
	}
	// Minimum possible latency is 2 hops * (1 + 0.05).
	if res.MeanLatency < 2.1 {
		t.Errorf("mean latency %g below physical floor", res.MeanLatency)
	}
	if res.Utilization <= 0 || res.Utilization > 1 {
		t.Errorf("utilization %g out of range", res.Utilization)
	}
}

// TestGlobalRandomLowerLatency: the Figure-5 APL gap shows up as packet
// latency — flat-tree in global-random mode delivers uniform traffic with
// lower mean latency than the same plant in Clos mode.
func TestGlobalRandomLowerLatency(t *testing.T) {
	ft, err := core.Build(core.Params{K: 8})
	if err != nil {
		t.Fatal(err)
	}
	run := func(mode core.Mode) Result {
		if err := ft.SetUniformMode(mode); err != nil {
			t.Fatal(err)
		}
		nw := ft.Net()
		rng := graph.NewRNG(17)
		pkts := PoissonPackets(nw.Servers(), 10.0, 1500, 4, rng)
		res, err := Simulate(nw, routing.BuildTable(nw), pkts, Config{})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	clos := run(core.ModeClos)
	global := run(core.ModeGlobalRandom)
	if global.MeanHops >= clos.MeanHops {
		t.Errorf("global-random hops %g not below Clos %g", global.MeanHops, clos.MeanHops)
	}
	if global.MeanLatency >= clos.MeanLatency {
		t.Errorf("global-random latency %g not below Clos %g", global.MeanLatency, clos.MeanLatency)
	}
}

func TestErrors(t *testing.T) {
	nw, servers := lineNet()
	table := routing.BuildTable(nw)
	if _, err := Simulate(nw, table, []Packet{{Src: -1, Dst: servers[0]}}, Config{}); err == nil {
		t.Error("bad src accepted")
	}
	if _, err := Simulate(nw, table, nil, Config{PropDelay: -1}); err == nil {
		t.Error("negative delay accepted")
	}
}
