// Package pktsim is a packet-level discrete-event simulator: packets are
// routed hop by hop through the switch fabric using per-flow ECMP hashing
// over a routing.Table, every directed link is a unit-rate store-and-forward
// server with a finite FIFO queue, and the simulator reports end-to-end
// latency, hop counts, drops, and link utilization.
//
// Where internal/mcf answers "what is the optimal-routing capacity?" and
// internal/dynsim answers "how do fluid flows fare under max-min sharing?",
// pktsim answers the question operators ask first: what latency do packets
// see — and it makes the average-path-length differences of Figures 5 and 6
// directly observable as nanoseconds-on-the-wire.
package pktsim

import (
	"container/heap"
	"fmt"
	"math"
	"sort"

	"flattree/internal/graph"
	"flattree/internal/routing"
	"flattree/internal/topo"
)

// Packet is one injected packet. Packets of the same Flow hash to the same
// ECMP path choices, like a real 5-tuple.
type Packet struct {
	Time     float64
	Src, Dst int // server node IDs
	Flow     uint64
}

// Config tunes the simulator.
type Config struct {
	// QueueLimit is the per-directed-link FIFO capacity in packets
	// (default 64). Arrivals to a full queue are dropped.
	QueueLimit int
	// PropDelay is the per-hop propagation delay added after the unit
	// transmission time (default 0.05).
	PropDelay float64
	// HopLimit drops packets that exceed it (default 32), guarding
	// against routing loops.
	HopLimit int
}

// Result summarizes a run.
type Result struct {
	Sent, Delivered, Dropped int
	// MeanLatency and P99Latency are end-to-end (injection to delivery).
	MeanLatency, P99Latency float64
	// MeanHops counts switch-switch traversals of delivered packets.
	MeanHops float64
	// MaxQueue is the deepest any queue got.
	MaxQueue int
	// Utilization is mean busy fraction over directed links, measured
	// until the last delivery.
	Utilization float64
}

type pkt struct {
	Packet
	dstSwitch int32
	hops      int
}

type queuedLink struct {
	queue []*pkt
	busy  bool
	// busyTime accumulates transmission time for utilization.
	busyTime float64
}

type event struct {
	time float64
	kind uint8 // 0 = injection, 1 = tx complete, 2 = hop arrival
	link int32 // tx complete: which directed link
	at   int32 // hop arrival: which switch
	pkt  *pkt  // injection / hop arrival
	seq  int64
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	//flatlint:ignore floatcmp deterministic ordering: only bit-identical times fall through to the seq tie-break
	if q[i].time != q[j].time {
		return q[i].time < q[j].time
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x interface{}) { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() interface{} {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

// Simulate runs the packet simulation over the injected packets using the
// forwarding table's ECMP next hops.
func Simulate(nw *topo.Network, table *routing.Table, packets []Packet, cfg Config) (Result, error) {
	if cfg.QueueLimit <= 0 {
		cfg.QueueLimit = 64
	}
	if cfg.PropDelay < 0 {
		return Result{}, fmt.Errorf("pktsim: negative propagation delay")
	}
	if cfg.PropDelay == 0 { //flatlint:ignore floatcmp zero value means unset; exact by construction
		cfg.PropDelay = 0.05
	}
	if cfg.HopLimit <= 0 {
		cfg.HopLimit = 32
	}

	// Directed link state, keyed by (from, to) switch pair.
	type dirKey struct{ from, to int32 }
	linkIdx := make(map[dirKey]int32)
	var links []queuedLink
	var linkTo []int32 // destination switch of each directed link
	for _, l := range nw.Links {
		if !nw.Nodes[l.A].Kind.IsSwitch() || !nw.Nodes[l.B].Kind.IsSwitch() {
			continue
		}
		for _, d := range [2]dirKey{{int32(l.A), int32(l.B)}, {int32(l.B), int32(l.A)}} {
			if _, ok := linkIdx[d]; !ok {
				linkIdx[d] = int32(len(links))
				links = append(links, queuedLink{})
				linkTo = append(linkTo, d.to)
			}
		}
	}

	hostOf := func(v int) (int32, error) {
		if v < 0 || v >= nw.N() {
			return 0, fmt.Errorf("pktsim: node %d out of range", v)
		}
		if nw.Nodes[v].Kind.IsSwitch() {
			return int32(v), nil
		}
		h := nw.HostSwitch(v)
		if h < 0 {
			return 0, fmt.Errorf("pktsim: server %d detached", v)
		}
		return int32(h), nil
	}

	var (
		res     Result
		events  eventQueue
		seq     int64
		now     float64
		lastDel float64
	)
	push := func(e *event) {
		e.seq = seq
		seq++
		heap.Push(&events, e)
	}

	var latencies []float64
	totalHops := 0

	// hash picks an ECMP next hop deterministically per (flow, switch).
	hash := func(flow uint64, sw int32, n int) int {
		x := flow ^ (uint64(sw) * 0x9e3779b97f4a7c15)
		x ^= x >> 33
		x *= 0xff51afd7ed558ccd
		x ^= x >> 33
		return int(x % uint64(n))
	}

	// forward enqueues p at switch sw toward its destination; returns
	// false (drop) on missing route, hop limit, or full queue.
	forward := func(p *pkt, sw int32) bool {
		if sw == p.dstSwitch {
			// Delivered.
			res.Delivered++
			latencies = append(latencies, now-p.Time)
			totalHops += p.hops
			lastDel = now
			return true
		}
		if p.hops >= cfg.HopLimit {
			return false
		}
		hops := table.NextHops(int(sw), int(p.dstSwitch))
		if len(hops) == 0 {
			return false
		}
		next := hops[hash(p.Flow, sw, len(hops))]
		li, ok := linkIdx[dirKey{sw, next}]
		if !ok {
			return false
		}
		l := &links[li]
		if len(l.queue) >= cfg.QueueLimit {
			return false
		}
		l.queue = append(l.queue, p)
		if len(l.queue) > res.MaxQueue {
			res.MaxQueue = len(l.queue)
		}
		if !l.busy {
			l.busy = true
			push(&event{time: now + 1, kind: 1, link: li})
		}
		return true
	}

	sorted := append([]Packet(nil), packets...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Time < sorted[j].Time })
	for i := range sorted {
		// Validate the source host up front so injection can't fail later.
		if _, err := hostOf(sorted[i].Src); err != nil {
			return res, err
		}
		dst, err := hostOf(sorted[i].Dst)
		if err != nil {
			return res, err
		}
		p := &pkt{Packet: sorted[i], dstSwitch: dst}
		push(&event{time: sorted[i].Time, kind: 0, pkt: p})
	}
	res.Sent = len(sorted)

	for events.Len() > 0 {
		e := heap.Pop(&events).(*event)
		now = e.time
		switch e.kind {
		case 0: // injection at source switch
			src, _ := hostOf(e.pkt.Src)
			if !forward(e.pkt, src) {
				res.Dropped++
			}
		case 1: // transmission complete on directed link
			l := &links[e.link]
			p := l.queue[0]
			l.queue = l.queue[1:]
			l.busyTime++
			if len(l.queue) > 0 {
				push(&event{time: now + 1, kind: 1, link: e.link})
			} else {
				l.busy = false
			}
			// The packet reaches the peer switch after propagation.
			push(&event{time: now + cfg.PropDelay, kind: 2, at: linkTo[e.link], pkt: p})
		case 2: // hop arrival at a switch
			e.pkt.hops++
			if !forward(e.pkt, e.at) {
				res.Dropped++
			}
		}
	}

	if len(latencies) > 0 {
		sort.Float64s(latencies)
		sum := 0.0
		for _, v := range latencies {
			sum += v
		}
		res.MeanLatency = sum / float64(len(latencies))
		res.P99Latency = latencies[int(0.99*float64(len(latencies)-1))]
		res.MeanHops = float64(totalHops) / float64(res.Delivered)
	}
	if lastDel > 0 && len(links) > 0 {
		busy := 0.0
		for i := range links {
			busy += links[i].busyTime
		}
		res.Utilization = busy / (lastDel * float64(len(links)))
	}
	return res, nil
}

// PoissonPackets injects count packets between uniform random server pairs
// at the given aggregate rate; flowPkts consecutive packets share a flow ID
// (and thus ECMP choices).
func PoissonPackets(servers []int, rate float64, count, flowPkts int, rng *graph.RNG) []Packet {
	if flowPkts <= 0 {
		flowPkts = 1
	}
	out := make([]Packet, 0, count)
	t := 0.0
	var src, dst int
	var flow uint64
	for i := 0; i < count; i++ {
		u := rng.Float64()
		for u == 0 { //flatlint:ignore floatcmp rejects the exact 0.0 Float64 can return, so Log is finite
			u = rng.Float64()
		}
		t += -math.Log(u) / rate
		if i%flowPkts == 0 {
			src = servers[rng.Intn(len(servers))]
			dst = servers[rng.Intn(len(servers))]
			for dst == src {
				dst = servers[rng.Intn(len(servers))]
			}
			flow = rng.Uint64()
		}
		out = append(out, Packet{Time: t, Src: src, Dst: dst, Flow: flow})
	}
	return out
}
