// Package experiments contains one driver per table/figure of the flat-tree
// paper's evaluation (§3). Each driver regenerates the corresponding data
// series — the same rows the paper plots — over configurable k sweeps, and
// returns them as a Table that cmd/flatsim prints and the root benchmarks
// execute. EXPERIMENTS.md records measured-vs-paper shapes.
//
// The sweeps are embarrassingly parallel: every (k, topology, placement,
// trial) cell is an independent pure computation. Drivers therefore fan
// their cells out through internal/parallel and merge results in index
// order, which makes every table byte-identical for any Config.Parallelism
// setting — `-parallel 1` and `-parallel N` print the same bytes, N just
// gets there sooner.
package experiments

import (
	"fmt"
	"io"
	"strings"
	"time"

	"flattree/internal/core"
	"flattree/internal/fattree"
	"flattree/internal/jellyfish"
	"flattree/internal/mcf"
	"flattree/internal/parallel"
	"flattree/internal/topo"
	"flattree/internal/twostage"
)

// Config controls an experiment run.
type Config struct {
	// KMin/KMax/KStep define the fat-tree parameter sweep (paper: 4..32
	// step 2).
	KMin, KMax, KStep int
	// Seed drives every randomized construction and placement.
	Seed uint64
	// Epsilon is the MCF approximation accuracy (throughput experiments).
	Epsilon float64
	// HybridK is the network size for the hybrid-mode experiment
	// (paper: 30).
	HybridK int
	// Trials averages randomized experiments (throughput placements,
	// failure injection) over this many seeds; 0 or 1 means a single run.
	Trials int
	// Parallelism caps the worker goroutines each driver fans out over its
	// (k, topology, trial) cells; 0 or negative selects GOMAXPROCS. Table
	// output is byte-identical for every setting — the knob only trades
	// wall-clock time for CPU.
	Parallelism int
	// SolveBudget bounds each individual MCF solve's wall-clock time (see
	// mcf.Options.TimeBudget); zero means unbounded. Cells whose solver
	// stopped early carry a trailing "~" (the solve is a valid lower bound,
	// just not converged to Epsilon). Note a nonzero budget trades the
	// byte-identical-tables guarantee for bounded latency: whether a solve
	// hits the budget depends on machine speed, so "~" markers — and the
	// slightly lower λ of a truncated solve — can differ between runs.
	SolveBudget time.Duration
	// SSSP selects the shortest-path kernel inside every MCF solve (see
	// mcf.Options.SSSP); the zero value picks the delta-stepping bucket
	// queue with a per-call heap fallback. Both kernels settle nodes in
	// the same (dist, id) order, so tables are byte-identical across
	// settings — the knob only trades time.
	SSSP mcf.SSSPKernel
}

// trials returns the effective number of randomized runs: Trials when
// positive, otherwise 1. Every driver that averages over seeds goes through
// this one accessor, so a given Config means the same number of runs
// everywhere. (Historically throughput averaging defaulted to 1 while
// Faults silently defaulted to 3, so "the same" Config ran different
// experiment shapes.)
func (c Config) trials() int {
	if c.Trials > 0 {
		return c.Trials
	}
	return 1
}

// workers resolves the Parallelism knob to an effective worker count.
func (c Config) workers() int { return parallel.Workers(c.Parallelism) }

// trialSeeds returns the per-trial seed stream for this config. Seeds are
// SplitMix64 hashes of (Seed, trial), so trials are decorrelated even
// across nearby base seeds, and every topology/placement cell of one run
// sees the same trial-seed sequence (paired comparisons, as the paper's
// averaged figures require).
func (c Config) trialSeeds() parallel.SeedStream { return parallel.NewSeedStream(c.Seed) }

// DefaultConfig mirrors the paper's sweep at a scale suitable for a laptop
// run; cmd/flatsim flags raise it to the paper's full k=32.
func DefaultConfig() Config {
	return Config{KMin: 4, KMax: 16, KStep: 2, Seed: 1, Epsilon: 0.1, HybridK: 10}
}

// Ks expands the sweep.
func (c Config) Ks() []int {
	var ks []int
	step := c.KStep
	if step <= 0 {
		step = 2
	}
	for k := c.KMin; k <= c.KMax; k += step {
		if k >= 4 && k%2 == 0 {
			ks = append(ks, k)
		}
	}
	return ks
}

// Table is a printable experiment result.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// WriteTSV writes the table as tab-separated values with a title line.
func (t *Table) WriteTSV(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# %s\n%s\n", t.Title, strings.Join(t.Header, "\t")); err != nil {
		return err
	}
	for _, r := range t.Rows {
		if _, err := fmt.Fprintln(w, strings.Join(r, "\t")); err != nil {
			return err
		}
	}
	return nil
}

// String renders the table with aligned columns for terminals.
func (t *Table) String() string {
	width := make([]int, len(t.Header))
	for i, h := range t.Header {
		width[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(width) && len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "# %s\n", t.Title)
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", width[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	for _, r := range t.Rows {
		line(r)
	}
	return b.String()
}

func f3(v float64) string { return fmt.Sprintf("%.3f", v) }
func f4(v float64) string { return fmt.Sprintf("%.4f", v) }

// lambdaCell formats an averaged throughput; a trailing "~" marks an
// average with at least one contributing solve that stopped at its budget
// (mcf.Result.Approximate) — a valid lower bound, not converged to Epsilon.
func lambdaCell(v float64, approx bool) string {
	if approx {
		return f4(v) + "~"
	}
	return f4(v)
}

// buildFlatTree constructs a flat-tree(k) with the paper's default (m, n)
// in the given uniform mode.
func buildFlatTree(k int, mode core.Mode) (*core.FlatTree, error) {
	ft, err := core.Build(core.Params{K: k})
	if err != nil {
		return nil, err
	}
	if err := ft.SetUniformMode(mode); err != nil {
		return nil, err
	}
	return ft, nil
}

// suite bundles the four comparable topologies for one k.
type suite struct {
	k        int
	fat      *fattree.FatTree
	rg       *jellyfish.Jellyfish
	flat     *core.FlatTree // caller sets mode
	twoStage *twostage.TwoStage
}

func buildSuite(k int, seed uint64, mode core.Mode, withTwoStage bool) (*suite, error) {
	s := &suite{k: k}
	var err error
	if s.fat, err = fattree.New(k); err != nil {
		return nil, err
	}
	if s.rg, err = jellyfish.New(k, seed); err != nil {
		return nil, err
	}
	if s.flat, err = buildFlatTree(k, mode); err != nil {
		return nil, err
	}
	if withTwoStage {
		_, n := core.DefaultMN(k)
		if s.twoStage, err = twostage.New(k, n, seed); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// serverIDsOf returns a topology's servers in index order.
func serverIDsOf(nw *topo.Network) []int { return nw.Servers() }
