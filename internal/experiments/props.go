package experiments

import (
	"context"
	"fmt"

	"flattree/internal/core"
	"flattree/internal/topo"
)

// PropsReport summarizes §2.3's wiring-pattern properties for one (k,
// pattern): the spread (max-min) of servers per core switch (Property 1)
// and of per-type link counts at cores (Property 2), plus the pattern's
// pod-to-pod repeat period.
type PropsReport struct {
	K            int
	Pattern      core.Pattern
	ServerSpread int
	EdgeSpread   int
	AggSpread    int
	RepeatPeriod int
}

// Props evaluates both wiring patterns across the sweep in global-random
// mode.
func Props(ctx context.Context, cfg Config) (*Table, []PropsReport, error) {
	t := &Table{
		Title: "§2.3 Properties 1-2: per-core uniformity of servers and link types (global-random mode)",
		Header: []string{"k", "pattern", "repeat-period",
			"server-spread", "edge-link-spread", "agg-link-spread"},
	}
	var reports []PropsReport
	for _, k := range cfg.Ks() {
		if err := ctx.Err(); err != nil {
			return nil, nil, err
		}
		m, n := core.DefaultMN(k)
		for _, pat := range []core.Pattern{core.Pattern1, core.Pattern2} {
			ft, err := core.Build(core.Params{K: k, M: m, N: n, Pattern: pat})
			if err != nil {
				return nil, nil, err
			}
			if err := ft.SetUniformMode(core.ModeGlobalRandom); err != nil {
				// A pattern whose rotation repeats every pod can
				// disconnect the converted network (e.g. k=4 pattern 2:
				// some cores end up cabled only to servers). That is a
				// finding, not a failure — PatternAuto never picks such a
				// pattern.
				t.AddRow(fmt.Sprint(k), pat.String(),
					fmt.Sprint(core.RepeatPeriod(pat, k, m)), "disconnected", "-", "-")
				continue
			}
			nw := ft.Net()
			var srv, edg, agg []int
			srv = make([]int, len(ft.Cores))
			edg = make([]int, len(ft.Cores))
			agg = make([]int, len(ft.Cores))
			coreIdx := make(map[int]int, len(ft.Cores))
			for i, c := range ft.Cores {
				coreIdx[c] = i
			}
			for _, l := range nw.Links {
				var c, o int
				if nw.Nodes[l.A].Kind == topo.CoreSwitch {
					c, o = l.A, l.B
				} else if nw.Nodes[l.B].Kind == topo.CoreSwitch {
					c, o = l.B, l.A
				} else {
					continue
				}
				switch nw.Nodes[o].Kind {
				case topo.Server:
					srv[coreIdx[c]]++
				case topo.EdgeSwitch:
					edg[coreIdx[c]]++
				case topo.AggSwitch:
					agg[coreIdx[c]]++
				}
			}
			rep := PropsReport{
				K: k, Pattern: pat,
				ServerSpread: spread(srv),
				EdgeSpread:   spread(edg),
				AggSpread:    spread(agg),
				RepeatPeriod: core.RepeatPeriod(pat, k, m),
			}
			reports = append(reports, rep)
			t.AddRow(fmt.Sprint(k), pat.String(), fmt.Sprint(rep.RepeatPeriod),
				fmt.Sprint(rep.ServerSpread), fmt.Sprint(rep.EdgeSpread), fmt.Sprint(rep.AggSpread))
		}
	}
	return t, reports, nil
}

func spread(xs []int) int {
	if len(xs) == 0 {
		return 0
	}
	min, max := xs[0], xs[0]
	for _, x := range xs {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return max - min
}
