package experiments

import (
	"context"
	"fmt"

	"flattree/internal/core"
	"flattree/internal/mcf"
	"flattree/internal/parallel"
	"flattree/internal/topo"
	"flattree/internal/traffic"
)

// HybridRow is one measurement of the §3.4 hybrid-mode experiment.
type HybridRow struct {
	GlobalPods, LocalPods int
	// LambdaGlobal/LambdaLocal: each zone's standalone max concurrent flow
	// on the hybrid network.
	LambdaGlobal, LambdaLocal float64
	// RefGlobal/RefLocal: the corresponding complete networks' throughput
	// (all pods in that mode, full-network workload) — the paper's
	// comparison target.
	RefGlobal, RefLocal float64
	// Interference: joint concurrent flow with both zones' demands
	// pre-scaled by their standalone λ. 1.0 means the zones share the
	// core without hurting each other — the paper's headline claim.
	Interference float64
}

// Hybrid regenerates the §3.4 experiment: a flat-tree with two zones —
// approximated global random graph in one, per-pod local random graphs in
// the other — at proportions 10%..90%. Each zone receives the same traffic
// pattern as the corresponding complete network: broadcast/incast in
// 1000-server clusters (global zone), all-to-all in 20-server clusters
// (local zone), both placed with locality inside their zone.
//
// Mode flips mutate the shared flat-tree, so the reference solves and the
// per-proportion network snapshots are prepared sequentially; the nine
// proportions' cluster builds and MCF solves (three LPs each) then fan out
// through the worker pool and are merged back in proportion order. Each
// proportion owns one pooled mcf.Solver, amortizing the aggregated problem
// and arena across its three solves, with an explicit Reset between them:
// the relaxed warm gate admits any demand set whose sources overlap the
// capture, and the joint demand set contains both zones' sources, so
// without the Reset it would inherit one zone's λ — a normalizer off by
// the ratio of the zones' throughputs. Resetting keeps every solve cold
// and the table bit-identical to independent solves at every worker count.
func Hybrid(ctx context.Context, cfg Config) (*Table, []HybridRow, error) {
	k := cfg.HybridK
	if k == 0 {
		k = 10
	}
	ft, err := core.Build(core.Params{K: k})
	if err != nil {
		return nil, nil, err
	}

	// Reference: complete networks.
	refGlobal, err := completeRef(ctx, ft, core.ModeGlobalRandom, BroadcastClusterSize, broadcastPattern, cfg)
	if err != nil {
		return nil, nil, err
	}
	refLocal, err := completeRef(ctx, ft, core.ModeLocalRandom, AllToAllClusterSize, allToAllPattern, cfg)
	if err != nil {
		return nil, nil, err
	}

	t := &Table{
		Title: fmt.Sprintf("§3.4 hybrid flat-tree (k=%d): per-zone throughput vs complete networks", k),
		Header: []string{"global-pods", "local-pods",
			"zoneG", "zoneG/refG", "zoneL", "zoneL/refL", "interference"},
	}

	// Snapshot each proportion's network up front: SetModes rewires ft in
	// place, but every Net() call returns an immutable snapshot, so the
	// solves below can run concurrently over the collected cases.
	type hybridCase struct {
		zg int
		nw *topo.Network
	}
	var cases []hybridCase
	for tenths := 1; tenths <= 9; tenths++ {
		zg := (k*tenths + 5) / 10
		if zg < 1 || zg > k-1 {
			continue
		}
		modes := make([]core.Mode, k)
		for p := 0; p < k; p++ {
			if p < zg {
				modes[p] = core.ModeGlobalRandom
			} else {
				modes[p] = core.ModeLocalRandom
			}
		}
		if err := ft.SetModes(modes); err != nil {
			return nil, nil, err
		}
		cases = append(cases, hybridCase{zg: zg, nw: ft.Net()})
	}

	rows, err := parallel.MapCtx(ctx, len(cases), cfg.workers(), func(i int) (HybridRow, error) {
		zg, nw := cases[i].zg, cases[i].nw
		s := mcf.GetSolver()
		defer s.Release()

		// Zone server sets (servers keep home-pod labels).
		var globalServers, localServers []int
		for _, sv := range nw.Servers() {
			if nw.Nodes[sv].Pod < zg {
				globalServers = append(globalServers, sv)
			} else {
				localServers = append(localServers, sv)
			}
		}
		gcl, err := traffic.MakeClusters(nw, globalServers, traffic.Spec{
			ClusterSize: BroadcastClusterSize, Placement: traffic.Locality, Seed: cfg.Seed})
		if err != nil {
			return HybridRow{}, err
		}
		lcl, err := traffic.MakeClusters(nw, localServers, traffic.Spec{
			ClusterSize: AllToAllClusterSize, Placement: traffic.Locality, Seed: cfg.Seed})
		if err != nil {
			return HybridRow{}, err
		}
		gComms := broadcastPattern(gcl)
		lComms := allToAllPattern(lcl)

		resG, err := s.Solve(ctx, nw, gComms, mcf.Options{Epsilon: cfg.Epsilon, SSSP: cfg.SSSP})
		if err != nil {
			return HybridRow{}, err
		}
		s.Reset()
		resL, err := s.Solve(ctx, nw, lComms, mcf.Options{Epsilon: cfg.Epsilon, SSSP: cfg.SSSP})
		if err != nil {
			return HybridRow{}, err
		}

		// Joint solve with each zone's demands scaled to its standalone
		// achievable rates (demand × standalone λ): an interference factor
		// of 1 then means both zones sustain their standalone throughput
		// simultaneously.
		var joint []mcf.Commodity
		for _, c := range gComms {
			joint = append(joint, mcf.Commodity{Src: c.Src, Dst: c.Dst, Demand: c.Demand * resG.Lambda})
		}
		for _, c := range lComms {
			joint = append(joint, mcf.Commodity{Src: c.Src, Dst: c.Dst, Demand: c.Demand * resL.Lambda})
		}
		s.Reset()
		resJ, err := s.Solve(ctx, nw, joint, mcf.Options{Epsilon: cfg.Epsilon, SSSP: cfg.SSSP})
		if err != nil {
			return HybridRow{}, err
		}

		return HybridRow{
			GlobalPods: zg, LocalPods: k - zg,
			LambdaGlobal: resG.Lambda, LambdaLocal: resL.Lambda,
			RefGlobal: refGlobal, RefLocal: refLocal,
			Interference: resJ.Lambda,
		}, nil
	})
	if err != nil {
		return nil, nil, err
	}

	for _, row := range rows {
		t.AddRow(fmt.Sprint(row.GlobalPods), fmt.Sprint(row.LocalPods),
			f4(row.LambdaGlobal), f3(row.LambdaGlobal/refGlobal),
			f4(row.LambdaLocal), f3(row.LambdaLocal/refLocal),
			f3(row.Interference))
	}
	return t, rows, nil
}

// completeRef computes the throughput of the complete network in one mode
// under the full-network version of a workload.
func completeRef(ctx context.Context, ft *core.FlatTree, mode core.Mode, clusterSize int,
	pattern func([]traffic.Cluster) []mcf.Commodity, cfg Config) (float64, error) {
	if err := ft.SetUniformMode(mode); err != nil {
		return 0, err
	}
	nw := ft.Net()
	s := mcf.GetSolver()
	defer s.Release()
	res, err := throughput(ctx, s, nw, serverIDsOf(nw), clusterSize, traffic.Locality, pattern, cfg.Seed, cfg.Epsilon, cfg.SolveBudget, cfg.SSSP)
	if err != nil {
		return 0, err
	}
	return res.Lambda, nil
}
