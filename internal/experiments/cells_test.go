package experiments

import (
	"bytes"
	"context"
	"strings"
	"testing"
)

// cellTSV renders one cell through the Cell entry point.
func cellTSV(t *testing.T, cfg Config, sp CellSpec) []byte {
	t.Helper()
	tab, err := Cell(context.Background(), cfg, sp)
	if err != nil {
		t.Fatalf("Cell(%+v): %v", sp, err)
	}
	var buf bytes.Buffer
	if err := tab.WriteTSV(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestCellMatchesFullTable pins the cache-soundness contract the serve
// layer depends on: a single extracted cell prints byte-for-byte the bytes
// the same column carries inside a full table run. Figure columns recompute
// only their own (column, trial) chains; scenario experiments rerun the
// whole driver and project — both must land on identical bytes.
func TestCellMatchesFullTable(t *testing.T) {
	cfg := Config{KMin: 4, KMax: 6, KStep: 2, Seed: 1, Epsilon: 0.3, Trials: 2, Parallelism: 4}
	experiments := []string{"fig5", "fig6", "fig7", "fig8", "faults", "latency", "props"}
	for _, exp := range experiments {
		full, err := Cell(context.Background(), cfg, CellSpec{Experiment: exp})
		if err != nil {
			t.Fatalf("%s full table: %v", exp, err)
		}
		for ci, col := range full.Header[1:] {
			want := &Table{Title: full.Title, Header: []string{full.Header[0], col}}
			for _, r := range full.Rows {
				want.AddRow(r[0], r[1+ci])
			}
			var wantBuf bytes.Buffer
			if err := want.WriteTSV(&wantBuf); err != nil {
				t.Fatal(err)
			}
			got := cellTSV(t, cfg, CellSpec{Experiment: exp, Column: col})
			if !bytes.Equal(got, wantBuf.Bytes()) {
				t.Errorf("%s column %q: extracted cell differs from full table\n--- full\n%s--- cell\n%s",
					exp, col, wantBuf.Bytes(), got)
			}
		}
	}
}

// TestCellDeterministicAcrossWorkerCounts extends the determinism contract
// to the cell entry points: a figure column computed alone is
// byte-identical at any Parallelism.
func TestCellDeterministicAcrossWorkerCounts(t *testing.T) {
	specs := []CellSpec{
		{Experiment: "fig7", Column: "flat-tree/loc"},
		{Experiment: "fig8", Column: "two-stage-rg/weak"},
		{Experiment: "fig5", Column: "random-graph"},
	}
	for _, sp := range specs {
		var want []byte
		for _, workers := range []int{1, 4} {
			cfg := Config{KMin: 4, KMax: 6, KStep: 2, Seed: 2, Epsilon: 0.3, Trials: 2, Parallelism: workers}
			got := cellTSV(t, cfg, sp)
			if workers == 1 {
				want = got
				continue
			}
			if !bytes.Equal(got, want) {
				t.Errorf("%s/%s: workers=%d differs from workers=1\n--- w1\n%s--- w%d\n%s",
					sp.Experiment, sp.Column, workers, want, workers, got)
			}
		}
	}
}

// TestColumnsMatchHeaders pins Columns against the tables the drivers
// actually print, so the serve layer's column listing can never drift.
func TestColumnsMatchHeaders(t *testing.T) {
	cfg := Config{KMin: 4, KMax: 4, Seed: 1, Epsilon: 0.3}
	for _, exp := range []string{"fig5", "fig6", "fig7", "fig8"} {
		cols, err := Columns(exp)
		if err != nil {
			t.Fatalf("Columns(%s): %v", exp, err)
		}
		tab, err := Cell(context.Background(), cfg, CellSpec{Experiment: exp})
		if err != nil {
			t.Fatalf("%s: %v", exp, err)
		}
		if got := strings.Join(tab.Header[1:], ","); got != strings.Join(cols, ",") {
			t.Errorf("%s: Columns()=%v but table header data columns are %v", exp, cols, tab.Header[1:])
		}
	}
	for _, exp := range []string{"soak", "hybrid", "props"} {
		cols, err := Columns(exp)
		if err != nil || cols != nil {
			t.Errorf("Columns(%s) = %v, %v; want nil, nil (whole-table experiment)", exp, cols, err)
		}
	}
	if _, err := Columns("nope"); err == nil {
		t.Error("Columns(nope): expected error")
	}
}

// TestProjectColumn covers the projection path scenario cells go through.
func TestProjectColumn(t *testing.T) {
	tab := &Table{Title: "t", Header: []string{"k", "a", "b"}}
	tab.AddRow("4", "1.0", "2.0")
	tab.AddRow("6", "3.0", "4.0~")
	p, err := ProjectColumn(tab, "b")
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Header) != 2 || p.Header[1] != "b" || p.Rows[1][1] != "4.0~" {
		t.Errorf("bad projection: %+v", p)
	}
	if !p.Approximate() {
		t.Error("projected table should report Approximate")
	}
	if tabA, _ := ProjectColumn(tab, "a"); tabA.Approximate() {
		t.Error("column a has no ~ cells")
	}
	if _, err := ProjectColumn(tab, "zzz"); err == nil {
		t.Error("expected error for unknown column")
	}
}
