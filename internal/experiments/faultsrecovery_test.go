package experiments

import (
	"context"
	"errors"
	"strconv"
	"testing"
	"time"

	"flattree/internal/faults"
)

func TestFaultsRecoveryDriver(t *testing.T) {
	cfg := smallCfg()
	cfg.Trials = 2
	// The shape assertions below are about connectivity and APL, which the
	// solver precision does not touch; a coarse epsilon keeps the test (and
	// its -race run) fast.
	cfg.Epsilon = 0.3
	tab, err := FaultsRecovery(context.Background(), cfg, 6, faults.Scenario{})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 5 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	get := func(row, col int) float64 {
		v, err := strconv.ParseFloat(tab.Rows[row][col], 64)
		if err != nil {
			t.Fatalf("cell (%d,%d) = %q: %v", row, col, tab.Rows[row][col], err)
		}
		return v
	}
	// Columns per topology: conn-fail apl-fail tput-fail conn-rec apl-rec
	// tput-rec; topologies fat-tree(1), flat-tree(7), random-graph(13).
	const (
		fat  = 1
		flat = 7
		rg   = 13
	)
	// Zero-failure row: everything connected, recovery a no-op, positive
	// throughput.
	for _, base := range []int{fat, flat, rg} {
		if get(0, base) != 1 || get(0, base+3) != 1 {
			t.Errorf("zero-failure connectivity: fail=%v rec=%v", tab.Rows[0][base], tab.Rows[0][base+3])
		}
		if get(0, base+2) <= 0 {
			t.Errorf("zero-failure throughput %v not positive", tab.Rows[0][base+2])
		}
		if get(0, base+1) != get(0, base+4) {
			t.Errorf("zero-failure recovery changed APL: %v -> %v", tab.Rows[0][base+1], tab.Rows[0][base+4])
		}
	}
	// The acceptance bar: at >= 10% link failure, recovery measurably
	// improves the convertible topologies' connectivity-or-APL while the
	// fat-tree (which cannot rewire) stays exactly where it fell.
	for row := 2; row < 5; row++ {
		for _, base := range []int{flat, rg} {
			connGain := get(row, base+3) - get(row, base)
			aplGain := get(row, base+1) - get(row, base+4)
			if connGain < 0 {
				t.Errorf("row %d col %d: recovery lost connectivity (%g)", row, base, connGain)
			}
			if connGain == 0 && aplGain <= 0 {
				t.Errorf("row %d col %d: recovery improved neither connectivity (%g) nor APL (%g)",
					row, base, connGain, aplGain)
			}
		}
		if get(row, fat) != get(row, fat+3) || tab.Rows[row][fat+1] != tab.Rows[row][fat+4] {
			t.Errorf("row %d: fat-tree recovered despite fixed cabling: %v", row, tab.Rows[row])
		}
	}
}

// TestFaultsRecoveryBaseScenarioStages exercises the correlated stages
// through the driver: a switch fraction plus converter deaths must still
// produce a well-formed, deterministic table. (Pod bursts are omitted here
// because the random-graph target has no pods and Fail rightly rejects a
// burst it cannot place; bursts are covered in the faults package tests.)
func TestFaultsRecoveryBaseScenarioStages(t *testing.T) {
	cfg := smallCfg()
	cfg.Epsilon = 0.3
	base := faults.Scenario{SwitchFraction: 0.05, ConverterFraction: 0.25}
	tab1, err := FaultsRecovery(context.Background(), cfg, 6, base)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Parallelism = 4
	tab2, err := FaultsRecovery(context.Background(), cfg, 6, base)
	if err != nil {
		t.Fatal(err)
	}
	for i := range tab1.Rows {
		for j := range tab1.Rows[i] {
			if tab1.Rows[i][j] != tab2.Rows[i][j] {
				t.Fatalf("cell (%d,%d) differs across worker counts: %q vs %q",
					i, j, tab1.Rows[i][j], tab2.Rows[i][j])
			}
		}
	}
}

// TestSweepCancellation pins the cancellation contract for the fanned-out
// drivers: cancelling mid-sweep returns ctx.Err() within a deadline, with
// no table.
func TestSweepCancellation(t *testing.T) {
	cfg := smallCfg()
	cfg.Trials = 3
	cfg.Parallelism = 2
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	type result struct {
		tab *Table
		err error
	}
	done := make(chan result, 1)
	go func() {
		tab, err := FaultsRecovery(ctx, cfg, 8, faults.Scenario{})
		done <- result{tab, err}
	}()
	select {
	case r := <-done:
		if r.err == nil {
			t.Skip("sweep finished before the cancel landed")
		}
		if !errors.Is(r.err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", r.err)
		}
		if r.tab != nil {
			t.Error("cancelled sweep still returned a table")
		}
	case <-time.After(30 * time.Second):
		t.Fatal("cancellation did not stop the sweep within deadline")
	}

	// Pre-cancelled contexts abort every driver immediately.
	pre, stop := context.WithCancel(context.Background())
	stop()
	if _, err := Fig5(pre, cfg); !errors.Is(err, context.Canceled) {
		t.Errorf("Fig5 pre-cancelled err = %v", err)
	}
	if _, _, err := Props(pre, cfg); !errors.Is(err, context.Canceled) {
		t.Errorf("Props pre-cancelled err = %v", err)
	}
	if _, err := FaultsRecovery(pre, cfg, 6, faults.Scenario{}); !errors.Is(err, context.Canceled) {
		t.Errorf("FaultsRecovery pre-cancelled err = %v", err)
	}
}
