package experiments

import (
	"context"
	"fmt"
	"time"

	"flattree/internal/core"
	"flattree/internal/mcf"
	"flattree/internal/parallel"
	"flattree/internal/topo"
	"flattree/internal/traffic"
)

// throughput runs the paper's throughput methodology on one topology: build
// clusters under the placement policy, emit the pattern's commodities, and
// solve maximum concurrent flow on the caller's Solver (which carries the
// aggregated problem, arena, and warm-start state across a sweep's solves).
func throughput(ctx context.Context, s *mcf.Solver, nw *topo.Network, serverIDs []int, clusterSize int, placement traffic.Placement,
	pattern func([]traffic.Cluster) []mcf.Commodity, seed uint64, epsilon float64, budget time.Duration, kern mcf.SSSPKernel) (mcf.Result, error) {
	clusters, err := traffic.MakeClusters(nw, serverIDs, traffic.Spec{
		ClusterSize: clusterSize,
		Placement:   placement,
		Seed:        seed,
	})
	if err != nil {
		return mcf.Result{}, err
	}
	return s.Solve(ctx, nw, pattern(clusters), mcf.Options{Epsilon: epsilon, TimeBudget: budget, SSSP: kern})
}

// BroadcastClusterSize is the paper's hot-spot cluster size (§3.3).
const BroadcastClusterSize = 1000

// AllToAllClusterSize is the paper's all-to-all cluster size (§3.3).
const AllToAllClusterSize = 20

// broadcastPattern and allToAllPattern bind the nominal cluster sizes into
// the commodity generators so all throughput numbers share the paper's
// demand scale.
func broadcastPattern(cl []traffic.Cluster) []mcf.Commodity {
	return traffic.BroadcastCommodities(cl, BroadcastClusterSize)
}

func allToAllPattern(cl []traffic.Cluster) []mcf.Commodity {
	return traffic.AllToAllCommodities(cl, AllToAllClusterSize)
}

// throughputFigure is the shared engine behind Figures 7 and 8: for every k
// in the sweep it builds the figure's topology suite, then measures the
// Trials-averaged max concurrent flow of every (topology, placement) column.
// The work items are the (column, trial) pairs; each owns one pooled
// mcf.Solver and walks the adjacent-k solves in sweep order, so the
// solver's aggregated problem, arena, and warm-start state amortize across
// the whole column: switches of a k-instance keep their (kind, pod, index)
// coordinates in the (k+step)-instance, so the relaxed gate maps the
// captured edge lengths across and warm-starts each hop of the column
// (cross-k seeding). Each warm λ stays inside the same ε contract as a
// cold solve, and the chain lives entirely inside one work item, so the
// table is a pure function of (column, trial) — byte-identical for every
// Parallelism setting.
func throughputFigure(ctx context.Context, cfg Config, fig string, t *Table, mode core.Mode, withTwoStage bool,
	clusterSize int, placements []traffic.Placement,
	pattern func([]traffic.Cluster) []mcf.Commodity,
	netsOf func(*suite) []*topo.Network) (*Table, error) {

	ks := cfg.Ks()
	if len(ks) == 0 {
		return t, nil
	}
	workers := cfg.workers()
	suites, err := parallel.MapCtx(ctx, len(ks), workers, func(i int) (*suite, error) {
		return buildSuite(ks[i], cfg.Seed, mode, withTwoStage)
	})
	if err != nil {
		return nil, err
	}

	trials := cfg.trials()
	seeds := cfg.trialSeeds()
	numPl := len(placements)
	cols := len(netsOf(suites[0])) * numPl
	perK := cols * trials
	type solve struct {
		lambda float64
		approx bool
	}
	lambdas, err := parallel.MapCtx(ctx, perK, workers, func(idx int) ([]solve, error) {
		ci, tr := idx/trials, idx%trials
		s := mcf.GetSolver()
		defer s.Release()
		out := make([]solve, len(ks))
		for ki := range ks {
			nw := netsOf(suites[ki])[ci/numPl]
			res, err := throughput(ctx, s, nw, serverIDsOf(nw), clusterSize, placements[ci%numPl],
				pattern, seeds.Seed(uint64(tr)), cfg.Epsilon, cfg.SolveBudget, cfg.SSSP)
			if err != nil {
				return nil, fmt.Errorf("%s k=%d net=%d trial=%d: %w", fig, ks[ki], ci/numPl, tr, err)
			}
			out[ki] = solve{res.Lambda, res.Approximate}
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}

	for ki, k := range ks {
		row := []string{fmt.Sprint(k)}
		for ci := 0; ci < cols; ci++ {
			sum, approx := 0.0, false
			for tr := 0; tr < trials; tr++ {
				s := lambdas[ci*trials+tr][ki]
				sum += s.lambda
				approx = approx || s.approx
			}
			row = append(row, lambdaCell(sum/float64(trials), approx))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// Fig7 regenerates Figure 7: throughput of broadcast/incast traffic in
// 1000-server clusters for fat-tree, flat-tree (global-random mode), and
// random graph, each with strong locality and no locality, averaged over
// cfg.trials() placement seeds.
func Fig7(ctx context.Context, cfg Config) (*Table, error) {
	t := &Table{
		Title: "Figure 7: throughput of broadcast/incast traffic in 1000-server clusters",
		Header: []string{"k",
			"fat-tree/loc", "fat-tree/noloc",
			"flat-tree/loc", "flat-tree/noloc",
			"random-graph/loc", "random-graph/noloc"},
	}
	return throughputFigure(ctx, cfg, "fig7", t, core.ModeGlobalRandom, false,
		BroadcastClusterSize,
		[]traffic.Placement{traffic.Locality, traffic.NoLocality},
		broadcastPattern,
		func(s *suite) []*topo.Network { return []*topo.Network{s.fat.Net, s.flat.Net(), s.rg.Net} })
}

// Fig8 regenerates Figure 8: throughput of all-to-all traffic in 20-server
// clusters for fat-tree, flat-tree (local-random mode), two-stage random
// graph, and random graph, each with strong and weak locality, averaged
// over cfg.trials() placement seeds.
func Fig8(ctx context.Context, cfg Config) (*Table, error) {
	t := &Table{
		Title: "Figure 8: throughput of all-to-all traffic in 20-server clusters",
		Header: []string{"k",
			"fat-tree/loc", "fat-tree/weak",
			"flat-tree/loc", "flat-tree/weak",
			"two-stage-rg/loc", "two-stage-rg/weak",
			"random-graph/loc", "random-graph/weak"},
	}
	return throughputFigure(ctx, cfg, "fig8", t, core.ModeLocalRandom, true,
		AllToAllClusterSize,
		[]traffic.Placement{traffic.Locality, traffic.WeakLocality},
		allToAllPattern,
		func(s *suite) []*topo.Network {
			return []*topo.Network{s.fat.Net, s.flat.Net(), s.twoStage.Net, s.rg.Net}
		})
}
