package experiments

import (
	"context"
	"fmt"
	"time"

	"flattree/internal/core"
	"flattree/internal/mcf"
	"flattree/internal/parallel"
	"flattree/internal/topo"
	"flattree/internal/traffic"
)

// throughput runs the paper's throughput methodology on one topology: build
// clusters under the placement policy, emit the pattern's commodities, and
// solve maximum concurrent flow on the caller's Solver (which carries the
// aggregated problem, arena, and warm-start state across a sweep's solves).
func throughput(ctx context.Context, s *mcf.Solver, nw *topo.Network, serverIDs []int, clusterSize int, placement traffic.Placement,
	pattern func([]traffic.Cluster) []mcf.Commodity, seed uint64, epsilon float64, budget time.Duration, kern mcf.SSSPKernel) (mcf.Result, error) {
	clusters, err := traffic.MakeClusters(nw, serverIDs, traffic.Spec{
		ClusterSize: clusterSize,
		Placement:   placement,
		Seed:        seed,
	})
	if err != nil {
		return mcf.Result{}, err
	}
	return s.Solve(ctx, nw, pattern(clusters), mcf.Options{Epsilon: epsilon, TimeBudget: budget, SSSP: kern})
}

// BroadcastClusterSize is the paper's hot-spot cluster size (§3.3).
const BroadcastClusterSize = 1000

// AllToAllClusterSize is the paper's all-to-all cluster size (§3.3).
const AllToAllClusterSize = 20

// broadcastPattern and allToAllPattern bind the nominal cluster sizes into
// the commodity generators so all throughput numbers share the paper's
// demand scale.
func broadcastPattern(cl []traffic.Cluster) []mcf.Commodity {
	return traffic.BroadcastCommodities(cl, BroadcastClusterSize)
}

func allToAllPattern(cl []traffic.Cluster) []mcf.Commodity {
	return traffic.AllToAllCommodities(cl, AllToAllClusterSize)
}

// figSolve is one solve's contribution to a throughput column.
type figSolve struct {
	lambda float64
	approx bool
}

// figSpec describes one throughput figure (7 or 8): the topology suite, the
// traffic pattern, and the table layout. It is the shared engine behind the
// full-table drivers and the per-column cell entry points, so a column
// computed alone runs exactly the code a full table run would.
type figSpec struct {
	fig          string
	title        string
	header       []string // column 0 is the "k" key column
	mode         core.Mode
	withTwoStage bool
	clusterSize  int
	placements   []traffic.Placement
	pattern      func([]traffic.Cluster) []mcf.Commodity
	netsOf       func(*suite) []*topo.Network
}

// numCols is the data-column count (networks × placements).
func (fs figSpec) numCols() int { return len(fs.header) - 1 }

// suites builds the per-k topology suites, fanned out over the worker pool.
// Each suite is a pure function of (k, cfg.Seed, mode), so a cell entry
// point rebuilding them sees byte-identical networks.
func (fs figSpec) suites(ctx context.Context, cfg Config) ([]*suite, error) {
	ks := cfg.Ks()
	return parallel.MapCtx(ctx, len(ks), cfg.workers(), func(i int) (*suite, error) {
		return buildSuite(ks[i], cfg.Seed, fs.mode, fs.withTwoStage)
	})
}

// columnTrial is the unit of work both the full figure and a single-column
// cell fan out over: one (column, trial) pair walking the adjacent-k solves
// in sweep order on one pooled mcf.Solver. Switches of a k-instance keep
// their (kind, pod, index) coordinates in the (k+step)-instance, so the
// relaxed warm gate maps the captured edge lengths across and warm-starts
// each hop of the column (cross-k seeding). Each warm λ stays inside the
// same ε contract as a cold solve, and the chain lives entirely inside this
// one work item, so its result is a pure function of (column, trial) —
// independent of scheduling, worker counts, and whether the surrounding run
// is a full table or a single extracted cell.
func (fs figSpec) columnTrial(ctx context.Context, cfg Config, suites []*suite, ci, tr int) ([]figSolve, error) {
	seeds := cfg.trialSeeds()
	numPl := len(fs.placements)
	s := mcf.GetSolver()
	defer s.Release()
	out := make([]figSolve, len(suites))
	for ki := range suites {
		nw := fs.netsOf(suites[ki])[ci/numPl]
		res, err := throughput(ctx, s, nw, serverIDsOf(nw), fs.clusterSize, fs.placements[ci%numPl],
			fs.pattern, seeds.Seed(uint64(tr)), cfg.Epsilon, cfg.SolveBudget, cfg.SSSP)
		if err != nil {
			return nil, fmt.Errorf("%s k=%d net=%d trial=%d: %w", fs.fig, suites[ki].k, ci/numPl, tr, err)
		}
		out[ki] = figSolve{res.Lambda, res.Approximate}
	}
	return out, nil
}

// averageColumn folds one column's per-trial chains into the formatted
// cells, one per k. Trials are summed in index order, so the float digits
// are identical wherever the chains were computed.
func averageColumn(perTrial [][]figSolve, nk int) []string {
	cells := make([]string, nk)
	for ki := 0; ki < nk; ki++ {
		sum, approx := 0.0, false
		for _, chain := range perTrial {
			sum += chain[ki].lambda
			approx = approx || chain[ki].approx
		}
		cells[ki] = lambdaCell(sum/float64(len(perTrial)), approx)
	}
	return cells
}

// table measures every (topology, placement) column of the figure: the work
// items are the (column, trial) pairs, fanned out over cfg.Parallelism
// workers and merged in index order — byte-identical for every Parallelism
// setting.
func (fs figSpec) table(ctx context.Context, cfg Config) (*Table, error) {
	t := &Table{Title: fs.title, Header: fs.header}
	ks := cfg.Ks()
	if len(ks) == 0 {
		return t, nil
	}
	suites, err := fs.suites(ctx, cfg)
	if err != nil {
		return nil, err
	}
	trials := cfg.trials()
	cols := fs.numCols()
	lambdas, err := parallel.MapCtx(ctx, cols*trials, cfg.workers(), func(idx int) ([]figSolve, error) {
		return fs.columnTrial(ctx, cfg, suites, idx/trials, idx%trials)
	})
	if err != nil {
		return nil, err
	}
	colCells := make([][]string, cols)
	for ci := 0; ci < cols; ci++ {
		colCells[ci] = averageColumn(lambdas[ci*trials:(ci+1)*trials], len(ks))
	}
	for ki, k := range ks {
		row := []string{fmt.Sprint(k)}
		for ci := 0; ci < cols; ci++ {
			row = append(row, colCells[ci][ki])
		}
		t.AddRow(row...)
	}
	return t, nil
}

// column computes one data column as a standalone cell: the same
// columnTrial work items as a full table run, restricted to column ci, so
// every cell string is byte-identical to the one the full table prints.
func (fs figSpec) column(ctx context.Context, cfg Config, ci int) (*Table, error) {
	t := &Table{Title: fs.title, Header: []string{fs.header[0], fs.header[1+ci]}}
	ks := cfg.Ks()
	if len(ks) == 0 {
		return t, nil
	}
	suites, err := fs.suites(ctx, cfg)
	if err != nil {
		return nil, err
	}
	trials := cfg.trials()
	perTrial, err := parallel.MapCtx(ctx, trials, cfg.workers(), func(tr int) ([]figSolve, error) {
		return fs.columnTrial(ctx, cfg, suites, ci, tr)
	})
	if err != nil {
		return nil, err
	}
	cells := averageColumn(perTrial, len(ks))
	for ki, k := range ks {
		t.AddRow(fmt.Sprint(k), cells[ki])
	}
	return t, nil
}

// fig7Spec is Figure 7's layout: broadcast/incast traffic in 1000-server
// clusters for fat-tree, flat-tree (global-random mode), and random graph,
// each with strong locality and no locality.
func fig7Spec() figSpec {
	return figSpec{
		fig:   "fig7",
		title: "Figure 7: throughput of broadcast/incast traffic in 1000-server clusters",
		header: []string{"k",
			"fat-tree/loc", "fat-tree/noloc",
			"flat-tree/loc", "flat-tree/noloc",
			"random-graph/loc", "random-graph/noloc"},
		mode:        core.ModeGlobalRandom,
		clusterSize: BroadcastClusterSize,
		placements:  []traffic.Placement{traffic.Locality, traffic.NoLocality},
		pattern:     broadcastPattern,
		netsOf:      func(s *suite) []*topo.Network { return []*topo.Network{s.fat.Net, s.flat.Net(), s.rg.Net} },
	}
}

// fig8Spec is Figure 8's layout: all-to-all traffic in 20-server clusters
// for fat-tree, flat-tree (local-random mode), two-stage random graph, and
// random graph, each with strong and weak locality.
func fig8Spec() figSpec {
	return figSpec{
		fig:   "fig8",
		title: "Figure 8: throughput of all-to-all traffic in 20-server clusters",
		header: []string{"k",
			"fat-tree/loc", "fat-tree/weak",
			"flat-tree/loc", "flat-tree/weak",
			"two-stage-rg/loc", "two-stage-rg/weak",
			"random-graph/loc", "random-graph/weak"},
		mode:         core.ModeLocalRandom,
		withTwoStage: true,
		clusterSize:  AllToAllClusterSize,
		placements:   []traffic.Placement{traffic.Locality, traffic.WeakLocality},
		pattern:      allToAllPattern,
		netsOf: func(s *suite) []*topo.Network {
			return []*topo.Network{s.fat.Net, s.flat.Net(), s.twoStage.Net, s.rg.Net}
		},
	}
}

// Fig7 regenerates Figure 7, averaged over cfg.trials() placement seeds.
func Fig7(ctx context.Context, cfg Config) (*Table, error) {
	return fig7Spec().table(ctx, cfg)
}

// Fig8 regenerates Figure 8, averaged over cfg.trials() placement seeds.
func Fig8(ctx context.Context, cfg Config) (*Table, error) {
	return fig8Spec().table(ctx, cfg)
}
