package experiments

import (
	"fmt"

	"flattree/internal/core"
	"flattree/internal/mcf"
	"flattree/internal/topo"
	"flattree/internal/traffic"
)

// throughput runs the paper's throughput methodology on one topology: build
// clusters under the placement policy, emit the pattern's commodities, and
// solve maximum concurrent flow.
func throughput(nw *topo.Network, serverIDs []int, clusterSize int, placement traffic.Placement,
	pattern func([]traffic.Cluster) []mcf.Commodity, seed uint64, epsilon float64) (mcf.Result, error) {
	clusters, err := traffic.MakeClusters(nw, serverIDs, traffic.Spec{
		ClusterSize: clusterSize,
		Placement:   placement,
		Seed:        seed,
	})
	if err != nil {
		return mcf.Result{}, err
	}
	return mcf.MaxConcurrentFlow(nw, pattern(clusters), mcf.Options{Epsilon: epsilon})
}

// throughputAvg averages the throughput over cfg.Trials placement seeds
// (randomized hot-spot choice and random placements make single runs
// noisy; the paper plots smooth curves).
func throughputAvg(cfg Config, nw *topo.Network, serverIDs []int, clusterSize int,
	placement traffic.Placement, pattern func([]traffic.Cluster) []mcf.Commodity) (float64, error) {
	trials := cfg.Trials
	if trials <= 0 {
		trials = 1
	}
	sum := 0.0
	for tr := 0; tr < trials; tr++ {
		res, err := throughput(nw, serverIDs, clusterSize, placement, pattern,
			cfg.Seed+uint64(tr)*7919, cfg.Epsilon)
		if err != nil {
			return 0, err
		}
		sum += res.Lambda
	}
	return sum / float64(trials), nil
}

// BroadcastClusterSize is the paper's hot-spot cluster size (§3.3).
const BroadcastClusterSize = 1000

// AllToAllClusterSize is the paper's all-to-all cluster size (§3.3).
const AllToAllClusterSize = 20

// broadcastPattern and allToAllPattern bind the nominal cluster sizes into
// the commodity generators so all throughput numbers share the paper's
// demand scale.
func broadcastPattern(cl []traffic.Cluster) []mcf.Commodity {
	return traffic.BroadcastCommodities(cl, BroadcastClusterSize)
}

func allToAllPattern(cl []traffic.Cluster) []mcf.Commodity {
	return traffic.AllToAllCommodities(cl, AllToAllClusterSize)
}

// Fig7 regenerates Figure 7: throughput of broadcast/incast traffic in
// 1000-server clusters for fat-tree, flat-tree (global-random mode), and
// random graph, each with strong locality and no locality.
func Fig7(cfg Config) (*Table, error) {
	t := &Table{
		Title: "Figure 7: throughput of broadcast/incast traffic in 1000-server clusters",
		Header: []string{"k",
			"fat-tree/loc", "fat-tree/noloc",
			"flat-tree/loc", "flat-tree/noloc",
			"random-graph/loc", "random-graph/noloc"},
	}
	for _, k := range cfg.Ks() {
		s, err := buildSuite(k, cfg.Seed, core.ModeGlobalRandom, false)
		if err != nil {
			return nil, err
		}
		nets := []*topo.Network{s.fat.Net, s.flat.Net(), s.rg.Net}
		row := []string{fmt.Sprint(k)}
		cells := make([]string, 6)
		for ni, nw := range nets {
			for pi, placement := range []traffic.Placement{traffic.Locality, traffic.NoLocality} {
				lambda, err := throughputAvg(cfg, nw, serverIDsOf(nw), BroadcastClusterSize,
					placement, broadcastPattern)
				if err != nil {
					return nil, fmt.Errorf("fig7 k=%d net=%d: %w", k, ni, err)
				}
				cells[ni*2+pi] = f4(lambda)
			}
		}
		t.AddRow(append(row, cells...)...)
	}
	return t, nil
}

// Fig8 regenerates Figure 8: throughput of all-to-all traffic in 20-server
// clusters for fat-tree, flat-tree (local-random mode), two-stage random
// graph, and random graph, each with strong and weak locality.
func Fig8(cfg Config) (*Table, error) {
	t := &Table{
		Title: "Figure 8: throughput of all-to-all traffic in 20-server clusters",
		Header: []string{"k",
			"fat-tree/loc", "fat-tree/weak",
			"flat-tree/loc", "flat-tree/weak",
			"two-stage-rg/loc", "two-stage-rg/weak",
			"random-graph/loc", "random-graph/weak"},
	}
	for _, k := range cfg.Ks() {
		s, err := buildSuite(k, cfg.Seed, core.ModeLocalRandom, true)
		if err != nil {
			return nil, err
		}
		nets := []*topo.Network{s.fat.Net, s.flat.Net(), s.twoStage.Net, s.rg.Net}
		cells := make([]string, 8)
		for ni, nw := range nets {
			for pi, placement := range []traffic.Placement{traffic.Locality, traffic.WeakLocality} {
				lambda, err := throughputAvg(cfg, nw, serverIDsOf(nw), AllToAllClusterSize,
					placement, allToAllPattern)
				if err != nil {
					return nil, fmt.Errorf("fig8 k=%d net=%d: %w", k, ni, err)
				}
				cells[ni*2+pi] = f4(lambda)
			}
		}
		t.AddRow(append([]string{fmt.Sprint(k)}, cells...)...)
	}
	return t, nil
}
