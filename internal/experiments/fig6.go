package experiments

import (
	"context"
	"fmt"

	"flattree/internal/core"
	"flattree/internal/metrics"
	"flattree/internal/parallel"
	"flattree/internal/topo"
)

// Fig6 regenerates Figure 6: average path length of server pairs within the
// same pod, comparing flat-tree in local-random mode against fat-tree,
// the global random graph, and the two-stage random graph. The per-k suite
// builds and the per-topology BFS sweeps both fan out through the worker
// pool.
func Fig6(ctx context.Context, cfg Config) (*Table, error) {
	t := &Table{
		Title:  "Figure 6: average path length of server pairs in each pod",
		Header: []string{"k", "flat-tree", "fat-tree", "random-graph", "two-stage-rg"},
	}
	ks := cfg.Ks()
	if len(ks) == 0 {
		return t, nil
	}
	workers := cfg.workers()
	suites, err := parallel.MapCtx(ctx, len(ks), workers, func(i int) (*suite, error) {
		return buildSuite(ks[i], cfg.Seed, core.ModeLocalRandom, true)
	})
	if err != nil {
		return nil, err
	}
	netsOf := func(s *suite) []*topo.Network {
		return []*topo.Network{s.flat.Net(), s.fat.Net, s.rg.Net, s.twoStage.Net}
	}
	const cols = 4
	cells, err := parallel.MapCtx(ctx, len(ks)*cols, workers, func(idx int) (string, error) {
		ki, ci := idx/cols, idx%cols
		apl, err := metrics.IntraPodAveragePathLength(netsOf(suites[ki])[ci])
		if err != nil {
			return "", fmt.Errorf("fig6 k=%d net=%d: %w", ks[ki], ci, err)
		}
		return f3(apl), nil
	})
	if err != nil {
		return nil, err
	}
	for ki, k := range ks {
		t.AddRow(append([]string{fmt.Sprint(k)}, cells[ki*cols:(ki+1)*cols]...)...)
	}
	return t, nil
}
