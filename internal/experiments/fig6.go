package experiments

import (
	"context"
	"fmt"

	"flattree/internal/core"
	"flattree/internal/metrics"
	"flattree/internal/parallel"
	"flattree/internal/topo"
)

// fig6Header is Figure 6's full header.
func fig6Header() []string {
	return []string{"k", "flat-tree", "fat-tree", "random-graph", "two-stage-rg"}
}

// fig6Nets orders a suite's networks to match fig6Header's data columns.
func fig6Nets(s *suite) []*topo.Network {
	return []*topo.Network{s.flat.Net(), s.fat.Net, s.rg.Net, s.twoStage.Net}
}

// fig6Suites builds the per-k local-random suites Figure 6 measures. Each
// is a pure function of (k, cfg.Seed), so a single-column run rebuilds
// byte-identical networks.
func fig6Suites(ctx context.Context, cfg Config) ([]*suite, error) {
	ks := cfg.Ks()
	return parallel.MapCtx(ctx, len(ks), cfg.workers(), func(i int) (*suite, error) {
		return buildSuite(ks[i], cfg.Seed, core.ModeLocalRandom, true)
	})
}

// fig6Cell computes one (k, column) cell: the intra-pod average path length
// of the suite's ci-th network.
func fig6Cell(s *suite, ci int) (string, error) {
	apl, err := metrics.IntraPodAveragePathLength(fig6Nets(s)[ci])
	if err != nil {
		return "", fmt.Errorf("fig6 k=%d net=%d: %w", s.k, ci, err)
	}
	return f3(apl), nil
}

// Fig6 regenerates Figure 6: average path length of server pairs within the
// same pod, comparing flat-tree in local-random mode against fat-tree,
// the global random graph, and the two-stage random graph. The per-k suite
// builds and the per-topology BFS sweeps both fan out through the worker
// pool.
func Fig6(ctx context.Context, cfg Config) (*Table, error) {
	t := &Table{
		Title:  "Figure 6: average path length of server pairs in each pod",
		Header: fig6Header(),
	}
	ks := cfg.Ks()
	if len(ks) == 0 {
		return t, nil
	}
	suites, err := fig6Suites(ctx, cfg)
	if err != nil {
		return nil, err
	}
	cols := len(t.Header) - 1
	cells, err := parallel.MapCtx(ctx, len(ks)*cols, cfg.workers(), func(idx int) (string, error) {
		return fig6Cell(suites[idx/cols], idx%cols)
	})
	if err != nil {
		return nil, err
	}
	for ki, k := range ks {
		t.AddRow(append([]string{fmt.Sprint(k)}, cells[ki*cols:(ki+1)*cols]...)...)
	}
	return t, nil
}

// fig6Column computes one Figure 6 data column as a standalone cell table.
func fig6Column(ctx context.Context, cfg Config, ci int) (*Table, error) {
	h := fig6Header()
	t := &Table{
		Title:  "Figure 6: average path length of server pairs in each pod",
		Header: []string{h[0], h[1+ci]},
	}
	ks := cfg.Ks()
	if len(ks) == 0 {
		return t, nil
	}
	suites, err := fig6Suites(ctx, cfg)
	if err != nil {
		return nil, err
	}
	cells, err := parallel.MapCtx(ctx, len(ks), cfg.workers(), func(ki int) (string, error) {
		return fig6Cell(suites[ki], ci)
	})
	if err != nil {
		return nil, err
	}
	for ki, k := range ks {
		t.AddRow(fmt.Sprint(k), cells[ki])
	}
	return t, nil
}
