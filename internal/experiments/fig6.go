package experiments

import (
	"fmt"

	"flattree/internal/core"
	"flattree/internal/metrics"
)

// Fig6 regenerates Figure 6: average path length of server pairs within the
// same pod, comparing flat-tree in local-random mode against fat-tree,
// the global random graph, and the two-stage random graph.
func Fig6(cfg Config) (*Table, error) {
	t := &Table{
		Title:  "Figure 6: average path length of server pairs in each pod",
		Header: []string{"k", "flat-tree", "fat-tree", "random-graph", "two-stage-rg"},
	}
	for _, k := range cfg.Ks() {
		s, err := buildSuite(k, cfg.Seed, core.ModeLocalRandom, true)
		if err != nil {
			return nil, err
		}
		aplFlat, err := metrics.IntraPodAveragePathLength(s.flat.Net())
		if err != nil {
			return nil, err
		}
		aplFat, err := metrics.IntraPodAveragePathLength(s.fat.Net)
		if err != nil {
			return nil, err
		}
		aplRG, err := metrics.IntraPodAveragePathLength(s.rg.Net)
		if err != nil {
			return nil, err
		}
		aplTS, err := metrics.IntraPodAveragePathLength(s.twoStage.Net)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprint(k), f3(aplFlat), f3(aplFat), f3(aplRG), f3(aplTS))
	}
	return t, nil
}
