package experiments

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"flattree/internal/chaos"
	"flattree/internal/faults"
)

// CellSpec names one experiment cell: an experiment plus, for the figure
// sweeps, the data column to compute. Scenario experiments (faults,
// faultsrecovery, selfheal, soak, latency, hybrid, profile, props) are
// served whole — their stage rows are one coupled trajectory, not
// independent columns — and an optional Column selects a projection of the
// finished table.
//
// The spec carries only result-identity inputs; execution knobs
// (parallelism, solve budgets, SSSP kernel) live on Config and never change
// the bytes a cell prints.
type CellSpec struct {
	// Experiment is one of CellExperiments().
	Experiment string
	// Column selects a data column by header name; empty means the whole
	// table.
	Column string
	// K is the network size for the single-k scenario experiments
	// (faults, faultsrecovery, selfheal, soak, latency); 0 means
	// cfg.KMax. Ignored by the k-sweep figures.
	K int
	// ProfileK is the profile experiment's network size; 0 means 16
	// (cmd/flatsim's default).
	ProfileK int
	// FailFrac and Batch parameterize selfheal (defaults 0.25 and 1);
	// Batch also feeds soak's repair windows.
	FailFrac float64
	Batch    int
	// Load is latency's relative offered load (0 picks the driver's
	// default).
	Load float64
	// Scenario parameterizes faultsrecovery.
	Scenario faults.Scenario
	// Soak parameterizes the chaos soak; zero fields take cmd/flatsim's
	// flag defaults (rate 1, horizon 20, window cost 0.25, SLO 0.9,
	// batch 1).
	Soak chaos.Options
}

// cellK resolves the scenario network size.
func (sp CellSpec) cellK(cfg Config) int {
	if sp.K > 0 {
		return sp.K
	}
	return cfg.KMax
}

// CellExperiments lists the experiments Cell accepts, sorted.
func CellExperiments() []string {
	names := []string{
		"fig5", "fig6", "fig7", "fig8",
		"faults", "faultsrecovery", "selfheal", "soak",
		"latency", "hybrid", "profile", "props",
	}
	sort.Strings(names)
	return names
}

// Columns returns a figure experiment's selectable data-column names, in
// table order. Scenario experiments return nil: their columns exist only
// once the trajectory has run, so they are served as whole tables (Cell
// can still project one column out afterwards).
func Columns(experiment string) ([]string, error) {
	var h []string
	switch experiment {
	case "fig5":
		h = fig5Header()
	case "fig6":
		h = fig6Header()
	case "fig7":
		h = fig7Spec().header
	case "fig8":
		h = fig8Spec().header
	default:
		for _, e := range CellExperiments() {
			if e == experiment {
				return nil, nil
			}
		}
		return nil, fmt.Errorf("experiments: unknown experiment %q", experiment)
	}
	return h[1:], nil
}

// columnIndex resolves a column name against a header's data columns.
func columnIndex(header []string, col string) (int, error) {
	for i, h := range header[1:] {
		if h == col {
			return i, nil
		}
	}
	return 0, fmt.Errorf("experiments: no column %q (have %s)", col, strings.Join(header[1:], ", "))
}

// ProjectColumn narrows a finished table to its key column plus one named
// data column. The projected cells are the full table's bytes, untouched.
func ProjectColumn(t *Table, col string) (*Table, error) {
	ci, err := columnIndex(t.Header, col)
	if err != nil {
		return nil, err
	}
	p := &Table{Title: t.Title, Header: []string{t.Header[0], t.Header[1+ci]}}
	for _, r := range t.Rows {
		if 1+ci < len(r) {
			p.AddRow(r[0], r[1+ci])
		} else {
			p.AddRow(r[0])
		}
	}
	return p, nil
}

// Approximate reports whether any cell carries the trailing "~" marking a
// budget-truncated (valid but not ε-converged) solve. Serving layers use it
// to keep approximate results out of permanent caches.
func (t *Table) Approximate() bool {
	for _, r := range t.Rows {
		for _, c := range r {
			if strings.HasSuffix(c, "~") {
				return true
			}
		}
	}
	return false
}

// Cell computes one experiment cell. Figure columns run only that column's
// work items — the identical (column, trial) chains a full table run fans
// out, so the cell is byte-identical to the same column of the full table.
// Scenario experiments run their whole driver and, when Column is set,
// project it afterwards.
func Cell(ctx context.Context, cfg Config, sp CellSpec) (*Table, error) {
	fig := func(header func() []string, column func(context.Context, Config, int) (*Table, error),
		table func(context.Context, Config) (*Table, error)) (*Table, error) {
		if sp.Column == "" {
			return table(ctx, cfg)
		}
		ci, err := columnIndex(header(), sp.Column)
		if err != nil {
			return nil, err
		}
		return column(ctx, cfg, ci)
	}
	project := func(t *Table, err error) (*Table, error) {
		if err != nil || sp.Column == "" {
			return t, err
		}
		return ProjectColumn(t, sp.Column)
	}
	switch sp.Experiment {
	case "fig5":
		return fig(fig5Header, fig5Column, Fig5)
	case "fig6":
		return fig(fig6Header, fig6Column, Fig6)
	case "fig7":
		s := fig7Spec()
		return fig(func() []string { return s.header }, s.column, s.table)
	case "fig8":
		s := fig8Spec()
		return fig(func() []string { return s.header }, s.column, s.table)
	case "faults":
		return project(Faults(ctx, cfg, sp.cellK(cfg)))
	case "faultsrecovery":
		return project(FaultsRecovery(ctx, cfg, sp.cellK(cfg), sp.Scenario))
	case "selfheal":
		failFrac, batch := sp.FailFrac, sp.Batch
		if failFrac <= 0 {
			failFrac = 0.25
		}
		if batch == 0 {
			batch = 1
		}
		return project(SelfHeal(ctx, cfg, sp.cellK(cfg), failFrac, batch))
	case "soak":
		o := sp.Soak
		if o.Rate <= 0 {
			o.Rate = 1
		}
		if o.Horizon <= 0 {
			o.Horizon = 20
		}
		if o.WindowCost <= 0 {
			o.WindowCost = 0.25
		}
		if o.SLOThreshold <= 0 {
			o.SLOThreshold = 0.9
		}
		if o.BatchSize <= 0 {
			o.BatchSize = 1
		}
		t, _, err := Soak(ctx, cfg, sp.cellK(cfg), o)
		return project(t, err)
	case "latency":
		return project(Latency(ctx, cfg, sp.cellK(cfg), sp.Load))
	case "hybrid":
		t, _, err := Hybrid(ctx, cfg)
		return project(t, err)
	case "profile":
		pk := sp.ProfileK
		if pk == 0 {
			pk = 16
		}
		t, _, err := Profile(ctx, cfg, pk)
		return project(t, err)
	case "props":
		t, _, err := Props(ctx, cfg)
		return project(t, err)
	}
	return nil, fmt.Errorf("experiments: unknown experiment %q", sp.Experiment)
}
