package experiments

import (
	"context"
	"strconv"
	"testing"

	"flattree/internal/chaos"
)

func TestFaultsDriver(t *testing.T) {
	cfg := smallCfg()
	cfg.Trials = 2
	tab, err := Faults(context.Background(), cfg, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 5 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// Zero-failure row: all topologies fully connected with no disconnected
	// trials, APLs match the known figure-5/6 ballpark.
	base := tab.Rows[0]
	for _, col := range []int{1, 4, 7} {
		if base[col] != "1.000" {
			t.Errorf("zero-failure connectivity = %q", base[col])
		}
	}
	for _, col := range []int{3, 6, 9} {
		if base[col] != "0" {
			t.Errorf("zero-failure disconnected-trial count = %q", base[col])
		}
	}
	// APL must be monotone non-decreasing in the failure fraction for
	// every topology (connectivity held at these fractions).
	for _, col := range []int{2, 5, 8} {
		prev := 0.0
		for i, row := range tab.Rows {
			v, err := strconv.ParseFloat(row[col], 64)
			if err != nil {
				t.Fatalf("row %d col %d = %q", i, col, row[col])
			}
			if v < prev-1e-9 {
				t.Errorf("col %d: APL decreased under more failures: %g -> %g", col, prev, v)
			}
			prev = v
		}
	}
}

func TestSoakDriver(t *testing.T) {
	cfg := smallCfg()
	cfg.Epsilon = 0.3
	tab, arms, err := Soak(context.Background(), cfg, 4, chaos.Options{
		Rate: 2, Horizon: 5, WindowCost: 0.25, SLOThreshold: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 || len(arms) != 2 {
		t.Fatalf("rows = %d, arms = %d", len(tab.Rows), len(arms))
	}
	if tab.Rows[0][0] != "flat-tree/self-heal" || tab.Rows[1][0] != "fat-tree/control" {
		t.Fatalf("arm order: %q, %q", tab.Rows[0][0], tab.Rows[1][0])
	}
	for i, row := range tab.Rows {
		if len(row) != len(tab.Header) {
			t.Errorf("row %d has %d cells, header %d", i, len(row), len(tab.Header))
		}
	}
	// The same seeded event stream hits both arms: same episode count.
	if tab.Rows[0][1] != tab.Rows[1][1] {
		t.Errorf("episode counts differ across arms: %s vs %s", tab.Rows[0][1], tab.Rows[1][1])
	}
	// Only the self-healing arm repairs: it executes windows, the control
	// arm leaves every episode unrepaired (mean latency "-").
	if w, _ := strconv.Atoi(tab.Rows[0][2]); w == 0 {
		t.Error("self-healing arm executed no windows")
	}
	if tab.Rows[1][2] != "0" || tab.Rows[1][9] != "-" {
		t.Errorf("control arm healed: windows=%s latency=%s", tab.Rows[1][2], tab.Rows[1][9])
	}
	if tab.Rows[1][10] != tab.Rows[1][1] {
		t.Errorf("control arm repaired episodes: unrepaired=%s of %s", tab.Rows[1][10], tab.Rows[1][1])
	}
	// A cancelled soak still returns the (empty or partial) table.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	tab, _, err = Soak(ctx, cfg, 4, chaos.Options{
		Rate: 2, Horizon: 5, WindowCost: 0.25, SLOThreshold: 0.9})
	if err == nil {
		t.Fatal("cancelled soak reported success")
	}
	if tab == nil {
		t.Fatal("cancelled soak returned no table")
	}
}

func TestLatencyDriver(t *testing.T) {
	tab, err := Latency(context.Background(), smallCfg(), 6, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 5 {
		t.Fatalf("rows = %d: %v", len(tab.Rows), tab.Rows)
	}
	get := func(row, col int) float64 {
		v, err := strconv.ParseFloat(tab.Rows[row][col], 64)
		if err != nil {
			t.Fatalf("cell (%d,%d) = %q", row, col, tab.Rows[row][col])
		}
		return v
	}
	// Row 0 fat-tree, row 3 flat-tree/global-random: the random-graph
	// mode must see fewer hops and lower latency at light load.
	if get(3, 5) >= get(0, 5) {
		t.Errorf("global-random hops %g not below fat-tree %g", get(3, 5), get(0, 5))
	}
	if get(3, 3) >= get(0, 3) {
		t.Errorf("global-random latency %g not below fat-tree %g", get(3, 3), get(0, 3))
	}
	// Flat-tree in Clos mode behaves like fat-tree.
	if got, want := get(2, 5), get(0, 5); got != want {
		t.Errorf("flat-tree/clos hops %g != fat-tree %g", got, want)
	}
	// No drops at light load.
	for i := range tab.Rows {
		if tab.Rows[i][2] != "0" {
			t.Errorf("row %d dropped %s packets at light load", i, tab.Rows[i][2])
		}
	}
}
