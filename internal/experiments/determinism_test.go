package experiments

import (
	"bytes"
	"context"
	"fmt"
	"testing"

	"flattree/internal/chaos"
	"flattree/internal/faults"
)

// TestTablesByteIdenticalAcrossWorkerCounts pins the package contract from
// the doc comment: for any seed, a driver's table is byte-for-byte the same
// at -parallel 1 and -parallel N. Each driver runs at a small scale for two
// base seeds and two worker counts; the rendered TSV must not differ by a
// single byte.
func TestTablesByteIdenticalAcrossWorkerCounts(t *testing.T) {
	drivers := []struct {
		name string
		run  func(cfg Config) (*Table, error)
	}{
		{"fig5", func(cfg Config) (*Table, error) { return Fig5(context.Background(), cfg) }},
		{"fig6", func(cfg Config) (*Table, error) { return Fig6(context.Background(), cfg) }},
		{"fig7", func(cfg Config) (*Table, error) { return Fig7(context.Background(), cfg) }},
		{"fig8", func(cfg Config) (*Table, error) {
			// The k=4..6 sweep makes every (column, trial) chain take a
			// cross-k warm-started hop, like fig7 below it — the relaxed
			// gate's seeding must stay a pure function of the work item.
			return Fig8(context.Background(), cfg)
		}},
		{"faults", func(cfg Config) (*Table, error) { return Faults(context.Background(), cfg, 6) }},
		{"faultsrecovery", func(cfg Config) (*Table, error) {
			cfg.Epsilon = 0.3 // determinism is epsilon-independent; keep the -race run fast
			return FaultsRecovery(context.Background(), cfg, 6, faults.Scenario{})
		}},
		{"latency", func(cfg Config) (*Table, error) { return Latency(context.Background(), cfg, 6, 0.05) }},
		{"selfheal", func(cfg Config) (*Table, error) {
			cfg.Epsilon = 0.3 // determinism is epsilon-independent; keep the live-plant run fast
			return SelfHeal(context.Background(), cfg, 6, 0.25, 2)
		}},
		{"hybrid", func(cfg Config) (*Table, error) {
			// Per-proportion solver chains (zoneG → zoneL → joint) must
			// stay a pure function of the work item at any worker count.
			cfg.HybridK = 6
			cfg.Epsilon = 0.3
			tab, _, err := Hybrid(context.Background(), cfg)
			return tab, err
		}},
		{"profile", func(cfg Config) (*Table, error) {
			tab, _, err := Profile(context.Background(), cfg, 8)
			return tab, err
		}},
		{"soak", func(cfg Config) (*Table, error) {
			// Both arms — live TCP control plane with overlapping repairs,
			// and the fixed-cabling control — must replay byte-identically
			// from the seed at any measurement worker count.
			cfg.Epsilon = 0.3 // determinism is epsilon-independent; keep the live-plant run fast
			tab, _, err := Soak(context.Background(), cfg, 4, chaos.Options{
				Rate: 2, Horizon: 4, WindowCost: 0.25, SLOThreshold: 0.9})
			return tab, err
		}},
	}
	for _, seed := range []uint64{1, 2} {
		for _, d := range drivers {
			var want []byte
			for _, workers := range []int{1, 4} {
				cfg := Config{KMin: 4, KMax: 6, KStep: 2, Seed: seed,
					Epsilon: 0.15, Trials: 2, Parallelism: workers}
				tab, err := d.run(cfg)
				if err != nil {
					t.Fatalf("%s seed=%d workers=%d: %v", d.name, seed, workers, err)
				}
				var buf bytes.Buffer
				if err := tab.WriteTSV(&buf); err != nil {
					t.Fatal(err)
				}
				if workers == 1 {
					want = buf.Bytes()
					continue
				}
				if !bytes.Equal(buf.Bytes(), want) {
					t.Errorf("%s seed=%d: workers=%d output differs from workers=1:\n--- workers=1\n%s--- workers=%d\n%s",
						d.name, seed, workers, want, workers, buf.Bytes())
				}
			}
		}
	}
}

// TestTrialSeedsDifferAcrossBaseSeeds guards the seeding bugfix at the
// driver level: nearby base seeds must not share any trial seed (the old
// seed + trial*7919 derivation collided whenever two base seeds differed by
// a multiple of the stride).
func TestTrialSeedsDifferAcrossBaseSeeds(t *testing.T) {
	seen := map[uint64]string{}
	for _, base := range []uint64{1, 2, 3, 1 + 7919, 2 + 2*7919} {
		seeds := Config{Seed: base}.trialSeeds()
		for tr := 0; tr < 64; tr++ {
			s := seeds.Seed(uint64(tr))
			key := fmt.Sprintf("base=%d trial=%d", base, tr)
			if prev, ok := seen[s]; ok {
				t.Fatalf("trial seed %#x collides: %s and %s", s, prev, key)
			}
			seen[s] = key
		}
	}
}
