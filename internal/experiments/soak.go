package experiments

import (
	"context"
	"fmt"

	"flattree/internal/chaos"
)

// SoakArm is one completed arm of the soak comparison, kept alongside the
// table so callers can report measurement internals (warm-start chains)
// per arm.
type SoakArm struct {
	Name   string
	Result *chaos.Result
}

// Soak runs the chaos soak comparison of §5: the same seeded stream of
// correlated failure episodes replayed against two fabrics — the
// self-healing flat-tree (live control plane, repairs overlapping new
// failures) and a fixed-cabling fat-tree control that can only absorb
// damage — and tables the availability verdict for each. cfg supplies
// the seed, solver settings and measurement parallelism; opt shapes the
// event stream (rate, horizon, mix, window cost, SLO threshold).
//
// On cancellation the table holds every arm that finished plus the
// partial arm's series, alongside the error — an interrupted soak still
// reports what it saw.
func Soak(ctx context.Context, cfg Config, k int, opt chaos.Options) (*Table, []SoakArm, error) {
	opt.K = k
	opt.Seed = cfg.Seed
	opt.Epsilon = cfg.Epsilon
	opt.SolveBudget = cfg.SolveBudget
	opt.SSSP = cfg.SSSP
	opt.Parallelism = cfg.Parallelism

	t := &Table{
		Title: fmt.Sprintf("chaos soak, k=%d: rate %g, horizon %g, window cost %g, SLO %g, seed %d",
			k, opt.Rate, opt.Horizon, opt.WindowCost, opt.SLOThreshold, opt.Seed),
		Header: []string{"topology", "episodes", "windows", "replans", "avail",
			"breaches", "served-mean", "served-min", "lambda0", "mean-latency", "unrepaired"},
	}
	arms := []struct {
		name    string
		control bool
	}{
		{"flat-tree/self-heal", false},
		{"fat-tree/control", true},
	}
	var out []SoakArm
	for _, arm := range arms {
		o := opt
		o.Control = arm.control
		res, err := chaos.Run(ctx, o)
		if res != nil {
			out = append(out, SoakArm{Name: arm.name, Result: res})
			if len(res.Samples) > 0 {
				t.AddRow(soakRow(arm.name, res)...)
			}
		}
		if err != nil {
			return t, out, err
		}
	}
	return t, out, nil
}

// soakRow folds one arm's Result into its table row.
func soakRow(name string, res *chaos.Result) []string {
	latSum, repaired, unrepaired := 0.0, 0, 0
	for _, ep := range res.Episodes {
		if ep.Latency < 0 {
			unrepaired++
			continue
		}
		latSum += ep.Latency
		repaired++
	}
	meanLat := "-"
	if repaired > 0 {
		meanLat = f3(latSum / float64(repaired))
	}
	approx0 := len(res.Samples) > 0 && res.Samples[0].Approx
	return []string{
		name,
		fmt.Sprint(len(res.Episodes)),
		fmt.Sprint(res.Windows),
		fmt.Sprint(res.Replans),
		f3(res.SLO.Availability),
		fmt.Sprint(res.SLO.Breaches),
		f3(res.SLO.Mean),
		f3(res.SLO.Min),
		lambdaCell(res.Lambda0, approx0),
		meanLat,
		fmt.Sprint(unrepaired),
	}
}
