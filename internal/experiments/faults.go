package experiments

import (
	"context"
	"fmt"

	"flattree/internal/core"
	"flattree/internal/faults"
	"flattree/internal/parallel"
	"flattree/internal/topo"
)

// Faults measures robustness under random link failures (motivated by §5's
// "self-recovery of the topology from failures"): for growing failure
// fractions, the surviving-connectivity fraction, average path length, and
// disconnection count of fat-tree, flat-tree in global-random mode, and the
// random graph, each built from the same equipment.
//
// Results are averaged over cfg.trials() failure seeds, with one
// correction to the naive mean: a trial whose largest surviving component
// has no server pair contributes no path length at all, so APL is averaged
// only over trials that produced a finite path. (Folding such trials in as
// zeros — what this driver once did — biased the mean downward exactly
// where the network is most degraded.) The "disc" column reports how many
// trials left the surviving servers less than fully connected, so the
// information the APL mean no longer hides is still visible.
func Faults(ctx context.Context, cfg Config, k int) (*Table, error) {
	if k == 0 {
		k = 8
	}
	trials := cfg.trials()
	s, err := buildSuite(k, cfg.Seed, core.ModeGlobalRandom, false)
	if err != nil {
		return nil, err
	}
	targets := []*topo.Network{s.fat.Net, s.flat.Net(), s.rg.Net}
	fracs := []float64{0, 0.05, 0.1, 0.2, 0.3}

	t := &Table{
		Title: fmt.Sprintf("link-failure robustness at k=%d (avg over %d trials)", k, trials),
		Header: []string{"fail-frac",
			"fat-tree/conn", "fat-tree/apl", "fat-tree/disc",
			"flat-tree/conn", "flat-tree/apl", "flat-tree/disc",
			"random-graph/conn", "random-graph/apl", "random-graph/disc"},
	}

	// One cell per (failure fraction, topology, trial); every Degrade +
	// Analyze is independent, so the whole grid fans out.
	type trialResult struct {
		conn, apl    float64
		finite       bool // at least one server pair had a path
		disconnected bool // surviving servers not all mutually reachable
	}
	seeds := cfg.trialSeeds()
	perFrac := len(targets) * trials
	results, err := parallel.MapCtx(ctx, len(fracs)*perFrac, cfg.workers(), func(idx int) (trialResult, error) {
		fi, rest := idx/perFrac, idx%perFrac
		ni, tr := rest/trials, rest%trials
		d, err := faults.Degrade(targets[ni], faults.Scenario{
			LinkFraction: fracs[fi], Seed: seeds.Seed(uint64(tr)),
		})
		if err != nil {
			return trialResult{}, err
		}
		rep, err := faults.Analyze(d)
		if err != nil {
			return trialResult{}, err
		}
		return trialResult{
			conn:         rep.LargestComponentFrac,
			apl:          rep.APL,
			finite:       rep.APL > 0,
			disconnected: !rep.Connected,
		}, nil
	})
	if err != nil {
		return nil, err
	}

	for fi, frac := range fracs {
		row := []string{fmt.Sprintf("%.2f", frac)}
		for ni := range targets {
			var conn, apl float64
			finite, disc := 0, 0
			for tr := 0; tr < trials; tr++ {
				r := results[fi*perFrac+ni*trials+tr]
				conn += r.conn
				if r.finite {
					apl += r.apl
					finite++
				}
				if r.disconnected {
					disc++
				}
			}
			conn /= float64(trials)
			aplCell := "-"
			if finite > 0 {
				aplCell = f3(apl / float64(finite))
			}
			row = append(row, f3(conn), aplCell, fmt.Sprint(disc))
		}
		t.AddRow(row...)
	}
	return t, nil
}
