package experiments

import (
	"fmt"
	"math"

	"flattree/internal/core"
	"flattree/internal/faults"
	"flattree/internal/topo"
)

// Faults measures robustness under random link failures (motivated by §5's
// "self-recovery of the topology from failures"): for growing failure
// fractions, the surviving-connectivity fraction and average path length of
// fat-tree, flat-tree in global-random mode, and the random graph, each
// built from the same equipment. Results are averaged over Trials seeds.
func Faults(cfg Config, k int) (*Table, error) {
	if k == 0 {
		k = 8
	}
	trials := cfg.Trials
	if trials <= 0 {
		trials = 3
	}
	s, err := buildSuite(k, cfg.Seed, core.ModeGlobalRandom, false)
	if err != nil {
		return nil, err
	}
	targets := []*topo.Network{s.fat.Net, s.flat.Net(), s.rg.Net}

	t := &Table{
		Title: fmt.Sprintf("link-failure robustness at k=%d (avg over %d trials)", k, trials),
		Header: []string{"fail-frac",
			"fat-tree/conn", "fat-tree/apl",
			"flat-tree/conn", "flat-tree/apl",
			"random-graph/conn", "random-graph/apl"},
	}
	for _, frac := range []float64{0, 0.05, 0.1, 0.2, 0.3} {
		row := []string{fmt.Sprintf("%.2f", frac)}
		for _, nw := range targets {
			var conn, apl float64
			for tr := 0; tr < trials; tr++ {
				d, err := faults.Degrade(nw, faults.Scenario{
					LinkFraction: frac, Seed: cfg.Seed + uint64(tr)*7919,
				})
				if err != nil {
					return nil, err
				}
				rep, err := faults.Analyze(d)
				if err != nil {
					return nil, err
				}
				conn += rep.LargestComponentFrac
				apl += rep.APL
			}
			conn /= float64(trials)
			apl /= float64(trials)
			//flatlint:ignore floatcmp apl is exactly 0 iff no trial found any finite path
			if math.IsNaN(apl) || apl == 0 {
				row = append(row, f3(conn), "-")
			} else {
				row = append(row, f3(conn), f3(apl))
			}
		}
		t.AddRow(row...)
	}
	return t, nil
}
