package experiments

import (
	"context"
	"fmt"

	"flattree/internal/core"
	"flattree/internal/graph"
	"flattree/internal/parallel"
	"flattree/internal/pktsim"
	"flattree/internal/routing"
	"flattree/internal/topo"
)

// Latency runs the packet-level simulator over uniform random traffic on
// fat-tree, flat-tree (each mode), and the random graph at one k, turning
// the Figure-5 path-length differences into observable packet latency.
// Load is the per-unit-time packet injection rate relative to the server
// count (0 selects a light 0.1 pkt/server/unit). The targets are collected
// sequentially (mode flips mutate the flat-tree, though each Net() snapshot
// is immutable), then the five simulations — each with its own RNG seeded
// from cfg.Seed — run concurrently.
func Latency(ctx context.Context, cfg Config, k int, load float64) (*Table, error) {
	if k == 0 {
		k = 8
	}
	if load <= 0 {
		load = 0.1
	}
	s, err := buildSuite(k, cfg.Seed, core.ModeClos, false)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title: fmt.Sprintf("packet latency under uniform traffic, k=%d, load %.2f pkt/server/unit", k, load),
		Header: []string{"topology", "delivered", "dropped",
			"mean-latency", "p99-latency", "mean-hops", "utilization"},
	}
	type target struct {
		name string
		nw   *topo.Network
	}
	targets := []target{
		{"fat-tree", s.fat.Net},
		{"random-graph", s.rg.Net},
	}
	for _, mode := range []core.Mode{core.ModeClos, core.ModeGlobalRandom, core.ModeLocalRandom} {
		if err := s.flat.SetUniformMode(mode); err != nil {
			return nil, err
		}
		targets = append(targets, target{"flat-tree/" + mode.String(), s.flat.Net()})
	}
	rows, err := parallel.MapCtx(ctx, len(targets), cfg.workers(), func(i int) ([]string, error) {
		tg := targets[i]
		servers := tg.nw.Servers()
		rate := load * float64(len(servers))
		count := 40 * len(servers)
		rng := graph.NewRNG(cfg.Seed)
		pkts := pktsim.PoissonPackets(servers, rate, count, 8, rng)
		res, err := pktsim.Simulate(tg.nw, routing.BuildTable(tg.nw), pkts, pktsim.Config{})
		if err != nil {
			return nil, fmt.Errorf("latency %s: %w", tg.name, err)
		}
		return []string{tg.name,
			fmt.Sprint(res.Delivered), fmt.Sprint(res.Dropped),
			f3(res.MeanLatency), f3(res.P99Latency), f3(res.MeanHops), f3(res.Utilization)}, nil
	})
	if err != nil {
		return nil, err
	}
	for _, row := range rows {
		t.AddRow(row...)
	}
	return t, nil
}
