package experiments

import (
	"context"
	"fmt"
	"net"
	"sort"
	"time"

	"flattree/internal/core"
	"flattree/internal/ctrl"
	"flattree/internal/faults"
	"flattree/internal/graph"
	"flattree/internal/mcf"
	"flattree/internal/parallel"
	"flattree/internal/topo"
)

// healStage is one point of a self-heal trajectory: the effective network
// at a named moment of the repair.
type healStage struct {
	name string
	nw   *topo.Network
}

// SelfHeal measures the online self-healing loop end to end: for each
// trial it stands up a live control plane (controller + one TCP agent per
// pod, heartbeating), kills a seeded fraction of the agents mid-run, waits
// for the heartbeat-deadline monitor to declare them dead, and lets
// ctrl.SelfHeal drive the staged repair. The resulting table is the
// throughput trajectory: pre-failure → failed → each §2.7 dark window →
// recovered, with connectivity and path length alongside λ.
//
// The live phase runs trials sequentially (its outcome is a deterministic
// function of the seed; TCP timing only affects wall-clock), and the
// measurement fans out one work item per trial over cfg.Parallelism
// workers, reducing in index order — so the table is byte-identical at
// every worker count. Each trial owns one pooled mcf.Solver and walks its
// trajectory in stage order: consecutive stages are link-level deltas of
// the same fabric, so a solve warm-starts from the previous stage. The
// permutation is re-drawn over the largest component's servers when that
// component shifts (e.g. entering the first dark window), but the relaxed
// gate still admits the re-draw as long as the surviving sources overlap
// the captured ones, rescaling the previous λ by the aggregate-demand
// ratio; only a wholesale source change runs cold. Grouping by trial (not
// by cell) is what keeps the warm chain a pure function of the trial,
// independent of scheduling. λ is the max concurrent flow of a seeded permutation
// workload over the largest connected component's servers (dark windows
// detach some servers; they are down, not partitioned, and the surviving
// fabric's throughput is the quantity of interest).
func SelfHeal(ctx context.Context, cfg Config, k int, failFrac float64, batchSize int) (*Table, error) {
	if k == 0 {
		k = 8
	}
	if failFrac <= 0 || failFrac >= 1 {
		return nil, fmt.Errorf("selfheal: fail fraction %g out of (0,1)", failFrac)
	}
	if batchSize <= 0 {
		batchSize = 1
	}
	nDead := int(failFrac * float64(k))
	if nDead < 1 {
		nDead = 1
	}
	if nDead >= k {
		nDead = k - 1
	}
	trials := cfg.trials()
	seeds := cfg.trialSeeds()

	stages := make([][]healStage, trials)
	maxWin := 0
	for tr := 0; tr < trials; tr++ {
		st, err := runSelfHealTrial(ctx, k, nDead, batchSize, seeds.Seed(uint64(tr)))
		if err != nil {
			return nil, fmt.Errorf("selfheal trial %d: %w", tr, err)
		}
		stages[tr] = st
		if w := len(st) - 3; w > maxWin {
			maxWin = w
		}
	}

	canon := []string{"pre-failure", "failed"}
	for i := 1; i <= maxWin; i++ {
		canon = append(canon, fmt.Sprintf("window-%d", i))
	}
	canon = append(canon, "recovered")
	netOf := make([]map[string]*topo.Network, trials)
	for tr := range stages {
		netOf[tr] = make(map[string]*topo.Network, len(stages[tr]))
		for _, st := range stages[tr] {
			netOf[tr][st.name] = st.nw
		}
	}

	type healCell struct {
		conn, apl, lambda  float64
		finite, approx, ok bool
	}
	results, err := parallel.MapCtx(ctx, trials, cfg.workers(), func(tr int) ([]healCell, error) {
		s := mcf.GetSolver()
		defer s.Release()
		cells := make([]healCell, len(canon))
		for si, name := range canon {
			nw := netOf[tr][name]
			if nw == nil {
				continue // this trial's repair used fewer windows
			}
			rep, err := faults.Analyze(nw)
			if err != nil {
				return nil, fmt.Errorf("selfheal %s trial=%d: %w", name, tr, err)
			}
			c := healCell{conn: rep.LargestComponentFrac, apl: rep.APL, finite: rep.APL > 0, ok: true}
			comms := componentCommodities(nw, seeds.Seed(1<<32|uint64(tr)))
			if len(comms) > 0 {
				res, err := s.Solve(ctx, nw, comms, mcf.Options{
					Epsilon: cfg.Epsilon, SkipDualBound: true, TimeBudget: cfg.SolveBudget, SSSP: cfg.SSSP})
				if err != nil {
					return nil, fmt.Errorf("selfheal %s trial=%d: %w", name, tr, err)
				}
				c.lambda, c.approx = res.Lambda, res.Approximate
			}
			cells[si] = c
		}
		return cells, nil
	})
	if err != nil {
		return nil, err
	}

	t := &Table{
		Title: fmt.Sprintf("self-heal trajectory at k=%d: kill %d/%d pod agents, staged repair in batches of %d (avg over %d trials)",
			k, nDead, k, batchSize, trials),
		Header: []string{"stage", "trials", "conn", "apl", "lambda"},
	}
	for si, name := range canon {
		var conn, apl, lambda float64
		n, fin := 0, 0
		approx := false
		for tr := 0; tr < trials; tr++ {
			c := results[tr][si]
			if !c.ok {
				continue
			}
			n++
			conn += c.conn
			lambda += c.lambda
			approx = approx || c.approx
			if c.finite {
				apl += c.apl
				fin++
			}
		}
		if n == 0 {
			continue
		}
		aplStr := "-"
		if fin > 0 {
			aplStr = f3(apl / float64(fin))
		}
		t.AddRow(name, fmt.Sprint(n), f3(conn/float64(n)), aplStr, lambdaCell(lambda/float64(n), approx))
	}
	return t, nil
}

// runSelfHealTrial executes one live self-heal round and returns the
// trajectory's stage networks.
func runSelfHealTrial(ctx context.Context, k, nDead, batchSize int, seed uint64) ([]healStage, error) {
	ft, err := buildFlatTree(k, core.ModeGlobalRandom)
	if err != nil {
		return nil, err
	}
	pre := ft.Net()
	c := ctrl.NewController(ft)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	sctx, cancelServe := context.WithCancel(ctx)
	defer cancelServe()
	go c.Serve(sctx, l)
	defer c.Close()

	cancels := make([]context.CancelFunc, k)
	defer func() {
		for _, cancel := range cancels {
			if cancel != nil {
				cancel()
			}
		}
	}()
	for p := 0; p < k; p++ {
		a := ctrl.NewAgent(p, ctrl.ConfigsForPod(ft, p))
		a.HeartbeatInterval = 5 * time.Millisecond
		actx, cancel := context.WithCancel(ctx)
		cancels[p] = cancel
		//flatlint:ignore ignorederr agent exit races trial teardown; liveness is asserted via WaitForAgents/WaitForFailures
		go func() { _ = a.Run(actx, l.Addr().String()) }()
	}
	wctx, wcancel := context.WithTimeout(ctx, 30*time.Second)
	defer wcancel()
	if err := c.WaitForAgents(wctx, k); err != nil {
		return nil, err
	}

	// Kill a seeded set of agents: their heartbeats stop, and the
	// controller's deadline monitor declares the pods dead.
	dead := append([]int(nil), graph.NewRNG(seed).Perm(k)[:nDead]...)
	sort.Ints(dead)
	for _, p := range dead {
		cancels[p]()
	}
	const deadline = 60 * time.Millisecond
	if _, err := c.WaitForFailures(wctx, dead, deadline); err != nil {
		return nil, err
	}

	rep, err := c.SelfHeal(ctx, dead, ctrl.SelfHealOptions{
		Seed: seed, BatchSize: batchSize, RequireConnected: true})
	if err != nil {
		return nil, err
	}
	stages := []healStage{{"pre-failure", pre}, {"failed", rep.Degraded}}
	for i, w := range rep.Windows {
		stages = append(stages, healStage{fmt.Sprintf("window-%d", i+1), w.Dark})
	}
	stages = append(stages, healStage{"recovered", rep.Healed})
	return stages, nil
}

// componentCommodities is permutationCommodities restricted to the largest
// connected component's servers: each sends unit demand to one seeded
// pseudo-random peer. Networks mid-repair are legitimately missing servers
// (dark windows detach them); scoring the surviving fabric 0 because of a
// detached straggler would hide the recovery the table is measuring.
func componentCommodities(nw *topo.Network, seed uint64) []mcf.Commodity {
	g := nw.Graph()
	servers := nw.Servers()
	seen := make([]bool, nw.N())
	var best []int
	for _, s := range servers {
		if seen[s] {
			continue
		}
		dist := g.BFS(s)
		var comp []int
		for _, sv := range servers {
			if dist[sv] >= 0 && !seen[sv] {
				seen[sv] = true
				comp = append(comp, sv)
			}
		}
		if len(comp) > len(best) {
			best = comp
		}
	}
	if len(best) < 2 {
		return nil
	}
	perm := graph.NewRNG(seed).Perm(len(best))
	comms := make([]mcf.Commodity, 0, len(best))
	for i, p := range perm {
		if i == p {
			continue
		}
		comms = append(comms, mcf.Commodity{Src: best[i], Dst: best[p], Demand: 1})
	}
	return comms
}
