package experiments

import (
	"context"
	"fmt"

	"flattree/internal/core"
	"flattree/internal/faults"
	"flattree/internal/graph"
	"flattree/internal/mcf"
	"flattree/internal/parallel"
	"flattree/internal/topo"
)

// FaultsRecovery measures the §5 self-recovery claim end to end: for
// growing link-failure fractions it applies the scenario, measures the
// degraded network, runs the recovery pass, and measures again — so every
// row reads before-failure (the 0.00 row) → after-failure → after-recovery
// for each topology built from the same equipment.
//
// The base scenario contributes the correlated failure stages (switch
// fraction, pod bursts, converter deaths); the sweep overrides its
// LinkFraction and per-trial Seed. Recovery policy is per topology: the
// fat-tree's fixed cabling cannot rewire (faults.RewirableNone), while the
// flat-tree and the random graph re-aim their converter/random ports
// (faults.DefaultRewirable) — which is exactly the asymmetry the paper
// argues for.
//
// Throughput is the max concurrent flow of a seeded random server
// permutation (each surviving server sends unit demand to one peer),
// solved with SkipDualBound; a disconnected network scores 0 without
// solving. Cells fan out over cfg.Parallelism workers and reduce in index
// order, so the table is byte-identical at every worker count. Each cell
// owns one pooled mcf.Solver: the after-recovery network is a link-level
// delta of the after-failure one, so its solve warm-starts from the failed
// solve's length function. The chain lives entirely inside the cell, so it
// is a pure function of the cell index, independent of scheduling.
func FaultsRecovery(ctx context.Context, cfg Config, k int, base faults.Scenario) (*Table, error) {
	if k == 0 {
		k = 8
	}
	trials := cfg.trials()
	s, err := buildSuite(k, cfg.Seed, core.ModeGlobalRandom, false)
	if err != nil {
		return nil, err
	}
	type target struct {
		name      string
		nw        *topo.Network
		rewirable func(topo.LinkTag) bool
	}
	targets := []target{
		{"fat-tree", s.fat.Net, faults.RewirableNone},
		{"flat-tree", s.flat.Net(), faults.DefaultRewirable},
		{"random-graph", s.rg.Net, faults.DefaultRewirable},
	}
	fracs := []float64{0, 0.05, 0.1, 0.2, 0.3}

	t := &Table{
		Title:  fmt.Sprintf("failure -> recovery at k=%d (avg over %d trials; fail/rec = after failure / after recovery)", k, trials),
		Header: []string{"fail-frac"},
	}
	for _, tg := range targets {
		t.Header = append(t.Header,
			tg.name+"/conn-fail", tg.name+"/apl-fail", tg.name+"/tput-fail",
			tg.name+"/conn-rec", tg.name+"/apl-rec", tg.name+"/tput-rec")
	}

	type cell struct {
		connF, aplF, tputF float64
		connR, aplR, tputR float64
		finiteF, finiteR   bool
		approxF, approxR   bool
	}
	seeds := cfg.trialSeeds()
	perFrac := len(targets) * trials
	results, err := parallel.MapCtx(ctx, len(fracs)*perFrac, cfg.workers(), func(idx int) (cell, error) {
		fi, rest := idx/perFrac, idx%perFrac
		ni, tr := rest/trials, rest%trials
		tg := targets[ni]
		sc := base
		sc.LinkFraction = fracs[fi]
		sc.Seed = seeds.Seed(uint64(tr))
		out, err := faults.Fail(tg.nw, sc)
		if err != nil {
			return cell{}, fmt.Errorf("faultsrecovery frac=%.2f net=%s trial=%d: %w", fracs[fi], tg.name, tr, err)
		}
		solver := mcf.GetSolver()
		defer solver.Release()
		measure := func(nw *topo.Network) (conn, apl, tput float64, finite, approx bool, err error) {
			rep, err := faults.Analyze(nw)
			if err != nil {
				return 0, 0, 0, false, false, err
			}
			conn, apl, finite = rep.LargestComponentFrac, rep.APL, rep.APL > 0
			if !rep.Connected {
				return conn, apl, 0, finite, false, nil // disconnected pairs ship nothing
			}
			comms := permutationCommodities(nw, sc.Seed)
			if len(comms) == 0 {
				return conn, apl, 0, finite, false, nil
			}
			res, err := solver.Solve(ctx, nw, comms, mcf.Options{
				Epsilon: cfg.Epsilon, SkipDualBound: true, TimeBudget: cfg.SolveBudget, SSSP: cfg.SSSP})
			if err != nil {
				return 0, 0, 0, false, false, err
			}
			return conn, apl, res.Lambda, finite, res.Approximate, nil
		}
		var c cell
		if c.connF, c.aplF, c.tputF, c.finiteF, c.approxF, err = measure(out.Net); err != nil {
			return cell{}, err
		}
		rec, _, err := faults.Recover(out, faults.RecoverOptions{
			Seed:      seeds.Seed(1<<32 | uint64(tr)),
			Rewirable: tg.rewirable,
		})
		if err != nil {
			return cell{}, err
		}
		if c.connR, c.aplR, c.tputR, c.finiteR, c.approxR, err = measure(rec); err != nil {
			return cell{}, err
		}
		return c, nil
	})
	if err != nil {
		return nil, err
	}

	for fi, frac := range fracs {
		row := []string{fmt.Sprintf("%.2f", frac)}
		for ni := range targets {
			var connF, aplF, tputF, connR, aplR, tputR float64
			finF, finR := 0, 0
			approxF, approxR := false, false
			for tr := 0; tr < trials; tr++ {
				c := results[fi*perFrac+ni*trials+tr]
				connF += c.connF
				connR += c.connR
				tputF += c.tputF
				tputR += c.tputR
				approxF = approxF || c.approxF
				approxR = approxR || c.approxR
				if c.finiteF {
					aplF += c.aplF
					finF++
				}
				if c.finiteR {
					aplR += c.aplR
					finR++
				}
			}
			ft := float64(trials)
			aplCell := func(sum float64, n int) string {
				if n == 0 {
					return "-"
				}
				return f3(sum / float64(n))
			}
			row = append(row,
				f3(connF/ft), aplCell(aplF, finF), lambdaCell(tputF/ft, approxF),
				f3(connR/ft), aplCell(aplR, finR), lambdaCell(tputR/ft, approxR))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// permutationCommodities pairs every server with one pseudo-random peer
// (a seeded permutation, derangement-filtered per index): the classic
// uniform stress workload. Same-switch pairs are dropped by the solver's
// aggregation, so only the cross-fabric demands remain.
func permutationCommodities(nw *topo.Network, seed uint64) []mcf.Commodity {
	servers := nw.Servers()
	if len(servers) < 2 {
		return nil
	}
	perm := graph.NewRNG(seed).Perm(len(servers))
	comms := make([]mcf.Commodity, 0, len(servers))
	for i, p := range perm {
		if i == p {
			continue
		}
		comms = append(comms, mcf.Commodity{Src: servers[i], Dst: servers[p], Demand: 1})
	}
	return comms
}
