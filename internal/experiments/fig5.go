package experiments

import (
	"context"
	"fmt"

	"flattree/internal/core"
	"flattree/internal/fattree"
	"flattree/internal/jellyfish"
	"flattree/internal/metrics"
	"flattree/internal/parallel"
	"flattree/internal/topo"
)

// MNSetting is one (m, n) converter-count choice, expressed in eighths of k
// as the paper's Figure 5 legend does (m = Mk8·k/8, n = Nk8·k/8, rounded).
type MNSetting struct {
	Mk8, Nk8 int
}

// Label renders the legend label, e.g. "flat-tree(m=k/8,n=2k/8)".
func (s MNSetting) Label() string {
	frac := func(x int) string {
		if x == 1 {
			return "k/8"
		}
		return fmt.Sprintf("%dk/8", x)
	}
	return fmt.Sprintf("flat-tree(m=%s,n=%s)", frac(s.Mk8), frac(s.Nk8))
}

// Resolve returns the concrete (m, n) for a given k (rounded to nearest,
// like core.DefaultMN).
func (s MNSetting) Resolve(k int) (m, n int) {
	round := func(num, den int) int { return (2*num + den) / (2 * den) }
	return round(s.Mk8*k, 8), round(s.Nk8*k, 8)
}

// Fig5Settings are the five (m, n) combinations in Figure 5's legend.
var Fig5Settings = []MNSetting{
	{1, 1}, {1, 2}, {1, 3}, {2, 1}, {2, 2},
}

// fig5Header is Figure 5's full header, the key column plus one data column
// per topology and (m, n) setting.
func fig5Header() []string {
	h := []string{"k", "fat-tree", "random-graph"}
	for _, s := range Fig5Settings {
		h = append(h, s.Label())
	}
	return h
}

// fig5Cell computes one (k, column) cell of Figure 5 — a topology build
// plus an all-pairs BFS sweep. It is a pure function of (cfg.Seed, k, ci),
// so the cell prints the same bytes whether it runs inside a full table
// fan-out or alone.
func fig5Cell(cfg Config, k, ci int) (string, error) {
	var nw *topo.Network
	switch ci {
	case 0:
		fat, err := fattree.New(k)
		if err != nil {
			return "", err
		}
		nw = fat.Net
	case 1:
		rg, err := jellyfish.New(k, cfg.Seed)
		if err != nil {
			return "", err
		}
		nw = rg.Net
	default:
		s := Fig5Settings[ci-2]
		m, n := s.Resolve(k)
		if m+n > k/2 {
			return "-", nil // infeasible for this k
		}
		ft, err := core.Build(core.Params{K: k, M: m, N: n})
		if err != nil {
			return "", err
		}
		if err := ft.SetUniformMode(core.ModeGlobalRandom); err != nil {
			return "", err
		}
		nw = ft.Net()
	}
	apl, err := metrics.AveragePathLength(nw)
	if err != nil {
		return "", fmt.Errorf("fig5 k=%d col=%d: %w", k, ci, err)
	}
	return f3(apl), nil
}

// Fig5 regenerates Figure 5: network-wide average path length of server
// pairs versus k, for fat-tree, random graph, and flat-tree in
// global-random mode under each (m, n) setting. Every (k, column) cell
// runs concurrently through the worker pool.
func Fig5(ctx context.Context, cfg Config) (*Table, error) {
	t := &Table{
		Title:  "Figure 5: average path length of server pairs in the entire network",
		Header: fig5Header(),
	}
	ks := cfg.Ks()
	cols := len(t.Header) - 1
	cells, err := parallel.MapCtx(ctx, len(ks)*cols, cfg.workers(), func(idx int) (string, error) {
		return fig5Cell(cfg, ks[idx/cols], idx%cols)
	})
	if err != nil {
		return nil, err
	}
	for ki, k := range ks {
		t.AddRow(append([]string{fmt.Sprint(k)}, cells[ki*cols:(ki+1)*cols]...)...)
	}
	return t, nil
}

// fig5Column computes one Figure 5 data column as a standalone cell table:
// the same fig5Cell evaluations a full run performs, restricted to column
// ci.
func fig5Column(ctx context.Context, cfg Config, ci int) (*Table, error) {
	h := fig5Header()
	t := &Table{
		Title:  "Figure 5: average path length of server pairs in the entire network",
		Header: []string{h[0], h[1+ci]},
	}
	ks := cfg.Ks()
	cells, err := parallel.MapCtx(ctx, len(ks), cfg.workers(), func(ki int) (string, error) {
		return fig5Cell(cfg, ks[ki], ci)
	})
	if err != nil {
		return nil, err
	}
	for ki, k := range ks {
		t.AddRow(fmt.Sprint(k), cells[ki])
	}
	return t, nil
}

// ProfileResult is the outcome of the §2.4 profiling procedure for one k.
type ProfileResult struct {
	K          int
	BestM      int
	BestN      int
	BestAPL    float64
	DefaultAPL float64 // APL at the paper's default (m, n) = (k/8, 2k/8)
}

// Profile runs the §2.4 profiling scheme: sweep (m, n) at k/8 granularity
// under the preferred wiring pattern and report the argmin average path
// length. The paper finds (k/8, 2k/8). The settings evaluate concurrently
// (cfg.Parallelism workers); the argmin scan runs over the merged results
// in sweep order, so ties resolve identically at every worker count.
func Profile(ctx context.Context, cfg Config, k int) (*Table, ProfileResult, error) {
	t := &Table{
		Title:  fmt.Sprintf("Profiling m,n for k=%d (§2.4): APL per setting", k),
		Header: []string{"m", "n", "apl"},
	}
	res := ProfileResult{K: k, BestAPL: -1}
	round := func(num, den int) int { return (2*num + den) / (2 * den) }
	dm, dn := core.DefaultMN(k)
	type setting struct{ m, n int }
	var settings []setting
	for mi := 1; mi <= 4; mi++ {
		for ni := 1; ni <= 4; ni++ {
			m, n := round(mi*k, 8), round(ni*k, 8)
			if m+n > k/2 || m < 1 || n < 1 {
				continue
			}
			settings = append(settings, setting{m, n})
		}
	}
	apls, err := parallel.MapCtx(ctx, len(settings), cfg.workers(), func(i int) (float64, error) {
		ft, err := core.Build(core.Params{K: k, M: settings[i].m, N: settings[i].n})
		if err != nil {
			return 0, err
		}
		if err := ft.SetUniformMode(core.ModeGlobalRandom); err != nil {
			return 0, err
		}
		return metrics.AveragePathLength(ft.Net())
	})
	if err != nil {
		return nil, res, err
	}
	for i, s := range settings {
		apl := apls[i]
		t.AddRow(fmt.Sprint(s.m), fmt.Sprint(s.n), f3(apl))
		if res.BestAPL < 0 || apl < res.BestAPL {
			res.BestM, res.BestN, res.BestAPL = s.m, s.n, apl
		}
		if s.m == dm && s.n == dn {
			res.DefaultAPL = apl
		}
	}
	return t, res, nil
}
