package experiments

import (
	"bytes"
	"context"
	"strconv"
	"strings"
	"testing"
)

func smallCfg() Config {
	return Config{KMin: 4, KMax: 8, KStep: 2, Seed: 1, Epsilon: 0.12, HybridK: 6}
}

func cell(t *testing.T, tab *Table, row, col int) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(tab.Rows[row][col], 64)
	if err != nil {
		t.Fatalf("cell (%d,%d) = %q: %v", row, col, tab.Rows[row][col], err)
	}
	return v
}

func TestKsSweep(t *testing.T) {
	cfg := Config{KMin: 4, KMax: 12, KStep: 4}
	ks := cfg.Ks()
	if len(ks) != 3 || ks[0] != 4 || ks[1] != 8 || ks[2] != 12 {
		t.Errorf("ks = %v", ks)
	}
	odd := Config{KMin: 3, KMax: 7, KStep: 1}
	for _, k := range odd.Ks() {
		if k%2 != 0 {
			t.Errorf("odd k %d in sweep", k)
		}
	}
}

// TestFig5Shape verifies the paper's Figure 5 claims on a reduced sweep:
// flat-tree at (m,n)=(k/8,2k/8) is notably shorter than fat-tree and within
// 5% of the random graph.
func TestFig5Shape(t *testing.T) {
	tab, err := Fig5(context.Background(), smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// Column 4 is flat-tree(m=k/8,n=2k/8); row 2 is k=8.
	fat := cell(t, tab, 2, 1)
	rg := cell(t, tab, 2, 2)
	flat := cell(t, tab, 2, 4)
	if flat >= fat {
		t.Errorf("k=8: flat-tree APL %g not below fat-tree %g", flat, fat)
	}
	if flat > rg*1.05 {
		t.Errorf("k=8: flat-tree APL %g more than 5%% above random graph %g", flat, rg)
	}
}

// TestFig6Shape: flat-tree local mode beats fat-tree and random graph on
// intra-pod APL, and random graph is worst (servers scatter).
func TestFig6Shape(t *testing.T) {
	tab, err := Fig6(context.Background(), smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	for i, row := range tab.Rows {
		if i == 0 {
			continue // k=4 is degenerate (pods of 4 servers)
		}
		flat := cell(t, tab, i, 1)
		fat := cell(t, tab, i, 2)
		rg := cell(t, tab, i, 3)
		if flat > fat {
			t.Errorf("k=%s: flat %g > fat %g", row[0], flat, fat)
		}
		if rg <= fat {
			t.Errorf("k=%s: random graph %g should be worst (fat %g)", row[0], rg, fat)
		}
	}
}

// TestFig7Shape: flat-tree throughput ≈ random graph, both clearly above
// fat-tree, and throughput grows with k.
func TestFig7Shape(t *testing.T) {
	tab, err := Fig7(context.Background(), smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	last := len(tab.Rows) - 1
	fat := cell(t, tab, last, 1)
	flat := cell(t, tab, last, 3)
	rg := cell(t, tab, last, 5)
	if flat < 1.2*fat {
		t.Errorf("flat-tree %g not clearly above fat-tree %g", flat, fat)
	}
	if flat < 0.75*rg || flat > 1.35*rg {
		t.Errorf("flat-tree %g not close to random graph %g", flat, rg)
	}
	if cell(t, tab, last, 1) <= cell(t, tab, 0, 1) {
		t.Error("fat-tree throughput should grow with k")
	}
}

// TestFig8Shape: all-to-all throughput in the paper's band, fat-tree the
// weakest topology.
func TestFig8Shape(t *testing.T) {
	cfg := smallCfg()
	cfg.KMin, cfg.KMax = 6, 8
	tab, err := Fig8(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range tab.Rows {
		fat := cell(t, tab, i, 1)
		flat := cell(t, tab, i, 3)
		if flat <= fat {
			t.Errorf("row %d: flat-tree %g should beat fat-tree %g", i, flat, fat)
		}
	}
}

// TestHybridNoInterference reproduces §3.4's claim on a small network: each
// zone's throughput matches the corresponding complete network within
// tolerance, and the joint interference factor stays near 1.
func TestHybridNoInterference(t *testing.T) {
	cfg := smallCfg()
	tab, rows, err := Hybrid(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 || len(tab.Rows) != len(rows) {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.LambdaGlobal < 0.7*r.RefGlobal {
			t.Errorf("%d/%d pods: global zone %g far below reference %g",
				r.GlobalPods, r.LocalPods, r.LambdaGlobal, r.RefGlobal)
		}
		if r.LambdaLocal < 0.7*r.RefLocal {
			t.Errorf("%d/%d pods: local zone %g far below reference %g",
				r.GlobalPods, r.LocalPods, r.LambdaLocal, r.RefLocal)
		}
		if r.Interference < 0.8 {
			t.Errorf("%d/%d pods: interference factor %g, want ~1",
				r.GlobalPods, r.LocalPods, r.Interference)
		}
	}
}

// TestProfileFindsPaperOptimum: the §2.4 profiling procedure should land on
// (or tie with) the paper's (k/8, 2k/8) for a representative k.
func TestProfileFindsPaperOptimum(t *testing.T) {
	tab, res, err := Profile(context.Background(), smallCfg(), 16)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) == 0 {
		t.Fatal("no profile rows")
	}
	if res.DefaultAPL == 0 {
		t.Fatal("default setting not profiled")
	}
	// The paper's default need not be the unique argmin, but it must be
	// within 2% of the best found.
	if res.DefaultAPL > res.BestAPL*1.02 {
		t.Errorf("default (m=%d,n=%d) APL %g; best (m=%d,n=%d) %g",
			16/8, 2*16/8, res.DefaultAPL, res.BestM, res.BestN, res.BestAPL)
	}
}

// TestPropsPattern1Uniform: Property 1 and 2 spreads are zero for pattern 1
// whenever the layout permits exact uniformity: d = k/2 even (odd d leaves
// the middle blade column's side connectors unused, §2.2, so its servers
// cannot relocate) and gcd(m, g) dividing n (the blade-A blocks then tile
// the core groups exactly). k = 8 and 16 satisfy both at the default
// (m, n); k = 10..14 each violate one and are covered by the exact-wiring
// check in the core package instead.
func TestPropsPattern1Uniform(t *testing.T) {
	cfg := smallCfg()
	cfg.KMin, cfg.KMax = 8, 16
	_, reports, err := Props(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	uniformK := map[int]bool{8: true, 16: true}
	for _, r := range reports {
		if r.Pattern.String() != "pattern1" || !uniformK[r.K] {
			continue
		}
		if r.ServerSpread != 0 || r.EdgeSpread != 0 || r.AggSpread != 0 {
			t.Errorf("k=%d pattern1: spreads %d/%d/%d, want 0",
				r.K, r.ServerSpread, r.EdgeSpread, r.AggSpread)
		}
	}
}

func TestTableRendering(t *testing.T) {
	tab := &Table{Title: "t", Header: []string{"a", "bb"}}
	tab.AddRow("1", "2")
	var buf bytes.Buffer
	if err := tab.WriteTSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "a\tbb") || !strings.Contains(buf.String(), "1\t2") {
		t.Errorf("tsv = %q", buf.String())
	}
	s := tab.String()
	if !strings.Contains(s, "# t") || !strings.Contains(s, "bb") {
		t.Errorf("string = %q", s)
	}
}
