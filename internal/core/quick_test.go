package core

import (
	"testing"
	"testing/quick"

	"flattree/internal/topo"
)

// TestRandomHybridAssignmentsValid: any per-pod mode assignment must yield
// a valid connected network with conserved equipment — the invariant that
// makes hybrid operation safe to expose through the controller.
func TestRandomHybridAssignmentsValid(t *testing.T) {
	builds := map[int]*FlatTree{}
	for _, k := range []int{6, 8} {
		ft, err := Build(Params{K: k})
		if err != nil {
			t.Fatal(err)
		}
		builds[k] = ft
	}
	err := quick.Check(func(kPick bool, assign []uint8) bool {
		k := 6
		if kPick {
			k = 8
		}
		ft := builds[k]
		modes := make([]Mode, k)
		for i := range modes {
			if i < len(assign) {
				modes[i] = Mode(assign[i] % 3)
			}
		}
		if err := ft.SetModes(modes); err != nil {
			return false
		}
		nw := ft.Net()
		if err := nw.Validate(); err != nil {
			return false
		}
		st := nw.Stats()
		return st.Servers == k*k*k/4 && st.Links == 3*k*k*k/4
	}, &quick.Config{MaxCount: 60})
	if err != nil {
		t.Error(err)
	}
}

// TestConverterPlantSize: the plant has exactly k * d * (m+n) converters,
// and every one is fully cabled to four devices in its own pod.
func TestConverterPlantSize(t *testing.T) {
	for _, k := range []int{4, 6, 8, 12, 16} {
		ft, err := Build(Params{K: k})
		if err != nil {
			t.Fatal(err)
		}
		m, n := ft.Params.M, ft.Params.N
		want := k * (k / 2) * (m + n)
		if len(ft.Convs) != want {
			t.Errorf("k=%d: %d converters, want %d", k, len(ft.Convs), want)
		}
		for id, ci := range ft.Convs {
			if ci.Server < 0 || ci.Edge < 0 || ci.Agg < 0 || ci.Core < 0 {
				t.Fatalf("k=%d conv %d: incomplete cabling %+v", k, id, ci)
			}
		}
	}
}

// TestServerTapsDisjoint: no two converters tap the same server, and no
// two converters tap the same core-switch cable.
func TestServerTapsDisjoint(t *testing.T) {
	for _, k := range []int{6, 8, 16} {
		ft, err := Build(Params{K: k})
		if err != nil {
			t.Fatal(err)
		}
		servers := make(map[int32]int)
		type coreTap struct {
			agg  int32
			core int32
		}
		cores := make(map[coreTap]int)
		for id, ci := range ft.Convs {
			if prev, dup := servers[ci.Server]; dup {
				t.Fatalf("k=%d: server %d tapped by converters %d and %d", k, ci.Server, prev, id)
			}
			servers[ci.Server] = id
			ct := coreTap{ci.Agg, ci.Core}
			if prev, dup := cores[ct]; dup {
				t.Fatalf("k=%d: agg-core cable %v tapped by converters %d and %d", k, ct, prev, id)
			}
			cores[ct] = id
		}
	}
}

// TestSideLinkCount: in uniform global-random mode with even d, every
// paired blade-B converter contributes to exactly two inter-pod effective
// links (E and A hand-offs), so the side-link total is
// 2 * (#adjacencies) * m * floor(d/2).
func TestSideLinkCount(t *testing.T) {
	for _, k := range []int{8, 16} {
		ft, err := Build(Params{K: k})
		if err != nil {
			t.Fatal(err)
		}
		if err := ft.SetUniformMode(ModeGlobalRandom); err != nil {
			t.Fatal(err)
		}
		m := ft.Params.M
		want := 2 * k * m * (k / 4) // ring: k adjacencies; w = d/2 = k/4
		got := ft.Net().Stats().LinksByTag[topo.TagSide]
		if got != want {
			t.Errorf("k=%d: %d side links, want %d", k, got, want)
		}
	}
}

// TestModesAccessors covers the small accessors used by the controller.
func TestModesAccessors(t *testing.T) {
	ft, err := Build(Params{K: 4})
	if err != nil {
		t.Fatal(err)
	}
	modes := ft.Modes()
	if len(modes) != 4 {
		t.Fatalf("Modes() len %d", len(modes))
	}
	modes[0] = ModeGlobalRandom // must not alias internal state
	if ft.Mode(0) != ModeClos {
		t.Error("Modes() aliases internal state")
	}
	if ft.NumPods() != 4 || ft.NumServers() != 16 {
		t.Error("accessors wrong")
	}
	if got := len(ft.Configs()); got != len(ft.Convs) {
		t.Errorf("Configs() len %d, want %d", got, len(ft.Convs))
	}
}

// TestStringers exercises the enum formatting.
func TestStringers(t *testing.T) {
	for _, s := range []string{
		ModeClos.String(), ModeGlobalRandom.String(), ModeLocalRandom.String(), Mode(9).String(),
		PatternAuto.String(), Pattern1.String(), Pattern2.String(), Pattern(9).String(),
		BladeA.String(), BladeB.String(),
	} {
		if s == "" {
			t.Error("empty stringer output")
		}
	}
}

// TestRepeatPeriod covers the pattern-selection arithmetic.
func TestRepeatPeriod(t *testing.T) {
	cases := []struct {
		pat  Pattern
		k, m int
		want int
	}{
		{Pattern1, 8, 1, 4},  // g=4, step 1
		{Pattern2, 8, 1, 2},  // step 2, gcd 2
		{Pattern1, 16, 2, 4}, // g=8, step 2
		{Pattern2, 16, 2, 8}, // step 3 coprime with 8
		{Pattern1, 4, 2, 1},  // step == g
		{Pattern1, 8, 0, 4},  // no 6-port converters
	}
	for _, c := range cases {
		if got := RepeatPeriod(c.pat, c.k, c.m); got != c.want {
			t.Errorf("RepeatPeriod(%s, k=%d, m=%d) = %d, want %d", c.pat, c.k, c.m, got, c.want)
		}
	}
}
