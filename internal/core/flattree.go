// Package core implements the flat-tree convertible data-center network
// architecture (Xia & Ng, HotNets'16): a fat-tree(k) equipment set augmented
// with small port-count converter switches so that the topology can be
// converted at run time between a Clos network, an approximated global
// random graph, approximated per-pod local random graphs, and hybrid
// mixtures of these, without recabling.
//
// The construction follows §2.2-§2.5 of the paper:
//
//   - Each pod pairs edge switch Ej with aggregation switch Aj (r = 1 for
//     fat-tree equipment) and attaches n 4-port and m 6-port converters per
//     pair, arranged as blade matrices on the pod's two sides (Figure 3).
//   - Pod-core cabling follows wiring pattern 1 or 2 (Figure 4): the
//     connectors of edge index j across all pods land on the same group of
//     k/2 core switches, with the blade-B block rotated by p·m (pattern 1)
//     or p·(m+1) (pattern 2) positions in pod p.
//   - Adjacent pods' blade-B converters are paired through bundled side
//     connectors with the shifting pattern of §2.5, and take the Side
//     configuration on even rows and Cross on odd rows when converted.
//
// Conversion is purely a matter of converter configurations: Build assembles
// the physical cabling once, and SetModes re-derives the effective topology
// for any per-pod mode assignment.
package core

import (
	"fmt"

	"flattree/internal/converter"
	"flattree/internal/topo"
)

// Mode is a pod's operation mode.
type Mode uint8

const (
	// ModeClos keeps the pod's original Clos wiring (all converters
	// Default).
	ModeClos Mode = iota
	// ModeGlobalRandom converts the pod for the network-wide approximated
	// random graph: 4-port converters Local, 6-port converters Side/Cross
	// by row parity (Local at zone boundaries).
	ModeGlobalRandom
	// ModeLocalRandom converts the pod into an approximated local random
	// graph: 4-port converters Local (half the servers move to aggregation
	// switches at n = k/4), 6-port converters Default.
	ModeLocalRandom
)

// String returns the mode name.
func (m Mode) String() string {
	switch m {
	case ModeClos:
		return "clos"
	case ModeGlobalRandom:
		return "global-random"
	case ModeLocalRandom:
		return "local-random"
	}
	return fmt.Sprintf("mode(%d)", uint8(m))
}

// Pattern selects the pod-core wiring pattern of §2.3.
type Pattern uint8

const (
	// PatternAuto picks the pattern whose pod-to-pod rotation has the
	// longer repeat period, implementing the paper's stated motivation
	// (§2.3: pattern 1 "tends to repeat" when k/2 is a multiple of m,
	// "reducing the wiring diversity"; pattern 2 is then "more
	// favorable"). See RepeatPeriod; DESIGN.md discusses why this refines
	// the paper's shorthand "pattern 2 when k is a multiple of 4".
	PatternAuto Pattern = iota
	// Pattern1 packs blade-B connectors continuously pod by pod.
	Pattern1
	// Pattern2 advances the blade-B block by one extra core per pod.
	Pattern2
)

// String returns the pattern name.
func (p Pattern) String() string {
	switch p {
	case PatternAuto:
		return "auto"
	case Pattern1:
		return "pattern1"
	case Pattern2:
		return "pattern2"
	}
	return fmt.Sprintf("pattern(%d)", uint8(p))
}

// Params configures a flat-tree build.
type Params struct {
	// K is the fat-tree parameter (even, >= 4).
	K int
	// M and N are the numbers of 6-port and 4-port converters per
	// (edge, aggregation) switch pair; M+N <= K/2. Zero values select the
	// paper's profiled optimum via DefaultMN.
	M, N int
	// Pattern selects the pod-core wiring pattern (default PatternAuto).
	Pattern Pattern
	// Line disables the wrap-around side cabling between the last and
	// first pods. The paper describes neighbor wiring between adjacent
	// pods without fixing the boundary; the default (ring) uses every side
	// connector.
	Line bool
}

// DefaultMN returns the paper's profiled converter counts m = k/8 and
// n = 2k/8, rounded to the nearest integer (§3.2).
func DefaultMN(k int) (m, n int) {
	round := func(num, den int) int { return (2*num + den) / (2 * den) }
	return round(k, 8), round(2*k, 8)
}

// RepeatPeriod returns after how many pods a wiring pattern's rotation
// offset repeats: g/gcd(step, g) with g = k/2 and step m (pattern 1) or
// m+1 (pattern 2). A longer period means more wiring diversity across
// pods; a period of 1 would even leave some cores connected only to
// servers. If m is zero (no 6-port converters), both patterns are
// equivalent and the period is reported as g.
func RepeatPeriod(pat Pattern, k, m int) int {
	g := k / 2
	step := m
	if pat == Pattern2 {
		step = m + 1
	}
	if step%g == 0 {
		if step == 0 {
			return g
		}
		return 1
	}
	return g / gcd(step, g)
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// Blade distinguishes the 4-port (A) and 6-port (B) converter matrices.
type Blade uint8

const (
	// BladeA holds the 4-port converters.
	BladeA Blade = iota
	// BladeB holds the 6-port converters.
	BladeB
)

// String returns "A" or "B".
func (b Blade) String() string {
	if b == BladeA {
		return "A"
	}
	return "B"
}

// ConvInfo describes one converter's position and cabling. The slice index
// of a ConvInfo in FlatTree.Convs is its converter ID.
type ConvInfo struct {
	Pod   int
	Blade Blade
	// Row is the matrix row (i); Col is the pair index j in [0, d), so the
	// pod side is implied (left for j < ceil(d/2)).
	Row, Col int
	// Cabled devices.
	Server, Edge, Agg, Core int32
	// Peer is the converter ID paired through the side connectors, or -1
	// (always -1 for blade A).
	Peer int32
}

// FlatTree is a constructed flat-tree network with its converter plant and
// the effective topology for the current mode assignment.
type FlatTree struct {
	Params Params

	// Equipment node IDs (identical layout to package fattree).
	Cores     []int
	Edges     [][]int
	Aggs      [][]int
	ServerIDs []int

	// Convs describes the converter plant (positions and cabling).
	Convs []ConvInfo

	modes   []Mode
	configs []converter.Config
	net     *topo.Network
}

// Build constructs the flat-tree physical plant for the given parameters
// with every pod in ModeClos.
func Build(p Params) (*FlatTree, error) {
	if p.K < 4 || p.K%2 != 0 {
		return nil, fmt.Errorf("core: k must be even and >= 4, got %d", p.K)
	}
	if p.M == 0 && p.N == 0 {
		p.M, p.N = DefaultMN(p.K)
	}
	if p.Pattern == PatternAuto {
		if RepeatPeriod(Pattern2, p.K, p.M) > RepeatPeriod(Pattern1, p.K, p.M) {
			p.Pattern = Pattern2
		} else {
			p.Pattern = Pattern1
		}
	}
	k := p.K
	d := k / 2    // edge switches (and pairs) per pod
	g := k / 2    // cores per edge-index group (= h/r)
	half := k / 2 // servers per edge switch
	if p.M < 0 || p.N < 0 || p.M+p.N > half {
		return nil, fmt.Errorf("core: need 0 <= m,n and m+n <= k/2, got m=%d n=%d k=%d", p.M, p.N, k)
	}

	ft := &FlatTree{Params: p}
	ft.numberEquipment()

	// Converter plant. IDs are dense: pod-major, pair-major, blade B rows
	// then blade A rows, so that (pod, col) locates a contiguous run.
	serverAt := func(pod, pair, slot int) int32 {
		return int32(ft.ServerIDs[pod*d*half+pair*half+slot])
	}
	offset := func(pod int) int {
		if p.Pattern == Pattern2 {
			return (pod * (p.M + 1)) % g
		}
		return (pod * p.M) % g
	}
	for pod := 0; pod < k; pod++ {
		o := offset(pod)
		for pair := 0; pair < d; pair++ {
			base := pair * g
			for i := 0; i < p.M; i++ {
				ft.Convs = append(ft.Convs, ConvInfo{
					Pod: pod, Blade: BladeB, Row: i, Col: pair,
					Server: serverAt(pod, pair, i),
					Edge:   int32(ft.Edges[pod][pair]),
					Agg:    int32(ft.Aggs[pod][pair]),
					Core:   int32(ft.Cores[base+(o+i)%g]),
					Peer:   -1,
				})
			}
			for i := 0; i < p.N; i++ {
				ft.Convs = append(ft.Convs, ConvInfo{
					Pod: pod, Blade: BladeA, Row: i, Col: pair,
					Server: serverAt(pod, pair, p.M+i),
					Edge:   int32(ft.Edges[pod][pair]),
					Agg:    int32(ft.Aggs[pod][pair]),
					Core:   int32(ft.Cores[base+(o+p.M+i)%g]),
					Peer:   -1,
				})
			}
		}
	}
	ft.pairSideConnectors()

	ft.modes = make([]Mode, k)
	ft.configs = make([]converter.Config, len(ft.Convs))
	if err := ft.rebuild(); err != nil {
		return nil, err
	}
	return ft, nil
}

// numberEquipment allocates node IDs in the same order as package fattree so
// that flat-tree in ModeClos is node-for-node comparable with fat-tree(k).
func (ft *FlatTree) numberEquipment() {
	k := ft.Params.K
	half := k / 2
	id := 0
	ft.Cores = make([]int, half*half)
	for c := range ft.Cores {
		ft.Cores[c] = id
		id++
	}
	ft.Edges = make([][]int, k)
	ft.Aggs = make([][]int, k)
	for p := 0; p < k; p++ {
		ft.Aggs[p] = make([]int, half)
		ft.Edges[p] = make([]int, half)
		for i := 0; i < half; i++ {
			ft.Aggs[p][i] = id
			id++
		}
		for j := 0; j < half; j++ {
			ft.Edges[p][j] = id
			id++
		}
	}
	ft.ServerIDs = make([]int, 0, k*half*half)
	for p := 0; p < k; p++ {
		for j := 0; j < half; j++ {
			for s := 0; s < half; s++ {
				ft.ServerIDs = append(ft.ServerIDs, id)
				id++
			}
		}
	}
}

// convID returns the converter ID at (pod, blade, row, pair-col).
func (ft *FlatTree) convID(pod int, blade Blade, row, col int) int {
	k, m, n := ft.Params.K, ft.Params.M, ft.Params.N
	d := k / 2
	perPair := m + n
	base := pod*d*perPair + col*perPair
	if blade == BladeB {
		return base + row
	}
	return base + m + row
}

// pairSideConnectors wires the bundled side connectors between adjacent
// pods' blade-B matrices with the shifting pattern of §2.5: converter
// <i, j> on the left of pod p+1 pairs with <i, (W-1-j+i) mod W> on the
// right of pod p, where W = floor(d/2) columns per side participate. For
// odd d the middle pair sits on the left with its side connectors unused.
func (ft *FlatTree) pairSideConnectors() {
	k, m := ft.Params.K, ft.Params.M
	d := k / 2
	left := (d + 1) / 2 // pairs 0..left-1 are on the left side
	w := d / 2          // participating columns per side
	if w == 0 || m == 0 {
		return
	}
	numAdj := k // ring
	if ft.Params.Line {
		numAdj = k - 1
	}
	for a := 0; a < numAdj; a++ {
		pr := a           // pod contributing its right blade
		pl := (a + 1) % k // pod contributing its left blade
		for i := 0; i < m; i++ {
			for j := 0; j < w; j++ {
				lc := ft.convID(pl, BladeB, i, j)
				rc := ft.convID(pr, BladeB, i, left+(w-1-j+i)%w)
				ft.Convs[lc].Peer = int32(rc)
				ft.Convs[rc].Peer = int32(lc)
			}
		}
	}
}

// Modes returns a copy of the current per-pod mode assignment.
func (ft *FlatTree) Modes() []Mode { return append([]Mode(nil), ft.modes...) }

// Mode returns pod p's current mode.
func (ft *FlatTree) Mode(p int) Mode { return ft.modes[p] }

// Net returns the effective network for the current mode assignment.
func (ft *FlatTree) Net() *topo.Network { return ft.net }

// Configs returns the current per-converter configurations (indexed by
// converter ID). The caller must not modify the slice.
func (ft *FlatTree) Configs() []converter.Config { return ft.configs }

// SetUniformMode puts every pod in the same mode and rebuilds the effective
// network.
func (ft *FlatTree) SetUniformMode(m Mode) error {
	modes := make([]Mode, ft.Params.K)
	for i := range modes {
		modes[i] = m
	}
	return ft.SetModes(modes)
}

// SetModes assigns one mode per pod (hybrid operation) and rebuilds the
// effective network.
func (ft *FlatTree) SetModes(modes []Mode) error {
	if len(modes) != ft.Params.K {
		return fmt.Errorf("core: got %d modes for %d pods", len(modes), ft.Params.K)
	}
	copy(ft.modes, modes)
	return ft.rebuild()
}

// ConfigFor computes the configuration converter id takes under the given
// per-pod modes. This is the controller's planning primitive: §2.6's
// centralized control plane calls it for every converter when converting
// zones.
func (ft *FlatTree) ConfigFor(id int, modes []Mode) converter.Config {
	ci := &ft.Convs[id]
	mode := modes[ci.Pod]
	if ci.Blade == BladeA {
		if mode == ModeClos {
			return converter.Default
		}
		return converter.Local
	}
	switch mode {
	case ModeClos, ModeLocalRandom:
		// Local-random mode keeps 6-port converters in Default (§2.1,
		// Figure 2d): servers split between edge (via 6-port) and
		// aggregation (via 4-port) switches.
		return converter.Default
	default: // ModeGlobalRandom
		if ci.Peer >= 0 && modes[ft.Convs[ci.Peer].Pod] == ModeGlobalRandom {
			// §2.5: even rows yield peer-wise (E-E', A-A') connections,
			// odd rows edge-aggregation (E-A', A-E') ones. Crossing must
			// be applied on exactly one end of a pair — if both ends
			// swapped their side ports the two swaps would cancel — so
			// the left-blade member of an odd row takes Cross and every
			// other paired converter takes Side.
			left := (ft.Params.K/2 + 1) / 2
			if ci.Row%2 == 1 && ci.Col < left {
				return converter.Cross
			}
			return converter.Side
		}
		// Unpaired (line boundary or odd-d middle column) or the peer pod
		// is in a different zone: fall back to Local, which still
		// diversifies link types without needing the side cables.
		return converter.Local
	}
}

// rebuild recomputes converter configurations and the effective network for
// the current modes.
func (ft *FlatTree) rebuild() error {
	for id := range ft.Convs {
		ft.configs[id] = ft.ConfigFor(id, ft.modes)
	}
	net, err := ft.effectiveNetwork(ft.configs, nil)
	if err != nil {
		return err
	}
	ft.net = net
	return nil
}

// Instantiate materializes the converter plant with the given per-converter
// configurations for splicing.
func (ft *FlatTree) Instantiate(configs []converter.Config) []converter.Converter {
	convs := make([]converter.Converter, len(ft.Convs))
	for id, ci := range ft.Convs {
		c := converter.Converter{ID: id, Ports: 4, Config: configs[id]}
		if ci.Blade == BladeB {
			c.Ports = 6
		}
		for p := range c.Attach {
			c.Attach[p] = converter.NoEndpoint
		}
		c.Attach[converter.PortServer] = converter.Endpoint{Node: ci.Server, Conv: -1}
		c.Attach[converter.PortEdge] = converter.Endpoint{Node: ci.Edge, Conv: -1}
		c.Attach[converter.PortAgg] = converter.Endpoint{Node: ci.Agg, Conv: -1}
		c.Attach[converter.PortCore] = converter.Endpoint{Node: ci.Core, Conv: -1}
		if ci.Blade == BladeB && ci.Peer >= 0 {
			c.Attach[converter.PortSide1] = converter.Endpoint{Node: -1, Conv: ci.Peer, Port: converter.PortSide1}
			c.Attach[converter.PortSide2] = converter.Endpoint{Node: -1, Conv: ci.Peer, Port: converter.PortSide2}
		}
		convs[id] = c
	}
	return convs
}

// effectiveNetwork builds the switch-level network induced by the physical
// plant plus the given converter configurations. A non-nil keep predicate
// filters converter-spliced links (used by TransitionNetwork to model dark
// converters); filtered builds skip validation because they legitimately
// contain detached servers.
func (ft *FlatTree) effectiveNetwork(configs []converter.Config, keep func(a, b int32, viaSide bool) bool) (*topo.Network, error) {
	p := ft.Params
	k := p.K
	d, g, half := k/2, k/2, k/2

	b := topo.NewBuilder(fmt.Sprintf("flattree(k=%d,m=%d,n=%d,%s)", k, p.M, p.N, p.Pattern))
	// Recreate nodes in the exact numbering order of numberEquipment.
	for c := 0; c < half*half; c++ {
		b.AddNode(topo.CoreSwitch, -1, c, k)
	}
	for pod := 0; pod < k; pod++ {
		for i := 0; i < half; i++ {
			b.AddNode(topo.AggSwitch, pod, i, k)
		}
		for j := 0; j < half; j++ {
			b.AddNode(topo.EdgeSwitch, pod, j, k)
		}
	}
	idx := 0
	for pod := 0; pod < k; pod++ {
		for j := 0; j < half; j++ {
			for s := 0; s < half; s++ {
				b.AddNode(topo.Server, pod, idx, 1)
				idx++
			}
		}
	}

	// Untapped Clos cabling. Converter-tapped server slots are [0, m+n);
	// tapped core-group slots are the m+n starting at the pod's rotation
	// offset.
	offset := func(pod int) int {
		if p.Pattern == Pattern2 {
			return (pod * (p.M + 1)) % g
		}
		return (pod * p.M) % g
	}
	for pod := 0; pod < k; pod++ {
		o := offset(pod)
		for pair := 0; pair < d; pair++ {
			for s := p.M + p.N; s < half; s++ {
				sv := ft.ServerIDs[pod*d*half+pair*half+s]
				b.AddLink(sv, ft.Edges[pod][pair], topo.TagClos)
			}
			for t := p.M + p.N; t < g; t++ {
				core := ft.Cores[pair*g+(o+t)%g]
				b.AddLink(ft.Aggs[pod][pair], core, topo.TagClos)
			}
		}
		// The edge-aggregation mesh is never tapped.
		for j := 0; j < half; j++ {
			for i := 0; i < half; i++ {
				b.AddLink(ft.Edges[pod][j], ft.Aggs[pod][i], topo.TagClos)
			}
		}
	}

	// Converter-spliced links.
	links, err := converter.Splice(ft.Instantiate(configs))
	if err != nil {
		return nil, err
	}
	for _, l := range links {
		if keep != nil && !keep(l.A, l.B, l.ViaSide) {
			continue
		}
		tag := topo.TagConverter
		if l.ViaSide {
			tag = topo.TagSide
		} else if ft.isClosShape(int(l.A), int(l.B)) {
			tag = topo.TagClos
		}
		b.AddLink(int(l.A), int(l.B), tag)
	}
	nw := b.Build()
	if keep == nil {
		if err := nw.Validate(); err != nil {
			return nil, fmt.Errorf("core: effective network invalid: %w", err)
		}
	}
	return nw, nil
}

// isClosShape reports whether a spliced link reproduces an original Clos
// link type: agg-core or edge-server (i.e. the converter is in Default).
func (ft *FlatTree) isClosShape(a, bb int) bool {
	ka := ft.kindOf(a)
	kb := ft.kindOf(bb)
	if ka > kb {
		ka, kb = kb, ka
	}
	// (server, edge) or (agg, core) in the order server<edge<agg<core.
	return (ka == 0 && kb == 1) || (ka == 2 && kb == 3)
}

// kindOf classifies a node ID by the numbering layout: 0 server, 1 edge,
// 2 agg, 3 core.
func (ft *FlatTree) kindOf(id int) int {
	k := ft.Params.K
	half := k / 2
	cores := half * half
	podSw := k * k // k pods * (half aggs + half edges)
	switch {
	case id < cores:
		return 3
	case id < cores+podSw:
		if (id-cores)%k < half {
			return 2 // aggs come first within a pod
		}
		return 1
	default:
		return 0
	}
}

// NumServers returns k^3/4.
func (ft *FlatTree) NumServers() int { return len(ft.ServerIDs) }

// NumPods returns k.
func (ft *FlatTree) NumPods() int { return ft.Params.K }
