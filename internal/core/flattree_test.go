package core

import (
	"fmt"
	"sort"
	"testing"

	"flattree/internal/converter"
	"flattree/internal/fattree"
	"flattree/internal/topo"
)

func build(t *testing.T, k int) *FlatTree {
	t.Helper()
	ft, err := Build(Params{K: k})
	if err != nil {
		t.Fatalf("Build(k=%d): %v", k, err)
	}
	return ft
}

func linkSet(nw *topo.Network) map[[2]int]int {
	s := make(map[[2]int]int)
	for _, l := range nw.Links {
		a, b := l.A, l.B
		if a > b {
			a, b = b, a
		}
		s[[2]int{a, b}]++
	}
	return s
}

// TestClosModeEqualsFatTree verifies the headline convertibility invariant:
// with all converters in Default, flat-tree's effective network is exactly
// the fat-tree built from the same equipment — same node numbering, same
// link multiset.
func TestClosModeEqualsFatTree(t *testing.T) {
	for _, k := range []int{4, 6, 8, 10, 12, 16} {
		ft := build(t, k)
		fat, err := fattree.New(k)
		if err != nil {
			t.Fatal(err)
		}
		got, want := linkSet(ft.Net()), linkSet(fat.Net)
		if len(got) != len(want) {
			t.Fatalf("k=%d: %d distinct links, fat-tree has %d", k, len(got), len(want))
		}
		for l, c := range want {
			if got[l] != c {
				t.Fatalf("k=%d: link %v multiplicity %d, want %d", k, l, got[l], c)
			}
		}
	}
}

func TestDefaultMN(t *testing.T) {
	cases := []struct{ k, m, n int }{
		{4, 1, 1}, {6, 1, 2}, {8, 1, 2}, {10, 1, 3}, {12, 2, 3},
		{16, 2, 4}, {24, 3, 6}, {32, 4, 8},
	}
	for _, c := range cases {
		m, n := DefaultMN(c.k)
		if m != c.m || n != c.n {
			t.Errorf("DefaultMN(%d) = (%d,%d), want (%d,%d)", c.k, m, n, c.m, c.n)
		}
		if m+n > c.k/2 {
			t.Errorf("DefaultMN(%d): m+n=%d exceeds k/2", c.k, m+n)
		}
	}
}

// TestModesValidNetworks checks every uniform mode yields a valid connected
// network with correct equipment counts for a range of k, including odd-d
// cases (k=6,10) where the middle blade column has unused side connectors.
func TestModesValidNetworks(t *testing.T) {
	for _, k := range []int{4, 6, 8, 10, 12, 14, 16} {
		ft := build(t, k)
		for _, mode := range []Mode{ModeClos, ModeGlobalRandom, ModeLocalRandom} {
			if err := ft.SetUniformMode(mode); err != nil {
				t.Fatalf("k=%d mode=%s: %v", k, mode, err)
			}
			nw := ft.Net()
			if err := nw.Validate(); err != nil {
				t.Fatalf("k=%d mode=%s: %v", k, mode, err)
			}
			st := nw.Stats()
			if st.Servers != k*k*k/4 {
				t.Fatalf("k=%d mode=%s: %d servers, want %d", k, mode, st.Servers, k*k*k/4)
			}
			if st.CoreSwitches != k*k/4 || st.EdgeSwitches != k*k/2 || st.AggSwitches != k*k/2 {
				t.Fatalf("k=%d mode=%s: switch counts %+v wrong", k, mode, st)
			}
			// Same equipment: total link count must equal fat-tree's
			// (every physical cable maps to at most one effective link and
			// in uniform modes every splice chain terminates on devices,
			// except unpaired side stubs which carry no device cable).
			wantLinks := k*k*k/4 + k*k*k/4 + k*k*k/4 // host + edge-agg + agg-core equivalents
			if st.Links != wantLinks {
				t.Fatalf("k=%d mode=%s: %d links, want %d", k, mode, st.Links, wantLinks)
			}
		}
	}
}

// serverCountPerCore returns how many servers each core switch hosts.
func serverCountPerCore(ft *FlatTree) []int {
	nw := ft.Net()
	counts := make([]int, len(ft.Cores))
	for i, c := range ft.Cores {
		for range nw.HostedServers(c) {
			counts[i]++
		}
	}
	return counts
}

// TestProperty1ServerUniformity checks §2.3 Property 1: in global-random
// mode, servers are distributed uniformly across the core switches. For
// pattern 1 the rotation tiles the core group exactly, so the distribution
// is perfectly uniform (2m servers per core); pattern 2 may deviate by a
// bounded wrap-around remainder.
func TestProperty1ServerUniformity(t *testing.T) {
	for _, k := range []int{8, 12, 16, 24} {
		for _, pat := range []Pattern{Pattern1, Pattern2} {
			m, n := DefaultMN(k)
			ft, err := Build(Params{K: k, M: m, N: n, Pattern: pat})
			if err != nil {
				t.Fatal(err)
			}
			if err := ft.SetUniformMode(ModeGlobalRandom); err != nil {
				t.Fatal(err)
			}
			counts := serverCountPerCore(ft)
			min, max := counts[0], counts[0]
			sum := 0
			for _, c := range counts {
				if c < min {
					min = c
				}
				if c > max {
					max = c
				}
				sum += c
			}
			if sum != k*k*k/4-serversNotOnCores(ft) {
				t.Fatalf("k=%d %s: core-hosted servers %d inconsistent", k, pat, sum)
			}
			if pat == Pattern1 {
				// §2.3 Property 1 holds exactly: pattern 1's blocks tile
				// each core group, giving every core exactly 2m servers.
				if min != max || min != 2*m {
					t.Errorf("k=%d pattern1: core server counts [%d,%d], want exactly %d", k, min, max, 2*m)
				}
			} else {
				// Pattern 2's rotation is only as uniform as its offsets;
				// check the wiring exactly matches the specified offsets.
				g := k / 2
				want := make([]int, len(counts))
				for pod := 0; pod < k; pod++ {
					o := (pod * (m + 1)) % g
					for pair := 0; pair < k/2; pair++ {
						for i := 0; i < m; i++ {
							want[pair*g+(o+i)%g]++
						}
					}
				}
				for c := range counts {
					if counts[c] != want[c] {
						t.Fatalf("k=%d pattern2: core %d hosts %d servers, spec says %d", k, c, counts[c], want[c])
					}
				}
			}
		}
	}
}

func serversNotOnCores(ft *FlatTree) int {
	nw := ft.Net()
	n := 0
	for _, sv := range nw.Servers() {
		if nw.Nodes[nw.HostSwitch(sv)].Kind != topo.CoreSwitch {
			n++
		}
	}
	return n
}

// TestProperty2LinkTypeUniformity checks §2.3 Property 2: each core switch
// has equal numbers of links of the same type (core-server, core-edge,
// core-agg) in global-random mode under pattern 1 with the paper's default
// m, n (where gcd(m, k/2) divides n and k/2-m-n).
func TestProperty2LinkTypeUniformity(t *testing.T) {
	for _, k := range []int{8, 16, 24, 32} {
		m, n := DefaultMN(k)
		ft, err := Build(Params{K: k, M: m, N: n, Pattern: Pattern1})
		if err != nil {
			t.Fatal(err)
		}
		if err := ft.SetUniformMode(ModeGlobalRandom); err != nil {
			t.Fatal(err)
		}
		nw := ft.Net()
		type counts struct{ server, edge, agg int }
		per := make(map[int]*counts)
		for _, c := range ft.Cores {
			per[c] = &counts{}
		}
		for _, l := range nw.Links {
			var core, other int
			if nw.Nodes[l.A].Kind == topo.CoreSwitch {
				core, other = l.A, l.B
			} else if nw.Nodes[l.B].Kind == topo.CoreSwitch {
				core, other = l.B, l.A
			} else {
				continue
			}
			switch nw.Nodes[other].Kind {
			case topo.Server:
				per[core].server++
			case topo.EdgeSwitch:
				per[core].edge++
			case topo.AggSwitch:
				per[core].agg++
			case topo.CoreSwitch:
				t.Fatalf("k=%d: unexpected core-core link %d-%d", k, l.A, l.B)
			}
		}
		var ref *counts
		for _, c := range ft.Cores {
			if ref == nil {
				ref = per[c]
				continue
			}
			if *per[c] != *ref {
				t.Fatalf("k=%d: core link-type counts differ: %+v vs %+v", k, *per[c], *ref)
			}
		}
		if ref.server != 2*m || ref.edge != 2*n || ref.agg != k-2*m-2*n {
			t.Errorf("k=%d: per-core counts %+v, want server=%d edge=%d agg=%d",
				k, *ref, 2*m, 2*n, k-2*m-2*n)
		}
	}
}

// TestGlobalRandomUsesSideLinks verifies the side connectors materialize as
// inter-pod links in global-random mode, with the §2.5 mix of peer-wise
// (E-E', A-A') and crossed (E-A') connections. Crossed links require an odd
// converter row, i.e. m >= 2, so use k=16 (m=2).
func TestGlobalRandomUsesSideLinks(t *testing.T) {
	ft := build(t, 16)
	if err := ft.SetUniformMode(ModeGlobalRandom); err != nil {
		t.Fatal(err)
	}
	nw := ft.Net()
	var peerWise, crossed int
	for _, l := range nw.Links {
		if l.Tag != topo.TagSide {
			continue
		}
		ka, kb := nw.Nodes[l.A].Kind, nw.Nodes[l.B].Kind
		pa, pb := nw.Nodes[l.A].Pod, nw.Nodes[l.B].Pod
		if pa == pb {
			t.Fatalf("side link %d-%d within pod %d", l.A, l.B, pa)
		}
		if !adjacentPods(pa, pb, ft.Params.K) {
			t.Fatalf("side link between non-adjacent pods %d and %d", pa, pb)
		}
		if ka == kb {
			peerWise++
		} else {
			crossed++
		}
	}
	if peerWise == 0 || crossed == 0 {
		t.Fatalf("want both peer-wise and crossed side links, got %d peer-wise, %d crossed", peerWise, crossed)
	}
}

func adjacentPods(a, b, k int) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d == 1 || d == k-1
}

// TestLocalRandomServerSplit verifies Figure 2d's property: in local-random
// mode with n = k/4, half of each pod's servers sit on edge switches and
// half on aggregation switches, and no server sits on a core.
func TestLocalRandomServerSplit(t *testing.T) {
	for _, k := range []int{8, 16} {
		ft := build(t, k)
		if err := ft.SetUniformMode(ModeLocalRandom); err != nil {
			t.Fatal(err)
		}
		nw := ft.Net()
		var onEdge, onAgg, onCore int
		for _, sv := range nw.Servers() {
			switch nw.Nodes[nw.HostSwitch(sv)].Kind {
			case topo.EdgeSwitch:
				onEdge++
			case topo.AggSwitch:
				onAgg++
			case topo.CoreSwitch:
				onCore++
			}
		}
		total := k * k * k / 4
		if onCore != 0 {
			t.Errorf("k=%d: %d servers on cores in local mode", k, onCore)
		}
		if onEdge != total/2 || onAgg != total/2 {
			t.Errorf("k=%d: server split edge=%d agg=%d, want %d/%d", k, onEdge, onAgg, total/2, total/2)
		}
	}
}

// TestHybridZoneModes verifies per-pod mode assignment: pods in a Clos zone
// keep Clos wiring while pods in a global-random zone convert, and boundary
// 6-port converters fall back to Local instead of dangling.
func TestHybridZoneModes(t *testing.T) {
	k := 8
	ft := build(t, k)
	modes := make([]Mode, k)
	for p := 0; p < k/2; p++ {
		modes[p] = ModeGlobalRandom
	}
	for p := k / 2; p < k; p++ {
		modes[p] = ModeClos
	}
	if err := ft.SetModes(modes); err != nil {
		t.Fatal(err)
	}
	nw := ft.Net()
	if err := nw.Validate(); err != nil {
		t.Fatal(err)
	}
	// No Clos-zone pod may host servers anywhere but its edge switches.
	for _, sv := range nw.Servers() {
		host := nw.HostSwitch(sv)
		pod := nw.Nodes[sv].Pod
		if modes[pod] == ModeClos && nw.Nodes[host].Kind != topo.EdgeSwitch {
			t.Fatalf("server %d in Clos pod %d hosted on %s", sv, pod, nw.Nodes[host].Kind)
		}
	}
	// Boundary converters (peer pod in Clos zone) must be Local, interior
	// global-zone 6-ports must be Side/Cross.
	for id, ci := range ft.Convs {
		if ci.Blade != BladeB || modes[ci.Pod] != ModeGlobalRandom {
			continue
		}
		cfg := ft.Configs()[id]
		peerGlobal := ci.Peer >= 0 && modes[ft.Convs[ci.Peer].Pod] == ModeGlobalRandom
		if peerGlobal && cfg != converter.Side && cfg != converter.Cross {
			t.Fatalf("conv %d (pod %d): config %s, want side/cross", id, ci.Pod, cfg)
		}
		if !peerGlobal && cfg != converter.Local {
			t.Fatalf("boundary conv %d (pod %d): config %s, want local", id, ci.Pod, cfg)
		}
	}
}

// TestSidePairingIsInvolution checks the §2.5 shifting pattern: pairing is
// symmetric, row-preserving, and within a row of the right blade each
// column is used exactly once.
func TestSidePairingIsInvolution(t *testing.T) {
	for _, k := range []int{4, 6, 8, 10, 16} {
		ft := build(t, k)
		seen := make(map[string]int)
		for id, ci := range ft.Convs {
			if ci.Blade != BladeB || ci.Peer < 0 {
				continue
			}
			peer := ft.Convs[ci.Peer]
			if int(peer.Peer) != id {
				t.Fatalf("k=%d: pairing not symmetric at conv %d", k, id)
			}
			if peer.Row != ci.Row {
				t.Fatalf("k=%d: pairing changes row %d -> %d", k, ci.Row, peer.Row)
			}
			if !adjacentPods(ci.Pod, peer.Pod, k) {
				t.Fatalf("k=%d: pairing between non-adjacent pods %d,%d", k, ci.Pod, peer.Pod)
			}
			key := fmt.Sprintf("%d/%d/%d", ci.Pod, ci.Row, ci.Col)
			seen[key]++
			if seen[key] > 1 {
				t.Fatalf("k=%d: converter %s paired twice", k, key)
			}
		}
	}
}

// TestLinePlant verifies the Line option: pod 0's left and pod k-1's right
// blade-B converters stay unpaired and global-random mode still produces a
// valid network.
func TestLinePlant(t *testing.T) {
	k := 8
	ft, err := Build(Params{K: k, Line: true})
	if err != nil {
		t.Fatal(err)
	}
	left := (k/2 + 1) / 2
	for _, ci := range ft.Convs {
		if ci.Blade != BladeB {
			continue
		}
		onLeft := ci.Col < left
		if ci.Pod == 0 && onLeft && ci.Peer >= 0 {
			t.Fatalf("line: pod 0 left conv paired")
		}
		if ci.Pod == k-1 && !onLeft && ci.Peer >= 0 {
			t.Fatalf("line: pod k-1 right conv paired")
		}
	}
	if err := ft.SetUniformMode(ModeGlobalRandom); err != nil {
		t.Fatal(err)
	}
	if err := ft.Net().Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestConfigsDeterministic: rebuilding with the same modes yields the same
// link multiset (construction is fully deterministic; there is no RNG).
func TestConfigsDeterministic(t *testing.T) {
	a := build(t, 10)
	b := build(t, 10)
	if err := a.SetUniformMode(ModeGlobalRandom); err != nil {
		t.Fatal(err)
	}
	if err := b.SetUniformMode(ModeGlobalRandom); err != nil {
		t.Fatal(err)
	}
	la, lb := linkSet(a.Net()), linkSet(b.Net())
	if len(la) != len(lb) {
		t.Fatalf("link sets differ in size: %d vs %d", len(la), len(lb))
	}
	keys := make([][2]int, 0, len(la))
	for k := range la {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	for _, k := range keys {
		if la[k] != lb[k] {
			t.Fatalf("link %v multiplicity %d vs %d", k, la[k], lb[k])
		}
	}
}

func TestBuildRejectsBadParams(t *testing.T) {
	for _, p := range []Params{
		{K: 3}, {K: 0}, {K: 5}, {K: 8, M: 3, N: 3}, {K: 8, M: -1, N: 2},
	} {
		if _, err := Build(p); err == nil {
			t.Errorf("Build(%+v) succeeded, want error", p)
		}
	}
}
