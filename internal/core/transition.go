package core

import (
	"fmt"

	"flattree/internal/topo"
)

// TransitionNetwork builds the effective network at the worst moment of a
// conversion step: pods listed in converting have their converters mid-flip
// and therefore dark — none of their tapped cables carry traffic — while
// every other pod still runs its current configuration. §2.7 notes that
// converter switching (e.g. optical) takes real time; during that window
// the tapped links are simply absent, and an operator staging a conversion
// wants to know the fabric stays connected and how much capacity survives.
//
// Untapped Clos cabling (the edge-agg mesh, untapped server and agg-core
// links) is unaffected by conversions and always present.
func (ft *FlatTree) TransitionNetwork(converting []int) (*topo.Network, error) {
	dark := make(map[int]bool, len(converting))
	for _, p := range converting {
		if p < 0 || p >= ft.Params.K {
			return nil, fmt.Errorf("core: converting pod %d out of range", p)
		}
		dark[p] = true
	}
	// Dark converters are modelled by rebuilding with the current configs
	// but dropping every effective link produced by a converter in a dark
	// pod. Splicing chains that cross pods (side links) are dark if either
	// end is converting; membership is decided by the devices the link
	// touches, which is exact because every converter-produced link
	// involves at least one device of its own pod.
	return ft.effectiveNetwork(ft.configs, func(a, b int32, viaSide bool) bool {
		return !dark[ft.podOfNode(int(a))] && !dark[ft.podOfNode(int(b))]
	})
}

// podOfNode returns the home pod of any equipment node (-1 for cores).
func (ft *FlatTree) podOfNode(id int) int {
	k := ft.Params.K
	half := k / 2
	cores := half * half
	podSw := k * k
	switch {
	case id < cores:
		return -1
	case id < cores+podSw:
		return (id - cores) / k
	default:
		return ft.serverPod(id)
	}
}

func (ft *FlatTree) serverPod(id int) int {
	k := ft.Params.K
	half := k / 2
	cores := half * half
	podSw := k * k
	idx := id - cores - podSw
	return idx / (half * half)
}

// TransitionReport quantifies one conversion step's impact.
type TransitionReport struct {
	// Connected reports whether all servers that still have live access
	// links can reach each other.
	Connected bool
	// DetachedServers counts servers whose access link runs through a
	// dark converter (they are offline for the switching window).
	DetachedServers int
	// SurvivingLinks is the switch-switch link count during the window.
	SurvivingLinks int
}

// AnalyzeTransition builds the transition network for the converting pods
// and reports its health. Servers whose access cable is dark are excluded
// from the connectivity requirement (they are down, not partitioned).
func (ft *FlatTree) AnalyzeTransition(converting []int) (TransitionReport, error) {
	nw, err := ft.TransitionNetwork(converting)
	if err != nil {
		return TransitionReport{}, err
	}
	var rep TransitionReport
	for _, l := range nw.Links {
		if nw.Nodes[l.A].Kind.IsSwitch() && nw.Nodes[l.B].Kind.IsSwitch() {
			rep.SurvivingLinks++
		}
	}
	g := nw.Graph()
	// Reachability over live servers.
	var first = -1
	live := 0
	for _, sv := range nw.Servers() {
		if g.Degree(sv) == 0 {
			rep.DetachedServers++
			continue
		}
		live++
		if first < 0 {
			first = sv
		}
	}
	rep.Connected = true
	if first >= 0 {
		dist := g.BFS(first)
		for _, sv := range nw.Servers() {
			if g.Degree(sv) > 0 && dist[sv] < 0 {
				rep.Connected = false
				break
			}
		}
	}
	return rep, nil
}
