package core

import (
	"testing"
)

func TestTransitionSinglePod(t *testing.T) {
	ft := build(t, 8)
	m, n := ft.Params.M, ft.Params.N
	rep, err := ft.AnalyzeTransition([]int{2})
	if err != nil {
		t.Fatal(err)
	}
	// Every tapped server of pod 2 is offline during the window: (m+n)
	// per pair, d = k/2 pairs.
	wantDetached := (m + n) * 4
	if rep.DetachedServers != wantDetached {
		t.Errorf("detached = %d, want %d", rep.DetachedServers, wantDetached)
	}
	if !rep.Connected {
		t.Error("single-pod conversion must not partition the fabric")
	}
}

// TestTransitionAllPodsPartitions documents the finding that motivates
// staged conversion: at the default (m, n) = (1, 2) for k = 8 each switch
// pair keeps a single untapped core uplink, whose rotation offset splits
// the pods into repeat-period residue classes — converting every pod at
// once partitions the fabric into period-many islands.
func TestTransitionAllPodsPartitions(t *testing.T) {
	ft := build(t, 8)
	all := make([]int, 8)
	for i := range all {
		all[i] = i
	}
	rep, err := ft.AnalyzeTransition(all)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Connected {
		t.Error("all-at-once conversion at k=8 should partition the fabric")
	}
	m, n := ft.Params.M, ft.Params.N
	wantDetached := (m + n) * 4 * 8
	if rep.DetachedServers != wantDetached {
		t.Errorf("detached = %d, want %d", rep.DetachedServers, wantDetached)
	}
	// Surviving switch links: the edge-agg mesh ((k/2)^2 per pod) plus the
	// untapped agg-core links (k/2-m-n per pair).
	wantLinks := 8*16 + 8*4*(4-m-n)
	if rep.SurvivingLinks != wantLinks {
		t.Errorf("surviving links = %d, want %d", rep.SurvivingLinks, wantLinks)
	}
	// Small batches avoid the partition: each pod alone keeps the fabric
	// connected (TestTransitionSinglePod), and so does each half.
	for _, batch := range [][]int{{0, 1, 2, 3}, {4, 5, 6, 7}} {
		rep, err := ft.AnalyzeTransition(batch)
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Connected {
			t.Errorf("half-fabric batch %v should stay connected", batch)
		}
	}
}

// TestTransitionFullTap: with m+n = k/2 every agg-core cable and every
// server is tapped, so a converting pod goes entirely dark: all its servers
// detach and the remaining pods stay connected among themselves.
func TestTransitionFullTap(t *testing.T) {
	ft, err := Build(Params{K: 8, M: 2, N: 2})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := ft.AnalyzeTransition([]int{0})
	if err != nil {
		t.Fatal(err)
	}
	if rep.DetachedServers != 16 {
		t.Errorf("detached = %d, want all 16 of pod 0", rep.DetachedServers)
	}
	if !rep.Connected {
		t.Error("remaining pods should stay connected")
	}
	// All pods at once: every server is down; connectivity is then
	// vacuous, and the report must say so via the detached count.
	all := []int{0, 1, 2, 3, 4, 5, 6, 7}
	repAll, err := ft.AnalyzeTransition(all)
	if err != nil {
		t.Fatal(err)
	}
	if repAll.DetachedServers != 128 {
		t.Errorf("detached = %d, want 128", repAll.DetachedServers)
	}
}

func TestTransitionErrors(t *testing.T) {
	ft := build(t, 4)
	if _, err := ft.AnalyzeTransition([]int{9}); err == nil {
		t.Error("bad pod accepted")
	}
}

func TestTransitionNoPods(t *testing.T) {
	ft := build(t, 6)
	nw, err := ft.TransitionNetwork(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(nw.Links) != len(ft.Net().Links) {
		t.Errorf("empty transition changed links: %d vs %d", len(nw.Links), len(ft.Net().Links))
	}
}
