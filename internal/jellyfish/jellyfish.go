// Package jellyfish builds the random-graph baseline of the flat-tree paper
// (Singla et al., "Jellyfish: Networking Data Centers Randomly", NSDI'12)
// using exactly the same equipment as a fat-tree(k): 5k^2/4 switches with k
// ports each and k^3/4 servers. Servers are distributed uniformly across the
// switches and all remaining ports are wired as a uniform random graph.
package jellyfish

import (
	"fmt"

	"flattree/internal/graph"
	"flattree/internal/topo"
)

// Jellyfish is a constructed random-graph network.
type Jellyfish struct {
	K         int
	Net       *topo.Network
	Switches  []int // node IDs of all switches
	ServerIDs []int // node IDs of servers, by global server index
}

// New constructs a Jellyfish network with fat-tree(k) equipment. The seed
// fixes both the server spread and the random wiring. Switches keep the
// layer labels of the fat-tree boxes they repurpose (the labels carry no
// structural meaning here: all switches are equal in a random graph), and
// carry no pod assignment. Servers keep their fat-tree home-pod *label*
// (index / (k^2/4)) so that the paper's intra-pod comparisons can address
// "the same servers" across topologies.
func New(k int, seed uint64) (*Jellyfish, error) {
	if k < 4 || k%2 != 0 {
		return nil, fmt.Errorf("jellyfish: k must be even and >= 4, got %d", k)
	}
	half := k / 2
	numSwitches := half*half + k*k // (k/2)^2 cores + k pods * k switches
	numServers := k * k * k / 4
	rng := graph.NewRNG(seed)

	b := topo.NewBuilder(fmt.Sprintf("jellyfish(k=%d,seed=%d)", k, seed))
	j := &Jellyfish{K: k}

	j.Switches = make([]int, 0, numSwitches)
	for c := 0; c < half*half; c++ {
		j.Switches = append(j.Switches, b.AddNode(topo.CoreSwitch, -1, c, k))
	}
	for p := 0; p < k; p++ {
		for i := 0; i < half; i++ {
			j.Switches = append(j.Switches, b.AddNode(topo.AggSwitch, -1, i, k))
		}
		for e := 0; e < half; e++ {
			j.Switches = append(j.Switches, b.AddNode(topo.EdgeSwitch, -1, e, k))
		}
	}

	// Spread servers uniformly: every switch gets floor(N/S), and a random
	// subset of switches gets one extra.
	base := numServers / numSwitches
	extra := numServers % numSwitches
	perSwitch := make([]int, numSwitches)
	for i := range perSwitch {
		perSwitch[i] = base
	}
	for _, i := range rng.Perm(numSwitches)[:extra] {
		perSwitch[i]++
	}

	podSize := k * k / 4
	j.ServerIDs = make([]int, 0, numServers)
	for si, sw := range j.Switches {
		for t := 0; t < perSwitch[si]; t++ {
			idx := len(j.ServerIDs)
			sv := b.AddNode(topo.Server, idx/podSize, idx, 1)
			j.ServerIDs = append(j.ServerIDs, sv)
			b.AddLink(sv, sw, topo.TagClos)
		}
	}

	// Random graph over the remaining ports.
	degrees := make([]int, numSwitches)
	for si := range j.Switches {
		degrees[si] = k - perSwitch[si]
	}
	rg, err := graph.BuildConnected(degrees, rng)
	if err != nil {
		return nil, fmt.Errorf("jellyfish: %w", err)
	}
	for _, e := range rg.Edges() {
		b.AddLink(j.Switches[e.A], j.Switches[e.B], topo.TagRandom)
	}

	j.Net = b.Build()
	return j, nil
}
