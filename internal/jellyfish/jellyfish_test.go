package jellyfish

import (
	"testing"

	"flattree/internal/topo"
)

func TestEquipmentMatchesFatTree(t *testing.T) {
	for _, k := range []int{4, 6, 8, 16} {
		j, err := New(k, 1)
		if err != nil {
			t.Fatal(err)
		}
		st := j.Net.Stats()
		if st.Servers != k*k*k/4 {
			t.Errorf("k=%d: %d servers, want %d", k, st.Servers, k*k*k/4)
		}
		total := st.CoreSwitches + st.AggSwitches + st.EdgeSwitches
		if total != 5*k*k/4 {
			t.Errorf("k=%d: %d switches, want %d", k, total, 5*k*k/4)
		}
		if err := j.Net.Validate(); err != nil {
			t.Errorf("k=%d: %v", k, err)
		}
		// Port budgets: no switch above k ports; at most a handful of
		// unused ports network-wide (random construction leftovers).
		wasted := 0
		for _, sw := range j.Switches {
			used := j.Net.PortsUsed(sw)
			if used > k {
				t.Fatalf("k=%d: switch %d uses %d ports", k, sw, used)
			}
			wasted += k - used
		}
		if wasted > 4 {
			t.Errorf("k=%d: %d unused switch ports", k, wasted)
		}
	}
}

func TestServerSpreadUniform(t *testing.T) {
	k := 8
	j, err := New(k, 7)
	if err != nil {
		t.Fatal(err)
	}
	min, max := 1<<30, 0
	for _, sw := range j.Switches {
		c := len(j.Net.HostedServers(sw))
		if c < min {
			min = c
		}
		if c > max {
			max = c
		}
	}
	if max-min > 1 {
		t.Errorf("server spread %d..%d, want max-min <= 1", min, max)
	}
}

func TestDeterministicBySeed(t *testing.T) {
	a, err := New(6, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(6, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Net.Links) != len(b.Net.Links) {
		t.Fatal("same seed produced different link counts")
	}
	for i := range a.Net.Links {
		if a.Net.Links[i] != b.Net.Links[i] {
			t.Fatalf("same seed diverged at link %d", i)
		}
	}
	c, err := New(6, 43)
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	for i := range a.Net.Links {
		if i < len(c.Net.Links) && a.Net.Links[i] == c.Net.Links[i] {
			same++
		}
	}
	if same == len(a.Net.Links) {
		t.Error("different seeds produced identical networks")
	}
}

func TestRandomLinksTagged(t *testing.T) {
	j, err := New(6, 3)
	if err != nil {
		t.Fatal(err)
	}
	st := j.Net.Stats()
	if st.LinksByTag[topo.TagRandom] != st.SwitchSwitchLinks {
		t.Errorf("all switch-switch links should be random-tagged: %v", st.LinksByTag)
	}
	if st.ServerLinks != 6*6*6/4 {
		t.Errorf("server links = %d", st.ServerLinks)
	}
}

func TestRejectsBadK(t *testing.T) {
	for _, k := range []int{0, 3, 5} {
		if _, err := New(k, 1); err == nil {
			t.Errorf("New(%d) should fail", k)
		}
	}
}
