// Package routing implements the route computation schemes of §2.6 of the
// flat-tree paper: ECMP-style all-shortest-path sets for Clos operation and
// k-shortest-paths (Yen) for the approximated random-graph modes. Because
// flat-tree maintains structure, routes are computed centrally from the
// known topology — "instead of learning routes, it is possible to have
// prior knowledge of the shortest paths and program the routing decisions
// via SDN" — which is exactly what these types provide to the control
// plane and the flow-level simulator.
package routing

import (
	"fmt"

	"flattree/internal/graph"
	"flattree/internal/topo"
)

// Scheme yields candidate paths between switch endpoints. Paths are node ID
// sequences over the network's switch-level graph, inclusive of endpoints.
type Scheme interface {
	// Paths returns candidate paths from src to dst (network switch IDs).
	// The result is never empty for connected pairs; implementations
	// return an error for disconnected or invalid pairs.
	Paths(src, dst int) ([]graph.Path, error)
	// Name identifies the scheme in tables and logs.
	Name() string
}

// switchGraph extracts the switch-only graph of a network plus the
// mappings between network node IDs and compact graph indices.
type switchGraph struct {
	g     *graph.Graph
	toIdx []int32 // network node -> graph index (-1 for servers)
	toNet []int   // graph index -> network node
}

func newSwitchGraph(nw *topo.Network) *switchGraph {
	sw := nw.Switches()
	sg := &switchGraph{g: graph.New(len(sw)), toIdx: make([]int32, nw.N()), toNet: sw}
	for i := range sg.toIdx {
		sg.toIdx[i] = -1
	}
	for i, s := range sw {
		sg.toIdx[s] = int32(i)
	}
	for _, l := range nw.Links {
		if nw.Nodes[l.A].Kind.IsSwitch() && nw.Nodes[l.B].Kind.IsSwitch() {
			sg.g.AddEdge(int(sg.toIdx[l.A]), int(sg.toIdx[l.B]))
		}
	}
	return sg
}

func (sg *switchGraph) resolve(v int) (int, error) {
	if v < 0 || v >= len(sg.toIdx) || sg.toIdx[v] < 0 {
		return 0, fmt.Errorf("routing: node %d is not a switch", v)
	}
	return int(sg.toIdx[v]), nil
}

// translate maps a graph-index path back to network node IDs.
func (sg *switchGraph) translate(p graph.Path) graph.Path {
	nodes := make([]int32, len(p.Nodes))
	for i, v := range p.Nodes {
		nodes[i] = int32(sg.toNet[v])
	}
	return graph.Path{Nodes: nodes, Cost: p.Cost}
}

// ECMP enumerates all shortest paths between switches, the path set ECMP
// hashing spreads flows over in a Clos fabric. Enumeration is capped to
// avoid combinatorial blowup on very symmetric fabrics.
type ECMP struct {
	nw       *topo.Network
	sg       *switchGraph
	maxPaths int
}

// NewECMP builds an ECMP scheme. maxPaths caps the enumerated path set per
// pair (0 means 64).
func NewECMP(nw *topo.Network, maxPaths int) *ECMP {
	if maxPaths <= 0 {
		maxPaths = 64
	}
	return &ECMP{nw: nw, sg: newSwitchGraph(nw), maxPaths: maxPaths}
}

// Name implements Scheme.
func (e *ECMP) Name() string { return "ecmp" }

// Paths enumerates equal-cost shortest paths src->dst up to the cap.
func (e *ECMP) Paths(src, dst int) ([]graph.Path, error) {
	s, err := e.sg.resolve(src)
	if err != nil {
		return nil, err
	}
	d, err := e.sg.resolve(dst)
	if err != nil {
		return nil, err
	}
	if s == d {
		return []graph.Path{{Nodes: []int32{int32(src)}}}, nil
	}
	// BFS from the destination: dist[v] is v's hop count to d; shortest
	// paths step from v to any neighbor one hop closer.
	dist := e.sg.g.BFS(d)
	if dist[s] < 0 {
		return nil, fmt.Errorf("routing: %d and %d disconnected", src, dst)
	}
	var out []graph.Path
	var walk func(prefix []int32, v int)
	walk = func(prefix []int32, v int) {
		if len(out) >= e.maxPaths {
			return
		}
		if v == d {
			p := graph.Path{Nodes: append([]int32(nil), prefix...), Cost: float64(len(prefix) - 1)}
			out = append(out, e.sg.translate(p))
			return
		}
		for _, h := range e.sg.g.Neighbors(v) {
			if dist[h.Peer] == dist[v]-1 {
				walk(append(prefix, h.Peer), int(h.Peer))
			}
		}
	}
	walk([]int32{int32(s)}, s)
	return out, nil
}

// NumShortestPaths counts all shortest paths between two switches exactly
// (no cap) by DAG path counting — the paper's "rich equal-cost redundant
// links" property of Clos operation, quantified.
func (e *ECMP) NumShortestPaths(src, dst int) (int64, error) {
	s, err := e.sg.resolve(src)
	if err != nil {
		return 0, err
	}
	d, err := e.sg.resolve(dst)
	if err != nil {
		return 0, err
	}
	if s == d {
		return 1, nil
	}
	dist := e.sg.g.BFS(s)
	if dist[d] < 0 {
		return 0, fmt.Errorf("routing: %d and %d disconnected", src, dst)
	}
	// Count paths in BFS-layer order.
	order := make([]int32, 0, e.sg.g.N())
	for v := 0; v < e.sg.g.N(); v++ {
		if dist[v] >= 0 {
			order = append(order, int32(v))
		}
	}
	// Sort by distance layer (counting sort).
	maxD := int32(0)
	for _, v := range order {
		if dist[v] > maxD {
			maxD = dist[v]
		}
	}
	buckets := make([][]int32, maxD+1)
	for _, v := range order {
		buckets[dist[v]] = append(buckets[dist[v]], v)
	}
	count := make([]int64, e.sg.g.N())
	count[s] = 1
	for dd := int32(1); dd <= maxD; dd++ {
		for _, v := range buckets[dd] {
			for _, h := range e.sg.g.Neighbors(int(v)) {
				if dist[h.Peer] == dd-1 {
					count[v] += count[h.Peer]
				}
			}
		}
	}
	return count[d], nil
}

// KSP computes k loopless shortest paths per pair, the paper's routing for
// approximated random graphs (citing Jellyfish). It keeps a reusable Yen
// solver (Dijkstra workspace, candidate heap, signature set), so a KSP
// instance is not safe for concurrent use; the flow simulators that drive
// it query paths from a single goroutine.
type KSP struct {
	nw     *topo.Network
	sg     *switchGraph
	solver *graph.KSPSolver
	k      int
	len    []float64
}

// NewKSP builds a k-shortest-paths scheme (hop-count metric).
func NewKSP(nw *topo.Network, k int) *KSP {
	if k <= 0 {
		k = 8
	}
	sg := newSwitchGraph(nw)
	return &KSP{nw: nw, sg: sg, solver: sg.g.NewKSPSolver(), k: k, len: sg.g.UnitLengths()}
}

// Name implements Scheme.
func (r *KSP) Name() string { return fmt.Sprintf("ksp%d", r.k) }

// Paths returns up to k loopless shortest paths.
func (r *KSP) Paths(src, dst int) ([]graph.Path, error) {
	s, err := r.sg.resolve(src)
	if err != nil {
		return nil, err
	}
	d, err := r.sg.resolve(dst)
	if err != nil {
		return nil, err
	}
	if s == d {
		return []graph.Path{{Nodes: []int32{int32(src)}}}, nil
	}
	paths := r.solver.KShortestPaths(s, d, r.k, r.len)
	if len(paths) == 0 {
		return nil, fmt.Errorf("routing: %d and %d disconnected", src, dst)
	}
	out := make([]graph.Path, len(paths))
	for i, p := range paths {
		out[i] = r.sg.translate(p)
	}
	return out, nil
}

// Table is a forwarding table: for each (switch, destination switch) the
// set of next-hop switch IDs on shortest paths. It is what the §2.6
// controller would install into SDN switches for Clos/ECMP operation.
type Table struct {
	nw   *topo.Network
	sg   *switchGraph
	next map[int64][]int32 // key: switchIdx<<32 | dstIdx
}

// BuildTable precomputes shortest-path next hops for all destination
// switches. Memory is O(switches^2) entries; intended for control-plane
// use at experiment scale.
func BuildTable(nw *topo.Network) *Table {
	sg := newSwitchGraph(nw)
	t := &Table{nw: nw, sg: sg, next: make(map[int64][]int32)}
	n := sg.g.N()
	dist := make([]int32, n)
	queue := make([]int32, n)
	for d := 0; d < n; d++ {
		sg.g.BFSInto(d, dist, queue)
		for v := 0; v < n; v++ {
			if v == d || dist[v] < 0 {
				continue
			}
			var hops []int32
			for _, h := range sg.g.Neighbors(v) {
				if dist[h.Peer] == dist[v]-1 {
					hops = append(hops, int32(sg.toNet[h.Peer]))
				}
			}
			t.next[int64(v)<<32|int64(d)] = hops
		}
	}
	return t
}

// NextHops returns the ECMP next-hop switch set from sw toward dst, both
// network switch IDs. An empty result means sw == dst or unreachable.
func (t *Table) NextHops(sw, dst int) []int32 {
	s, err := t.sg.resolve(sw)
	if err != nil {
		return nil
	}
	d, err := t.sg.resolve(dst)
	if err != nil {
		return nil
	}
	return t.next[int64(s)<<32|int64(d)]
}
