package routing

import (
	"testing"

	"flattree/internal/core"
	"flattree/internal/fattree"
	"flattree/internal/jellyfish"
)

func TestECMPFatTreeCrossPod(t *testing.T) {
	k := 4
	f, err := fattree.New(k)
	if err != nil {
		t.Fatal(err)
	}
	e := NewECMP(f.Net, 0)
	// Edge switches in different pods: 4 hops (edge-agg-core-agg-edge),
	// k/2 * k/2 = 4 equal-cost paths in fat-tree(4).
	src, dst := f.Edges[0][0], f.Edges[1][0]
	paths, err := e.Paths(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 4 {
		t.Errorf("got %d ECMP paths, want 4", len(paths))
	}
	for _, p := range paths {
		if p.Len() != 4 {
			t.Errorf("path length %d, want 4: %v", p.Len(), p.Nodes)
		}
		if int(p.Nodes[0]) != src || int(p.Nodes[len(p.Nodes)-1]) != dst {
			t.Errorf("path endpoints wrong: %v", p.Nodes)
		}
	}
	n, err := e.NumShortestPaths(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Errorf("NumShortestPaths = %d, want 4", n)
	}
}

func TestECMPIntraPod(t *testing.T) {
	f, err := fattree.New(6)
	if err != nil {
		t.Fatal(err)
	}
	e := NewECMP(f.Net, 0)
	// Two edges in the same pod: 2 hops via any of the k/2=3 aggs.
	n, err := e.NumShortestPaths(f.Edges[0][0], f.Edges[0][1])
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Errorf("intra-pod paths = %d, want 3", n)
	}
}

func TestECMPCap(t *testing.T) {
	f, err := fattree.New(8)
	if err != nil {
		t.Fatal(err)
	}
	e := NewECMP(f.Net, 5)
	paths, err := e.Paths(f.Edges[0][0], f.Edges[1][0])
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 5 {
		t.Errorf("cap ignored: %d paths", len(paths))
	}
}

func TestECMPRejectsServers(t *testing.T) {
	f, err := fattree.New(4)
	if err != nil {
		t.Fatal(err)
	}
	e := NewECMP(f.Net, 0)
	if _, err := e.Paths(f.ServerIDs[0], f.Edges[0][0]); err == nil {
		t.Error("server endpoint accepted")
	}
}

func TestKSPOnRandomGraph(t *testing.T) {
	j, err := jellyfish.New(6, 3)
	if err != nil {
		t.Fatal(err)
	}
	r := NewKSP(j.Net, 4)
	src, dst := j.Switches[0], j.Switches[len(j.Switches)-1]
	paths, err := r.Paths(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 || len(paths) > 4 {
		t.Fatalf("got %d paths", len(paths))
	}
	for i := 1; i < len(paths); i++ {
		if paths[i].Cost < paths[i-1].Cost {
			t.Error("paths not sorted by cost")
		}
	}
	if r.Name() != "ksp4" {
		t.Errorf("name = %s", r.Name())
	}
}

// TestFlatTreeECMPRichness: the paper claims Clos mode "benefits
// applications that require rich equal-cost redundant links"; converting to
// global-random mode trades that for shorter paths. Check the path count
// drops while reachability holds.
func TestFlatTreeECMPRichness(t *testing.T) {
	ft, err := core.Build(core.Params{K: 8})
	if err != nil {
		t.Fatal(err)
	}
	src, dst := ft.Edges[0][0], ft.Edges[4][0]

	closPaths, err := NewECMP(ft.Net(), 0).NumShortestPaths(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	if err := ft.SetUniformMode(core.ModeGlobalRandom); err != nil {
		t.Fatal(err)
	}
	grPaths, err := NewECMP(ft.Net(), 0).NumShortestPaths(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	if closPaths <= grPaths {
		t.Errorf("Clos should have more equal-cost paths: clos=%d global=%d", closPaths, grPaths)
	}
}

func TestForwardingTable(t *testing.T) {
	f, err := fattree.New(4)
	if err != nil {
		t.Fatal(err)
	}
	tbl := BuildTable(f.Net)
	// From edge 0/0 toward edge 1/0, the next hops are exactly pod 0's
	// aggregation switches.
	hops := tbl.NextHops(f.Edges[0][0], f.Edges[1][0])
	if len(hops) != 2 {
		t.Fatalf("got %d next hops, want 2", len(hops))
	}
	want := map[int32]bool{int32(f.Aggs[0][0]): true, int32(f.Aggs[0][1]): true}
	for _, h := range hops {
		if !want[h] {
			t.Errorf("unexpected next hop %d", h)
		}
	}
	// Walking the table always reaches the destination in dist hops.
	src, dst := f.Edges[0][0], f.Edges[3][1]
	cur := src
	for steps := 0; cur != dst; steps++ {
		if steps > 10 {
			t.Fatal("table walk did not converge")
		}
		hops := tbl.NextHops(cur, dst)
		if len(hops) == 0 {
			t.Fatalf("no next hop from %d to %d", cur, dst)
		}
		cur = int(hops[0])
	}
	if tbl.NextHops(src, src) != nil {
		t.Error("self next hops should be empty")
	}
	if tbl.NextHops(f.ServerIDs[0], dst) != nil {
		t.Error("server lookup should be empty")
	}
}
