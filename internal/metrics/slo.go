package metrics

import "fmt"

// Segment is one piece of a piecewise-constant service-level time series:
// the fabric delivered Value (a dimensionless service fraction, e.g.
// served-capacity relative to the healthy baseline) for Dur units of
// virtual time.
type Segment struct {
	Dur   float64
	Value float64
}

// SLOSummary folds a service time series against an availability
// threshold, the way reconfigurable-fabric operators judge a chaos soak:
// not by the final recovered state but by the fraction of time the fabric
// met its objective.
type SLOSummary struct {
	// Horizon is the total duration of the series.
	Horizon float64
	// Available is the duration spent at or above Threshold, and
	// Availability the same as a fraction of Horizon.
	Available    float64
	Availability float64
	// Threshold is the objective the series was judged against.
	Threshold float64
	// Mean is the time-weighted mean value; Min the worst value held for
	// any positive duration.
	Mean float64
	Min  float64
	// Breaches counts transitions from meeting the objective to violating
	// it — how many distinct incidents the soak produced, as opposed to
	// how long they lasted in total.
	Breaches int
}

// SLO summarizes a piecewise-constant service series against an
// availability threshold. Zero-duration segments are ignored; a negative
// duration is an error. An empty (or all-zero-duration) series is
// well-defined, not an error: every field is zero except Threshold —
// zero horizon, zero availability, zero breaches, never NaN — so callers
// folding an aborted or degenerate soak never divide by the horizon
// themselves.
func SLO(segs []Segment, threshold float64) (SLOSummary, error) {
	s := SLOSummary{Threshold: threshold}
	weighted := 0.0
	first := true
	// ok tracks whether the previous positive-duration segment met the
	// objective, so Breaches counts incident starts, not violation time.
	ok := true
	for i, seg := range segs {
		if seg.Dur < 0 {
			return SLOSummary{}, fmt.Errorf("metrics: segment %d has negative duration %g", i, seg.Dur)
		}
		//flatlint:ignore floatcmp zero-duration segments are produced by exact literal 0, not arithmetic; anything else, however tiny, must count toward the horizon
		if seg.Dur == 0 {
			continue
		}
		s.Horizon += seg.Dur
		weighted += seg.Dur * seg.Value
		if first || seg.Value < s.Min {
			s.Min = seg.Value
		}
		first = false
		meets := seg.Value >= threshold
		if meets {
			s.Available += seg.Dur
		} else if ok {
			s.Breaches++
		}
		ok = meets
	}
	if first {
		return SLOSummary{Threshold: threshold}, nil
	}
	s.Mean = weighted / s.Horizon
	s.Availability = s.Available / s.Horizon
	return s, nil
}
