package metrics

import (
	"math"
	"testing"
)

func TestSLOSummary(t *testing.T) {
	segs := []Segment{
		{Dur: 4, Value: 1.0},
		{Dur: 1, Value: 0.5},  // breach 1
		{Dur: 2, Value: 0.95}, // recovered
		{Dur: 0, Value: 0.0},  // zero-duration: ignored entirely
		{Dur: 1, Value: 0.8},  // breach 2
		{Dur: 2, Value: 0.7},  // still the same incident
	}
	s, err := SLO(segs, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.Horizon-10) > 1e-12 {
		t.Errorf("Horizon = %g, want 10", s.Horizon)
	}
	if math.Abs(s.Available-6) > 1e-12 || math.Abs(s.Availability-0.6) > 1e-12 {
		t.Errorf("Available = %g (%g), want 6 (0.6)", s.Available, s.Availability)
	}
	if s.Breaches != 2 {
		t.Errorf("Breaches = %d, want 2 (zero-duration segment must not split an incident)", s.Breaches)
	}
	want := (4*1.0 + 1*0.5 + 2*0.95 + 1*0.8 + 2*0.7) / 10
	if math.Abs(s.Mean-want) > 1e-12 {
		t.Errorf("Mean = %g, want %g", s.Mean, want)
	}
	if math.Abs(s.Min-0.5) > 1e-12 {
		t.Errorf("Min = %g, want 0.5", s.Min)
	}
}

func TestSLOAllAvailable(t *testing.T) {
	s, err := SLO([]Segment{{Dur: 3, Value: 1}, {Dur: 7, Value: 0.91}}, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.Availability-1) > 1e-12 || s.Breaches != 0 {
		t.Errorf("clean series: availability=%g breaches=%d", s.Availability, s.Breaches)
	}
}

// TestSLOEdgeCases pins the degenerate-input contract: empty,
// single-sample, and all-zero-duration series produce well-defined values
// — never NaN, never an error — so a service folding an aborted soak can
// always render the summary.
func TestSLOEdgeCases(t *testing.T) {
	finite := func(name string, s SLOSummary) {
		t.Helper()
		for field, v := range map[string]float64{
			"Horizon": s.Horizon, "Available": s.Available, "Availability": s.Availability,
			"Mean": s.Mean, "Min": s.Min, "Threshold": s.Threshold,
		} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Errorf("%s: %s = %g; must be finite", name, field, v)
			}
		}
	}
	cases := []struct {
		name string
		segs []Segment
		want SLOSummary
	}{
		{"empty", nil, SLOSummary{Threshold: 0.9}},
		{"all-zero-duration", []Segment{{Dur: 0, Value: 1}, {Dur: 0, Value: 0}}, SLOSummary{Threshold: 0.9}},
		{"single-sample-meets", []Segment{{Dur: 2, Value: 1}},
			SLOSummary{Horizon: 2, Available: 2, Availability: 1, Threshold: 0.9, Mean: 1, Min: 1}},
		{"single-sample-breaches", []Segment{{Dur: 2, Value: 0.5}},
			SLOSummary{Horizon: 2, Threshold: 0.9, Mean: 0.5, Min: 0.5, Breaches: 1}},
		{"single-zero-value", []Segment{{Dur: 1, Value: 0}},
			SLOSummary{Horizon: 1, Threshold: 0.9, Breaches: 1}},
	}
	for _, c := range cases {
		s, err := SLO(c.segs, 0.9)
		if err != nil {
			t.Errorf("%s: unexpected error %v", c.name, err)
			continue
		}
		finite(c.name, s)
		if s != c.want {
			t.Errorf("%s: SLO = %+v, want %+v", c.name, s, c.want)
		}
	}
	// The one remaining error: negative durations are corrupt input, not a
	// degenerate series.
	if _, err := SLO([]Segment{{Dur: -1, Value: 1}}, 0.9); err == nil {
		t.Error("negative duration accepted")
	}
}
