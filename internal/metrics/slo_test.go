package metrics

import (
	"math"
	"testing"
)

func TestSLOSummary(t *testing.T) {
	segs := []Segment{
		{Dur: 4, Value: 1.0},
		{Dur: 1, Value: 0.5},  // breach 1
		{Dur: 2, Value: 0.95}, // recovered
		{Dur: 0, Value: 0.0},  // zero-duration: ignored entirely
		{Dur: 1, Value: 0.8},  // breach 2
		{Dur: 2, Value: 0.7},  // still the same incident
	}
	s, err := SLO(segs, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.Horizon-10) > 1e-12 {
		t.Errorf("Horizon = %g, want 10", s.Horizon)
	}
	if math.Abs(s.Available-6) > 1e-12 || math.Abs(s.Availability-0.6) > 1e-12 {
		t.Errorf("Available = %g (%g), want 6 (0.6)", s.Available, s.Availability)
	}
	if s.Breaches != 2 {
		t.Errorf("Breaches = %d, want 2 (zero-duration segment must not split an incident)", s.Breaches)
	}
	want := (4*1.0 + 1*0.5 + 2*0.95 + 1*0.8 + 2*0.7) / 10
	if math.Abs(s.Mean-want) > 1e-12 {
		t.Errorf("Mean = %g, want %g", s.Mean, want)
	}
	if math.Abs(s.Min-0.5) > 1e-12 {
		t.Errorf("Min = %g, want 0.5", s.Min)
	}
}

func TestSLOAllAvailable(t *testing.T) {
	s, err := SLO([]Segment{{Dur: 3, Value: 1}, {Dur: 7, Value: 0.91}}, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.Availability-1) > 1e-12 || s.Breaches != 0 {
		t.Errorf("clean series: availability=%g breaches=%d", s.Availability, s.Breaches)
	}
}

func TestSLOErrors(t *testing.T) {
	if _, err := SLO(nil, 0.9); err == nil {
		t.Error("empty series accepted")
	}
	if _, err := SLO([]Segment{{Dur: 0, Value: 1}}, 0.9); err == nil {
		t.Error("all-zero-duration series accepted")
	}
	if _, err := SLO([]Segment{{Dur: -1, Value: 1}}, 0.9); err == nil {
		t.Error("negative duration accepted")
	}
}
