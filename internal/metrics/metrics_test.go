package metrics

import (
	"math"
	"testing"

	"flattree/internal/fattree"
	"flattree/internal/topo"
)

// fatTreeAPL computes the closed-form fat-tree average path length:
// same-edge pairs at 2 hops, same-pod pairs at 4, cross-pod pairs at 6.
func fatTreeAPL(k int) float64 {
	n := float64(k * k * k / 4)
	perEdge := float64(k / 2)
	perPod := float64(k * k / 4)
	pairs := n * (n - 1) / 2
	sameEdge := (n / perEdge) * perEdge * (perEdge - 1) / 2
	samePod := (n/perPod)*perPod*(perPod-1)/2 - sameEdge
	cross := pairs - sameEdge - samePod
	return (2*sameEdge + 4*samePod + 6*cross) / pairs
}

func TestFatTreeAPLMatchesClosedForm(t *testing.T) {
	for _, k := range []int{4, 6, 8, 12} {
		f, err := fattree.New(k)
		if err != nil {
			t.Fatal(err)
		}
		st, err := ServerPathLengths(f.Net)
		if err != nil {
			t.Fatal(err)
		}
		want := fatTreeAPL(k)
		if math.Abs(st.Global-want) > 1e-9 {
			t.Errorf("k=%d: APL = %g, want %g", k, st.Global, want)
		}
		if st.Max != 6 {
			t.Errorf("k=%d: max = %d, want 6", k, st.Max)
		}
		// Intra-pod: same-edge 2, otherwise 4.
		perEdge := float64(k / 2)
		perPod := float64(k * k / 4)
		podPairs := perPod * (perPod - 1) / 2
		sameEdge := (perPod / perEdge) * perEdge * (perEdge - 1) / 2
		wantPod := (2*sameEdge + 4*(podPairs-sameEdge)) / podPairs
		if math.Abs(st.IntraPod-wantPod) > 1e-9 {
			t.Errorf("k=%d: intra-pod APL = %g, want %g", k, st.IntraPod, wantPod)
		}
	}
}

func TestHistogramSumsToAllPairs(t *testing.T) {
	f, err := fattree.New(6)
	if err != nil {
		t.Fatal(err)
	}
	st, err := ServerPathLengths(f.Net)
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	var weighted float64
	for d, c := range st.Histogram {
		total += c
		weighted += float64(d) * float64(c)
	}
	n := int64(6 * 6 * 6 / 4)
	if total != n*(n-1)/2 {
		t.Errorf("histogram total %d, want %d", total, n*(n-1)/2)
	}
	if math.Abs(weighted/float64(total)-st.Global) > 1e-9 {
		t.Error("histogram mean disagrees with Global")
	}
}

func TestTwoServersOneSwitch(t *testing.T) {
	b := topo.NewBuilder("tiny")
	sw := b.AddNode(topo.EdgeSwitch, 0, 0, 4)
	s0 := b.AddNode(topo.Server, 0, 0, 1)
	s1 := b.AddNode(topo.Server, 0, 1, 1)
	b.AddLink(s0, sw, topo.TagClos)
	b.AddLink(s1, sw, topo.TagClos)
	st, err := ServerPathLengths(b.Build())
	if err != nil {
		t.Fatal(err)
	}
	if st.Global != 2 || st.IntraPod != 2 {
		t.Errorf("stats = %+v, want APL 2", st)
	}
}

func TestDisconnectedError(t *testing.T) {
	b := topo.NewBuilder("split")
	sw0 := b.AddNode(topo.EdgeSwitch, 0, 0, 4)
	sw1 := b.AddNode(topo.EdgeSwitch, 1, 0, 4)
	s0 := b.AddNode(topo.Server, 0, 0, 1)
	s1 := b.AddNode(topo.Server, 1, 1, 1)
	b.AddLink(s0, sw0, topo.TagClos)
	b.AddLink(s1, sw1, topo.TagClos)
	if _, err := ServerPathLengths(b.Build()); err == nil {
		t.Error("disconnected network should error")
	}
}

func TestSingleServerError(t *testing.T) {
	b := topo.NewBuilder("one")
	sw := b.AddNode(topo.EdgeSwitch, 0, 0, 4)
	s0 := b.AddNode(topo.Server, 0, 0, 1)
	b.AddLink(s0, sw, topo.TagClos)
	if _, err := ServerPathLengths(b.Build()); err == nil {
		t.Error("single server should error")
	}
}

// TestParallelBitIdentical asserts the package contract: the fanned-out
// sweep produces bit-for-bit the same statistics as the sequential one, for
// several worker counts. Exact float equality is intentional here — equal
// operation order must give equal bits.
func TestParallelBitIdentical(t *testing.T) {
	f, err := fattree.New(8)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ServerPathLengths(f.Net)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 2, 4, 13} {
		got, err := ServerPathLengthsParallel(f.Net, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if got.Global != want.Global || got.IntraPod != want.IntraPod || got.Max != want.Max {
			t.Errorf("workers=%d: stats %+v differ from sequential %+v", workers, got, want)
		}
		if len(got.Histogram) != len(want.Histogram) {
			t.Fatalf("workers=%d: histogram length %d vs %d", workers, len(got.Histogram), len(want.Histogram))
		}
		for d := range want.Histogram {
			if got.Histogram[d] != want.Histogram[d] {
				t.Errorf("workers=%d: histogram[%d] = %d, want %d", workers, d, got.Histogram[d], want.Histogram[d])
			}
		}
	}
}

func TestWrappers(t *testing.T) {
	f, err := fattree.New(4)
	if err != nil {
		t.Fatal(err)
	}
	g, err := AveragePathLength(f.Net)
	if err != nil {
		t.Fatal(err)
	}
	p, err := IntraPodAveragePathLength(f.Net)
	if err != nil {
		t.Fatal(err)
	}
	if g <= p {
		t.Errorf("global APL %g should exceed intra-pod %g in a fat-tree", g, p)
	}
}
