package metrics

import "sync/atomic"

// ServiceCounters are the experiment service's operational counters:
// lock-free atomics bumped on the request path, snapshotted by the metrics
// endpoint and by tests pinning behavior (e.g. singleflight's
// exactly-one-solve contract is asserted as Misses == 1).
type ServiceCounters struct {
	hits             atomic.Int64
	misses           atomic.Int64
	shared           atomic.Int64
	sheds            atomic.Int64
	deadlineDegrades atomic.Int64
	errors           atomic.Int64
}

// ServiceStats is a point-in-time snapshot of ServiceCounters.
type ServiceStats struct {
	// Hits served stored bytes; Misses computed a cell cold; Shared
	// joined another request's in-flight identical computation
	// (singleflight followers).
	Hits, Misses, Shared int64
	// Sheds were rejected at admission (queue depth cap).
	Sheds int64
	// DeadlineDegrades are cells a client deadline truncated to an
	// approximate (λ~) result.
	DeadlineDegrades int64
	// Errors are requests that failed after admission.
	Errors int64
}

func (c *ServiceCounters) Hit()             { c.hits.Add(1) }
func (c *ServiceCounters) Miss()            { c.misses.Add(1) }
func (c *ServiceCounters) Share()           { c.shared.Add(1) }
func (c *ServiceCounters) Shed()            { c.sheds.Add(1) }
func (c *ServiceCounters) DeadlineDegrade() { c.deadlineDegrades.Add(1) }
func (c *ServiceCounters) Error()           { c.errors.Add(1) }

// Read snapshots the counters.
func (c *ServiceCounters) Read() ServiceStats {
	return ServiceStats{
		Hits:             c.hits.Load(),
		Misses:           c.misses.Load(),
		Shared:           c.shared.Load(),
		Sheds:            c.sheds.Load(),
		DeadlineDegrades: c.deadlineDegrades.Load(),
		Errors:           c.errors.Load(),
	}
}
