// Package metrics computes the evaluation metrics of the flat-tree paper:
// average path length in hops over server pairs — network-wide (Figure 5)
// and restricted to pairs within the same pod (Figure 6) — plus supporting
// distance statistics. Converter switches never appear in effective
// networks, so hop counts automatically satisfy the paper's "converters are
// physical-layer and contribute no hops" assumption.
package metrics

import (
	"fmt"
	"math"

	"flattree/internal/topo"
)

// PathLengthStats aggregates server-pair distance statistics for one
// network. Distances are in hops (links traversed), server to server: two
// servers on the same switch are 2 hops apart.
type PathLengthStats struct {
	// Global is the mean over all distinct server pairs.
	Global float64
	// IntraPod is the mean over distinct server pairs with the same pod
	// label (servers keep their home-pod label in every topology, so this
	// compares "the same tenants" across topologies, as §3.2 does).
	IntraPod float64
	// Max is the server-pair diameter.
	Max int
	// Histogram[d] counts server pairs at distance d.
	Histogram []int64
}

// ServerPathLengths computes PathLengthStats with one BFS per
// server-hosting switch. It returns an error if any server pair is
// disconnected.
func ServerPathLengths(nw *topo.Network) (PathLengthStats, error) {
	return ServerPathLengthsParallel(nw, 1)
}

// ServerPathLengthsParallel is ServerPathLengths with the per-switch BFS
// sweep fanned out across workers goroutines (0 means all cores, 1 means
// fully sequential). The per-pair aggregation always replays in ascending
// source order, so the returned statistics are bit-identical for every
// worker count.
func ServerPathLengthsParallel(nw *topo.Network, workers int) (PathLengthStats, error) {
	g := nw.Graph()
	n := g.N()

	// Hosting switches and per-switch server counts, plus per-(switch,pod)
	// counts for the intra-pod aggregation.
	type podCount struct {
		pod   int
		count int64
	}
	hostSwitches := make([]int, 0)
	total := make([]int64, n)
	byPod := make([][]podCount, n)
	numServers := 0
	for _, sv := range nw.Servers() {
		numServers++
		sw := nw.HostSwitch(sv)
		if sw < 0 {
			return PathLengthStats{}, fmt.Errorf("metrics: server %d detached", sv)
		}
		if total[sw] == 0 {
			hostSwitches = append(hostSwitches, sw)
		}
		total[sw]++
		pod := nw.Nodes[sv].Pod
		found := false
		for i := range byPod[sw] {
			if byPod[sw][i].pod == pod {
				byPod[sw][i].count++
				found = true
				break
			}
		}
		if !found {
			byPod[sw] = append(byPod[sw], podCount{pod, 1})
		}
	}
	if numServers < 2 {
		return PathLengthStats{}, fmt.Errorf("metrics: need at least 2 servers, have %d", numServers)
	}

	var (
		sumGlobal   float64
		pairsGlobal float64
		sumPod      float64
		pairsPod    float64
		hist        []int64
		maxD        int
	)
	bump := func(d int, cnt int64) {
		for d >= len(hist) {
			hist = append(hist, 0)
		}
		hist[d] += cnt
		if d > maxD {
			maxD = d
		}
	}

	// aggregate folds source switch hostSwitches[i]'s distance vector into
	// the running sums. It must be called in ascending index order: the
	// order of floating-point additions is part of the package's output
	// contract (tables print identically for every worker count). Each
	// unordered pair is visited once, from its lower-indexed side, so the
	// cross-switch loop starts at i+1 instead of scanning and skipping the
	// first half.
	aggregate := func(i int, dist []int32) error {
		s := hostSwitches[i]
		cs := total[s]
		// Same-switch pairs: distance 2.
		same := cs * (cs - 1) / 2
		if same > 0 {
			sumGlobal += float64(same) * 2
			pairsGlobal += float64(same)
			bump(2, same)
		}
		for _, pc := range byPod[s] {
			samePod := pc.count * (pc.count - 1) / 2
			sumPod += float64(samePod) * 2
			pairsPod += float64(samePod)
		}
		// Cross-switch pairs, counted once from the lower index.
		for _, t := range hostSwitches[i+1:] {
			d := dist[t]
			if d < 0 {
				return fmt.Errorf("metrics: switches %d and %d disconnected", s, t)
			}
			hops := int(d) + 2
			cnt := cs * total[t]
			sumGlobal += float64(cnt) * float64(hops)
			pairsGlobal += float64(cnt)
			bump(hops, cnt)
			for _, pa := range byPod[s] {
				for _, pb := range byPod[t] {
					if pa.pod == pb.pod {
						cnt := pa.count * pb.count
						sumPod += float64(cnt) * float64(hops)
						pairsPod += float64(cnt)
					}
				}
			}
		}
		return nil
	}

	if workers == 1 {
		// Streaming sweep: one scratch vector, no per-source allocation.
		dist := make([]int32, n)
		queue := make([]int32, n)
		for i, s := range hostSwitches {
			g.BFSInto(s, dist, queue)
			if err := aggregate(i, dist); err != nil {
				return PathLengthStats{}, err
			}
		}
	} else {
		// Fan the BFS sweep out, then replay the aggregation in source
		// order over the precomputed rows.
		rows, err := g.AllPairsBFS(hostSwitches, workers)
		if err != nil {
			return PathLengthStats{}, err
		}
		for i := range hostSwitches {
			if err := aggregate(i, rows[i]); err != nil {
				return PathLengthStats{}, err
			}
		}
	}

	st := PathLengthStats{
		Global:    sumGlobal / pairsGlobal,
		Max:       maxD,
		Histogram: hist,
	}
	if pairsPod > 0 {
		st.IntraPod = sumPod / pairsPod
	} else {
		st.IntraPod = math.NaN()
	}
	return st, nil
}

// AveragePathLength returns the network-wide server-pair average path
// length in hops.
func AveragePathLength(nw *topo.Network) (float64, error) {
	return AveragePathLengthParallel(nw, 1)
}

// AveragePathLengthParallel is AveragePathLength with the BFS sweep spread
// over workers goroutines (0 means all cores); the result is identical for
// every worker count.
func AveragePathLengthParallel(nw *topo.Network, workers int) (float64, error) {
	st, err := ServerPathLengthsParallel(nw, workers)
	if err != nil {
		return 0, err
	}
	return st.Global, nil
}

// IntraPodAveragePathLength returns the mean distance over server pairs
// sharing a pod label.
func IntraPodAveragePathLength(nw *topo.Network) (float64, error) {
	return IntraPodAveragePathLengthParallel(nw, 1)
}

// IntraPodAveragePathLengthParallel is IntraPodAveragePathLength with the
// BFS sweep spread over workers goroutines (0 means all cores); the result
// is identical for every worker count.
func IntraPodAveragePathLengthParallel(nw *topo.Network, workers int) (float64, error) {
	st, err := ServerPathLengthsParallel(nw, workers)
	if err != nil {
		return 0, err
	}
	if math.IsNaN(st.IntraPod) {
		return 0, fmt.Errorf("metrics: network has no intra-pod server pairs")
	}
	return st.IntraPod, nil
}
