package converter

import (
	"testing"
	"testing/quick"
)

// plantPair builds two 6-port converters cabled to distinct devices with
// straight side cables, the §2.5 inter-pod arrangement. Device numbering:
// converter 0: S=0 E=1 A=2 C=3; converter 1: S=10 E=11 A=12 C=13.
func plantPair(cfg0, cfg1 Config) []Converter {
	mk := func(id int, base int32, peer int32, cfg Config) Converter {
		c := Converter{ID: id, Ports: 6, Config: cfg}
		for p := range c.Attach {
			c.Attach[p] = NoEndpoint
		}
		c.Attach[PortServer] = Endpoint{Node: base, Conv: -1}
		c.Attach[PortEdge] = Endpoint{Node: base + 1, Conv: -1}
		c.Attach[PortAgg] = Endpoint{Node: base + 2, Conv: -1}
		c.Attach[PortCore] = Endpoint{Node: base + 3, Conv: -1}
		c.Attach[PortSide1] = Endpoint{Node: -1, Conv: peer, Port: PortSide1}
		c.Attach[PortSide2] = Endpoint{Node: -1, Conv: peer, Port: PortSide2}
		return c
	}
	return []Converter{mk(0, 0, 1, cfg0), mk(1, 10, 0, cfg1)}
}

func linkSet(links []EffectiveLink) map[[2]int32]bool {
	s := make(map[[2]int32]bool)
	for _, l := range links {
		a, b := l.A, l.B
		if a > b {
			a, b = b, a
		}
		s[[2]int32{a, b}] = true
	}
	return s
}

func TestDefaultReproducesClos(t *testing.T) {
	links, err := Splice(plantPair(Default, Default))
	if err != nil {
		t.Fatal(err)
	}
	got := linkSet(links)
	want := [][2]int32{{2, 3}, {0, 1}, {12, 13}, {10, 11}} // A-C, E-S per converter
	if len(got) != len(want) {
		t.Fatalf("got %d links %v, want %d", len(got), got, len(want))
	}
	for _, w := range want {
		if !got[w] {
			t.Errorf("missing link %v", w)
		}
	}
	for _, l := range links {
		if l.ViaSide {
			t.Errorf("default config produced a side link %v", l)
		}
	}
}

func TestLocalRelocatesServer(t *testing.T) {
	links, err := Splice(plantPair(Local, Default))
	if err != nil {
		t.Fatal(err)
	}
	got := linkSet(links)
	// Converter 0 local: A-S (2-0) and C-E (1-3).
	if !got[[2]int32{0, 2}] || !got[[2]int32{1, 3}] {
		t.Errorf("local links missing: %v", got)
	}
}

func TestSideSidePeerWise(t *testing.T) {
	links, err := Splice(plantPair(Side, Side))
	if err != nil {
		t.Fatal(err)
	}
	got := linkSet(links)
	// C-S locally on both (0-3, 10-13), E-E' (1-11), A-A' (2-12).
	for _, w := range [][2]int32{{0, 3}, {10, 13}, {1, 11}, {2, 12}} {
		if !got[w] {
			t.Errorf("missing %v in %v", w, got)
		}
	}
	var sideLinks int
	for _, l := range links {
		if l.ViaSide {
			sideLinks++
		}
	}
	if sideLinks != 2 {
		t.Errorf("got %d side links, want 2", sideLinks)
	}
}

func TestCrossSideCrossed(t *testing.T) {
	// One end Cross, other Side: E-A' and A-E'.
	links, err := Splice(plantPair(Cross, Side))
	if err != nil {
		t.Fatal(err)
	}
	got := linkSet(links)
	for _, w := range [][2]int32{{0, 3}, {10, 13}, {1, 12}, {2, 11}} {
		if !got[w] {
			t.Errorf("missing %v in %v", w, got)
		}
	}
}

func TestCrossCrossCancelsToPeerWise(t *testing.T) {
	// Both ends Cross: the two swaps cancel — documented pitfall that
	// core.ConfigFor works around by crossing only one end.
	links, err := Splice(plantPair(Cross, Cross))
	if err != nil {
		t.Fatal(err)
	}
	got := linkSet(links)
	if !got[[2]int32{1, 11}] || !got[[2]int32{2, 12}] {
		t.Errorf("double cross should be peer-wise: %v", got)
	}
}

func TestSideWithoutPeerWastesLink(t *testing.T) {
	convs := plantPair(Side, Side)
	// Cut converter 0's side cables (no peer).
	convs[0].Attach[PortSide1] = NoEndpoint
	convs[0].Attach[PortSide2] = NoEndpoint
	convs[1].Attach[PortSide1] = NoEndpoint
	convs[1].Attach[PortSide2] = NoEndpoint
	links, err := Splice(convs)
	if err != nil {
		t.Fatal(err)
	}
	got := linkSet(links)
	// Only the C-S links survive; E and A dangle.
	if len(got) != 2 || !got[[2]int32{0, 3}] || !got[[2]int32{10, 13}] {
		t.Errorf("links = %v, want only the two C-S links", got)
	}
}

func TestFourPortValidation(t *testing.T) {
	c := Converter{ID: 0, Ports: 4, Config: Side}
	for p := range c.Attach {
		c.Attach[p] = NoEndpoint
	}
	c.Attach[PortServer] = Endpoint{Node: 0, Conv: -1}
	c.Attach[PortEdge] = Endpoint{Node: 1, Conv: -1}
	c.Attach[PortAgg] = Endpoint{Node: 2, Conv: -1}
	c.Attach[PortCore] = Endpoint{Node: 3, Conv: -1}
	if err := c.Validate(); err == nil {
		t.Error("4-port Side must be invalid")
	}
	c.Config = Local
	if err := c.Validate(); err != nil {
		t.Errorf("4-port Local should validate: %v", err)
	}
	c.Attach[PortSide1] = Endpoint{Node: 9, Conv: -1}
	if err := c.Validate(); err == nil {
		t.Error("4-port with side cable must be invalid")
	}
}

func TestMatchingCoversConfiguredPorts(t *testing.T) {
	for _, ports := range []int{4, 6} {
		for _, cfg := range ValidConfigs(ports) {
			pairs, err := Matching(ports, cfg)
			if err != nil {
				t.Fatalf("Matching(%d,%s): %v", ports, cfg, err)
			}
			used := make(map[Port]int)
			for _, pr := range pairs {
				used[pr[0]]++
				used[pr[1]]++
			}
			for p, n := range used {
				if n != 1 {
					t.Errorf("%d-port %s: port %s matched %d times", ports, cfg, p, n)
				}
			}
			// Device ports S,E,A,C always participate.
			for _, p := range []Port{PortServer, PortEdge, PortAgg, PortCore} {
				if used[p] != 1 {
					t.Errorf("%d-port %s: device port %s unmatched", ports, cfg, p)
				}
			}
		}
	}
	if _, err := Matching(4, Cross); err == nil {
		t.Error("Matching(4, Cross) should fail")
	}
	if _, err := Matching(5, Default); err == nil {
		t.Error("Matching(5, ...) should fail")
	}
}

// TestSpliceConservesDevicePorts: every device cable produces at most one
// effective link endpoint, and link endpoints are exactly the devices whose
// chains complete — for any configuration combo on a pair.
func TestSpliceConservesDevicePorts(t *testing.T) {
	cfgs := []Config{Default, Local, Side, Cross}
	err := quick.Check(func(a, b uint8) bool {
		convs := plantPair(cfgs[a%4], cfgs[b%4])
		links, err := Splice(convs)
		if err != nil {
			return false
		}
		// Count endpoint usage per device.
		use := make(map[int32]int)
		for _, l := range links {
			use[l.A]++
			use[l.B]++
		}
		for _, n := range use {
			if n != 1 {
				return false
			}
		}
		// Between 2 and 4 links for a cabled pair (8 device cables, some
		// possibly dark).
		return len(links) >= 2 && len(links) <= 4
	}, &quick.Config{MaxCount: 16})
	if err != nil {
		t.Error(err)
	}
}

func TestSpliceRejectsBadID(t *testing.T) {
	convs := plantPair(Default, Default)
	convs[1].ID = 7
	if _, err := Splice(convs); err == nil {
		t.Error("mismatched ID should error")
	}
}
