package converter

import "testing"

// BenchmarkSplice measures effective-link extraction for a plant of paired
// converters, the inner loop of every topology conversion.
func BenchmarkSplice(b *testing.B) {
	const pairs = 512
	convs := make([]Converter, 0, 2*pairs)
	for p := 0; p < pairs; p++ {
		base := int32(p * 100)
		cfg0, cfg1 := Side, Side
		if p%2 == 1 {
			cfg0 = Cross
		}
		for i, cfg := range []Config{cfg0, cfg1} {
			id := 2*p + i
			peer := int32(2*p + 1 - i)
			c := Converter{ID: id, Ports: 6, Config: cfg}
			for pt := range c.Attach {
				c.Attach[pt] = NoEndpoint
			}
			off := int32(i * 10)
			c.Attach[PortServer] = Endpoint{Node: base + off, Conv: -1}
			c.Attach[PortEdge] = Endpoint{Node: base + off + 1, Conv: -1}
			c.Attach[PortAgg] = Endpoint{Node: base + off + 2, Conv: -1}
			c.Attach[PortCore] = Endpoint{Node: base + off + 3, Conv: -1}
			c.Attach[PortSide1] = Endpoint{Node: -1, Conv: peer, Port: PortSide1}
			c.Attach[PortSide2] = Endpoint{Node: -1, Conv: peer, Port: PortSide2}
			convs = append(convs, c)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		links, err := Splice(convs)
		if err != nil {
			b.Fatal(err)
		}
		if len(links) != 4*pairs {
			b.Fatalf("got %d links, want %d", len(links), 4*pairs)
		}
	}
}
