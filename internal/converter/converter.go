// Package converter models the small port-count converter switches at the
// heart of flat-tree (§2.1, Figure 1 of the paper). A converter taps one
// edge-server cable and one aggregation-core cable of a Clos pod (6-port
// converters additionally own a pair of side cables to a peer converter in
// an adjacent pod) and realizes one of four configurations, each an internal
// perfect matching over its ports:
//
//	Default: {agg-core, edge-server}           — the original Clos wiring
//	Local:   {agg-server, core-edge}           — server moves to the agg switch
//	Side:    {core-server, edge-side1, agg-side2} — server moves to the core
//	Cross:   {core-server, edge-side2, agg-side1} — ditto, peers crossed
//
// Converters operate in the physical layer: an effective switch-level link
// is obtained by tracing cable → matching → cable chains until both ends are
// devices, and contributes no hops. Splice performs that tracing for a whole
// set of converters.
package converter

import "fmt"

// Config selects a converter's internal port matching.
type Config uint8

const (
	// Default reproduces the original Clos connections.
	Default Config = iota
	// Local relocates the server to the aggregation switch and connects
	// the core and edge switches directly.
	Local
	// Side relocates the server to the core switch and hands the edge and
	// aggregation ports to the peer converter, straight (E-E', A-A' when
	// the peer is also in Side).
	Side
	// Cross is Side with the hand-off swapped (E-A', A-E' when the peer is
	// also in Side or Cross).
	Cross
)

// String returns the configuration name.
func (c Config) String() string {
	switch c {
	case Default:
		return "default"
	case Local:
		return "local"
	case Side:
		return "side"
	case Cross:
		return "cross"
	}
	return fmt.Sprintf("config(%d)", uint8(c))
}

// Port identifies one of a converter's ports by role.
type Port uint8

const (
	// PortServer cables to the tapped server.
	PortServer Port = iota
	// PortEdge cables to the pod's edge switch of the converter's pair.
	PortEdge
	// PortAgg cables to the pod's aggregation switch of the pair.
	PortAgg
	// PortCore cables to the core switch whose uplink the converter taps.
	PortCore
	// PortSide1 and PortSide2 cable straight to the same-numbered ports of
	// the paired converter in the adjacent pod (6-port converters only).
	PortSide1
	PortSide2

	// NumPorts is the size of per-port arrays.
	NumPorts = 6
)

// String returns the port role name.
func (p Port) String() string {
	switch p {
	case PortServer:
		return "S"
	case PortEdge:
		return "E"
	case PortAgg:
		return "A"
	case PortCore:
		return "C"
	case PortSide1:
		return "side1"
	case PortSide2:
		return "side2"
	}
	return fmt.Sprintf("port(%d)", uint8(p))
}

// Matching returns the internal port pairing for a converter with the given
// port count (4 or 6) under cfg. Ports not mentioned are left open.
func Matching(ports int, cfg Config) ([][2]Port, error) {
	switch {
	case ports == 4 && cfg == Default, ports == 6 && cfg == Default:
		return [][2]Port{{PortAgg, PortCore}, {PortEdge, PortServer}}, nil
	case ports == 4 && cfg == Local, ports == 6 && cfg == Local:
		return [][2]Port{{PortAgg, PortServer}, {PortCore, PortEdge}}, nil
	case ports == 6 && cfg == Side:
		return [][2]Port{{PortCore, PortServer}, {PortEdge, PortSide1}, {PortAgg, PortSide2}}, nil
	case ports == 6 && cfg == Cross:
		return [][2]Port{{PortCore, PortServer}, {PortEdge, PortSide2}, {PortAgg, PortSide1}}, nil
	}
	return nil, fmt.Errorf("converter: invalid configuration %s for %d-port converter", cfg, ports)
}

// ValidConfigs lists the configurations a converter with the given port
// count supports. 4-port converters deliberately exclude Side/Cross — and
// also any server-to-core relocation, per §2.1 of the paper: with only four
// ports, pairing server with core would force a redundant edge-agg link.
func ValidConfigs(ports int) []Config {
	if ports == 4 {
		return []Config{Default, Local}
	}
	return []Config{Default, Local, Side, Cross}
}

// Endpoint is what a converter port's external cable attaches to: a device
// (network node), a peer converter port, or nothing.
type Endpoint struct {
	Node int32 // device node ID, or -1
	Conv int32 // peer converter index, or -1
	Port Port  // peer port (valid when Conv >= 0)
}

// NoEndpoint is an unattached cable.
var NoEndpoint = Endpoint{Node: -1, Conv: -1}

// IsNode reports whether the endpoint is a device.
func (e Endpoint) IsNode() bool { return e.Node >= 0 }

// IsConv reports whether the endpoint is a peer converter port.
func (e Endpoint) IsConv() bool { return e.Conv >= 0 }

// Converter is one converter switch instance with its external cabling and
// current configuration.
type Converter struct {
	// ID is the converter's index in the owning slice; Splice requires
	// ID == position.
	ID int
	// Ports is 4 or 6.
	Ports int
	// Attach gives the external endpoint of each port role.
	Attach [NumPorts]Endpoint
	// Config is the active configuration.
	Config Config
}

// Validate checks that the configuration is legal for the port count, that
// device-facing ports are cabled, and that side ports are only used on
// 6-port converters.
func (c *Converter) Validate() error {
	if c.Ports != 4 && c.Ports != 6 {
		return fmt.Errorf("converter %d: bad port count %d", c.ID, c.Ports)
	}
	if _, err := Matching(c.Ports, c.Config); err != nil {
		return fmt.Errorf("converter %d: %w", c.ID, err)
	}
	for _, p := range []Port{PortServer, PortEdge, PortAgg, PortCore} {
		if !c.Attach[p].IsNode() {
			return fmt.Errorf("converter %d: %s port not cabled to a device", c.ID, p)
		}
	}
	if c.Ports == 4 {
		for _, p := range []Port{PortSide1, PortSide2} {
			if c.Attach[p] != NoEndpoint {
				return fmt.Errorf("converter %d: 4-port converter has a %s cable", c.ID, p)
			}
		}
	}
	return nil
}

// EffectiveLink is a device-to-device link produced by splicing.
type EffectiveLink struct {
	A, B int32
	// ViaSide reports whether the splice traversed at least one side cable
	// (i.e. the link crosses pods through paired 6-port converters).
	ViaSide bool
}

// Splice traces every cable-matching chain across the converter set and
// returns the resulting device-to-device links. Each link is reported once.
// Chains that dead-end on an uncabled port (e.g. a Side configuration whose
// peer is missing) produce no link. An error is returned for malformed
// inputs or a cyclic chain, which cannot arise from valid configurations.
func Splice(convs []Converter) ([]EffectiveLink, error) {
	type matchTable [NumPorts]int8 // port -> matched port, -1 if open
	tables := make([]matchTable, len(convs))
	for i := range convs {
		c := &convs[i]
		if c.ID != i {
			return nil, fmt.Errorf("converter: ID %d at position %d", c.ID, i)
		}
		if err := c.Validate(); err != nil {
			return nil, err
		}
		var t matchTable
		for p := range t {
			t[p] = -1
		}
		pairs, err := Matching(c.Ports, c.Config)
		if err != nil {
			return nil, err
		}
		for _, pr := range pairs {
			t[pr[0]] = int8(pr[1])
			t[pr[1]] = int8(pr[0])
		}
		tables[i] = t
	}

	done := make([][NumPorts]bool, len(convs))
	var out []EffectiveLink
	for i := range convs {
		for p := Port(0); p < NumPorts; p++ {
			if done[i][p] || !convs[i].Attach[p].IsNode() {
				continue
			}
			// Trace from device-facing port (i, p).
			start := convs[i].Attach[p].Node
			ci, cp := i, p
			viaSide := false
			steps := 0
			for {
				if steps++; steps > 4*len(convs)+8 {
					return nil, fmt.Errorf("converter: cyclic splice chain starting at converter %d port %s", i, p)
				}
				done[ci][cp] = true
				mp := tables[ci][cp]
				if mp < 0 {
					// Open matching slot: the device's cable is dark.
					break
				}
				cp = Port(mp)
				done[ci][cp] = true
				ep := convs[ci].Attach[cp]
				if ep.IsNode() {
					out = append(out, EffectiveLink{A: start, B: ep.Node, ViaSide: viaSide})
					break
				}
				if !ep.IsConv() {
					// Matched onto an uncabled port: wasted link.
					break
				}
				if cp == PortSide1 || cp == PortSide2 {
					viaSide = true
				}
				ci, cp = int(ep.Conv), ep.Port
			}
		}
	}
	return out, nil
}
