package parallel

// SeedStream derives independent per-cell seeds from one base seed by
// SplitMix64-hashing the (base, cell) pair. Experiment drivers use it to
// give every (topology, placement, trial) cell its own RNG seed that is a
// pure function of the configured base seed and the cell index — so the
// same flags always reproduce the same tables, regardless of worker count
// or completion order.
//
// The previous additive derivation (base + trial*7919) made "independent"
// trials share raw seed values between nearby base seeds: bases b and
// b+7919 produce fully overlapping, merely shifted seed sequences, and any
// two bases collide once trial strides line up. Hashing both words through
// the SplitMix64 finalizer (a bijection with full avalanche) breaks that
// structure: flipping any bit of the base or the cell index flips ~half the
// output bits, so distinct (base, cell) pairs yield effectively independent
// seeds.
type SeedStream struct {
	base uint64
}

// golden is the SplitMix64 increment, 2^64 / phi, an odd constant whose
// multiples visit every uint64 exactly once.
const golden = 0x9e3779b97f4a7c15

// mix64 is the SplitMix64 output finalizer (Steele, Lea & Flood 2014), a
// bijective avalanche function on uint64.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// NewSeedStream returns the seed stream for one base seed. Streams are
// stateless: two streams with the same base are interchangeable.
func NewSeedStream(base uint64) SeedStream {
	// Pre-diffuse the base so that low-entropy bases (0, 1, 2, ...) land
	// far apart before the per-cell offset is applied.
	return SeedStream{base: mix64(base + golden)}
}

// Seed returns the seed for one cell. For a fixed base, cell -> Seed(cell)
// is injective (the finalizer is a bijection applied to base + cell*golden,
// which is itself injective in cell), so no two cells of one experiment run
// ever share a seed.
func (s SeedStream) Seed(cell uint64) uint64 {
	return mix64(s.base + cell*golden)
}
