// Package parallel is the repository's deterministic fan-out runner. Every
// embarrassingly parallel loop — experiment sweeps over (k, topology,
// trial) cells, all-pairs BFS sources — goes through Map or ForEach, which
// distribute the index range [0, n) over a bounded worker pool and merge
// results in index order. The contract that makes the experiment tables
// reproducible is: for a pure per-index function, the merged output is
// identical for every worker count, including 1. Callers therefore never
// need a separate sequential code path.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a parallelism knob to an effective worker count: a
// positive value is used as-is, anything else (the "auto" default) becomes
// runtime.GOMAXPROCS(0), i.e. every available core.
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// ForEach calls fn(i) for every i in [0, n), spread across Workers(workers)
// goroutines. Indices are handed out dynamically (an atomic counter), so
// uneven per-index costs still balance.
//
// On error the pool cancels: workers stop taking new indices, in-flight
// calls finish, and ForEach returns the error of the lowest-indexed call
// observed to fail. With workers <= 1 the calls run sequentially on the
// caller's goroutine and the first error returns immediately, exactly like
// the hand-written loop it replaces.
func ForEach(n, workers int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}

	var (
		next    atomic.Int64
		stopped atomic.Bool
		mu      sync.Mutex
		errIdx  int
		firstE  error
		wg      sync.WaitGroup
	)
	record := func(i int, err error) {
		mu.Lock()
		if firstE == nil || i < errIdx {
			firstE, errIdx = err, i
		}
		mu.Unlock()
		stopped.Store(true)
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for !stopped.Load() {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := fn(i); err != nil {
					record(i, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	return firstE
}

// Map evaluates fn(i) for every i in [0, n) across Workers(workers)
// goroutines and returns the results in index order. Error semantics match
// ForEach: the result slice is nil and the error is from the lowest-indexed
// failing call observed before cancellation. fn must be safe for concurrent
// invocation; it is never called twice for the same index.
func Map[T any](n, workers int, fn func(i int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	out := make([]T, n)
	err := ForEach(n, workers, func(i int) error {
		v, err := fn(i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
