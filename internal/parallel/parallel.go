// Package parallel is the repository's deterministic fan-out runner. Every
// embarrassingly parallel loop — experiment sweeps over (k, topology,
// trial) cells, all-pairs BFS sources — goes through Map or ForEach, which
// distribute the index range [0, n) over a bounded worker pool and merge
// results in index order. The contract that makes the experiment tables
// reproducible is: for a pure per-index function, the merged output is
// identical for every worker count, including 1. Callers therefore never
// need a separate sequential code path.
//
// The Ctx variants accept a context.Context and stop handing out new
// indices as soon as it is done; in-flight calls finish and the context's
// error is returned (a real per-cell error observed before cancellation
// still wins). Worker panics never take down the process: they are
// recovered into a *PanicError carrying the cell index and stack, and
// cancel the pool like any other error.
package parallel

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// Workers resolves a parallelism knob to an effective worker count: a
// positive value is used as-is, anything else (the "auto" default) becomes
// runtime.GOMAXPROCS(0), i.e. every available core.
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// PanicError is the error returned when a per-index function panics. The
// panic is recovered inside the worker so the pool shuts down cleanly; the
// original panic value and the goroutine stack at the panic site are kept
// for the report.
type PanicError struct {
	Index int    // index whose call panicked
	Value any    // the recovered panic value
	Stack []byte // debug.Stack() captured at recovery
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("parallel: panic in cell %d: %v\n%s", e.Index, e.Value, e.Stack)
}

// safeCall invokes fn(i), converting a panic into a *PanicError.
func safeCall(i int, fn func(i int) error) (err error) {
	defer func() {
		if v := recover(); v != nil {
			err = &PanicError{Index: i, Value: v, Stack: debug.Stack()}
		}
	}()
	return fn(i)
}

// ForEach calls fn(i) for every i in [0, n), spread across Workers(workers)
// goroutines. Indices are handed out dynamically (an atomic counter), so
// uneven per-index costs still balance.
//
// On error the pool cancels: workers stop taking new indices, in-flight
// calls finish, and ForEach returns the error of the lowest-indexed call
// observed to fail. With workers <= 1 the calls run sequentially on the
// caller's goroutine and the first error returns immediately, exactly like
// the hand-written loop it replaces. A panicking fn is reported as a
// *PanicError rather than crashing the process.
func ForEach(n, workers int, fn func(i int) error) error {
	return ForEachCtx(context.Background(), n, workers, fn)
}

// ForEachCtx is ForEach with cancellation: no new index is started once
// ctx is done. In-flight calls are not interrupted (fn does not receive
// the context; long-running cells should capture it themselves). When the
// sweep is cut short by the context and no per-cell error was observed
// first, the return value is ctx.Err().
func ForEachCtx(ctx context.Context, n, workers int, fn func(i int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := safeCall(i, fn); err != nil {
				return err
			}
		}
		return nil
	}

	var (
		next    atomic.Int64
		stopped atomic.Bool
		mu      sync.Mutex
		errIdx  int
		firstE  error
		wg      sync.WaitGroup
	)
	record := func(i int, err error) {
		mu.Lock()
		if firstE == nil || i < errIdx {
			firstE, errIdx = err, i
		}
		mu.Unlock()
		stopped.Store(true)
	}
	done := ctx.Done()
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for !stopped.Load() {
				select {
				case <-done:
					return
				default:
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := safeCall(i, fn); err != nil {
					record(i, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if firstE != nil {
		return firstE
	}
	return ctx.Err()
}

// Map evaluates fn(i) for every i in [0, n) across Workers(workers)
// goroutines and returns the results in index order. Error semantics match
// ForEach: the result slice is nil and the error is from the lowest-indexed
// failing call observed before cancellation. fn must be safe for concurrent
// invocation; it is never called twice for the same index.
func Map[T any](n, workers int, fn func(i int) (T, error)) ([]T, error) {
	return MapCtx(context.Background(), n, workers, fn)
}

// MapCtx is Map with cancellation, mirroring ForEachCtx: once ctx is done
// no new index is evaluated, the partial results are discarded, and the
// error is ctx.Err() unless a lower-indexed per-cell error was observed
// first.
func MapCtx[T any](ctx context.Context, n, workers int, fn func(i int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, ctx.Err()
	}
	out := make([]T, n)
	err := ForEachCtx(ctx, n, workers, func(i int) error {
		v, err := fn(i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
