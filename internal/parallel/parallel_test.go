package parallel

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestWorkersResolution(t *testing.T) {
	if got := Workers(3); got != 3 {
		t.Errorf("Workers(3) = %d", got)
	}
	want := runtime.GOMAXPROCS(0)
	for _, n := range []int{0, -1} {
		if got := Workers(n); got != want {
			t.Errorf("Workers(%d) = %d, want GOMAXPROCS %d", n, got, want)
		}
	}
}

func TestMapOrderAcrossWorkerCounts(t *testing.T) {
	const n = 257
	var want []int
	for i := 0; i < n; i++ {
		want = append(want, i*i)
	}
	for _, workers := range []int{1, 2, 4, 16, n + 5} {
		got, err := Map(n, workers, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != n {
			t.Fatalf("workers=%d: len %d", workers, len(got))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Errorf("workers=%d: [%d] = %d, want %d", workers, i, got[i], want[i])
			}
		}
	}
}

func TestMapZeroAndNegative(t *testing.T) {
	for _, n := range []int{0, -3} {
		out, err := Map(n, 4, func(i int) (string, error) {
			t.Errorf("fn called for n=%d", n)
			return "", nil
		})
		if err != nil || len(out) != 0 {
			t.Errorf("n=%d: out=%v err=%v", n, out, err)
		}
	}
}

func TestForEachRunsEveryIndexOnce(t *testing.T) {
	const n = 500
	counts := make([]atomic.Int32, n)
	if err := ForEach(n, 8, func(i int) error {
		counts[i].Add(1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i := range counts {
		if c := counts[i].Load(); c != 1 {
			t.Errorf("index %d ran %d times", i, c)
		}
	}
}

func TestForEachSequentialFirstError(t *testing.T) {
	boom := errors.New("boom")
	var ran []int
	err := ForEach(10, 1, func(i int) error {
		ran = append(ran, i)
		if i >= 3 {
			return fmt.Errorf("at %d: %w", i, boom)
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if len(ran) != 4 {
		t.Errorf("sequential run did not stop at first error: ran %v", ran)
	}
}

func TestForEachParallelErrorCancels(t *testing.T) {
	const n = 10000
	var calls atomic.Int64
	err := ForEach(n, 4, func(i int) error {
		calls.Add(1)
		if i == 5 {
			return fmt.Errorf("cell %d failed", i)
		}
		return nil
	})
	if err == nil {
		t.Fatal("expected an error")
	}
	// Cancellation is advisory (in-flight work completes) but must stop the
	// pool well before the whole range is consumed.
	if c := calls.Load(); c == n {
		t.Errorf("error did not cancel remaining work: %d calls", c)
	}
}

func TestForEachReturnsLowestObservedError(t *testing.T) {
	// Every index fails; with dynamic scheduling the set of attempted
	// indices varies, but index 0 is always attempted first by some worker,
	// so the reported error must be index 0's.
	err := ForEach(64, 4, func(i int) error {
		return fmt.Errorf("fail %d", i)
	})
	if err == nil || err.Error() != "fail 0" {
		t.Errorf("err = %v, want fail 0", err)
	}
}

func TestSeedStreamStableAcrossRuns(t *testing.T) {
	a, b := NewSeedStream(42), NewSeedStream(42)
	for cell := uint64(0); cell < 1000; cell++ {
		if a.Seed(cell) != b.Seed(cell) {
			t.Fatalf("cell %d: streams with equal base diverge", cell)
		}
	}
	// Pin a few concrete values so an accidental change to the hash (which
	// would silently change every experiment table) is caught.
	got := []uint64{NewSeedStream(1).Seed(0), NewSeedStream(1).Seed(1), NewSeedStream(2).Seed(0)}
	for i, v := range got {
		if v == 0 {
			t.Errorf("pinned seed %d is zero", i)
		}
	}
	if got[0] == got[1] || got[0] == got[2] {
		t.Errorf("pinned seeds collide: %v", got)
	}
}

func TestSeedStreamDistinctAcrossCells(t *testing.T) {
	s := NewSeedStream(7)
	seen := make(map[uint64]uint64, 100000)
	for cell := uint64(0); cell < 100000; cell++ {
		v := s.Seed(cell)
		if prev, dup := seen[v]; dup {
			t.Fatalf("cells %d and %d share seed %#x", prev, cell, v)
		}
		seen[v] = cell
	}
}

// TestSeedStreamAdjacentBasesDoNotOverlap covers the bug the stream
// replaces: with the additive base+trial*7919 derivation, bases b and
// b+7919 produced overlapping trial-seed sequences. Hashed streams from
// nearby bases must be disjoint over any realistic trial count.
func TestSeedStreamAdjacentBasesDoNotOverlap(t *testing.T) {
	const trials = 10000
	seen := make(map[uint64]bool, 4*trials)
	for _, base := range []uint64{1, 2, 3, 1 + 7919} {
		s := NewSeedStream(base)
		for cell := uint64(0); cell < trials; cell++ {
			v := s.Seed(cell)
			if seen[v] {
				t.Fatalf("base %d cell %d: seed %#x already produced by another base", base, cell, v)
			}
			seen[v] = true
		}
	}
}

// TestAdditiveDerivationWasBroken documents the failure mode of the old
// scheme, guarding against a regression to it: shifted bases overlap.
func TestAdditiveDerivationWasBroken(t *testing.T) {
	old := func(base uint64, tr int) uint64 { return base + uint64(tr)*7919 }
	if old(1, 1) != old(1+7919, 0) {
		t.Fatal("expected the additive scheme to collide; test premise wrong")
	}
	s1, s2 := NewSeedStream(1), NewSeedStream(1+7919)
	if s1.Seed(1) == s2.Seed(0) {
		t.Error("hashed streams reproduce the additive collision")
	}
}

func TestForEachCtxPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var calls atomic.Int64
	for _, workers := range []int{1, 4} {
		err := ForEachCtx(ctx, 100, workers, func(i int) error {
			calls.Add(1)
			return nil
		})
		if !errors.Is(err, context.Canceled) {
			t.Errorf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
	}
	if c := calls.Load(); c != 0 {
		t.Errorf("pre-cancelled context still ran %d calls", c)
	}
}

func TestForEachCtxCancelMidSweep(t *testing.T) {
	// Cancel once a few cells have completed; the sweep must return
	// ctx.Err() promptly, well before the whole range is consumed.
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		const n = 100000
		var calls atomic.Int64
		done := make(chan error, 1)
		go func() {
			done <- ForEachCtx(ctx, n, workers, func(i int) error {
				if calls.Add(1) == 50 {
					cancel()
				}
				time.Sleep(50 * time.Microsecond)
				return nil
			})
		}()
		select {
		case err := <-done:
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("workers=%d: cancellation did not stop the sweep within deadline", workers)
		}
		if c := calls.Load(); c == n {
			t.Errorf("workers=%d: cancel did not cut the sweep short (%d calls)", workers, c)
		}
		cancel()
	}
}

func TestForEachCtxErrorBeatsCancellation(t *testing.T) {
	// A real per-cell error observed before cancellation wins over ctx.Err().
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	boom := errors.New("boom")
	err := ForEachCtx(ctx, 10, 1, func(i int) error {
		if i == 2 {
			cancel()    // takes effect before index 3 would start
			return boom // but this error is recorded first
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Errorf("err = %v, want the per-cell error", err)
	}
}

func TestMapCtxCancelDiscardsResults(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	out, err := MapCtx(ctx, 10, 4, func(i int) (int, error) { return i, nil })
	if !errors.Is(err, context.Canceled) || out != nil {
		t.Errorf("out=%v err=%v, want nil + context.Canceled", out, err)
	}
}

func TestPanicBecomesError(t *testing.T) {
	for _, workers := range []int{1, 4} {
		err := ForEach(64, workers, func(i int) error {
			if i == 7 {
				panic("kaboom")
			}
			return nil
		})
		var pe *PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("workers=%d: err = %v, want *PanicError", workers, err)
		}
		if pe.Value != "kaboom" {
			t.Errorf("workers=%d: panic value = %v", workers, pe.Value)
		}
		if workers == 1 && pe.Index != 7 {
			t.Errorf("sequential panic index = %d, want 7", pe.Index)
		}
		if len(pe.Stack) == 0 || !strings.Contains(string(pe.Stack), "TestPanicBecomesError") {
			t.Errorf("workers=%d: stack does not reference the panicking frame:\n%s", workers, pe.Stack)
		}
		if !strings.Contains(err.Error(), "kaboom") {
			t.Errorf("workers=%d: Error() = %q lacks panic value", workers, err.Error())
		}
	}
}

func TestPanicReportsLowestIndexLikeErrors(t *testing.T) {
	// Index 0 is always attempted, so the reported panic is index 0's.
	err := ForEach(64, 4, func(i int) error {
		panic(i)
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PanicError", err)
	}
	if pe.Index != 0 || pe.Value != 0 {
		t.Errorf("panic reported index=%d value=%v, want index 0", pe.Index, pe.Value)
	}
}

func TestMapPanicInOneCell(t *testing.T) {
	out, err := Map(32, 4, func(i int) (int, error) {
		if i == 3 {
			panic("cell 3")
		}
		return i, nil
	})
	var pe *PanicError
	if !errors.As(err, &pe) || out != nil {
		t.Fatalf("out=%v err=%v, want nil + *PanicError", out, err)
	}
}
