package chaos

import (
	"context"
	"fmt"
	"reflect"
	"runtime"
	"testing"
	"time"
)

// soakOpts is a small, fast configuration exercising every moving part:
// high rate so episodes overlap repairs, short horizon, coarse epsilon.
func soakOpts() Options {
	return Options{
		K: 4, Rate: 2, Horizon: 6, WindowCost: 0.25, BatchSize: 1,
		SLOThreshold: 0.9, Epsilon: 0.3, Seed: 11, Parallelism: 1,
	}
}

func TestSoakValidation(t *testing.T) {
	ctx := context.Background()
	bad := []Options{
		{K: 3, Rate: 1, Horizon: 1, WindowCost: 0.1, SLOThreshold: 0.9},
		{K: 4, Rate: 0, Horizon: 1, WindowCost: 0.1, SLOThreshold: 0.9},
		{K: 4, Rate: 1, Horizon: 0, WindowCost: 0.1, SLOThreshold: 0.9},
		{K: 4, Rate: 1, Horizon: 1, WindowCost: 0, SLOThreshold: 0.9},
		{K: 4, Rate: 1, Horizon: 1, WindowCost: 0.1, SLOThreshold: 0},
		{K: 4, Rate: 1, Horizon: 1, WindowCost: 0.1, SLOThreshold: 1.5},
		{K: 4, Rate: 1, Horizon: 1, WindowCost: 0.1, SLOThreshold: 0.9, MaxEpisodes: -1},
		{K: 4, Rate: 1, Horizon: 1, WindowCost: 0.1, SLOThreshold: 0.9,
			Mix: Mix{LinkBurst: 1, BurstFraction: 1.5}},
	}
	for i, o := range bad {
		if _, err := Run(ctx, o); err == nil {
			t.Errorf("options %d accepted: %+v", i, o)
		}
	}
}

// TestSoakLiveArm: the self-healing arm produces episodes, windows, a
// normalized series covering the horizon, and repaired episodes with
// positive latency.
func TestSoakLiveArm(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	res, err := Run(ctx, soakOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Episodes) == 0 {
		t.Fatal("soak produced no episodes")
	}
	if res.Windows == 0 {
		t.Error("live soak executed no dark windows")
	}
	total := 0.0
	for _, s := range res.Samples {
		if s.Dur <= 0 {
			t.Errorf("sample at t=%g has non-positive duration %g", s.T, s.Dur)
		}
		if s.Served < 0 || s.Served > 1+1e-9 {
			t.Errorf("sample at t=%g served=%g out of [0,1]", s.T, s.Served)
		}
		total += s.Dur
	}
	if diff := total - res.Horizon; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("series covers %g of horizon %g", total, res.Horizon)
	}
	if res.Lambda0 <= 0 {
		t.Errorf("baseline lambda %g not positive", res.Lambda0)
	}
	if res.SLO.Horizon == 0 {
		t.Error("SLO summary missing")
	}
	repaired := 0
	for _, ep := range res.Episodes {
		if ep.Latency >= 0 {
			repaired++
			// A zero-window repair can still carry the delivery delay of a
			// mid-window arrival, but never more than one window of it.
			if ep.Windows == 0 && ep.Latency >= soakOpts().WindowCost {
				t.Errorf("episode at t=%g repaired in %g with zero windows", ep.T, ep.Latency)
			}
		}
	}
	if repaired == 0 {
		t.Error("no episode was ever fully repaired")
	}
	if res.Replans == 0 {
		t.Error("rate 2 with window cost 0.25 should overlap at least one repair")
	}
}

// TestSoakControlArm: the fixed-cabling arm runs the same event stream
// with no control plane — no windows, no replans, nothing repaired.
func TestSoakControlArm(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	opt := soakOpts()
	opt.Control = true
	res, err := Run(ctx, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Episodes) == 0 {
		t.Fatal("control soak produced no episodes")
	}
	if res.Windows != 0 || res.Replans != 0 {
		t.Errorf("control arm executed windows=%d replans=%d", res.Windows, res.Replans)
	}
	for _, ep := range res.Episodes {
		if ep.Latency >= 0 {
			t.Errorf("control arm repaired an episode at t=%g", ep.T)
		}
	}
}

// fingerprint flattens the parts of a Result that must replay
// byte-identically from the seed.
func fingerprint(res *Result) string {
	s := fmt.Sprintf("h=%g l0=%.9g w=%d r=%d x=%v slo=%+v\n",
		res.Horizon, res.Lambda0, res.Windows, res.Replans, res.Excluded, res.SLO)
	for _, e := range res.Episodes {
		s += fmt.Sprintf("ep t=%.9g k=%s lat=%.9g w=%d fs=%d fl=%d\n",
			e.T, e.Kind, e.Latency, e.Windows, e.FailedSwitches, e.FailedLinks)
	}
	for _, sm := range res.Samples {
		s += fmt.Sprintf("s t=%.9g d=%.9g %s ep=%d win=%v frac=%.9g l=%.9g srv=%.9g\n",
			sm.T, sm.Dur, sm.Label, sm.Episode, sm.InWindow, sm.ServerFrac, sm.Lambda, sm.Served)
	}
	return s
}

// TestSoakDeterministicAcrossRunsAndWorkers: the full result — series,
// episode stats, SLO — replays byte-identically from the seed at any
// measurement parallelism, live TCP control plane and all.
func TestSoakDeterministicAcrossRunsAndWorkers(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 180*time.Second)
	defer cancel()
	opt := soakOpts()
	opt.Horizon = 4
	var prints []string
	var groups [][]GroupStats
	for _, workers := range []int{1, 4, 1} {
		o := opt
		o.Parallelism = workers
		res, err := Run(ctx, o)
		if err != nil {
			t.Fatal(err)
		}
		prints = append(prints, fingerprint(res))
		groups = append(groups, res.Groups)
	}
	if prints[0] != prints[1] {
		t.Errorf("soak differs across worker counts:\n--- w=1\n%s--- w=4\n%s", prints[0], prints[1])
	}
	if prints[0] != prints[2] {
		t.Errorf("soak differs across identical runs:\n--- run1\n%s--- run2\n%s", prints[0], prints[2])
	}
	// Warm-start accounting is part of the determinism contract too: the
	// per-group chains are a pure function of the series.
	if !reflect.DeepEqual(groups[0], groups[1]) {
		t.Errorf("group warm stats differ across worker counts: %+v vs %+v", groups[0], groups[1])
	}
}

// TestSoakNoGoroutineLeak: a finished soak leaves no plant goroutines
// behind (agents joined, controller closed, server stopped).
func TestSoakNoGoroutineLeak(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	before := runtime.NumGoroutine()
	opt := soakOpts()
	opt.Horizon = 2
	if _, err := Run(ctx, opt); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutines leaked: %d -> %d\n%s", before, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestSoakEpisodeCap: MaxEpisodes bounds the stream while the horizon
// still completes.
func TestSoakEpisodeCap(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	opt := soakOpts()
	opt.MaxEpisodes = 3
	res, err := Run(ctx, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Episodes) > 3 {
		t.Errorf("cap 3 spawned %d episodes", len(res.Episodes))
	}
	total := 0.0
	for _, s := range res.Samples {
		total += s.Dur
	}
	if diff := total - res.Horizon; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("capped series covers %g of horizon %g", total, res.Horizon)
	}
}
