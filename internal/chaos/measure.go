package chaos

import (
	"context"
	"fmt"
	"sort"

	"flattree/internal/graph"
	"flattree/internal/mcf"
	"flattree/internal/metrics"
	"flattree/internal/parallel"
	"flattree/internal/topo"
)

// largestComponentServers returns the servers of the largest connected
// component, ascending. Soak fabrics are legitimately missing servers
// (dark windows detach them, dead pods remove them); the surviving
// majority's service is the quantity the SLO judges.
func largestComponentServers(nw *topo.Network) []int {
	g := nw.Graph()
	servers := nw.Servers()
	seen := make([]bool, nw.N())
	var best []int
	for _, s := range servers {
		if seen[s] {
			continue
		}
		dist := g.BFS(s)
		var comp []int
		for _, sv := range servers {
			if dist[sv] >= 0 && !seen[sv] {
				seen[sv] = true
				comp = append(comp, sv)
			}
		}
		if len(comp) > len(best) {
			best = comp
		}
	}
	sort.Ints(best)
	return best
}

// componentCommodities gives each largest-component server unit demand to
// one seeded pseudo-random peer. One seed serves the whole soak: segment
// to segment the component shifts only gradually, so consecutive solves
// ride the solver's warm/rescale path instead of running cold.
func componentCommodities(comp []int, seed uint64) []mcf.Commodity {
	if len(comp) < 2 {
		return nil
	}
	perm := graph.NewRNG(seed).Perm(len(comp))
	comms := make([]mcf.Commodity, 0, len(comp))
	for i, p := range perm {
		if i == p {
			continue
		}
		comms = append(comms, mcf.Commodity{Src: comp[i], Dst: comp[p], Demand: 1})
	}
	return comms
}

// measure runs the λ sweep over the live loop's segments and folds the
// series into the availability summary. Segments are grouped by episode
// index; each group owns one pooled solver and walks its segments in
// series order, so consecutive solves of near-identical fabrics
// warm-start — and the grouping is a pure function of the series, keeping
// the result byte-identical at any worker count. Lambda0 comes from the
// first (baseline) segment, which always forms its own group.
func (e *engine) measure(ctx context.Context, baseline *topo.Network) (*Result, error) {
	res := &Result{
		Episodes: e.episodes,
		Windows:  e.windows,
		Replans:  e.replans,
		Excluded: append([]int(nil), e.excluded...),
		Horizon:  e.opt.Horizon,
	}
	if len(e.spans) == 0 {
		return res, nil
	}
	baseServers := len(baseline.Servers())
	commSeed := e.stream.Seed(1 << 40)

	// Group consecutive spans by episode index.
	type group struct{ lo, hi int } // spans[lo:hi]
	var groups []group
	for i := 0; i < len(e.spans); {
		j := i + 1
		for j < len(e.spans) && e.spans[j].episode == e.spans[i].episode {
			j++
		}
		groups = append(groups, group{i, j})
		i = j
	}

	type cell struct {
		frac, lambda float64
		approx       bool
	}
	type groupOut struct {
		cells []cell
		stats GroupStats
	}
	outs, err := parallel.MapCtx(ctx, len(groups), e.opt.Parallelism, func(gi int) (groupOut, error) {
		g := groups[gi]
		s := mcf.GetSolver()
		defer s.Release()
		out := groupOut{
			cells: make([]cell, g.hi-g.lo),
			stats: GroupStats{Episode: e.spans[g.lo].episode},
		}
		for i := g.lo; i < g.hi; i++ {
			sp := e.spans[i]
			comp := largestComponentServers(sp.nw)
			c := cell{frac: float64(len(comp)) / float64(baseServers)}
			comms := componentCommodities(comp, commSeed)
			if len(comms) > 0 {
				r, err := s.Solve(ctx, sp.nw, comms, mcf.Options{
					Epsilon: e.opt.Epsilon, SkipDualBound: true,
					TimeBudget: e.opt.SolveBudget, SSSP: e.opt.SSSP})
				if err != nil {
					return groupOut{}, fmt.Errorf("chaos: measure t=%g (%s): %w", sp.t, sp.label, err)
				}
				c.lambda, c.approx = r.Lambda, r.Approximate
				out.stats.Solves++
				if r.WarmStarted {
					out.stats.Warm++
				}
			}
			out.cells[i-g.lo] = c
		}
		return out, nil
	})
	if err != nil {
		return res, err
	}

	var cells []cell
	for _, o := range outs {
		cells = append(cells, o.cells...)
		res.Groups = append(res.Groups, o.stats)
	}
	res.Lambda0 = cells[0].lambda

	segs := make([]metrics.Segment, 0, len(e.spans))
	for i, sp := range e.spans {
		c := cells[i]
		served := c.frac
		if res.Lambda0 > 0 {
			rel := c.lambda / res.Lambda0
			if rel < 1 {
				served *= rel
			}
		} else if c.lambda <= 0 {
			served = 0
		}
		res.Samples = append(res.Samples, Sample{
			T: sp.t, Dur: sp.dur, Label: sp.label,
			Episode: sp.episode, InWindow: sp.inWindow,
			ServerFrac: c.frac, Lambda: c.lambda, Served: served,
			Approx: c.approx,
		})
		segs = append(segs, metrics.Segment{Dur: sp.dur, Value: served})
	}
	slo, err := metrics.SLO(segs, e.opt.SLOThreshold)
	if err != nil {
		return res, err
	}
	res.SLO = slo
	return res, nil
}
