// Package chaos is a deterministic long-horizon soak engine: it drives a
// seeded Poisson/correlated stream of failure episodes (faults.Scenario)
// against a live control plane (ctrl.Controller with heartbeating TCP
// agents) while a generalized repair loop heals concurrently, and emits
// the availability time series operators judge such fabrics by.
//
// Everything runs on a virtual clock: episode arrivals, dark-window costs
// and the horizon are virtual time, so a soak replays byte-identically
// from its seed regardless of wall-clock scheduling, worker count, or TCP
// timing. The only wall-clock in the engine is the heartbeat machinery of
// the live control plane, which never feeds the series.
//
// Episode overlap policy: a new episode may land while a repair is in
// flight. The executed windows are kept (their links are real), the
// in-flight remainder is abandoned, the new damage is composed onto the
// snapshot (faults.Compose on Repair.Outcome), and a successor repair is
// replanned over the union — carrying the predecessor's excluded pods and
// remaining retry budget, so the retry-then-exclude machinery bounds the
// whole chain, not each link. Episodes due mid-window are delivered at
// the window boundary: a dark window is the §2.7 atomic unit.
package chaos

import (
	"context"
	"fmt"
	"math"
	"net"
	"time"

	"flattree/internal/core"
	"flattree/internal/ctrl"
	"flattree/internal/fattree"
	"flattree/internal/faults"
	"flattree/internal/graph"
	"flattree/internal/mcf"
	"flattree/internal/metrics"
	"flattree/internal/parallel"
	"flattree/internal/topo"
)

// EpisodeKind classifies one failure episode of the soak stream.
type EpisodeKind uint8

const (
	// LinkBurst fails a fraction of one random pod's links together (a
	// shared power feed or patch panel going down).
	LinkBurst EpisodeKind = iota
	// SwitchKill fails one uniformly chosen surviving switch.
	SwitchKill
	// ConverterKill kills a fraction of converter blocks, pinning their
	// surviving links (flat-tree arm; a no-op on fixed cabling).
	ConverterKill
	// PodKill takes a whole surviving pod down — switches, servers, and
	// on the live arm its agent, so the heartbeat monitor sees the death.
	PodKill
)

func (k EpisodeKind) String() string {
	switch k {
	case LinkBurst:
		return "link-burst"
	case SwitchKill:
		return "switch-kill"
	case ConverterKill:
		return "conv-kill"
	case PodKill:
		return "pod-kill"
	}
	return fmt.Sprintf("kind-%d", uint8(k))
}

// Mix weights the episode kinds and shapes their severity. Weights are
// relative (they need not sum to 1); a zero weight disables the kind.
type Mix struct {
	LinkBurst, SwitchKill, ConverterKill, PodKill float64
	// BurstFraction is the fraction of a burst pod's links that fail.
	BurstFraction float64
	// ConverterFraction is the fraction of converter blocks a
	// ConverterKill episode takes down.
	ConverterFraction float64
	// Aftershock is the probability that the next inter-arrival is drawn
	// at aftershockRate times the base rate — failures cluster in time
	// (correlated aftershocks), as production fault streams do.
	Aftershock float64
}

// aftershockRate is the rate multiplier for aftershock inter-arrivals.
const aftershockRate = 8.0

// DefaultMix weights small correlated damage over catastrophic loss,
// roughly how production fault streams skew.
func DefaultMix() Mix {
	return Mix{
		LinkBurst: 5, SwitchKill: 3, ConverterKill: 1, PodKill: 1,
		BurstFraction: 0.3, ConverterFraction: 0.25, Aftershock: 0.25,
	}
}

func (m Mix) total() float64 {
	return m.LinkBurst + m.SwitchKill + m.ConverterKill + m.PodKill
}

// Options configures one soak run.
type Options struct {
	// K is the fat-tree arity of the plant.
	K int
	// Rate is the base episode arrival rate in episodes per unit virtual
	// time; Horizon is the virtual duration of the soak.
	Rate    float64
	Horizon float64
	// MaxEpisodes caps how many episodes spawn (0 = unlimited); the soak
	// still runs to Horizon after the cap so in-flight repairs finish.
	MaxEpisodes int
	// WindowCost is the virtual time one dark window occupies.
	WindowCost float64
	// BatchSize is the repair batch (pods re-aimed per dark window).
	BatchSize int
	// Mix selects the episode mix; the zero value means DefaultMix.
	Mix Mix
	// SLOThreshold is the served-capacity fraction the availability
	// verdict is judged against, in (0,1].
	SLOThreshold float64
	// Epsilon, SolveBudget and SSSP configure the λ measurement solves.
	Epsilon     float64
	SolveBudget time.Duration
	SSSP        mcf.SSSPKernel
	// Seed derives every random choice of the run via parallel.SeedStream.
	Seed uint64
	// Parallelism fans the measurement phase out (0 = all cores).
	Parallelism int
	// Control selects the fixed-cabling fat-tree control arm: identical
	// event stream, no control plane, no healing. The comparison against
	// the self-healing flat-tree under the same seed is the §5 argument.
	Control bool
}

func (o *Options) validate() error {
	if o.K < 4 || o.K%2 != 0 {
		return fmt.Errorf("chaos: k=%d must be an even integer >= 4", o.K)
	}
	if o.Rate <= 0 {
		return fmt.Errorf("chaos: rate %g must be positive", o.Rate)
	}
	if o.Horizon <= 0 {
		return fmt.Errorf("chaos: horizon %g must be positive", o.Horizon)
	}
	if o.MaxEpisodes < 0 {
		return fmt.Errorf("chaos: max episodes %d must be >= 0", o.MaxEpisodes)
	}
	if o.WindowCost <= 0 {
		return fmt.Errorf("chaos: window cost %g must be positive", o.WindowCost)
	}
	if o.SLOThreshold <= 0 || o.SLOThreshold > 1 {
		return fmt.Errorf("chaos: SLO threshold %g out of (0,1]", o.SLOThreshold)
	}
	if o.Mix == (Mix{}) {
		o.Mix = DefaultMix()
	}
	if o.Mix.total() <= 0 {
		return fmt.Errorf("chaos: episode mix has no positive weight")
	}
	if o.Mix.BurstFraction < 0 || o.Mix.BurstFraction >= 1 {
		return fmt.Errorf("chaos: burst fraction %g out of [0,1)", o.Mix.BurstFraction)
	}
	if o.Mix.ConverterFraction < 0 || o.Mix.ConverterFraction > 1 {
		return fmt.Errorf("chaos: converter fraction %g out of [0,1]", o.Mix.ConverterFraction)
	}
	if o.Mix.Aftershock < 0 || o.Mix.Aftershock > 1 {
		return fmt.Errorf("chaos: aftershock probability %g out of [0,1]", o.Mix.Aftershock)
	}
	if o.BatchSize <= 0 {
		o.BatchSize = 1
	}
	return nil
}

// Sample is one segment of the soak's piecewise-constant time series: the
// fabric held this state for Dur virtual time starting at T.
type Sample struct {
	T, Dur float64
	// Label names the state: "baseline", "degraded", "window", "healed".
	Label string
	// Episode indexes the most recent episode at segment start (-1 for
	// the pre-damage baseline); InWindow marks dark-window segments.
	Episode  int
	InWindow bool
	// ServerFrac is the largest component's server count over the
	// pre-damage baseline's. Lambda is the max-concurrent-flow of the
	// seeded permutation workload on the largest component; Served is
	// ServerFrac scaled by λ/λ0 (capped at 1) — the service fraction the
	// SLO is judged on. A fabric can stay connected while λ collapses,
	// so the objective must track throughput, not reachability.
	ServerFrac float64
	Lambda     float64
	Served     float64
	// Approx marks a λ from a solve that stopped at its time budget.
	Approx bool
}

// EpisodeStat records one episode of the stream.
type EpisodeStat struct {
	// T is the episode's arrival time (it takes effect at the next
	// window boundary when a repair is mid-window).
	T    float64
	Kind EpisodeKind
	// Latency is the virtual time from arrival until a repair covering
	// the episode completed fully; -1 when it never did (control arm,
	// partial repair, or horizon cut the repair off).
	Latency float64
	// Windows counts dark windows executed between this episode's
	// arrival and its repair completing (overlapping episodes share
	// windows).
	Windows int
	// FailedSwitches/FailedLinks is the damage this episode added.
	FailedSwitches, FailedLinks int
}

// GroupStats reports the λ-measurement warm-start behavior of one episode
// group (all segments sharing Episode index, solved in series order on one
// pooled solver).
type GroupStats struct {
	Episode int
	Solves  int
	Warm    int
}

// Result is one soak run's full record.
type Result struct {
	Samples  []Sample
	Episodes []EpisodeStat
	// Windows and Replans count executed dark windows and mid-repair
	// replans across the run; Excluded is the final excluded-pod set.
	Windows  int
	Replans  int
	Excluded []int
	// Lambda0 is the pre-damage baseline λ the series is normalized by.
	Lambda0 float64
	Horizon float64
	SLO     metrics.SLOSummary
	Groups  []GroupStats
}

// span is a segment of the live loop before measurement.
type span struct {
	t, dur   float64
	label    string
	episode  int
	inWindow bool
	nw       *topo.Network
}

// engine is the per-run state of the soak loop.
type engine struct {
	opt    Options
	stream parallel.SeedStream
	// arrivals and kinds are drawn from dedicated RNGs so the episode
	// schedule is independent of how each episode's scenario spends its
	// own randomness.
	arrivalRNG *graph.RNG

	// live-arm plant (nil on the control arm)
	c       *ctrl.Controller
	cancels []context.CancelFunc
	killed  []bool

	cur      *faults.Outcome // damage state when no repair is in flight
	rep      *ctrl.Repair
	excluded []int
	retries  int // carried retry budget; -1 before any repair
	planIdx  int

	t        float64
	nextT    float64
	spans    []span
	episodes []EpisodeStat
	// windowsAt[i] is the total window count when episode i arrived.
	windowsAt []int
	windows   int
	replans   int
}

// interarrival draws the next episode gap: exponential at the base rate,
// compressed by aftershockRate with probability Mix.Aftershock.
func (e *engine) interarrival() float64 {
	rate := e.opt.Rate
	if e.arrivalRNG.Float64() < e.opt.Mix.Aftershock {
		rate *= aftershockRate
	}
	// The RNG has no exponential variate; invert the CDF. 1-U is in
	// (0,1], so the log argument never hits zero.
	return -math.Log(1-e.arrivalRNG.Float64()) / rate
}

// currentNet is the effective fabric between windows.
func (e *engine) currentNet() *topo.Network {
	if e.rep != nil && !e.rep.Done() {
		return e.rep.CurrentNet()
	}
	return e.cur.Net
}

// addSpan appends a segment, skipping zero/negative durations and
// clipping at the horizon.
func (e *engine) addSpan(t, dur float64, label string, inWindow bool, nw *topo.Network) {
	if t+dur > e.opt.Horizon {
		dur = e.opt.Horizon - t
	}
	if dur <= 0 {
		return
	}
	e.spans = append(e.spans, span{
		t: t, dur: dur, label: label,
		episode: len(e.episodes) - 1, inWindow: inWindow, nw: nw,
	})
}

// drawScenario turns one episode draw into a concrete faults.Scenario
// against the current damage state. It also reports the kind, and on the
// live arm performs the PodKill agent death (the only wall-clock side
// effect; it never feeds the series).
func (e *engine) drawScenario(ctx context.Context, rng *graph.RNG, base *faults.Outcome) (faults.Scenario, EpisodeKind, error) {
	m := e.opt.Mix
	kind := LinkBurst
	// Weighted kind draw in fixed order.
	u := rng.Float64() * m.total()
	switch {
	case u < m.LinkBurst:
		kind = LinkBurst
	case u < m.LinkBurst+m.SwitchKill:
		kind = SwitchKill
	case u < m.LinkBurst+m.SwitchKill+m.ConverterKill:
		kind = ConverterKill
	default:
		kind = PodKill
	}

	switch kind {
	case SwitchKill:
		switches := base.Net.Switches()
		if len(switches) == 0 {
			break
		}
		return faults.Scenario{Switches: []int{switches[rng.Intn(len(switches))]}, Seed: rng.Uint64()}, kind, nil
	case ConverterKill:
		return faults.Scenario{ConverterFraction: m.ConverterFraction, Seed: rng.Uint64()}, kind, nil
	case PodKill:
		// A pod is killable while it still has switches and (on the live
		// arm) a live agent; otherwise fall through to a link burst.
		alive := make([]bool, e.opt.K)
		for _, s := range base.Net.Switches() {
			if p := base.Net.Nodes[s].Pod; p >= 0 && p < e.opt.K {
				alive[p] = true
			}
		}
		var pods []int
		for p, ok := range alive {
			if ok && (e.killed == nil || !e.killed[p]) {
				pods = append(pods, p)
			}
		}
		if len(pods) == 0 {
			break
		}
		pod := pods[rng.Intn(len(pods))]
		var switches []int
		for _, s := range base.Net.Switches() {
			if base.Net.Nodes[s].Pod == pod {
				switches = append(switches, s)
			}
		}
		if e.cancels != nil {
			// Kill the pod's agent and let the heartbeat monitor reach
			// its verdict before repair planning — wall-clock only.
			e.cancels[pod]()
			e.cancels[pod] = nil
			e.killed[pod] = true
			wctx, wcancel := context.WithTimeout(ctx, 30*time.Second)
			defer wcancel()
			if _, err := e.c.WaitForFailures(wctx, []int{pod}, heartbeatDeadline); err != nil {
				return faults.Scenario{}, kind, err
			}
		}
		return faults.Scenario{Switches: switches, Seed: rng.Uint64()}, kind, nil
	}
	// A burst needs a pod that still has switches. A fabric battered down
	// to nothing (the control arm never heals) absorbs a no-op episode —
	// the stream keeps its schedule, there is just nothing left to break.
	for _, s := range base.Net.Switches() {
		if base.Net.Nodes[s].Pod >= 0 {
			return faults.Scenario{BurstPods: 1, BurstLinkFraction: m.BurstFraction, Seed: rng.Uint64()}, LinkBurst, nil
		}
	}
	return faults.Scenario{Seed: rng.Uint64()}, LinkBurst, nil
}

// carriedRetries maps a remaining budget onto SelfHealOptions.MaxRetries
// (where zero means "default", so an exhausted budget must pass negative).
func carriedRetries(left int) int {
	if left <= 0 {
		return -1
	}
	return left
}

const heartbeatDeadline = 60 * time.Millisecond

// spawn delivers one episode: compose the new damage
// onto the current state (snapshotting and abandoning an in-flight
// repair) and, on the live arm, plan the successor repair.
func (e *engine) spawn(ctx context.Context) error {
	i := len(e.episodes)
	rng := graph.NewRNG(e.stream.Seed(uint64(i)))

	base := e.cur
	midRepair := e.rep != nil && !e.rep.Done()
	if midRepair {
		base = e.rep.Outcome(fmt.Sprintf("soak-ep%d-base", i))
		e.excluded = e.rep.Excluded()
		e.retries = e.rep.RetriesLeft()
		e.replans++
	}
	sc, kind, err := e.drawScenario(ctx, rng, base)
	if err != nil {
		return err
	}
	out, err := faults.Compose(base, sc)
	if err != nil {
		return fmt.Errorf("chaos: episode %d (%s): %w", i, kind, err)
	}
	e.episodes = append(e.episodes, EpisodeStat{
		T: e.nextT, Kind: kind, Latency: -1,
		FailedSwitches: out.FailedSwitches - base.FailedSwitches,
		FailedLinks:    out.FailedLinks - base.FailedLinks,
	})
	e.windowsAt = append(e.windowsAt, e.windows)
	e.cur = out
	e.rep = nil
	if e.c != nil {
		opt := ctrl.SelfHealOptions{
			Seed:      e.stream.Seed(1<<32 | uint64(e.planIdx)),
			BatchSize: e.opt.BatchSize,
			Exclude:   e.excluded,
		}
		if e.retries >= 0 {
			opt.MaxRetries = carriedRetries(e.retries)
		}
		e.planIdx++
		r, err := e.c.PlanRepair(out, opt)
		if err != nil {
			return fmt.Errorf("chaos: episode %d (%s): plan: %w", i, kind, err)
		}
		e.rep = r
		if r.Done() {
			e.settleRepair(e.t)
		}
	}
	return nil
}

// settleRepair folds a finished repair back into the damage state and
// closes the episodes it covered (unless it degraded to Partial).
func (e *engine) settleRepair(now float64) {
	rep := e.rep.Report()
	e.excluded = e.rep.Excluded()
	e.retries = e.rep.RetriesLeft()
	e.cur = e.rep.Outcome(fmt.Sprintf("soak-healed-%d", e.planIdx))
	if !rep.Partial {
		for i := range e.episodes {
			if e.episodes[i].Latency < 0 {
				e.episodes[i].Latency = now - e.episodes[i].T
				e.episodes[i].Windows = e.windows - e.windowsAt[i]
			}
		}
	}
	e.rep = nil
}

// Run executes one soak: the live event loop on the virtual clock, then
// the parallel λ measurement over the emitted segments, folded into the
// SLO summary. On context cancellation it returns the partial result
// alongside the error, so an interrupted soak still reports what it saw.
func Run(ctx context.Context, opt Options) (*Result, error) {
	if err := opt.validate(); err != nil {
		return nil, err
	}
	e := &engine{
		opt:        opt,
		stream:     parallel.NewSeedStream(opt.Seed),
		arrivalRNG: graph.NewRNG(parallel.NewSeedStream(opt.Seed).Seed(1 << 48)),
		retries:    -1,
	}

	var baseline *topo.Network
	if opt.Control {
		f, err := fattree.New(opt.K)
		if err != nil {
			return nil, err
		}
		baseline = f.Net
	} else {
		ft, err := core.Build(core.Params{K: opt.K})
		if err != nil {
			return nil, err
		}
		if err := ft.SetUniformMode(core.ModeGlobalRandom); err != nil {
			return nil, err
		}
		baseline = ft.Net()

		c := ctrl.NewController(ft)
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		sctx, cancelServe := context.WithCancel(ctx)
		defer cancelServe()
		go c.Serve(sctx, l)

		e.c = c
		e.cancels = make([]context.CancelFunc, opt.K)
		e.killed = make([]bool, opt.K)
		dones := make([]chan struct{}, opt.K)
		defer func() {
			for _, cancel := range e.cancels {
				if cancel != nil {
					cancel()
				}
			}
			cancelServe()
			c.Close()
			for _, d := range dones {
				<-d
			}
		}()
		for p := 0; p < opt.K; p++ {
			a := ctrl.NewAgent(p, ctrl.ConfigsForPod(ft, p))
			a.HeartbeatInterval = 5 * time.Millisecond
			actx, cancel := context.WithCancel(ctx)
			e.cancels[p] = cancel
			done := make(chan struct{})
			dones[p] = done
			//flatlint:ignore ignorederr agent exit races soak teardown; liveness is asserted via WaitForAgents/WaitForFailures
			go func() { _ = a.Run(actx, l.Addr().String()); close(done) }()
		}
		wctx, wcancel := context.WithTimeout(ctx, 30*time.Second)
		defer wcancel()
		if err := c.WaitForAgents(wctx, opt.K); err != nil {
			return nil, err
		}
	}
	e.cur = &faults.Outcome{Net: baseline}
	e.nextT = e.interarrival()

	loopErr := e.loop(ctx)
	res, err := e.measure(ctx, baseline)
	if loopErr != nil {
		return res, loopErr
	}
	return res, err
}

// canSpawn reports whether the episode cap still admits a new episode.
func (e *engine) canSpawn() bool {
	return e.opt.MaxEpisodes == 0 || len(e.episodes) < e.opt.MaxEpisodes
}

// loop is the virtual-clock event loop: windows are the atomic time unit,
// episodes are delivered between them, idle time coasts to the next
// arrival.
func (e *engine) loop(ctx context.Context) error {
	for e.t < e.opt.Horizon {
		if err := ctx.Err(); err != nil {
			return err
		}
		// Deliver every episode due by now (due mid-window episodes land
		// here, at the boundary).
		for e.canSpawn() && e.nextT <= e.t {
			if err := e.spawn(ctx); err != nil {
				return err
			}
			e.nextT += e.interarrival()
		}
		if e.rep != nil && !e.rep.Done() {
			// One dark window occupies [t, t+WindowCost).
			w, err := e.rep.Step(ctx)
			if err != nil {
				return err
			}
			if w != nil {
				e.addSpan(e.t, e.opt.WindowCost, "window", true, w.Dark)
				e.t += e.opt.WindowCost
				e.windows++
			}
			if e.rep.Done() {
				e.settleRepair(e.t)
			}
			continue
		}
		// Idle: coast to the next arrival (or the horizon).
		label := "healed"
		if len(e.episodes) == 0 {
			label = "baseline"
		} else if e.damaged() {
			label = "degraded"
		}
		until := e.opt.Horizon
		if e.canSpawn() && e.nextT < until {
			until = e.nextT
		}
		e.addSpan(e.t, until-e.t, label, false, e.currentNet())
		e.t = until
	}
	return nil
}

// damaged reports whether any episode is still unrepaired (open).
func (e *engine) damaged() bool {
	for i := range e.episodes {
		if e.episodes[i].Latency < 0 {
			return true
		}
	}
	return false
}
