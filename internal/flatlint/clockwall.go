package flatlint

import (
	"go/ast"
	"go/types"
)

// clockwall confines wall-clock reads. Experiment tables must be a pure
// function of (topology, seed) — a time.Now that leaks into a result is
// nondeterminism the byte-identical-tables contract cannot survive, and
// unlike map ordering it does not even reproduce on the same machine.
//
// Two rules:
//
//  1. Direct: every time.Now/Since/Until in internal library code is a
//     finding. The justified sites — ctrl's liveness deadlines and write
//     timeouts, mcf's solver time budgets — each carry a reasoned
//     //flatlint:ignore directive, so the allowlist lives in the source
//     next to the read it excuses.
//
//  2. Transitive: in the deterministic packages (graph, topo, routing,
//     metrics, experiments) a function must not *reach* a wall-clock
//     read through any call chain. Propagation treats internal/ctrl and
//     internal/mcf as trust boundaries — their clock use shapes budgets
//     and liveness, not table values — so a driver may run budgeted
//     solves and stand up control planes. The finding lands on the call
//     site inside the deterministic package and names the chain.
func runClockwall(pc *pkgChecker) {
	info := pc.pkg.Info
	for _, f := range pc.pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := info.Uses[sel.Sel]
			if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "time" {
				return true
			}
			if _, isFn := obj.(*types.Func); !isFn || !clockFuncs[obj.Name()] {
				return true
			}
			pc.reportf("clockwall", sel.Pos(),
				"wall-clock read time.%s in library code; results must be a function of the seed — justify the read with a directive or keep it behind the ctrl/mcf budget boundary", obj.Name())
			return true
		})
	}
	if !deterministicPkgs[pc.pkg.RelPath] || pc.prog == nil {
		return
	}
	for _, s := range pc.prog.byPkg[pc.pkg.Path] {
		rc := pc.prog.clock[s.fn]
		if rc == nil || rc.depth == 0 {
			continue // depth 0 is a direct read, already reported above
		}
		pc.reportf("clockwall", rc.site,
			"%s transitively reaches a wall-clock read (%s); deterministic table-building code must not depend on wall time",
			pc.prog.shortName(s.fn), pc.prog.path(rc.via, pc.prog.clock, clockSinkOf))
	}
}
