package flatlint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"flattree/internal/parallel"
)

// This file is phase 1.5 and phase 2 of the engine: per-function
// summaries and their propagation over the call graph.
//
// A summary records, for one declared function (function literals nested
// in its body fold into it), the static module-local calls it makes and
// whether it directly touches one of the analyzer sinks: a wall-clock
// read (time.Now/Since/Until), an RNG constructed from a compile-time
// constant seed (graph.NewRNG(42), rand.NewSource(1)), or a process exit
// (os.Exit, log.Fatal*, runtime.Goexit). Propagation then answers "does
// this function *reach* a sink, and through which call chain" — the
// interprocedural question the clockwall, randflow, and maporder
// analyzers ask. Dynamic calls (interface methods, stored function
// values) are not resolved; that unsoundness is acceptable for a linter
// and keeps the call graph purely syntactic.

// callEdge is one static call site: callee plus the position of the call
// expression inside the caller. Edges keep source order, which makes the
// propagation's choice of witness chain deterministic.
type callEdge struct {
	callee *types.Func
	pos    token.Pos
}

// funcSummary is the phase-1 record for one declared function.
type funcSummary struct {
	fn   *types.Func
	pkg  *Pkg
	decl *ast.FuncDecl

	calls []callEdge // module-local static callees, first call site each

	clockPos  token.Pos // first direct wall-clock read (NoPos if none)
	clockSink string    // "time.Now", "time.Since", ...
	randPos   token.Pos // first constant-seed RNG construction
	randSink  string    // "graph.NewRNG(42)", "rand.NewSource(1)", ...
	exitPos   token.Pos // first direct process exit
}

// reach is the phase-2 result for one function and one sink kind: the
// shortest known call distance to the sink, the position *inside this
// function* to report at (the direct sink or the call that leads there),
// and the callee the taint arrived through (nil for a direct sink).
type reach struct {
	depth int
	site  token.Pos
	via   *types.Func
}

// program is the whole-module interprocedural index shared (read-only) by
// every package checker.
type program struct {
	module string
	fset   *token.FileSet
	sums   map[*types.Func]*funcSummary
	byPkg  map[string][]*funcSummary // import path -> summaries in decl order
	clock  map[*types.Func]*reach
	randc  map[*types.Func]*reach
	exits  map[*types.Func]*reach
}

// clockTrusted are the packages allowed to own wall-clock reads — ctrl
// (liveness deadlines, write timeouts) and mcf (solver time budgets).
// They are trust boundaries for propagation: a call into them contributes
// no clock taint to the caller, so experiments may run budgeted solves
// and stand up control planes without tripping clockwall. Their own
// direct reads still need reasoned //flatlint:ignore directives.
var clockTrusted = map[string]bool{
	"internal/ctrl": true,
	"internal/mcf":  true,
}

// deterministicPkgs are the packages whose outputs must be a pure
// function of (topology, seed): the graph substrate, the labeled
// topology, routing, metrics, and the experiment drivers that build the
// published tables. clockwall and randflow report transitive violations
// only here — elsewhere a helper reaching time.Now is someone else's
// problem until a deterministic package calls it.
var deterministicPkgs = map[string]bool{
	"internal/graph":       true,
	"internal/topo":        true,
	"internal/routing":     true,
	"internal/metrics":     true,
	"internal/experiments": true,
}

// buildProgram summarizes every loaded package (fanning out through
// internal/parallel) and propagates the three sink kinds to fixed points.
func buildProgram(r *Runner) (*program, error) {
	perPkg, err := parallel.Map(len(r.order), 0, func(i int) ([]*funcSummary, error) {
		return summarize(r.module, r.pkgs[r.order[i]]), nil
	})
	if err != nil {
		return nil, err
	}
	p := &program{
		module: r.module,
		fset:   r.fset,
		sums:   make(map[*types.Func]*funcSummary),
		byPkg:  make(map[string][]*funcSummary, len(r.order)),
	}
	var order []*funcSummary // global, deterministic: sorted pkgs, decl order
	for i, sums := range perPkg {
		p.byPkg[r.order[i]] = sums
		for _, s := range sums {
			p.sums[s.fn] = s
		}
		order = append(order, sums...)
	}
	p.clock = propagate(order, func(s *funcSummary) token.Pos { return s.clockPos },
		func(s *funcSummary) bool { return clockTrusted[s.pkg.RelPath] })
	p.randc = propagate(order, func(s *funcSummary) token.Pos { return s.randPos }, nil)
	p.exits = propagate(order, func(s *funcSummary) token.Pos { return s.exitPos }, nil)
	return p, nil
}

// summarize builds the phase-1 summaries for one package.
func summarize(module string, pkg *Pkg) []*funcSummary {
	var out []*funcSummary
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			s := &funcSummary{fn: obj, pkg: pkg, decl: fd}
			seen := make(map[*types.Func]bool)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				callee := calleeOf(pkg.Info, call)
				if callee == nil || callee.Pkg() == nil {
					return true
				}
				path, name := callee.Pkg().Path(), callee.Name()
				switch {
				case path == "time" && clockFuncs[name]:
					if s.clockPos == token.NoPos {
						s.clockPos, s.clockSink = call.Pos(), "time."+name
					}
				case isExitCall(path, name):
					if s.exitPos == token.NoPos {
						s.exitPos = call.Pos()
					}
				case path == module || strings.HasPrefix(path, module+"/"):
					if !seen[callee] {
						seen[callee] = true
						s.calls = append(s.calls, callEdge{callee: callee, pos: call.Pos()})
					}
				}
				if desc, ok := randCtorSink(pkg.Info, call, callee); ok && s.randPos == token.NoPos {
					s.randPos, s.randSink = call.Pos(), desc
				}
				return true
			})
			out = append(out, s)
		}
	}
	return out
}

// clockFuncs are the time package's wall-clock reads. Timers and sleeps
// do not *observe* the clock into a result, so they are not sinks.
var clockFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

// isExitCall reports whether pkg.name can terminate the process.
func isExitCall(path, name string) bool {
	switch path {
	case "os":
		return name == "Exit"
	case "runtime":
		return name == "Goexit"
	case "log":
		return name == "Fatal" || name == "Fatalf" || name == "Fatalln"
	}
	return false
}

// randCtorSink reports whether call constructs a random generator from
// compile-time constant arguments — a hard-coded seed. Matched
// constructors: graph.NewRNG (by package suffix, so fixtures resolve
// too) and the math/rand source constructors.
func randCtorSink(info *types.Info, call *ast.CallExpr, callee *types.Func) (string, bool) {
	path, name := callee.Pkg().Path(), callee.Name()
	var short string
	switch {
	case strings.HasSuffix(path, "internal/graph") && name == "NewRNG":
		short = "graph"
	case (path == "math/rand" || path == "math/rand/v2") &&
		(name == "NewSource" || name == "NewPCG" || name == "NewChaCha8"):
		short = "rand"
	default:
		return "", false
	}
	if len(call.Args) == 0 {
		return "", false
	}
	args := make([]string, len(call.Args))
	for i, a := range call.Args {
		tv, ok := info.Types[a]
		if !ok || tv.Value == nil {
			return "", false // seed is not a constant: injected, so fine
		}
		args[i] = tv.Value.String()
	}
	return short + "." + name + "(" + strings.Join(args, ", ") + ")", true
}

// calleeOf resolves the static callee of a call expression: a package
// function, a method with a concrete receiver, or a qualified identifier.
// Interface calls and called function values resolve to nil.
func calleeOf(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// propagate computes, for every function, the shortest call distance to a
// direct sink (given by direct) over the static call graph. Functions for
// which stop returns true neither carry nor forward taint — they are the
// trust boundaries. The iteration is a deterministic Bellman-Ford-style
// fixed point: functions in global summary order, call edges in source
// order, and a function's reach only ever replaced by a strictly shorter
// one, so the chosen witness chains are reproducible run to run.
func propagate(order []*funcSummary, direct func(*funcSummary) token.Pos, stop func(*funcSummary) bool) map[*types.Func]*reach {
	out := make(map[*types.Func]*reach, len(order))
	for _, s := range order {
		if stop != nil && stop(s) {
			continue
		}
		if p := direct(s); p != token.NoPos {
			out[s.fn] = &reach{depth: 0, site: p}
		}
	}
	for changed := true; changed; {
		changed = false
		for _, s := range order {
			if stop != nil && stop(s) {
				continue
			}
			cur := out[s.fn]
			if cur != nil && cur.depth == 0 {
				continue // direct sinks are already minimal
			}
			best := cur
			for _, e := range s.calls {
				rc, ok := out[e.callee]
				if !ok || e.callee == s.fn {
					continue
				}
				if best == nil || rc.depth+1 < best.depth {
					best = &reach{depth: rc.depth + 1, site: e.pos, via: e.callee}
				}
			}
			if best != cur {
				out[s.fn] = best
				changed = true
			}
		}
	}
	return out
}

// shortName renders a function for a message with the module prefix
// stripped: "core.TickTock", "(*ctrl.Controller).Serve".
func (p *program) shortName(fn *types.Func) string {
	full := fn.FullName()
	full = strings.ReplaceAll(full, p.module+"/internal/", "")
	return strings.ReplaceAll(full, p.module+"/", "")
}

// path renders the witness chain from fn to the sink, e.g.
// "core.TickTock → core.tick → time.Now". sinkOf extracts the sink
// description from the directly-tainted summary at the end of the chain.
func (p *program) path(fn *types.Func, m map[*types.Func]*reach, sinkOf func(*funcSummary) string) string {
	var parts []string
	for hop := 0; fn != nil && hop < 12; hop++ {
		parts = append(parts, p.shortName(fn))
		rc := m[fn]
		if rc == nil {
			break
		}
		if rc.via == nil {
			if s := p.sums[fn]; s != nil {
				parts = append(parts, sinkOf(s))
			}
			break
		}
		fn = rc.via
	}
	return strings.Join(parts, " → ")
}

func clockSinkOf(s *funcSummary) string { return s.clockSink }
func randSinkOf(s *funcSummary) string  { return s.randSink }
