package flatlint

import (
	"os"
	"strings"
	"testing"
)

const fixtureDir = "testdata/src/flattree"

// TestFixturesGolden runs every analyzer over the fixture module — one
// intentionally-bad file per analyzer plus a clean one — and asserts the
// exact findings. The fixtures also exercise suppression: each bad file
// contains one directive-waived violation that must NOT appear here, and
// the baddirective fixture asserts that malformed or unused directives are
// themselves findings.
func TestFixturesGolden(t *testing.T) {
	r, err := NewRunner(fixtureDir)
	if err != nil {
		t.Fatal(err)
	}
	findings, err := r.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	var got strings.Builder
	for _, f := range findings {
		got.WriteString(f.String())
		got.WriteByte('\n')
	}
	want, err := os.ReadFile("testdata/expect.golden")
	if err != nil {
		t.Fatal(err)
	}
	if got.String() != string(want) {
		t.Errorf("fixture findings diverge from golden file\n--- got ---\n%s--- want ---\n%s", got.String(), want)
	}
}

// TestFixtureEveryAnalyzerFires guards the golden file itself: if an
// analyzer is added without a fixture (or a fixture rots), this fails even
// though the golden comparison would still pass.
func TestFixtureEveryAnalyzerFires(t *testing.T) {
	r, err := NewRunner(fixtureDir)
	if err != nil {
		t.Fatal(err)
	}
	findings, err := r.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	fired := make(map[string]bool)
	for _, f := range findings {
		fired[f.Analyzer] = true
	}
	for name := range knownAnalyzers {
		if !fired[name] {
			t.Errorf("analyzer %q produced no fixture finding; add a bad fixture for it", name)
		}
	}
}

// TestPatternSelectsPackage checks that a ./pkg pattern restricts the run
// to that package.
func TestPatternSelectsPackage(t *testing.T) {
	r, err := NewRunner(fixtureDir)
	if err != nil {
		t.Fatal(err)
	}
	findings, err := r.Run([]string{"./internal/mcf"})
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 1 {
		t.Fatalf("got %d findings for ./internal/mcf, want 1: %v", len(findings), findings)
	}
	if f := findings[0]; f.Analyzer != "nopanic" || f.File != "internal/mcf/bad_panic.go" {
		t.Errorf("unexpected finding %v", f)
	}
	if _, err := r.Run([]string{"./no/such/pkg"}); err == nil {
		t.Error("pattern for a missing package should error")
	}
}

// TestRepoIsClean is the gate that makes flatlint part of tier-1 verify:
// the repository's own packages must type-check and produce zero
// unsuppressed findings. If this fails, either fix the reported code or
// add a reasoned //flatlint:ignore directive.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads the whole module; skipped in -short mode")
	}
	r, err := NewRunner("../..")
	if err != nil {
		t.Fatal(err)
	}
	findings, err := r.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
}
