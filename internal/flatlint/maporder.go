package flatlint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// maporder flags ranging over a map where the loop body has an
// order-sensitive effect. Go randomizes map iteration order on purpose,
// so any such loop injects scheduling noise straight into results — the
// exact bug class behind the original seed-collision hunt: validation
// errors that name a different field per run, float sums whose digits
// depend on hash order, table rows emitted in shuffled order.
//
// Order-sensitive effects inside a map-range body:
//
//   - append: builds a slice in random order. Allowed when the slice is
//     passed to a sort.* / slices.Sort* call later in the same function
//     (the collect-keys-then-sort idiom is the canonical fix).
//   - floating-point compound accumulation (+=, -=, *=, /=): float
//     addition is not associative, so the sum's digits depend on order.
//   - channel send: delivers values in random order.
//   - emit calls (Print*, Fprint*, WriteString, Write, reportf): output
//     lands in random order.
//   - return of a value that references the iteration variables: which
//     entry returns first is random (first-error validation loops).
//   - calls that can terminate the run (directly or transitively via the
//     exit summaries — os.Exit, log.Fatal*, panic) with the iteration
//     variable as an argument: which entry trips first is random.
//
// Order-insensitive bodies — counting, integer sums, min/max scans,
// writes keyed by the loop variable into another map — are not flagged.
func runMaporder(pc *pkgChecker) {
	info := pc.pkg.Info
	for _, f := range pc.pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				rs, ok := n.(*ast.RangeStmt)
				if !ok || !isMapRange(info, rs) {
					return true
				}
				pc.checkMapRange(fd, rs)
				return true
			})
		}
	}
}

func isMapRange(info *types.Info, rs *ast.RangeStmt) bool {
	t := info.TypeOf(rs.X)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// checkMapRange scans one map-range body for order-sensitive effects.
// Nested map ranges are skipped — they get their own check — but nested
// slice ranges and function literals are scanned as part of this body.
func (pc *pkgChecker) checkMapRange(fd *ast.FuncDecl, rs *ast.RangeStmt) {
	info := pc.pkg.Info
	loopVars := rangeVarObjects(info, rs)
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.RangeStmt:
			if isMapRange(info, n) {
				return false
			}
		case *ast.SendStmt:
			pc.reportf("maporder", n.Arrow,
				"channel send inside a map range delivers in random order; iterate a sorted slice of keys instead")
		case *ast.AssignStmt:
			pc.checkMapRangeAssign(n)
		case *ast.CallExpr:
			pc.checkMapRangeCall(fd, rs, n, loopVars)
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if refersToAny(info, res, loopVars) {
					pc.reportf("maporder", n.Return,
						"return inside a map range depends on the iteration variable; which entry returns first is random — iterate a sorted slice of keys instead")
					break
				}
			}
		}
		return true
	})
}

// checkMapRangeAssign flags floating-point compound accumulation.
func (pc *pkgChecker) checkMapRangeAssign(as *ast.AssignStmt) {
	switch as.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
	default:
		return
	}
	if len(as.Lhs) == 1 && isFloat(pc.pkg.Info.TypeOf(as.Lhs[0])) {
		pc.reportf("maporder", as.TokPos,
			"floating-point %s inside a map range; float accumulation order changes the digits — iterate a sorted slice of keys instead", as.Tok)
	}
}

// emitNames are call names that write output; emitting inside a map range
// shuffles the output order.
var emitNames = map[string]bool{
	"print": true, "printf": true, "println": true,
	"fprint": true, "fprintf": true, "fprintln": true,
	"write": true, "writestring": true, "writebyte": true, "writerune": true,
	"reportf": true,
}

// checkMapRangeCall flags appends (unless sorted afterwards), emit calls,
// and calls that can terminate the run with a loop variable attached.
func (pc *pkgChecker) checkMapRangeCall(fd *ast.FuncDecl, rs *ast.RangeStmt, call *ast.CallExpr, loopVars map[types.Object]bool) {
	info := pc.pkg.Info

	// Builtin append.
	if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "append" {
		if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin && len(call.Args) > 0 {
			if obj := rootObject(info, call.Args[0]); obj == nil || !sortedAfter(info, fd, rs, obj) {
				pc.reportf("maporder", call.Pos(),
					"append inside a map range builds a slice in random order; sort it before use or iterate a sorted slice of keys")
			}
			return
		}
	}

	// Builtin panic with a loop variable: which entry panics first is random.
	if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
		if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin &&
			len(call.Args) == 1 && refersToAny(info, call.Args[0], loopVars) {
			pc.reportf("maporder", call.Pos(),
				"panic inside a map range carries the iteration variable; which entry panics first is random — iterate a sorted slice of keys instead")
			return
		}
	}

	name := calleeName(call)
	if emitNames[strings.ToLower(name)] {
		pc.reportf("maporder", call.Pos(),
			"%s inside a map range emits output in random order; iterate a sorted slice of keys instead", callName(call))
		return
	}

	// Exit-reaching calls (direct or via the interprocedural exit
	// summaries) that pass the iteration variable: first-failure
	// semantics in map order.
	callee := calleeOf(info, call)
	if callee == nil || callee.Pkg() == nil {
		return
	}
	exits := isExitCall(callee.Pkg().Path(), callee.Name())
	if !exits && pc.prog != nil {
		_, exits = pc.prog.exits[callee]
	}
	if !exits {
		return
	}
	for _, a := range call.Args {
		if refersToAny(info, a, loopVars) {
			pc.reportf("maporder", call.Pos(),
				"call to %s (which can terminate the run) inside a map range passes the iteration variable; which entry trips first is random — iterate a sorted slice of keys instead", callName(call))
			return
		}
	}
}

// rangeVarObjects collects the objects of the range's key and value
// variables (both := and = forms).
func rangeVarObjects(info *types.Info, rs *ast.RangeStmt) map[types.Object]bool {
	vars := make(map[types.Object]bool, 2)
	for _, e := range []ast.Expr{rs.Key, rs.Value} {
		id, ok := e.(*ast.Ident)
		if !ok {
			continue
		}
		if obj := info.Defs[id]; obj != nil {
			vars[obj] = true
		} else if obj := info.Uses[id]; obj != nil {
			vars[obj] = true
		}
	}
	return vars
}

// refersToAny reports whether expr mentions any of the given objects.
func refersToAny(info *types.Info, expr ast.Expr, objs map[types.Object]bool) bool {
	if len(objs) == 0 {
		return false
	}
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && objs[info.Uses[id]] {
			found = true
		}
		return !found
	})
	return found
}

// rootObject resolves the variable an append targets; selector and index
// targets (fields, map values) resolve to nil, which means "cannot prove
// it gets sorted".
func rootObject(info *types.Info, expr ast.Expr) types.Object {
	if id, ok := expr.(*ast.Ident); ok {
		return info.Uses[id]
	}
	return nil
}

// sortSelNames are the non-Sort-prefixed sort-package entry points.
var sortSelNames = map[string]bool{
	"Strings": true, "Ints": true, "Float64s": true,
	"Slice": true, "SliceStable": true, "Stable": true,
}

// sortedAfter reports whether obj is passed to a sort.* or slices.Sort*
// call after the range statement in the same function — the
// collect-then-sort idiom that restores determinism.
func sortedAfter(info *types.Info, fd *ast.FuncDecl, rs *ast.RangeStmt, obj types.Object) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkgID, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		pn, ok := info.Uses[pkgID].(*types.PkgName)
		if !ok {
			return true
		}
		if path := pn.Imported().Path(); path != "sort" && path != "slices" {
			return true
		}
		if !strings.HasPrefix(sel.Sel.Name, "Sort") && !sortSelNames[sel.Sel.Name] {
			return true
		}
		for _, a := range call.Args {
			if id, ok := a.(*ast.Ident); ok && info.Uses[id] == obj {
				found = true
				break
			}
		}
		return true
	})
	return found
}

// calleeName extracts the bare name of a call target for the emit check.
func calleeName(call *ast.CallExpr) string {
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		return fn.Name
	case *ast.SelectorExpr:
		return fn.Sel.Name
	}
	return ""
}
