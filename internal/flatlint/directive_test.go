package flatlint

import "testing"

// TestDirectiveEdgeCases pins the reach of //flatlint:ignore on a
// dedicated fixture module:
//
//   - one line tripping two analyzers (floatcmp and maporder) is fully
//     suppressed by a standalone directive above plus an end-of-line
//     directive — neither violation appears, neither directive is unused;
//   - a directive separated from its target by a blank line does NOT
//     apply — the violation and the unused directive are both reported;
//   - a directive on a clean line is reported unused.
func TestDirectiveEdgeCases(t *testing.T) {
	r, err := NewRunner("testdata/src/directive-edge")
	if err != nil {
		t.Fatal(err)
	}
	findings, err := r.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{
		`edge.go:25: directive: unused ignore directive for "maporder" (no matching finding)`,
		`edge.go:28: maporder: append inside a map range builds a slice in random order; sort it before use or iterate a sorted slice of keys`,
		`edge.go:36: directive: unused ignore directive for "floatcmp" (no matching finding)`,
	}
	if len(findings) != len(want) {
		t.Fatalf("got %d findings, want %d:\n%v", len(findings), len(want), findings)
	}
	for i, f := range findings {
		if f.String() != want[i] {
			t.Errorf("finding %d:\n got %s\nwant %s", i, f.String(), want[i])
		}
	}
}
