package flatlint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// analyzer is one named pass over a type-checked package. internalOnly
// passes apply to internal/ library packages but not to cmd/, examples/,
// or the module root, where the rules differ (a main may panic, an example
// may drop an error on shutdown).
type analyzer struct {
	name         string
	internalOnly bool
	run          func(*pkgChecker)
}

var analyzers = []analyzer{
	{name: "floatcmp", run: runFloatcmp},
	{name: "globalrand", run: runGlobalrand},
	{name: "layering", run: runLayering},
	{name: "ignorederr", internalOnly: true, run: runIgnorederr},
	{name: "nopanic", internalOnly: true, run: runNopanic},
	{name: "ctxbudget", run: runCtxbudget},
	{name: "stopchan", run: runStopchan},
	{name: "maporder", run: runMaporder},
	{name: "gorolife", internalOnly: true, run: runGorolife},
	{name: "clockwall", internalOnly: true, run: runClockwall},
	{name: "randflow", internalOnly: true, run: runRandflow},
	{name: "httptimeout", run: runHttptimeout},
}

var knownAnalyzers = func() map[string]bool {
	m := map[string]bool{"directive": true}
	for _, a := range analyzers {
		m[a.name] = true
	}
	return m
}()

func analyzerNames() string {
	names := make([]string, 0, len(analyzers))
	for _, a := range analyzers {
		names = append(names, a.name)
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}

// ---------------------------------------------------------------- floatcmp

// epsilonHelper reports whether a function is an approved epsilon-
// comparison helper, inside which exact float equality is the point (e.g.
// the short-circuit `a == b ||` before a tolerance check). Approval is by
// name so the helper is self-documenting at every call site.
func epsilonHelper(name string) bool {
	n := strings.ToLower(name)
	return strings.Contains(n, "approxeq") || strings.Contains(n, "almosteq") ||
		strings.Contains(n, "withineps") || strings.Contains(n, "floateq")
}

// runFloatcmp flags == and != where either operand is floating point (or
// complex). Exact float equality is almost never what a numeric simulator
// wants: FPTAS/LP cross-validation tolerances, link utilizations, and
// throughput fractions all accumulate rounding. Comparisons belong in an
// epsilon helper; genuinely-exact sentinel checks carry an ignore
// directive explaining why exactness holds.
func runFloatcmp(pc *pkgChecker) {
	info := pc.pkg.Info
	for _, f := range pc.pkg.Files {
		// Body ranges of approved helpers; function literals nested inside
		// a helper inherit its approval by position containment.
		type span struct{ lo, hi token.Pos }
		var approved []span
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if ok && fd.Body != nil && epsilonHelper(fd.Name.Name) {
				approved = append(approved, span{fd.Body.Pos(), fd.Body.End()})
			}
		}
		inHelper := func(p token.Pos) bool {
			for _, s := range approved {
				if s.lo <= p && p < s.hi {
					return true
				}
			}
			return false
		}
		ast.Inspect(f, func(n ast.Node) bool {
			cmp, ok := n.(*ast.BinaryExpr)
			if !ok || (cmp.Op != token.EQL && cmp.Op != token.NEQ) {
				return true
			}
			if inHelper(cmp.OpPos) {
				return true
			}
			if isFloat(info.TypeOf(cmp.X)) || isFloat(info.TypeOf(cmp.Y)) {
				pc.reportf("floatcmp", cmp.OpPos,
					"%s on floating-point operands; use an epsilon comparison", cmp.Op)
			}
			return true
		})
	}
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&(types.IsFloat|types.IsComplex) != 0
}

// -------------------------------------------------------------- globalrand

// globalrandConstructors are the math/rand package-level functions that
// build a locally-owned generator rather than touching shared global
// state; they are the approved escape hatch.
var globalrandConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

// runGlobalrand forbids the package-global math/rand (and math/rand/v2)
// functions. Topology construction and experiment trials must be
// reproducible from an explicit seed, which global rand state breaks: any
// other call site advances the shared stream and silently changes every
// subsequent "random" topology. Constructors (rand.New, rand.NewSource,
// ...) are allowed; so is this repo's own injected graph.RNG.
func runGlobalrand(pc *pkgChecker) {
	info := pc.pkg.Info
	for _, f := range pc.pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := info.Uses[sel.Sel]
			if obj == nil || obj.Pkg() == nil {
				return true
			}
			pkgPath := obj.Pkg().Path()
			if pkgPath != "math/rand" && pkgPath != "math/rand/v2" {
				return true
			}
			// Only package-scope objects are global state; methods on a
			// *rand.Rand value (obj parent != package scope) are fine.
			if obj.Parent() != obj.Pkg().Scope() {
				return true
			}
			if _, isFn := obj.(*types.Func); isFn && globalrandConstructors[obj.Name()] {
				return true
			}
			pc.reportf("globalrand", sel.Pos(),
				"package-global %s.%s breaks seeded reproducibility; inject a *rand.Rand (or graph.RNG)",
				pkgPath, obj.Name())
			return true
		})
	}
}

// ---------------------------------------------------------------- layering

// layerOf assigns every internal package a layer in the dependency DAG.
// An import is legal only from a higher layer to a strictly lower one:
//
//	layer 0: parallel                         (worker pool + seed streams, std-lib only)
//	layer 1: converter, graph, lp, flatlint, store (leaf utilities)
//	layer 2: topo                             (labeled topology model)
//	layer 3: core, fattree, faults, jellyfish, mcf, metrics, routing
//	layer 4: dynsim, flowsim, pktsim, traffic, twostage (simulators)
//	layer 5: ctrl                             (control plane)
//	layer 6: chaos                            (soak engine; drives ctrl plants)
//	layer 7: experiments                      (drivers; may stand up ctrl plants)
//	layer 8: serve                            (experiment service; caches experiments in store)
//
// parallel sits below everything so that both the graph substrate (all-pairs
// BFS) and the experiment drivers can fan work out through the same runner.
//
// cmd/, examples/, and the module root sit above every layer and may
// import anything. A new internal package must be added here before it can
// be imported, so the DAG stays a reviewed, explicit artifact.
var layerOf = map[string]int{
	"internal/parallel":    0,
	"internal/converter":   1,
	"internal/flatlint":    1,
	"internal/graph":       1,
	"internal/lp":          1,
	"internal/store":       1,
	"internal/topo":        2,
	"internal/core":        3,
	"internal/fattree":     3,
	"internal/faults":      3,
	"internal/jellyfish":   3,
	"internal/mcf":         3,
	"internal/metrics":     3,
	"internal/routing":     3,
	"internal/dynsim":      4,
	"internal/flowsim":     4,
	"internal/pktsim":      4,
	"internal/traffic":     4,
	"internal/twostage":    4,
	"internal/ctrl":        5,
	"internal/chaos":       6,
	"internal/experiments": 7,
	"internal/serve":       8,
}

// runLayering enforces the package dependency DAG above.
func runLayering(pc *pkgChecker) {
	rel := pc.pkg.RelPath
	fromLayer, fromKnown := layerOf[rel]
	if strings.HasPrefix(rel, "internal/") && !fromKnown {
		pc.reportf("layering", pc.pkg.Files[0].Package,
			"package %s is not in the layering table; add it to layerOf in internal/flatlint/analyzers.go", rel)
		return
	}
	module := pc.r.module
	for _, f := range pc.pkg.Files {
		for _, imp := range f.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			if !strings.HasPrefix(path, module+"/") {
				continue
			}
			impRel := strings.TrimPrefix(path, module+"/")
			toLayer, toKnown := layerOf[impRel]
			if strings.HasPrefix(impRel, "internal/") && !toKnown {
				pc.reportf("layering", imp.Pos(),
					"import of %s, which is not in the layering table", impRel)
				continue
			}
			if !fromKnown || !toKnown {
				continue // importer is cmd/examples/root: unrestricted
			}
			if toLayer >= fromLayer {
				pc.reportf("layering", imp.Pos(),
					"%s (layer %d) may not import %s (layer %d); the dependency DAG only allows imports of strictly lower layers",
					rel, fromLayer, impRel, toLayer)
			}
		}
	}
}

// -------------------------------------------------------------- ignorederr

// runIgnorederr flags blank assignments that throw information away in
// library code: `_ = f()` where f returns an error (the error must be
// handled, recorded, or explicitly waived with a reasoned directive), and
// `_ = x` of a bare identifier (a dead assignment that only exists to
// quiet the compiler about an unused value — delete the value instead).
func runIgnorederr(pc *pkgChecker) {
	info := pc.pkg.Info
	for _, f := range pc.pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || as.Tok != token.ASSIGN {
				return true
			}
			for _, lhs := range as.Lhs {
				if id, ok := lhs.(*ast.Ident); !ok || id.Name != "_" {
					return true
				}
			}
			// All-blank plain assignment. What is being discarded?
			if len(as.Rhs) == 1 {
				switch rhs := as.Rhs[0].(type) {
				case *ast.CallExpr:
					if returnsError(info, rhs) {
						pc.reportf("ignorederr", as.Pos(),
							"error from %s discarded with _ =; handle or record it", callName(rhs))
					}
					return true
				case *ast.Ident:
					pc.reportf("ignorederr", as.Pos(),
						"dead assignment _ = %s; remove the unused value", rhs.Name)
					return true
				}
			}
			return true
		})
	}
}

// returnsError reports whether call's result type is or contains error.
func returnsError(info *types.Info, call *ast.CallExpr) bool {
	t := info.TypeOf(call)
	if t == nil {
		return false
	}
	if tup, ok := t.(*types.Tuple); ok {
		for i := 0; i < tup.Len(); i++ {
			if isErrorType(tup.At(i).Type()) {
				return true
			}
		}
		return false
	}
	return isErrorType(t)
}

var errorIface = types.Universe.Lookup("error").Type()

func isErrorType(t types.Type) bool {
	return t != nil && types.Identical(t, errorIface)
}

// callName renders a call target for a message ("a.send", "doWork").
func callName(call *ast.CallExpr) string {
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		return fn.Name
	case *ast.SelectorExpr:
		if x, ok := fn.X.(*ast.Ident); ok {
			return x.Name + "." + fn.Sel.Name
		}
		return fn.Sel.Name
	default:
		return "call"
	}
}

// --------------------------------------------------------------- ctxbudget

// isContextType reports whether t is the context.Context interface.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// runCtxbudget enforces the repo's cancellation conventions: an exported
// function or method that accepts a context.Context must take it as the
// first parameter (so every call site reads uniformly and the context is
// never an afterthought), and a context must never be stored in a struct
// field — a context is call-scoped, and stashing one in a struct detaches
// cancellation from the call tree that owns it.
func runCtxbudget(pc *pkgChecker) {
	info := pc.pkg.Info
	for _, f := range pc.pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if !n.Name.IsExported() || n.Type.Params == nil {
					return true
				}
				idx := 0 // flattened parameter index across grouped names
				for _, field := range n.Type.Params.List {
					width := len(field.Names)
					if width == 0 {
						width = 1
					}
					if isContextType(info.TypeOf(field.Type)) && idx != 0 {
						pc.reportf("ctxbudget", field.Pos(),
							"exported %s takes a context.Context after other parameters; ctx must come first",
							n.Name.Name)
					}
					idx += width
				}
			case *ast.StructType:
				for _, field := range n.Fields.List {
					if isContextType(info.TypeOf(field.Type)) {
						pc.reportf("ctxbudget", field.Pos(),
							"context.Context stored in a struct field; contexts are call-scoped — pass ctx as the first parameter instead")
					}
				}
			}
			return true
		})
	}
}

// ----------------------------------------------------------------- nopanic

// runNopanic flags panic calls in internal library packages. Library code
// should return errors so callers (experiments, the control plane) can
// degrade gracefully; the approved exceptions — construction-invariant
// panics that indicate a programmer error no caller could recover from —
// each carry an ignore directive stating the invariant.
func runNopanic(pc *pkgChecker) {
	info := pc.pkg.Info
	for _, f := range pc.pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			id, ok := call.Fun.(*ast.Ident)
			if !ok || id.Name != "panic" {
				return true
			}
			if _, isBuiltin := info.Uses[id].(*types.Builtin); !isBuiltin {
				return true
			}
			pc.reportf("nopanic", call.Pos(),
				"panic in library package %s; return an error instead", pc.pkg.RelPath)
			return true
		})
	}
}

// ---------------------------------------------------------------- stopchan

// stopchanPackages are the packages whose lifecycles were migrated onto
// context.Context: the controller, agents, and the dynamic simulator all
// cancel through the ctx passed at the call site. A new raw stop/quit
// channel there would fork the cancellation mechanism back into two
// halves that cannot compose (a select on a stop channel ignores ctx and
// vice versa).
var stopchanPackages = map[string]bool{
	"internal/ctrl":   true,
	"internal/dynsim": true,
}

// stopchanName reports whether a variable name reads like a lifecycle
// signal channel.
func stopchanName(name string) bool {
	n := strings.ToLower(name)
	for _, s := range []string{"stop", "quit", "halt", "kill", "done"} {
		if strings.Contains(n, s) {
			return true
		}
	}
	return false
}

// runStopchan forbids raw `make(chan struct{})` stop/quit channels in the
// control-plane and dynamic-simulator packages. Both migrated their
// lifecycles onto context.Context (cancellation, deadlines, and
// context.AfterFunc for connection teardown); a fresh stop channel named
// stop/quit/halt/kill/done reintroduces the pre-migration pattern.
func runStopchan(pc *pkgChecker) {
	if !stopchanPackages[pc.pkg.RelPath] {
		return
	}
	info := pc.pkg.Info
	lhsName := func(e ast.Expr) string {
		switch e := e.(type) {
		case *ast.Ident:
			return e.Name
		case *ast.SelectorExpr:
			return e.Sel.Name
		}
		return ""
	}
	check := func(name string, rhs ast.Expr, pos token.Pos) {
		if !stopchanName(name) {
			return
		}
		call, ok := rhs.(*ast.CallExpr)
		if !ok {
			return
		}
		id, ok := call.Fun.(*ast.Ident)
		if !ok || id.Name != "make" {
			return
		}
		if _, isBuiltin := info.Uses[id].(*types.Builtin); !isBuiltin {
			return
		}
		ch, ok := info.TypeOf(call).Underlying().(*types.Chan)
		if !ok {
			return
		}
		st, ok := ch.Elem().Underlying().(*types.Struct)
		if !ok || st.NumFields() != 0 {
			return
		}
		pc.reportf("stopchan", pos,
			"raw stop channel %s in %s; lifecycles here are context-scoped — accept a ctx and cancel it (or use context.AfterFunc) instead",
			name, pc.pkg.RelPath)
	}
	for _, f := range pc.pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for i, lhs := range n.Lhs {
					if i < len(n.Rhs) {
						check(lhsName(lhs), n.Rhs[i], lhs.Pos())
					}
				}
			case *ast.ValueSpec:
				for i, name := range n.Names {
					if i < len(n.Values) {
						check(name.Name, n.Values[i], name.Pos())
					}
				}
			}
			return true
		})
	}
}
