package flatlint

import (
	"go/ast"
)

// randflow is the interprocedural upgrade of globalrand: beyond banning
// shared global generators, randomness in library code must *flow in*
// from the caller — an injected *graph.RNG, or a seed that the caller
// chose. A generator constructed from a hard-coded constant seed deep in
// a helper silently decouples "reproducible" trials from the seed the
// experiment config says it ran with; it is wrong in exactly the way a
// global generator is wrong, just better hidden.
//
// Two rules:
//
//  1. Direct: constructing a generator from compile-time constant
//     arguments — graph.NewRNG(42), rand.NewSource(1) — anywhere in
//     internal library code is a finding. Construction from an injected
//     seed (a parameter, a config or scenario field) is the repository's
//     sanctioned seed-boundary idiom and is untouched, as is splitting a
//     stream via graph.NewRNG(rng.Uint64()).
//
//  2. Transitive: in the deterministic packages (graph, topo, routing,
//     metrics, experiments) a function must not reach a constant-seed
//     construction through any chain of helpers. The finding lands on
//     the call site and names the chain, so the place to inject the RNG
//     is visible.
func runRandflow(pc *pkgChecker) {
	info := pc.pkg.Info
	for _, f := range pc.pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := calleeOf(info, call)
			if callee == nil || callee.Pkg() == nil {
				return true
			}
			if desc, ok := randCtorSink(info, call, callee); ok {
				pc.reportf("randflow", call.Pos(),
					"%s constructs an RNG from a hard-coded seed in library code; inject the seed or a *graph.RNG from the caller so trials stay reproducible", desc)
			}
			return true
		})
	}
	if !deterministicPkgs[pc.pkg.RelPath] || pc.prog == nil {
		return
	}
	for _, s := range pc.prog.byPkg[pc.pkg.Path] {
		rc := pc.prog.randc[s.fn]
		if rc == nil || rc.depth == 0 {
			continue // depth 0 is a direct construction, already reported
		}
		pc.reportf("randflow", rc.site,
			"%s transitively constructs an RNG from a hard-coded seed (%s); thread an injected *graph.RNG through instead",
			pc.prog.shortName(s.fn), pc.prog.path(rc.via, pc.prog.randc, randSinkOf))
	}
}
