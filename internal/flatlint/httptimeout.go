package flatlint

import (
	"go/ast"
	"go/types"
)

// httpServeFuncs are the net/http package-level helpers that run an
// implicit Server the caller never configured — no ReadHeaderTimeout, no
// way to drain it on shutdown.
var httpServeFuncs = map[string]bool{
	"ListenAndServe": true, "ListenAndServeTLS": true,
	"Serve": true, "ServeTLS": true,
}

// runHttptimeout enforces the repo's HTTP hardening rule: every
// net/http.Server must set ReadHeaderTimeout. The default is no timeout
// at all, so a single slow-loris client dribbling header bytes holds a
// connection (and its goroutine) open forever — exactly the unbounded
// resource growth the experiment service's admission control exists to
// prevent. Two patterns are flagged:
//
//  1. an http.Server composite literal with no ReadHeaderTimeout key, and
//  2. the package-level http.ListenAndServe / Serve helpers, which run an
//     unconfigurable implicit Server.
func runHttptimeout(pc *pkgChecker) {
	info := pc.pkg.Info
	for _, f := range pc.pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CompositeLit:
				if !isHTTPServer(info.TypeOf(n)) {
					return true
				}
				for _, elt := range n.Elts {
					kv, ok := elt.(*ast.KeyValueExpr)
					if !ok {
						continue
					}
					if id, ok := kv.Key.(*ast.Ident); ok && id.Name == "ReadHeaderTimeout" {
						return true
					}
				}
				pc.reportf("httptimeout", n.Pos(),
					"http.Server literal without ReadHeaderTimeout; the default never times out header reads, so one slow client pins a goroutine forever — set ReadHeaderTimeout")
			case *ast.CallExpr:
				sel, ok := n.Fun.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				obj := info.Uses[sel.Sel]
				if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "net/http" {
					return true
				}
				if obj.Parent() != obj.Pkg().Scope() || !httpServeFuncs[obj.Name()] {
					return true
				}
				pc.reportf("httptimeout", n.Pos(),
					"http.%s runs an implicit Server with no timeouts; construct an http.Server with ReadHeaderTimeout and serve through it", obj.Name())
			}
			return true
		})
	}
}

// isHTTPServer reports whether t is net/http.Server (the literal struct,
// not a pointer — composite literals always type as the struct).
func isHTTPServer(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "net/http" && obj.Name() == "Server"
}
