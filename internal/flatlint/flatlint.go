// Package flatlint is the repository's custom static-analysis pass. It
// loads every package in the module using only the standard library
// (go/parser + go/types with a source importer for the standard library)
// and runs a table of repo-specific analyzers that machine-check the
// correctness invariants the Flat-tree reproduction depends on: no exact
// float equality in the numerics, no package-global randomness, a strict
// package layering DAG, no silently discarded errors, no panics in
// library code, deterministic map iteration, lifecycle-tied goroutines,
// and wall-clock / RNG hygiene.
//
// The engine is two-phase and interprocedural. Phase 1 parses and
// type-checks the module's packages concurrently (fan-out bounded by
// internal/parallel; packages type-check in dependency waves so imports
// are always resolved from finished work) and builds a per-function
// summary: the static calls it makes, whether it reads the wall clock,
// constructs an RNG from a hard-coded seed, or can terminate the process.
// Phase 2 propagates those summaries over the call graph to a fixed
// point, so analyzers can report *transitive* violations — a
// deterministic-layer function that reaches time.Now three calls down is
// flagged at its own call site, with the offending call chain in the
// message.
//
// Findings print as "file:line: analyzer: message" with paths relative to
// the module root. A finding can be suppressed with a directive comment
//
//	//flatlint:ignore <analyzer> <reason>
//
// placed either at the end of the offending line or alone on the line
// directly above it. The reason is mandatory: a directive without one is
// itself a finding, so every suppression carries its justification in the
// source.
package flatlint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"flattree/internal/parallel"
)

// Finding is one analyzer report, already positioned. The JSON field
// names are the machine-readable contract of `flatlint -json`.
type Finding struct {
	File     string `json:"file"` // path relative to the module root
	Line     int    `json:"line"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: %s: %s", f.File, f.Line, f.Analyzer, f.Message)
}

// Pkg is one loaded, type-checked package.
type Pkg struct {
	Path    string // full import path ("flattree/internal/graph")
	RelPath string // path relative to the module ("internal/graph"; "" for root)
	Dir     string
	Files   []*ast.File
	Fset    *token.FileSet
	Types   *types.Package
	Info    *types.Info
}

// Runner loads and checks the packages of a single module.
type Runner struct {
	root   string // absolute module root
	module string // module path from go.mod

	fset    *token.FileSet
	pkgDirs map[string]string // import path -> absolute dir

	stdMu sync.Mutex // serializes the (stateful) standard-library importer
	std   types.Importer

	pkgs  map[string]*Pkg // every loaded package, keyed by import path
	order []string        // sorted import paths of r.pkgs
	prog  *program        // interprocedural summaries (built once per Run)
}

// NewRunner prepares a runner for the module rooted at dir (the directory
// containing go.mod).
func NewRunner(dir string) (*Runner, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	module, err := modulePath(filepath.Join(abs, "go.mod"))
	if err != nil {
		return nil, err
	}
	// The source importer type-checks the standard library from GOROOT
	// source; disable cgo so packages like net resolve via their pure-Go
	// fallbacks instead of failing on cgo preprocessing.
	build.Default.CgoEnabled = false
	fset := token.NewFileSet()
	r := &Runner{
		root:    abs,
		module:  module,
		fset:    fset,
		pkgDirs: make(map[string]string),
		std:     importer.ForCompiler(fset, "source", nil),
	}
	if err := r.discover(); err != nil {
		return nil, err
	}
	return r, nil
}

func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", fmt.Errorf("flatlint: reading module file: %w", err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("flatlint: no module directive in %s", gomod)
}

// discover maps every package directory in the module to its import path.
// testdata, vendor, hidden, and underscore-prefixed directories are
// skipped, matching the go tool's conventions.
func (r *Runner) discover() error {
	return filepath.WalkDir(r.root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != r.root && (name == "testdata" || name == "vendor" ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		ents, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		for _, e := range ents {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
				rel, err := filepath.Rel(r.root, path)
				if err != nil {
					return err
				}
				ip := r.module
				if rel != "." {
					ip = r.module + "/" + filepath.ToSlash(rel)
				}
				r.pkgDirs[ip] = path
				break
			}
		}
		return nil
	})
}

// Packages returns the sorted import paths of every package in the module.
func (r *Runner) Packages() []string {
	paths := make([]string, 0, len(r.pkgDirs))
	for p := range r.pkgDirs {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	return paths
}

// Import resolves an import path for the type checker: module-local
// packages must already have been type-checked by an earlier dependency
// wave; everything else is handed to the standard-library importer, which
// is stateful and therefore serialized.
func (r *Runner) Import(path string) (*types.Package, error) {
	if path == r.module || strings.HasPrefix(path, r.module+"/") {
		if pkg, ok := r.pkgs[path]; ok {
			return pkg.Types, nil
		}
		return nil, fmt.Errorf("flatlint: no package %q in module %s", path, r.module)
	}
	r.stdMu.Lock()
	defer r.stdMu.Unlock()
	return r.std.Import(path)
}

// Run loads every package in the module (interprocedural analysis needs
// the whole call graph), builds the function summaries, and runs all
// analyzers over the packages matched by patterns. Supported patterns:
// "./..." (every package in the module) or a "./"-prefixed package
// directory. With no patterns, "./..." is assumed. Findings return sorted
// by file, line, then analyzer; suppressed and directive-consumed
// findings are already filtered out.
func (r *Runner) Run(patterns []string) ([]Finding, error) {
	if err := r.loadAll(); err != nil {
		return nil, err
	}
	if r.prog == nil {
		prog, err := buildProgram(r)
		if err != nil {
			return nil, err
		}
		r.prog = prog
	}
	paths, err := r.expand(patterns)
	if err != nil {
		return nil, err
	}
	perPkg, err := parallel.Map(len(paths), 0, func(i int) ([]Finding, error) {
		return r.check(r.pkgs[paths[i]]), nil
	})
	if err != nil {
		return nil, err
	}
	var all []Finding
	for _, fs := range perPkg {
		all = append(all, fs...)
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return all, nil
}

func (r *Runner) expand(patterns []string) ([]string, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	seen := make(map[string]bool)
	var out []string
	add := func(p string) {
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	for _, pat := range patterns {
		switch {
		case pat == "./..." || pat == "...":
			for _, p := range r.Packages() {
				add(p)
			}
		default:
			rel := filepath.ToSlash(strings.TrimPrefix(strings.TrimPrefix(pat, "./"), "/"))
			ip := r.module
			if rel != "" && rel != "." {
				ip = r.module + "/" + rel
			}
			if _, ok := r.pkgDirs[ip]; !ok {
				return nil, fmt.Errorf("flatlint: pattern %q matches no package in %s", pat, r.module)
			}
			add(ip)
		}
	}
	sort.Strings(out)
	return out, nil
}

// check runs every analyzer on one package and applies ignore directives.
// Each package gets its own pkgChecker, so check is safe to call
// concurrently for different packages: analyzers only write through the
// checker and only read the (frozen) program summaries.
func (r *Runner) check(pkg *Pkg) []Finding {
	pc := &pkgChecker{r: r, pkg: pkg, prog: r.prog}
	pc.collectDirectives()
	for _, a := range analyzers {
		if a.internalOnly && !strings.HasPrefix(pkg.RelPath, "internal/") {
			continue
		}
		a.run(pc)
	}
	return pc.finish()
}

// directive is one parsed //flatlint:ignore comment.
type directive struct {
	file     string
	line     int
	analyzer string
	reason   string
	used     bool
}

// pkgChecker carries per-package analysis state and finding collection.
type pkgChecker struct {
	r          *Runner
	pkg        *Pkg
	prog       *program
	findings   []Finding
	directives []*directive
}

// relFile converts a token.Pos to a (module-relative file, line) pair.
func (pc *pkgChecker) relFile(pos token.Pos) (string, int) {
	p := pc.pkg.Fset.Position(pos)
	rel, err := filepath.Rel(pc.r.root, p.Filename)
	if err != nil {
		rel = p.Filename
	}
	return filepath.ToSlash(rel), p.Line
}

// reportf records a finding for analyzer at pos.
func (pc *pkgChecker) reportf(analyzer string, pos token.Pos, format string, args ...any) {
	file, line := pc.relFile(pos)
	pc.findings = append(pc.findings, Finding{
		File:     file,
		Line:     line,
		Analyzer: analyzer,
		Message:  fmt.Sprintf(format, args...),
	})
}

const ignorePrefix = "//flatlint:ignore"

// collectDirectives parses every //flatlint:ignore comment in the package.
// Malformed directives (missing analyzer, unknown analyzer, or missing
// reason) are reported as findings of the "directive" pseudo-analyzer so a
// suppression can never silently fail to apply.
func (pc *pkgChecker) collectDirectives() {
	for _, f := range pc.pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, ignorePrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, ignorePrefix)
				fields := strings.Fields(rest)
				file, line := pc.relFile(c.Pos())
				if len(fields) == 0 || !knownAnalyzers[fields[0]] {
					pc.reportf("directive", c.Pos(),
						"ignore directive needs a known analyzer (one of %s)", analyzerNames())
					continue
				}
				if len(fields) < 2 {
					pc.reportf("directive", c.Pos(),
						"ignore directive for %q needs a reason", fields[0])
					continue
				}
				pc.directives = append(pc.directives, &directive{
					file:     file,
					line:     line,
					analyzer: fields[0],
					reason:   strings.Join(fields[1:], " "),
				})
			}
		}
	}
}

// finish applies suppressions and reports unused directives. A directive
// suppresses findings of its analyzer on its own line or the line directly
// below (the standalone-comment-above form).
func (pc *pkgChecker) finish() []Finding {
	var out []Finding
	for _, f := range pc.findings {
		suppressed := false
		for _, d := range pc.directives {
			if d.analyzer == f.Analyzer && d.file == f.File &&
				(d.line == f.Line || d.line == f.Line-1) {
				d.used = true
				suppressed = true
			}
		}
		if !suppressed {
			out = append(out, f)
		}
	}
	for _, d := range pc.directives {
		if !d.used {
			out = append(out, Finding{
				File:     d.file,
				Line:     d.line,
				Analyzer: "directive",
				Message:  fmt.Sprintf("unused ignore directive for %q (no matching finding)", d.analyzer),
			})
		}
	}
	return out
}
