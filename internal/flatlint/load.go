package flatlint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"flattree/internal/parallel"
)

// loadAll parses and type-checks every package in the module. Parsing
// fans out over all packages at once (token.FileSet is safe for
// concurrent use); type-checking proceeds in dependency waves — Kahn's
// algorithm over the module-local import graph — so that every package in
// a wave only imports packages finished in earlier waves, and the waves
// themselves fan out through internal/parallel. The standard-library
// source importer is stateful and is serialized behind Runner.stdMu.
//
// Results land in r.pkgs/r.order. loadAll is idempotent; errors are
// deterministic (parallel.ForEach returns the lowest-indexed failure).
func (r *Runner) loadAll() error {
	if r.pkgs != nil {
		return nil
	}
	paths := r.Packages()
	index := make(map[string]int, len(paths))
	for i, p := range paths {
		index[p] = i
	}

	// Phase 1a: parse every package concurrently.
	type parsedPkg struct {
		files []*ast.File
		deps  []int // indices of module-local imports, deduplicated
	}
	parsedPkgs := make([]parsedPkg, len(paths))
	err := parallel.ForEach(len(paths), 0, func(i int) error {
		files, err := r.parseDir(r.pkgDirs[paths[i]])
		if err != nil {
			return err
		}
		seen := make(map[int]bool)
		var deps []int
		for _, f := range files {
			for _, imp := range f.Imports {
				path := strings.Trim(imp.Path.Value, `"`)
				j, ok := index[path]
				if !ok || seen[j] {
					continue // std-lib, unknown (type checker will report), or dup
				}
				seen[j] = true
				deps = append(deps, j)
			}
		}
		sort.Ints(deps)
		parsedPkgs[i] = parsedPkg{files: files, deps: deps}
		return nil
	})
	if err != nil {
		return err
	}

	// Phase 1b: type-check in dependency waves.
	indeg := make([]int, len(paths))
	dependents := make([][]int, len(paths))
	for i := range parsedPkgs {
		for _, j := range parsedPkgs[i].deps {
			indeg[i]++
			dependents[j] = append(dependents[j], i)
		}
	}
	var wave []int
	for i, d := range indeg {
		if d == 0 {
			wave = append(wave, i)
		}
	}
	r.pkgs = make(map[string]*Pkg, len(paths))
	done := 0
	for len(wave) > 0 {
		slots := make([]*Pkg, len(wave))
		cur := wave
		err := parallel.ForEach(len(cur), 0, func(i int) error {
			pkg, err := r.typeCheck(paths[cur[i]], parsedPkgs[cur[i]].files)
			if err != nil {
				return err
			}
			slots[i] = pkg
			return nil
		})
		if err != nil {
			return err
		}
		// Publish the wave's results sequentially: the next wave's
		// type-checks read r.pkgs concurrently, but never while it is
		// being written.
		wave = nil
		for i, pkg := range slots {
			r.pkgs[paths[cur[i]]] = pkg
			done++
			for _, dep := range dependents[cur[i]] {
				indeg[dep]--
				if indeg[dep] == 0 {
					wave = append(wave, dep)
				}
			}
		}
		sort.Ints(wave)
	}
	if done < len(paths) {
		var stuck []string
		for i, d := range indeg {
			if d > 0 {
				stuck = append(stuck, paths[i])
			}
		}
		sort.Strings(stuck)
		return fmt.Errorf("flatlint: import cycle among %s", strings.Join(stuck, ", "))
	}
	r.order = paths
	return nil
}

// parseDir parses every non-test .go file in dir, in sorted file order.
func (r *Runner) parseDir(dir string) ([]*ast.File, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(r.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("flatlint: no buildable Go files in %s", dir)
	}
	return files, nil
}

// typeCheck type-checks one parsed package. All module-local imports must
// already be in r.pkgs (guaranteed by the wave ordering in loadAll).
func (r *Runner) typeCheck(path string, files []*ast.File) (*Pkg, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: r}
	tpkg, err := conf.Check(path, r.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("flatlint: type-checking %s: %w", path, err)
	}
	rel := strings.TrimPrefix(strings.TrimPrefix(path, r.module), "/")
	return &Pkg{
		Path:    path,
		RelPath: rel,
		Dir:     r.pkgDirs[path],
		Files:   files,
		Fset:    r.fset,
		Types:   tpkg,
		Info:    info,
	}, nil
}
