package flatlint

import (
	"go/ast"
	"go/types"
)

// gorolife requires every `go` statement in library code to be tied to a
// lifecycle. A fire-and-forget goroutine cannot be joined, cancelled, or
// counted: it outlives experiments, leaks under -race, and turns clean
// shutdown into a data race. The accepted lifecycles are the two this
// repository actually uses — cancellation via a context.Context the
// goroutine can observe, and joining via a sync.WaitGroup — plus fanning
// the work out through internal/parallel, whose pool joins internally.
//
// Detection is structural: the spawned call (callee, arguments, and a
// spawned function literal's body) must mention a value of type
// context.Context or sync.WaitGroup. `go c.pump(ctx)`, `go func() { defer
// wg.Done(); ... }()`, and `go a.run(hctx, conn)` all qualify; `go
// leak()` does not. A goroutine that genuinely must outlive its caller
// carries a reasoned //flatlint:ignore directive.
func runGorolife(pc *pkgChecker) {
	info := pc.pkg.Info
	for _, f := range pc.pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if !lifecycleTied(info, gs.Call) {
				pc.reportf("gorolife", gs.Go,
					"fire-and-forget goroutine in library code; tie it to a lifecycle — derive it from a context.Context, join it with a sync.WaitGroup, or fan out through internal/parallel")
			}
			return true
		})
	}
}

// lifecycleTied reports whether the spawned call mentions a
// context.Context or sync.WaitGroup anywhere — callee expression,
// arguments, or the body of a spawned function literal.
func lifecycleTied(info *types.Info, call *ast.CallExpr) bool {
	tied := false
	ast.Inspect(call, func(n ast.Node) bool {
		if tied {
			return false
		}
		expr, ok := n.(ast.Expr)
		if !ok {
			return true
		}
		if t := info.TypeOf(expr); isContextType(t) || isWaitGroup(t) {
			tied = true
		}
		return !tied
	})
	return tied
}

// isWaitGroup reports whether t is sync.WaitGroup or *sync.WaitGroup.
func isWaitGroup(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "WaitGroup"
}
