// Package serve is the httptimeout fixture: every http.Server must set
// ReadHeaderTimeout, and the package-level helpers that run an implicit,
// unconfigurable Server are forbidden.
package serve

import "net/http"

// Bad builds a Server with no read-header timeout (flagged) and serves
// through the implicit-Server helper (also flagged).
func Bad() (*http.Server, error) {
	s := &http.Server{Addr: "127.0.0.1:0"}
	return s, http.ListenAndServe("127.0.0.1:0", nil)
}

// Waived demonstrates suppression: the directive carries the reason, so
// this literal must not appear in the golden findings.
func Waived() *http.Server {
	//flatlint:ignore httptimeout fixture: suppressed finding for the directive test
	return &http.Server{Addr: "127.0.0.1:0"}
}
