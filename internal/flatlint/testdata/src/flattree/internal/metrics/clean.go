// Package metrics is the clean fixture: nothing in this file should be
// flagged by any analyzer.
package metrics

import "math"

// Close reports whether a and b agree within tol, the way float
// comparisons should be written.
func Close(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}
