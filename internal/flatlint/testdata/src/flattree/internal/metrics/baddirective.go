package metrics

// The directives in this file are malformed or unused; each produces a
// finding of the "directive" pseudo-analyzer, so a typo in a suppression
// can never silently disable it.

//flatlint:ignore nosuchanalyzer because reasons
func Unknown() {}

//flatlint:ignore nopanic
func MissingReason() {}

// Unused has a well-formed directive with no matching finding.
func Unused() int {
	return 1 //flatlint:ignore floatcmp fixture: nothing to suppress here
}
