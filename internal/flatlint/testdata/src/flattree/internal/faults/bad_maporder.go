// Package faults is the maporder fixture: order-sensitive effects inside
// a map range are flagged; collect-then-sort, counting, and keyed writes
// are clean.
package faults

import (
	"fmt"
	"os"
	"sort"
)

// Validate returns the first offending entry in map order and is flagged:
// which name the error reports changes run to run.
func Validate(fracs map[string]float64) error {
	for name, f := range fracs {
		if f < 0 {
			return fmt.Errorf("faults: %s fraction is negative", name)
		}
	}
	return nil
}

// Sum accumulates floats in map order and is flagged: addition order
// changes the digits.
func Sum(m map[int]float64) float64 {
	var s float64
	for _, v := range m {
		s += v
	}
	return s
}

// Collect appends in map order without sorting and is flagged.
func Collect(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

// Feed sends in map order and is flagged.
func Feed(m map[int]bool, ch chan int) {
	for k := range m {
		ch <- k
	}
}

// Check calls a helper that exits the process two hops down, passing the
// iteration variable, and is flagged: which entry trips first is random.
func Check(m map[string]int) {
	for k, v := range m {
		if v < 0 {
			complain(k)
		}
	}
}

func complain(k string) { die("faults: bad entry " + k) }

func die(msg string) {
	fmt.Fprintln(os.Stderr, msg)
	os.Exit(1)
}

// SortedKeys collects then sorts — the canonical fix — and is clean.
func SortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Count increments an integer, which is order-insensitive, and is clean.
func Count(m map[string]int) int {
	n := 0
	for range m {
		n++
	}
	return n
}

// Invert writes keyed by the loop variable into another map and is clean.
func Invert(m map[string]int) map[int]string {
	out := make(map[int]string, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}

// Waived keeps its unsorted append under a reasoned waiver.
func Waived(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) //flatlint:ignore maporder fixture: caller sorts the result
	}
	return out
}
