// Package store is a layering fixture: store sits at layer 1 (a leaf
// utility the serve layer caches into) and may not import the layer-7
// experiments package.
package store

import "flattree/internal/experiments"

// Describe pulls a higher layer downward and is flagged.
func Describe() string { return experiments.Name() }
