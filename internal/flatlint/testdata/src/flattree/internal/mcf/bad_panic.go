// Package mcf is the nopanic fixture: panics in library packages must be
// flagged unless annotated as a documented invariant.
package mcf

// Explode panics in library code and is flagged.
func Explode() {
	panic("mcf: exploded")
}

// Invariant documents why it may panic and is suppressed.
func Invariant(n int) {
	if n < 0 {
		//flatlint:ignore nopanic fixture: documented invariant
		panic("mcf: negative n")
	}
}
