package mcf

import "time"

// WithinBudget reads the wall clock for a solver time budget. The read
// is justified with a directive, and mcf is a clockwall trust boundary:
// the deterministic-package caller in the experiments fixture is NOT
// flagged for calling it.
func WithinBudget(deadline time.Time) bool {
	return time.Now().Before(deadline) //flatlint:ignore clockwall fixture: solver time budget is wall-clock by design
}
