// Package routing holds the ctxbudget fixture: a context stored in a
// struct field and a context accepted after other parameters.
package routing

import "context"

type controller struct {
	ctx context.Context // stored context: finding
}

// Route accepts its context in the wrong position: finding.
func Route(n int, ctx context.Context) error {
	c := controller{ctx: ctx}
	return c.ctx.Err()
}

//flatlint:ignore ctxbudget wire-compatible legacy signature, kept until callers migrate
func Legacy(id string, ctx context.Context) error {
	return ctx.Err()
}
