// The randflow fixture: routing is a deterministic package, so reaching
// a hard-coded RNG seed through any chain of helpers is flagged at the
// call site, with the chain in the message.
package routing

import "flattree/internal/graph"

// BuildTables reaches graph.NewRNG(7) two call hops down (viaHelper →
// graph.DefaultRNG → the constructor) and is flagged transitively.
func BuildTables() int { return viaHelper() }

// viaHelper is one hop from the constant-seed construction and is
// flagged transitively too.
func viaHelper() int { return graph.DefaultRNG().Intn(8) }

// Injected receives its generator from the caller and is clean.
func Injected(rng *graph.RNG) int { return rng.Intn(8) }

// Waived demonstrates suppressing a transitive finding.
func Waived() int {
	return viaHelper() //flatlint:ignore randflow fixture: demonstrates suppressing a transitive finding
}
