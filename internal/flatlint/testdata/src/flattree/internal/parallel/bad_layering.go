// Package parallel is the bottom-layer fixture: the layer-0 runner may not
// import anything above it, not even the layer-1 graph substrate that uses
// it in the real module.
package parallel

import "flattree/internal/graph"

// Spawn reaches upward into graph and is flagged.
func Spawn(xs []int) { graph.GlobalShuffle(xs) }
