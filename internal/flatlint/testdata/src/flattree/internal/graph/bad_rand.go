// Package graph is the globalrand fixture: package-global math/rand state
// must be flagged; locally-owned generators built via the constructors are
// allowed.
package graph

import "math/rand"

// GlobalShuffle advances the shared global stream and is flagged.
func GlobalShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
}

// SeededPerm owns its generator and is not flagged: rand.New and
// rand.NewSource are approved constructors, and Perm is a method on the
// local *rand.Rand, not global state.
func SeededPerm(seed int64, n int) []int {
	r := rand.New(rand.NewSource(seed))
	return r.Perm(n)
}

// WaivedInt carries a reasoned directive and is suppressed.
func WaivedInt() int {
	return rand.Int() //flatlint:ignore globalrand fixture: demonstrates suppression
}
