package graph

// RNG is the fixture's stand-in for the repository's injected generator;
// randflow recognizes NewRNG by its internal/graph package suffix.
type RNG struct{ s uint64 }

// NewRNG seeds a generator. The seed parameter is not a constant at this
// site, so the constructor itself is clean.
func NewRNG(seed uint64) *RNG { return &RNG{s: seed} }

// Intn returns a pseudo-random int in [0, n).
func (r *RNG) Intn(n int) int {
	r.s = r.s*6364136223846793005 + 1442695040888963407
	return int(r.s>>33) % n
}

// DefaultRNG hard-codes its seed and is flagged (randflow, direct).
func DefaultRNG() *RNG { return NewRNG(7) }

// Split derives a sub-generator from an injected one — the sanctioned
// stream-splitting idiom — and is clean.
func Split(rng *RNG) *RNG { return NewRNG(uint64(rng.Intn(1 << 30))) }
