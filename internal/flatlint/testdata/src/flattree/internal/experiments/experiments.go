// Package experiments is a clean top-layer package that the layering
// fixture in internal/topo illegally imports.
package experiments

// Name identifies the package.
func Name() string { return "experiments" }
