// The clockwall fixture: experiments is a deterministic package, so both
// direct wall-clock reads and transitive ones (through helpers in other
// packages) are flagged; reads behind the mcf/ctrl trust boundary are not.
package experiments

import (
	"time"

	"flattree/internal/core"
	"flattree/internal/mcf"
)

// Stamp reads the wall clock directly and is flagged (clockwall, direct).
func Stamp() int64 { return time.Now().UnixNano() }

// Table reaches time.Now two call hops down (core.TickTock → core.tick)
// and is flagged transitively.
func Table() int64 { return core.TickTock() }

// Budgeted calls into mcf, a clockwall trust boundary (solver time
// budgets), and is clean.
func Budgeted() bool { return mcf.WithinBudget(time.Time{}) }

// WaivedStamp demonstrates suppressing a transitive finding.
func WaivedStamp() int64 {
	return core.TickTock() //flatlint:ignore clockwall fixture: demonstrates suppressing a transitive finding
}
