// Package lp is the floatcmp fixture: exact float comparisons outside an
// approved epsilon helper must be flagged; inside one they are allowed.
package lp

import "math"

// Eq compares exactly and is flagged.
func Eq(a, b float64) bool { return a == b }

// Ne compares exactly on float32 and is flagged.
func Ne(a, b float32) bool { return a != b }

// approxEqual is an approved epsilon helper by name: the exact
// short-circuit before the tolerance check is the point and is not
// flagged.
func approxEqual(a, b, eps float64) bool {
	return a == b || math.Abs(a-b) <= eps
}

// Sentinel carries a reasoned directive and is suppressed.
func Sentinel(a float64) bool {
	return a == 0 //flatlint:ignore floatcmp fixture: zero is an exact sentinel here
}

// UseHelper keeps approxEqual referenced.
func UseHelper(a, b float64) bool { return approxEqual(a, b, 1e-9) }
