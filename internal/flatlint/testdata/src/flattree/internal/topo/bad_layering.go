// Package topo is the layering fixture: topo sits at layer 2 and may not
// import the layer-5 experiments package.
package topo

import "flattree/internal/experiments"

// Report pulls a higher layer downward and is flagged.
func Report() string { return experiments.Name() }
