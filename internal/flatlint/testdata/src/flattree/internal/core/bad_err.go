// Package core is the ignorederr fixture: discarded errors and dead blank
// assignments in library code must be flagged.
package core

import "errors"

func work() error { return errors.New("boom") }

// Drop discards the error and is flagged.
func Drop() {
	_ = work()
}

// Dead only exists to quiet the compiler and is flagged.
func Dead(x int) {
	_ = x
}

// Waived carries a reasoned directive and is suppressed.
func Waived() {
	_ = work() //flatlint:ignore ignorederr fixture: error is unactionable here
}
