// Clock helpers for the clockwall fixture: core is an internal package,
// so the direct read in tick is flagged here, and the TickTock → tick →
// time.Now chain is what the deterministic-package fixture in
// experiments reaches transitively.
package core

import "time"

// TickTock forwards to tick; callers in deterministic packages inherit
// the wall-clock taint through it.
func TickTock() int64 { return tick() }

// tick reads the wall clock directly and is flagged (clockwall, direct).
func tick() int64 { return time.Now().UnixNano() }
