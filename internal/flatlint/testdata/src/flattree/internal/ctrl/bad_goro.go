// Package ctrl is the gorolife fixture: a goroutine in library code must
// be tied to a lifecycle — a context it can observe, a WaitGroup that
// joins it — or carry a reasoned directive.
package ctrl

import (
	"context"
	"sync"
)

// Fire spawns a goroutine nothing can join or cancel and is flagged.
func Fire() { go leak() }

func leak() {}

// Watched derives the goroutine from a context and is clean.
func Watched(ctx context.Context) { go watch(ctx) }

func watch(ctx context.Context) { <-ctx.Done() }

// Pooled joins the goroutine through a WaitGroup and is clean.
func Pooled(wg *sync.WaitGroup) {
	wg.Add(1)
	go func() { defer wg.Done() }()
}

// Daemon keeps its fire-and-forget goroutine under a reasoned waiver.
func Daemon() {
	//flatlint:ignore gorolife fixture: daemon intentionally outlives its caller
	go leak()
}
