// Package dynsim is the stopchan fixture: raw stop/quit channels in the
// context-scoped packages must be flagged unless annotated.
package dynsim

// runLoop builds a raw stop channel and is flagged.
func runLoop() chan struct{} {
	stop := make(chan struct{})
	return stop
}

// legacyLoop keeps its quit channel under a reasoned waiver.
func legacyLoop() chan struct{} {
	//flatlint:ignore stopchan fixture: legacy shutdown path kept for comparison
	quit := make(chan struct{}, 1)
	return quit
}
