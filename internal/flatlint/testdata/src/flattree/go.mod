module flattree

go 1.22
