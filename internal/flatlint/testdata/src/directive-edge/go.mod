module directive-edge

go 1.21
