// Package edge exercises the corner cases of //flatlint:ignore
// placement: two analyzers suppressed on one line, a directive separated
// from its target by a blank line (which must NOT apply), and a directive
// with no matching finding.
package edge

// FirstMatch has one line that trips two analyzers — floatcmp (== on
// floats) and maporder (return carrying the iteration variable) — and
// suppresses both: maporder by the standalone directive above the line,
// floatcmp by the end-of-line directive. Neither may be reported, and
// neither directive may be reported unused.
func FirstMatch(m map[string]float64, want float64) string {
	for k, v := range m {
		//flatlint:ignore maporder edge case: caller treats any matching key as equivalent
		if v == want { return k } //flatlint:ignore floatcmp edge case: exact sentinel comparison
	}
	return ""
}

// Separated has a directive cut off from its target by a blank line. The
// suppression only reaches the same line or the line directly below, so
// the append must still be reported and the directive reported unused.
func Separated(m map[string]int) []string {
	var out []string
	//flatlint:ignore maporder edge case: blank line below severs this directive

	for k := range m {
		out = append(out, k)
	}
	return out
}

// Unmatched carries a directive on a line with nothing to suppress; the
// directive itself must be reported unused.
func Unmatched() int {
	x := 1 //flatlint:ignore floatcmp edge case: nothing on this line to suppress
	return x
}
