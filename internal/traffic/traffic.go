// Package traffic generates the workloads of the flat-tree paper's
// evaluation (§3.1, §3.3): broadcast/incast clusters of ~1000 servers with
// a single hot-spot server, and all-to-all clusters of ~20 servers, placed
// with strong locality (packed continuously across servers), weak locality
// (packed randomly within pods), or no locality (random across the whole
// network).
package traffic

import (
	"fmt"

	"flattree/internal/graph"
	"flattree/internal/mcf"
	"flattree/internal/topo"
)

// Placement is a workload placement policy.
type Placement uint8

const (
	// Locality packs clusters continuously across servers in index order.
	Locality Placement = iota
	// WeakLocality packs each cluster into randomly chosen pods, using a
	// pod's free servers before spilling to another pod — the paper's
	// worst-case model of resource fragmentation.
	WeakLocality
	// NoLocality scatters cluster members uniformly across the network.
	NoLocality
)

// String returns the placement name.
func (p Placement) String() string {
	switch p {
	case Locality:
		return "locality"
	case WeakLocality:
		return "weak-locality"
	case NoLocality:
		return "no-locality"
	}
	return fmt.Sprintf("placement(%d)", uint8(p))
}

// Cluster is one service cluster: a set of server node IDs, with a hot-spot
// member for broadcast/incast patterns.
type Cluster struct {
	Servers []int
	Hotspot int
}

// Spec describes a clustered workload.
type Spec struct {
	// ClusterSize is the requested cluster size; it is capped at the
	// network's server count (the paper sweeps k from 4, where 1000-server
	// clusters exceed the whole network).
	ClusterSize int
	// Placement selects the placement policy.
	Placement Placement
	// Seed drives all randomized choices (hot-spot selection, random
	// placements).
	Seed uint64
}

// MakeClusters partitions servers into floor(N/size) clusters (at least
// one; the last servers stay idle if N is not a multiple, and the single
// cluster is the whole network when N < size), then picks one random
// hot-spot per cluster. serverIDs must be the topology's servers in index
// order.
func MakeClusters(nw *topo.Network, serverIDs []int, spec Spec) ([]Cluster, error) {
	n := len(serverIDs)
	if n < 2 {
		return nil, fmt.Errorf("traffic: need at least 2 servers, have %d", n)
	}
	size := spec.ClusterSize
	if size < 2 {
		return nil, fmt.Errorf("traffic: cluster size %d too small", size)
	}
	if size > n {
		size = n
	}
	num := n / size
	rng := graph.NewRNG(spec.Seed)

	var order []int
	switch spec.Placement {
	case Locality:
		order = append(order, serverIDs...)
	case NoLocality:
		order = append(order, serverIDs...)
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
	case WeakLocality:
		var err error
		order, err = weakLocalityOrder(nw, serverIDs, size, rng)
		if err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("traffic: unknown placement %d", spec.Placement)
	}

	clusters := make([]Cluster, num)
	for c := range clusters {
		members := append([]int(nil), order[c*size:(c+1)*size]...)
		clusters[c] = Cluster{
			Servers: members,
			Hotspot: members[rng.Intn(len(members))],
		}
	}
	return clusters, nil
}

// weakLocalityOrder emits servers so that consecutive runs of `size` fill
// randomly chosen pods first and spill to other random pods only when the
// current pod runs out of free servers.
func weakLocalityOrder(nw *topo.Network, serverIDs []int, size int, rng *graph.RNG) ([]int, error) {
	byPod := make(map[int][]int)
	var podIDs []int
	for _, sv := range serverIDs {
		pod := nw.Nodes[sv].Pod
		if _, ok := byPod[pod]; !ok {
			podIDs = append(podIDs, pod)
		}
		byPod[pod] = append(byPod[pod], sv)
	}
	if len(podIDs) == 0 {
		return nil, fmt.Errorf("traffic: no pods")
	}
	// Shuffle each pod's free list so members within a pod are random.
	for _, pod := range podIDs {
		l := byPod[pod]
		rng.Shuffle(len(l), func(i, j int) { l[i], l[j] = l[j], l[i] })
	}
	nonEmpty := append([]int(nil), podIDs...)
	order := make([]int, 0, len(serverIDs))
	need := 0
	for len(nonEmpty) > 0 {
		if need == 0 {
			need = size
		}
		pi := rng.Intn(len(nonEmpty))
		pod := nonEmpty[pi]
		free := byPod[pod]
		take := need
		if take > len(free) {
			take = len(free)
		}
		order = append(order, free[:take]...)
		byPod[pod] = free[take:]
		need -= take
		if len(byPod[pod]) == 0 {
			nonEmpty[pi] = nonEmpty[len(nonEmpty)-1]
			nonEmpty = nonEmpty[:len(nonEmpty)-1]
		}
	}
	return order, nil
}

// BroadcastCommodities emits one commodity per (hot-spot, member) pair of
// every cluster — the paper's broadcast/incast hot-spot pattern. Demands
// are unordered pairs; with undirected link capacities the broadcast and
// incast directions are equivalent.
//
// nominalSize normalizes the throughput scale across k: when a cluster had
// to be capped below the nominal size (the paper sweeps k from 4, where
// 1000-server clusters exceed the whole network), per-pair demand is scaled
// so each hot spot still terminates nominalSize-1 demand units, keeping λ
// on the paper's per-1000-server-cluster scale. Pass 0 for plain unit
// demands.
func BroadcastCommodities(clusters []Cluster, nominalSize int) []mcf.Commodity {
	var out []mcf.Commodity
	for _, c := range clusters {
		demand := 1.0
		if nominalSize > len(c.Servers) {
			demand = float64(nominalSize-1) / float64(len(c.Servers)-1)
		}
		for _, sv := range c.Servers {
			if sv == c.Hotspot {
				continue
			}
			out = append(out, mcf.Commodity{Src: c.Hotspot, Dst: sv, Demand: demand})
		}
	}
	return out
}

// AllToAllCommodities emits one commodity per unordered server pair within
// every cluster. nominalSize scales demands like BroadcastCommodities: a
// capped cluster still generates C(nominalSize, 2) total demand units.
func AllToAllCommodities(clusters []Cluster, nominalSize int) []mcf.Commodity {
	var out []mcf.Commodity
	for _, c := range clusters {
		demand := 1.0
		sz := len(c.Servers)
		if nominalSize > sz {
			demand = float64(nominalSize*(nominalSize-1)) / float64(sz*(sz-1))
		}
		for i := 0; i < sz; i++ {
			for j := i + 1; j < sz; j++ {
				out = append(out, mcf.Commodity{Src: c.Servers[i], Dst: c.Servers[j], Demand: demand})
			}
		}
	}
	return out
}
