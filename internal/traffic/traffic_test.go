package traffic

import (
	"testing"
	"testing/quick"

	"flattree/internal/fattree"
)

func mustFatTree(t *testing.T, k int) *fattree.FatTree {
	t.Helper()
	f, err := fattree.New(k)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestLocalityPacksContinuously(t *testing.T) {
	f := mustFatTree(t, 4)
	cl, err := MakeClusters(f.Net, f.ServerIDs, Spec{ClusterSize: 4, Placement: Locality, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(cl) != 4 {
		t.Fatalf("got %d clusters, want 4", len(cl))
	}
	for c, cluster := range cl {
		for i, sv := range cluster.Servers {
			if sv != f.ServerIDs[c*4+i] {
				t.Fatalf("cluster %d member %d = %d, want %d", c, i, sv, f.ServerIDs[c*4+i])
			}
		}
	}
}

func TestClusterSizeCappedAtNetwork(t *testing.T) {
	f := mustFatTree(t, 4) // 16 servers
	cl, err := MakeClusters(f.Net, f.ServerIDs, Spec{ClusterSize: 1000, Placement: Locality, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(cl) != 1 || len(cl[0].Servers) != 16 {
		t.Fatalf("got %d clusters of %d", len(cl), len(cl[0].Servers))
	}
}

// TestPartitionProperties: every placement yields disjoint clusters whose
// union is a prefix-sized subset of the servers, and hot spots are members.
func TestPartitionProperties(t *testing.T) {
	f := mustFatTree(t, 6) // 54 servers
	err := quick.Check(func(seed uint64, placeRaw, sizeRaw uint8) bool {
		placement := Placement(placeRaw % 3)
		size := int(sizeRaw%20) + 2
		cl, err := MakeClusters(f.Net, f.ServerIDs, Spec{ClusterSize: size, Placement: placement, Seed: seed})
		if err != nil {
			return false
		}
		if size > 54 {
			size = 54
		}
		if len(cl) != 54/size {
			return false
		}
		seen := make(map[int]bool)
		for _, c := range cl {
			if len(c.Servers) != size {
				return false
			}
			hot := false
			for _, sv := range c.Servers {
				if seen[sv] {
					return false // overlap
				}
				seen[sv] = true
				if sv == c.Hotspot {
					hot = true
				}
			}
			if !hot {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 40})
	if err != nil {
		t.Error(err)
	}
}

// TestWeakLocalityMostlyInPod: with cluster size <= pod size, the bulk of
// every cluster must sit in a single pod (spill only when a pod's free
// servers run out).
func TestWeakLocalityMostlyInPod(t *testing.T) {
	f := mustFatTree(t, 8) // pods of 16 servers
	cl, err := MakeClusters(f.Net, f.ServerIDs, Spec{ClusterSize: 8, Placement: WeakLocality, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	multiPod := 0
	for _, c := range cl {
		pods := make(map[int]int)
		for _, sv := range c.Servers {
			pods[f.Net.Nodes[sv].Pod]++
		}
		if len(pods) > 2 {
			t.Errorf("cluster spans %d pods", len(pods))
		}
		if len(pods) > 1 {
			multiPod++
		}
	}
	// 16 clusters into 8 pods of capacity 2 clusters: spills are rare.
	if multiPod > len(cl)/2 {
		t.Errorf("%d/%d clusters spilled pods", multiPod, len(cl))
	}
}

func TestBroadcastCommodities(t *testing.T) {
	f := mustFatTree(t, 4)
	cl, err := MakeClusters(f.Net, f.ServerIDs, Spec{ClusterSize: 8, Placement: Locality, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	comms := BroadcastCommodities(cl, 0)
	if len(comms) != len(cl)*7 {
		t.Fatalf("got %d commodities, want %d", len(comms), len(cl)*7)
	}
	for _, c := range comms {
		if c.Demand != 1 || c.Src == c.Dst {
			t.Fatalf("bad commodity %+v", c)
		}
	}
}

func TestAllToAllCommodities(t *testing.T) {
	f := mustFatTree(t, 4)
	cl, err := MakeClusters(f.Net, f.ServerIDs, Spec{ClusterSize: 4, Placement: NoLocality, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	comms := AllToAllCommodities(cl, 0)
	if len(comms) != len(cl)*6 { // C(4,2)=6 per cluster
		t.Fatalf("got %d commodities, want %d", len(comms), len(cl)*6)
	}
}

func TestErrors(t *testing.T) {
	f := mustFatTree(t, 4)
	if _, err := MakeClusters(f.Net, f.ServerIDs, Spec{ClusterSize: 1, Placement: Locality}); err == nil {
		t.Error("cluster size 1 should fail")
	}
	if _, err := MakeClusters(f.Net, nil, Spec{ClusterSize: 4, Placement: Locality}); err == nil {
		t.Error("no servers should fail")
	}
	if _, err := MakeClusters(f.Net, f.ServerIDs, Spec{ClusterSize: 4, Placement: Placement(9)}); err == nil {
		t.Error("unknown placement should fail")
	}
}

func TestDeterministicBySeed(t *testing.T) {
	f := mustFatTree(t, 6)
	a, _ := MakeClusters(f.Net, f.ServerIDs, Spec{ClusterSize: 5, Placement: WeakLocality, Seed: 9})
	b, _ := MakeClusters(f.Net, f.ServerIDs, Spec{ClusterSize: 5, Placement: WeakLocality, Seed: 9})
	for i := range a {
		if a[i].Hotspot != b[i].Hotspot {
			t.Fatal("same seed diverged")
		}
		for j := range a[i].Servers {
			if a[i].Servers[j] != b[i].Servers[j] {
				t.Fatal("same seed diverged")
			}
		}
	}
}
