// Package flattree_test holds the benchmark harness that regenerates every
// table and figure of the flat-tree paper's evaluation (§3). Each
// BenchmarkFigN runs the corresponding experiment driver and reports the
// headline series as custom metrics, so
//
//	go test -bench=. -benchmem
//
// reproduces the paper end to end at laptop scale; cmd/flatsim runs the
// same drivers at the paper's full k=32 scale. Ablation benchmarks cover
// the design choices DESIGN.md calls out: wiring pattern 1 vs 2, ring vs
// line side cabling, FPTAS accuracy, and practical (ECMP/KSP) versus
// optimal routing.
package flattree_test

import (
	"context"
	"fmt"
	"strconv"
	"testing"

	"flattree/internal/core"
	"flattree/internal/ctrl"
	"flattree/internal/dynsim"
	"flattree/internal/experiments"
	"flattree/internal/fattree"
	"flattree/internal/faults"
	"flattree/internal/flowsim"
	"flattree/internal/graph"
	"flattree/internal/jellyfish"
	"flattree/internal/mcf"
	"flattree/internal/metrics"
	"flattree/internal/routing"
	"flattree/internal/topo"
	"flattree/internal/traffic"
)

func cfgUpTo(kmax int, eps float64) experiments.Config {
	cfg := experiments.DefaultConfig()
	cfg.KMax = kmax
	cfg.Epsilon = eps
	return cfg
}

// reportLast parses the named columns of a table's last row into benchmark
// metrics.
func reportLast(b *testing.B, t *experiments.Table, cols map[string]int) {
	b.Helper()
	if len(t.Rows) == 0 {
		b.Fatalf("table %q has no rows; the sweep produced no data", t.Title)
	}
	row := t.Rows[len(t.Rows)-1]
	for name, idx := range cols {
		v, err := strconv.ParseFloat(row[idx], 64)
		if err != nil {
			b.Fatalf("column %d = %q: %v", idx, row[idx], err)
		}
		b.ReportMetric(v, name)
	}
}

// BenchmarkFig5 regenerates Figure 5 (network-wide APL sweep) and reports
// the k=16 series: fat-tree, random graph, and flat-tree at the paper's
// chosen (m, n) = (k/8, 2k/8).
func BenchmarkFig5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.Fig5(context.Background(), cfgUpTo(16, 0.1))
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportLast(b, t, map[string]int{"fat_apl": 1, "rg_apl": 2, "flat_apl": 4})
		}
	}
}

// BenchmarkFig6 regenerates Figure 6 (intra-pod APL sweep).
func BenchmarkFig6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.Fig6(context.Background(), cfgUpTo(16, 0.1))
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportLast(b, t, map[string]int{"flat_apl": 1, "fat_apl": 2, "rg_apl": 3, "twostage_apl": 4})
		}
	}
}

// BenchmarkFig7 regenerates Figure 7 (broadcast/incast throughput) on a
// reduced sweep (k <= 10 keeps the LP solves in benchmark time; flatsim
// -kmax 32 runs the full figure).
func BenchmarkFig7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.Fig7(context.Background(), cfgUpTo(10, 0.1))
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportLast(b, t, map[string]int{"fat_tput": 1, "flat_tput": 3, "rg_tput": 5})
		}
	}
}

// BenchmarkFig8 regenerates Figure 8 (all-to-all throughput).
func BenchmarkFig8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.Fig8(context.Background(), cfgUpTo(8, 0.12))
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportLast(b, t, map[string]int{
				"fat_tput": 1, "flat_tput": 3, "twostage_tput": 5, "rg_tput": 7})
		}
	}
}

// BenchmarkHybrid regenerates the §3.4 hybrid-zone experiment and reports
// the worst per-zone ratio to the complete-network reference plus the
// worst interference factor across proportions.
func BenchmarkHybrid(b *testing.B) {
	cfg := cfgUpTo(8, 0.12)
	cfg.HybridK = 8
	for i := 0; i < b.N; i++ {
		_, rows, err := experiments.Hybrid(context.Background(), cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			worstG, worstL, worstI := 1e9, 1e9, 1e9
			for _, r := range rows {
				if v := r.LambdaGlobal / r.RefGlobal; v < worstG {
					worstG = v
				}
				if v := r.LambdaLocal / r.RefLocal; v < worstL {
					worstL = v
				}
				if r.Interference < worstI {
					worstI = r.Interference
				}
			}
			b.ReportMetric(worstG, "worst_zoneG_ratio")
			b.ReportMetric(worstL, "worst_zoneL_ratio")
			b.ReportMetric(worstI, "worst_interference")
		}
	}
}

// BenchmarkProfile runs the §2.4 (m, n) profiling procedure at k=16.
func BenchmarkProfile(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, res, err := experiments.Profile(context.Background(), cfgUpTo(16, 0.1), 16)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(float64(res.BestM), "best_m")
			b.ReportMetric(float64(res.BestN), "best_n")
			b.ReportMetric(res.BestAPL, "best_apl")
		}
	}
}

// BenchmarkAblationWiringPattern compares pod-core wiring patterns 1 and 2
// (§2.3) by network-wide APL at k=16, where pattern 2's rotation is coprime
// and should win.
func BenchmarkAblationWiringPattern(b *testing.B) {
	for _, pat := range []core.Pattern{core.Pattern1, core.Pattern2} {
		b.Run(pat.String(), func(b *testing.B) {
			var apl float64
			for i := 0; i < b.N; i++ {
				ft, err := core.Build(core.Params{K: 16, Pattern: pat})
				if err != nil {
					b.Fatal(err)
				}
				if err := ft.SetUniformMode(core.ModeGlobalRandom); err != nil {
					b.Fatal(err)
				}
				apl, err = metrics.AveragePathLength(ft.Net())
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(apl, "apl")
		})
	}
}

// BenchmarkAblationRingVsLine compares wrap-around versus open inter-pod
// side cabling (a DESIGN.md decision the paper leaves open).
func BenchmarkAblationRingVsLine(b *testing.B) {
	for _, line := range []bool{false, true} {
		name := "ring"
		if line {
			name = "line"
		}
		b.Run(name, func(b *testing.B) {
			var apl float64
			for i := 0; i < b.N; i++ {
				ft, err := core.Build(core.Params{K: 16, Line: line})
				if err != nil {
					b.Fatal(err)
				}
				if err := ft.SetUniformMode(core.ModeGlobalRandom); err != nil {
					b.Fatal(err)
				}
				apl, err = metrics.AveragePathLength(ft.Net())
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(apl, "apl")
		})
	}
}

// BenchmarkAblationEpsilon measures the FPTAS accuracy/runtime trade-off on
// a fixed fig7-style instance.
func BenchmarkAblationEpsilon(b *testing.B) {
	ft, err := core.Build(core.Params{K: 8})
	if err != nil {
		b.Fatal(err)
	}
	if err := ft.SetUniformMode(core.ModeGlobalRandom); err != nil {
		b.Fatal(err)
	}
	nw := ft.Net()
	clusters, err := traffic.MakeClusters(nw, nw.Servers(), traffic.Spec{
		ClusterSize: 1000, Placement: traffic.Locality, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	comms := traffic.BroadcastCommodities(clusters, 1000)
	for _, eps := range []float64{0.05, 0.1, 0.2} {
		b.Run(fmt.Sprintf("eps=%g", eps), func(b *testing.B) {
			var res mcf.Result
			for i := 0; i < b.N; i++ {
				res, err = mcf.MaxConcurrentFlow(context.Background(), nw, comms, mcf.Options{Epsilon: eps})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(res.Lambda, "lambda")
			b.ReportMetric(res.DualGap(), "dual_gap")
			b.ReportMetric(float64(res.Dijkstras), "dijkstras")
		})
	}
}

// reportSolves summarizes a chain of MCF results as benchmark metrics: the
// worst DualGap (so the BENCH_mcf.json snapshots show any speedup comes
// with the ε contract intact), total Dijkstra calls, warm-start count, and
// the last λ.
func reportSolves(b *testing.B, results []mcf.Result) {
	b.Helper()
	worstGap, dijkstras, warm := 0.0, 0, 0
	for _, r := range results {
		if g := r.DualGap(); g > worstGap {
			worstGap = g
		}
		dijkstras += r.Dijkstras
		if r.WarmStarted {
			warm++
		}
	}
	b.ReportMetric(worstGap, "dual_gap_max")
	b.ReportMetric(float64(dijkstras), "dijkstras")
	b.ReportMetric(float64(warm), "warm_starts")
	b.ReportMetric(results[len(results)-1].Lambda, "lambda_last")
}

// BenchmarkSolverSequence measures the repeated-solve workload the
// experiment drivers actually run: a failure → dark-window → repair
// trajectory of link-level variants of one fabric, solved back to back.
// Each stage re-draws its permutation workload (distinct seed), the way
// selfheal trials re-draw theirs when the surviving component shifts, so
// warm solves go through the relaxed gate's demand-delta rescale rather
// than the identical-commodities fast path. The cold variant solves every
// network from scratch (one MaxConcurrentFlow each); the warm variant
// chains one mcf.Solver through the sequence, warm-starting each solve
// from the previous length function.
func BenchmarkSolverSequence(b *testing.B) {
	ft, err := core.Build(core.Params{K: 8})
	if err != nil {
		b.Fatal(err)
	}
	if err := ft.SetUniformMode(core.ModeGlobalRandom); err != nil {
		b.Fatal(err)
	}
	base := ft.Net()
	nets := []*topo.Network{base}
	for i, frac := range []float64{0.08, 0.12} {
		sc := faults.Scenario{LinkFraction: frac, Seed: uint64(21 + i)}
		out, err := faults.Fail(base, sc)
		if err != nil {
			b.Fatal(err)
		}
		// Dark window: the staged repair has restored roughly half the
		// damage (Degrade at half the fraction approximates the mid-repair
		// network without standing up the live control plane).
		sc.LinkFraction = frac / 2
		win, err := faults.Degrade(base, sc)
		if err != nil {
			b.Fatal(err)
		}
		rec, _, err := faults.Recover(out, faults.RecoverOptions{
			Seed: uint64(91 + i), Rewirable: faults.DefaultRewirable})
		if err != nil {
			b.Fatal(err)
		}
		nets = append(nets, out.Net, win, rec)
	}
	servers := base.Servers()
	stageComms := make([][]mcf.Commodity, len(nets))
	for ni := range nets {
		perm := graph.NewRNG(uint64(7 + ni)).Perm(len(servers))
		comms := make([]mcf.Commodity, 0, len(servers))
		for i, p := range perm {
			if i != p {
				comms = append(comms, mcf.Commodity{Src: servers[i], Dst: servers[p], Demand: 1})
			}
		}
		stageComms[ni] = comms
	}
	opt := mcf.Options{Epsilon: 0.1}
	results := make([]mcf.Result, len(nets))
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for ni, nw := range nets {
				results[ni], err = mcf.MaxConcurrentFlow(context.Background(), nw, stageComms[ni], opt)
				if err != nil {
					b.Fatal(err)
				}
			}
		}
		reportSolves(b, results)
	})
	b.Run("warm", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s := mcf.GetSolver()
			for ni, nw := range nets {
				results[ni], err = s.Solve(context.Background(), nw, stageComms[ni], opt)
				if err != nil {
					b.Fatal(err)
				}
			}
			s.Release()
		}
		reportSolves(b, results)
	})
}

// BenchmarkSolverCrossK measures the cross-k warm chain the fig8 column
// work items run: the all-to-all workload per k, solved down a fat-tree k
// column. The cold variant solves each k independently; the warm variant
// chains one mcf.Solver through the column, so every solve after the first
// maps the previous k's final length function across by canonical switch
// coordinates and rescales its λ by the aggregate-demand ratio. The
// many-source workload is where the tighter normalizer pays: each phase
// costs at least one Dijkstra per source, so cutting phases cuts oracle
// calls directly (a single-source broadcast chain has no such floor and
// warm-starting it is roughly neutral).
func BenchmarkSolverCrossK(b *testing.B) {
	ks := []int{6, 8, 10}
	type stage struct {
		nw    *topo.Network
		comms []mcf.Commodity
	}
	stages := make([]stage, 0, len(ks))
	for _, k := range ks {
		ft, err := fattree.New(k)
		if err != nil {
			b.Fatal(err)
		}
		nw := ft.Net
		clusters, err := traffic.MakeClusters(nw, nw.Servers(), traffic.Spec{
			ClusterSize: 20, Placement: traffic.Locality, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		stages = append(stages, stage{nw, traffic.AllToAllCommodities(clusters, 20)})
	}
	opt := mcf.Options{Epsilon: 0.1}
	var err error
	results := make([]mcf.Result, len(stages))
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for ni, st := range stages {
				results[ni], err = mcf.MaxConcurrentFlow(context.Background(), st.nw, st.comms, opt)
				if err != nil {
					b.Fatal(err)
				}
			}
		}
		reportSolves(b, results)
	})
	b.Run("warm", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s := mcf.GetSolver()
			for ni, st := range stages {
				results[ni], err = s.Solve(context.Background(), st.nw, st.comms, opt)
				if err != nil {
					b.Fatal(err)
				}
			}
			s.Release()
		}
		reportSolves(b, results)
	})
}

// BenchmarkAblationRouting compares practical routing schemes (§2.6)
// against optimal routing on the fig7 workload in global-random mode.
func BenchmarkAblationRouting(b *testing.B) {
	ft, err := core.Build(core.Params{K: 8})
	if err != nil {
		b.Fatal(err)
	}
	if err := ft.SetUniformMode(core.ModeGlobalRandom); err != nil {
		b.Fatal(err)
	}
	nw := ft.Net()
	clusters, err := traffic.MakeClusters(nw, nw.Servers(), traffic.Spec{
		ClusterSize: 1000, Placement: traffic.Locality, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	mcfComms := traffic.BroadcastCommodities(clusters, 1000)
	fsComms := make([]flowsim.Commodity, len(mcfComms))
	for i, c := range mcfComms {
		fsComms[i] = flowsim.Commodity{Src: c.Src, Dst: c.Dst, Demand: c.Demand}
	}
	b.Run("optimal", func(b *testing.B) {
		var res mcf.Result
		for i := 0; i < b.N; i++ {
			res, err = mcf.MaxConcurrentFlow(context.Background(), nw, mcfComms, mcf.Options{Epsilon: 0.1})
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(res.Lambda, "lambda")
	})
	for _, kk := range []int{4, 8} {
		b.Run(fmt.Sprintf("ksp%d", kk), func(b *testing.B) {
			var res flowsim.Result
			for i := 0; i < b.N; i++ {
				res, err = flowsim.MaxMin(nw, routing.NewKSP(nw, kk), fsComms)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(res.Lambda, "lambda")
		})
	}
	b.Run("ecmp", func(b *testing.B) {
		var res flowsim.Result
		for i := 0; i < b.N; i++ {
			res, err = flowsim.MaxMin(nw, routing.NewECMP(nw, 32), fsComms)
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(res.Lambda, "lambda")
	})
}

// BenchmarkBuildTopologies measures raw construction cost per topology.
func BenchmarkBuildTopologies(b *testing.B) {
	b.Run("fattree/k=16", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := fattree.New(16); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("jellyfish/k=16", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := jellyfish.New(16, uint64(i)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("flattree/k=16", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.Build(core.Params{K: 16}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkConversion measures a full mode flip (reconfiguration plus
// effective-network rebuild), the operation the §2.6 controller triggers.
func BenchmarkConversion(b *testing.B) {
	for _, k := range []int{8, 16, 32} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			ft, err := core.Build(core.Params{K: k})
			if err != nil {
				b.Fatal(err)
			}
			modes := []core.Mode{core.ModeGlobalRandom, core.ModeClos}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := ft.SetUniformMode(modes[i%2]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkControlPlanePlan measures controller planning (diff computation)
// for a full-fabric conversion at the paper's hybrid scale, k=30.
func BenchmarkControlPlanePlan(b *testing.B) {
	ft, err := core.Build(core.Params{K: 30})
	if err != nil {
		b.Fatal(err)
	}
	c := ctrl.NewController(ft)
	modes := make([]core.Mode, 30)
	for i := range modes {
		if i < 15 {
			modes[i] = core.ModeGlobalRandom
		} else {
			modes[i] = core.ModeLocalRandom
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Plan(modes); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLatency runs the packet-level simulator on uniform traffic in
// Clos versus global-random mode, reporting the mean latency and hop count
// — the dynamic face of Figure 5.
func BenchmarkLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.Latency(context.Background(), cfgUpTo(8, 0.1), 8, 0.1)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			get := func(row, col int) float64 {
				v, err := strconv.ParseFloat(t.Rows[row][col], 64)
				if err != nil {
					b.Fatal(err)
				}
				return v
			}
			b.ReportMetric(get(0, 3), "fat_latency")
			b.ReportMetric(get(3, 3), "flatglobal_latency")
			b.ReportMetric(get(0, 5), "fat_hops")
			b.ReportMetric(get(3, 5), "flatglobal_hops")
		}
	}
}

// BenchmarkFaults runs the failure-robustness experiment.
func BenchmarkFaults(b *testing.B) {
	cfg := cfgUpTo(8, 0.1)
	cfg.Trials = 2
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Faults(context.Background(), cfg, 8); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDynsimFCT measures the fluid simulator on the adaptive-loop
// workload, reporting mean FCT in Clos vs global-random mode.
func BenchmarkDynsimFCT(b *testing.B) {
	ft, err := core.Build(core.Params{K: 8})
	if err != nil {
		b.Fatal(err)
	}
	run := func(mode core.Mode) float64 {
		if err := ft.SetUniformMode(mode); err != nil {
			b.Fatal(err)
		}
		nw := ft.Net()
		servers := nw.Servers()
		arr := dynsim.PoissonHotspot(servers, servers[0], 4.0, 1.0, 150, graph.NewRNG(11))
		res, err := dynsim.Simulate(context.Background(), nw, routing.NewKSP(nw, 8), arr, 0)
		if err != nil {
			b.Fatal(err)
		}
		return res.MeanFCT
	}
	var clos, global float64
	for i := 0; i < b.N; i++ {
		clos = run(core.ModeClos)
		global = run(core.ModeGlobalRandom)
	}
	b.ReportMetric(clos, "clos_fct")
	b.ReportMetric(global, "global_fct")
}

// BenchmarkAPL measures the all-pairs path-length computation at paper
// scale.
func BenchmarkAPL(b *testing.B) {
	for _, k := range []int{16, 32} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			ft, err := core.Build(core.Params{K: k})
			if err != nil {
				b.Fatal(err)
			}
			if err := ft.SetUniformMode(core.ModeGlobalRandom); err != nil {
				b.Fatal(err)
			}
			nw := ft.Net()
			b.Run("seq", func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := metrics.ServerPathLengths(nw); err != nil {
						b.Fatal(err)
					}
				}
			})
			b.Run("par", func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := metrics.ServerPathLengthsParallel(nw, 0); err != nil {
						b.Fatal(err)
					}
				}
			})
		})
	}
}
