package main

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"net/http"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestServeSmokeEndToEnd drives the built binary the way an operator
// would: start `flatsim serve` on an ephemeral port, issue a cold and a
// warm request (identical bodies, miss then hit), SIGTERM it, and require
// a clean exit with the cell persisted on disk.
func TestServeSmokeEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and execs the binary; skipped in -short")
	}
	bin := filepath.Join(t.TempDir(), "flatsim")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	storeDir := filepath.Join(t.TempDir(), "store")

	cmd := exec.Command(bin, "serve", "-listen", "127.0.0.1:0", "-store", storeDir, "-codeversion", "smoke")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		_ = cmd.Process.Kill()
		_ = cmd.Wait()
	}()

	// The first stdout line announces the resolved ephemeral address.
	r := bufio.NewReader(stdout)
	line, err := r.ReadString('\n')
	if err != nil {
		t.Fatalf("reading serve banner: %v (stderr: %s)", err, stderr.String())
	}
	i := strings.Index(line, "http://")
	if i < 0 {
		t.Fatalf("no address in banner %q", line)
	}
	base := strings.Fields(line[i:])[0]

	get := func(path string) (*http.Response, []byte) {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if err := resp.Body.Close(); err != nil {
			t.Fatal(err)
		}
		return resp, body
	}

	if resp, body := get("/healthz"); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d %s", resp.StatusCode, body)
	}
	const cell = "/v1/cell?exp=fig5&col=fat-tree&kmax=6"
	cold, coldBody := get(cell)
	if cold.StatusCode != http.StatusOK || cold.Header.Get("X-Flatsim-Cache") != "miss" {
		t.Fatalf("cold: %d cache=%q body=%s", cold.StatusCode, cold.Header.Get("X-Flatsim-Cache"), coldBody)
	}
	warm, warmBody := get(cell)
	if warm.StatusCode != http.StatusOK || warm.Header.Get("X-Flatsim-Cache") != "hit" {
		t.Fatalf("warm: %d cache=%q", warm.StatusCode, warm.Header.Get("X-Flatsim-Cache"))
	}
	if !bytes.Equal(coldBody, warmBody) {
		t.Fatalf("warm body differs from cold:\n--- cold\n%s--- warm\n%s", coldBody, warmBody)
	}

	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	rest, _ := io.ReadAll(r)
	if err := waitTimeout(cmd, 30*time.Second); err != nil {
		t.Fatalf("serve did not exit cleanly on SIGTERM: %v (stdout: %s, stderr: %s)", err, rest, stderr.String())
	}
	if !strings.Contains(string(rest), "drained cleanly") {
		t.Errorf("missing drain confirmation in output %q", rest)
	}
	cells, err := filepath.Glob(filepath.Join(storeDir, "*.cell"))
	if err != nil || len(cells) != 1 {
		t.Errorf("store has %d cells after drain (%v); want 1", len(cells), err)
	}
}

// waitTimeout waits for the process, failing if it outlives d.
func waitTimeout(cmd *exec.Cmd, d time.Duration) error {
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		return err
	case <-time.After(d):
		return fmt.Errorf("timed out after %v", d)
	}
}
