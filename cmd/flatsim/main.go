// Command flatsim regenerates the flat-tree paper's evaluation (§3): every
// figure's data series, the (m, n) profiling procedure, and the wiring
// property checks, printed as aligned tables or TSV.
//
// Usage:
//
//	flatsim [flags] fig5|fig6|fig7|fig8|hybrid|profile|props|faults|faultsrecovery|selfheal|soak|latency|stats|export|all
//	flatsim serve [serve flags]
//
// Examples:
//
//	flatsim -kmax 32 fig5            # the paper's full sweep
//	flatsim -kmax 12 -eps 0.1 fig8   # throughput sweep, laptop scale
//	flatsim -hybridk 30 hybrid       # the paper's 30-pod hybrid study
//	flatsim -tsv all > results.tsv
//	flatsim -kmax 8 -trials 5 faultsrecovery   # §5 failure -> recovery table
//	flatsim -kmax 8 -failfrac 0.25 selfheal    # live self-healing trajectory
//	flatsim -kmax 8 -rate 1 -horizon 20 soak   # chaos soak: continuous failures vs self-healing
//	flatsim serve -listen :8447 -store ./flatstore   # experiment service with a persistent cell cache
//
// Long sweeps respond to Ctrl-C / SIGTERM and to -timeout by stopping
// promptly with a partial-result message; already-printed tables remain
// valid.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"syscall"

	"flattree/internal/chaos"
	"flattree/internal/core"
	"flattree/internal/experiments"
	"flattree/internal/fattree"
	"flattree/internal/faults"
	"flattree/internal/jellyfish"
	"flattree/internal/mcf"
	"flattree/internal/topo"
	"flattree/internal/twostage"
)

func main() {
	// The serve subcommand has its own flag surface (service knobs, not
	// experiment parameters), so it dispatches before the global FlagSet
	// sees the arguments.
	if len(os.Args) > 1 && os.Args[1] == "serve" {
		serveMain(os.Args[2:])
		return
	}
	cfg := experiments.DefaultConfig()
	var (
		kmin    = flag.Int("kmin", cfg.KMin, "smallest fat-tree parameter k (even)")
		kmax    = flag.Int("kmax", cfg.KMax, "largest fat-tree parameter k")
		kstep   = flag.Int("kstep", cfg.KStep, "k sweep step")
		seed    = flag.Uint64("seed", cfg.Seed, "seed for random constructions and placements")
		eps     = flag.Float64("eps", cfg.Epsilon, "max-concurrent-flow approximation epsilon")
		hybridk = flag.Int("hybridk", cfg.HybridK, "network size for the hybrid experiment (paper: 30)")
		profk   = flag.Int("profilek", 16, "network size for the profiling experiment")
		trials  = flag.Int("trials", 1, "average randomized experiments over this many seeds")
		par     = flag.Int("parallel", 0, "worker goroutines per experiment sweep (0 = all cores); output is identical for every setting")
		tsv     = flag.Bool("tsv", false, "emit tab-separated values instead of aligned tables")
		expK    = flag.Int("exportk", 4, "network size for the export subcommand")
		expMode = flag.String("exportmode", "global-random", "flat-tree mode for the export subcommand")
		expFmt  = flag.String("format", "dot", "export format: dot or json")
		cpuProf = flag.String("cpuprofile", "", "write a CPU profile of the run to this file (go tool pprof)")
		memProf = flag.String("memprofile", "", "write a heap profile at exit to this file (go tool pprof)")
		timeout = flag.Duration("timeout", 0, "abort the run after this duration (0 = no limit)")

		switchFrac = flag.Float64("switchfrac", 0, "faultsrecovery: fraction of switches failed per trial")
		burstPods  = flag.Int("burstpods", 0, "faultsrecovery: pods hit by a correlated link burst")
		burstFrac  = flag.Float64("burstfrac", 0, "faultsrecovery: fraction of each burst pod's links failed")
		convFrac   = flag.Float64("convfrac", 0, "faultsrecovery: fraction of converter blocks that die (pinning their links)")

		solveBudget = flag.Duration("solvebudget", 0, "wall-clock budget per MCF solve; budget-limited cells carry a trailing ~ (0 = unbounded)")
		ssspKern    = flag.String("sssp", "auto", "shortest-path kernel inside MCF solves: auto|heap|delta (identical output, different speed)")
		failFrac    = flag.Float64("failfrac", 0.25, "selfheal: fraction of pod agents killed mid-run")
		batch       = flag.Int("batch", 1, "selfheal/soak: pods re-aimed per dark window")

		soakRate     = flag.Float64("rate", 1, "soak: episode arrival rate per unit virtual time")
		soakHorizon  = flag.Float64("horizon", 20, "soak: virtual duration of the soak")
		soakEpisodes = flag.Int("episodes", 0, "soak: cap on spawned episodes (0 = unlimited)")
		soakWindow   = flag.Float64("windowcost", 0.25, "soak: virtual time one dark repair window occupies")
		soakSLO      = flag.Float64("slo", 0.9, "soak: served-capacity fraction the availability verdict is judged against")
		soakMix      = flag.String("mix", "", "soak: episode mix weights link,switch,conv,pod (empty = 5,3,1,1)")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: flatsim [flags] fig5|fig6|fig7|fig8|hybrid|profile|props|faults|faultsrecovery|selfheal|soak|latency|stats|export|all\n"+
			"       flatsim serve [serve flags]   (see flatsim serve -h)\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	cfg.KMin, cfg.KMax, cfg.KStep = *kmin, *kmax, *kstep
	cfg.Seed, cfg.Epsilon, cfg.HybridK = *seed, *eps, *hybridk
	cfg.Trials = *trials
	cfg.Parallelism = *par
	cfg.SolveBudget = *solveBudget

	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}

	// Reject nonsense before any experiment spends time on it. Fractions
	// are validated here with the same [0,1) domain the faults package
	// enforces, so the error arrives before a sweep's first table rather
	// than from deep inside trial 0.
	badFlag := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "flatsim: "+format+"\n", args...)
		os.Exit(2)
	}
	if *timeout < 0 {
		badFlag("-timeout %v is negative; use 0 for no limit", *timeout)
	}
	if *solveBudget < 0 {
		badFlag("-solvebudget %v is negative; use 0 for unbounded solves", *solveBudget)
	}
	// Fixed-order slice, not a map literal: which flag the error names
	// must not depend on map iteration order.
	for _, fr := range []struct {
		name string
		f    float64
	}{
		{"-switchfrac", *switchFrac}, {"-burstfrac", *burstFrac}, {"-convfrac", *convFrac},
	} {
		if fr.f < 0 || fr.f >= 1 {
			badFlag("%s %g out of [0,1)", fr.name, fr.f)
		}
	}
	if *failFrac <= 0 || *failFrac >= 1 {
		badFlag("-failfrac %g out of (0,1)", *failFrac)
	}
	if *burstPods < 0 {
		badFlag("-burstpods %d is negative", *burstPods)
	}
	if *batch <= 0 {
		badFlag("-batch %d must be positive", *batch)
	}
	if *trials <= 0 {
		badFlag("-trials %d must be positive", *trials)
	}
	if *eps <= 0 || *eps >= 0.5 {
		badFlag("-eps %g out of (0,0.5)", *eps)
	}
	if *soakRate <= 0 {
		badFlag("-rate %g must be positive", *soakRate)
	}
	if *soakHorizon <= 0 {
		badFlag("-horizon %g must be positive", *soakHorizon)
	}
	if *soakEpisodes < 0 {
		badFlag("-episodes %d is negative; use 0 for unlimited", *soakEpisodes)
	}
	if *soakWindow <= 0 {
		badFlag("-windowcost %g must be positive", *soakWindow)
	}
	if *soakSLO <= 0 || *soakSLO > 1 {
		badFlag("-slo %g out of (0,1]", *soakSLO)
	}
	mix, err := parseMix(*soakMix)
	if err != nil {
		badFlag("%v", err)
	}
	kern, ok := mcf.ParseSSSPKernel(*ssspKern)
	if !ok {
		badFlag("-sssp %q is not auto, heap, or delta", *ssspKern)
	}
	cfg.SSSP = kern

	// Ctrl-C / SIGTERM and -timeout cancel the experiment context; drivers
	// stop handing out cells promptly and return the context's error.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	// Profiling hooks: full-scale runs (e.g. -kmax 32 fig7) can be
	// profiled without editing code. The profiles cover the experiment
	// itself, not flag parsing.
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		check(err)
		check(pprof.StartCPUProfile(f))
		defer func() {
			pprof.StopCPUProfile()
			check(f.Close())
		}()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			check(err)
			runtime.GC() // report live heap, not transient garbage
			check(pprof.WriteHeapProfile(f))
			check(f.Close())
		}()
	}

	emit := func(t *experiments.Table) {
		if *tsv {
			if err := t.WriteTSV(os.Stdout); err != nil {
				fatal(err)
			}
			fmt.Println()
			return
		}
		fmt.Println(t.String())
	}

	var run func(string)
	run = func(name string) {
		// One warm-start summary line per experiment (stderr, so piped TSV
		// stays clean): how many MCF solves reused a previous solve's length
		// function, and why the cold ones didn't. The counters are process-
		// wide totals, so diff around the experiment; "all" recurses and
		// lets each child report itself.
		before := mcf.ReadWarmStats()
		defer func() {
			if name == "all" {
				return
			}
			after := mcf.ReadWarmStats()
			hits, misses := after.Hits-before.Hits, after.Misses-before.Misses
			if solves := hits + misses; solves > 0 {
				fmt.Fprintf(os.Stderr,
					"flatsim: %s: %d/%d MCF solves warm-started (%.0f%%); cold: %d first-solve, %d eps-mismatch, %d low-overlap, %d overshoot-retry\n",
					name, hits, solves, 100*float64(hits)/float64(solves),
					after.FirstSolve-before.FirstSolve, after.Epsilon-before.Epsilon,
					after.Overlap-before.Overlap, after.ColdRetry-before.ColdRetry)
			}
		}()
		switch name {
		case "fig5":
			t, err := experiments.Fig5(ctx, cfg)
			check(err)
			emit(t)
		case "fig6":
			t, err := experiments.Fig6(ctx, cfg)
			check(err)
			emit(t)
		case "fig7":
			t, err := experiments.Fig7(ctx, cfg)
			check(err)
			emit(t)
		case "fig8":
			t, err := experiments.Fig8(ctx, cfg)
			check(err)
			emit(t)
		case "hybrid":
			t, _, err := experiments.Hybrid(ctx, cfg)
			check(err)
			emit(t)
		case "profile":
			t, res, err := experiments.Profile(ctx, cfg, *profk)
			check(err)
			emit(t)
			fmt.Printf("best: m=%d n=%d apl=%.3f (paper's default: m=%d n=%d)\n",
				res.BestM, res.BestN, res.BestAPL, res.K/8, 2*res.K/8)
		case "props":
			t, _, err := experiments.Props(ctx, cfg)
			check(err)
			emit(t)
		case "faults":
			t, err := experiments.Faults(ctx, cfg, cfg.KMax)
			check(err)
			emit(t)
		case "faultsrecovery":
			t, err := experiments.FaultsRecovery(ctx, cfg, cfg.KMax, faults.Scenario{
				SwitchFraction:    *switchFrac,
				BurstPods:         *burstPods,
				BurstLinkFraction: *burstFrac,
				ConverterFraction: *convFrac,
			})
			check(err)
			emit(t)
		case "selfheal":
			t, err := experiments.SelfHeal(ctx, cfg, cfg.KMax, *failFrac, *batch)
			check(err)
			emit(t)
		case "soak":
			// Start the soak from a clean warm-start ledger so the per-batch
			// lines below describe this soak alone, not whatever ran before.
			mcf.ResetWarmStats()
			t, arms, err := experiments.Soak(ctx, cfg, cfg.KMax, chaos.Options{
				Rate:         *soakRate,
				Horizon:      *soakHorizon,
				MaxEpisodes:  *soakEpisodes,
				WindowCost:   *soakWindow,
				BatchSize:    *batch,
				SLOThreshold: *soakSLO,
				Mix:          mix,
			})
			// One warm-rate line per episode batch (the segments sharing one
			// episode index solve in series on one solver), per arm — stderr,
			// so piped TSV stays clean.
			for _, arm := range arms {
				for _, g := range arm.Result.Groups {
					label := fmt.Sprintf("episode %d", g.Episode)
					if g.Episode < 0 {
						label = "baseline"
					}
					rate := 0.0
					if g.Solves > 0 {
						rate = 100 * float64(g.Warm) / float64(g.Solves)
					}
					fmt.Fprintf(os.Stderr, "flatsim: soak %s: %s: %d/%d solves warm-started (%.0f%%)\n",
						arm.Name, label, g.Warm, g.Solves, rate)
				}
			}
			// The partial table is still valid on cancellation; print what
			// finished before reporting the interruption.
			if len(t.Rows) > 0 {
				emit(t)
			}
			check(err)
		case "latency":
			t, err := experiments.Latency(ctx, cfg, cfg.KMax, 0)
			check(err)
			emit(t)
		case "stats":
			emit(statsTable(cfg))
		case "export":
			exportNetwork(*expK, *expMode, *expFmt)
		case "all":
			for _, n := range []string{"stats", "props", "fig5", "fig6", "fig7", "fig8", "hybrid", "profile", "faults", "faultsrecovery", "selfheal", "soak", "latency"} {
				run(n)
			}
		default:
			fmt.Fprintf(os.Stderr, "flatsim: unknown experiment %q\n", name)
			flag.Usage()
			os.Exit(2)
		}
	}
	run(flag.Arg(0))
}

// statsTable summarizes the constructed topologies per k: equipment counts
// and link tag breakdown for flat-tree in each mode.
func statsTable(cfg experiments.Config) *experiments.Table {
	t := &experiments.Table{
		Title: "topology inventory per k",
		Header: []string{"k", "topology", "servers", "switches", "links",
			"clos-links", "conv-links", "side-links", "rand-links"},
	}
	for _, k := range cfg.Ks() {
		add := func(name string, nw *topo.Network) {
			st := nw.Stats()
			t.AddRow(fmt.Sprint(k), name,
				fmt.Sprint(st.Servers),
				fmt.Sprint(st.EdgeSwitches+st.AggSwitches+st.CoreSwitches),
				fmt.Sprint(st.Links),
				fmt.Sprint(st.LinksByTag[topo.TagClos]),
				fmt.Sprint(st.LinksByTag[topo.TagConverter]),
				fmt.Sprint(st.LinksByTag[topo.TagSide]),
				fmt.Sprint(st.LinksByTag[topo.TagRandom]))
		}
		fat, err := fattree.New(k)
		check(err)
		add("fat-tree", fat.Net)
		rg, err := jellyfish.New(k, cfg.Seed)
		check(err)
		add("random-graph", rg.Net)
		_, n := core.DefaultMN(k)
		ts, err := twostage.New(k, n, cfg.Seed)
		check(err)
		add("two-stage-rg", ts.Net)
		ft, err := core.Build(core.Params{K: k})
		check(err)
		for _, mode := range []core.Mode{core.ModeClos, core.ModeGlobalRandom, core.ModeLocalRandom} {
			check(ft.SetUniformMode(mode))
			add("flat-tree/"+mode.String(), ft.Net())
		}
	}
	return t
}

// exportNetwork writes a flat-tree's effective network to stdout as DOT or
// JSON for external visualization and tooling.
func exportNetwork(k int, mode, format string) {
	ft, err := core.Build(core.Params{K: k})
	check(err)
	var m core.Mode
	switch mode {
	case "clos":
		m = core.ModeClos
	case "global-random":
		m = core.ModeGlobalRandom
	case "local-random":
		m = core.ModeLocalRandom
	default:
		fatal(fmt.Errorf("unknown export mode %q", mode))
	}
	check(ft.SetUniformMode(m))
	switch format {
	case "dot":
		check(ft.Net().WriteDOT(os.Stdout))
	case "json":
		check(ft.Net().WriteJSON(os.Stdout))
	default:
		fatal(fmt.Errorf("unknown export format %q", format))
	}
}

// parseMix turns the -mix flag ("link,switch,conv,pod" relative weights)
// into a chaos.Mix, keeping DefaultMix's severity knobs; empty selects the
// default mix entirely.
func parseMix(s string) (chaos.Mix, error) {
	if s == "" {
		return chaos.Mix{}, nil
	}
	var w [4]float64
	fields := strings.Split(s, ",")
	if len(fields) != len(w) {
		return chaos.Mix{}, fmt.Errorf("-mix %q needs exactly %d comma-separated weights (link,switch,conv,pod)", s, len(w))
	}
	total := 0.0
	for i, f := range fields {
		v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil || v < 0 {
			return chaos.Mix{}, fmt.Errorf("-mix weight %q must be a number >= 0", f)
		}
		w[i] = v
		total += v
	}
	if total <= 0 {
		return chaos.Mix{}, fmt.Errorf("-mix %q has no positive weight", s)
	}
	m := chaos.DefaultMix()
	m.LinkBurst, m.SwitchKill, m.ConverterKill, m.PodKill = w[0], w[1], w[2], w[3]
	return m, nil
}

func check(err error) {
	if err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintln(os.Stderr, "flatsim: run cancelled, results are partial:", err)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "flatsim:", err)
	os.Exit(1)
}
