package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"runtime/debug"
	"syscall"
	"time"

	"flattree/internal/experiments"
	"flattree/internal/serve"
)

// serveMain is the `flatsim serve` subcommand: a long-running experiment
// service over a crash-safe content-addressed result store. It has its own
// FlagSet because its knobs (listen address, pool sizing, drain grace) are
// service configuration, not experiment parameters — experiment identity
// arrives per request.
func serveMain(args []string) {
	fs := flag.NewFlagSet("flatsim serve", flag.ExitOnError)
	var (
		listen      = fs.String("listen", "127.0.0.1:8447", "address to listen on (use :0 for an ephemeral port)")
		storeDir    = fs.String("store", "flatstore", "directory of the content-addressed result store")
		solvers     = fs.Int("solvers", 0, "concurrently computing cells (0 = all cores)")
		queue       = fs.Int("queue", 0, "requests that may wait for a solver before shedding with 429 (0 = 2x solvers)")
		jobParallel = fs.Int("jobparallel", 1, "worker goroutines inside one cell computation")
		drainGrace  = fs.Duration("draingrace", 10*time.Second, "how long in-flight cells may finish after SIGTERM")
		retryAfter  = fs.Duration("retryafter", time.Second, "Retry-After hint on shed (429) responses")
		codeVersion = fs.String("codeversion", "", "code-version component of content addresses (default: VCS revision, else \"dev\")")
		seed        = fs.Uint64("seed", 1, "default seed for requests that do not pass one")
		eps         = fs.Float64("eps", 0.1, "default approximation epsilon for requests that do not pass one")
	)
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: flatsim serve [flags]\n\nServes experiment cells over HTTP:\n"+
			"  GET /v1/cell?exp=fig7&col=fat-tree/loc&kmax=8&seed=1   one cell (TSV)\n"+
			"  GET /v1/columns?exp=fig7                               column discovery\n"+
			"  GET /healthz, /metricsz                                liveness and counters\n\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		os.Exit(2)
	}
	if fs.NArg() != 0 {
		fs.Usage()
		os.Exit(2)
	}
	if *eps <= 0 || *eps >= 0.5 {
		fmt.Fprintf(os.Stderr, "flatsim: -eps %g out of (0,0.5)\n", *eps)
		os.Exit(2)
	}

	defaults := experiments.DefaultConfig()
	defaults.Seed, defaults.Epsilon = *seed, *eps

	srv, err := serve.New(serve.Config{
		StoreDir:       *storeDir,
		Solvers:        *solvers,
		QueueDepth:     *queue,
		JobParallelism: *jobParallel,
		RetryAfter:     *retryAfter,
		DrainGrace:     *drainGrace,
		CodeVersion:    resolveCodeVersion(*codeVersion),
		Defaults:       defaults,
	})
	check(err)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	l, err := net.Listen("tcp", *listen)
	check(err)
	st := srv.Store().Stats()
	fmt.Printf("flatsim: serving experiment cells on http://%s (store %s: %d cells, %d torn writes removed, %d quarantined)\n",
		l.Addr(), *storeDir, st.Entries, st.TornRemoved, st.Quarantined)
	check(srv.Run(ctx, l))
	st = srv.Store().Stats()
	fmt.Printf("flatsim: drained cleanly; %d cells persisted\n", st.Entries)
}

// resolveCodeVersion picks the content-address code component: the flag if
// set, else the VCS revision baked into the binary, else "dev". Different
// code must never share a content address, so a real build stamps its
// commit automatically.
func resolveCodeVersion(flagVal string) string {
	if flagVal != "" {
		return flagVal
	}
	if bi, ok := debug.ReadBuildInfo(); ok {
		for _, s := range bi.Settings {
			if s.Key == "vcs.revision" && s.Value != "" {
				return s.Value
			}
		}
	}
	return "dev"
}
