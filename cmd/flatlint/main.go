// Command flatlint runs the repository's custom static-analysis pass over
// the module's packages and reports violations of the correctness
// invariants documented in DESIGN.md ("Static analysis & invariants"):
//
//	floatcmp    no == / != on floating-point operands
//	globalrand  no package-global math/rand state
//	layering    the internal package dependency DAG
//	ignorederr  no discarded errors or dead blank assignments
//	nopanic     no panics in library packages
//	ctxbudget   ctx is the first parameter and never stored in a struct
//	stopchan    no raw stop channels in the context-scoped packages
//	maporder    no order-sensitive effects inside map ranges
//	gorolife    goroutines in library code are tied to a lifecycle
//	clockwall   wall-clock reads confined and banned transitively from
//	            the deterministic packages
//	randflow    RNGs are injected, never built from hard-coded seeds
//
// The engine is interprocedural: packages load and type-check
// concurrently, per-function summaries are propagated over the call
// graph, and clockwall/randflow report violations reached through any
// chain of helpers.
//
// Usage:
//
//	go run ./cmd/flatlint ./...
//	go run ./cmd/flatlint -C /path/to/module -json ./internal/ctrl
//
// Findings print one per line as "file:line: analyzer: message"; with
// -json they print instead as a JSON array of {file, line, analyzer,
// message} objects (an empty array when clean), which is what
// scripts/check.sh archives next to the benchmark baselines.
//
// Exit codes are a contract: 0 means the tree is clean, 1 means findings
// were reported, 2 means the run itself failed (usage error, unknown
// package pattern, parse or type-check failure). Suppress a finding with
// "//flatlint:ignore <analyzer> <reason>" on, or directly above, the
// offending line.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"flattree/internal/flatlint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable body of main: parses flags, lints, renders, and
// returns the process exit code (0 clean, 1 findings, 2 load/usage error).
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("flatlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	dir := fs.String("C", ".", "module root directory (containing go.mod)")
	jsonOut := fs.Bool("json", false, "print findings as a JSON array instead of one line each")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: flatlint [-C dir] [-json] [./... | ./pkg/path ...]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	// Package errors already carry the "flatlint:" prefix.
	r, err := flatlint.NewRunner(*dir)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	findings, err := r.Run(fs.Args())
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	if *jsonOut {
		if findings == nil {
			findings = []flatlint.Finding{}
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
	} else {
		for _, f := range findings {
			fmt.Fprintln(stdout, f)
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(stderr, "flatlint: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}
