// Command flatlint runs the repository's custom static-analysis pass over
// the module's packages and reports violations of the correctness
// invariants documented in DESIGN.md ("Static analysis & invariants"):
//
//	floatcmp    no == / != on floating-point operands
//	globalrand  no package-global math/rand state
//	layering    the internal package dependency DAG
//	ignorederr  no discarded errors or dead blank assignments
//	nopanic     no panics in library packages
//
// Usage:
//
//	go run ./cmd/flatlint ./...
//	go run ./cmd/flatlint -C /path/to/module ./internal/ctrl
//
// Findings print one per line as "file:line: analyzer: message" and make
// the tool exit 1; a clean run exits 0. Suppress a finding with
// "//flatlint:ignore <analyzer> <reason>" on, or directly above, the
// offending line.
package main

import (
	"flag"
	"fmt"
	"os"

	"flattree/internal/flatlint"
)

func main() {
	dir := flag.String("C", ".", "module root directory (containing go.mod)")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: flatlint [-C dir] [./... | ./pkg/path ...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	// Package errors already carry the "flatlint:" prefix.
	r, err := flatlint.NewRunner(*dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	findings, err := r.Run(flag.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "flatlint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}
