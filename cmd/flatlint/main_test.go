package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// fixtureModule is the flatlint test module, which is known to contain
// findings for every analyzer.
const fixtureModule = "../../internal/flatlint/testdata/src/flattree"

// writeCleanModule creates a minimal module with no findings and returns
// its root directory.
func writeCleanModule(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	files := map[string]string{
		"go.mod":  "module clean\n\ngo 1.21\n",
		"main.go": "package main\n\nfunc main() {}\n",
	}
	for name, src := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func TestRunFindingsExitOne(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-C", fixtureModule, "./..."}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1; stderr:\n%s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "finding(s)") {
		t.Errorf("stderr missing finding count: %q", stderr.String())
	}
	lines := strings.Split(strings.TrimSpace(stdout.String()), "\n")
	if len(lines) == 0 {
		t.Fatal("no findings printed")
	}
	for _, line := range lines {
		// file:line: analyzer: message
		if parts := strings.SplitN(line, ": ", 3); len(parts) != 3 {
			t.Errorf("malformed finding line %q", line)
		}
	}
}

func TestRunJSONContract(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-C", fixtureModule, "-json", "./..."}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1; stderr:\n%s", code, stderr.String())
	}
	var findings []struct {
		File     string `json:"file"`
		Line     int    `json:"line"`
		Analyzer string `json:"analyzer"`
		Message  string `json:"message"`
	}
	if err := json.Unmarshal(stdout.Bytes(), &findings); err != nil {
		t.Fatalf("output is not a JSON array: %v\n%s", err, stdout.String())
	}
	if len(findings) == 0 {
		t.Fatal("JSON array is empty; fixture module must have findings")
	}
	for i, f := range findings {
		if f.File == "" || f.Line <= 0 || f.Analyzer == "" || f.Message == "" {
			t.Errorf("finding %d has empty field: %+v", i, f)
		}
	}
}

func TestRunCleanExitZero(t *testing.T) {
	dir := writeCleanModule(t)

	var stdout, stderr bytes.Buffer
	if code := run([]string{"-C", dir, "./..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit code = %d, want 0; stderr:\n%s", code, stderr.String())
	}
	if stdout.Len() != 0 {
		t.Errorf("clean run printed output: %q", stdout.String())
	}

	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-C", dir, "-json", "./..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("-json exit code = %d, want 0; stderr:\n%s", code, stderr.String())
	}
	// A clean tree must still print a valid (empty) JSON array, never
	// "null", so downstream tooling can parse unconditionally.
	if got := strings.TrimSpace(stdout.String()); got != "[]" {
		t.Errorf("clean -json output = %q, want []", got)
	}
}

func TestRunErrorsExitTwo(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"bad flag", []string{"-definitely-not-a-flag"}},
		{"missing module root", []string{"-C", filepath.Join(os.TempDir(), "no-such-flatlint-dir")}},
		{"unknown pattern", []string{"-C", fixtureModule, "./internal/nonexistent"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			if code := run(tc.args, &stdout, &stderr); code != 2 {
				t.Errorf("exit code = %d, want 2; stderr:\n%s", code, stderr.String())
			}
			if stderr.Len() == 0 {
				t.Error("error run left stderr empty")
			}
		})
	}
}
