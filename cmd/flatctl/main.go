// Command flatctl demonstrates the flat-tree control plane (§2.6) as
// separate controller and agent processes speaking the ctrl wire protocol
// over TCP.
//
// Usage:
//
//	flatctl serve -k 8 -listen 127.0.0.1:7447
//	    Run the centralized controller for a flat-tree(k).
//
//	flatctl agent -k 8 -pod 3 -connect 127.0.0.1:7447
//	    Run the converter agent for one pod.
//
//	flatctl demo -k 8 [-mode global-random|local-random|clos|hybrid]
//	    Run controller and all k agents in-process, perform the
//	    conversion, and print the resulting topology statistics.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"flattree/internal/core"
	"flattree/internal/ctrl"
	"flattree/internal/metrics"
	"flattree/internal/topo"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "serve":
		serve(os.Args[2:])
	case "agent":
		agent(os.Args[2:])
	case "demo":
		demo(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: flatctl serve|agent|demo [flags]")
	os.Exit(2)
}

func serve(args []string) {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	k := fs.Int("k", 8, "fat-tree parameter")
	listen := fs.String("listen", "127.0.0.1:7447", "controller listen address")
	mode := fs.String("mode", "global-random", "target mode once all agents register")
	fs.Parse(args)

	ft, err := core.Build(core.Params{K: *k})
	check(err)
	c := ctrl.NewController(ft)
	l, err := net.Listen("tcp", *listen)
	check(err)
	fmt.Printf("flatctl: controller for flat-tree(k=%d) on %s, waiting for %d agents\n", *k, l.Addr(), *k)
	// Ctrl-C / SIGTERM cancels the context: Serve closes the listener and
	// Close drains the per-connection goroutines, mirroring flatsim.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	ctx, cancel := context.WithTimeout(ctx, 5*time.Minute)
	defer cancel()
	go c.Serve(ctx, l)
	defer c.Close()
	check(c.WaitForAgents(ctx, *k))
	fmt.Printf("flatctl: %d agents registered, converting to %s\n", c.NumAgents(), *mode)
	modes, err := parseModes(*mode, *k)
	check(err)
	start := time.Now()
	check(c.Convert(ctx, modes))
	fmt.Printf("flatctl: conversion committed at epoch %d in %v\n", c.Epoch(), time.Since(start))
	printStats(c.FlatTree())
}

func agent(args []string) {
	fs := flag.NewFlagSet("agent", flag.ExitOnError)
	k := fs.Int("k", 8, "fat-tree parameter")
	pod := fs.Int("pod", 0, "pod index this agent manages")
	connect := fs.String("connect", "127.0.0.1:7447", "controller address")
	delay := fs.Duration("apply-delay", 0, "simulated converter switching latency")
	fs.Parse(args)

	ft, err := core.Build(core.Params{K: *k})
	check(err)
	if *pod < 0 || *pod >= *k {
		check(fmt.Errorf("pod %d out of range [0,%d)", *pod, *k))
	}
	a := ctrl.NewAgent(*pod, ctrl.ConfigsForPod(ft, *pod))
	a.ApplyDelay = *delay
	fmt.Printf("flatctl: agent for pod %d connecting to %s\n", *pod, *connect)
	// Ctrl-C / SIGTERM cancels the agent's context; Run tears down its
	// connection and returns the context error, which exits 0 here — an
	// operator stopping an agent is a clean shutdown, not a failure.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := a.Run(ctx, *connect); err != nil && !errors.Is(err, context.Canceled) {
		check(err)
	}
}

func demo(args []string) {
	fs := flag.NewFlagSet("demo", flag.ExitOnError)
	k := fs.Int("k", 8, "fat-tree parameter")
	mode := fs.String("mode", "global-random", "target mode: clos, global-random, local-random, hybrid")
	delay := fs.Duration("apply-delay", 5*time.Millisecond, "simulated converter switching latency")
	fs.Parse(args)

	ft, err := core.Build(core.Params{K: *k})
	check(err)
	c := ctrl.NewController(ft)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	check(err)
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	go c.Serve(ctx, l)
	defer c.Close()
	for p := 0; p < *k; p++ {
		a := ctrl.NewAgent(p, ctrl.ConfigsForPod(ft, p))
		a.ApplyDelay = *delay
		go func() { _ = a.Run(ctx, l.Addr().String()) }()
	}
	check(c.WaitForAgents(ctx, *k))
	fmt.Printf("flatctl demo: flat-tree(k=%d), %d converters, %d agents\n",
		*k, len(ft.Convs), c.NumAgents())

	modes, err := parseModes(*mode, *k)
	check(err)
	start := time.Now()
	check(c.Convert(ctx, modes))
	fmt.Printf("conversion to %q committed at epoch %d in %v\n", *mode, c.Epoch(), time.Since(start))
	printStats(c.FlatTree())
}

func parseModes(mode string, k int) ([]core.Mode, error) {
	modes := make([]core.Mode, k)
	var m core.Mode
	switch mode {
	case "clos":
		m = core.ModeClos
	case "global-random":
		m = core.ModeGlobalRandom
	case "local-random":
		m = core.ModeLocalRandom
	case "hybrid":
		for p := range modes {
			if p < k/2 {
				modes[p] = core.ModeGlobalRandom
			} else {
				modes[p] = core.ModeLocalRandom
			}
		}
		return modes, nil
	default:
		return nil, fmt.Errorf("unknown mode %q", mode)
	}
	for p := range modes {
		modes[p] = m
	}
	return modes, nil
}

func printStats(ft *core.FlatTree) {
	nw := ft.Net()
	st := nw.Stats()
	fmt.Printf("effective topology: %d links (clos=%d converter=%d side=%d)\n",
		st.Links, st.LinksByTag[topo.TagClos], st.LinksByTag[topo.TagConverter], st.LinksByTag[topo.TagSide])
	apl, err := metrics.AveragePathLength(nw)
	check(err)
	fmt.Printf("average server-pair path length: %.3f hops\n", apl)
}

func check(err error) {
	if err == nil {
		return
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintln(os.Stderr, "flatctl: interrupted:", err)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "flatctl:", err)
	os.Exit(1)
}
