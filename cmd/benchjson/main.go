// Command benchjson maintains BENCH_mcf.json, the repository's solver
// benchmark baseline. It consumes raw `go test -bench` output and either
// renders a fresh baseline file or checks the fresh numbers against the
// checked-in one.
//
// Render mode (the default) writes a new baseline JSON:
//
//	go test -bench ... | tee raw.txt
//	benchjson -bench raw.txt -in BENCH_mcf.json -out BENCH_mcf.json
//
// Every frozen section of the input file — the top-level keys starting
// with "baseline" — is carried forward verbatim, so the historical perf
// trajectory lives only in the checked-in JSON and can never silently
// diverge from a generator script. A missing input file or an input with
// no frozen sections is a hard error: regenerating the baseline must never
// drop history.
//
// Check mode compares the fresh run against the checked-in current
// numbers and exits non-zero on a solver ns/op regression beyond the
// tolerance (default 15%, configurable with -tolerance) in any solver
// benchmark (BenchmarkAblationEpsilon, BenchmarkFleischer,
// BenchmarkSolverSequence, BenchmarkSolverCrossK):
//
//	benchjson -bench raw.txt -in BENCH_mcf.json -check
//	benchjson -bench raw.txt -in BENCH_mcf.json -check -tolerance 0.25
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// solverPrefixes names the benchmarks the -check regression gate guards:
// the FPTAS hot paths whose wall-time the experiment sweeps are made of.
var solverPrefixes = []string{
	"BenchmarkAblationEpsilon",
	"BenchmarkFleischer",
	"BenchmarkSolverSequence",
	"BenchmarkSolverCrossK",
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}

// run is main with its exits and streams injected, so tests can drive flag
// parsing and the error paths without a subprocess.
func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	benchPath := fs.String("bench", "", "raw `go test -bench` output file (required)")
	inPath := fs.String("in", "BENCH_mcf.json", "checked-in baseline JSON to carry frozen sections from / check against")
	outPath := fs.String("out", "", "output file for render mode (default: stdout)")
	check := fs.Bool("check", false, "compare the fresh run against -in instead of rendering; exit 1 on a solver ns/op regression beyond -tolerance")
	tolerance := fs.Float64("tolerance", 0.15, "relative ns/op increase -check tolerates before failing")
	benchtime := fs.String("benchtime", "", "solver benchtime label recorded in the output")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *benchPath == "" {
		return fmt.Errorf("missing -bench: raw benchmark output is required")
	}
	if *tolerance <= 0 || *tolerance >= 10 {
		return fmt.Errorf("-tolerance %g out of (0,10): it is a relative increase, not a percentage", *tolerance)
	}
	results, err := parseBench(*benchPath)
	if err != nil {
		return fmt.Errorf("parsing %s: %w", *benchPath, err)
	}
	if len(results) == 0 {
		return fmt.Errorf("%s contains no Benchmark result lines", *benchPath)
	}
	base, err := loadBaseline(*inPath)
	if err != nil {
		return err
	}
	if *check {
		if err := checkRegressions(results, base, *tolerance); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "benchjson: no solver regression beyond %.0f%% vs %s\n", *tolerance*100, *inPath)
		return nil
	}
	out, err := render(results, base, *benchtime)
	if err != nil {
		return err
	}
	if *outPath == "" {
		fmt.Fprint(stdout, out)
		return nil
	}
	if err := os.WriteFile(*outPath, []byte(out), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "benchjson: wrote %s\n", *outPath)
	return nil
}

// metric is one benchmark's parsed measurements, keyed by normalized unit
// (ns/op -> ns_op, B/op -> bytes_op, custom metrics keep their names).
type metric struct {
	iterations int64
	values     map[string]float64
}

// parseBench extracts "BenchmarkX-N  iters  v1 unit1  v2 unit2 ..." lines.
func parseBench(path string) (map[string]metric, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()

	out := make(map[string]metric)
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i] // strip the -GOMAXPROCS suffix
			}
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue // not a result line (e.g. a subtest header)
		}
		m := metric{iterations: iters, values: make(map[string]float64)}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("%s: bad value %q", name, fields[i])
			}
			unit := fields[i+1]
			if unit == "B/op" {
				unit = "bytes_op"
			}
			m.values[strings.ReplaceAll(unit, "/", "_")] = v
		}
		out[name] = m
	}
	return out, sc.Err()
}

// loadBaseline reads the checked-in JSON and validates it still carries
// its frozen history.
func loadBaseline(path string) (map[string]json.RawMessage, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("checked-in baseline %s unreadable: %w (the frozen sections live only there; refusing to continue without them)", path, err)
	}
	var base map[string]json.RawMessage
	if err := json.Unmarshal(raw, &base); err != nil {
		return nil, fmt.Errorf("parsing %s: %w", path, err)
	}
	frozen := 0
	for k := range base {
		if strings.HasPrefix(k, "baseline") {
			frozen++
		}
	}
	if frozen == 0 {
		return nil, fmt.Errorf("%s has no frozen baseline* sections; regenerating would drop the perf history", path)
	}
	return base, nil
}

// render produces the new baseline JSON: fresh header, every frozen
// section of the input carried forward verbatim (sorted by name), then the
// fresh results.
func render(results map[string]metric, base map[string]json.RawMessage, benchtime string) (string, error) {
	var b strings.Builder
	b.WriteString("{\n")
	fmt.Fprintf(&b, "  %s: %s,\n", quote("description"),
		quote("solver benchmark baseline; regenerate with ./scripts/bench.sh, gate with ./scripts/bench.sh --check"))
	fmt.Fprintf(&b, "  %s: %s,\n", quote("go"),
		quote(fmt.Sprintf("%s %s/%s", runtime.Version(), runtime.GOOS, runtime.GOARCH)))
	if benchtime != "" {
		fmt.Fprintf(&b, "  %s: %s,\n", quote("solver_benchtime"), quote(benchtime))
	}
	var frozen []string
	for k := range base {
		if strings.HasPrefix(k, "baseline") {
			frozen = append(frozen, k)
		}
	}
	sort.Strings(frozen)
	for _, k := range frozen {
		var pretty any
		if err := json.Unmarshal(base[k], &pretty); err != nil {
			return "", fmt.Errorf("frozen section %q: %w", k, err)
		}
		enc, err := json.MarshalIndent(pretty, "  ", "  ")
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&b, "  %s: %s,\n", quote(k), enc)
	}
	b.WriteString("  \"benchmarks\": {\n    \"results\": {\n")
	names := make([]string, 0, len(results))
	for name := range results {
		names = append(names, name)
	}
	sort.Strings(names)
	for i, name := range names {
		m := results[name]
		fmt.Fprintf(&b, "      %s: {\"iterations\": %d", quote(name), m.iterations)
		units := make([]string, 0, len(m.values))
		for u := range m.values {
			units = append(units, u)
		}
		sort.Strings(units)
		for _, u := range units {
			fmt.Fprintf(&b, ", %s: %s", quote(u), strconv.FormatFloat(m.values[u], 'g', -1, 64))
		}
		b.WriteString("}")
		if i < len(names)-1 {
			b.WriteString(",")
		}
		b.WriteString("\n")
	}
	b.WriteString("    }\n  }\n}\n")
	return b.String(), nil
}

func quote(s string) string {
	enc, _ := json.Marshal(s)
	return string(enc)
}

// checkRegressions compares fresh solver ns/op against the checked-in
// current section and errors on any relative increase beyond the tolerance.
func checkRegressions(fresh map[string]metric, base map[string]json.RawMessage, tolerance float64) error {
	var current struct {
		Results map[string]map[string]float64 `json:"results"`
	}
	raw, ok := base["benchmarks"]
	if !ok {
		return fmt.Errorf("checked-in baseline has no \"benchmarks\" section to check against")
	}
	if err := json.Unmarshal(raw, &current); err != nil {
		return fmt.Errorf("parsing checked-in benchmarks: %w", err)
	}
	isSolver := func(name string) bool {
		for _, p := range solverPrefixes {
			if strings.HasPrefix(name, p) {
				return true
			}
		}
		return false
	}
	names := make([]string, 0, len(current.Results))
	for name := range current.Results {
		names = append(names, name)
	}
	sort.Strings(names)
	compared := 0
	var regressions []string
	for _, name := range names {
		if !isSolver(name) {
			continue
		}
		was := current.Results[name]["ns_op"]
		m, ok := fresh[name]
		if !ok || was <= 0 {
			continue // solver bench not in this run (or malformed record)
		}
		now := m.values["ns_op"]
		compared++
		if rel := now/was - 1; rel > tolerance {
			regressions = append(regressions,
				fmt.Sprintf("%s: %.0f -> %.0f ns/op (+%.0f%%)", name, was, now, rel*100))
		}
	}
	if compared == 0 {
		return fmt.Errorf("no solver benchmarks overlap between the fresh run and the checked-in baseline; nothing was checked")
	}
	if len(regressions) > 0 {
		return fmt.Errorf("solver ns/op regressions beyond %.0f%%:\n  %s",
			tolerance*100, strings.Join(regressions, "\n  "))
	}
	return nil
}
