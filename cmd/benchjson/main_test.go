package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeFile drops content into the test's temp dir and returns its path.
func writeFile(t *testing.T, dir, name, content string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const benchRaw = `goos: linux
BenchmarkSolverSequence/cold-8     3  1000000 ns/op  5.0 dijkstras
BenchmarkSolverSequence/warm-8     3   400000 ns/op  5.0 dijkstras
BenchmarkSolverCrossK/warm-8       3   300000 ns/op
PASS
`

const baselineJSON = `{
  "baseline_v1": {"note": "frozen"},
  "benchmarks": {"results": {
    "BenchmarkSolverSequence/cold": {"iterations": 3, "ns_op": 1000000},
    "BenchmarkSolverSequence/warm": {"iterations": 3, "ns_op": 300000},
    "BenchmarkSolverCrossK/warm": {"iterations": 3, "ns_op": 290000}
  }}
}`

// TestRunCheckTolerance pins the -tolerance flag: the fresh warm sequence
// number is 33% over its baseline, so the default 15% gate fails, a loose
// 50% gate passes, and out-of-domain tolerances are rejected at parse time.
func TestRunCheckTolerance(t *testing.T) {
	dir := t.TempDir()
	bench := writeFile(t, dir, "raw.txt", benchRaw)
	in := writeFile(t, dir, "base.json", baselineJSON)

	err := run([]string{"-bench", bench, "-in", in, "-check"}, &strings.Builder{})
	if err == nil || !strings.Contains(err.Error(), "BenchmarkSolverSequence/warm") {
		t.Fatalf("default tolerance: got %v, want a warm-sequence regression", err)
	}
	var out strings.Builder
	if err := run([]string{"-bench", bench, "-in", in, "-check", "-tolerance", "0.5"}, &out); err != nil {
		t.Fatalf("tolerance 0.5: %v", err)
	}
	if !strings.Contains(out.String(), "no solver regression beyond 50%") {
		t.Errorf("tolerance 0.5 output %q does not name the gate", out.String())
	}
	for _, bad := range []string{"0", "-0.2", "10"} {
		if err := run([]string{"-bench", bench, "-in", in, "-check", "-tolerance", bad}, &out); err == nil {
			t.Errorf("-tolerance %s accepted, want domain error", bad)
		}
	}
}

// TestRunBaselineErrors pins the carry-forward error paths: a missing
// checked-in baseline and one without frozen sections must both refuse to
// continue (regenerating would silently drop the perf history).
func TestRunBaselineErrors(t *testing.T) {
	dir := t.TempDir()
	bench := writeFile(t, dir, "raw.txt", benchRaw)

	err := run([]string{"-bench", bench, "-in", filepath.Join(dir, "absent.json")}, &strings.Builder{})
	if err == nil || !strings.Contains(err.Error(), "unreadable") {
		t.Errorf("missing baseline: got %v, want unreadable error", err)
	}
	noFrozen := writeFile(t, dir, "nofrozen.json", `{"benchmarks": {"results": {}}}`)
	err = run([]string{"-bench", bench, "-in", noFrozen}, &strings.Builder{})
	if err == nil || !strings.Contains(err.Error(), "frozen") {
		t.Errorf("frozen-less baseline: got %v, want frozen-section error", err)
	}
	if err := run([]string{"-in", noFrozen}, &strings.Builder{}); err == nil || !strings.Contains(err.Error(), "-bench") {
		t.Errorf("missing -bench: got %v, want usage error", err)
	}
}

// TestRunRenderCarriesFrozenSections checks render mode end to end: frozen
// sections survive verbatim-ish (re-indented), fresh results replace the
// current section, and the GOMAXPROCS suffix is stripped.
func TestRunRenderCarriesFrozenSections(t *testing.T) {
	dir := t.TempDir()
	bench := writeFile(t, dir, "raw.txt", benchRaw)
	in := writeFile(t, dir, "base.json", baselineJSON)
	var out strings.Builder
	if err := run([]string{"-bench", bench, "-in", in}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{`"baseline_v1"`, `"note": "frozen"`, `"BenchmarkSolverCrossK/warm"`, `"ns_op": 300000`} {
		if !strings.Contains(got, want) {
			t.Errorf("rendered output lacks %s:\n%s", want, got)
		}
	}
	if strings.Contains(got, "warm-8") {
		t.Error("GOMAXPROCS suffix not stripped from benchmark names")
	}
}
