// Package flattree is a complete Go implementation of the flat-tree
// convertible data-center network architecture (Xia & Ng, HotNets-XV 2016)
// and of every system its evaluation depends on.
//
// The implementation lives under internal/ — see README.md for the
// architecture tour, DESIGN.md for the system inventory and the
// construction decisions the workshop paper leaves open, and
// EXPERIMENTS.md for paper-versus-measured results for every figure.
// The root package carries the benchmark harness (bench_test.go): each
// BenchmarkFigN regenerates one figure of the paper, and
// integration_test.go cross-validates the independent subsystems (metric
// computation, routing tables, LP solvers, and the packet simulator)
// against each other.
//
// Entry points:
//
//	cmd/flatsim  — regenerate every table/figure (fig5..fig8, hybrid,
//	               profile, props, faults, latency, export)
//	cmd/flatctl  — the §2.6 control plane as real processes
//	examples/    — quickstart, hybrid-zones, controlplane,
//	               routing-ablation, adaptive
package flattree
