// Adaptive conversion: the full §2.6 loop — measure, classify, convert —
// running against live TCP agents. A flat-tree starts as a Clos network; a
// hot-spot workload is simulated at flow level (internal/dynsim), the
// controller classifies the measured flows (ctrl.Advise) and converts the
// network to the advised modes, and the same workload is replayed to show
// the flow-completion-time improvement. Then the workload shifts to small
// intra-pod clusters and the loop adapts again.
//
//	go run ./examples/adaptive
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"time"

	"flattree/internal/core"
	"flattree/internal/ctrl"
	"flattree/internal/dynsim"
	"flattree/internal/graph"
	"flattree/internal/routing"
)

const k = 8

func main() {
	ft, err := core.Build(core.Params{K: k})
	if err != nil {
		log.Fatal(err)
	}
	controller := ctrl.NewController(ft)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	go controller.Serve(ctx, l)
	defer controller.Close()
	for p := 0; p < k; p++ {
		a := ctrl.NewAgent(p, ctrl.ConfigsForPod(ft, p))
		go func() { _ = a.Run(ctx, l.Addr().String()) }()
	}
	if err := controller.WaitForAgents(ctx, k); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("flat-tree(k=%d) controller up, starting in Clos mode\n\n", k)

	// --- Phase 1: a hot-spot tenant appears. ---
	rng := graph.NewRNG(42)
	servers := ft.Net().Servers()
	hotspot := servers[0]
	phase1 := dynsim.PoissonHotspot(servers, hotspot, 4.0, 1.0, 200, rng)

	fmt.Println("phase 1: hot-spot broadcast workload")
	before := measure(ft, phase1)
	fmt.Printf("  Clos mode:           mean FCT %.3f  p99 %.3f\n", before.MeanFCT, before.P99FCT)

	adapt(ctx, controller, ft, before)

	after := measure(ft, phase1)
	fmt.Printf("  converted (%s): mean FCT %.3f  p99 %.3f  (%.0f%% faster)\n\n",
		ft.Mode(0), after.MeanFCT, after.P99FCT, 100*(1-after.MeanFCT/before.MeanFCT))

	// --- Phase 2: the tenant mix shifts to small intra-pod clusters. ---
	podSize := k * k / 4
	var phase2 []dynsim.Arrival
	for p := 0; p < k; p++ {
		podServers := servers[p*podSize : (p+1)*podSize]
		phase2 = append(phase2, dynsim.PoissonPairs(podServers, 2.0, 1.0, 60, rng)...)
	}

	fmt.Println("phase 2: small intra-pod cluster workload")
	before2 := measure(ft, phase2)
	fmt.Printf("  %s mode: mean FCT %.3f  p99 %.3f\n", ft.Mode(0), before2.MeanFCT, before2.P99FCT)

	adapt(ctx, controller, ft, before2)

	after2 := measure(ft, phase2)
	fmt.Printf("  converted (%s):  mean FCT %.3f  p99 %.3f  (%.0f%% faster)\n",
		ft.Mode(0), after2.MeanFCT, after2.P99FCT, 100*(1-after2.MeanFCT/before2.MeanFCT))
}

// measure replays a workload on the current topology at flow level.
func measure(ft *core.FlatTree, arrivals []dynsim.Arrival) dynsim.Result {
	nw := ft.Net()
	res, err := dynsim.Simulate(context.Background(), nw, routing.NewKSP(nw, 8), arrivals, 0)
	if err != nil {
		log.Fatal(err)
	}
	return res
}

// adapt feeds the measured flows to the controller's classifier and
// converts the network to the advised modes over the live agents.
func adapt(ctx context.Context, controller *ctrl.Controller, ft *core.FlatTree, measured dynsim.Result) {
	obs := make([]ctrl.FlowObservation, len(measured.Completed))
	for i, f := range measured.Completed {
		obs[i] = ctrl.FlowObservation{Src: f.Src, Dst: f.Dst, Bytes: f.Size}
	}
	modes, _, err := ctrl.Advise(ft, obs, ctrl.AdviceThresholds{})
	if err != nil {
		log.Fatal(err)
	}
	if err := controller.Convert(ctx, modes); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  controller advice applied at epoch %d: %s\n", controller.Epoch(), summarize(modes))
}

func summarize(modes []core.Mode) string {
	counts := map[core.Mode]int{}
	for _, m := range modes {
		counts[m]++
	}
	return fmt.Sprintf("%d global-random, %d local-random, %d clos pods",
		counts[core.ModeGlobalRandom], counts[core.ModeLocalRandom], counts[core.ModeClos])
}
