// Hybrid zones: the §3.4 scenario as a workload-placement story. A data
// center runs two tenants — a large analytics job with hot-spot
// broadcast/incast traffic and a fleet of small services with all-to-all
// traffic inside 20-server clusters. The operator splits the flat-tree
// into a global-random zone for the former and a local-random zone for the
// latter, and re-proportions the zones as the tenant mix shifts.
//
//	go run ./examples/hybrid-zones
package main

import (
	"context"
	"fmt"
	"log"

	"flattree/internal/core"
	"flattree/internal/mcf"
	"flattree/internal/traffic"
)

const (
	k       = 8
	epsilon = 0.1
)

func main() {
	ft, err := core.Build(core.Params{K: k})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("flat-tree(k=%d): %d pods, %d servers\n\n", k, k, ft.NumServers())

	// Morning: analytics dominates — give it 6 of 8 pods.
	fmt.Println("morning: analytics heavy (6 global-random pods, 2 local-random pods)")
	measure(ft, 6)

	// Evening: the service fleet scales out — rebalance to 3/5. No cables
	// move; the controller reconfigures converter switches.
	fmt.Println("\nevening: services heavy (3 global-random pods, 5 local-random pods)")
	measure(ft, 3)
}

// measure converts the network to the requested split and reports each
// zone's standalone throughput plus the joint interference factor.
func measure(ft *core.FlatTree, globalPods int) {
	modes := make([]core.Mode, k)
	for p := range modes {
		if p < globalPods {
			modes[p] = core.ModeGlobalRandom
		} else {
			modes[p] = core.ModeLocalRandom
		}
	}
	if err := ft.SetModes(modes); err != nil {
		log.Fatal(err)
	}
	nw := ft.Net()

	var analytics, services []int
	for _, sv := range nw.Servers() {
		if nw.Nodes[sv].Pod < globalPods {
			analytics = append(analytics, sv)
		} else {
			services = append(services, sv)
		}
	}

	acl, err := traffic.MakeClusters(nw, analytics, traffic.Spec{
		ClusterSize: 1000, Placement: traffic.Locality, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	scl, err := traffic.MakeClusters(nw, services, traffic.Spec{
		ClusterSize: 20, Placement: traffic.WeakLocality, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	aComms := traffic.BroadcastCommodities(acl, 1000)
	sComms := traffic.AllToAllCommodities(scl, 20)

	resA, err := mcf.MaxConcurrentFlow(context.Background(), nw, aComms, mcf.Options{Epsilon: epsilon})
	if err != nil {
		log.Fatal(err)
	}
	resS, err := mcf.MaxConcurrentFlow(context.Background(), nw, sComms, mcf.Options{Epsilon: epsilon})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  analytics zone: %d servers, broadcast λ = %.4f (dual gap %.1f%%)\n",
		len(analytics), resA.Lambda, 100*resA.DualGap())
	fmt.Printf("  services zone:  %d servers in %d clusters, all-to-all λ = %.4f (dual gap %.1f%%)\n",
		len(services), len(scl), resS.Lambda, 100*resS.DualGap())

	// Run both tenants together, each zone's demands scaled to its
	// standalone rate: a factor near 1 means perfect segregation.
	var joint []mcf.Commodity
	for _, c := range aComms {
		joint = append(joint, mcf.Commodity{Src: c.Src, Dst: c.Dst, Demand: c.Demand * resA.Lambda})
	}
	for _, c := range sComms {
		joint = append(joint, mcf.Commodity{Src: c.Src, Dst: c.Dst, Demand: c.Demand * resS.Lambda})
	}
	resJ, err := mcf.MaxConcurrentFlow(context.Background(), nw, joint, mcf.Options{Epsilon: epsilon})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  running together: interference factor %.3f (1.0 = zones fully segregated)\n",
		resJ.Lambda)
}
