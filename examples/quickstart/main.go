// Quickstart: build a flat-tree, convert it between its operation modes,
// and compare it against the fat-tree and random-graph baselines built from
// the same equipment.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"flattree/internal/core"
	"flattree/internal/fattree"
	"flattree/internal/jellyfish"
	"flattree/internal/metrics"
	"flattree/internal/topo"
)

func main() {
	const k = 8

	// A flat-tree is a fat-tree(k) equipment set plus converter switches.
	// m 6-port and n 4-port converters tap each (edge, aggregation) switch
	// pair; the zero values pick the paper's profiled optimum
	// (m, n) = (k/8, 2k/8).
	ft, err := core.Build(core.Params{K: k})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("flat-tree(k=%d): %d servers, %d switches, %d converter switches\n",
		k, ft.NumServers(), 5*k*k/4, len(ft.Convs))

	// The same equipment wired as the two fixed baselines.
	fat, err := fattree.New(k)
	if err != nil {
		log.Fatal(err)
	}
	rg, err := jellyfish.New(k, 42)
	if err != nil {
		log.Fatal(err)
	}

	show := func(name string, nw *topo.Network) {
		st, err := metrics.ServerPathLengths(nw)
		if err != nil {
			log.Fatal(err)
		}
		s := nw.Stats()
		fmt.Printf("  %-28s links=%d  APL=%.3f  intra-pod APL=%.3f  max=%d\n",
			name, s.Links, st.Global, st.IntraPod, st.Max)
	}

	fmt.Println("\nbaselines:")
	show("fat-tree", fat.Net)
	show("random graph (jellyfish)", rg.Net)

	// Conversion is just a matter of converter configurations: no cables
	// move. Walk the flat-tree through its three uniform modes.
	fmt.Println("\nflat-tree conversions:")
	for _, mode := range []core.Mode{core.ModeClos, core.ModeGlobalRandom, core.ModeLocalRandom} {
		if err := ft.SetUniformMode(mode); err != nil {
			log.Fatal(err)
		}
		show("flat-tree/"+mode.String(), ft.Net())
	}

	// Hybrid operation: the network is organized into functionally
	// separate zones, each with its own topology (§2.6, §3.4).
	modes := make([]core.Mode, k)
	for p := range modes {
		if p < k/2 {
			modes[p] = core.ModeGlobalRandom
		} else {
			modes[p] = core.ModeLocalRandom
		}
	}
	if err := ft.SetModes(modes); err != nil {
		log.Fatal(err)
	}
	show("flat-tree/hybrid (half+half)", ft.Net())

	fmt.Println("\nNote how global-random mode matches the random graph's average")
	fmt.Println("path length within a few percent while remaining convertible back")
	fmt.Println("to a Clos network — the paper's headline result (Figure 5).")
}
