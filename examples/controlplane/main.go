// Control plane: drive topology conversions through the §2.6 centralized
// controller and per-pod converter agents over real TCP connections,
// including a failed conversion (one pod's converter driver rejects the
// stage) and the controller's all-or-nothing recovery.
//
//	go run ./examples/controlplane
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"time"

	"flattree/internal/core"
	"flattree/internal/ctrl"
	"flattree/internal/topo"
)

const k = 6

func main() {
	ft, err := core.Build(core.Params{K: k})
	if err != nil {
		log.Fatal(err)
	}
	controller := ctrl.NewController(ft)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	go controller.Serve(ctx, l)
	defer controller.Close()

	// One agent per pod, each modelling that pod's converter hardware
	// with a 2ms switching latency.
	agents := make([]*ctrl.Agent, k)
	for p := 0; p < k; p++ {
		agents[p] = ctrl.NewAgent(p, ctrl.ConfigsForPod(ft, p))
		agents[p].ApplyDelay = 2 * time.Millisecond
		go func(a *ctrl.Agent) {
			if err := a.Run(ctx, l.Addr().String()); err != nil {
				log.Printf("agent %d: %v", a.Pod(), err)
			}
		}(agents[p])
	}
	if err := controller.WaitForAgents(ctx, k); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("controller up with %d pod agents (%d converters)\n\n",
		controller.NumAgents(), len(ft.Convs))

	convert := func(label string, modes []core.Mode) {
		plan, err := controller.Plan(modes)
		if err != nil {
			log.Fatal(err)
		}
		changes := 0
		for _, entries := range plan {
			changes += len(entries)
		}
		start := time.Now()
		err = controller.Convert(ctx, modes)
		if err != nil {
			fmt.Printf("%-26s FAILED after %v: %v\n", label, time.Since(start).Round(time.Millisecond), err)
			return
		}
		nw := controller.FlatTree().Net()
		st := nw.Stats()
		fmt.Printf("%-26s epoch=%d  %d configs changed in %v  links: clos=%d conv=%d side=%d\n",
			label, controller.Epoch(), changes, time.Since(start).Round(time.Millisecond),
			st.LinksByTag[topo.TagClos], st.LinksByTag[topo.TagConverter], st.LinksByTag[topo.TagSide])
	}

	convert("-> global random graph", uniform(core.ModeGlobalRandom))
	convert("-> back to Clos", uniform(core.ModeClos))

	// Inject a converter driver fault in pod 2: the two-phase protocol
	// aborts everywhere and the model stays consistent.
	fmt.Println("\ninjecting stage rejection at pod 2:")
	agents[2].RejectStage = true
	convert("-> local random graphs", uniform(core.ModeLocalRandom))
	fmt.Printf("model still in %s mode (epoch %d)\n\n",
		controller.FlatTree().Mode(0), controller.Epoch())

	agents[2].RejectStage = false
	fmt.Println("fault cleared, retrying:")
	convert("-> local random graphs", uniform(core.ModeLocalRandom))
}

func uniform(m core.Mode) []core.Mode {
	modes := make([]core.Mode, k)
	for i := range modes {
		modes[i] = m
	}
	return modes
}
