// Routing ablation: §2.6 prescribes ECMP for Clos mode and k-shortest-paths
// for the random-graph modes, while the paper's throughput evaluation
// assumes optimal routing. This example quantifies the gap: max-min fair
// throughput over ECMP and KSP path systems versus the optimal-routing
// concurrent-flow LP, on the same hot-spot workload, in both flat-tree
// modes.
//
//	go run ./examples/routing-ablation
package main

import (
	"context"
	"fmt"
	"log"

	"flattree/internal/core"
	"flattree/internal/flowsim"
	"flattree/internal/mcf"
	"flattree/internal/routing"
	"flattree/internal/traffic"
)

func main() {
	const k = 8
	ft, err := core.Build(core.Params{K: k})
	if err != nil {
		log.Fatal(err)
	}

	for _, mode := range []core.Mode{core.ModeClos, core.ModeGlobalRandom} {
		if err := ft.SetUniformMode(mode); err != nil {
			log.Fatal(err)
		}
		nw := ft.Net()
		clusters, err := traffic.MakeClusters(nw, nw.Servers(), traffic.Spec{
			ClusterSize: 1000, Placement: traffic.Locality, Seed: 3})
		if err != nil {
			log.Fatal(err)
		}
		comms := traffic.BroadcastCommodities(clusters, 1000)

		fmt.Printf("flat-tree(k=%d) in %s mode, hot-spot broadcast workload:\n", k, mode)
		optimal, err := mcf.MaxConcurrentFlow(context.Background(), nw, comms, mcf.Options{Epsilon: 0.05})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  optimal routing (LP):      λ = %.4f (dual gap %.1f%%)\n",
			optimal.Lambda, 100*optimal.DualGap())

		schemes := []routing.Scheme{
			routing.NewECMP(nw, 32),
			routing.NewKSP(nw, 8),
			routing.NewKSP(nw, 4),
		}
		for _, s := range schemes {
			fsComms := make([]flowsim.Commodity, len(comms))
			for i, c := range comms {
				fsComms[i] = flowsim.Commodity{Src: c.Src, Dst: c.Dst, Demand: c.Demand}
			}
			res, err := flowsim.MaxMin(nw, s, fsComms)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %-8s max-min routing:  λ = %.4f (%.0f%% of optimal, %d subflows)\n",
				s.Name(), res.Lambda, 100*res.Lambda/optimal.Lambda, res.Subflows)
		}
		fmt.Println()
	}
}
